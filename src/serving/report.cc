#include "serving/report.h"

#include <algorithm>
#include <cmath>

#include "common/string_util.h"

namespace trex {

std::string RenderRanking(const Explanation& explanation,
                          const ReportOptions& options) {
  const std::size_t count =
      options.top_k == 0
          ? explanation.ranked.size()
          : std::min(options.top_k, explanation.ranked.size());

  double max_abs = 0;
  for (const PlayerScore& p : explanation.ranked) {
    max_abs = std::max(max_abs, std::fabs(p.shapley));
  }

  std::size_t label_width = 6;  // "player"
  for (std::size_t i = 0; i < count; ++i) {
    label_width = std::max(label_width, explanation.ranked[i].label.size());
  }

  std::string out;
  out += StrFormat("explaining %s: %s -> %s   [%s]\n",
                   explanation.target_label.c_str(),
                   explanation.old_value.ToString().c_str(),
                   explanation.new_value.ToString().c_str(),
                   explanation.method.c_str());
  out += StrFormat("%-4s  %-*s  %9s  %8s  %s\n", "rank",
                   static_cast<int>(label_width), "player", "shapley",
                   "stderr", "bar");
  for (std::size_t i = 0; i < count; ++i) {
    const PlayerScore& p = explanation.ranked[i];
    const std::size_t bar_len =
        max_abs <= 0 ? 0
                     : static_cast<std::size_t>(std::lround(
                           std::fabs(p.shapley) / max_abs *
                           static_cast<double>(options.bar_width)));
    const std::string stderr_text =
        p.num_samples == 0 ? "-" : StrFormat("%.4f", p.std_error);
    out += StrFormat("%-4zu  %-*s  %9.4f  %8s  %s\n", i + 1,
                     static_cast<int>(label_width), p.label.c_str(),
                     p.shapley, stderr_text.c_str(),
                     std::string(bar_len, '#').c_str());
  }
  out += StrFormat("total attribution: %.4f   algorithm calls: %zu   "
                   "cache hits: %zu\n",
                   explanation.TotalAttribution(),
                   explanation.algorithm_calls, explanation.cache_hits);
  return out;
}

std::string RenderRepairScreen(const TRexSession& session,
                               const ReportOptions& options) {
  std::string out;
  TablePrinter dirty_printer(options.printer);
  for (const RepairedCell& repaired : session.repaired_cells()) {
    dirty_printer.Highlight(repaired.cell, CellStyle::kDirty);
  }
  out += "dirty table (marked cells will be repaired):\n";
  out += dirty_printer.Render(session.dirty());
  out += "\nclean table (marked cells were repaired):\n";
  TablePrinter clean_printer(options.printer);
  for (const RepairedCell& repaired : session.repaired_cells()) {
    clean_printer.Highlight(repaired.cell, CellStyle::kRepaired);
  }
  out += clean_printer.Render(session.clean());
  out += "\nrepairs:\n";
  for (const RepairedCell& repaired : session.repaired_cells()) {
    out += "  " + repaired.ToString(session.dirty().schema()) + "\n";
  }
  return out;
}

std::string RenderCellHeatmap(const Table& dirty,
                              const Explanation& explanation,
                              const ReportOptions& options) {
  double max_abs = 0;
  for (const PlayerScore& p : explanation.ranked) {
    max_abs = std::max(max_abs, std::fabs(p.shapley));
  }
  TablePrinter printer(options.printer);
  for (const PlayerScore& p : explanation.ranked) {
    if (!p.cell.has_value() || max_abs <= 0) continue;
    const double intensity = std::fabs(p.shapley) / max_abs;
    if (intensity >= 2.0 / 3.0) {
      printer.Highlight(*p.cell, CellStyle::kHeatHigh);
    } else if (intensity >= 1.0 / 3.0) {
      printer.Highlight(*p.cell, CellStyle::kHeatMid);
    } else if (intensity > 0.05) {
      printer.Highlight(*p.cell, CellStyle::kHeatLow);
    }
  }
  std::string out = "cell influence heatmap for " +
                    explanation.target_label + ":\n";
  out += printer.Render(dirty);
  return out;
}

std::string RenderInteractions(
    const std::vector<InteractionScore>& interactions, std::size_t top_k) {
  const std::size_t count =
      top_k == 0 ? interactions.size()
                 : std::min(top_k, interactions.size());
  std::string out = "constraint-pair interactions:\n";
  for (std::size_t i = 0; i < count; ++i) {
    const InteractionScore& score = interactions[i];
    const char* kind = score.interaction > 1e-12
                           ? "complements"
                           : (score.interaction < -1e-12 ? "substitutes"
                                                         : "independent");
    out += StrFormat("  I(%s, %s) = %+.4f  (%s)\n",
                     score.label_a.c_str(), score.label_b.c_str(),
                     score.interaction, kind);
  }
  return out;
}

std::string RenderRemovalSets(
    const std::vector<std::vector<std::string>>& removal_sets) {
  if (removal_sets.empty()) {
    return "no removal set within the searched size stops the repair\n";
  }
  std::string out;
  for (const auto& removal : removal_sets) {
    out += "  remove {";
    for (std::size_t i = 0; i < removal.size(); ++i) {
      if (i > 0) out += ", ";
      out += removal[i];
    }
    out += "} -> repair does not happen\n";
  }
  return out;
}

std::string ExplanationToJson(const Explanation& explanation) {
  std::string out = "{";
  out += "\"target\":\"" + JsonEscape(explanation.target_label) + "\",";
  out += "\"old_value\":\"" +
         JsonEscape(explanation.old_value.ToString()) + "\",";
  out += "\"new_value\":\"" +
         JsonEscape(explanation.new_value.ToString()) + "\",";
  out += "\"method\":\"" + JsonEscape(explanation.method) + "\",";
  out += StrFormat("\"algorithm_calls\":%zu,\"cache_hits\":%zu,",
                   explanation.algorithm_calls, explanation.cache_hits);
  out += "\"ranking\":[";
  for (std::size_t i = 0; i < explanation.ranked.size(); ++i) {
    const PlayerScore& p = explanation.ranked[i];
    if (i > 0) out += ",";
    out += "{\"label\":\"" + JsonEscape(p.label) + "\",";
    out += StrFormat("\"shapley\":%.10g", p.shapley);
    if (p.num_samples > 0) {
      out += StrFormat(",\"std_error\":%.10g,\"num_samples\":%zu",
                       p.std_error, p.num_samples);
    }
    if (p.cell.has_value()) {
      out += StrFormat(",\"row\":%zu,\"col\":%zu", p.cell->row,
                       p.cell->col);
    }
    out += "}";
  }
  out += "]}";
  return out;
}

}  // namespace trex
