#include "serving/service.h"

#include <algorithm>
#include <chrono>
#include <utility>

#include "common/fault.h"
#include "common/logging.h"
#include "common/random.h"

namespace trex::serving {

namespace {

// Backoff before the attempt after `failed_attempt` (1-based):
// exponential growth capped at `max_backoff`, scaled by a jitter
// factor drawn deterministically from the policy seed and the leader
// job's id — a replayed schedule backs off identically.
std::chrono::nanoseconds RetryBackoff(const RetryPolicy& policy,
                                      std::uint64_t job_id,
                                      std::size_t failed_attempt) {
  const double cap = static_cast<double>(policy.max_backoff.count());
  double backoff = static_cast<double>(policy.initial_backoff.count());
  for (std::size_t i = 1; i < failed_attempt && backoff < cap; ++i) {
    backoff *= policy.multiplier;
  }
  backoff = std::min(backoff, cap);
  if (policy.jitter > 0.0) {
    std::uint64_t state = policy.seed ^ (job_id * 0x9e3779b97f4a7c15ULL) ^
                          (0xbf58476d1ce4e5b9ULL * failed_attempt);
    SplitMix64(&state);
    const double draw =
        static_cast<double>(SplitMix64(&state) >> 11) * 0x1.0p-53;
    backoff *= 1.0 + policy.jitter * (2.0 * draw - 1.0);
  }
  backoff = std::max(backoff, 0.0);
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
      std::chrono::duration<double, std::milli>(backoff));
}

}  // namespace

Ticket Ticket::Rejected(Status status) {
  TREX_CHECK(!status.ok());
  Ticket ticket;
  std::promise<Result<ExplainResult>> promise;
  promise.set_value(std::move(status));
  ticket.future_ = promise.get_future().share();
  return ticket;
}

void Ticket::Cancel() {
  if (cancel_ != nullptr) cancel_->Cancel();
}

bool Ticket::done() const {
  if (!future_.valid()) return false;
  return future_.wait_for(std::chrono::seconds(0)) ==
         std::future_status::ready;
}

Result<ExplainResult> Ticket::Wait() {
  TREX_CHECK(future_.valid()) << "Wait() on a default-constructed ticket";
  return future_.get();
}

ExplainService::ExplainService(ServiceOptions options)
    : options_(options), router_(options.router) {
  const std::size_t workers = std::max<std::size_t>(options_.num_workers, 1);
  workers_.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ExplainService::~ExplainService() {
  std::vector<std::shared_ptr<Job>> drained;
  {
    MutexLock lock(mu_);
    stop_ = true;
    drained.assign(queue_.begin(), queue_.end());
    queue_.clear();
    // Flip every outstanding token: queued jobs are resolved below and
    // in-flight sweeps stop at their next poll, so join() is prompt.
    for (auto& [id, job] : outstanding_) job->cancel->Cancel();
  }
  work_cv_.NotifyAll();
  for (std::shared_ptr<Job>& job : drained) {
    Resolve(job, Status::Cancelled("service shutting down"));
  }
  for (std::thread& worker : workers_) worker.join();
}

bool ExplainService::CoalescingCompatible(const Job& job, const Job& leader) {
  if (job.key != leader.key) return false;
  // Keys match on 64-bit fingerprints; verify in full so a collision is
  // never lowered into another instance's batch (the same discipline
  // the router applies). Shared-table submissions hit the cheap pointer
  // path.
  return job.dcs == leader.dcs &&
         (job.table == leader.table || *job.table == *leader.table);
}

Ticket ExplainService::Submit(
    std::shared_ptr<const repair::RepairAlgorithm> algorithm, dc::DcSet dcs,
    std::shared_ptr<const Table> table, ExplainRequest request,
    RequestOptions options) {
  TREX_CHECK(algorithm != nullptr);
  TREX_CHECK(table != nullptr);
  auto job = std::make_shared<Job>();
  job->priority = options.priority;
  job->deadline = options.deadline;
  job->key = EngineRouter::KeyOf(*algorithm, dcs, *table);
  job->algorithm = std::move(algorithm);
  job->dcs = std::move(dcs);
  job->table = std::move(table);
  job->cancel = std::make_shared<CancelSource>();
  job->request = std::move(request);
  // The engine polls one token; merge the ticket's lever with the
  // caller's token (and any token already on the request).
  job->request.cancel = CancelToken::AnyOf(
      CancelToken::AnyOf(job->request.cancel, options.cancel),
      job->cancel->token());
  if (job->deadline.has_value()) {
    if (options.degrade_on_deadline) {
      // Graceful degradation: the timer fires a *soften* source, which
      // flips the sampled paths' stopping rule to finish-current-wave —
      // the job resolves OK with partial confidence-bounded estimates
      // instead of being killed.
      job->soften_cancel = std::make_shared<CancelSource>();
      job->request.soften = CancelToken::AnyOf(job->request.soften,
                                               job->soften_cancel->token());
      job->deadline_id = deadlines_.Arm(*job->deadline, job->soften_cancel);
    } else {
      // Deadline enforcement is just cancellation with its own source
      // (so expiry is distinguishable from a caller cancel): armed
      // here, the timer kills the job wherever it is — queued or
      // mid-sweep.
      job->deadline_cancel = std::make_shared<CancelSource>();
      job->request.cancel = CancelToken::AnyOf(
          job->request.cancel, job->deadline_cancel->token());
      job->deadline_id = deadlines_.Arm(*job->deadline, job->deadline_cancel);
    }
  }
  job->on_complete = std::move(options.on_complete);

  Ticket ticket;
  ticket.cancel_ = job->cancel;
  ticket.future_ = job->promise.get_future().share();

  // Breaker fast-fail: a key whose circuit breaker is open is refused
  // at admission — the job never takes queue capacity, and the caller
  // sees the same `kUnavailable` a gated engine call would produce.
  // The router never transitions breaker state here (see router.h).
  Status admit = router_.AdmitKey(job->key);

  // Admission: under a full queue, shed the worst job of queue ∪
  // {incoming} — the incoming job itself when nothing queued is worse.
  std::shared_ptr<Job> shed;
  bool shed_was_cancelled = false;
  bool stopped = false;
  bool admitted = false;
  {
    MutexLock lock(mu_);
    job->id = next_id_++;
    job->seq = job->id;
    ticket.id_ = job->id;
    ++stats_.submitted;
    if (stop_) {
      stopped = true;
    } else if (!admit.ok()) {
      // Resolved below, outside `mu_`; counted like any other failed
      // job in `Resolve`.
    } else {
      if (options_.max_queued_jobs > 0 &&
          queue_.size() >= options_.max_queued_jobs) {
        // Reclaim a dead queued job first: one already cancelled (or
        // deadline-expired) will never run, so it must not hold
        // capacity against live work. It resolves `Cancelled`, exactly
        // as it would have at dequeue — never `Rejected`.
        for (auto it = queue_.begin(); it != queue_.end(); ++it) {
          if ((*it)->request.cancel.cancelled()) {
            shed = *it;
            shed_was_cancelled = true;
            queue_.erase(it);
            break;
          }
        }
        if (shed == nullptr) {
          const std::shared_ptr<Job>& victim = *queue_.rbegin();
          if (JobOrder{}(job, victim)) {
            shed = victim;
            queue_.erase(std::prev(queue_.end()));
          } else {
            shed = job;
          }
        }
      }
      if (shed != job) {
        outstanding_.emplace(job->id, job);
        queue_.insert(job);
        admitted = true;
      }
      stats_.queue_high_water =
          std::max(stats_.queue_high_water, queue_.size());
    }
  }
  if (stopped) {
    Resolve(job, Status::Cancelled("service is shut down"));
    return ticket;
  }
  if (!admit.ok()) {
    Resolve(job, std::move(admit));
    return ticket;
  }
  if (shed != nullptr) {
    Resolve(shed, shed_was_cancelled
                      ? Status::Cancelled("request cancelled while queued")
                      : Status::Rejected(
                            "service overloaded: queue full at " +
                            std::to_string(options_.max_queued_jobs) +
                            " jobs; lowest-priority job shed"));
  }
  if (admitted) work_cv_.NotifyOne();
  return ticket;
}

Result<ExplainResult> ExplainService::ExplainSync(
    std::shared_ptr<const repair::RepairAlgorithm> algorithm, dc::DcSet dcs,
    std::shared_ptr<const Table> table, ExplainRequest request,
    RequestOptions options) {
  Ticket ticket =
      Submit(std::move(algorithm), std::move(dcs), std::move(table),
             std::move(request), std::move(options));
  return ticket.Wait();
}

void ExplainService::WorkerLoop() {
  for (;;) {
    std::vector<std::shared_ptr<Job>> batch;
    {
      MutexLock lock(mu_);
      while (!stop_ && queue_.empty()) work_cv_.Wait(lock);
      if (stop_) return;  // destructor drained and resolves the queue
      auto leader_it = queue_.begin();
      std::shared_ptr<Job> leader = *leader_it;
      queue_.erase(leader_it);
      batch.push_back(leader);
      // Coalesce: gather queued same-engine jobs, best-first (so the
      // members of an overfull group left behind are the worst ones).
      // Gathered jobs jump the queue relative to other engines' jobs —
      // the cost of lowering them into one batch — but keep their own
      // deadlines, cancellation, and callbacks.
      for (auto it = queue_.begin();
           it != queue_.end() &&
           batch.size() < std::max<std::size_t>(
                              options_.max_coalesced_requests, 1);) {
        if (CoalescingCompatible(**it, *leader)) {
          batch.push_back(*it);
          it = queue_.erase(it);
        } else {
          ++it;
        }
      }
    }
    ServeBatch(std::move(batch));
  }
}

void ExplainService::ServeBatch(std::vector<std::shared_ptr<Job>> jobs) {
  struct Resolution {
    std::shared_ptr<Job> job;
    Result<ExplainResult> result;
    bool expired = false;
  };
  std::vector<Resolution> resolutions;
  resolutions.reserve(jobs.size());
  // Screens one member; cancelled/expired jobs resolve without running
  // — in particular a member cancelled while queued drops out of the
  // batch here, before lowering.
  auto screen = [&](const std::shared_ptr<Job>& job) {
    if (job->request.cancel.cancelled()) {
      resolutions.push_back(
          {job, Status::Cancelled("request cancelled while queued"), false});
      return false;
    }
    if (job->deadline.has_value() && job->soften_cancel == nullptr &&
        std::chrono::steady_clock::now() > *job->deadline) {
      resolutions.push_back(
          {job, Status::Cancelled("deadline exceeded while queued"), true});
      return false;
    }
    // A degradable job (`soften_cancel` armed) is never screened out on
    // its deadline: its fired soften token makes the sampled run
    // self-limit to about one wave, and the caller gets partial
    // estimates instead of nothing.
    return true;
  };

  std::vector<std::shared_ptr<Job>> live;
  live.reserve(jobs.size());
  for (const std::shared_ptr<Job>& job : jobs) {
    if (screen(job)) live.push_back(job);
  }
  if (!live.empty()) {
    // One engine acquisition for the whole group (members were verified
    // compatible with the leader at gather time). Per-engine
    // serialization: the engine is single-caller; groups for
    // *different* engines overlap across workers. Resolution — which
    // fires user callbacks — happens after this scope releases the
    // engine.
    const std::shared_ptr<Job>& leader = live.front();
    std::shared_ptr<EngineEntry> entry = router_.Acquire(
        leader->algorithm, leader->dcs, leader->table, leader->key);
    MutexLock guard(entry->mu);
    // Re-screen after the wait for the engine mutex (behind another
    // group's sweep), which can outlast a deadline: a job that has not
    // started must not pay for a full sweep past its deadline.
    std::vector<std::shared_ptr<Job>> ready;
    ready.reserve(live.size());
    for (const std::shared_ptr<Job>& job : live) {
      if (screen(job)) ready.push_back(job);
    }
    if (!ready.empty()) {
      if (ready.size() > 1) {
        // entry->mu is held here: the one edge fixing the lock order
        // `EngineEntry::mu` before `mu_` (see the file comment).
        MutexLock lock(mu_);
        ++stats_.coalesced_batches;
        stats_.coalesced_jobs += ready.size();
      }
      // Execute with self-healing: every group — a singleton included
      // — lowers to one `ExplainBatch` call per attempt, so
      // engine-level batch behavior (`EngineOptions::seal_targets`
      // sealing, stats) applies to uncoalesced traffic too; a batch of
      // one is bit-identical to plain Explain. Members whose result is
      // *transient* (`kUnavailable`) are retried per `RetryPolicy`;
      // everything else resolves on first observation (failure
      // isolation: one member's backend error never touches its
      // siblings' tickets). Each attempt is gated by the key's circuit
      // breaker and reports exactly one outcome back to it.
      const std::size_t max_attempts =
          std::max<std::size_t>(options_.retry.max_attempts, 1);
      std::vector<std::shared_ptr<Job>> pending = ready;
      for (std::size_t attempt = 1; !pending.empty(); ++attempt) {
        Status gate = router_.BreakerBeginCall(leader->key);
        if (!gate.ok()) {
          // Breaker opened (or all half-open probe slots taken) since
          // admission: the whole remaining group fails fast.
          for (const std::shared_ptr<Job>& job : pending) {
            resolutions.push_back({job, gate, false});
          }
          break;
        }
        if (attempt > 1) {
          MutexLock lock(mu_);
          ++stats_.retries;
        }
        std::vector<ExplainRequest> requests;
        requests.reserve(pending.size());
        for (const std::shared_ptr<Job>& job : pending) {
          requests.push_back(job->request);
        }
        Result<BatchResult> batch = [&]() -> Result<BatchResult> {
          TREX_FAULT_INJECT("serving.execute");
          return entry->engine.ExplainBatch(requests);
        }();
        bool transient_seen = false;
        std::vector<std::shared_ptr<Job>> retry_next;
        const bool last_attempt = attempt >= max_attempts;
        if (!batch.ok()) {
          // Engine-level failure (e.g. the shared reference repair):
          // every member observes it, exactly as each would alone —
          // and a transient one retries as a whole.
          transient_seen = batch.status().IsTransient();
          if (transient_seen && !last_attempt) {
            retry_next = pending;
          } else {
            for (const std::shared_ptr<Job>& job : pending) {
              resolutions.push_back({job, batch.status(), false});
            }
          }
        } else {
          TREX_CHECK_EQ(batch->results.size(), pending.size());
          for (std::size_t i = 0; i < pending.size(); ++i) {
            Result<ExplainResult>& result = batch->results[i];
            if (!result.ok() && result.status().IsTransient()) {
              transient_seen = true;
              if (!last_attempt) {
                retry_next.push_back(pending[i]);
                continue;
              }
            }
            resolutions.push_back({pending[i], std::move(result), false});
          }
        }
        router_.ReportOutcome(leader->key, transient_seen);
        if (retry_next.empty()) break;

        // Backoff before the next attempt, parked on the retrying
        // members' cancel *and* soften tokens via the interruptible
        // `CancelToken::WaitFor` — an expiring deadline or a caller
        // cancel cuts the sleep immediately; it never outlives the
        // deadline that should have killed it. The engine mutex is
        // released for the duration so sibling groups are not blocked
        // behind a sleeping worker.
        CancelToken wake;
        for (const std::shared_ptr<Job>& job : retry_next) {
          wake = CancelToken::AnyOf(wake, job->request.cancel);
          wake = CancelToken::AnyOf(wake, job->request.soften);
        }
        const std::chrono::nanoseconds backoff =
            RetryBackoff(options_.retry, leader->id, attempt);
        guard.Unlock();
        (void)wake.WaitFor(backoff);
        guard.Lock();
        // Re-screen after the park: members cancelled or expired
        // during the backoff resolve now instead of burning another
        // attempt.
        pending.clear();
        for (const std::shared_ptr<Job>& job : retry_next) {
          if (screen(job)) pending.push_back(job);
        }
      }
    }
    // Sample the memo footprint while still holding the engine (the
    // router's stats read this without the entry mutex).
    entry->approx_memo_bytes.store(entry->engine.approx_memo_bytes());
  }
  for (Resolution& resolution : resolutions) {
    Resolve(resolution.job, std::move(resolution.result), resolution.expired);
  }
}

void ExplainService::Resolve(const std::shared_ptr<Job>& job,
                             Result<ExplainResult> result, bool expired) {
  // A cancelled job whose armed deadline fired expired, whoever's token
  // the sweep happened to observe first.
  if (!result.ok() && result.status().IsCancelled() &&
      job->deadline_cancel != nullptr && job->deadline_cancel->cancelled()) {
    expired = true;
  }
  {
    MutexLock lock(mu_);
    if (result.ok()) {
      ++stats_.completed;
      if (result->approximate) ++stats_.degraded;
    } else if (result.status().IsCancelled()) {
      ++stats_.cancelled;
      if (expired) ++stats_.expired;
    } else if (result.status().IsRejected()) {
      ++stats_.shed;
    } else {
      ++stats_.failed;
      if (result.status().IsTransient()) {
        ++stats_.failed_transient;
      } else {
        ++stats_.failed_permanent;
      }
      ++stats_.failed_by_code[result.status().code()];
    }
    outstanding_.erase(job->id);
  }
  if (job->deadline_id != 0) deadlines_.Disarm(job->deadline_id);
  job->promise.set_value(result);
  if (job->on_complete) job->on_complete(result);
}

ServiceStats ExplainService::stats() const {
  ServiceStats stats;
  {
    MutexLock lock(mu_);
    stats = stats_;
    stats.queue_depth = queue_.size();
  }
  stats.router = router_.stats();
  return stats;
}

std::size_t ExplainService::pending() const {
  MutexLock lock(mu_);
  return queue_.size();
}

}  // namespace trex::serving
