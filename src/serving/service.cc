#include "serving/service.h"

#include <algorithm>
#include <utility>

#include "common/logging.h"

namespace trex::serving {

Ticket Ticket::Rejected(Status status) {
  TREX_CHECK(!status.ok());
  Ticket ticket;
  std::promise<Result<ExplainResult>> promise;
  promise.set_value(std::move(status));
  ticket.future_ = promise.get_future().share();
  return ticket;
}

void Ticket::Cancel() {
  if (cancel_ != nullptr) cancel_->Cancel();
}

bool Ticket::done() const {
  if (!future_.valid()) return false;
  return future_.wait_for(std::chrono::seconds(0)) ==
         std::future_status::ready;
}

Result<ExplainResult> Ticket::Wait() {
  TREX_CHECK(future_.valid()) << "Wait() on a default-constructed ticket";
  return future_.get();
}

ExplainService::ExplainService(ServiceOptions options)
    : options_(options), router_(options.router) {
  const std::size_t workers = std::max<std::size_t>(options_.num_workers, 1);
  workers_.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ExplainService::~ExplainService() {
  std::vector<std::shared_ptr<Job>> drained;
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
    while (!queue_.empty()) {
      drained.push_back(queue_.top());
      queue_.pop();
    }
    // Flip every outstanding token: queued jobs are resolved below and
    // in-flight sweeps stop at their next poll, so join() is prompt.
    for (auto& [id, job] : outstanding_) job->cancel->Cancel();
  }
  work_cv_.notify_all();
  for (std::shared_ptr<Job>& job : drained) {
    Resolve(job, Status::Cancelled("service shutting down"));
  }
  for (std::thread& worker : workers_) worker.join();
}

Ticket ExplainService::Submit(
    std::shared_ptr<const repair::RepairAlgorithm> algorithm, dc::DcSet dcs,
    std::shared_ptr<const Table> table, ExplainRequest request,
    RequestOptions options) {
  TREX_CHECK(algorithm != nullptr);
  TREX_CHECK(table != nullptr);
  auto job = std::make_shared<Job>();
  job->priority = options.priority;
  job->deadline = options.deadline;
  job->algorithm = std::move(algorithm);
  job->dcs = std::move(dcs);
  job->table = std::move(table);
  job->cancel = std::make_shared<CancelSource>();
  job->request = std::move(request);
  // The engine polls one token; merge the ticket's lever with the
  // caller's token (and any token already on the request).
  job->request.cancel = CancelToken::AnyOf(
      CancelToken::AnyOf(job->request.cancel, options.cancel),
      job->cancel->token());
  job->on_complete = std::move(options.on_complete);

  Ticket ticket;
  ticket.cancel_ = job->cancel;
  ticket.future_ = job->promise.get_future().share();

  bool rejected = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    job->id = next_id_++;
    job->seq = job->id;
    ticket.id_ = job->id;
    ++stats_.submitted;
    if (stop_) {
      rejected = true;
    } else {
      outstanding_.emplace(job->id, job);
      queue_.push(job);
    }
  }
  if (rejected) {
    Resolve(job, Status::Cancelled("service is shut down"));
    return ticket;
  }
  work_cv_.notify_one();
  return ticket;
}

Result<ExplainResult> ExplainService::ExplainSync(
    std::shared_ptr<const repair::RepairAlgorithm> algorithm, dc::DcSet dcs,
    std::shared_ptr<const Table> table, ExplainRequest request,
    RequestOptions options) {
  Ticket ticket =
      Submit(std::move(algorithm), std::move(dcs), std::move(table),
             std::move(request), std::move(options));
  return ticket.Wait();
}

void ExplainService::WorkerLoop() {
  for (;;) {
    std::shared_ptr<Job> job;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (stop_) return;  // destructor drained and resolves the queue
      job = queue_.top();
      queue_.pop();
    }
    Serve(std::move(job));
  }
}

void ExplainService::Serve(std::shared_ptr<Job> job) {
  if (job->request.cancel.cancelled()) {
    Resolve(job, Status::Cancelled("request cancelled while queued"));
    return;
  }
  if (job->deadline.has_value() &&
      std::chrono::steady_clock::now() > *job->deadline) {
    Resolve(job, Status::Cancelled("deadline exceeded while queued"),
            /*expired=*/true);
    return;
  }
  std::shared_ptr<EngineEntry> entry =
      router_.Acquire(job->algorithm, job->dcs, job->table);
  bool expired = false;
  Result<ExplainResult> result = [&]() -> Result<ExplainResult> {
    // Per-engine serialization: the engine is single-caller; requests
    // for *different* engines overlap across workers.
    std::lock_guard<std::mutex> guard(entry->mu);
    // Re-check the deadline: the wait for the engine mutex (behind
    // another request's sweep) can outlast it, and a job that has not
    // started must not pay for a full sweep past its deadline.
    if (job->deadline.has_value() &&
        std::chrono::steady_clock::now() > *job->deadline) {
      expired = true;
      return Status::Cancelled("deadline exceeded before execution");
    }
    return entry->engine.Explain(job->request);
  }();
  Resolve(job, std::move(result), expired);
}

void ExplainService::Resolve(const std::shared_ptr<Job>& job,
                             Result<ExplainResult> result, bool expired) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (result.ok()) {
      ++stats_.completed;
    } else if (result.status().IsCancelled()) {
      ++stats_.cancelled;
      if (expired) ++stats_.expired;
    } else {
      ++stats_.failed;
    }
    outstanding_.erase(job->id);
  }
  job->promise.set_value(result);
  if (job->on_complete) job->on_complete(result);
}

ServiceStats ExplainService::stats() const {
  ServiceStats stats;
  {
    std::lock_guard<std::mutex> lock(mu_);
    stats = stats_;
  }
  stats.router = router_.stats();
  return stats;
}

std::size_t ExplainService::pending() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.size();
}

}  // namespace trex::serving
