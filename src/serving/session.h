// `TRexSession`: the end-to-end T-REx workflow as a library object.
//
// The paper's system (§3, Figures 3–4) walks users through three screens:
// input (table + DCs into the repairer), repair (highlighted diff), and
// explanation (DCs / cells ranked by Shapley value), then lets them edit
// the DCs or the data and iterate. This class is that loop without the
// browser:
//
//   TRexSession session(algorithm, dcs, dirty_table);
//   session.Repair();                         // screen 2
//   auto ex = session.ExplainConstraints(cell);  // screen 3
//   session.RemoveConstraint("C3");           // act on the explanation
//   session.Repair();                         // iterate
//
// The session is an adapter over `serving::ExplainService`: `Repair()`
// snapshots the dirty table and routes it to an engine in the service's
// pool, whose reference repair backs both the diff screen and every
// explanation. The synchronous explain methods are submit-and-wait over
// the service (so they share its queue, engines, and accounting with
// any concurrent async traffic), and `SubmitExplain` exposes the async
// path directly: submit with a priority, keep interacting, cancel or
// await the ticket — the paper's GUI flow. Successive explanation calls
// share the routed engine's memo caches; explaining a second cell of
// the same repair reuses the evaluations the first one paid for. Edits
// change the table or DcSet fingerprint, so the next `Repair()` routes
// to a fresh engine; explanation calls then require that `Repair()`.
//
// The session object itself serves one caller at a time (its mutators
// are unsynchronized); the underlying service is thread-safe, so
// tickets obtained from `SubmitExplain` may be awaited or cancelled
// from any thread.

#ifndef TREX_SERVING_SESSION_H_
#define TREX_SERVING_SESSION_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/engine.h"
#include "core/explainer.h"
#include "dc/constraint.h"
#include "repair/algorithm.h"
#include "serving/service.h"
#include "table/diff.h"
#include "table/table.h"

namespace trex {

/// Interactive repair-and-explain session (see file comment).
class TRexSession {
 public:
  /// The algorithm is shared (not copied); it must outlive the session.
  /// `engine_options` configures the underlying explanation engine
  /// (e.g. sampling worker threads).
  TRexSession(std::shared_ptr<const repair::RepairAlgorithm> algorithm,
              dc::DcSet dcs, Table dirty, EngineOptions engine_options = {});

  /// Like above, but with full control over the backing service's
  /// scheduler — queue capacity / load-shedding (`max_queued_jobs`),
  /// coalescing width (`max_coalesced_requests`), worker count, and the
  /// router pool. `engine_options` overrides
  /// `service_options.router.engine_options` (one source of truth for
  /// the engine configuration).
  TRexSession(std::shared_ptr<const repair::RepairAlgorithm> algorithm,
              dc::DcSet dcs, Table dirty, EngineOptions engine_options,
              serving::ServiceOptions service_options);

  const Table& dirty() const { return dirty_; }
  const dc::DcSet& dcs() const { return dcs_; }
  const repair::RepairAlgorithm& algorithm() const { return *algorithm_; }

  /// Runs the repair algorithm; afterwards `clean()` and
  /// `repaired_cells()` are available.
  [[nodiscard]] Status Repair();

  /// True once `Repair()` has run (and no edit invalidated it).
  bool has_repair() const { return entry_ != nullptr; }

  /// The repaired table; requires `has_repair()`.
  const Table& clean() const;

  /// The diff dirty -> clean; requires `has_repair()`.
  const std::vector<RepairedCell>& repaired_cells() const;

  /// The engine serving this session's explanations; requires
  /// `has_repair()`. Exposed for cost accounting and advanced direct
  /// calls; do not mix direct engine calls with in-flight async tickets.
  Engine& engine();

  /// The service behind this session. Exposed for stats and for sharing
  /// the pool with other sessions' tables.
  serving::ExplainService& service();

  /// Scheduler accounting (admissions, sheds, coalesced batches,
  /// expiries, queue depth/high-water, router hits); zeroes before the
  /// first `Repair()` creates the service.
  serving::ServiceStats service_stats() const;

  /// Resolves "tk[Attr]"-style coordinates, e.g. `CellAt(4, "Country")`
  /// (row is 0-based).
  [[nodiscard]] Result<CellRef> CellAt(std::size_t row, const std::string& attribute) const;

  /// Ranks the DCs by contribution to the repair of `target`.
  [[nodiscard]] Result<Explanation> ExplainConstraints(
      CellRef target, const ConstraintExplainerOptions& options = {}) const;

  /// Pairwise constraint interactions for the repair of `target`
  /// (complements / substitutes; see core/interaction.h).
  [[nodiscard]] Result<std::vector<InteractionScore>> ExplainConstraintInteractions(
      CellRef target, const ConstraintExplainerOptions& options = {}) const;

  /// Ranks the cells of T^d by contribution to the repair of `target`.
  [[nodiscard]] Result<Explanation> ExplainCells(
      CellRef target, const CellExplainerOptions& options = {}) const;

  /// Estimates a single cell's contribution (Example 2.5).
  [[nodiscard]] Result<PlayerScore> ExplainSingleCell(
      CellRef target, CellRef player_cell,
      const CellExplainerOptions& options = {}) const;

  /// Serves a heterogeneous batch of explanation requests against the
  /// session's repair, sharing one reference run and the memo caches.
  [[nodiscard]] Result<BatchResult> ExplainBatch(
      const std::vector<ExplainRequest>& requests) const;

  /// Async submission against the session's repair: returns a ticket
  /// immediately (see serving::ExplainService). Without a repair, the
  /// ticket comes back already resolved with the error. The ticket
  /// survives session edits — it pins the table snapshot it was
  /// submitted against (the engine itself is re-acquired from the
  /// router at execution time, so a long-queued ticket may pay a fresh
  /// reference repair if its engine was evicted meanwhile).
  serving::Ticket SubmitExplain(ExplainRequest request,
                                serving::RequestOptions options = {});

  // ---- Iteration: edits invalidate the cached repair. ----

  /// Overwrites a cell of the dirty table.
  [[nodiscard]] Status SetDirtyCell(CellRef cell, Value value);

  /// Removes the constraint with the given name.
  [[nodiscard]] Status RemoveConstraint(const std::string& name);

  /// Adds a constraint (name must be unused).
  [[nodiscard]] Status AddConstraint(dc::DenialConstraint constraint);

  /// Replaces the same-named constraint.
  [[nodiscard]] Status ReplaceConstraint(dc::DenialConstraint constraint);

 private:
  [[nodiscard]] Status RequireRepair() const;
  void InvalidateRepair();

  std::shared_ptr<const repair::RepairAlgorithm> algorithm_;
  dc::DcSet dcs_;
  Table dirty_;
  EngineOptions engine_options_;
  /// Scheduler configuration for the backing service; set by the
  /// five-argument constructor, defaulted (single worker, small engine
  /// pool) otherwise.
  std::optional<serving::ServiceOptions> service_options_;
  /// Created on the first `Repair()`.
  std::unique_ptr<serving::ExplainService> service_;
  /// Immutable snapshot of `dirty_` shared with the routed engine.
  std::shared_ptr<const Table> table_;
  /// The engine serving the current repair; null until `Repair()`.
  std::shared_ptr<serving::EngineEntry> entry_;
  std::vector<RepairedCell> repaired_cells_;
};

}  // namespace trex

#endif  // TREX_SERVING_SESSION_H_
