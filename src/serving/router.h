// `serving::EngineRouter`: a bounded, thread-safe pool of `trex::Engine`s
// keyed by repair instance, so one service process serves many tables.
//
// The engine layer amortizes work *within* one (algorithm, DcSet, Table)
// instance; the router extends that across instances. `Acquire` hashes
// the instance into an `EngineKey` (algorithm id, DcSet fingerprint,
// table fingerprint), verifies candidates by full content comparison
// (64-bit fingerprint collisions route to separate entries, never to a
// wrong engine), and returns a shared `EngineEntry` — creating the
// engine on a miss and LRU-evicting beyond `RouterOptions::max_engines`.
//
// Algorithm-id contract: `RepairAlgorithm::name()` is the routing key
// for the algorithm — distinct algorithm *objects* with equal names are
// deliberately routed to one engine (so repeated factory calls share
// work), which requires that equal names imply equal repair semantics.
// Callers running differently-configured instances of one repairer
// class through a shared router must give them distinct names (the
// bundled repairers take the name as a constructor argument).
//
// Eviction drops the router's reference only: requests already holding
// the entry keep a valid engine until they release it, so eviction under
// load is safe. A re-acquired key after eviction rebuilds the engine
// (and re-runs its reference repair) — eviction trades recompute cost
// for bounded residency, exactly like the table memo inside
// `BlackBoxRepair`.
//
// Per-engine serialization: `Engine` is single-caller (see engine.h).
// Callers running engine work concurrently MUST hold `EngineEntry::mu`
// for the duration of each engine call; `ExplainService` does this, and
// `TRexSession` relies on it via the service.
//
// ## Per-engine circuit breaker
//
// The router also owns one circuit breaker per `EngineKey` — the
// self-healing half of the serving layer's failure classification
// (common/status.h: `kUnavailable` is transient, everything else
// permanent). Invariants:
//
//   * Only *transient* outcomes count as failures in the breaker
//     window; permanent errors (bad requests) and successes are both
//     evidence the backend is alive. A backend that never returns
//     `kUnavailable` can never trip its breaker.
//   * CLOSED → OPEN when the windowed transient-failure rate over the
//     last `BreakerOptions::window` outcomes reaches
//     `failure_rate_threshold` (judged only after `min_samples`).
//   * OPEN fails fast: `AdmitKey` (the service's admission check) and
//     `BreakerBeginCall` (the execution gate) return `kUnavailable`
//     without touching the engine until `cooldown` elapses.
//   * After cooldown, the first `BreakerBeginCall` moves the breaker to
//     HALF-OPEN and admits up to `half_open_probes` concurrent probe
//     calls. A probe's transient failure re-opens (fresh cooldown); a
//     probe success closes and resets the window.
//   * Every OK returned by `BreakerBeginCall` must be paired with
//     exactly one `ReportOutcome` — the service's execution loop does
//     this per engine-call attempt (retries report each attempt).
//
// Breaker state lives under the same leaf `mu_` as the pool, so the
// whole state machine is deadlock-free by construction and `stats()`
// can report it without new lock edges.
//
// Lock model (machine-checked under Clang's -Wthread-safety; see
// common/thread_annotations.h): the router's own state is
// `GUARDED_BY(mu_)`, and `mu_` is a leaf lock — no engine or entry
// mutex is ever taken under it. The PR 5 deadlock rule — `stats()` must
// not take entry mutexes, because a stats reader must never wait on an
// engine call in flight — is encoded structurally: the only per-entry
// state `stats()` reads is `EngineEntry::approx_memo_bytes`, an atomic
// deliberately left *outside* `EngineEntry::mu`'s guarded set, and
// `EXCLUDES(mu_)` keeps every public method re-entrancy-clean. The
// analysis cannot quantify over "any entry's mutex", so that half of
// the rule is additionally pinned by a watchdogged regression test
// (tests/serving/stats_deadlock_test.cc).

#ifndef TREX_SERVING_ROUTER_H_
#define TREX_SERVING_ROUTER_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "core/engine.h"
#include "dc/constraint.h"
#include "repair/algorithm.h"
#include "table/table.h"

namespace trex::serving {

/// Per-engine circuit-breaker tuning (see the breaker invariants in the
/// file comment). Defaults are production-shaped; tests shrink them.
struct BreakerOptions {
  bool enabled = true;
  /// Sliding outcome window per engine key.
  std::size_t window = 16;
  /// Outcomes required in the window before the rate is judged.
  std::size_t min_samples = 8;
  /// Windowed transient-failure rate that trips CLOSED → OPEN.
  double failure_rate_threshold = 0.5;
  /// How long OPEN fails fast before allowing a half-open probe.
  std::chrono::milliseconds cooldown{250};
  /// Concurrent probe calls admitted while HALF-OPEN.
  std::size_t half_open_probes = 1;
};

/// Options for the router.
struct RouterOptions {
  /// Resident-engine cap (>= 1). Each resident engine holds its dirty
  /// table, reference repair, and memo caches, so this bounds the
  /// service's steady-state footprint.
  std::size_t max_engines = 8;
  /// Options applied to every engine the router creates (sweep threads,
  /// memo cap).
  EngineOptions engine_options;
  /// Per-engine-key circuit breaker (file comment).
  BreakerOptions breaker;
};

/// Router cost accounting.
struct RouterStats {
  std::size_t hits = 0;
  std::size_t misses = 0;
  std::size_t evictions = 0;
  /// Engines currently resident (<= max_engines).
  std::size_t resident = 0;
  /// Estimated resident memo bytes summed over all resident engines
  /// (`Engine::approx_memo_bytes`) — the service-level view of the
  /// footprint `EngineOptions::seal_targets` compacts.
  std::size_t approx_memo_bytes = 0;
  /// Breaker transitions into the OPEN state (trips and re-trips).
  std::size_t breaker_open = 0;
  /// Probe calls admitted while HALF-OPEN.
  std::size_t breaker_half_open_probes = 0;
  /// Calls fast-failed with `kUnavailable` because a breaker was open
  /// (admission checks and execution gates combined).
  std::size_t breaker_rejected = 0;
};

/// The identity of a repair instance, as the router keys it. The
/// service's coalescing stage also uses it: queued jobs with equal keys
/// (verified by full DcSet/table comparison, since the fingerprints are
/// 64-bit) route to one engine and may be lowered into one batch.
struct EngineKey {
  std::string algorithm_id;
  std::uint64_t dcs_fingerprint = 0;
  std::uint64_t table_fingerprint = 0;

  bool operator==(const EngineKey& other) const {
    return algorithm_id == other.algorithm_id &&
           dcs_fingerprint == other.dcs_fingerprint &&
           table_fingerprint == other.table_fingerprint;
  }
  bool operator!=(const EngineKey& other) const { return !(*this == other); }
};

struct EngineKeyHash {
  std::size_t operator()(const EngineKey& key) const;
};

/// One routed engine plus the mutex that serializes access to it.
struct EngineEntry {
  EngineEntry(std::shared_ptr<const repair::RepairAlgorithm> algorithm,
              dc::DcSet dcs, std::shared_ptr<const Table> table,
              EngineOptions options)
      : engine(std::move(algorithm), std::move(dcs), std::move(table),
               options) {}

  /// Hold `mu` while calling into `engine` whenever other holders may
  /// exist (the engine itself is single-caller). Not `GUARDED_BY(mu)`:
  /// the requirement is conditional — a single-holder phase (a session
  /// before any tickets are submitted, a test owning the only
  /// reference) may call the engine unlocked — which the analysis
  /// cannot express; concurrent phases are TSan-covered instead.
  Engine engine;
  Mutex mu;
  /// `engine.approx_memo_bytes()` as of the last completed engine call,
  /// sampled by the caller *while it still holds `mu`* and read by
  /// `EngineRouter::stats()` without taking `mu` (taking it there would
  /// deadlock against callers that block inside an engine call while a
  /// stats reader waits — e.g. tests gating a repair algorithm).
  /// Deliberately an atomic outside `mu`'s protection — see the lock
  /// model in the file comment.
  std::atomic<std::size_t> approx_memo_bytes{0};
};

/// Bounded LRU pool of engines (see file comment). All methods are
/// thread-safe.
class EngineRouter {
 public:
  explicit EngineRouter(RouterOptions options = {});

  /// The key `Acquire` would route (algorithm, dcs, table) to — handed
  /// back to the service so its coalescing stage can group queued jobs
  /// by engine without acquiring one. Equal keys are necessary but not
  /// sufficient for equal engines (64-bit fingerprints can collide);
  /// callers grouping by key must verify dcs/table in full, as the
  /// router itself does.
  static EngineKey KeyOf(const repair::RepairAlgorithm& algorithm,
                         const dc::DcSet& dcs, const Table& table);

  /// Returns the engine entry serving (algorithm, dcs, table), creating
  /// it on first use. The table is shared, not copied — callers keep one
  /// resident copy per distinct table regardless of request count.
  /// Engine construction is cheap (the reference repair runs lazily at
  /// the first explanation), so `Acquire` never blocks on repair work.
  std::shared_ptr<EngineEntry> Acquire(
      std::shared_ptr<const repair::RepairAlgorithm> algorithm,
      const dc::DcSet& dcs, std::shared_ptr<const Table> table)
      EXCLUDES(mu_);

  /// Like above for callers holding only a mutable/borrowed table (the
  /// session's interactive loop): the table is snapshotted into a
  /// shared copy *only on a miss* — a hit against a resident engine
  /// copies nothing.
  std::shared_ptr<EngineEntry> Acquire(
      std::shared_ptr<const repair::RepairAlgorithm> algorithm,
      const dc::DcSet& dcs, const Table& table) EXCLUDES(mu_);

  /// Like the shared-table overload, with the key already computed
  /// (`KeyOf`) — the service keys each job at admission for coalescing
  /// and hands the key back here, so execution does not re-hash the
  /// table. `key` must be `KeyOf(*algorithm, dcs, *table)`; a stale key
  /// only costs a duplicate engine (full verification still guards
  /// correctness), it can never route to a wrong one.
  std::shared_ptr<EngineEntry> Acquire(
      std::shared_ptr<const repair::RepairAlgorithm> algorithm,
      const dc::DcSet& dcs, std::shared_ptr<const Table> table,
      const EngineKey& key) EXCLUDES(mu_);

  /// Takes only `mu_` and reads only sampled atomics per entry — never
  /// an entry mutex (the deadlock rule in the file comment).
  RouterStats stats() const EXCLUDES(mu_);

  /// Circuit-breaker states (see the invariants in the file comment).
  enum class BreakerState { kClosed, kOpen, kHalfOpen };

  /// Admission-time fast-fail: `kUnavailable` while `key`'s breaker is
  /// OPEN inside its cooldown, OK otherwise. Never admits a probe and
  /// never transitions the state machine — queued work behind a sick
  /// backend is shed here without consuming half-open probe slots.
  [[nodiscard]] Status AdmitKey(const EngineKey& key) EXCLUDES(mu_);

  /// Execution-time gate, called before each engine-call attempt:
  /// CLOSED admits; OPEN past cooldown transitions to HALF-OPEN and
  /// admits a probe; HALF-OPEN admits up to
  /// `BreakerOptions::half_open_probes` concurrent probes; everything
  /// else fails fast with `kUnavailable`. Every OK MUST be paired with
  /// exactly one `ReportOutcome` call.
  [[nodiscard]] Status BreakerBeginCall(const EngineKey& key) EXCLUDES(mu_);

  /// Reports one engine-call attempt admitted by `BreakerBeginCall`.
  /// `transient_failure` means the attempt failed with a transient
  /// status (`Status::IsTransient`); successes and permanent errors
  /// both count as healthy outcomes.
  void ReportOutcome(const EngineKey& key, bool transient_failure)
      EXCLUDES(mu_);

  /// Current breaker state for `key` (kClosed when untracked). An OPEN
  /// breaker past its cooldown still reads OPEN until the next
  /// `BreakerBeginCall` transitions it.
  BreakerState breaker_state(const EngineKey& key) const EXCLUDES(mu_);

  const RouterOptions& options() const { return options_; }

 private:
  struct Slot {
    std::shared_ptr<EngineEntry> entry;
    std::uint64_t last_used = 0;
  };

  /// Per-key breaker state machine (file comment). The outcome window
  /// is a ring of the last `BreakerOptions::window` outcomes.
  struct Breaker {
    BreakerState state = BreakerState::kClosed;
    std::vector<std::uint8_t> ring;  // 1 = transient failure
    std::size_t ring_next = 0;
    std::size_t count = 0;
    std::size_t failures = 0;
    std::chrono::steady_clock::time_point open_until{};
    std::size_t probes_inflight = 0;
  };

  /// Trips `breaker` into OPEN: fresh cooldown, window reset.
  void TripOpen(Breaker* breaker) REQUIRES(mu_);

  /// Drops the least-recently-used slot. Requires a non-empty pool.
  void EvictLru() REQUIRES(mu_);

  /// Shared lookup/insert body; `snapshot` materializes the shared
  /// table handle and is invoked only on a miss.
  std::shared_ptr<EngineEntry> AcquireImpl(
      std::shared_ptr<const repair::RepairAlgorithm> algorithm,
      const dc::DcSet& dcs, const Table& table, const EngineKey& key,
      const std::function<std::shared_ptr<const Table>()>& snapshot)
      EXCLUDES(mu_);

  RouterOptions options_;
  mutable Mutex mu_;
  /// Buckets of verified slots: fingerprint collisions co-exist in one
  /// bucket and are told apart by full (dcs, table) comparison.
  std::unordered_map<EngineKey, std::vector<Slot>, EngineKeyHash> engines_
      GUARDED_BY(mu_);
  /// Breakers outlive engine eviction deliberately: a sick backend that
  /// was evicted must not come back CLOSED just because its engine was
  /// rebuilt.
  std::unordered_map<EngineKey, Breaker, EngineKeyHash> breakers_
      GUARDED_BY(mu_);
  std::uint64_t tick_ GUARDED_BY(mu_) = 0;
  std::size_t resident_ GUARDED_BY(mu_) = 0;
  RouterStats stats_ GUARDED_BY(mu_);
};

}  // namespace trex::serving

#endif  // TREX_SERVING_ROUTER_H_
