#include "serving/session.h"

#include "common/logging.h"
#include "common/mutex.h"

namespace trex {

TRexSession::TRexSession(
    std::shared_ptr<const repair::RepairAlgorithm> algorithm, dc::DcSet dcs,
    Table dirty, EngineOptions engine_options)
    : algorithm_(std::move(algorithm)),
      dcs_(std::move(dcs)),
      dirty_(std::move(dirty)),
      engine_options_(engine_options) {
  TREX_CHECK(algorithm_ != nullptr);
}

TRexSession::TRexSession(
    std::shared_ptr<const repair::RepairAlgorithm> algorithm, dc::DcSet dcs,
    Table dirty, EngineOptions engine_options,
    serving::ServiceOptions service_options)
    : TRexSession(std::move(algorithm), std::move(dcs), std::move(dirty),
                  engine_options) {
  service_options.router.engine_options = engine_options;
  service_options_ = service_options;
}

Status TRexSession::Repair() {
  if (service_ == nullptr) {
    serving::ServiceOptions service_options;
    if (service_options_.has_value()) {
      service_options = *service_options_;
    } else {
      // One worker: the interactive loop issues one query at a time,
      // and parallelism lives inside requests via
      // EngineOptions::num_threads.
      service_options.num_workers = 1;
      // Keep the engine of one previous (table, DcSet) iteration warm
      // so undoing an edit does not re-run its reference repair.
      service_options.router.max_engines = 2;
      service_options.router.engine_options = engine_options_;
    }
    service_ = std::make_unique<serving::ExplainService>(service_options);
  }
  // By-reference Acquire: the router snapshots `dirty_` only when no
  // resident engine matches, so a repeat Repair() (or an undone edit
  // hitting the warm engine) copies nothing.
  std::shared_ptr<serving::EngineEntry> entry =
      service_->router().Acquire(algorithm_, dcs_, dirty_);
  TREX_RETURN_NOT_OK(entry->engine.EnsureRepair());
  TREX_ASSIGN_OR_RETURN(
      repaired_cells_, DiffTables(dirty_, entry->engine.reference_clean()));
  // Alias the routed engine's table: one resident snapshot per
  // instance, shared by engine, box, and session.
  table_ = entry->engine.shared_dirty();
  entry_ = std::move(entry);
  return Status::Ok();
}

const Table& TRexSession::clean() const {
  TREX_CHECK(entry_ != nullptr) << "call Repair() first";
  return entry_->engine.reference_clean();
}

const std::vector<RepairedCell>& TRexSession::repaired_cells() const {
  TREX_CHECK(entry_ != nullptr) << "call Repair() first";
  return repaired_cells_;
}

Engine& TRexSession::engine() {
  TREX_CHECK(entry_ != nullptr) << "call Repair() first";
  return entry_->engine;
}

serving::ExplainService& TRexSession::service() {
  TREX_CHECK(service_ != nullptr) << "call Repair() first";
  return *service_;
}

serving::ServiceStats TRexSession::service_stats() const {
  return service_ != nullptr ? service_->stats() : serving::ServiceStats{};
}

Result<CellRef> TRexSession::CellAt(std::size_t row,
                                    const std::string& attribute) const {
  if (row >= dirty_.num_rows()) {
    return Status::OutOfRange("row " + std::to_string(row) +
                              " outside the table");
  }
  TREX_ASSIGN_OR_RETURN(std::size_t col, dirty_.ColumnIndex(attribute));
  return CellRef{row, col};
}

Status TRexSession::RequireRepair() const {
  if (entry_ == nullptr) {
    return Status::InvalidArgument(
        "no repair available: call Repair() after constructing or "
        "editing the session");
  }
  return Status::Ok();
}

void TRexSession::InvalidateRepair() {
  // In-flight async tickets keep their engine alive through the entry's
  // shared_ptr; the session just stops routing new queries to it.
  entry_.reset();
  table_.reset();
  repaired_cells_.clear();
}

Result<Explanation> TRexSession::ExplainConstraints(
    CellRef target, const ConstraintExplainerOptions& options) const {
  TREX_RETURN_NOT_OK(RequireRepair());
  ExplainRequest request;
  request.target = target;
  request.kind = ExplainKind::kConstraints;
  request.constraints = options;
  // Submit-and-wait through the service: same engine, same results as a
  // direct call, but shared queueing/accounting with async traffic.
  TREX_ASSIGN_OR_RETURN(
      ExplainResult result,
      service_->ExplainSync(algorithm_, dcs_, table_, std::move(request)));
  return std::move(*result.explanation);
}

Result<std::vector<InteractionScore>>
TRexSession::ExplainConstraintInteractions(
    CellRef target, const ConstraintExplainerOptions& options) const {
  TREX_RETURN_NOT_OK(RequireRepair());
  ExplainRequest request;
  request.target = target;
  request.kind = ExplainKind::kInteractions;
  request.constraints = options;
  TREX_ASSIGN_OR_RETURN(
      ExplainResult result,
      service_->ExplainSync(algorithm_, dcs_, table_, std::move(request)));
  return std::move(result.interactions);
}

Result<Explanation> TRexSession::ExplainCells(
    CellRef target, const CellExplainerOptions& options) const {
  TREX_RETURN_NOT_OK(RequireRepair());
  ExplainRequest request;
  request.target = target;
  request.kind = ExplainKind::kCells;
  request.cells = options;
  TREX_ASSIGN_OR_RETURN(
      ExplainResult result,
      service_->ExplainSync(algorithm_, dcs_, table_, std::move(request)));
  return std::move(*result.explanation);
}

Result<PlayerScore> TRexSession::ExplainSingleCell(
    CellRef target, CellRef player_cell,
    const CellExplainerOptions& options) const {
  TREX_RETURN_NOT_OK(RequireRepair());
  ExplainRequest request;
  request.target = target;
  request.kind = ExplainKind::kSingleCell;
  request.cells = options;
  request.single_cell = player_cell;
  TREX_ASSIGN_OR_RETURN(
      ExplainResult result,
      service_->ExplainSync(algorithm_, dcs_, table_, std::move(request)));
  return std::move(*result.single_cell);
}

Result<BatchResult> TRexSession::ExplainBatch(
    const std::vector<ExplainRequest>& requests) const {
  TREX_RETURN_NOT_OK(RequireRepair());
  // Batches stay an engine-level primitive (one BatchStats, one
  // reference repair); take the entry lock so the batch serializes with
  // any async tickets the service is running on this engine.
  MutexLock guard(entry_->mu);
  return entry_->engine.ExplainBatch(requests);
}

serving::Ticket TRexSession::SubmitExplain(ExplainRequest request,
                                           serving::RequestOptions options) {
  if (Status status = RequireRepair(); !status.ok()) {
    // Fail like the synchronous paths do — a resolved error ticket, not
    // a crash on Wait().
    return serving::Ticket::Rejected(std::move(status));
  }
  return service_->Submit(algorithm_, dcs_, table_, std::move(request),
                          std::move(options));
}

Status TRexSession::SetDirtyCell(CellRef cell, Value value) {
  if (cell.row >= dirty_.num_rows() || cell.col >= dirty_.num_columns()) {
    return Status::OutOfRange("cell " + cell.ToString() +
                              " outside the table");
  }
  dirty_.Set(cell, std::move(value));
  InvalidateRepair();
  return Status::Ok();
}

Status TRexSession::RemoveConstraint(const std::string& name) {
  TREX_ASSIGN_OR_RETURN(std::size_t index, dcs_.IndexOf(name));
  dcs_ = dcs_.Without(index);
  InvalidateRepair();
  return Status::Ok();
}

Status TRexSession::AddConstraint(dc::DenialConstraint constraint) {
  if (dcs_.IndexOf(constraint.name()).ok()) {
    return Status::AlreadyExists("constraint '" + constraint.name() +
                                 "' already present");
  }
  dcs_.Add(std::move(constraint));
  InvalidateRepair();
  return Status::Ok();
}

Status TRexSession::ReplaceConstraint(dc::DenialConstraint constraint) {
  TREX_ASSIGN_OR_RETURN(std::size_t index,
                        dcs_.IndexOf(constraint.name()));
  dc::DcSet updated;
  for (std::size_t i = 0; i < dcs_.size(); ++i) {
    updated.Add(i == index ? constraint : dcs_.at(i));
  }
  dcs_ = std::move(updated);
  InvalidateRepair();
  return Status::Ok();
}

}  // namespace trex
