// Cooperative cancellation primitives for the serving layer.
//
// `CancelSource` owns a cancellation flag; `CancelToken` is a cheap,
// copyable observer of one or more flags. Tokens are threaded through
// the long-running explanation loops (the permutation sweeps in
// core/shapley_sampling and the 2^n subset enumerations in
// core/shapley_exact / core/interaction / core/counterfactual), which
// poll `cancelled()` between characteristic-function evaluations — each
// evaluation is a full black-box repair run, so polling overhead is
// negligible and cancellation latency is at most one repair call.
//
// Cancellation is cooperative and sticky: once a source is cancelled it
// stays cancelled, and work observing the token stops at the next poll
// point and reports `Status::Cancelled`. A default-constructed token is
// never cancelled, so synchronous callers pay nothing.
//
// `DeadlineSource` turns wall-clock deadlines into cancellations: a
// single timer thread holds a min-heap of (deadline, CancelSource) and
// flips each source when its deadline passes. The service arms one
// entry per deadline-carrying job at admission, so the job's merged
// token expires the work wherever it happens to be — still queued, or
// deep inside a permutation sweep / 2^n subset walk (all of which poll
// between black-box evaluations).
//
// The same primitives also carry the *soften* channel of anytime
// estimation: a token wired into `shap::StopRule::soften` (or
// `ExplainRequest::soften`) does not kill work when it fires — the
// wave-synchronous sweep driver finishes its current wave and returns
// the partial confidence-bounded estimates instead. Under
// `RequestOptions::degrade_on_deadline` the service arms the deadline
// against a soften source rather than the job's cancel source, which is
// how deadline expiry degrades to an approximate answer instead of
// `Status::Cancelled`. Hard cancel discards; soften keeps.
//
// Thread safety: all operations are safe to call concurrently; the flag
// is a relaxed atomic (cancellation needs no ordering with other data).

#ifndef TREX_SERVING_CANCEL_H_
#define TREX_SERVING_CANCEL_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace trex {

/// Observer half of a cancellation channel (see file comment). Lives in
/// namespace `trex` (not `trex::serving`) because core explanation code
/// accepts tokens without depending on the service classes.
class CancelToken {
 public:
  /// A token that is never cancelled.
  CancelToken() = default;

  /// True once any underlying source was cancelled.
  bool cancelled() const {
    for (const auto& state : states_) {
      if (state->load(std::memory_order_relaxed)) return true;
    }
    return false;
  }

  /// True when this token observes at least one source (i.e. it can ever
  /// be cancelled).
  bool can_be_cancelled() const { return !states_.empty(); }

  /// A token cancelled as soon as either input is. Null inputs are
  /// dropped, so merging with a default token is free.
  static CancelToken AnyOf(const CancelToken& a, const CancelToken& b);

 private:
  friend class CancelSource;
  std::vector<std::shared_ptr<const std::atomic<bool>>> states_;
};

/// Owner half of a cancellation channel: hands out tokens and flips them.
class CancelSource {
 public:
  CancelSource() : state_(std::make_shared<std::atomic<bool>>(false)) {}

  /// A token observing this source.
  CancelToken token() const;

  /// Requests cancellation; idempotent.
  void Cancel() { state_->store(true, std::memory_order_relaxed); }

  bool cancelled() const { return state_->load(std::memory_order_relaxed); }

 private:
  std::shared_ptr<std::atomic<bool>> state_;
};

/// Timer-driven deadline enforcement (see file comment): one thread
/// over an ordered map of armed deadlines, firing
/// `CancelSource::Cancel()` on each source when the clock passes it.
/// Firing a source whose work has already resolved is harmless
/// (cancellation is a sticky flag nobody reads afterwards), so `Disarm`
/// is an optimization, not a correctness requirement — but it erases
/// eagerly, so residency is bounded by the *outstanding* deadlines, not
/// by throughput times deadline horizon. All methods are thread-safe.
class DeadlineSource {
 public:
  DeadlineSource();

  /// Stops the timer thread; armed entries that have not fired never
  /// fire.
  ~DeadlineSource();

  DeadlineSource(const DeadlineSource&) = delete;
  DeadlineSource& operator=(const DeadlineSource&) = delete;

  /// Cancels `source` once `deadline` passes (immediately for deadlines
  /// already in the past). Returns an id for `Disarm`. `source` must not
  /// be null; it is kept alive until the entry fires or is disarmed.
  std::uint64_t Arm(std::chrono::steady_clock::time_point deadline,
                    std::shared_ptr<CancelSource> source) EXCLUDES(mu_);

  /// Drops an armed entry so it never fires, releasing its source
  /// immediately. Idempotent; racing the timer is fine (the entry may
  /// fire anyway, which callers must treat as a normal deadline
  /// expiry). Unknown/already-fired ids are ignored.
  void Disarm(std::uint64_t id) EXCLUDES(mu_);

  /// Entries currently armed (not yet fired or disarmed).
  std::size_t armed() const EXCLUDES(mu_);

 private:
  /// Unique ordering key: deadline first, arm id as tie-break.
  using ArmKey = std::pair<std::chrono::steady_clock::time_point,
                           std::uint64_t>;

  void TimerLoop() EXCLUDES(mu_);

  mutable Mutex mu_;
  CondVar cv_;
  /// Armed sources ordered soonest-first; `begin()` is the next entry
  /// to fire. `by_id_` indexes the same entries for eager `Disarm`.
  std::map<ArmKey, std::shared_ptr<CancelSource>> armed_ GUARDED_BY(mu_);
  std::unordered_map<std::uint64_t, std::chrono::steady_clock::time_point>
      by_id_ GUARDED_BY(mu_);
  std::uint64_t next_id_ GUARDED_BY(mu_) = 1;
  bool stop_ GUARDED_BY(mu_) = false;
  /// Started lazily by the first `Arm` (under `mu_`), so deadline-free
  /// services never pay for a timer thread; the destructor moves the
  /// handle out under `mu_` and joins it unlocked.
  std::thread timer_ GUARDED_BY(mu_);
};

}  // namespace trex

#endif  // TREX_SERVING_CANCEL_H_
