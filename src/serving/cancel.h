// Deadline enforcement for the serving layer.
//
// The cancellation primitives themselves (`CancelToken` /
// `CancelSource`) live in common/cancel.h — the bottom layer — because
// the core explanation loops poll tokens without depending on serving.
// This header adds the serving-side owner infrastructure:
//
// `DeadlineSource` turns wall-clock deadlines into cancellations: a
// single timer thread holds a min-heap of (deadline, CancelSource) and
// flips each source when its deadline passes. The service arms one
// entry per deadline-carrying job at admission, so the job's merged
// token expires the work wherever it happens to be — still queued, or
// deep inside a permutation sweep / 2^n subset walk (all of which poll
// between black-box evaluations).
//
// Under `RequestOptions::degrade_on_deadline` the service arms the
// deadline against a *soften* source rather than the job's cancel
// source, which is how deadline expiry degrades to an approximate
// answer instead of `Status::Cancelled` (see common/cancel.h).

#ifndef TREX_SERVING_CANCEL_H_
#define TREX_SERVING_CANCEL_H_

#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <thread>
#include <unordered_map>
#include <utility>

#include "common/cancel.h"
#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace trex {

/// Timer-driven deadline enforcement (see file comment): one thread
/// over an ordered map of armed deadlines, firing
/// `CancelSource::Cancel()` on each source when the clock passes it.
/// Firing a source whose work has already resolved is harmless
/// (cancellation is a sticky flag nobody reads afterwards), so `Disarm`
/// is an optimization, not a correctness requirement — but it erases
/// eagerly, so residency is bounded by the *outstanding* deadlines, not
/// by throughput times deadline horizon. All methods are thread-safe.
class DeadlineSource {
 public:
  DeadlineSource();

  /// Stops the timer thread; armed entries that have not fired never
  /// fire.
  ~DeadlineSource();

  DeadlineSource(const DeadlineSource&) = delete;
  DeadlineSource& operator=(const DeadlineSource&) = delete;

  /// Cancels `source` once `deadline` passes (immediately for deadlines
  /// already in the past). Returns an id for `Disarm`. `source` must not
  /// be null; it is kept alive until the entry fires or is disarmed.
  std::uint64_t Arm(std::chrono::steady_clock::time_point deadline,
                    std::shared_ptr<CancelSource> source) EXCLUDES(mu_);

  /// Drops an armed entry so it never fires, releasing its source
  /// immediately. Idempotent; racing the timer is fine (the entry may
  /// fire anyway, which callers must treat as a normal deadline
  /// expiry). Unknown/already-fired ids are ignored.
  void Disarm(std::uint64_t id) EXCLUDES(mu_);

  /// Entries currently armed (not yet fired or disarmed).
  std::size_t armed() const EXCLUDES(mu_);

 private:
  /// Unique ordering key: deadline first, arm id as tie-break.
  using ArmKey = std::pair<std::chrono::steady_clock::time_point,
                           std::uint64_t>;

  void TimerLoop() EXCLUDES(mu_);

  mutable Mutex mu_;
  CondVar cv_;
  /// Armed sources ordered soonest-first; `begin()` is the next entry
  /// to fire. `by_id_` indexes the same entries for eager `Disarm`.
  std::map<ArmKey, std::shared_ptr<CancelSource>> armed_ GUARDED_BY(mu_);
  std::unordered_map<std::uint64_t, std::chrono::steady_clock::time_point>
      by_id_ GUARDED_BY(mu_);
  std::uint64_t next_id_ GUARDED_BY(mu_) = 1;
  bool stop_ GUARDED_BY(mu_) = false;
  /// Started lazily by the first `Arm` (under `mu_`), so deadline-free
  /// services never pay for a timer thread; the destructor moves the
  /// handle out under `mu_` and joins it unlocked.
  std::thread timer_ GUARDED_BY(mu_);
};

}  // namespace trex

#endif  // TREX_SERVING_CANCEL_H_
