// `serving::ExplainService`: the asynchronous, multi-table front door of
// the explanation stack, built as a three-stage ADMIT → COALESCE →
// EXECUTE scheduler.
//
// T-REx is interactive: users submit new explanation queries while
// earlier Shapley sweeps are still running, and one deployment serves
// many tables. Every score is a sweep over permutations or 2^n subsets
// of full black-box repair runs, so the service's job is deciding how
// that compute is admitted, grouped, and killed:
//
//   ExplainService service;
//   Ticket ticket = service.Submit(algorithm, dcs, table, request,
//                                  {.priority = 5});
//   ... do other work, submit more requests ...
//   Result<ExplainResult> result = ticket.Wait();   // or ticket.Cancel()
//
// ADMIT — `Submit` returns immediately with a `Ticket` (a future plus a
// cancellation handle). The queue is bounded by
// `ServiceOptions::max_queued_jobs`; when it is full, a queued job that
// was already cancelled is reclaimed first (it resolves `Cancelled`, as
// it would have at dequeue — dead jobs never hold capacity against live
// work), otherwise the worst job of queue ∪ {incoming} — lowest
// priority, then youngest — is load-shed: its ticket resolves
// `Status::Rejected` without the work ever running, so a flood of
// low-priority traffic can never starve a high-priority request out of
// admission. Depth, high-water mark, and shed counts are surfaced in
// `ServiceStats`.
//
// COALESCE — workers drain the queue in priority order (higher
// `RequestOptions::priority` first, FIFO within a level). At dequeue a
// worker gathers queued jobs that route to the same engine key as the
// job it popped (same algorithm id + DcSet/table fingerprints, verified
// by full comparison) up to `ServiceOptions::max_coalesced_requests`,
// lowers them into one `Engine::ExplainBatch` call, and fans the
// per-target results back out to each job's ticket individually. This
// recovers the engine layer's batch amortization (one reference repair
// + shared memo sweep instead of per-job acquire/evict churn) under
// concurrent single-request traffic, while each member keeps its own
// priority, deadline, cancellation, and callback — results are
// bit-identical to uncoalesced execution. A member cancelled while
// queued drops out before lowering.
//
// EXECUTE — per-engine access is serialized (`EngineRouter` hands back
// shared entries; the engine is single-caller). Cancellation is
// cooperative end to end: `Ticket::Cancel()` (or a caller-supplied
// `RequestOptions::cancel` token) stops a queued job before it runs and
// an in-flight job at its next black-box evaluation; the future then
// resolves `Status::Cancelled`. `RequestOptions::deadline` is enforced
// the same way: a `DeadlineSource` timer arms each deadline-carrying
// job's cancel source at admission, so expiry kills the job wherever it
// is — queued, or mid-sweep inside a permutation or 2^n loop — with the
// expiry counted separately (`ServiceStats::expired`) from caller
// cancellation. `RequestOptions::degrade_on_deadline` softens that
// contract: expiry fires the job's *soften* token instead, sampled work
// finishes its current wave, and the ticket resolves OK with partial
// confidence-bounded estimates (`ExplainResult::approximate` +
// achieved CI width) rather than `kCancelled` — deadline-bound traffic
// gets an answer with honest error bars (`ServiceStats::degraded`). An
// optional `on_complete` callback fires on the worker thread after the
// future is resolved.
//
// FAILURE CLASSIFICATION & SELF-HEALING — every error a ticket can
// resolve with falls into exactly one bucket, and the service's
// recovery machinery is keyed off that split:
//
//   * *Transient* — `StatusCode::kUnavailable`, the only code the stack
//     treats as retryable (see common/status.h). The execute stage
//     retries a transient member up to `RetryPolicy::max_attempts`
//     total attempts with exponential backoff and deterministic jitter
//     (seeded per job, so a replay backs off identically). The backoff
//     sleep is a `CancelToken::WaitFor` park on the retrying members'
//     merged cancel tokens — an expiring deadline or a caller cancel
//     cuts a pending backoff immediately; a sleep never outlives the
//     deadline that should have killed it. Retries exhausted, the
//     member fails with the last transient status
//     (`ServiceStats::failed_transient`).
//   * *Permanent* — every other non-cancellation, non-rejection error.
//     Never retried; resolved on first observation
//     (`ServiceStats::failed_permanent`).
//   * *Cancellation / rejection* — `kCancelled` / `kRejected`, counted
//     as before (`cancelled`/`expired`, `shed`).
//
// Transient outcomes also feed the router's per-engine-key circuit
// breaker (see serving/router.h): `Submit` fast-fails admission for a
// key whose breaker is open (`kUnavailable`, counted in `failed` +
// `failed_by_code`, never queued), and each engine call in the execute
// stage is gated by `BreakerBeginCall` / reported via `ReportOutcome`,
// so a persistently failing backend is quarantined instead of burning
// retry budget — and probed back to health after its cooldown.
//
// Failure isolation in coalesced batches: results fan back *per
// member*. One member's backend error (its target's repair call
// failing) resolves only that member's ticket; siblings in the same
// lowered `ExplainBatch` call still resolve OK with bit-identical
// values. Only an engine-level failure (e.g. the shared reference
// repair) fans to every member — exactly what each would observe
// running alone.
//
// Determinism: scheduling affects only latency, never values — a
// request's result is bit-identical to calling `Engine::Explain`
// synchronously with the same seeds, whether it ran alone or inside a
// coalesced batch, because both paths run exactly that code on exactly
// one engine per instance. Recovery preserves this: a transient fault
// followed by a successful retry leaves no trace in the memo (failed
// evaluations write no cache entry; see core/repair_game.h), so
// post-fault results are bit-identical to a fault-free run.
//
// Thread safety: all public methods are thread-safe. Destruction cancels
// queued and in-flight work, resolves every outstanding future, and
// joins the workers.
//
// Lock model (machine-checked under Clang's -Wthread-safety; see
// common/thread_annotations.h): the scheduler state — queue, job
// registry, stats — is `GUARDED_BY(mu_)`. Lock order is
// `EngineEntry::mu` before `mu_` (`ServeBatch` bumps coalescing stats
// while holding the engine), never the reverse: no code path calls into
// an engine, the router, or user callbacks while holding `mu_`, which
// is what keeps `stats()` safe to call from anywhere — including while
// a batch holds an entry mutex (pinned by
// tests/serving/stats_deadlock_test.cc).

#ifndef TREX_SERVING_SERVICE_H_
#define TREX_SERVING_SERVICE_H_

#include <chrono>
#include <cstdint>
#include <functional>
#include <future>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "core/engine.h"
#include "dc/constraint.h"
#include "repair/algorithm.h"
#include "serving/cancel.h"
#include "serving/router.h"
#include "table/table.h"

namespace trex::serving {

/// Per-request scheduling options.
struct RequestOptions {
  /// Higher-priority requests dequeue first; equal priorities are FIFO.
  /// Priority also orders load-shedding: when the queue is full, the
  /// lowest-priority (then youngest) queued job is shed first.
  int priority = 0;
  /// Wall-clock expiry. Enforced wherever the job is when it passes:
  /// still queued (resolved at dequeue without running) or already
  /// inside a sweep (the armed cancel token stops it at the next
  /// black-box evaluation). Either way the ticket resolves
  /// `Status::Cancelled` and the expiry is counted in
  /// `ServiceStats::expired`.
  std::optional<std::chrono::steady_clock::time_point> deadline;
  /// Degrade instead of cancel at the deadline: expiry fires the
  /// request's *soften* token (`ExplainRequest::soften`) rather than its
  /// cancel token, so a sampled job finishes its current wave and
  /// resolves OK with the partial confidence-bounded estimates it has —
  /// `ExplainResult::approximate` set and `achieved_ci_half_width`
  /// reporting how wide the error bars are — never `kCancelled`. A job
  /// still queued at expiry is allowed to run and self-limits to about
  /// one wave. Kinds that ignore the soften token (the exact
  /// enumeration paths) run to completion, as if no deadline were set.
  /// Degraded completions are counted in `ServiceStats::degraded`.
  bool degrade_on_deadline = false;
  /// Caller-owned cancellation, merged with the ticket's own handle.
  CancelToken cancel;
  /// Invoked right after the future resolves (also for
  /// cancelled/failed/shed jobs) — on the worker thread for jobs that
  /// reached a worker, but on the *submitting* thread for jobs resolved
  /// at admission (a shed job's callback can fire on another caller's
  /// Submit stack, and before that Submit returns). Must not block for
  /// long, must not assume a particular thread, and must not destroy
  /// the service.
  std::function<void(const Result<ExplainResult>&)> on_complete;
};

/// Retry policy for *transient* failures (`StatusCode::kUnavailable`)
/// in the execute stage. Permanent errors are never retried.
struct RetryPolicy {
  /// Total attempts per engine call, first try included. 1 disables
  /// retrying.
  std::size_t max_attempts = 3;
  /// Backoff before attempt k (k >= 2) is
  /// `min(initial_backoff * multiplier^(k-2), max_backoff)`, scaled by
  /// a jitter factor drawn deterministically from `seed` and the
  /// leader job's id — replays back off identically.
  std::chrono::milliseconds initial_backoff{10};
  std::chrono::milliseconds max_backoff{1000};
  double multiplier = 2.0;
  /// Jitter factor is uniform in [1 - jitter, 1 + jitter]; 0 disables.
  double jitter = 0.25;
  /// Seed for the jitter chain (splitmix64 over seed ^ job id ^
  /// attempt).
  std::uint64_t seed = 0x7265747279ULL;  // "retry"
};

/// Options for the service.
struct ServiceOptions {
  /// Worker threads executing requests. Requests to different engines
  /// overlap up to this width; requests to the same engine serialize.
  std::size_t num_workers = 2;
  /// Admission cap on queued (not yet running) jobs; 0 = unbounded.
  /// When the queue is full, the worst job of queue ∪ {incoming} —
  /// lowest priority, then youngest — resolves `Status::Rejected`.
  std::size_t max_queued_jobs = 0;
  /// Most jobs one dequeue may lower into a single `ExplainBatch` call
  /// (the popped job plus same-engine queued jobs). 1 disables
  /// coalescing (every job runs alone, the PR 2 behavior). Coalescing
  /// never changes results, only cost and latency.
  std::size_t max_coalesced_requests = 8;
  /// Engine pool configuration (cap + per-engine options + circuit
  /// breaker).
  RouterOptions router;
  /// Transient-failure retry policy for the execute stage.
  RetryPolicy retry;
};

/// Aggregate accounting across the service's lifetime.
struct ServiceStats {
  std::size_t submitted = 0;
  /// Resolved with a value.
  std::size_t completed = 0;
  /// Resolved with a non-cancellation, non-rejection error.
  std::size_t failed = 0;
  /// ...of which resolved with a *transient* error (`kUnavailable`):
  /// retries exhausted, or fast-failed by an open circuit breaker.
  std::size_t failed_transient = 0;
  /// ...and of which resolved with a *permanent* error (anything
  /// else). `failed == failed_transient + failed_permanent`.
  std::size_t failed_permanent = 0;
  /// Failed resolutions broken down by status code (ordered for
  /// deterministic emission; covers exactly the `failed` bucket).
  std::map<StatusCode, std::size_t> failed_by_code;
  /// Engine-call re-executions after a transient failure (attempt 2+
  /// in the execute stage's retry loop, counted per re-executed call).
  std::size_t retries = 0;
  /// Resolved `Cancelled` (caller cancels and deadline expirations).
  std::size_t cancelled = 0;
  /// ...of which were deadline expirations — queued or mid-sweep —
  /// rather than caller cancels.
  std::size_t expired = 0;
  /// Jobs whose deadline expired under `degrade_on_deadline`: resolved
  /// OK (counted in `completed` too) with partial confidence-bounded
  /// estimates instead of `Cancelled`.
  std::size_t degraded = 0;
  /// Load-shed at admission (resolved `Rejected`, never ran).
  std::size_t shed = 0;
  /// Dequeues that lowered 2+ jobs into one `ExplainBatch` call...
  std::size_t coalesced_batches = 0;
  /// ...and the total jobs served by those lowerings.
  std::size_t coalesced_jobs = 0;
  /// Jobs queued right now.
  std::size_t queue_depth = 0;
  /// Largest queue depth ever observed.
  std::size_t queue_high_water = 0;
  RouterStats router;
};

/// Handle to one submitted request: a future plus a cancellation lever.
/// Copyable; all copies observe the same request.
class Ticket {
 public:
  Ticket() = default;

  /// A ticket already resolved with `status` and attached to no service
  /// — for submissions rejected before admission (e.g. a session asked
  /// to explain with no repair). `status` must not be OK.
  static Ticket Rejected(Status status);

  /// Monotonic id (1-based submission order); 0 for a default or
  /// rejected ticket.
  std::uint64_t id() const { return id_; }
  bool valid() const { return id_ != 0; }

  /// Requests cooperative cancellation (see file comment). Idempotent;
  /// racing an almost-finished job is fine — the future then resolves
  /// with the completed result.
  void Cancel();

  /// True once the future is resolved (non-blocking).
  bool done() const;

  /// Blocks until resolution and returns the result (copy; callable from
  /// any thread, any number of times).
  [[nodiscard]] Result<ExplainResult> Wait();

 private:
  friend class ExplainService;
  std::uint64_t id_ = 0;
  std::shared_ptr<CancelSource> cancel_;
  std::shared_future<Result<ExplainResult>> future_;
};

/// Asynchronous multi-table explanation service (see file comment).
class ExplainService {
 public:
  explicit ExplainService(ServiceOptions options = {});

  /// Cancels outstanding work, resolves every future, joins workers.
  ~ExplainService();

  ExplainService(const ExplainService&) = delete;
  ExplainService& operator=(const ExplainService&) = delete;

  /// Enqueues one explanation request against (algorithm, dcs, table)
  /// and returns immediately. The table is shared, not copied; callers
  /// submitting many requests for one table should reuse one
  /// `shared_ptr`. The algorithm must be thread-safe (all bundled
  /// repairers are). Under a full queue the returned ticket may already
  /// be resolved `Status::Rejected` (load-shedding; see file comment).
  Ticket Submit(std::shared_ptr<const repair::RepairAlgorithm> algorithm,
                dc::DcSet dcs, std::shared_ptr<const Table> table,
                ExplainRequest request, RequestOptions options = {})
      EXCLUDES(mu_);

  /// Submit + Wait, for callers that want the service's routing but not
  /// its asynchrony (the session's synchronous explain calls).
  [[nodiscard]] Result<ExplainResult> ExplainSync(
      std::shared_ptr<const repair::RepairAlgorithm> algorithm, dc::DcSet dcs,
      std::shared_ptr<const Table> table, ExplainRequest request,
      RequestOptions options = {});

  /// The engine pool. Exposed for direct engine access (`TRexSession`
  /// uses it for repair diffs and batch calls); hold the entry's mutex
  /// when service traffic may run concurrently.
  EngineRouter& router() { return router_; }

  /// Safe from any thread, any time — takes only `mu_` (briefly) and
  /// the router's leaf lock, never an engine entry's mutex (see the
  /// lock model in the file comment).
  ServiceStats stats() const EXCLUDES(mu_);

  /// Jobs admitted but not yet started (queued).
  std::size_t pending() const EXCLUDES(mu_);

  const ServiceOptions& options() const { return options_; }

 private:
  struct Job {
    std::uint64_t id = 0;
    int priority = 0;
    std::uint64_t seq = 0;  // FIFO tie-break within a priority
    std::optional<std::chrono::steady_clock::time_point> deadline;
    std::shared_ptr<const repair::RepairAlgorithm> algorithm;
    dc::DcSet dcs;
    std::shared_ptr<const Table> table;
    /// Routing identity, computed at admission; the coalescing stage
    /// groups queued jobs by it (then verifies dcs/table in full).
    EngineKey key;
    ExplainRequest request;  // `request.cancel` holds the merged token
    std::shared_ptr<CancelSource> cancel;
    /// Armed with `DeadlineSource` when a deadline is set; fired =
    /// the cancellation was a deadline expiry, not a caller cancel.
    std::shared_ptr<CancelSource> deadline_cancel;
    /// Under `degrade_on_deadline`, the deadline arms this *soften*
    /// source instead of `deadline_cancel`: expiry flips the request's
    /// stopping rule to finish-current-wave, and the job resolves OK
    /// with partial estimates.
    std::shared_ptr<CancelSource> soften_cancel;
    std::uint64_t deadline_id = 0;
    std::function<void(const Result<ExplainResult>&)> on_complete;
    std::promise<Result<ExplainResult>> promise;
  };

  /// Strict total order: best job first — higher priority, then older
  /// (smaller seq; seqs are unique). `begin()` is the next job to run,
  /// `rbegin()` the load-shedding victim.
  struct JobOrder {
    bool operator()(const std::shared_ptr<Job>& a,
                    const std::shared_ptr<Job>& b) const {
      if (a->priority != b->priority) return a->priority > b->priority;
      return a->seq < b->seq;
    }
  };

  /// True when `job` may share `leader`'s engine: equal key, verified
  /// by full DcSet/table comparison (64-bit fingerprints can collide).
  static bool CoalescingCompatible(const Job& job, const Job& leader);

  void WorkerLoop() EXCLUDES(mu_);
  /// Executes one dequeued group: screens members (cancelled/expired
  /// jobs resolve without running), acquires the leader's engine once,
  /// lowers survivors into one `ExplainBatch` call, and fans results
  /// back to each ticket *per member* (failure isolation — see file
  /// comment). Transient member failures are retried per
  /// `RetryPolicy`, with each engine call gated/reported through the
  /// router's circuit breaker; the backoff park releases the engine
  /// mutex and waits on the retrying members' cancel tokens. Takes the
  /// leader's `EngineEntry::mu` and (briefly, under it) `mu_` — the
  /// one place that fixes the entry-before-service lock order.
  void ServeBatch(std::vector<std::shared_ptr<Job>> jobs) EXCLUDES(mu_);
  /// Resolves the job's future, updates stats, fires the callback, and
  /// forgets the job. A cancelled result counts as a deadline expiry
  /// when `expired` is set or the job's armed deadline source fired.
  /// The future resolution and the callback run *outside* `mu_`.
  void Resolve(const std::shared_ptr<Job>& job, Result<ExplainResult> result,
               bool expired = false) EXCLUDES(mu_);

  ServiceOptions options_;
  EngineRouter router_;
  DeadlineSource deadlines_;

  mutable Mutex mu_;
  CondVar work_cv_;
  /// The admission queue, kept sorted by `JobOrder` so dequeue,
  /// shedding, and coalescing all walk it directly.
  std::set<std::shared_ptr<Job>, JobOrder> queue_ GUARDED_BY(mu_);
  /// Every unresolved job (queued or in-flight), for shutdown
  /// cancellation.
  std::unordered_map<std::uint64_t, std::shared_ptr<Job>> outstanding_
      GUARDED_BY(mu_);
  bool stop_ GUARDED_BY(mu_) = false;
  std::uint64_t next_id_ GUARDED_BY(mu_) = 1;
  ServiceStats stats_ GUARDED_BY(mu_);

  std::vector<std::thread> workers_;
};

}  // namespace trex::serving

#endif  // TREX_SERVING_SERVICE_H_
