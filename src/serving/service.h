// `serving::ExplainService`: the asynchronous, multi-table front door of
// the explanation stack.
//
// T-REx is interactive: users submit new explanation queries while
// earlier Shapley sweeps are still running, and one deployment serves
// many tables. The service decouples *admission* from *execution*:
//
//   ExplainService service;
//   Ticket ticket = service.Submit(algorithm, dcs, table, request,
//                                  {.priority = 5});
//   ... do other work, submit more requests ...
//   Result<ExplainResult> result = ticket.Wait();   // or ticket.Cancel()
//
// `Submit` returns immediately with a `Ticket` (a future plus a
// cancellation handle). Worker threads drain a priority queue (higher
// `RequestOptions::priority` first, FIFO within a priority level),
// route each job through an `EngineRouter` (so requests for the same
// (algorithm, DcSet, Table) instance share one engine and its memo
// caches, while requests for different tables overlap in wall-clock),
// and serialize per-engine access so the engine's single-caller
// invariant holds under concurrent traffic.
//
// Cancellation is cooperative end to end: `Ticket::Cancel()` (or a
// caller-supplied `RequestOptions::cancel` token) stops a queued job
// before it runs and an in-flight job at its next black-box evaluation;
// the future then resolves to `Status::Cancelled`. A missed
// `RequestOptions::deadline` cancels a job at dequeue time. An optional
// `on_complete` callback fires on the worker thread after the future is
// resolved.
//
// Determinism: execution order affects only latency, never values — a
// request's result is bit-identical to calling `Engine::Explain`
// synchronously with the same seeds, because the service runs exactly
// that code on exactly one engine per instance.
//
// Thread safety: all public methods are thread-safe. Destruction cancels
// queued and in-flight work, resolves every outstanding future, and
// joins the workers.

#ifndef TREX_SERVING_SERVICE_H_
#define TREX_SERVING_SERVICE_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <optional>
#include <queue>
#include <thread>
#include <unordered_map>
#include <vector>

#include "core/engine.h"
#include "dc/constraint.h"
#include "repair/algorithm.h"
#include "serving/cancel.h"
#include "serving/router.h"
#include "table/table.h"

namespace trex::serving {

/// Per-request scheduling options.
struct RequestOptions {
  /// Higher-priority requests dequeue first; equal priorities are FIFO.
  int priority = 0;
  /// Jobs not *started* by this time resolve to `Status::Cancelled`
  /// without running (in-flight work is bounded by `cancel` instead).
  std::optional<std::chrono::steady_clock::time_point> deadline;
  /// Caller-owned cancellation, merged with the ticket's own handle.
  CancelToken cancel;
  /// Invoked on the worker thread right after the future resolves (also
  /// for cancelled/failed jobs). Must not block for long and must not
  /// destroy the service.
  std::function<void(const Result<ExplainResult>&)> on_complete;
};

/// Options for the service.
struct ServiceOptions {
  /// Worker threads executing requests. Requests to different engines
  /// overlap up to this width; requests to the same engine serialize.
  std::size_t num_workers = 2;
  /// Engine pool configuration (cap + per-engine options).
  RouterOptions router;
};

/// Aggregate accounting across the service's lifetime.
struct ServiceStats {
  std::size_t submitted = 0;
  /// Resolved with a value.
  std::size_t completed = 0;
  /// Resolved with a non-cancellation error.
  std::size_t failed = 0;
  /// Resolved `Cancelled` (including deadline expirations).
  std::size_t cancelled = 0;
  /// ...of which missed their deadline before starting.
  std::size_t expired = 0;
  RouterStats router;
};

/// Handle to one submitted request: a future plus a cancellation lever.
/// Copyable; all copies observe the same request.
class Ticket {
 public:
  Ticket() = default;

  /// A ticket already resolved with `status` and attached to no service
  /// — for submissions rejected before admission (e.g. a session asked
  /// to explain with no repair). `status` must not be OK.
  static Ticket Rejected(Status status);

  /// Monotonic id (1-based submission order); 0 for a default or
  /// rejected ticket.
  std::uint64_t id() const { return id_; }
  bool valid() const { return id_ != 0; }

  /// Requests cooperative cancellation (see file comment). Idempotent;
  /// racing an almost-finished job is fine — the future then resolves
  /// with the completed result.
  void Cancel();

  /// True once the future is resolved (non-blocking).
  bool done() const;

  /// Blocks until resolution and returns the result (copy; callable from
  /// any thread, any number of times).
  Result<ExplainResult> Wait();

 private:
  friend class ExplainService;
  std::uint64_t id_ = 0;
  std::shared_ptr<CancelSource> cancel_;
  std::shared_future<Result<ExplainResult>> future_;
};

/// Asynchronous multi-table explanation service (see file comment).
class ExplainService {
 public:
  explicit ExplainService(ServiceOptions options = {});

  /// Cancels outstanding work, resolves every future, joins workers.
  ~ExplainService();

  ExplainService(const ExplainService&) = delete;
  ExplainService& operator=(const ExplainService&) = delete;

  /// Enqueues one explanation request against (algorithm, dcs, table)
  /// and returns immediately. The table is shared, not copied; callers
  /// submitting many requests for one table should reuse one
  /// `shared_ptr`. The algorithm must be thread-safe (all bundled
  /// repairers are).
  Ticket Submit(std::shared_ptr<const repair::RepairAlgorithm> algorithm,
                dc::DcSet dcs, std::shared_ptr<const Table> table,
                ExplainRequest request, RequestOptions options = {});

  /// Submit + Wait, for callers that want the service's routing but not
  /// its asynchrony (the session's synchronous explain calls).
  Result<ExplainResult> ExplainSync(
      std::shared_ptr<const repair::RepairAlgorithm> algorithm, dc::DcSet dcs,
      std::shared_ptr<const Table> table, ExplainRequest request,
      RequestOptions options = {});

  /// The engine pool. Exposed for direct engine access (`TRexSession`
  /// uses it for repair diffs and batch calls); hold the entry's mutex
  /// when service traffic may run concurrently.
  EngineRouter& router() { return router_; }

  ServiceStats stats() const;

  /// Jobs admitted but not yet started (queued).
  std::size_t pending() const;

  const ServiceOptions& options() const { return options_; }

 private:
  struct Job {
    std::uint64_t id = 0;
    int priority = 0;
    std::uint64_t seq = 0;  // FIFO tie-break within a priority
    std::optional<std::chrono::steady_clock::time_point> deadline;
    std::shared_ptr<const repair::RepairAlgorithm> algorithm;
    dc::DcSet dcs;
    std::shared_ptr<const Table> table;
    ExplainRequest request;  // `request.cancel` holds the merged token
    std::shared_ptr<CancelSource> cancel;
    std::function<void(const Result<ExplainResult>&)> on_complete;
    std::promise<Result<ExplainResult>> promise;
  };

  struct JobOrder {
    bool operator()(const std::shared_ptr<Job>& a,
                    const std::shared_ptr<Job>& b) const {
      // priority_queue pops the *largest*: lower priority (or same
      // priority, later submission) sorts below.
      if (a->priority != b->priority) return a->priority < b->priority;
      return a->seq > b->seq;
    }
  };

  void WorkerLoop();
  void Serve(std::shared_ptr<Job> job);
  /// Resolves the job's future, updates stats, fires the callback, and
  /// forgets the job. `expired` marks deadline cancellations.
  void Resolve(const std::shared_ptr<Job>& job, Result<ExplainResult> result,
               bool expired = false);

  ServiceOptions options_;
  EngineRouter router_;

  mutable std::mutex mu_;
  std::condition_variable work_cv_;
  std::priority_queue<std::shared_ptr<Job>, std::vector<std::shared_ptr<Job>>,
                      JobOrder>
      queue_;
  /// Every unresolved job (queued or in-flight), for shutdown
  /// cancellation.
  std::unordered_map<std::uint64_t, std::shared_ptr<Job>> outstanding_;
  bool stop_ = false;
  std::uint64_t next_id_ = 1;
  ServiceStats stats_;

  std::vector<std::thread> workers_;
};

}  // namespace trex::serving

#endif  // TREX_SERVING_SERVICE_H_
