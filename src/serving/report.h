// Rendering of explanations and repair screens.
//
// Text stand-ins for the GUI's three screens (paper Figure 3): the repair
// screen shows the dirty/clean diff with highlight markers; the
// explanation screen ranks DCs or cells with proportional bars and,
// for cells, a green-graded heatmap over the table — "the darker the
// color, the more influencing the DC/cell is" (§3).

#ifndef TREX_SERVING_REPORT_H_
#define TREX_SERVING_REPORT_H_

#include <string>

#include "core/explainer.h"
#include "serving/session.h"
#include "table/printer.h"

namespace trex {

/// Rendering options for reports.
struct ReportOptions {
  PrinterOptions printer;
  /// Rows shown in ranking tables (0 = all).
  std::size_t top_k = 0;
  /// Width of the proportional bar column.
  std::size_t bar_width = 24;
};

/// Renders a ranked Shapley table, e.g.
///
///   rank  player      shapley   stderr  bar
///   ----  ----------  --------  ------  ------------------------
///   1     C3          0.6667    -       ########################
///   2     C1          0.1667    -       ######
std::string RenderRanking(const Explanation& explanation,
                          const ReportOptions& options = {});

/// Renders the repair screen: the dirty table with dirty-cell markers
/// followed by the clean table with repaired-cell markers (Figure 2 /
/// Figure 3b). Requires `session.has_repair()`.
std::string RenderRepairScreen(const TRexSession& session,
                               const ReportOptions& options = {});

/// Renders the cell-explanation heatmap: the dirty table with heat
/// markers graded by normalized Shapley value (Figure 3c). Only
/// meaningful for cell explanations.
std::string RenderCellHeatmap(const Table& dirty,
                              const Explanation& explanation,
                              const ReportOptions& options = {});

/// Serializes an explanation as a JSON object (stable field order) for
/// downstream tooling.
std::string ExplanationToJson(const Explanation& explanation);

/// Renders pairwise constraint interactions, strongest first, with
/// complement/substitute annotations.
std::string RenderInteractions(
    const std::vector<InteractionScore>& interactions,
    std::size_t top_k = 0);

/// Renders counterfactual removal sets, e.g.
///   remove {C1, C3} -> repair does not happen
std::string RenderRemovalSets(
    const std::vector<std::vector<std::string>>& removal_sets);

}  // namespace trex

#endif  // TREX_SERVING_REPORT_H_
