#include "serving/cancel.h"

#include <utility>

#include "common/logging.h"

namespace trex {

DeadlineSource::DeadlineSource() = default;

DeadlineSource::~DeadlineSource() {
  std::thread timer;
  {
    MutexLock lock(mu_);
    stop_ = true;
    // Move the handle out so the join below runs unlocked — the timer
    // thread needs `mu_` to observe `stop_` and exit.
    timer = std::move(timer_);
  }
  cv_.NotifyAll();
  if (timer.joinable()) timer.join();
}

std::uint64_t DeadlineSource::Arm(
    std::chrono::steady_clock::time_point deadline,
    std::shared_ptr<CancelSource> source) {
  TREX_CHECK(source != nullptr);
  std::uint64_t id = 0;
  {
    MutexLock lock(mu_);
    id = next_id_++;
    armed_.emplace(ArmKey{deadline, id}, std::move(source));
    by_id_.emplace(id, deadline);
    if (!timer_.joinable()) {
      timer_ = std::thread([this] { TimerLoop(); });
    }
  }
  cv_.NotifyAll();
  return id;
}

void DeadlineSource::Disarm(std::uint64_t id) {
  MutexLock lock(mu_);
  auto it = by_id_.find(id);
  if (it == by_id_.end()) return;  // unknown or already fired
  armed_.erase(ArmKey{it->second, id});
  by_id_.erase(it);
}

std::size_t DeadlineSource::armed() const {
  MutexLock lock(mu_);
  return by_id_.size();
}

void DeadlineSource::TimerLoop() {
  MutexLock lock(mu_);
  for (;;) {
    if (stop_) return;
    if (armed_.empty()) {
      cv_.Wait(lock);
      continue;
    }
    auto first = armed_.begin();
    const auto deadline = first->first.first;
    if (deadline <= std::chrono::steady_clock::now()) {
      // Fire under the lock: Cancel() is one relaxed atomic store, and
      // holding `mu_` keeps the fire/disarm race window trivial.
      first->second->Cancel();
      by_id_.erase(first->first.second);
      armed_.erase(first);
      continue;
    }
    // `deadline` is a copy: Arm/Disarm mutate the map while `mu_` is
    // released inside the wait, so no reference into it may be held
    // across it.
    cv_.WaitUntil(lock, deadline);
  }
}

}  // namespace trex
