#include "serving/router.h"

#include <algorithm>
#include <utility>

#include "common/hash.h"
#include "common/logging.h"

namespace trex::serving {

std::size_t EngineKeyHash::operator()(const EngineKey& key) const {
  std::size_t h = Fnv1a(key.algorithm_id);
  h = HashCombine(h, key.dcs_fingerprint);
  h = HashCombine(h, key.table_fingerprint);
  return h;
}

EngineRouter::EngineRouter(RouterOptions options) : options_(options) {
  TREX_CHECK_GE(options_.max_engines, 1u);
  if (options_.breaker.enabled) {
    TREX_CHECK_GE(options_.breaker.window, 1u);
    TREX_CHECK_GE(options_.breaker.half_open_probes, 1u);
  }
}

EngineKey EngineRouter::KeyOf(const repair::RepairAlgorithm& algorithm,
                              const dc::DcSet& dcs, const Table& table) {
  EngineKey key;
  key.algorithm_id = algorithm.name();
  key.dcs_fingerprint = dcs.Fingerprint();
  key.table_fingerprint = table.Fingerprint();
  return key;
}

void EngineRouter::EvictLru() {
  auto victim_bucket = engines_.end();
  std::size_t victim_index = 0;
  std::uint64_t victim_tick = 0;
  for (auto it = engines_.begin(); it != engines_.end(); ++it) {
    for (std::size_t i = 0; i < it->second.size(); ++i) {
      const std::uint64_t used = it->second[i].last_used;
      if (victim_bucket == engines_.end() || used < victim_tick) {
        victim_bucket = it;
        victim_index = i;
        victim_tick = used;
      }
    }
  }
  TREX_CHECK(victim_bucket != engines_.end());
  std::vector<Slot>& bucket = victim_bucket->second;
  // In-flight holders of the entry keep it alive; the router just stops
  // routing new requests to it.
  bucket.erase(bucket.begin() + static_cast<std::ptrdiff_t>(victim_index));
  if (bucket.empty()) engines_.erase(victim_bucket);
  --resident_;
  ++stats_.evictions;
}

std::shared_ptr<EngineEntry> EngineRouter::Acquire(
    std::shared_ptr<const repair::RepairAlgorithm> algorithm,
    const dc::DcSet& dcs, std::shared_ptr<const Table> table) {
  TREX_CHECK(table != nullptr);
  TREX_CHECK(algorithm != nullptr);
  const Table& borrowed = *table;
  const EngineKey key = KeyOf(*algorithm, dcs, borrowed);
  return AcquireImpl(std::move(algorithm), dcs, borrowed, key,
                     [&table] { return std::move(table); });
}

std::shared_ptr<EngineEntry> EngineRouter::Acquire(
    std::shared_ptr<const repair::RepairAlgorithm> algorithm,
    const dc::DcSet& dcs, const Table& table) {
  TREX_CHECK(algorithm != nullptr);
  const EngineKey key = KeyOf(*algorithm, dcs, table);
  return AcquireImpl(std::move(algorithm), dcs, table, key, [&table] {
    return std::make_shared<const Table>(table);
  });
}

std::shared_ptr<EngineEntry> EngineRouter::Acquire(
    std::shared_ptr<const repair::RepairAlgorithm> algorithm,
    const dc::DcSet& dcs, std::shared_ptr<const Table> table,
    const EngineKey& key) {
  TREX_CHECK(table != nullptr);
  TREX_CHECK(algorithm != nullptr);
  const Table& borrowed = *table;
  return AcquireImpl(std::move(algorithm), dcs, borrowed, key,
                     [&table] { return std::move(table); });
}

std::shared_ptr<EngineEntry> EngineRouter::AcquireImpl(
    std::shared_ptr<const repair::RepairAlgorithm> algorithm,
    const dc::DcSet& dcs, const Table& table, const EngineKey& key,
    const std::function<std::shared_ptr<const Table>()>& snapshot) {
  MutexLock lock(mu_);
  std::vector<Slot>& bucket = engines_[key];
  for (Slot& slot : bucket) {
    // Verify dcs and table in full, never trusting the 64-bit
    // fingerprints: a collision must build its own engine, not reuse
    // another table's. The algorithm is matched by name only — see the
    // algorithm-id contract in the file comment.
    if (slot.entry->engine.dcs() == dcs &&
        slot.entry->engine.dirty() == table) {
      slot.last_used = ++tick_;
      ++stats_.hits;
      return slot.entry;
    }
  }
  ++stats_.misses;
  Slot slot;
  slot.entry = std::make_shared<EngineEntry>(std::move(algorithm), dcs,
                                             snapshot(),
                                             options_.engine_options);
  slot.last_used = ++tick_;
  std::shared_ptr<EngineEntry> entry = slot.entry;
  bucket.push_back(std::move(slot));
  ++resident_;
  while (resident_ > options_.max_engines) EvictLru();
  return entry;
}

void EngineRouter::TripOpen(Breaker* breaker) {
  breaker->state = BreakerState::kOpen;
  breaker->open_until =
      std::chrono::steady_clock::now() + options_.breaker.cooldown;
  breaker->ring.assign(options_.breaker.window, 0);
  breaker->ring_next = 0;
  breaker->count = 0;
  breaker->failures = 0;
  breaker->probes_inflight = 0;
  ++stats_.breaker_open;
}

Status EngineRouter::AdmitKey(const EngineKey& key) {
  if (!options_.breaker.enabled) return Status::Ok();
  MutexLock lock(mu_);
  auto it = breakers_.find(key);
  if (it == breakers_.end()) return Status::Ok();
  const Breaker& breaker = it->second;
  if (breaker.state == BreakerState::kOpen &&
      std::chrono::steady_clock::now() < breaker.open_until) {
    ++stats_.breaker_rejected;
    return Status::Unavailable("circuit breaker open for engine '" +
                               key.algorithm_id + "'");
  }
  return Status::Ok();
}

Status EngineRouter::BreakerBeginCall(const EngineKey& key) {
  if (!options_.breaker.enabled) return Status::Ok();
  MutexLock lock(mu_);
  Breaker& breaker = breakers_[key];
  if (breaker.state == BreakerState::kOpen) {
    if (std::chrono::steady_clock::now() < breaker.open_until) {
      ++stats_.breaker_rejected;
      return Status::Unavailable("circuit breaker open for engine '" +
                                 key.algorithm_id + "'");
    }
    // Cooldown elapsed: probe the backend instead of staying dark
    // forever — the half-open state admits a bounded number of calls
    // whose outcomes decide between closing and re-opening.
    breaker.state = BreakerState::kHalfOpen;
    breaker.probes_inflight = 0;
  }
  if (breaker.state == BreakerState::kHalfOpen) {
    if (breaker.probes_inflight >= options_.breaker.half_open_probes) {
      ++stats_.breaker_rejected;
      return Status::Unavailable("circuit breaker half-open for engine '" +
                                 key.algorithm_id +
                                 "' with all probe slots taken");
    }
    ++breaker.probes_inflight;
    ++stats_.breaker_half_open_probes;
  }
  return Status::Ok();
}

void EngineRouter::ReportOutcome(const EngineKey& key,
                                 bool transient_failure) {
  if (!options_.breaker.enabled) return;
  MutexLock lock(mu_);
  Breaker& breaker = breakers_[key];
  if (breaker.state == BreakerState::kHalfOpen) {
    if (breaker.probes_inflight > 0) --breaker.probes_inflight;
    if (transient_failure) {
      TripOpen(&breaker);
    } else {
      breaker.state = BreakerState::kClosed;
      breaker.ring.assign(options_.breaker.window, 0);
      breaker.ring_next = 0;
      breaker.count = 0;
      breaker.failures = 0;
    }
    return;
  }
  if (breaker.state == BreakerState::kOpen) return;  // late report
  if (breaker.ring.size() != options_.breaker.window) {
    breaker.ring.assign(options_.breaker.window, 0);
  }
  if (breaker.count == options_.breaker.window) {
    breaker.failures -= breaker.ring[breaker.ring_next];
  } else {
    ++breaker.count;
  }
  breaker.ring[breaker.ring_next] = transient_failure ? 1 : 0;
  if (transient_failure) ++breaker.failures;
  breaker.ring_next = (breaker.ring_next + 1) % options_.breaker.window;
  if (breaker.count >= options_.breaker.min_samples &&
      static_cast<double>(breaker.failures) >=
          options_.breaker.failure_rate_threshold *
              static_cast<double>(breaker.count)) {
    TripOpen(&breaker);
  }
}

EngineRouter::BreakerState EngineRouter::breaker_state(
    const EngineKey& key) const {
  MutexLock lock(mu_);
  auto it = breakers_.find(key);
  if (it == breakers_.end()) return BreakerState::kClosed;
  return it->second.state;
}

RouterStats EngineRouter::stats() const {
  MutexLock lock(mu_);
  RouterStats stats = stats_;
  stats.resident = resident_;
  // Lock-free per-entry reads: the sampled footprint, not the live one
  // (see EngineEntry::approx_memo_bytes) — a stats reader must never
  // wait on an engine call in flight.
  for (const auto& [key, bucket] : engines_) {
    for (const Slot& slot : bucket) {
      stats.approx_memo_bytes += slot.entry->approx_memo_bytes.load();
    }
  }
  return stats;
}

}  // namespace trex::serving
