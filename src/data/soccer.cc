#include "data/soccer.h"

#include "common/logging.h"
#include "dc/parser.h"

namespace trex::data {

Schema SoccerSchema() {
  return Schema({
      Attribute{"Team", ValueType::kString},
      Attribute{"City", ValueType::kString},
      Attribute{"Country", ValueType::kString},
      Attribute{"League", ValueType::kString},
      Attribute{"Year", ValueType::kInt},
      Attribute{"Place", ValueType::kInt},
  });
}

namespace {

Table MakeTable(bool dirty) {
  Table table(SoccerSchema());
  auto add = [&table](const char* team, const char* city,
                      const char* country, const char* league, int year,
                      int place) {
    TREX_CHECK(table
                   .AppendRow({Value(team), Value(city), Value(country),
                               Value(league), Value(year), Value(place)})
                   .ok());
  };
  add("Barcelona", "Barcelona", "Spain", "La Liga", 2017, 1);
  add("Atletico Madrid", "Madrid", "Spain", "La Liga", 2017, 2);
  add("Real Madrid", "Madrid", "Spain", "La Liga", 2017, 3);
  add("Chelsea", "London", "England", "Premier League", 2017, 1);
  if (dirty) {
    add("Real Madrid", "Capital", "España", "La Liga", 2016, 1);
  } else {
    add("Real Madrid", "Madrid", "Spain", "La Liga", 2016, 1);
  }
  add("Real Madrid", "Madrid", "Spain", "La Liga", 2015, 1);
  return table;
}

}  // namespace

Table SoccerDirtyTable() { return MakeTable(/*dirty=*/true); }

Table SoccerCleanTable() { return MakeTable(/*dirty=*/false); }

dc::DcSet SoccerConstraints() {
  const Schema schema = SoccerSchema();
  // Figure 1 verbatim (C4's t1/t2 typos corrected per DESIGN.md §6).
  const char* text = R"(
C1: !(t1.Team == t2.Team & t1.City != t2.City)
C2: !(t1.City == t2.City & t1.Country != t2.Country)
C3: !(t1.League == t2.League & t1.Country != t2.Country)
C4: !(t1.Team != t2.Team & t1.Year == t2.Year & t1.League == t2.League & t1.Place == t2.Place)
)";
  auto dcs = dc::ParseDcSet(text, schema);
  TREX_CHECK(dcs.ok()) << dcs.status().ToString();
  return std::move(dcs).value();
}

CellRef SoccerTargetCell() { return SoccerCell(5, "Country"); }

CellRef SoccerCell(std::size_t row_1based, const char* attribute) {
  TREX_CHECK_GE(row_1based, 1u);
  const Schema schema = SoccerSchema();
  auto col = schema.IndexOf(attribute);
  TREX_CHECK(col.ok()) << col.status().ToString();
  return CellRef{row_1based - 1, *col};
}

}  // namespace trex::data
