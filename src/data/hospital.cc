#include "data/hospital.h"

#include <string>
#include <vector>

#include "common/logging.h"
#include "common/string_util.h"
#include "dc/parser.h"

namespace trex::data {

Schema HospitalSchema() {
  return Schema({
      Attribute{"Provider", ValueType::kInt},
      Attribute{"Hospital", ValueType::kString},
      Attribute{"City", ValueType::kString},
      Attribute{"State", ValueType::kString},
      Attribute{"Zip", ValueType::kString},
      Attribute{"Phone", ValueType::kString},
      Attribute{"Measure", ValueType::kString},
      Attribute{"Score", ValueType::kInt},
  });
}

GeneratedData GenerateHospital(const HospitalGenOptions& options) {
  TREX_CHECK_GT(options.num_states, 0u);
  TREX_CHECK_GT(options.cities_per_state, 0u);
  TREX_CHECK_GT(options.zips_per_city, 0u);
  TREX_CHECK_GT(options.hospitals_per_city, 0u);
  TREX_CHECK_GT(options.num_measures, 0u);

  Rng rng(options.seed);

  struct HospitalInfo {
    std::int64_t provider;
    std::string name;
    std::string city;
    std::string state;
    std::string zip;
    std::string phone;
  };
  std::vector<HospitalInfo> hospitals;
  std::int64_t next_provider = 10001;
  for (std::size_t s = 0; s < options.num_states; ++s) {
    const std::string state = StrFormat("ST%zu", s);
    for (std::size_t c = 0; c < options.cities_per_state; ++c) {
      const std::string city = StrFormat("City_%zu_%zu", s, c);
      for (std::size_t z = 0; z < options.zips_per_city; ++z) {
        const std::string zip = StrFormat("%02zu%02zu%01zu", s, c, z);
        for (std::size_t h = 0; h < options.hospitals_per_city; ++h) {
          HospitalInfo info;
          info.provider = next_provider++;
          info.name = StrFormat("Hospital_%zu_%zu_%zu_%zu", s, c, z, h);
          info.city = city;
          info.state = state;
          info.zip = zip;
          info.phone = StrFormat("555-%04lld",
                                 static_cast<long long>(info.provider));
          hospitals.push_back(std::move(info));
        }
      }
    }
  }

  Table table(HospitalSchema());
  std::size_t emitted = 0;
  // Round-robin hospitals × measures until num_rows, shuffled hospital
  // order for variety.
  std::vector<std::size_t> order(hospitals.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  rng.Shuffle(&order);
  for (std::size_t m = 0; emitted < options.num_rows; ++m) {
    const std::string measure = StrFormat("MEAS-%zu", m % options.num_measures);
    for (std::size_t idx : order) {
      if (emitted >= options.num_rows) break;
      if (m >= options.num_measures) break;
      const HospitalInfo& h = hospitals[idx];
      const int score = static_cast<int>(rng.UniformInt(60, 100));
      TREX_CHECK(table
                     .AppendRow({Value(h.provider), Value(h.name),
                                 Value(h.city), Value(h.state),
                                 Value(h.zip), Value(h.phone),
                                 Value(measure), Value(score)})
                     .ok());
      ++emitted;
    }
    if (m >= options.num_measures && emitted < options.num_rows) {
      // Table demand exceeds hospitals × measures: stop rather than
      // violate the (Provider, Measure) key.
      break;
    }
  }

  const char* text = R"(
H1: !(t1.Zip == t2.Zip & t1.City != t2.City)
H2: !(t1.Zip == t2.Zip & t1.State != t2.State)
H3: !(t1.Provider == t2.Provider & t1.Phone != t2.Phone)
H4: !(t1.Provider == t2.Provider & t1.Hospital != t2.Hospital)
H5: !(t1.Provider == t2.Provider & t1.Measure == t2.Measure & t1.Score != t2.Score)
)";
  auto dcs = dc::ParseDcSet(text, HospitalSchema());
  TREX_CHECK(dcs.ok()) << dcs.status().ToString();
  return GeneratedData{std::move(table), std::move(dcs).value()};
}

}  // namespace trex::data
