#include "data/errors.h"

#include <algorithm>
#include <unordered_map>

#include "common/logging.h"
#include "table/stats.h"

namespace trex::data {
namespace {

ErrorKind PickKind(Rng* rng, const ErrorInjectorOptions& options) {
  const double total =
      options.weight_swap + options.weight_typo + options.weight_missing;
  TREX_CHECK_GT(total, 0.0);
  const double u = rng->UniformDouble() * total;
  if (u < options.weight_swap) return ErrorKind::kSwapWithinColumn;
  if (u < options.weight_swap + options.weight_typo) return ErrorKind::kTypo;
  return ErrorKind::kMissing;
}

}  // namespace

InjectionResult InjectErrors(const Table& clean,
                             const ErrorInjectorOptions& options) {
  Rng rng(options.seed);
  InjectionResult result{clean, {}};

  std::vector<CellRef> candidates;
  for (const CellRef& cell : clean.AllCells()) {
    if (!options.columns.empty() &&
        std::find(options.columns.begin(), options.columns.end(),
                  cell.col) == options.columns.end()) {
      continue;
    }
    if (clean.at(cell).is_null()) continue;
    candidates.push_back(cell);
  }
  rng.Shuffle(&candidates);
  std::size_t num_errors = static_cast<std::size_t>(
      options.error_rate * static_cast<double>(candidates.size()) + 0.5);
  if (options.max_errors > 0) {
    num_errors = std::min(num_errors, options.max_errors);
  }

  // Swap sources are drawn from the *clean* column domain, never from
  // `result.dirty` mid-injection: earlier corruptions (typos, swaps)
  // must not leak back in as "realistic" values. Built lazily, once per
  // column.
  std::unordered_map<std::size_t, std::vector<Value>> clean_domains;
  const auto domain_of = [&](std::size_t col) -> const std::vector<Value>& {
    auto it = clean_domains.find(col);
    if (it == clean_domains.end()) {
      it = clean_domains
               .emplace(col,
                        ColumnStats::Build(clean, col).DistinctSorted())
               .first;
    }
    return it->second;
  };

  for (std::size_t i = 0; i < num_errors && i < candidates.size(); ++i) {
    const CellRef cell = candidates[i];
    const Value truth = clean.at(cell);
    Value corrupted;
    switch (PickKind(&rng, options)) {
      case ErrorKind::kSwapWithinColumn: {
        const std::vector<Value>& domain = domain_of(cell.col);
        // Pick a value different from the truth; fall back to a typo
        // when the column has a single distinct value.
        std::vector<Value> others;
        for (const Value& v : domain) {
          if (v != truth) others.push_back(v);
        }
        if (!others.empty()) {
          corrupted = others[rng.Index(others.size())];
          break;
        }
        [[fallthrough]];
      }
      case ErrorKind::kTypo: {
        corrupted = Value(truth.ToString() + "~");
        break;
      }
      case ErrorKind::kMissing:
        corrupted = Value::Null();
        break;
    }
    result.dirty.Set(cell, corrupted);
    result.injected.push_back(RepairedCell{cell, truth, corrupted});
  }
  return result;
}

}  // namespace trex::data
