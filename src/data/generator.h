// Synthetic soccer-league data generator.
//
// Produces clean tables with the same dependency structure as the paper's
// running example — Team -> City, City -> Country, League -> Country, and
// the (League, Year, Place) key constraint — at arbitrary scale, with
// Zipf-skewed popularity. Paired with `ErrorInjector` (errors.h) this
// reproduces the demo's "scraped data + manually added errors" setup with
// known ground truth; the scalability and repair-comparison benches sweep
// its size parameters.
//
// Scale contract: `GenerateSoccer` always emits exactly
// `SoccerGenOptions::num_rows` rows. Each row is one standings entry for
// a distinct (team, year) pair, so the world's key capacity is
// `num_countries * leagues_per_country * teams_per_league * num_years`;
// when `num_rows` exceeds it the generator grows the world (extra
// countries, each bringing its own leagues, cities, and teams) instead of
// silently under-filling. After the Zipf-skewed sampling phase, any
// remaining shortfall (sampling collisions under saturation) is filled by
// a deterministic sweep over the unused (team, year) pairs, so output is
// exact, bit-reproducible per seed, and violation-free at any size.

#ifndef TREX_DATA_GENERATOR_H_
#define TREX_DATA_GENERATOR_H_

#include <cstdint>
#include <vector>

#include "common/random.h"
#include "dc/constraint.h"
#include "table/table.h"

namespace trex::data {

/// Size/shape knobs for the synthetic league world.
struct SoccerGenOptions {
  std::size_t num_rows = 100;
  /// Lower bound on countries; the world grows past it automatically
  /// when the (team, year) key space is smaller than `num_rows`.
  std::size_t num_countries = 4;
  /// Leagues per country (each league belongs to exactly one country).
  std::size_t leagues_per_country = 1;
  /// Cities per country.
  std::size_t cities_per_country = 3;
  /// Teams per league; each team has a fixed home city within the
  /// league's country.
  std::size_t teams_per_league = 8;
  /// Standings years drawn uniformly from [first_year, last_year].
  int first_year = 2010;
  int last_year = 2019;
  /// Zipf exponent for team popularity (0 = uniform).
  double zipf_exponent = 0.8;
  std::uint64_t seed = Rng::kDefaultSeed;
};

/// A generated world: the clean table plus its constraint set.
struct GeneratedData {
  Table clean;
  dc::DcSet dcs;
};

/// Generates a consistent (violation-free) league-standings table with
/// the Figure 1 constraint set over it. Always returns exactly
/// `options.num_rows` rows (see the scale contract above).
GeneratedData GenerateSoccer(const SoccerGenOptions& options = {});

/// A multi-table world for mixed-table serving traffic.
struct WorldGenOptions {
  /// Shape shared by every table in the world.
  SoccerGenOptions table;
  std::size_t num_tables = 2;
};

struct GeneratedWorld {
  /// One independently sampled table per index (shared schema and
  /// constraint set, distinct content).
  std::vector<GeneratedData> tables;
};

/// Generates `num_tables` tables of the same shape with disjoint
/// per-table seeds (a splitmix64 chain over `table.seed`), so the tables
/// carry uncorrelated content — and therefore distinct fingerprints —
/// while the whole world stays reproducible from one seed.
GeneratedWorld GenerateWorld(const WorldGenOptions& options);

}  // namespace trex::data

#endif  // TREX_DATA_GENERATOR_H_
