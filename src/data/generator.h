// Synthetic soccer-league data generator.
//
// Produces clean tables with the same dependency structure as the paper's
// running example — Team -> City, City -> Country, League -> Country, and
// the (League, Year, Place) key constraint — at arbitrary scale, with
// Zipf-skewed popularity. Paired with `ErrorInjector` (errors.h) this
// reproduces the demo's "scraped data + manually added errors" setup with
// known ground truth; the scalability and repair-comparison benches sweep
// its size parameters.

#ifndef TREX_DATA_GENERATOR_H_
#define TREX_DATA_GENERATOR_H_

#include <cstdint>

#include "common/random.h"
#include "dc/constraint.h"
#include "table/table.h"

namespace trex::data {

/// Size/shape knobs for the synthetic league world.
struct SoccerGenOptions {
  std::size_t num_rows = 100;
  std::size_t num_countries = 4;
  /// Leagues per country (each league belongs to exactly one country).
  std::size_t leagues_per_country = 1;
  /// Cities per country.
  std::size_t cities_per_country = 3;
  /// Teams per league; each team has a fixed home city within the
  /// league's country.
  std::size_t teams_per_league = 8;
  /// Standings years drawn uniformly from [first_year, last_year].
  int first_year = 2010;
  int last_year = 2019;
  /// Zipf exponent for team popularity (0 = uniform).
  double zipf_exponent = 0.8;
  std::uint64_t seed = Rng::kDefaultSeed;
};

/// A generated world: the clean table plus its constraint set.
struct GeneratedData {
  Table clean;
  dc::DcSet dcs;
};

/// Generates a consistent (violation-free) league-standings table with
/// the Figure 1 constraint set over it.
GeneratedData GenerateSoccer(const SoccerGenOptions& options = {});

}  // namespace trex::data

#endif  // TREX_DATA_GENERATOR_H_
