// Seeded error injection with ground truth.
//
// Reproduces the demo setup ("errors will be manually added into the
// table", paper §4) mechanically: given a clean table, injects a chosen
// mix of error kinds into randomly selected cells and records every
// corruption, so repair quality is measurable (repair/metrics.h).

#ifndef TREX_DATA_ERRORS_H_
#define TREX_DATA_ERRORS_H_

#include <cstdint>
#include <vector>

#include "common/random.h"
#include "table/diff.h"
#include "table/table.h"

namespace trex::data {

/// Kinds of injected cell errors.
enum class ErrorKind {
  /// Replace with a different value drawn from the same column.
  kSwapWithinColumn,
  /// Append a character to the string form (a typo; yields a fresh,
  /// out-of-domain value).
  kTypo,
  /// Set the cell to null.
  kMissing,
};

/// Injection parameters.
struct ErrorInjectorOptions {
  /// Fraction of cells to corrupt (each selected cell gets one error).
  double error_rate = 0.05;
  /// Hard cap on corrupted cells; 0 = uncapped. Large-table sweeps use
  /// a fixed error budget so downstream costs that scale with the
  /// *error* count (noisy-cell inference, conflict frontiers) measure
  /// table-size scaling, not error-count scaling.
  std::size_t max_errors = 0;
  /// Relative weights of the error kinds (need not sum to 1).
  double weight_swap = 0.6;
  double weight_typo = 0.3;
  double weight_missing = 0.1;
  /// Restrict injection to these columns (empty = all columns).
  std::vector<std::size_t> columns;
  std::uint64_t seed = Rng::kDefaultSeed;
};

/// The result of an injection run.
struct InjectionResult {
  Table dirty;
  /// Every corrupted cell with its true and injected value
  /// (old_value = truth, new_value = corruption).
  std::vector<RepairedCell> injected;
};

/// Corrupts a copy of `clean` per `options`.
InjectionResult InjectErrors(const Table& clean,
                             const ErrorInjectorOptions& options = {});

}  // namespace trex::data

#endif  // TREX_DATA_ERRORS_H_
