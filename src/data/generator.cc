#include "data/generator.h"

#include <set>
#include <string>
#include <utility>
#include <vector>

#include "common/logging.h"
#include "data/soccer.h"

namespace trex::data {

GeneratedData GenerateSoccer(const SoccerGenOptions& options) {
  TREX_CHECK_GT(options.num_countries, 0u);
  TREX_CHECK_GT(options.leagues_per_country, 0u);
  TREX_CHECK_GT(options.cities_per_country, 0u);
  TREX_CHECK_GT(options.teams_per_league, 0u);
  TREX_CHECK_LE(options.first_year, options.last_year);

  Rng rng(options.seed);

  const std::size_t num_years = static_cast<std::size_t>(
      options.last_year - options.first_year + 1);
  // One standings row per (team, year): the world must hold at least
  // num_rows such pairs. Grow it by adding countries — each brings its
  // own leagues, cities, and teams, so the FD structure is untouched.
  const std::size_t pairs_per_country =
      options.leagues_per_country * options.teams_per_league * num_years;
  TREX_CHECK_GT(pairs_per_country, 0u);  // guaranteed by the checks above
  std::size_t num_countries = options.num_countries;
  if (num_countries * pairs_per_country < options.num_rows) {
    num_countries =
        (options.num_rows + pairs_per_country - 1) / pairs_per_country;
  }

  struct TeamInfo {
    std::string name;
    std::string city;
    std::string country;
    std::string league;
  };

  // Build the consistent world: countries own cities and leagues; teams
  // live in one city and play in one league of their country.
  std::vector<TeamInfo> teams;
  for (std::size_t c = 0; c < num_countries; ++c) {
    const std::string country = "Country" + std::to_string(c);
    std::vector<std::string> cities;
    for (std::size_t k = 0; k < options.cities_per_country; ++k) {
      cities.push_back("City" + std::to_string(c) + "_" +
                       std::to_string(k));
    }
    for (std::size_t l = 0; l < options.leagues_per_country; ++l) {
      const std::string league =
          "League" + std::to_string(c) + "_" + std::to_string(l);
      for (std::size_t t = 0; t < options.teams_per_league; ++t) {
        TeamInfo team;
        team.name = league + "_Team" + std::to_string(t);
        team.city = cities[t % cities.size()];
        team.country = country;
        team.league = league;
        teams.push_back(std::move(team));
      }
    }
  }

  // Emit standings rows: pick a team (Zipf-skewed), a year, and a place
  // unused for that (league, year) so C4 holds on clean data.
  const std::vector<double> team_cdf =
      ZipfTable(teams.size(), options.zipf_exponent);
  std::set<std::tuple<std::string, int, int>> used_places;
  std::set<std::pair<std::size_t, int>> used_team_years;

  Table table(SoccerSchema());
  std::size_t emitted = 0;
  const auto emit = [&](const TeamInfo& team, int year) {
    // Find the smallest free place for this (league, year).
    int place = 1;
    while (used_places.count({team.league, year, place}) > 0) ++place;
    used_places.emplace(team.league, year, place);
    TREX_CHECK(table
                   .AppendRow({Value(team.name), Value(team.city),
                               Value(team.country), Value(team.league),
                               Value(year), Value(place)})
                   .ok());
    ++emitted;
  };

  std::size_t attempts = 0;
  const std::size_t max_attempts = options.num_rows * 64 + 1024;
  while (emitted < options.num_rows && attempts < max_attempts) {
    ++attempts;
    const std::size_t team_index = rng.Zipf(team_cdf);
    const int year = static_cast<int>(
        rng.UniformInt(options.first_year, options.last_year));
    if (!used_team_years.emplace(team_index, year).second) continue;
    emit(teams[team_index], year);
  }

  // Sampling collisions under saturation can exhaust the attempt budget
  // before the table is full; a deterministic sweep over the unused
  // (team, year) pairs fills the exact remainder. The world was sized
  // above so this always succeeds.
  for (std::size_t t = 0; emitted < options.num_rows && t < teams.size();
       ++t) {
    for (int year = options.first_year;
         emitted < options.num_rows && year <= options.last_year; ++year) {
      if (!used_team_years.emplace(t, year).second) continue;
      emit(teams[t], year);
    }
  }
  TREX_CHECK_EQ(emitted, options.num_rows)
      << "generator under-filled: world capacity "
      << teams.size() * num_years << " rows";

  GeneratedData out{std::move(table), SoccerConstraints()};
  return out;
}

GeneratedWorld GenerateWorld(const WorldGenOptions& options) {
  TREX_CHECK_GT(options.num_tables, 0u);
  GeneratedWorld world;
  world.tables.reserve(options.num_tables);
  // Disjoint per-table seeds: a splitmix64 chain over the base seed, so
  // sibling tables draw from uncorrelated streams but the whole world is
  // a pure function of `options`.
  std::uint64_t chain = options.table.seed;
  for (std::size_t i = 0; i < options.num_tables; ++i) {
    SoccerGenOptions per_table = options.table;
    per_table.seed = SplitMix64(&chain);
    world.tables.push_back(GenerateSoccer(per_table));
  }
  return world;
}

}  // namespace trex::data
