#include "data/generator.h"

#include <set>
#include <string>
#include <vector>

#include "common/logging.h"
#include "data/soccer.h"

namespace trex::data {

GeneratedData GenerateSoccer(const SoccerGenOptions& options) {
  TREX_CHECK_GT(options.num_countries, 0u);
  TREX_CHECK_GT(options.leagues_per_country, 0u);
  TREX_CHECK_GT(options.cities_per_country, 0u);
  TREX_CHECK_GT(options.teams_per_league, 0u);
  TREX_CHECK_LE(options.first_year, options.last_year);

  Rng rng(options.seed);

  struct TeamInfo {
    std::string name;
    std::string city;
    std::string country;
    std::string league;
  };

  // Build the consistent world: countries own cities and leagues; teams
  // live in one city and play in one league of their country.
  std::vector<TeamInfo> teams;
  std::vector<std::string> leagues;
  for (std::size_t c = 0; c < options.num_countries; ++c) {
    const std::string country = "Country" + std::to_string(c);
    std::vector<std::string> cities;
    for (std::size_t k = 0; k < options.cities_per_country; ++k) {
      cities.push_back("City" + std::to_string(c) + "_" +
                       std::to_string(k));
    }
    for (std::size_t l = 0; l < options.leagues_per_country; ++l) {
      const std::string league =
          "League" + std::to_string(c) + "_" + std::to_string(l);
      leagues.push_back(league);
      for (std::size_t t = 0; t < options.teams_per_league; ++t) {
        TeamInfo team;
        team.name = league + "_Team" + std::to_string(t);
        team.city = cities[t % cities.size()];
        team.country = country;
        team.league = league;
        teams.push_back(std::move(team));
      }
    }
  }

  // Emit standings rows: pick a team (Zipf-skewed), a year, and a place
  // unused for that (league, year) so C4 holds on clean data.
  const std::vector<double> team_cdf =
      ZipfTable(teams.size(), options.zipf_exponent);
  std::set<std::tuple<std::string, int, int>> used_places;
  std::set<std::pair<std::string, int>> used_team_years;

  Table table(SoccerSchema());
  std::size_t emitted = 0;
  std::size_t attempts = 0;
  const std::size_t max_attempts = options.num_rows * 64 + 1024;
  while (emitted < options.num_rows && attempts < max_attempts) {
    ++attempts;
    const TeamInfo& team = teams[rng.Zipf(team_cdf)];
    const int year = static_cast<int>(
        rng.UniformInt(options.first_year, options.last_year));
    // One standings row per (team, year).
    if (!used_team_years.emplace(team.name, year).second) continue;
    // Find the smallest free place for this (league, year).
    int place = 1;
    while (used_places.count({team.league, year, place}) > 0) ++place;
    used_places.emplace(team.league, year, place);
    TREX_CHECK(table
                   .AppendRow({Value(team.name), Value(team.city),
                               Value(team.country), Value(team.league),
                               Value(year), Value(place)})
                   .ok());
    ++emitted;
  }

  GeneratedData out{std::move(table), SoccerConstraints()};
  return out;
}

}  // namespace trex::data
