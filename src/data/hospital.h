// Synthetic "hospital" dataset generator.
//
// HoloClean's canonical evaluation dataset is the US hospital quality
// table (Provider, Hospital, City, State, Zip, Phone, ...), with FDs such
// as Zip -> City and Zip -> State. The real extract is not shipped here,
// so this module generates a structurally equivalent world: hospitals
// with consistent geography and contact data, plus the matching DC set —
// enough to exercise `HoloCleanRepair` and the cell explainer on a second
// domain (examples/hospital_cleaning.cc, bench_repair_algorithms).

#ifndef TREX_DATA_HOSPITAL_H_
#define TREX_DATA_HOSPITAL_H_

#include <cstdint>

#include "common/random.h"
#include "data/generator.h"
#include "dc/constraint.h"
#include "table/table.h"

namespace trex::data {

/// Size knobs for the hospital world.
struct HospitalGenOptions {
  std::size_t num_rows = 200;
  std::size_t num_states = 5;
  std::size_t cities_per_state = 4;
  std::size_t zips_per_city = 2;
  std::size_t hospitals_per_city = 3;
  /// Measures reported per hospital row (adds row multiplicity so FD
  /// groups have real support).
  std::size_t num_measures = 6;
  std::uint64_t seed = Rng::kDefaultSeed;
};

/// Schema: (Provider, Hospital, City, State, Zip, Phone, Measure, Score).
Schema HospitalSchema();

/// Generates a consistent hospital-quality table and its DC set:
///   H1: Zip -> City          H2: Zip -> State
///   H3: Provider -> Phone    H4: Provider -> Hospital
///   H5: Hospital, Measure unique score rows (no two different scores for
///       the same provider and measure)
GeneratedData GenerateHospital(const HospitalGenOptions& options = {});

}  // namespace trex::data

#endif  // TREX_DATA_HOSPITAL_H_
