// The paper's running example, reconstructed exactly.
//
// Figure 2a/2b (the "La Liga standings" table scraped from Wikipedia with
// manually injected errors), Figure 1 (constraints C1–C4), and
// Algorithm 1 (the didactic rule repairer). The table content is pinned
// down by the paper's arithmetic — see DESIGN.md §5 — and the fixture is
// verified against every numeric claim in tests/paper_claims_test.cc:
// the characteristic function v(S) = 1 iff {C1,C2} ⊆ S or C3 ∈ S, the
// Shapley values (1/6, 1/6, 2/3, 0), and the Example 2.4 coalition
// counts.

#ifndef TREX_DATA_SOCCER_H_
#define TREX_DATA_SOCCER_H_

#include "dc/constraint.h"
#include "table/table.h"

namespace trex::data {

/// Schema (Team, City, Country, League, Year, Place) — 6 attributes, so
/// the 6-tuple table has the paper's 36 cells.
Schema SoccerSchema();

/// Figure 2a: the dirty table. Dirty cells: t5[City] = "Capital",
/// t5[Country] = "España".
Table SoccerDirtyTable();

/// Figure 2b: the expected clean table (t5[City] -> "Madrid",
/// t5[Country] -> "Spain").
Table SoccerCleanTable();

/// Figure 1: C1 (Team -> City), C2 (City -> Country), C3 (League ->
/// Country), C4 (no two teams share league/year/place).
dc::DcSet SoccerConstraints();

/// The paper's cell of interest t5[Country] (0-based row 4).
CellRef SoccerTargetCell();

/// The cells named in the examples, for tests and benches.
CellRef SoccerCell(std::size_t row_1based, const char* attribute);

}  // namespace trex::data

#endif  // TREX_DATA_SOCCER_H_
