#include "dc/discovery.h"

#include <algorithm>
#include <map>
#include <unordered_map>
#include <vector>

#include "common/hash.h"
#include "common/logging.h"

namespace trex::dc {
namespace {

/// Pairs-with-agreement statistics for one candidate X -> B.
struct PairCounts {
  std::size_t agreeing = 0;   // pairs agreeing on X (both sides non-null)
  std::size_t violating = 0;  // of those, pairs disagreeing on B
};

std::size_t Choose2(std::size_t n) { return n * (n - 1) / 2; }

/// Counts, per group of rows (already grouped by X), the violating and
/// total pairs with respect to column `rhs`.
void CountGroup(const Table& table, const std::vector<std::size_t>& rows,
                std::size_t rhs, PairCounts* counts) {
  if (rows.size() < 2) return;
  std::unordered_map<Value, std::size_t, ValueHash> b_counts;
  std::size_t non_null = 0;
  for (std::size_t r : rows) {
    const Value& b = table.at(r, rhs);
    if (b.is_null()) continue;  // null B gives no pair evidence
    ++b_counts[b];
    ++non_null;
  }
  if (non_null < 2) return;
  const std::size_t total = Choose2(non_null);
  std::size_t agreeing_b = 0;
  for (const auto& [value, count] : b_counts) {
    (void)value;
    agreeing_b += Choose2(count);
  }
  counts->agreeing += total;
  counts->violating += total - agreeing_b;
}

/// Groups row indices by the (non-null) key extracted by `key_fn`.
template <typename KeyFn>
std::vector<std::vector<std::size_t>> GroupRows(const Table& table,
                                                KeyFn&& key_fn) {
  struct VecHash {
    std::size_t operator()(const std::vector<Value>& key) const {
      std::size_t h = 0x811c9dc5;
      for (const Value& v : key) h = HashCombine(h, v.Hash());
      return h;
    }
  };
  struct VecEq {
    bool operator()(const std::vector<Value>& a,
                    const std::vector<Value>& b) const {
      if (a.size() != b.size()) return false;
      for (std::size_t i = 0; i < a.size(); ++i) {
        if (a[i] != b[i]) return false;
      }
      return true;
    }
  };
  std::unordered_map<std::vector<Value>, std::vector<std::size_t>, VecHash,
                     VecEq>
      groups;
  for (std::size_t r = 0; r < table.num_rows(); ++r) {
    std::vector<Value> key = key_fn(r);
    if (key.empty()) continue;  // null in key: no evidence
    groups[std::move(key)].push_back(r);
  }
  std::vector<std::vector<std::size_t>> out;
  out.reserve(groups.size());
  // The drained order is immediately re-keyed below:
  // trex-check-ok(unordered-determinism): re-sorted by front() below
  for (auto& [key, rows] : groups) {
    (void)key;
    out.push_back(std::move(rows));
  }
  // Hash-order is not a contract: the bucket layout (and therefore the
  // iteration order above) may differ across standard libraries, so the
  // group list is re-keyed on the smallest member row — deterministic
  // for any hasher. Each group's rows are already ascending (rows are
  // visited 0..n), so front() identifies the group.
  std::sort(out.begin(), out.end(),
            [](const std::vector<std::size_t>& a,
               const std::vector<std::size_t>& b) {
              return a.front() < b.front();
            });
  return out;
}

DenialConstraint MakeFdConstraint(const Table& table,
                                  const std::vector<std::size_t>& lhs,
                                  std::size_t rhs) {
  std::vector<Predicate> predicates;
  std::string name;
  for (std::size_t col : lhs) {
    predicates.push_back(Predicate{Operand::Cell(0, col), CompareOp::kEq,
                                   Operand::Cell(1, col)});
    if (!name.empty()) name += ",";
    name += table.schema().attribute(col).name;
  }
  predicates.push_back(Predicate{Operand::Cell(0, rhs), CompareOp::kNeq,
                                 Operand::Cell(1, rhs)});
  name += "->" + table.schema().attribute(rhs).name;
  auto dc = DenialConstraint::Make(std::move(name), 2,
                                   std::move(predicates));
  TREX_CHECK(dc.ok());
  return std::move(dc).value();
}

}  // namespace

Result<std::vector<DiscoveredFd>> DiscoverFds(
    const Table& table, const FdDiscoveryOptions& options) {
  if (options.max_violation_fraction < 0 ||
      options.max_violation_fraction >= 1) {
    return Status::InvalidArgument(
        "max_violation_fraction must be in [0, 1)");
  }
  const std::size_t cols = table.num_columns();
  std::vector<DiscoveredFd> found;
  // found_single[lhs][rhs]: minimality pruning for 2-column LHS.
  std::vector<std::vector<bool>> found_single(
      cols, std::vector<bool>(cols, false));

  // Single-column LHS.
  for (std::size_t lhs = 0; lhs < cols; ++lhs) {
    const auto groups = GroupRows(table, [&](std::size_t r) {
      const Value& v = table.at(r, lhs);
      return v.is_null() ? std::vector<Value>{}
                         : std::vector<Value>{v};
    });
    for (std::size_t rhs = 0; rhs < cols; ++rhs) {
      if (rhs == lhs) continue;
      PairCounts counts;
      for (const auto& rows : groups) {
        CountGroup(table, rows, rhs, &counts);
      }
      if (counts.agreeing < options.min_support_pairs) continue;
      const double fraction = static_cast<double>(counts.violating) /
                              static_cast<double>(counts.agreeing);
      if (fraction <= options.max_violation_fraction) {
        DiscoveredFd fd;
        fd.lhs = {lhs};
        fd.rhs = rhs;
        fd.violation_fraction = fraction;
        fd.support_pairs = counts.agreeing;
        fd.constraint = MakeFdConstraint(table, fd.lhs, rhs);
        found.push_back(std::move(fd));
        found_single[lhs][rhs] = true;
      }
    }
  }

  if (options.include_two_column_lhs) {
    for (std::size_t a = 0; a < cols; ++a) {
      for (std::size_t b = a + 1; b < cols; ++b) {
        const auto groups = GroupRows(table, [&](std::size_t r) {
          const Value& va = table.at(r, a);
          const Value& vb = table.at(r, b);
          if (va.is_null() || vb.is_null()) return std::vector<Value>{};
          return std::vector<Value>{va, vb};
        });
        for (std::size_t rhs = 0; rhs < cols; ++rhs) {
          if (rhs == a || rhs == b) continue;
          // Minimality: skip when a single-column FD already covers it.
          if (found_single[a][rhs] || found_single[b][rhs]) continue;
          PairCounts counts;
          for (const auto& rows : groups) {
            CountGroup(table, rows, rhs, &counts);
          }
          if (counts.agreeing < options.min_support_pairs) continue;
          const double fraction = static_cast<double>(counts.violating) /
                                  static_cast<double>(counts.agreeing);
          if (fraction <= options.max_violation_fraction) {
            DiscoveredFd fd;
            fd.lhs = {a, b};
            fd.rhs = rhs;
            fd.violation_fraction = fraction;
            fd.support_pairs = counts.agreeing;
            fd.constraint = MakeFdConstraint(table, fd.lhs, rhs);
            found.push_back(std::move(fd));
          }
        }
      }
    }
  }
  return found;
}

Result<DcSet> DiscoverFdConstraints(const Table& table,
                                    const FdDiscoveryOptions& options) {
  TREX_ASSIGN_OR_RETURN(std::vector<DiscoveredFd> fds,
                        DiscoverFds(table, options));
  DcSet out;
  for (DiscoveredFd& fd : fds) out.Add(std::move(fd.constraint));
  return out;
}

}  // namespace trex::dc
