// Denial constraints and constraint sets.
//
// A denial constraint (DC) has the form
//     ∀ t1, t2 . ¬( p1 ∧ p2 ∧ ... ∧ pk )
// over one or two tuple variables; it is *violated* by any (ordered) row
// assignment that satisfies all predicates simultaneously. Functional
// dependencies are the special case
//     ∀ t1, t2 . ¬( t1.A = t2.A ∧ t1.B ≠ t2.B ).

#ifndef TREX_DC_CONSTRAINT_H_
#define TREX_DC_CONSTRAINT_H_

#include <cstdint>
#include <set>
#include <string>
#include <vector>

#include "common/status.h"
#include "dc/predicate.h"
#include "table/table.h"

namespace trex::dc {

/// One denial constraint: a named conjunction of predicates under
/// negation, with one or two tuple variables.
class DenialConstraint {
 public:
  DenialConstraint() = default;

  /// Constructs a DC; `arity` is 1 or 2 (number of tuple variables).
  /// Invalid shapes (predicates mentioning t2 in a unary DC, empty
  /// predicate list) are rejected.
  [[nodiscard]] static Result<DenialConstraint> Make(std::string name, int arity,
                                       std::vector<Predicate> predicates);

  /// Convenience: builds the FD `lhs -> rhs` as a binary DC named `name`.
  static DenialConstraint FunctionalDependency(std::string name,
                                               std::size_t lhs_col,
                                               std::size_t rhs_col);

  /// Identifier used in reports ("C1", "C2", ...).
  const std::string& name() const { return name_; }

  /// 1 for single-tuple constraints, 2 for pairwise ones.
  int arity() const { return arity_; }

  /// The conjunct predicates.
  const std::vector<Predicate>& predicates() const { return predicates_; }

  /// True iff rows (row1, row2) jointly satisfy every predicate, i.e.
  /// violate the constraint. For unary constraints row2 is ignored.
  /// Callers must not pass row1 == row2 for binary constraints.
  bool IsViolatedBy(const Table& table, std::size_t row1,
                    std::size_t row2) const;

  /// Columns referenced through tuple variable t1 / t2 / either.
  std::set<std::size_t> ColumnsOfTuple(int tuple_index) const;
  std::set<std::size_t> AllColumns() const;

  /// True iff the DC is symmetric under swapping t1 and t2 (the common
  /// FD-like case); used to deduplicate violation pairs.
  bool IsSymmetric() const;

  /// True iff this is an FD-shaped DC; when so, outputs the columns.
  bool AsFunctionalDependency(std::size_t* lhs_col,
                              std::size_t* rhs_col) const;

  bool operator==(const DenialConstraint& other) const {
    return arity_ == other.arity_ && predicates_ == other.predicates_;
  }

  /// Structural fingerprint, consistent with operator== (the name is
  /// excluded, like in equality).
  std::uint64_t Fingerprint() const;

  /// Parseable ASCII form, e.g. "!(t1.Team == t2.Team & t1.City != t2.City)".
  std::string ToString(const Schema& schema) const;

  /// Paper-style form, e.g. "∀t1,t2. ¬(t1.Team = t2.Team ∧ t1.City ≠ t2.City)".
  std::string ToPrettyString(const Schema& schema) const;

 private:
  std::string name_;
  int arity_ = 2;
  std::vector<Predicate> predicates_;
};

/// An ordered set of named denial constraints (the "players" of the
/// constraint Shapley game).
class DcSet {
 public:
  DcSet() = default;
  explicit DcSet(std::vector<DenialConstraint> constraints)
      : constraints_(std::move(constraints)) {}

  std::size_t size() const { return constraints_.size(); }
  bool empty() const { return constraints_.empty(); }

  const DenialConstraint& at(std::size_t index) const;
  const std::vector<DenialConstraint>& constraints() const {
    return constraints_;
  }

  /// Appends a constraint.
  void Add(DenialConstraint constraint) {
    constraints_.push_back(std::move(constraint));
  }

  /// Index of the constraint with the given name.
  [[nodiscard]] Result<std::size_t> IndexOf(const std::string& name) const;

  /// The sub-set selected by `mask` (bit i keeps constraint i), preserving
  /// order. Requires size() <= 64.
  DcSet Subset(std::uint64_t mask) const;

  /// Removes the constraint at `index`, preserving order of the rest.
  DcSet Without(std::size_t index) const;

  /// Union of all referenced columns.
  std::set<std::size_t> AllColumns() const;

  bool operator==(const DcSet& other) const {
    return constraints_ == other.constraints_;
  }

  /// Order-sensitive structural fingerprint of the whole set, consistent
  /// with operator==. The serving router keys engines by this (plus the
  /// table fingerprint); collisions are disambiguated by full comparison.
  std::uint64_t Fingerprint() const;

 private:
  std::vector<DenialConstraint> constraints_;
};

}  // namespace trex::dc

#endif  // TREX_DC_CONSTRAINT_H_
