#include "dc/predicate.h"

#include "common/hash.h"
#include "common/logging.h"

namespace trex::dc {

const char* CompareOpToString(CompareOp op) {
  switch (op) {
    case CompareOp::kEq:
      return "==";
    case CompareOp::kNeq:
      return "!=";
    case CompareOp::kLt:
      return "<";
    case CompareOp::kLe:
      return "<=";
    case CompareOp::kGt:
      return ">";
    case CompareOp::kGe:
      return ">=";
  }
  return "?";
}

const char* CompareOpToPrettyString(CompareOp op) {
  switch (op) {
    case CompareOp::kEq:
      return "=";
    case CompareOp::kNeq:
      return "≠";
    case CompareOp::kLt:
      return "<";
    case CompareOp::kLe:
      return "≤";
    case CompareOp::kGt:
      return ">";
    case CompareOp::kGe:
      return "≥";
  }
  return "?";
}

CompareOp FlipOp(CompareOp op) {
  switch (op) {
    case CompareOp::kEq:
      return CompareOp::kEq;
    case CompareOp::kNeq:
      return CompareOp::kNeq;
    case CompareOp::kLt:
      return CompareOp::kGt;
    case CompareOp::kLe:
      return CompareOp::kGe;
    case CompareOp::kGt:
      return CompareOp::kLt;
    case CompareOp::kGe:
      return CompareOp::kLe;
  }
  return op;
}

CompareOp NegateOp(CompareOp op) {
  switch (op) {
    case CompareOp::kEq:
      return CompareOp::kNeq;
    case CompareOp::kNeq:
      return CompareOp::kEq;
    case CompareOp::kLt:
      return CompareOp::kGe;
    case CompareOp::kLe:
      return CompareOp::kGt;
    case CompareOp::kGt:
      return CompareOp::kLe;
    case CompareOp::kGe:
      return CompareOp::kLt;
  }
  return op;
}

bool EvalOp(const Value& lhs, CompareOp op, const Value& rhs) {
  // Null semantics (paper §2.2, Example 2.4): a null cell is an *unknown*
  // value. Equality with anything is not assertible (false); inequality
  // against a concrete value holds (the coalition arithmetic of Example
  // 2.4 requires C1 to fire when t5[City] is nulled out against
  // t3[City]='Madrid'); inequality between two unknowns is not assertible.
  // Order comparisons require both sides known.
  if (lhs.is_null() || rhs.is_null()) {
    if (op == CompareOp::kNeq) {
      return lhs.is_null() != rhs.is_null();
    }
    return false;
  }
  switch (op) {
    case CompareOp::kEq:
      return lhs == rhs;
    case CompareOp::kNeq:
      return lhs != rhs;
    case CompareOp::kLt:
      return lhs < rhs;
    case CompareOp::kLe:
      return lhs <= rhs;
    case CompareOp::kGt:
      return lhs > rhs;
    case CompareOp::kGe:
      return lhs >= rhs;
  }
  return false;
}

const Value& Operand::Resolve(const Table& table, std::size_t row1,
                              std::size_t row2) const {
  if (!is_cell_) return constant_;
  const std::size_t row = tuple_index_ == 0 ? row1 : row2;
  return table.at(row, col_);
}

bool Operand::operator==(const Operand& other) const {
  if (is_cell_ != other.is_cell_) return false;
  if (is_cell_) {
    return tuple_index_ == other.tuple_index_ && col_ == other.col_;
  }
  // Null constants compare equal structurally here.
  if (constant_.is_null() || other.constant_.is_null()) {
    return constant_.is_null() && other.constant_.is_null();
  }
  return constant_ == other.constant_;
}

std::uint64_t Operand::Fingerprint() const {
  std::uint64_t h = Fnv1a(is_cell_ ? "cell" : "const");
  if (is_cell_) {
    h = HashCombine(h, static_cast<std::uint64_t>(tuple_index_));
    h = HashCombine(h, col_);
  } else {
    // Mirrors operator==: all null constants fingerprint alike.
    h = HashCombine(h, constant_.is_null() ? 0u : constant_.Hash());
  }
  return h;
}

std::string Operand::ToString(const Schema& schema) const {
  if (is_cell_) {
    const std::string attr = col_ < schema.size()
                                 ? schema.attribute(col_).name
                                 : "#" + std::to_string(col_);
    return "t" + std::to_string(tuple_index_ + 1) + "." + attr;
  }
  if (constant_.is_string()) return "'" + constant_.as_string() + "'";
  return constant_.ToString();
}

bool Predicate::Eval(const Table& table, std::size_t row1,
                     std::size_t row2) const {
  const Value& a = lhs.Resolve(table, row1, row2);
  const Value& b = rhs.Resolve(table, row1, row2);
  return EvalOp(a, op, b);
}

bool Predicate::MentionsTuple(int tuple_index) const {
  return (lhs.is_cell() && lhs.tuple_index() == tuple_index) ||
         (rhs.is_cell() && rhs.tuple_index() == tuple_index);
}

bool Predicate::IsCrossTupleEquality() const {
  return op == CompareOp::kEq && lhs.is_cell() && rhs.is_cell() &&
         lhs.tuple_index() != rhs.tuple_index();
}

bool Predicate::operator==(const Predicate& other) const {
  return lhs == other.lhs && op == other.op && rhs == other.rhs;
}

std::uint64_t Predicate::Fingerprint() const {
  std::uint64_t h = lhs.Fingerprint();
  h = HashCombine(h, static_cast<std::uint64_t>(op));
  h = HashCombine(h, rhs.Fingerprint());
  return h;
}

std::string Predicate::ToString(const Schema& schema) const {
  return lhs.ToString(schema) + " " + CompareOpToString(op) + " " +
         rhs.ToString(schema);
}

std::string Predicate::ToPrettyString(const Schema& schema) const {
  return lhs.ToString(schema) + " " + CompareOpToPrettyString(op) + " " +
         rhs.ToString(schema);
}

}  // namespace trex::dc
