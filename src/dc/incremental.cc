#include "dc/incremental.h"

#include "common/logging.h"

namespace trex::dc {

ViolationIndex::ViolationIndex(const Table& table, const DcSet* dcs)
    : table_(table), dcs_(dcs) {
  TREX_CHECK(dcs_ != nullptr);
  for (const Violation& v : FindViolations(table_, *dcs_)) {
    violations_.insert(v);
  }
}

void ViolationIndex::RefreshRow(std::size_t constraint_index,
                                std::size_t row) {
  const DenialConstraint& constraint = dcs_->at(constraint_index);

  // Drop stale entries involving the row.
  for (auto it = violations_.begin(); it != violations_.end();) {
    if (it->constraint_index == constraint_index &&
        (it->row1 == row || it->row2 == row)) {
      it = violations_.erase(it);
    } else {
      ++it;
    }
  }

  // Rescan the row.
  if (constraint.arity() == 1) {
    if (constraint.IsViolatedBy(table_, row, row)) {
      violations_.insert(Violation{constraint_index, row, row});
    }
    return;
  }
  const bool dedup = constraint.IsSymmetric();
  for (std::size_t other = 0; other < table_.num_rows(); ++other) {
    if (other == row) continue;
    if (constraint.IsViolatedBy(table_, row, other)) {
      Violation v{constraint_index, row, other};
      if (dedup && other < row) v = Violation{constraint_index, other, row};
      violations_.insert(v);
    }
    if (constraint.IsViolatedBy(table_, other, row)) {
      Violation v{constraint_index, other, row};
      if (dedup && row < other) v = Violation{constraint_index, row, other};
      violations_.insert(v);
    }
  }
}

void ViolationIndex::SetCell(CellRef cell, Value value) {
  TREX_CHECK_LT(cell.row, table_.num_rows());
  TREX_CHECK_LT(cell.col, table_.num_columns());
  table_.Set(cell, std::move(value));
  for (std::size_t c = 0; c < dcs_->size(); ++c) {
    if (dcs_->at(c).AllColumns().count(cell.col) == 0) continue;
    RefreshRow(c, cell.row);
  }
}

std::size_t ViolationIndex::CountIfSet(CellRef cell, const Value& value) {
  const Value saved = table_.at(cell);
  const std::set<Violation> saved_violations = violations_;
  SetCell(cell, value);
  const std::size_t count = violations_.size();
  // Roll back.
  table_.Set(cell, saved);
  violations_ = saved_violations;
  return count;
}

}  // namespace trex::dc
