#include "dc/incremental.h"

#include <utility>

#include "common/logging.h"

namespace trex::dc {

ViolationIndex::ViolationIndex(const Table& table, const DcSet* dcs)
    : table_(table), dcs_(dcs) {
  TREX_CHECK(dcs_ != nullptr);
  row_indexes_.reserve(dcs_->size());
  for (std::size_t c = 0; c < dcs_->size(); ++c) {
    row_indexes_.emplace_back(&table_, &dcs_->at(c));
  }
  for (const Violation& v : FindViolations(table_, *dcs_)) {
    violations_.insert(v);
    by_row2_.insert(v);
  }
}

void ViolationIndex::RefreshRow(std::size_t constraint_index,
                                std::size_t row,
                                std::vector<Violation>* removed,
                                std::vector<Violation>* added) {
  // Drop stale entries involving the row: range-scan the primary set for
  // row1 == row and the mirror for row2 == row.
  std::vector<Violation> stale;
  for (auto it = violations_.lower_bound(Violation{constraint_index, row, 0});
       it != violations_.end() &&
       it->constraint_index == constraint_index && it->row1 == row;
       ++it) {
    stale.push_back(*it);
  }
  for (auto it = by_row2_.lower_bound(Violation{constraint_index, 0, row});
       it != by_row2_.end() && it->constraint_index == constraint_index &&
       it->row2 == row;
       ++it) {
    if (it->row1 != row) stale.push_back(*it);  // unary collected above
  }
  for (const Violation& v : stale) {
    violations_.erase(v);
    by_row2_.erase(v);
    if (removed != nullptr) removed->push_back(v);
  }

  // Rescan the row through the constraint's bucket probe.
  const bool dedup = dcs_->at(constraint_index).IsSymmetric();
  for (const Violation& v : row_indexes_[constraint_index].ViolationsOfRow(
           row, constraint_index, dedup)) {
    if (violations_.insert(v).second) {
      by_row2_.insert(v);
      if (added != nullptr) added->push_back(v);
    }
  }
}

void ViolationIndex::SetCell(CellRef cell, Value value,
                             std::vector<Violation>* removed,
                             std::vector<Violation>* added) {
  TREX_CHECK_LT(cell.row, table_.num_rows());
  TREX_CHECK_LT(cell.col, table_.num_columns());
  table_.Set(cell, std::move(value));
  for (std::size_t c = 0; c < dcs_->size(); ++c) {
    if (dcs_->at(c).AllColumns().count(cell.col) == 0) continue;
    if (row_indexes_[c].IsKeyColumn(cell.col)) row_indexes_[c].Rekey(cell.row);
    RefreshRow(c, cell.row, removed, added);
  }
}

std::size_t ViolationIndex::CountIfSet(CellRef cell, const Value& value) {
  // Pure delta probe: a cell write only affects violations that involve
  // its row under constraints reading its column, so the what-if count
  // is |V| − (current such violations) + (such violations with `value`
  // placed). The violation sets are never touched — no snapshot, no
  // erase/re-insert churn per probe.
  std::size_t count = violations_.size();
  const Value saved = table_.at(cell);
  std::vector<std::size_t> affected;
  for (std::size_t c = 0; c < dcs_->size(); ++c) {
    if (dcs_->at(c).AllColumns().count(cell.col) == 0) continue;
    affected.push_back(c);
    // Distinct current entries involving the row: row1 == row (primary
    // range) plus row2 == row (mirror range), minus the unary overlap.
    for (auto it = violations_.lower_bound(Violation{c, cell.row, 0});
         it != violations_.end() && it->constraint_index == c &&
         it->row1 == cell.row;
         ++it) {
      --count;
    }
    for (auto it = by_row2_.lower_bound(Violation{c, 0, cell.row});
         it != by_row2_.end() && it->constraint_index == c &&
         it->row2 == cell.row;
         ++it) {
      if (it->row1 != cell.row) --count;  // unary counted above already
    }
  }
  table_.Set(cell, value);
  std::set<Violation> hypothetical;
  for (std::size_t c : affected) {
    if (row_indexes_[c].IsKeyColumn(cell.col)) row_indexes_[c].Rekey(cell.row);
    const bool dedup = dcs_->at(c).IsSymmetric();
    for (const Violation& v :
         row_indexes_[c].ViolationsOfRow(cell.row, c, dedup)) {
      hypothetical.insert(v);
    }
  }
  count += hypothetical.size();
  table_.Set(cell, saved);
  for (std::size_t c : affected) {
    if (row_indexes_[c].IsKeyColumn(cell.col)) row_indexes_[c].Rekey(cell.row);
  }
  return count;
}

}  // namespace trex::dc
