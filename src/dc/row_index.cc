#include "dc/row_index.h"

#include <algorithm>

#include "common/hash.h"
#include "common/logging.h"
#include "dc/predicate.h"

namespace trex::dc {

bool ConstraintRowIndex::Key::operator==(const Key& other) const {
  if (values.size() != other.values.size()) return false;
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (values[i] != other.values[i]) return false;
  }
  return true;
}

std::size_t ConstraintRowIndex::KeyHash::operator()(const Key& key) const {
  std::size_t h = 0x811c9dc5;
  for (const Value& v : key.values) h = HashCombine(h, v.Hash());
  return h;
}

ConstraintRowIndex::ConstraintRowIndex(const Table* table,
                                       const DenialConstraint* dc)
    : table_(table), dc_(dc) {
  TREX_CHECK(table_ != nullptr);
  TREX_CHECK(dc_ != nullptr);
  if (dc_->arity() != 2) return;
  // The same join-key convention as the detector's hash fast path —
  // shared extraction keeps probe and detector agreeing on what joins.
  CrossTupleKeyColumns cols = CrossTupleEqualityColumns(*dc_);
  t1_cols_ = std::move(cols.t1_cols);
  t2_cols_ = std::move(cols.t2_cols);
  if (t1_cols_.empty()) return;
  use_buckets_ = true;

  const std::size_t n = table_->num_rows();
  t1_key_of_row_.resize(n);
  t2_key_of_row_.resize(n);
  by_t2_key_.reserve(n);
  by_t1_key_.reserve(n);
  for (std::size_t row = 0; row < n; ++row) {
    t1_key_of_row_[row] = KeyOf(row, t1_cols_);
    t2_key_of_row_[row] = KeyOf(row, t2_cols_);
    Insert(&by_t1_key_, t1_key_of_row_[row], row);
    Insert(&by_t2_key_, t2_key_of_row_[row], row);
  }
}

std::optional<ConstraintRowIndex::Key> ConstraintRowIndex::KeyOf(
    std::size_t row, const std::vector<std::size_t>& cols) const {
  Key key;
  key.values.reserve(cols.size());
  for (std::size_t col : cols) {
    const Value& v = table_->at(row, col);
    if (v.is_null()) return std::nullopt;  // null never joins
    key.values.push_back(v);
  }
  return key;
}

void ConstraintRowIndex::Remove(BucketMap* buckets,
                                const std::optional<Key>& key,
                                std::size_t row) {
  if (!key.has_value()) return;
  auto it = buckets->find(*key);
  if (it == buckets->end()) return;
  auto& rows = it->second;
  rows.erase(std::remove(rows.begin(), rows.end(), row), rows.end());
  if (rows.empty()) buckets->erase(it);
}

void ConstraintRowIndex::Insert(BucketMap* buckets,
                                const std::optional<Key>& key,
                                std::size_t row) {
  if (!key.has_value()) return;
  (*buckets)[*key].push_back(row);
}

bool ConstraintRowIndex::IsKeyColumn(std::size_t col) const {
  if (!use_buckets_) return false;
  return std::find(t1_cols_.begin(), t1_cols_.end(), col) !=
             t1_cols_.end() ||
         std::find(t2_cols_.begin(), t2_cols_.end(), col) != t2_cols_.end();
}

void ConstraintRowIndex::Rekey(std::size_t row) {
  if (!use_buckets_) return;
  TREX_CHECK_LT(row, t1_key_of_row_.size());
  Remove(&by_t1_key_, t1_key_of_row_[row], row);
  Remove(&by_t2_key_, t2_key_of_row_[row], row);
  t1_key_of_row_[row] = KeyOf(row, t1_cols_);
  t2_key_of_row_[row] = KeyOf(row, t2_cols_);
  Insert(&by_t1_key_, t1_key_of_row_[row], row);
  Insert(&by_t2_key_, t2_key_of_row_[row], row);
}

bool ConstraintRowIndex::RowViolates(std::size_t row) const {
  if (dc_->arity() == 1) return dc_->IsViolatedBy(*table_, row, row);
  if (!use_buckets_) {
    for (std::size_t other = 0; other < table_->num_rows(); ++other) {
      if (other == row) continue;
      if (dc_->IsViolatedBy(*table_, row, other) ||
          dc_->IsViolatedBy(*table_, other, row)) {
        return true;
      }
    }
    return false;
  }
  // Partners for ordered pairs (row, other): rows whose t2-side key
  // matches this row's t1-side key.
  if (const auto& key = t1_key_of_row_[row]; key.has_value()) {
    if (auto it = by_t2_key_.find(*key); it != by_t2_key_.end()) {
      for (std::size_t other : it->second) {
        if (other == row) continue;
        if (dc_->IsViolatedBy(*table_, row, other)) return true;
      }
    }
  }
  // ...and the mirror for ordered pairs (other, row).
  if (const auto& key = t2_key_of_row_[row]; key.has_value()) {
    if (auto it = by_t1_key_.find(*key); it != by_t1_key_.end()) {
      for (std::size_t other : it->second) {
        if (other == row) continue;
        if (dc_->IsViolatedBy(*table_, other, row)) return true;
      }
    }
  }
  return false;
}

std::vector<Violation> ConstraintRowIndex::ViolationsOfRow(
    std::size_t row, std::size_t constraint_index, bool dedup) const {
  std::vector<Violation> out;
  if (dc_->arity() == 1) {
    if (dc_->IsViolatedBy(*table_, row, row)) {
      out.push_back(Violation{constraint_index, row, row});
    }
    return out;
  }
  const auto emit_forward = [&](std::size_t other) {
    if (dc_->IsViolatedBy(*table_, row, other)) {
      Violation v{constraint_index, row, other};
      if (dedup && other < row) v = Violation{constraint_index, other, row};
      out.push_back(v);
    }
  };
  const auto emit_reverse = [&](std::size_t other) {
    if (dc_->IsViolatedBy(*table_, other, row)) {
      Violation v{constraint_index, other, row};
      if (dedup && row < other) v = Violation{constraint_index, row, other};
      out.push_back(v);
    }
  };
  if (!use_buckets_) {
    for (std::size_t other = 0; other < table_->num_rows(); ++other) {
      if (other == row) continue;
      emit_forward(other);
      emit_reverse(other);
    }
    return out;
  }
  if (const auto& key = t1_key_of_row_[row]; key.has_value()) {
    if (auto it = by_t2_key_.find(*key); it != by_t2_key_.end()) {
      for (std::size_t other : it->second) {
        if (other != row) emit_forward(other);
      }
    }
  }
  if (const auto& key = t2_key_of_row_[row]; key.has_value()) {
    if (auto it = by_t1_key_.find(*key); it != by_t1_key_.end()) {
      for (std::size_t other : it->second) {
        if (other != row) emit_reverse(other);
      }
    }
  }
  return out;
}

}  // namespace trex::dc
