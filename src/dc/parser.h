// Text parser for denial constraints.
//
// Accepted grammar (ASCII and the paper's Unicode spellings):
//
//   dc       := [name ":"] [quantifier] negation
//   quantifier := ("forall" | "∀") ident ("," ident)* "."
//   negation := ("!" | "not" | "¬") "(" conjunction ")"
//   conjunction := predicate (("&" | "&&" | "and" | "∧") predicate)*
//   predicate := operand op operand
//   operand  := tuple_ref | constant
//   tuple_ref := ("t1" | "t2") ("." attr | "[" attr "]")
//   constant := "'" text "'" | '"' text '"' | number
//   op       := "==" | "=" | "!=" | "<>" | "≠" | "<=" | "≤"
//             | ">=" | "≥" | "<" | ">"
//
// Examples (all equivalent):
//   !(t1.Team == t2.Team & t1.City != t2.City)
//   C1: forall t1,t2. not(t1[Team] = t2[Team] and t1[City] <> t2[City])
//   ∀t1,t2. ¬(t1.Team = t2.Team ∧ t1.City ≠ t2.City)
//
// `DenialConstraint::ToString` emits the first form, so printing and
// parsing round-trip.

#ifndef TREX_DC_PARSER_H_
#define TREX_DC_PARSER_H_

#include <string>
#include <string_view>

#include "common/status.h"
#include "dc/constraint.h"
#include "table/schema.h"

namespace trex::dc {

/// Parses a single DC. The name is taken from a leading "name:" prefix if
/// present, else `default_name`. Attribute names are resolved against
/// `schema`; unknown attributes are an error.
[[nodiscard]] Result<DenialConstraint> ParseDc(std::string_view text, const Schema& schema,
                                 std::string default_name = "DC");

/// Parses one DC per non-empty, non-comment (`#`) line. Unnamed lines get
/// names "C1", "C2", ... by position.
[[nodiscard]] Result<DcSet> ParseDcSet(std::string_view text, const Schema& schema);

}  // namespace trex::dc

#endif  // TREX_DC_PARSER_H_
