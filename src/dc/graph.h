// Attribute dependency graph: which columns can influence which through
// the constraint set / repair actions.
//
// Used for *relevant-cell pruning* in the Shapley cell explainer: cells in
// columns that cannot (transitively) influence the target cell's column
// are dummy players and can be skipped. Two builders exist:
//
//  * `FromDcSet` — conservative for a black-box repairer: every column a
//    DC reads may influence every column that DC reads (any of them could
//    be the one the repairer rewrites).
//  * Precise construction via `AddInfluence` — used by repairers that
//    expose their write-sets (e.g. `RuleRepair`: C1 reads {Team, City} and
//    writes City), giving tighter pruning such as excluding `t1[Place]`
//    for the paper's running example.

#ifndef TREX_DC_GRAPH_H_
#define TREX_DC_GRAPH_H_

#include <set>
#include <vector>

#include "dc/constraint.h"
#include "table/table.h"

namespace trex::dc {

/// Directed influence graph over column indices.
class AttributeGraph {
 public:
  explicit AttributeGraph(std::size_t num_columns)
      : reverse_edges_(num_columns) {}

  /// Conservative graph from a DC set (see file comment).
  static AttributeGraph FromDcSet(const DcSet& dcs, std::size_t num_columns);

  /// Declares that `from_col` can influence `to_col`.
  void AddInfluence(std::size_t from_col, std::size_t to_col);

  std::size_t num_columns() const { return reverse_edges_.size(); }

  /// All columns that can transitively influence `target_col`, including
  /// `target_col` itself (reverse reachability).
  std::set<std::size_t> InfluencingColumns(std::size_t target_col) const;

 private:
  // reverse_edges_[to] = set of direct influencers.
  std::vector<std::set<std::size_t>> reverse_edges_;
};

/// The cells that can influence the repair of `target` under `graph`:
/// every row's cells in the influencing columns. The target cell itself is
/// included (it is a regular player in the paper's cell game).
std::vector<CellRef> RelevantCells(const Table& table,
                                   const AttributeGraph& graph,
                                   CellRef target);

}  // namespace trex::dc

#endif  // TREX_DC_GRAPH_H_
