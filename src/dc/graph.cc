#include "dc/graph.h"

#include <deque>

#include "common/logging.h"

namespace trex::dc {

AttributeGraph AttributeGraph::FromDcSet(const DcSet& dcs,
                                         std::size_t num_columns) {
  AttributeGraph graph(num_columns);
  for (const DenialConstraint& dc : dcs.constraints()) {
    const std::set<std::size_t> cols = dc.AllColumns();
    for (std::size_t from : cols) {
      for (std::size_t to : cols) {
        graph.AddInfluence(from, to);
      }
    }
  }
  return graph;
}

void AttributeGraph::AddInfluence(std::size_t from_col, std::size_t to_col) {
  TREX_CHECK_LT(from_col, reverse_edges_.size());
  TREX_CHECK_LT(to_col, reverse_edges_.size());
  reverse_edges_[to_col].insert(from_col);
}

std::set<std::size_t> AttributeGraph::InfluencingColumns(
    std::size_t target_col) const {
  TREX_CHECK_LT(target_col, reverse_edges_.size());
  std::set<std::size_t> visited{target_col};
  std::deque<std::size_t> frontier{target_col};
  while (!frontier.empty()) {
    const std::size_t col = frontier.front();
    frontier.pop_front();
    for (std::size_t from : reverse_edges_[col]) {
      if (visited.insert(from).second) frontier.push_back(from);
    }
  }
  return visited;
}

std::vector<CellRef> RelevantCells(const Table& table,
                                   const AttributeGraph& graph,
                                   CellRef target) {
  const std::set<std::size_t> cols = graph.InfluencingColumns(target.col);
  std::vector<CellRef> cells;
  cells.reserve(cols.size() * table.num_rows());
  for (std::size_t r = 0; r < table.num_rows(); ++r) {
    for (std::size_t c : cols) {
      cells.push_back(CellRef{r, c});
    }
  }
  return cells;
}

}  // namespace trex::dc
