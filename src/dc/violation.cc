#include "dc/violation.h"

#include <algorithm>
#include <unordered_map>

#include "common/hash.h"
#include "common/logging.h"

namespace trex::dc {
namespace {

/// Key for composite hash joins: hashes of the joined values.
struct JoinKey {
  std::vector<Value> values;

  bool operator==(const JoinKey& other) const {
    if (values.size() != other.values.size()) return false;
    for (std::size_t i = 0; i < values.size(); ++i) {
      if (values[i] != other.values[i]) return false;
    }
    return true;
  }
};

struct JoinKeyHash {
  std::size_t operator()(const JoinKey& key) const {
    std::size_t h = 0x811c9dc5;
    for (const Value& v : key.values) h = HashCombine(h, v.Hash());
    return h;
  }
};

/// Emits the ordered pair (r1, r2) as a violation if it survives the
/// dedup policy.
void Emit(std::size_t constraint_index, std::size_t r1, std::size_t r2,
          bool symmetric_dedup, std::vector<Violation>* out) {
  if (symmetric_dedup && r2 < r1) return;
  out->push_back(Violation{constraint_index, r1, r2});
}

void FindBinaryViolationsNestedLoop(const Table& table,
                                    const DenialConstraint& dc,
                                    std::size_t constraint_index,
                                    bool symmetric_dedup,
                                    std::vector<Violation>* out) {
  const std::size_t n = table.num_rows();
  for (std::size_t r1 = 0; r1 < n; ++r1) {
    for (std::size_t r2 = 0; r2 < n; ++r2) {
      if (r1 == r2) continue;
      if (dc.IsViolatedBy(table, r1, r2)) {
        Emit(constraint_index, r1, r2, symmetric_dedup, out);
      }
    }
  }
}

void FindBinaryViolationsHashJoin(const Table& table,
                                  const DenialConstraint& dc,
                                  std::size_t constraint_index,
                                  bool symmetric_dedup,
                                  std::vector<Violation>* out) {
  // Partition rows by the t2-side columns of every cross-tuple equality
  // predicate; probe with the t1-side columns.
  const auto [t1_cols, t2_cols] = CrossTupleEqualityColumns(dc);
  TREX_CHECK(!t1_cols.empty());

  const std::size_t n = table.num_rows();
  std::unordered_map<JoinKey, std::vector<std::size_t>, JoinKeyHash> buckets;
  buckets.reserve(n);
  for (std::size_t r = 0; r < n; ++r) {
    JoinKey key;
    key.values.reserve(t2_cols.size());
    bool has_null = false;
    for (std::size_t col : t2_cols) {
      const Value& v = table.at(r, col);
      if (v.is_null()) {
        has_null = true;
        break;
      }
      key.values.push_back(v);
    }
    if (has_null) continue;  // null never joins
    buckets[std::move(key)].push_back(r);
  }

  for (std::size_t r1 = 0; r1 < n; ++r1) {
    JoinKey probe;
    probe.values.reserve(t1_cols.size());
    bool has_null = false;
    for (std::size_t col : t1_cols) {
      const Value& v = table.at(r1, col);
      if (v.is_null()) {
        has_null = true;
        break;
      }
      probe.values.push_back(v);
    }
    if (has_null) continue;
    auto it = buckets.find(probe);
    if (it == buckets.end()) continue;
    for (std::size_t r2 : it->second) {
      if (r1 == r2) continue;
      if (dc.IsViolatedBy(table, r1, r2)) {
        Emit(constraint_index, r1, r2, symmetric_dedup, out);
      }
    }
  }
}

}  // namespace

CrossTupleKeyColumns CrossTupleEqualityColumns(const DenialConstraint& dc) {
  CrossTupleKeyColumns cols;
  for (const Predicate& p : dc.predicates()) {
    if (!p.IsCrossTupleEquality()) continue;
    const Operand& a = p.lhs.tuple_index() == 0 ? p.lhs : p.rhs;
    const Operand& b = p.lhs.tuple_index() == 0 ? p.rhs : p.lhs;
    cols.t1_cols.push_back(a.col());
    cols.t2_cols.push_back(b.col());
  }
  return cols;
}

std::string Violation::ToString(const DcSet& dcs) const {
  const std::string name = constraint_index < dcs.size()
                               ? dcs.at(constraint_index).name()
                               : "C?" + std::to_string(constraint_index);
  if (row1 == row2) {
    return name + " violated by t" + std::to_string(row1 + 1);
  }
  return name + " violated by (t" + std::to_string(row1 + 1) + ", t" +
         std::to_string(row2 + 1) + ")";
}

std::vector<Violation> FindViolationsOf(const Table& table,
                                        const DenialConstraint& dc,
                                        std::size_t constraint_index,
                                        const ViolationOptions& options) {
  std::vector<Violation> out;
  if (dc.arity() == 1) {
    for (std::size_t r = 0; r < table.num_rows(); ++r) {
      if (dc.IsViolatedBy(table, r, r)) {
        out.push_back(Violation{constraint_index, r, r});
      }
    }
    return out;
  }
  const bool symmetric_dedup = options.dedupe_symmetric && dc.IsSymmetric();
  bool has_equality = false;
  for (const Predicate& p : dc.predicates()) {
    if (p.IsCrossTupleEquality()) {
      has_equality = true;
      break;
    }
  }
  if (has_equality) {
    FindBinaryViolationsHashJoin(table, dc, constraint_index,
                                 symmetric_dedup, &out);
  } else {
    FindBinaryViolationsNestedLoop(table, dc, constraint_index,
                                   symmetric_dedup, &out);
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<Violation> FindViolations(const Table& table, const DcSet& dcs,
                                      const ViolationOptions& options) {
  std::vector<Violation> out;
  for (std::size_t i = 0; i < dcs.size(); ++i) {
    auto per_dc = FindViolationsOf(table, dcs.at(i), i, options);
    out.insert(out.end(), per_dc.begin(), per_dc.end());
  }
  return out;
}

bool HasAnyViolation(const Table& table, const DcSet& dcs) {
  for (std::size_t i = 0; i < dcs.size(); ++i) {
    if (!FindViolationsOf(table, dcs.at(i), i).empty()) return true;
  }
  return false;
}

bool RowViolates(const Table& table, const DenialConstraint& dc,
                 std::size_t row) {
  if (dc.arity() == 1) {
    return dc.IsViolatedBy(table, row, row);
  }
  for (std::size_t other = 0; other < table.num_rows(); ++other) {
    if (other == row) continue;
    if (dc.IsViolatedBy(table, row, other) ||
        dc.IsViolatedBy(table, other, row)) {
      return true;
    }
  }
  return false;
}

std::vector<CellRef> ImplicatedCells(const Violation& violation,
                                     const DcSet& dcs) {
  std::vector<CellRef> cells;
  const DenialConstraint& dc = dcs.at(violation.constraint_index);
  for (std::size_t col : dc.ColumnsOfTuple(0)) {
    cells.push_back(CellRef{violation.row1, col});
  }
  if (dc.arity() == 2) {
    for (std::size_t col : dc.ColumnsOfTuple(1)) {
      const CellRef cell{violation.row2, col};
      if (std::find(cells.begin(), cells.end(), cell) == cells.end()) {
        cells.push_back(cell);
      }
    }
  }
  return cells;
}

}  // namespace trex::dc
