#include "dc/constraint.h"

#include <algorithm>

#include "common/hash.h"
#include "common/logging.h"

namespace trex::dc {

Result<DenialConstraint> DenialConstraint::Make(
    std::string name, int arity, std::vector<Predicate> predicates) {
  if (arity != 1 && arity != 2) {
    return Status::InvalidArgument("DC arity must be 1 or 2, got " +
                                   std::to_string(arity));
  }
  if (predicates.empty()) {
    return Status::InvalidArgument("DC must have at least one predicate");
  }
  for (const Predicate& p : predicates) {
    for (const Operand* operand : {&p.lhs, &p.rhs}) {
      if (operand->is_cell() &&
          (operand->tuple_index() < 0 || operand->tuple_index() >= arity)) {
        return Status::InvalidArgument(
            "predicate mentions tuple variable t" +
            std::to_string(operand->tuple_index() + 1) +
            " outside the DC arity " + std::to_string(arity));
      }
    }
  }
  DenialConstraint dc;
  dc.name_ = std::move(name);
  dc.arity_ = arity;
  dc.predicates_ = std::move(predicates);
  return dc;
}

DenialConstraint DenialConstraint::FunctionalDependency(std::string name,
                                                        std::size_t lhs_col,
                                                        std::size_t rhs_col) {
  std::vector<Predicate> preds;
  preds.push_back(Predicate{Operand::Cell(0, lhs_col), CompareOp::kEq,
                            Operand::Cell(1, lhs_col)});
  preds.push_back(Predicate{Operand::Cell(0, rhs_col), CompareOp::kNeq,
                            Operand::Cell(1, rhs_col)});
  auto dc = Make(std::move(name), 2, std::move(preds));
  TREX_CHECK(dc.ok());
  return std::move(dc).value();
}

bool DenialConstraint::IsViolatedBy(const Table& table, std::size_t row1,
                                    std::size_t row2) const {
  for (const Predicate& p : predicates_) {
    if (!p.Eval(table, row1, row2)) return false;
  }
  return true;
}

std::set<std::size_t> DenialConstraint::ColumnsOfTuple(
    int tuple_index) const {
  std::set<std::size_t> cols;
  for (const Predicate& p : predicates_) {
    for (const Operand* operand : {&p.lhs, &p.rhs}) {
      if (operand->is_cell() && operand->tuple_index() == tuple_index) {
        cols.insert(operand->col());
      }
    }
  }
  return cols;
}

std::set<std::size_t> DenialConstraint::AllColumns() const {
  std::set<std::size_t> cols = ColumnsOfTuple(0);
  const std::set<std::size_t> t2 = ColumnsOfTuple(1);
  cols.insert(t2.begin(), t2.end());
  return cols;
}

namespace {

/// Returns `p` with t1 and t2 swapped, normalized so that a t1-cell (if
/// any) is on the left.
Predicate SwapTuples(const Predicate& p) {
  auto swap_operand = [](const Operand& op) {
    if (!op.is_cell()) return op;
    return Operand::Cell(1 - op.tuple_index(), op.col());
  };
  Predicate swapped{swap_operand(p.lhs), p.op, swap_operand(p.rhs)};
  const bool lhs_is_t2 =
      swapped.lhs.is_cell() && swapped.lhs.tuple_index() == 1;
  const bool rhs_is_t1 =
      swapped.rhs.is_cell() && swapped.rhs.tuple_index() == 0;
  if (lhs_is_t2 && rhs_is_t1) {
    swapped = Predicate{swapped.rhs, FlipOp(swapped.op), swapped.lhs};
  }
  return swapped;
}

/// Normalizes operand order for symmetry comparison: cross-tuple
/// predicates put t1 first; the op is flipped accordingly.
Predicate Normalize(const Predicate& p) {
  const bool lhs_is_t2 = p.lhs.is_cell() && p.lhs.tuple_index() == 1;
  const bool rhs_is_t1 = p.rhs.is_cell() && p.rhs.tuple_index() == 0;
  if (lhs_is_t2 && rhs_is_t1) {
    return Predicate{p.rhs, FlipOp(p.op), p.lhs};
  }
  return p;
}

bool SamePredicateSet(std::vector<Predicate> a, std::vector<Predicate> b) {
  if (a.size() != b.size()) return false;
  std::vector<bool> used(b.size(), false);
  for (const Predicate& pa : a) {
    bool found = false;
    for (std::size_t i = 0; i < b.size(); ++i) {
      if (!used[i] && pa == b[i]) {
        used[i] = true;
        found = true;
        break;
      }
    }
    if (!found) return false;
  }
  return true;
}

}  // namespace

bool DenialConstraint::IsSymmetric() const {
  if (arity_ == 1) return true;
  std::vector<Predicate> normalized;
  std::vector<Predicate> swapped;
  normalized.reserve(predicates_.size());
  swapped.reserve(predicates_.size());
  for (const Predicate& p : predicates_) {
    normalized.push_back(Normalize(p));
    swapped.push_back(Normalize(SwapTuples(p)));
  }
  return SamePredicateSet(normalized, swapped);
}

bool DenialConstraint::AsFunctionalDependency(std::size_t* lhs_col,
                                              std::size_t* rhs_col) const {
  if (arity_ != 2 || predicates_.size() != 2) return false;
  const Predicate* eq = nullptr;
  const Predicate* neq = nullptr;
  for (const Predicate& p : predicates_) {
    if (!p.lhs.is_cell() || !p.rhs.is_cell()) return false;
    if (p.lhs.tuple_index() == p.rhs.tuple_index()) return false;
    if (p.lhs.col() != p.rhs.col()) return false;
    if (p.op == CompareOp::kEq) {
      eq = &p;
    } else if (p.op == CompareOp::kNeq) {
      neq = &p;
    } else {
      return false;
    }
  }
  if (eq == nullptr || neq == nullptr) return false;
  if (lhs_col != nullptr) *lhs_col = eq->lhs.col();
  if (rhs_col != nullptr) *rhs_col = neq->lhs.col();
  return true;
}

std::string DenialConstraint::ToString(const Schema& schema) const {
  std::string out = "!(";
  for (std::size_t i = 0; i < predicates_.size(); ++i) {
    if (i > 0) out += " & ";
    out += predicates_[i].ToString(schema);
  }
  out += ")";
  return out;
}

std::string DenialConstraint::ToPrettyString(const Schema& schema) const {
  std::string out = "∀t1";
  if (arity_ == 2) out += ",t2";
  out += ". ¬(";
  for (std::size_t i = 0; i < predicates_.size(); ++i) {
    if (i > 0) out += " ∧ ";
    out += predicates_[i].ToPrettyString(schema);
  }
  out += ")";
  return out;
}

const DenialConstraint& DcSet::at(std::size_t index) const {
  TREX_CHECK_LT(index, constraints_.size());
  return constraints_[index];
}

Result<std::size_t> DcSet::IndexOf(const std::string& name) const {
  for (std::size_t i = 0; i < constraints_.size(); ++i) {
    if (constraints_[i].name() == name) return i;
  }
  return Status::NotFound("no constraint named '" + name + "'");
}

DcSet DcSet::Subset(std::uint64_t mask) const {
  TREX_CHECK_LE(constraints_.size(), 64u);
  DcSet out;
  for (std::size_t i = 0; i < constraints_.size(); ++i) {
    if (mask & (std::uint64_t{1} << i)) out.Add(constraints_[i]);
  }
  return out;
}

DcSet DcSet::Without(std::size_t index) const {
  TREX_CHECK_LT(index, constraints_.size());
  DcSet out;
  for (std::size_t i = 0; i < constraints_.size(); ++i) {
    if (i != index) out.Add(constraints_[i]);
  }
  return out;
}

std::set<std::size_t> DcSet::AllColumns() const {
  std::set<std::size_t> cols;
  for (const DenialConstraint& dc : constraints_) {
    const auto dc_cols = dc.AllColumns();
    cols.insert(dc_cols.begin(), dc_cols.end());
  }
  return cols;
}

std::uint64_t DenialConstraint::Fingerprint() const {
  std::uint64_t h = Fnv1a("dc");
  h = HashCombine(h, static_cast<std::uint64_t>(arity_));
  for (const Predicate& p : predicates_) h = HashCombine(h, p.Fingerprint());
  return h;
}

std::uint64_t DcSet::Fingerprint() const {
  std::uint64_t h = Fnv1a("dcset");
  h = HashCombine(h, constraints_.size());
  for (const DenialConstraint& c : constraints_) {
    h = HashCombine(h, c.Fingerprint());
  }
  return h;
}

}  // namespace trex::dc
