// Constraint discovery: mining denial constraints from data.
//
// The paper's pipeline assumes a DC set as input; in practice DCs are
// *discovered* from (mostly-)clean data — the paper cites Chu, Ilyas &
// Papotti, "Discovering denial constraints" (PVLDB 2013) as the source
// of its constraint language. This module provides the FD-shaped core of
// that problem: exact and approximate functional dependencies with one-
// or two-attribute left-hand sides, emitted directly as
// `DenialConstraint`s ready for the repairers and explainers.
//
// An FD X -> B is *approximate* at tolerance g1 when the fraction of
// row pairs that agree on X but disagree on B is at most g1 over the
// pairs that agree on X (the g1 error of Kivinen & Mannila). Exact
// discovery is g1 = 0.

#ifndef TREX_DC_DISCOVERY_H_
#define TREX_DC_DISCOVERY_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "dc/constraint.h"
#include "table/table.h"

namespace trex::dc {

/// One discovered dependency with its measured quality.
struct DiscoveredFd {
  /// Left-hand-side columns (1 or 2) and the determined column.
  std::vector<std::size_t> lhs;
  std::size_t rhs = 0;
  /// Fraction of X-agreeing row pairs that disagree on B (g1 error).
  double violation_fraction = 0.0;
  /// Row pairs agreeing on X (the evidence mass behind the FD).
  std::size_t support_pairs = 0;
  /// The dependency as a denial constraint, named "Attr1[,Attr2]->Attr".
  DenialConstraint constraint;
};

/// Discovery parameters.
struct FdDiscoveryOptions {
  /// Maximum tolerated g1 error (0 = exact FDs only).
  double max_violation_fraction = 0.0;
  /// Minimum number of X-agreeing row pairs; prunes key-like LHS whose
  /// groups are all singletons (such FDs hold vacuously and explain
  /// nothing).
  std::size_t min_support_pairs = 1;
  /// Also search two-attribute LHS. Only minimal dependencies are
  /// emitted: (A1,A2) -> B is suppressed when A1 -> B or A2 -> B was
  /// already found.
  bool include_two_column_lhs = false;
};

/// Mines FDs over `table` (see file comment). Results are ordered by
/// (|lhs|, lhs columns, rhs column) so output is deterministic.
[[nodiscard]] Result<std::vector<DiscoveredFd>> DiscoverFds(
    const Table& table, const FdDiscoveryOptions& options = {});

/// Convenience: the discovered dependencies as a `DcSet`.
[[nodiscard]] Result<DcSet> DiscoverFdConstraints(const Table& table,
                                    const FdDiscoveryOptions& options = {});

}  // namespace trex::dc

#endif  // TREX_DC_DISCOVERY_H_
