// Hash-bucketed per-row violation probing for one denial constraint.
//
// `dc::RowViolates` answers "does this row participate in a violation?"
// with a full table scan — O(n) per call. Repair inner loops (rule
// firing, HoloClean featurization, holistic candidate probes) ask that
// question per row or per candidate, turning every repair into O(n²) and
// making 100k-row worlds unreachable. `ConstraintRowIndex` is the same
// hash-partition idea `FindViolations` already uses, kept *resident and
// maintainable* while the table mutates: rows are bucketed by the
// constraint's cross-tuple equality columns once (O(n)), and a probe
// tests only the row's join-key bucket — O(bucket) instead of O(n).
//
// Exactness: a probe returns exactly what the nested-loop scan would.
// Cross-tuple equality on a null is false (see EvalOp in predicate.cc),
// so rows with null join keys are correctly unbucketed on that side —
// the same argument that makes `FindViolations`' hash fast path exact.
// Constraints with no cross-tuple equality predicate (and unary
// constraints) fall back to the scan, so the index is safe for any DC.
//
// Mutation contract: the index reads the caller's table *live* — edits
// to non-key columns are visible immediately. After changing a cell in
// a key column (`IsKeyColumn`), the owner must call `Rekey(row)` before
// the next probe so the row moves to its new bucket.

#ifndef TREX_DC_ROW_INDEX_H_
#define TREX_DC_ROW_INDEX_H_

#include <cstddef>
#include <optional>
#include <unordered_map>
#include <vector>

#include "dc/constraint.h"
#include "dc/violation.h"
#include "table/table.h"

namespace trex::dc {

/// Resident partner-probe index for one constraint over a mutating
/// table (see file comment). The table and constraint must outlive the
/// index.
class ConstraintRowIndex {
 public:
  ConstraintRowIndex(const Table* table, const DenialConstraint* dc);

  /// True iff `row` currently participates in a violation of the
  /// constraint (as either tuple variable) — bit-identical to
  /// `dc::RowViolates(table, dc, row)`, in O(bucket) for constraints
  /// with cross-tuple equalities.
  bool RowViolates(std::size_t row) const;

  /// Every current violation involving `row`, tagged `constraint_index`
  /// and normalized like `ViolationIndex` keeps them (`dedup` folds a
  /// symmetric constraint's ordered pair onto row1 < row2). May contain
  /// duplicates when both orientations violate; callers deduplicate by
  /// inserting into a set.
  std::vector<Violation> ViolationsOfRow(std::size_t row,
                                         std::size_t constraint_index,
                                         bool dedup) const;

  /// True iff `col` feeds the bucket keys: after writing such a column,
  /// call `Rekey(row)` for the changed row.
  bool IsKeyColumn(std::size_t col) const;

  /// Re-buckets `row` from the table's current values.
  void Rekey(std::size_t row);

  /// False when the constraint has no cross-tuple equality predicate
  /// (probes fall back to the O(n) scan).
  bool uses_buckets() const { return use_buckets_; }

 private:
  struct Key {
    std::vector<Value> values;
    bool operator==(const Key& other) const;
  };
  struct KeyHash {
    std::size_t operator()(const Key& key) const;
  };
  using BucketMap =
      std::unordered_map<Key, std::vector<std::size_t>, KeyHash>;

  /// The row's join key over `cols`, or nullopt when any key value is
  /// null (null never joins).
  std::optional<Key> KeyOf(std::size_t row,
                           const std::vector<std::size_t>& cols) const;
  static void Remove(BucketMap* buckets, const std::optional<Key>& key,
                     std::size_t row);
  static void Insert(BucketMap* buckets, const std::optional<Key>& key,
                     std::size_t row);

  const Table* table_;
  const DenialConstraint* dc_;
  bool use_buckets_ = false;
  /// Columns of each tuple variable in the cross-tuple equality
  /// predicates (parallel vectors, one entry per such predicate).
  std::vector<std::size_t> t1_cols_;
  std::vector<std::size_t> t2_cols_;
  /// Rows bucketed by their t2-side key — probed with a row's t1-side
  /// key to find partners `o` for ordered pairs (row, o) — and the
  /// mirror for pairs (o, row).
  BucketMap by_t2_key_;
  BucketMap by_t1_key_;
  /// Each row's current keys, for bucket removal on `Rekey`.
  std::vector<std::optional<Key>> t1_key_of_row_;
  std::vector<std::optional<Key>> t2_key_of_row_;
};

}  // namespace trex::dc

#endif  // TREX_DC_ROW_INDEX_H_
