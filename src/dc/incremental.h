// Incremental violation maintenance.
//
// Repair inner loops ask "how many violations would remain if this cell
// were set to v?" thousands of times; recomputing all violations is
// O(n²) per probe. `ViolationIndex` maintains the violation set under
// single-cell updates: changing a cell only affects violations whose
// constraint reads that column and that involve that row. Each update
// rescans that row through a per-constraint `ConstraintRowIndex`
// (dc/row_index.h), so the rescan probes one hash bucket — O(bucket) —
// instead of the whole table, stale entries are range-erased from a
// (constraint, row)-addressable mirror instead of scanned, and a
// `CountIfSet` probe applies and rolls back the update instead of
// copying the violation set. `HolisticRepair` uses it for candidate
// evaluation (see bench_ablation's incremental entry and the
// equivalence property test).

#ifndef TREX_DC_INCREMENTAL_H_
#define TREX_DC_INCREMENTAL_H_

#include <set>
#include <vector>

#include "dc/constraint.h"
#include "dc/row_index.h"
#include "dc/violation.h"
#include "table/table.h"

namespace trex::dc {

/// Maintains the violation set of a table under cell updates (see file
/// comment). Owns a private copy of the table; `table()` exposes the
/// current state. Violations are kept with symmetric dedup (row1 < row2
/// for symmetric DCs), matching `FindViolations`' default.
class ViolationIndex {
 public:
  /// Builds the index over a snapshot of `table`.
  ViolationIndex(const Table& table, const DcSet* dcs);

  /// Not copyable/movable: the per-constraint row indexes hold pointers
  /// into this object's own `table_`.
  ViolationIndex(const ViolationIndex&) = delete;
  ViolationIndex& operator=(const ViolationIndex&) = delete;

  /// Current table state (the snapshot plus applied updates).
  const Table& table() const { return table_; }

  /// Current violations, in deterministic (constraint, rows) order.
  const std::set<Violation>& violations() const { return violations_; }
  std::size_t count() const { return violations_.size(); }

  /// Applies a cell update and incrementally maintains the set.
  /// `removed` / `added` (optional) receive the update's violation
  /// delta — entries dropped from and inserted into `violations()` —
  /// so callers maintaining derived structures (degree counts, conflict
  /// frontiers) can patch instead of rescanning. An entry that merely
  /// survives a refresh may appear in both lists; apply removals first.
  void SetCell(CellRef cell, Value value,
               std::vector<Violation>* removed = nullptr,
               std::vector<Violation>* added = nullptr);

  /// What-if probe: the violation count if `cell` were set to `value`.
  /// The table and index are left unchanged.
  std::size_t CountIfSet(CellRef cell, const Value& value);

 private:
  /// Orders violations by (constraint, row2, row1) so entries involving
  /// a row as the *second* tuple are range-addressable.
  struct Row2Order {
    bool operator()(const Violation& a, const Violation& b) const {
      if (a.constraint_index != b.constraint_index) {
        return a.constraint_index < b.constraint_index;
      }
      if (a.row2 != b.row2) return a.row2 < b.row2;
      return a.row1 < b.row1;
    }
  };

  /// Recomputes violations of constraint `c` that involve `row` and
  /// replaces the stale entries, reporting the delta when requested.
  void RefreshRow(std::size_t constraint_index, std::size_t row,
                  std::vector<Violation>* removed,
                  std::vector<Violation>* added);

  Table table_;
  const DcSet* dcs_;
  std::set<Violation> violations_;
  /// Mirror of `violations_` under `Row2Order` (same entries).
  std::set<Violation, Row2Order> by_row2_;
  /// One partner-probe index per constraint, kept over `table_`.
  std::vector<ConstraintRowIndex> row_indexes_;
};

}  // namespace trex::dc

#endif  // TREX_DC_INCREMENTAL_H_
