// Incremental violation maintenance.
//
// Repair inner loops ask "how many violations would remain if this cell
// were set to v?" thousands of times; recomputing all violations is
// O(n²) per probe. `ViolationIndex` maintains the violation set under
// single-cell updates: changing a cell only affects violations whose
// constraint reads that column and that involve that row, so each update
// rescans one row against the table — O(n · |preds|) instead of O(n²).
// `HolisticRepair` uses it for candidate evaluation (see
// bench_ablation's incremental entry and the equivalence property test).

#ifndef TREX_DC_INCREMENTAL_H_
#define TREX_DC_INCREMENTAL_H_

#include <set>
#include <vector>

#include "dc/constraint.h"
#include "dc/violation.h"
#include "table/table.h"

namespace trex::dc {

/// Maintains the violation set of a table under cell updates (see file
/// comment). Owns a private copy of the table; `table()` exposes the
/// current state. Violations are kept with symmetric dedup (row1 < row2
/// for symmetric DCs), matching `FindViolations`' default.
class ViolationIndex {
 public:
  /// Builds the index over a snapshot of `table`.
  ViolationIndex(const Table& table, const DcSet* dcs);

  /// Current table state (the snapshot plus applied updates).
  const Table& table() const { return table_; }

  /// Current violations, in deterministic (constraint, rows) order.
  const std::set<Violation>& violations() const { return violations_; }
  std::size_t count() const { return violations_.size(); }

  /// Applies a cell update and incrementally maintains the set.
  void SetCell(CellRef cell, Value value);

  /// What-if probe: the violation count if `cell` were set to `value`.
  /// The table and index are left unchanged.
  std::size_t CountIfSet(CellRef cell, const Value& value);

 private:
  /// Recomputes violations of constraint `c` that involve `row` and
  /// replaces the stale entries.
  void RefreshRow(std::size_t constraint_index, std::size_t row);

  Table table_;
  const DcSet* dcs_;
  std::set<Violation> violations_;
};

}  // namespace trex::dc

#endif  // TREX_DC_INCREMENTAL_H_
