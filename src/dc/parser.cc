#include "dc/parser.h"

#include <cctype>
#include <optional>
#include <vector>

#include "common/string_util.h"

namespace trex::dc {
namespace {

/// A minimal recursive-descent parser over a string_view cursor.
class Parser {
 public:
  Parser(std::string_view text, const Schema& schema)
      : text_(text), schema_(schema) {}

  Result<DenialConstraint> Parse(std::string default_name) {
    name_ = std::move(default_name);
    SkipSpace();
    TREX_RETURN_NOT_OK(MaybeParseNamePrefix());
    TREX_RETURN_NOT_OK(MaybeParseQuantifier());
    TREX_RETURN_NOT_OK(ExpectNegation());
    TREX_RETURN_NOT_OK(Expect("("));
    std::vector<Predicate> predicates;
    for (;;) {
      TREX_ASSIGN_OR_RETURN(Predicate p, ParsePredicate());
      predicates.push_back(std::move(p));
      SkipSpace();
      if (TryConsume("&&") || TryConsume("&") || TryConsumeWord("and") ||
          TryConsume("∧")) {
        continue;
      }
      break;
    }
    TREX_RETURN_NOT_OK(Expect(")"));
    SkipSpace();
    if (!AtEnd()) {
      return Err("unexpected trailing input");
    }
    const int arity = max_tuple_ >= 1 ? 2 : 1;
    return DenialConstraint::Make(name_, arity, std::move(predicates));
  }

 private:
  Status Err(const std::string& message) const {
    return Status::ParseError(message + " at offset " +
                              std::to_string(pos_) + " in DC '" +
                              std::string(text_) + "'");
  }

  bool AtEnd() const { return pos_ >= text_.size(); }

  void SkipSpace() {
    while (!AtEnd() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool TryConsume(std::string_view token) {
    SkipSpace();
    if (text_.substr(pos_).starts_with(token)) {
      pos_ += token.size();
      return true;
    }
    return false;
  }

  /// Consumes `word` only when followed by a non-identifier character
  /// (case-insensitive), so "and" does not eat the prefix of "android".
  bool TryConsumeWord(std::string_view word) {
    SkipSpace();
    if (pos_ + word.size() > text_.size()) return false;
    for (std::size_t i = 0; i < word.size(); ++i) {
      if (std::tolower(static_cast<unsigned char>(text_[pos_ + i])) !=
          std::tolower(static_cast<unsigned char>(word[i]))) {
        return false;
      }
    }
    const std::size_t after = pos_ + word.size();
    if (after < text_.size()) {
      const char c = text_[after];
      if (std::isalnum(static_cast<unsigned char>(c)) || c == '_') {
        return false;
      }
    }
    pos_ += word.size();
    return true;
  }

  Status Expect(std::string_view token) {
    if (!TryConsume(token)) {
      return Err("expected '" + std::string(token) + "'");
    }
    return Status::Ok();
  }

  Status MaybeParseNamePrefix() {
    // Lookahead: identifier followed by ':' (but not "::" or a tuple ref).
    const std::size_t saved = pos_;
    std::string ident = ConsumeIdentifier();
    SkipSpace();
    if (!ident.empty() && !AtEnd() && text_[pos_] == ':') {
      ++pos_;
      name_ = ident;
      return Status::Ok();
    }
    pos_ = saved;
    return Status::Ok();
  }

  Status MaybeParseQuantifier() {
    SkipSpace();
    if (TryConsumeWord("forall") || TryConsume("∀")) {
      // Consume the variable list up to the dot.
      for (;;) {
        SkipSpace();
        std::string var = ConsumeIdentifier();
        if (var.empty()) return Err("expected tuple variable after ∀");
        SkipSpace();
        if (TryConsume(",")) continue;
        break;
      }
      TREX_RETURN_NOT_OK(Expect("."));
    }
    return Status::Ok();
  }

  Status ExpectNegation() {
    SkipSpace();
    if (TryConsumeWord("not") || TryConsume("¬") || TryConsume("!")) {
      return Status::Ok();
    }
    return Err("expected negation ('!', 'not', or '¬')");
  }

  std::string ConsumeIdentifier() {
    SkipSpace();
    std::string out;
    while (!AtEnd()) {
      const char c = text_[pos_];
      if (std::isalnum(static_cast<unsigned char>(c)) || c == '_') {
        out.push_back(c);
        ++pos_;
      } else {
        break;
      }
    }
    return out;
  }

  Result<Operand> ParseOperand() {
    SkipSpace();
    if (AtEnd()) return Err("expected operand");
    const char c = text_[pos_];
    // Quoted string constant.
    if (c == '\'' || c == '"') {
      const char quote = c;
      ++pos_;
      std::string value;
      while (!AtEnd() && text_[pos_] != quote) {
        value.push_back(text_[pos_]);
        ++pos_;
      }
      if (AtEnd()) return Err("unterminated string constant");
      ++pos_;  // closing quote
      return Operand::Constant(Value(std::move(value)));
    }
    // Numeric constant.
    if (std::isdigit(static_cast<unsigned char>(c)) || c == '-' ||
        c == '+') {
      std::size_t end = pos_ + 1;
      while (end < text_.size() &&
             (std::isdigit(static_cast<unsigned char>(text_[end])) ||
              text_[end] == '.' || text_[end] == 'e' || text_[end] == 'E' ||
              ((text_[end] == '-' || text_[end] == '+') &&
               (text_[end - 1] == 'e' || text_[end - 1] == 'E')))) {
        ++end;
      }
      const std::string_view literal = text_.substr(pos_, end - pos_);
      pos_ = end;
      if (LooksLikeInt(literal)) {
        TREX_ASSIGN_OR_RETURN(std::int64_t v, ParseInt64(literal));
        return Operand::Constant(Value(v));
      }
      TREX_ASSIGN_OR_RETURN(double v, ParseDouble(literal));
      return Operand::Constant(Value(v));
    }
    // Tuple reference: t<k>.Attr or t<k>[Attr].
    std::string ident = ConsumeIdentifier();
    if (ident.empty()) return Err("expected operand");
    if (ident.size() >= 2 && (ident[0] == 't' || ident[0] == 'T')) {
      const std::string index_part = ident.substr(1);
      if (LooksLikeInt(index_part)) {
        auto parsed = ParseInt64(index_part);
        if (parsed.ok() && *parsed >= 1 && *parsed <= 2) {
          const int tuple_index = static_cast<int>(*parsed) - 1;
          max_tuple_ = std::max(max_tuple_, tuple_index);
          std::string attr;
          SkipSpace();
          if (TryConsume(".")) {
            attr = ConsumeIdentifier();
          } else if (TryConsume("[")) {
            attr = ConsumeIdentifier();
            TREX_RETURN_NOT_OK(Expect("]"));
          } else {
            return Err("expected '.' or '[' after tuple variable");
          }
          if (attr.empty()) return Err("expected attribute name");
          auto col = schema_.IndexOf(attr);
          if (!col.ok()) {
            return Err("unknown attribute '" + attr + "'");
          }
          return Operand::Cell(tuple_index, *col);
        }
      }
    }
    return Err("cannot parse operand starting with '" + ident + "'");
  }

  Result<CompareOp> ParseOp() {
    SkipSpace();
    // Longest-match first.
    if (TryConsume("==")) return CompareOp::kEq;
    if (TryConsume("!=")) return CompareOp::kNeq;
    if (TryConsume("<>")) return CompareOp::kNeq;
    if (TryConsume("≠")) return CompareOp::kNeq;
    if (TryConsume("<=")) return CompareOp::kLe;
    if (TryConsume("≤")) return CompareOp::kLe;
    if (TryConsume(">=")) return CompareOp::kGe;
    if (TryConsume("≥")) return CompareOp::kGe;
    if (TryConsume("<")) return CompareOp::kLt;
    if (TryConsume(">")) return CompareOp::kGt;
    if (TryConsume("=")) return CompareOp::kEq;
    return Err("expected comparison operator");
  }

  Result<Predicate> ParsePredicate() {
    TREX_ASSIGN_OR_RETURN(Operand lhs, ParseOperand());
    TREX_ASSIGN_OR_RETURN(CompareOp op, ParseOp());
    TREX_ASSIGN_OR_RETURN(Operand rhs, ParseOperand());
    return Predicate{std::move(lhs), op, std::move(rhs)};
  }

  std::string_view text_;
  const Schema& schema_;
  std::size_t pos_ = 0;
  std::string name_;
  int max_tuple_ = 0;
};

}  // namespace

Result<DenialConstraint> ParseDc(std::string_view text, const Schema& schema,
                                 std::string default_name) {
  Parser parser(text, schema);
  return parser.Parse(std::move(default_name));
}

Result<DcSet> ParseDcSet(std::string_view text, const Schema& schema) {
  DcSet out;
  std::size_t count = 0;
  for (const std::string& line : Split(text, '\n')) {
    const std::string trimmed = Trim(line);
    if (trimmed.empty() || trimmed[0] == '#') continue;
    ++count;
    TREX_ASSIGN_OR_RETURN(
        DenialConstraint dc,
        ParseDc(trimmed, schema, "C" + std::to_string(count)));
    out.Add(std::move(dc));
  }
  return out;
}

}  // namespace trex::dc
