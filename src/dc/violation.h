// Violation detection: which (pairs of) rows violate which constraints.
//
// A binary DC is violated by an *ordered* pair (row1, row2), row1 != row2;
// symmetric DCs (FD-like) are deduplicated to row1 < row2 by default. The
// detector uses a hash-partition fast path when the DC contains cross-tuple
// equality predicates (the common case), and a nested-loop fallback
// otherwise.

#ifndef TREX_DC_VIOLATION_H_
#define TREX_DC_VIOLATION_H_

#include <string>
#include <vector>

#include "dc/constraint.h"
#include "table/table.h"

namespace trex::dc {

/// One constraint violation.
struct Violation {
  std::size_t constraint_index = 0;
  std::size_t row1 = 0;
  std::size_t row2 = 0;  // == row1 for unary constraints

  bool operator==(const Violation& other) const {
    return constraint_index == other.constraint_index &&
           row1 == other.row1 && row2 == other.row2;
  }
  bool operator<(const Violation& other) const {
    if (constraint_index != other.constraint_index) {
      return constraint_index < other.constraint_index;
    }
    if (row1 != other.row1) return row1 < other.row1;
    return row2 < other.row2;
  }

  /// Renders e.g. "C2 violated by (t3, t5)".
  std::string ToString(const DcSet& dcs) const;
};

/// Detection options.
struct ViolationOptions {
  /// Report a symmetric DC's violation once per unordered pair
  /// (row1 < row2) instead of twice.
  bool dedupe_symmetric = true;
};

/// Computes the violations of `dcs` over `table`.
std::vector<Violation> FindViolations(const Table& table, const DcSet& dcs,
                                      const ViolationOptions& options = {});

/// Violations of one specific constraint.
std::vector<Violation> FindViolationsOf(const Table& table,
                                        const DenialConstraint& dc,
                                        std::size_t constraint_index = 0,
                                        const ViolationOptions& options = {});

/// True iff at least one violation exists (early-exit scan).
bool HasAnyViolation(const Table& table, const DcSet& dcs);

/// True iff row `row` participates in a violation of `dc` (as either
/// tuple variable).
bool RowViolates(const Table& table, const DenialConstraint& dc,
                 std::size_t row);

/// The cells implicated in a violation: the referenced columns of each
/// bound tuple.
std::vector<CellRef> ImplicatedCells(const Violation& violation,
                                     const DcSet& dcs);

/// The join-key columns of a binary DC's cross-tuple equality
/// predicates: parallel vectors of the t1-side and t2-side columns, one
/// entry per such predicate (empty when the DC has none). Both the
/// detector's hash fast path and `ConstraintRowIndex` partition rows by
/// these columns — sharing the extraction keeps them agreeing on what
/// joins.
struct CrossTupleKeyColumns {
  std::vector<std::size_t> t1_cols;
  std::vector<std::size_t> t2_cols;
};
CrossTupleKeyColumns CrossTupleEqualityColumns(const DenialConstraint& dc);

}  // namespace trex::dc

#endif  // TREX_DC_VIOLATION_H_
