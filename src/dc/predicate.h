// Predicates of denial constraints.
//
// A predicate compares two operands, each either a cell of a tuple
// variable (`t1[City]`) or a constant (`'Spain'`). Nulls model *unknown*
// values (the Shapley cell game nulls out cells absent from a coalition):
// `null = x` and `null < x` are never satisfied, `null != x` is satisfied
// for concrete `x` (required by the paper's Example 2.4 coalition
// arithmetic), and `null != null` is not satisfied.

#ifndef TREX_DC_PREDICATE_H_
#define TREX_DC_PREDICATE_H_

#include <cstdint>
#include <string>

#include "common/status.h"
#include "table/table.h"

namespace trex::dc {

/// Comparison operators of the DC language.
enum class CompareOp : std::uint8_t {
  kEq = 0,
  kNeq,
  kLt,
  kLe,
  kGt,
  kGe,
};

/// ASCII spelling used by the parser/printer ("==", "!=", "<", ...).
const char* CompareOpToString(CompareOp op);

/// Unicode spelling for pretty output ("=", "≠", ...).
const char* CompareOpToPrettyString(CompareOp op);

/// The operator with swapped operand order (e.g. `<` -> `>`).
CompareOp FlipOp(CompareOp op);

/// The logical negation (e.g. `=` -> `≠`, `<` -> `>=`).
CompareOp NegateOp(CompareOp op);

/// Applies `op` to concrete values; false when either side is null.
bool EvalOp(const Value& lhs, CompareOp op, const Value& rhs);

/// One side of a predicate: a tuple-variable attribute or a constant.
class Operand {
 public:
  /// Attribute `col` of tuple variable `tuple_index` (0 for t1, 1 for t2).
  static Operand Cell(int tuple_index, std::size_t col) {
    Operand op;
    op.is_cell_ = true;
    op.tuple_index_ = tuple_index;
    op.col_ = col;
    return op;
  }

  /// A constant value.
  static Operand Constant(Value value) {
    Operand op;
    op.is_cell_ = false;
    op.constant_ = std::move(value);
    return op;
  }

  bool is_cell() const { return is_cell_; }
  bool is_constant() const { return !is_cell_; }

  /// For cell operands: which tuple variable (0-based) / which column.
  int tuple_index() const { return tuple_index_; }
  std::size_t col() const { return col_; }

  /// For constant operands: the value.
  const Value& constant() const { return constant_; }

  /// The operand's value for the concrete row pair.
  const Value& Resolve(const Table& table, std::size_t row1,
                       std::size_t row2) const;

  bool operator==(const Operand& other) const;

  /// Structural 64-bit fingerprint, consistent with operator==. Used to
  /// key engine routing; equality of fingerprints is NOT verified, so
  /// consumers needing certainty must compare the operands too.
  std::uint64_t Fingerprint() const;

  /// Renders e.g. "t1.City" or "'Spain'" (needs the schema for names).
  std::string ToString(const Schema& schema) const;

 private:
  bool is_cell_ = false;
  int tuple_index_ = 0;
  std::size_t col_ = 0;
  Value constant_;
};

/// An atomic comparison between two operands.
struct Predicate {
  Operand lhs;
  CompareOp op = CompareOp::kEq;
  Operand rhs;

  /// Evaluates against a concrete row pair (row2 is ignored by operands
  /// that only mention t1). Null on either side => false.
  bool Eval(const Table& table, std::size_t row1, std::size_t row2) const;

  /// True iff the predicate mentions tuple variable `tuple_index`.
  bool MentionsTuple(int tuple_index) const;

  /// True iff it is `t1.A == t2.B` for some columns A, B (the hash-join
  /// fast path shape).
  bool IsCrossTupleEquality() const;

  bool operator==(const Predicate& other) const;

  /// Structural fingerprint, consistent with operator==.
  std::uint64_t Fingerprint() const;

  std::string ToString(const Schema& schema) const;
  std::string ToPrettyString(const Schema& schema) const;
};

}  // namespace trex::dc

#endif  // TREX_DC_PREDICATE_H_
