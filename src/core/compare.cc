#include "core/compare.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <set>
#include <string>
#include <vector>

namespace trex {
namespace {

/// Ranks (0-based positions) of each label in an explanation's order.
std::map<std::string, std::size_t> RankOf(const Explanation& ex) {
  std::map<std::string, std::size_t> ranks;
  for (std::size_t i = 0; i < ex.ranked.size(); ++i) {
    ranks.emplace(ex.ranked[i].label, i);
  }
  return ranks;
}

}  // namespace

Result<ExplanationComparison> CompareExplanations(const Explanation& before,
                                                  const Explanation& after,
                                                  std::size_t top_k) {
  const auto rank_before = RankOf(before);
  const auto rank_after = RankOf(after);
  std::map<std::string, double> value_before;
  for (const PlayerScore& p : before.ranked) {
    value_before[p.label] = p.shapley;
  }
  std::map<std::string, double> value_after;
  for (const PlayerScore& p : after.ranked) value_after[p.label] = p.shapley;

  std::vector<std::string> common;
  for (const auto& [label, rank] : rank_before) {
    (void)rank;
    if (rank_after.count(label) > 0) common.push_back(label);
  }
  if (common.size() < 2) {
    return Status::InvalidArgument(
        "explanations share fewer than two players");
  }

  ExplanationComparison out;
  out.common_players = common.size();

  // Kendall tau-b over the common players' (before, after) value pairs,
  // in the standard form: n0 = n(n-1)/2 total pairs, the tie terms n1 /
  // n2 count every pair tied in that variable (jointly-tied pairs count
  // in both), and concordance/discordance is decided only on pairs
  // untied in both. tau_b = (C - D) / sqrt((n0 - n1) * (n0 - n2)).
  std::size_t concordant = 0;
  std::size_t discordant = 0;
  std::size_t ties_before = 0;
  std::size_t ties_after = 0;
  for (std::size_t i = 0; i < common.size(); ++i) {
    for (std::size_t j = i + 1; j < common.size(); ++j) {
      const double db = value_before.at(common[i]) -
                        value_before.at(common[j]);
      const double da = value_after.at(common[i]) -
                        value_after.at(common[j]);
      if (db == 0) ++ties_before;
      if (da == 0) ++ties_after;
      if (db == 0 || da == 0) continue;
      if ((db > 0) == (da > 0)) {
        ++concordant;
      } else {
        ++discordant;
      }
    }
  }
  const double n = static_cast<double>(common.size());
  const double n0 = n * (n - 1.0) / 2.0;
  const double denom =
      std::sqrt((n0 - static_cast<double>(ties_before)) *
                (n0 - static_cast<double>(ties_after)));
  out.kendall_tau =
      denom == 0 ? 0.0
                 : (static_cast<double>(concordant) -
                    static_cast<double>(discordant)) /
                       denom;

  // Spearman rho over average (fractional) ranks of the common subset.
  // The closed form 1 - 6*sum(d^2)/(n(n^2-1)) is invalid under ties —
  // a stable sort would hand tied players arbitrary distinct ranks by
  // label order — so tied players share their mean rank and rho is the
  // Pearson correlation of the two rank vectors.
  auto fractional_ranks =
      [&common](const std::map<std::string, double>& values) {
        std::vector<std::string> order = common;
        std::stable_sort(order.begin(), order.end(),
                         [&values](const std::string& a,
                                   const std::string& b) {
                           return values.at(a) > values.at(b);
                         });
        std::map<std::string, double> ranks;
        std::size_t i = 0;
        while (i < order.size()) {
          std::size_t j = i;
          while (j + 1 < order.size() &&
                 values.at(order[j + 1]) == values.at(order[i])) {
            ++j;
          }
          // Positions i..j (1-based i+1..j+1) share the mean rank.
          const double mean_rank =
              static_cast<double>(i + 1 + j + 1) / 2.0;
          for (std::size_t k = i; k <= j; ++k) ranks[order[k]] = mean_rank;
          i = j + 1;
        }
        return ranks;
      };
  const auto r1 = fractional_ranks(value_before);
  const auto r2 = fractional_ranks(value_after);
  const double mean_rank = (n + 1.0) / 2.0;
  double cov = 0;
  double var1 = 0;
  double var2 = 0;
  for (const std::string& label : common) {
    const double d1 = r1.at(label) - mean_rank;
    const double d2 = r2.at(label) - mean_rank;
    cov += d1 * d2;
    var1 += d1 * d1;
    var2 += d2 * d2;
  }
  // A constant rank vector (all values tied) has no defined rank
  // correlation; report 0, matching the tau-b convention above.
  out.spearman_rho =
      (var1 == 0 || var2 == 0) ? 0.0 : cov / std::sqrt(var1 * var2);

  // Top-k Jaccard.
  const std::size_t k = std::max<std::size_t>(1, top_k);
  std::set<std::string> top_before;
  for (const PlayerScore& p : before.ranked) {
    if (top_before.size() >= k) break;
    top_before.insert(p.label);
  }
  std::set<std::string> top_after;
  for (const PlayerScore& p : after.ranked) {
    if (top_after.size() >= k) break;
    top_after.insert(p.label);
  }
  std::size_t inter = 0;
  for (const std::string& label : top_before) {
    if (top_after.count(label) > 0) ++inter;
  }
  const std::size_t uni = top_before.size() + top_after.size() - inter;
  out.topk_jaccard =
      uni == 0 ? 1.0 : static_cast<double>(inter) / static_cast<double>(uni);

  // Mean absolute Shapley shift.
  double shift = 0;
  for (const std::string& label : common) {
    shift += std::fabs(value_before.at(label) - value_after.at(label));
  }
  out.mean_abs_shift = shift / n;
  return out;
}

}  // namespace trex
