// The black-box repair games: T-REx's bridge between a `RepairAlgorithm`
// and the generic Shapley solvers.
//
// `BlackBoxRepair` wraps one *repair instance* — (Alg, C, T^d) plus any
// number of registered target cells — and exposes the paper's binary
// characteristic function per target
//
//     Alg|t[A](C', T') = 1  iff  Alg(C', T') writes the *reference* clean
//                              value T^c[t[A]] into the target cell,
//
// where T^c = Alg(C, T^d) is computed exactly once. Calls are counted,
// since each evaluation is a full repair run — the unit of cost in the
// paper's §2.3 and in bench_ablation.
//
// ## Memoization layer contract
//
// Two memo caches answer repeat evaluations: constraint subsets are
// keyed by bitmask, perturbed tables by XOR-combinable content
// fingerprint (64-bit bucket key, 128-bit verification hash; see
// `Table::Fingerprint`). One cached repair run answers the
// characteristic function for *every* registered target — this is what
// lets `Engine::ExplainBatch` share one box across a multi-target
// batch. Entries live in one of two representations:
//
//   * UNSEALED (the default): an entry retains the full repaired
//     `Table` (plus, under full-content verification, the input copy),
//     so targets registered *after* the entry was written can still
//     read their outcome from it. O(table) bytes per entry.
//   * SEALED (`SealTargets()`): once the target set is closed, an entry
//     stores only a per-target outcome bitset (1 bit per registered
//     target) — O(targets) bytes per entry; the repaired table is
//     dropped. `Engine::ExplainBatch` seals after registering a batch's
//     full target set. An `AddTarget` *after* sealing stays correct by
//     falling back to recompute-on-miss: resident entries do not cover
//     the new target, so its evaluations re-run the repair once and
//     extend the entry's bitset — results never go silently wrong, only
//     cost counters move. Sealed entries are verified by the 128-bit
//     fingerprint (there is no stored input to compare against), the
//     same trust model as `use_strong_table_hash`.
//
// ## Delta evaluation
//
// `EvalPerturbation(writes, target)` evaluates a perturbed table
// described as (dirty table, write set) without materializing it: the
// memo key comes from `Table::DeltaFingerprint` over the dirty table's
// cached base fingerprints in O(#writes), and full-content verification
// (when entries retain inputs) compares via `Table::EqualsWithWrites` —
// no copy, no allocation. Only a memo *miss* materializes the table,
// into a per-thread scratch reused across evaluations (reset from the
// dirty table by undoing the previous writes, then applying the new
// ones) instead of a fresh copy per coalition. `CellGame::Value` and
// the engine's permutation-sweep loops sit on this path; warm-cache
// evaluations make zero full-table copies
// (`num_eval_table_copies()` counts the scratch (re)initializations).
//
// `approx_memo_bytes()` estimates the resident payload of both memos
// (entries × payload estimate) so compaction wins are observable; the
// engine surfaces it through `BatchStats` and the benches' JSON lines.
//
// Thread safety: `EvalConstraintSubset` / `EvalTable` /
// `EvalPerturbation` may be called concurrently (the caches are
// mutex-guarded; concurrent misses on the same key may duplicate a
// repair run but never corrupt results). `AddTarget`, `SealTargets`,
// and `BeginRequest` must not race with evaluations.
//
// The memo's reader/writer discipline is machine-checked under Clang's
// -Wthread-safety (common/thread_annotations.h): both memo maps are
// `GUARDED_BY(CacheState::mu)` — hit scans hold it shared, inserts,
// sealing, and the sealed-entry extension path hold it exclusive
// (`EvictLruTableEntry` carries the `REQUIRES` pre-condition). The
// analysis is shallow: fields of entries *inside* the maps are past its
// horizon, which is why the in-place LRU touch under the shared lock
// goes through `std::atomic_ref` and stays TSan-covered.
//
// `ConstraintGame` (players = DCs, table fixed) and `CellGame` (players =
// cells nulled in/out, DCs fixed) adapt one target's characteristic
// function to `shap::Game`.

#ifndef TREX_CORE_REPAIR_GAME_H_
#define TREX_CORE_REPAIR_GAME_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <span>
#include <unordered_map>
#include <vector>

#include "common/cancel.h"
#include "common/hash.h"
#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "common/status.h"
#include "core/game.h"
#include "dc/constraint.h"
#include "repair/algorithm.h"
#include "table/table.h"

namespace trex {

/// Memoized multi-target evaluator of the binary repair outcome (see
/// file comment).
class BlackBoxRepair {
 public:
  /// `EvalConstraintSubset` encodes constraint subsets in a
  /// `std::uint64_t`, so constraint games support at most 64 players.
  static constexpr std::size_t kMaxMaskConstraints = 64;

  /// Runs the reference repair `Alg(dcs, dirty)` once and registers every
  /// cell of `targets` (deduplicated, order preserved) against it.
  /// `targets` may be empty; add cells later with `AddTarget`.
  [[nodiscard]] static Result<BlackBoxRepair> MakeMultiTarget(
      const repair::RepairAlgorithm* algorithm, dc::DcSet dcs, Table dirty,
      const std::vector<CellRef>& targets);

  /// Like the `Table` overload but *shares* the dirty table with the
  /// caller instead of holding its own copy — the engine hands its table
  /// over at `EnsureRepair` so only one dirty copy stays resident.
  [[nodiscard]] static Result<BlackBoxRepair> MakeMultiTarget(
      const repair::RepairAlgorithm* algorithm, dc::DcSet dcs,
      std::shared_ptr<const Table> dirty, const std::vector<CellRef>& targets);

  /// Single-target convenience (the seed API): equivalent to
  /// `MakeMultiTarget(..., {target})`.
  [[nodiscard]] static Result<BlackBoxRepair> Make(
      const repair::RepairAlgorithm* algorithm, dc::DcSet dcs, Table dirty,
      CellRef target);

  /// Registers another target cell against the cached reference repair —
  /// no additional algorithm call — and returns its index. Returns the
  /// existing index when the cell is already registered. Allowed after
  /// `SealTargets()`: resident sealed entries do not cover the new
  /// target and fall back to recompute-on-miss (see file comment).
  /// Must not race with concurrent evaluations.
  [[nodiscard]] Result<std::size_t> AddTarget(CellRef target);

  /// Index of a registered target cell, if any. O(1).
  std::optional<std::size_t> FindTarget(CellRef target) const;

  /// Seals the current target set: both memos switch to per-target
  /// outcome bitsets — resident entries are converted in place (their
  /// stored tables are dropped), and new entries are written compact.
  /// Idempotent. Must not race with evaluations (same contract as
  /// `AddTarget`).
  void SealTargets();
  bool targets_sealed() const { return sealed_; }

  const Table& dirty() const { return *dirty_; }
  const Table& reference_clean() const { return clean_; }
  const dc::DcSet& dcs() const { return dcs_; }
  const repair::RepairAlgorithm& algorithm() const { return *algorithm_; }

  std::size_t num_targets() const { return targets_.size(); }
  CellRef target(std::size_t index = 0) const;

  /// True iff the reference repair changed the given target cell.
  bool target_was_repaired(std::size_t index = 0) const;

  /// Alg|t[A] for target `target_index` with the constraint subset
  /// selected by `mask` (bit i keeps constraint i) and the unperturbed
  /// dirty table. Requires at most `kMaxMaskConstraints` constraints
  /// (fatal otherwise — callers returning `Status` validate first).
  bool EvalConstraintSubset(std::uint64_t mask,
                            std::size_t target_index = 0) const;

  /// Alg|t[A] for target `target_index` with the full constraint set and
  /// a perturbed table.
  bool EvalTable(const Table& perturbed, std::size_t target_index = 0) const;

  /// Alg|t[A] for target `target_index` with the full constraint set and
  /// the perturbed table described by (dirty table, `writes`) — without
  /// materializing it on the memo hit path (see file comment). `writes`
  /// must address pairwise-distinct, in-bounds cells; outcomes are
  /// identical to `EvalTable` on the materialized table.
  bool EvalPerturbation(std::span<const CellWrite> writes,
                        std::size_t target_index = 0) const;

  /// Like above, with the perturbed table's fingerprints already in
  /// hand — for hot loops that maintain a running fingerprint by XORing
  /// precomputed `Table::WriteDelta`s (the cell game, the engine's
  /// permutation sweeps) instead of re-hashing O(#writes) per
  /// evaluation. `fp64`/`fp128` MUST equal
  /// `dirty().DeltaFingerprint(dirty fps, writes)`: they are the memo
  /// key and, for entries without a retained input, the verification
  /// hash — an inconsistent pair could cache wrong outcomes.
  bool EvalPerturbation(std::span<const CellWrite> writes,
                        std::uint64_t fp64, const Hash128& fp128,
                        std::size_t target_index) const;

  /// The dirty table's own fingerprints — the base the running
  /// fingerprints above start from.
  void dirty_fingerprints(std::uint64_t* fp64, Hash128* fp128) const {
    *fp64 = dirty_fp64_;
    *fp128 = dirty_fp128_;
  }

  /// Total underlying algorithm invocations (cache misses), including the
  /// reference run.
  std::size_t num_algorithm_calls() const;
  /// Evaluations answered from the memo tables.
  std::size_t num_cache_hits() const;
  /// Memo hits on entries written under a different request context —
  /// the work `ExplainBatch` amortizes across targets (see
  /// `BeginRequest`).
  std::size_t num_cross_request_hits() const;

  /// Full dirty-table copies made by the evaluation paths (per-thread
  /// scratch (re)initializations on memo misses). Warm-cache
  /// evaluations make none — the copy-freedom the delta path is built
  /// for, asserted by tests.
  std::size_t num_eval_table_copies() const;

  /// Estimated resident bytes of both memos (entries × payload
  /// estimate: stored tables, outcome bitsets, entry overhead). The
  /// headline number sealing compacts; surfaced through
  /// `Engine`/`BatchStats` and the benches' JSON lines.
  std::size_t approx_memo_bytes() const;

  /// Tags subsequent cache writes with `request_id`; hits on entries
  /// written under another id count as cross-request hits. The engine
  /// calls this once per batched request. Also resets the evaluation
  /// failure channel below (`eval_error` → OK, a fresh abort source), so
  /// a retried request starts clean. Must not race with evaluations.
  void BeginRequest(std::size_t request_id) const;

  /// ## Evaluation failure channel
  ///
  /// The `shap::Game` interface the solvers consume is `double
  /// Value(coalition)` — there is no error path through a sweep. When a
  /// memo-miss repair call fails, the box instead (1) records the first
  /// failure `Status` (sticky until the next `BeginRequest`), (2) fires
  /// the abort source below so every sweep observing the token stops at
  /// its next poll, and (3) returns a dummy outcome WITHOUT writing any
  /// `CacheEntry` — a failed evaluation never poisons the memo, so the
  /// retry re-runs the identical schedule and produces bit-identical
  /// results. The engine merges `eval_abort_token()` into its cancel
  /// tokens and converts abort-driven cancellation back into
  /// `eval_error()` for the caller.
  ///
  /// Token fired when an evaluation's underlying repair call fails.
  CancelToken eval_abort_token() const;

  /// First repair failure recorded since the last `BeginRequest`; OK
  /// when every evaluation's repair call succeeded.
  [[nodiscard]] Status eval_error() const;

  /// Disables memoization (ablation experiments).
  void set_cache_enabled(bool enabled) { cache_enabled_ = enabled; }

  /// Caps the *table* memo (the large one). 0 = unbounded. When the cap
  /// is hit, the least-recently-used entry is evicted; evicted inputs
  /// are simply recomputed on the next miss, so results are unchanged —
  /// only cost counters move. The mask memo is left unbounded (at most
  /// 2^|C| entries, |C| ≤ 64 and small in practice). Must not race with
  /// evaluations.
  void set_max_memo_entries(std::size_t cap) { max_memo_entries_ = cap; }
  std::size_t max_memo_entries() const { return max_memo_entries_; }

  /// Table-memo entries evicted by the LRU cap so far.
  std::size_t num_memo_evictions() const;
  /// Table-memo entries currently resident.
  std::size_t num_table_memo_entries() const;

  /// Verifies table-memo hits by the 128-bit content fingerprint instead
  /// of retaining a full copy of every evaluated input (halves the
  /// unsealed memo's table footprint; a hit then trusts the 128-bit
  /// comparison rather than exact content equality). Off by default —
  /// full-content verification stays the paranoid baseline while
  /// entries retain inputs; sealed entries always verify by fingerprint.
  /// Must be set before the first evaluation and must not race with
  /// evaluations.
  void set_use_strong_table_hash(bool enabled) {
    use_strong_table_hash_ = enabled;
  }
  bool use_strong_table_hash() const { return use_strong_table_hash_; }

  /// Test-only: overrides the 64-bit bucket fingerprint for the table
  /// memo, so tests can force distinct tables into one bucket and
  /// exercise the collision path (full-content or 128-bit verification
  /// telling them apart). `EvalPerturbation` materializes eagerly while
  /// the hook is set (the hook needs a table). Must not race with
  /// evaluations.
  void set_table_bucket_fn_for_test(
      std::function<std::uint64_t(const Table&)> fn) {
    table_bucket_fn_ = std::move(fn);
  }

 private:
  BlackBoxRepair() = default;

  struct TargetInfo {
    CellRef cell;
    Value clean_value;
    bool was_repaired = false;
  };

  /// One memoized repair run, in one of two representations (see file
  /// comment): unsealed entries retain `repaired` (and `input` under
  /// full-content verification); sealed entries retain only `outcomes`,
  /// a bitset covering the first `covered_targets` registered targets.
  /// `fp128` always carries the 128-bit content fingerprint of the
  /// evaluated input; a bare 64-bit bucket fingerprint is never trusted
  /// alone — a collision must fall through to a fresh repair run, never
  /// return another table's outcome.
  struct CacheEntry {
    Table input;     // retained only unsealed + full-content verification
    Hash128 fp128;   // 128-bit content fingerprint of the input
    Table repaired;  // dropped once sealed
    /// Sealed representation: bit i = Alg|t_i outcome, for the first
    /// `covered_targets` targets. Targets registered after the entry
    /// was written (post-seal `AddTarget`) are not covered and
    /// recompute on evaluation.
    std::vector<std::uint64_t> outcomes;
    std::size_t covered_targets = 0;
    bool sealed = false;
    std::size_t request_id = 0;
    /// LRU clock value of the last touch (table-cache entries only);
    /// written through `std::atomic_ref` so hits under the shared lock
    /// don't race.
    std::uint64_t last_used = 0;
  };

  /// Mutable memo state, boxed so `BlackBoxRepair` stays movable despite
  /// the mutex. Lookups (the steady-state path under a warm cache) take
  /// the lock shared so sampling shards hit concurrently; only inserts
  /// take it exclusive. Counters are atomics so hits need no exclusive
  /// access. The maps are `GUARDED_BY(mu)`; entry *fields* reached
  /// through them are beyond the (shallow) analysis — in-entry
  /// mutations under the shared lock go through `std::atomic_ref`
  /// (`last_used`) and stay TSan-covered.
  struct CacheState {
    CacheState();

    SharedMutex mu;
    std::unordered_map<std::uint64_t, CacheEntry> mask_cache GUARDED_BY(mu);
    std::unordered_map<std::uint64_t, std::vector<CacheEntry>> table_cache
        GUARDED_BY(mu);
    std::atomic<std::size_t> calls{0};
    std::atomic<std::size_t> hits{0};
    std::atomic<std::size_t> cross_request_hits{0};
    std::atomic<std::size_t> current_request{0};
    /// LRU clock for the table memo; bumped on every hit and insert.
    std::atomic<std::uint64_t> tick{0};
    /// Table-memo entry count / LRU evictions (guarded by `mu` /
    /// monotonic counter readable without it).
    std::size_t table_entries GUARDED_BY(mu) = 0;
    std::atomic<std::size_t> evictions{0};
    /// Estimated resident payload of both memos (maintained under `mu`
    /// on insert/evict/seal; atomic so reads need no lock).
    std::atomic<std::size_t> approx_bytes{0};
    /// Full dirty-table copies made by the evaluation scratch.
    std::atomic<std::size_t> eval_table_copies{0};
    /// Distinguishes this box's per-thread evaluation scratch from
    /// other boxes' (globally unique, assigned at construction).
    const std::uint64_t scratch_id;
    /// Evaluation failure channel (see `eval_error()`): the first
    /// failure since `BeginRequest`, and the source its recording
    /// fires. Leaf lock: never held while calling the algorithm or
    /// while `mu` is held.
    mutable Mutex error_mu;
    Status eval_error GUARDED_BY(error_mu);
    CancelSource eval_abort GUARDED_BY(error_mu);
  };

  /// Records the first evaluation failure and fires the abort source
  /// (see `eval_error()`).
  void RecordEvalError(const Status& status) const;

  /// Drops the least-recently-used table-memo entry. Requires a
  /// non-empty table cache.
  void EvictLruTableEntry() const REQUIRES(state_->mu);

  bool Outcome(const Table& repaired, std::size_t target_index) const;

  /// Estimated resident payload of one memo entry.
  std::size_t EntryPayloadBytes(const CacheEntry& entry) const;

  /// Converts one entry to the sealed representation (outcome bitset
  /// over all currently registered targets; stored tables dropped).
  /// Requires `entry->repaired` to be populated.
  void SealEntry(CacheEntry* entry) const;

  /// Fills `entry` (already verified or fresh) from a completed repair
  /// run: sealed boxes store the outcome bitset, unsealed boxes the
  /// repaired table (and the input copy under full-content mode, taken
  /// from `input` when non-null).
  void PopulateEntry(CacheEntry* entry, const Table* input, Table repaired,
                     const Hash128& fp128) const;

  /// The per-thread scratch table holding dirty+writes, (re)initialized
  /// from the dirty table only when this thread last evaluated a
  /// different box (counted in `eval_table_copies`), otherwise reset by
  /// undoing the previous writes.
  const Table& MaterializeScratch(std::span<const CellWrite> writes) const;

  /// Shared miss path of `EvalTable`/`EvalPerturbation`: runs the
  /// repair on the materialized `perturbed` table and inserts (or
  /// extends) the memo entry under the exclusive lock.
  bool EvalTableMiss(const Table& perturbed, std::uint64_t fp64,
                     const Hash128& fp128, std::size_t target_index) const;

  /// Shared hit scan of `EvalTable`/`EvalPerturbation`: walks the
  /// `fp64` bucket under the shared lock, verifying each candidate by
  /// 128-bit fingerprint plus `verify_input` (the caller's full-content
  /// check, invoked only for entries that retain their input). Returns
  /// the hit outcome — counters bumped, LRU touched — or nullopt when
  /// the caller must run the repair (miss, cache disabled, or a sealed
  /// entry not covering `target_index`).
  template <typename VerifyInput>
  std::optional<bool> LookupTableMemo(std::uint64_t fp64,
                                      const Hash128& fp128,
                                      std::size_t target_index,
                                      VerifyInput&& verify_input) const;

  const repair::RepairAlgorithm* algorithm_ = nullptr;
  dc::DcSet dcs_;
  /// Shared with the owning engine/session (never null once constructed).
  std::shared_ptr<const Table> dirty_;
  Table clean_;
  /// The dirty table's own fingerprints: the delta-evaluation base.
  std::uint64_t dirty_fp64_ = 0;
  Hash128 dirty_fp128_;
  std::vector<TargetInfo> targets_;
  std::unordered_map<CellRef, std::size_t, CellRefHash> target_index_;
  bool cache_enabled_ = true;
  bool sealed_ = false;
  bool use_strong_table_hash_ = false;
  std::size_t max_memo_entries_ = 0;  // 0 = unbounded
  /// Test-only bucket-fingerprint override (null in production).
  std::function<std::uint64_t(const Table&)> table_bucket_fn_;
  std::unique_ptr<CacheState> state_;
};

/// Cooperative game whose players are the denial constraints (paper
/// §2.2, first adaptation). The table stays fixed at T^d; outcomes are
/// read for one registered target of the shared box.
class ConstraintGame : public shap::Game {
 public:
  explicit ConstraintGame(const BlackBoxRepair* box,
                          std::size_t target_index = 0)
      : box_(box), target_index_(target_index) {}

  std::size_t num_players() const override { return box_->dcs().size(); }
  double Value(const shap::Coalition& coalition) const override;

 private:
  const BlackBoxRepair* box_;
  std::size_t target_index_;
};

/// Cooperative game whose players are table cells (paper §2.2, second
/// adaptation): cells absent from a coalition are nulled out, the
/// constraint set stays fixed. Coalitions evaluate through
/// `EvalPerturbation` — the absent cells become a write set, no table
/// is materialized on the memo hit path.
///
/// `players` may be a subset of all cells (relevant-cell pruning); cells
/// outside the player list keep their original values — sound when the
/// excluded cells are dummy players under the algorithm's influence
/// graph.
class CellGame : public shap::Game {
 public:
  /// Precomputes each player's null-write fingerprint delta, so a
  /// coalition evaluation is one XOR per absent player — no hashing.
  CellGame(const BlackBoxRepair* box, std::vector<CellRef> players,
           std::size_t target_index = 0);

  std::size_t num_players() const override { return players_.size(); }
  double Value(const shap::Coalition& coalition) const override;

  const std::vector<CellRef>& players() const { return players_; }

 private:
  const BlackBoxRepair* box_;
  std::vector<CellRef> players_;
  std::size_t target_index_;
  /// The dirty table's fingerprints (the running fingerprint base).
  std::uint64_t base64_ = 0;
  Hash128 base128_;
  /// Per-player `WriteDelta(player, null)` — the XOR a player's absence
  /// applies to the base.
  std::vector<FingerprintDelta> null_deltas_;
};

}  // namespace trex

#endif  // TREX_CORE_REPAIR_GAME_H_
