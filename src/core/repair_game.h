// The black-box repair games: T-REx's bridge between a `RepairAlgorithm`
// and the generic Shapley solvers.
//
// `BlackBoxRepair` wraps one *repair instance* — (Alg, C, T^d) plus any
// number of registered target cells — and exposes the paper's binary
// characteristic function per target
//
//     Alg|t[A](C', T') = 1  iff  Alg(C', T') writes the *reference* clean
//                              value T^c[t[A]] into the target cell,
//
// where T^c = Alg(C, T^d) is computed exactly once. The memo caches store
// the full repaired table per evaluated input (constraint subsets by
// bitmask, perturbed tables by content fingerprint with full-content
// verification), so one cached repair run answers the characteristic
// function for *every* registered target — this is what lets
// `Engine::ExplainBatch` share one box across a multi-target batch.
// Calls are counted, since each evaluation is a full repair run — the
// unit of cost in the paper's §2.3 and in bench_ablation.
//
// Thread safety: `EvalConstraintSubset` / `EvalTable` may be called
// concurrently (the caches are mutex-guarded; concurrent misses on the
// same key may duplicate a repair run but never corrupt results).
// `AddTarget` and `BeginRequest` must not race with evaluations.
//
// `ConstraintGame` (players = DCs, table fixed) and `CellGame` (players =
// cells nulled in/out, DCs fixed) adapt one target's characteristic
// function to `shap::Game`.

#ifndef TREX_CORE_REPAIR_GAME_H_
#define TREX_CORE_REPAIR_GAME_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <shared_mutex>
#include <unordered_map>
#include <vector>

#include "common/hash.h"
#include "common/status.h"
#include "core/game.h"
#include "dc/constraint.h"
#include "repair/algorithm.h"
#include "table/table.h"

namespace trex {

/// Memoized multi-target evaluator of the binary repair outcome (see
/// file comment).
class BlackBoxRepair {
 public:
  /// `EvalConstraintSubset` encodes constraint subsets in a
  /// `std::uint64_t`, so constraint games support at most 64 players.
  static constexpr std::size_t kMaxMaskConstraints = 64;

  /// Runs the reference repair `Alg(dcs, dirty)` once and registers every
  /// cell of `targets` (deduplicated, order preserved) against it.
  /// `targets` may be empty; add cells later with `AddTarget`.
  static Result<BlackBoxRepair> MakeMultiTarget(
      const repair::RepairAlgorithm* algorithm, dc::DcSet dcs, Table dirty,
      const std::vector<CellRef>& targets);

  /// Like the `Table` overload but *shares* the dirty table with the
  /// caller instead of holding its own copy — the engine hands its table
  /// over at `EnsureRepair` so only one dirty copy stays resident.
  static Result<BlackBoxRepair> MakeMultiTarget(
      const repair::RepairAlgorithm* algorithm, dc::DcSet dcs,
      std::shared_ptr<const Table> dirty, const std::vector<CellRef>& targets);

  /// Single-target convenience (the seed API): equivalent to
  /// `MakeMultiTarget(..., {target})`.
  static Result<BlackBoxRepair> Make(
      const repair::RepairAlgorithm* algorithm, dc::DcSet dcs, Table dirty,
      CellRef target);

  /// Registers another target cell against the cached reference repair —
  /// no additional algorithm call — and returns its index. Returns the
  /// existing index when the cell is already registered. Must not race
  /// with concurrent evaluations.
  Result<std::size_t> AddTarget(CellRef target);

  /// Index of a registered target cell, if any.
  std::optional<std::size_t> FindTarget(CellRef target) const;

  const Table& dirty() const { return *dirty_; }
  const Table& reference_clean() const { return clean_; }
  const dc::DcSet& dcs() const { return dcs_; }
  const repair::RepairAlgorithm& algorithm() const { return *algorithm_; }

  std::size_t num_targets() const { return targets_.size(); }
  CellRef target(std::size_t index = 0) const;

  /// True iff the reference repair changed the given target cell.
  bool target_was_repaired(std::size_t index = 0) const;

  /// Alg|t[A] for target `target_index` with the constraint subset
  /// selected by `mask` (bit i keeps constraint i) and the unperturbed
  /// dirty table. Requires at most `kMaxMaskConstraints` constraints
  /// (fatal otherwise — callers returning `Status` validate first).
  bool EvalConstraintSubset(std::uint64_t mask,
                            std::size_t target_index = 0) const;

  /// Alg|t[A] for target `target_index` with the full constraint set and
  /// a perturbed table.
  bool EvalTable(const Table& perturbed, std::size_t target_index = 0) const;

  /// Total underlying algorithm invocations (cache misses), including the
  /// reference run.
  std::size_t num_algorithm_calls() const;
  /// Evaluations answered from the memo tables.
  std::size_t num_cache_hits() const;
  /// Memo hits on entries written under a different request context —
  /// the work `ExplainBatch` amortizes across targets (see
  /// `BeginRequest`).
  std::size_t num_cross_request_hits() const;

  /// Tags subsequent cache writes with `request_id`; hits on entries
  /// written under another id count as cross-request hits. The engine
  /// calls this once per batched request. Must not race with
  /// evaluations.
  void BeginRequest(std::size_t request_id) const;

  /// Disables memoization (ablation experiments).
  void set_cache_enabled(bool enabled) { cache_enabled_ = enabled; }

  /// Caps the *table* memo (the unbounded one: each entry holds two full
  /// tables). 0 = unbounded. When the cap is hit, the least-recently-used
  /// entry is evicted; evicted inputs are simply recomputed on the next
  /// miss, so results are unchanged — only cost counters move. The mask
  /// memo is left unbounded (at most 2^|C| entries, |C| ≤ 64 and small
  /// in practice). Must not race with evaluations.
  void set_max_memo_entries(std::size_t cap) { max_memo_entries_ = cap; }
  std::size_t max_memo_entries() const { return max_memo_entries_; }

  /// Table-memo entries evicted by the LRU cap so far.
  std::size_t num_memo_evictions() const;
  /// Table-memo entries currently resident.
  std::size_t num_table_memo_entries() const;

  /// Verifies table-memo hits by 128-bit strong content hash instead of
  /// retaining a full copy of every evaluated input (halves the memo's
  /// table footprint; a hit then trusts the 128-bit comparison rather
  /// than exact content equality). Off by default — full-content
  /// verification stays the paranoid baseline. Must be set before the
  /// first evaluation and must not race with evaluations.
  void set_use_strong_table_hash(bool enabled) {
    use_strong_table_hash_ = enabled;
  }
  bool use_strong_table_hash() const { return use_strong_table_hash_; }

  /// Test-only: overrides the 64-bit bucket fingerprint for the table
  /// memo, so tests can force distinct tables into one bucket and
  /// exercise the collision path (full-content or strong-hash
  /// verification telling them apart). Must not race with evaluations.
  void set_table_bucket_fn_for_test(
      std::function<std::uint64_t(const Table&)> fn) {
    table_bucket_fn_ = std::move(fn);
  }

 private:
  BlackBoxRepair() = default;

  struct TargetInfo {
    CellRef cell;
    Value clean_value;
    bool was_repaired = false;
  };

  /// One memoized repair run. `input` is kept alongside the table-cache
  /// fingerprint so hits are verified against the full table content —
  /// a bare 64-bit fingerprint would return silently wrong answers on
  /// collision. Under `use_strong_table_hash` the input copy is dropped
  /// and `strong_hash` (128-bit) carries the verification instead.
  struct CacheEntry {
    Table input;     // empty for mask-cache and strong-hash entries
    Hash128 strong_hash;  // set only under `use_strong_table_hash`
    Table repaired;
    std::size_t request_id = 0;
    /// LRU clock value of the last touch (table-cache entries only);
    /// written through `std::atomic_ref` so hits under the shared lock
    /// don't race.
    std::uint64_t last_used = 0;
  };

  /// Mutable memo state, boxed so `BlackBoxRepair` stays movable despite
  /// the mutex. Lookups (the steady-state path under a warm cache) take
  /// the lock shared so sampling shards hit concurrently; only inserts
  /// take it exclusive. Counters are atomics so hits need no exclusive
  /// access.
  struct CacheState {
    std::shared_mutex mu;
    std::unordered_map<std::uint64_t, CacheEntry> mask_cache;
    std::unordered_map<std::uint64_t, std::vector<CacheEntry>> table_cache;
    std::atomic<std::size_t> calls{0};
    std::atomic<std::size_t> hits{0};
    std::atomic<std::size_t> cross_request_hits{0};
    std::atomic<std::size_t> current_request{0};
    /// LRU clock for the table memo; bumped on every hit and insert.
    std::atomic<std::uint64_t> tick{0};
    /// Table-memo entry count / LRU evictions (guarded by `mu` /
    /// monotonic counter readable without it).
    std::size_t table_entries = 0;
    std::atomic<std::size_t> evictions{0};
  };

  /// Drops the least-recently-used table-memo entry. Requires `mu` held
  /// exclusively and a non-empty table cache.
  void EvictLruTableEntry() const;

  bool Outcome(const Table& repaired, std::size_t target_index) const;

  const repair::RepairAlgorithm* algorithm_ = nullptr;
  dc::DcSet dcs_;
  /// Shared with the owning engine/session (never null once constructed).
  std::shared_ptr<const Table> dirty_;
  Table clean_;
  std::vector<TargetInfo> targets_;
  bool cache_enabled_ = true;
  bool use_strong_table_hash_ = false;
  std::size_t max_memo_entries_ = 0;  // 0 = unbounded
  /// Test-only bucket-fingerprint override (null in production).
  std::function<std::uint64_t(const Table&)> table_bucket_fn_;
  std::unique_ptr<CacheState> state_;
};

/// Cooperative game whose players are the denial constraints (paper
/// §2.2, first adaptation). The table stays fixed at T^d; outcomes are
/// read for one registered target of the shared box.
class ConstraintGame : public shap::Game {
 public:
  explicit ConstraintGame(const BlackBoxRepair* box,
                          std::size_t target_index = 0)
      : box_(box), target_index_(target_index) {}

  std::size_t num_players() const override { return box_->dcs().size(); }
  double Value(const shap::Coalition& coalition) const override;

 private:
  const BlackBoxRepair* box_;
  std::size_t target_index_;
};

/// Cooperative game whose players are table cells (paper §2.2, second
/// adaptation): cells absent from a coalition are nulled out, the
/// constraint set stays fixed.
///
/// `players` may be a subset of all cells (relevant-cell pruning); cells
/// outside the player list keep their original values — sound when the
/// excluded cells are dummy players under the algorithm's influence
/// graph.
class CellGame : public shap::Game {
 public:
  CellGame(const BlackBoxRepair* box, std::vector<CellRef> players,
           std::size_t target_index = 0)
      : box_(box),
        players_(std::move(players)),
        target_index_(target_index) {}

  std::size_t num_players() const override { return players_.size(); }
  double Value(const shap::Coalition& coalition) const override;

  const std::vector<CellRef>& players() const { return players_; }

 private:
  const BlackBoxRepair* box_;
  std::vector<CellRef> players_;
  std::size_t target_index_;
};

}  // namespace trex

#endif  // TREX_CORE_REPAIR_GAME_H_
