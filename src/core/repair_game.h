// The black-box repair games: T-REx's bridge between a `RepairAlgorithm`
// and the generic Shapley solvers.
//
// `BlackBoxRepair` wraps one explanation instance — (Alg, C, T^d, target
// cell t^d[A]) — and exposes the paper's binary characteristic function
//
//     Alg|t[A](C', T') = 1  iff  Alg(C', T') writes the *reference* clean
//                              value T^c[t[A]] into the target cell,
//
// where T^c = Alg(C, T^d) is computed once up front. Calls are memoized
// (constraint subsets by bitmask, perturbed tables by content
// fingerprint) and counted, since each evaluation is a full repair run —
// the unit of cost in the paper's §2.3 and in bench_ablation.
//
// `ConstraintGame` (players = DCs, table fixed) and `CellGame` (players =
// cells nulled in/out, DCs fixed) adapt it to `shap::Game`.

#ifndef TREX_CORE_REPAIR_GAME_H_
#define TREX_CORE_REPAIR_GAME_H_

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "core/game.h"
#include "dc/constraint.h"
#include "repair/algorithm.h"
#include "table/table.h"

namespace trex {

/// Memoized evaluator of the binary repair outcome (see file comment).
class BlackBoxRepair {
 public:
  /// Runs the reference repair `Alg(dcs, dirty)` and captures the clean
  /// value of `target`. Fails when the algorithm fails. Note: the target
  /// need not have changed — `target_was_repaired()` reports that, and
  /// explainers reject unrepaired targets.
  static Result<BlackBoxRepair> Make(
      const repair::RepairAlgorithm* algorithm, dc::DcSet dcs, Table dirty,
      CellRef target);

  const Table& dirty() const { return dirty_; }
  const Table& reference_clean() const { return clean_; }
  const dc::DcSet& dcs() const { return dcs_; }
  const repair::RepairAlgorithm& algorithm() const { return *algorithm_; }
  CellRef target() const { return target_; }

  /// True iff the reference repair changed the target cell.
  bool target_was_repaired() const { return target_was_repaired_; }

  /// Alg|t[A] with the constraint subset selected by `mask` (bit i keeps
  /// constraint i) and the unperturbed dirty table.
  bool EvalConstraintSubset(std::uint64_t mask) const;

  /// Alg|t[A] with the full constraint set and a perturbed table.
  bool EvalTable(const Table& perturbed) const;

  /// Total underlying algorithm invocations (cache misses), including the
  /// reference run.
  std::size_t num_algorithm_calls() const { return calls_; }
  /// Evaluations answered from the memo tables.
  std::size_t num_cache_hits() const { return hits_; }

  /// Disables memoization (ablation experiments).
  void set_cache_enabled(bool enabled) { cache_enabled_ = enabled; }

 private:
  BlackBoxRepair() = default;

  bool Outcome(const Table& repaired) const;

  const repair::RepairAlgorithm* algorithm_ = nullptr;
  dc::DcSet dcs_;
  Table dirty_;
  Table clean_;
  CellRef target_;
  Value clean_target_value_;
  bool target_was_repaired_ = false;
  bool cache_enabled_ = true;

  mutable std::unordered_map<std::uint64_t, bool> mask_cache_;
  mutable std::unordered_map<std::uint64_t, bool> table_cache_;
  mutable std::size_t calls_ = 0;
  mutable std::size_t hits_ = 0;
};

/// Cooperative game whose players are the denial constraints (paper
/// §2.2, first adaptation). The table stays fixed at T^d.
class ConstraintGame : public shap::Game {
 public:
  explicit ConstraintGame(const BlackBoxRepair* box) : box_(box) {}

  std::size_t num_players() const override { return box_->dcs().size(); }
  double Value(const shap::Coalition& coalition) const override;

 private:
  const BlackBoxRepair* box_;
};

/// Cooperative game whose players are table cells (paper §2.2, second
/// adaptation): cells absent from a coalition are nulled out, the
/// constraint set stays fixed.
///
/// `players` may be a subset of all cells (relevant-cell pruning); cells
/// outside the player list keep their original values — sound when the
/// excluded cells are dummy players under the algorithm's influence
/// graph.
class CellGame : public shap::Game {
 public:
  CellGame(const BlackBoxRepair* box, std::vector<CellRef> players)
      : box_(box), players_(std::move(players)) {}

  std::size_t num_players() const override { return players_.size(); }
  double Value(const shap::Coalition& coalition) const override;

  const std::vector<CellRef>& players() const { return players_; }

 private:
  const BlackBoxRepair* box_;
  std::vector<CellRef> players_;
};

}  // namespace trex

#endif  // TREX_CORE_REPAIR_GAME_H_
