#include "core/shapley_exact.h"

#include <algorithm>
#include <bit>
#include <numeric>

#include "common/logging.h"

namespace trex::shap {

Result<std::vector<double>> ComputeExactShapley(
    const Game& game, const ExactShapleyOptions& options) {
  const std::size_t n = game.num_players();
  if (n == 0) return std::vector<double>{};
  if (n > options.max_players) {
    return Status::InvalidArgument(
        "exact Shapley over " + std::to_string(n) +
        " players exceeds the configured cap of " +
        std::to_string(options.max_players) +
        " (use the sampling estimator instead)");
  }

  // Materialize v over all coalitions.
  const std::size_t num_masks = std::size_t{1} << n;
  std::vector<double> v(num_masks);
  Coalition coalition(n, false);
  for (std::size_t mask = 0; mask < num_masks; ++mask) {
    if (options.cancel.cancelled()) {
      return Status::Cancelled("exact Shapley computation cancelled");
    }
    for (std::size_t i = 0; i < n; ++i) {
      coalition[i] = (mask >> i) & 1;
    }
    v[mask] = game.Value(coalition);
  }

  // Positional weights w[s] = s! (n-s-1)! / n! = 1 / (n * C(n-1, s)).
  std::vector<double> binom(n, 1.0);  // C(n-1, s)
  for (std::size_t s = 1; s < n; ++s) {
    binom[s] = binom[s - 1] * static_cast<double>(n - s) /
               static_cast<double>(s);
  }
  std::vector<double> weight(n);
  for (std::size_t s = 0; s < n; ++s) {
    weight[s] = 1.0 / (static_cast<double>(n) * binom[s]);
  }

  std::vector<double> shapley(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t bit = std::size_t{1} << i;
    for (std::size_t mask = 0; mask < num_masks; ++mask) {
      if (mask & bit) continue;
      const std::size_t s = static_cast<std::size_t>(std::popcount(mask));
      shapley[i] += weight[s] * (v[mask | bit] - v[mask]);
    }
  }
  return shapley;
}

Result<std::vector<double>> ComputeExactBanzhaf(
    const Game& game, const ExactShapleyOptions& options) {
  const std::size_t n = game.num_players();
  if (n == 0) return std::vector<double>{};
  if (n > options.max_players) {
    return Status::InvalidArgument(
        "exact Banzhaf over " + std::to_string(n) +
        " players exceeds the configured cap of " +
        std::to_string(options.max_players));
  }
  const std::size_t num_masks = std::size_t{1} << n;
  std::vector<double> v(num_masks);
  Coalition coalition(n, false);
  for (std::size_t mask = 0; mask < num_masks; ++mask) {
    if (options.cancel.cancelled()) {
      return Status::Cancelled("exact Banzhaf computation cancelled");
    }
    for (std::size_t i = 0; i < n; ++i) coalition[i] = (mask >> i) & 1;
    v[mask] = game.Value(coalition);
  }
  const double weight = 1.0 / static_cast<double>(num_masks / 2);
  std::vector<double> banzhaf(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t bit = std::size_t{1} << i;
    for (std::size_t mask = 0; mask < num_masks; ++mask) {
      if (mask & bit) continue;
      banzhaf[i] += weight * (v[mask | bit] - v[mask]);
    }
  }
  return banzhaf;
}

Result<std::vector<double>> ComputeExactShapleyByPermutations(
    const Game& game) {
  const std::size_t n = game.num_players();
  if (n == 0) return std::vector<double>{};
  if (n > 10) {
    return Status::InvalidArgument(
        "permutation enumeration over " + std::to_string(n) +
        " players is infeasible (n! evaluations); use "
        "ComputeExactShapley");
  }
  std::vector<std::size_t> perm(n);
  std::iota(perm.begin(), perm.end(), std::size_t{0});

  std::vector<double> shapley(n, 0.0);
  std::size_t num_perms = 0;
  do {
    Coalition coalition(n, false);
    double prev = game.Value(coalition);
    for (std::size_t pos = 0; pos < n; ++pos) {
      coalition[perm[pos]] = true;
      const double curr = game.Value(coalition);
      shapley[perm[pos]] += curr - prev;
      prev = curr;
    }
    ++num_perms;
  } while (std::next_permutation(perm.begin(), perm.end()));

  for (double& phi : shapley) phi /= static_cast<double>(num_perms);
  return shapley;
}

}  // namespace trex::shap
