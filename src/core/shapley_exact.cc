#include "core/shapley_exact.h"

#include <algorithm>
#include <bit>
#include <numeric>

#include "common/logging.h"
#include "core/subset_walk.h"

namespace trex::shap {
namespace {

/// Runs `fn(player)` for every player, across `options`' threads. Each
/// player's accumulation is an independent serial loop writing a
/// disjoint output slot, so results are bit-identical for any thread
/// count.
void ForEachPlayer(std::size_t n, const ExactShapleyOptions& options,
                   const std::function<void(std::size_t)>& fn) {
  ThreadPool::RunSharded(options.pool, options.num_threads, n, fn);
}

SubsetWalkOptions WalkOptions(const ExactShapleyOptions& options) {
  SubsetWalkOptions walk;
  walk.max_players = options.max_players;
  walk.num_threads = options.num_threads;
  walk.pool = options.pool;
  walk.cancel = options.cancel;
  return walk;
}

}  // namespace

Result<std::vector<double>> ComputeExactShapley(
    const Game& game, const ExactShapleyOptions& options) {
  const std::size_t n = game.num_players();
  if (n == 0) return std::vector<double>{};

  // Materialize v over all coalitions (sharded; see core/subset_walk.h).
  SubsetWalkOptions walk = WalkOptions(options);
  walk.over_cap_hint = "(use the sampling estimator instead)";
  TREX_ASSIGN_OR_RETURN(const std::vector<double> v,
                        MaterializeCoalitionValues(game, walk,
                                                   "exact Shapley"));

  // Positional weights w[s] = s! (n-s-1)! / n! = 1 / (n * C(n-1, s)).
  std::vector<double> binom(n, 1.0);  // C(n-1, s)
  for (std::size_t s = 1; s < n; ++s) {
    binom[s] = binom[s - 1] * static_cast<double>(n - s) /
               static_cast<double>(s);
  }
  std::vector<double> weight(n);
  for (std::size_t s = 0; s < n; ++s) {
    weight[s] = 1.0 / (static_cast<double>(n) * binom[s]);
  }

  const std::size_t num_masks = v.size();
  std::vector<double> shapley(n, 0.0);
  ForEachPlayer(n, options, [&](std::size_t i) {
    const std::size_t bit = std::size_t{1} << i;
    double sum = 0.0;
    for (std::size_t mask = 0; mask < num_masks; ++mask) {
      if (mask & bit) continue;
      const std::size_t s = static_cast<std::size_t>(std::popcount(mask));
      sum += weight[s] * (v[mask | bit] - v[mask]);
    }
    shapley[i] = sum;
  });
  return shapley;
}

Result<std::vector<double>> ComputeExactBanzhaf(
    const Game& game, const ExactShapleyOptions& options) {
  const std::size_t n = game.num_players();
  if (n == 0) return std::vector<double>{};
  TREX_ASSIGN_OR_RETURN(
      const std::vector<double> v,
      MaterializeCoalitionValues(game, WalkOptions(options), "exact Banzhaf"));
  const std::size_t num_masks = v.size();
  const double weight = 1.0 / static_cast<double>(num_masks / 2);
  std::vector<double> banzhaf(n, 0.0);
  ForEachPlayer(n, options, [&](std::size_t i) {
    const std::size_t bit = std::size_t{1} << i;
    double sum = 0.0;
    for (std::size_t mask = 0; mask < num_masks; ++mask) {
      if (mask & bit) continue;
      sum += weight * (v[mask | bit] - v[mask]);
    }
    banzhaf[i] = sum;
  });
  return banzhaf;
}

Result<std::vector<double>> ComputeExactShapleyByPermutations(
    const Game& game) {
  const std::size_t n = game.num_players();
  if (n == 0) return std::vector<double>{};
  if (n > 10) {
    return Status::InvalidArgument(
        "permutation enumeration over " + std::to_string(n) +
        " players is infeasible (n! evaluations); use "
        "ComputeExactShapley");
  }
  std::vector<std::size_t> perm(n);
  std::iota(perm.begin(), perm.end(), std::size_t{0});

  std::vector<double> shapley(n, 0.0);
  std::size_t num_perms = 0;
  do {
    Coalition coalition(n, false);
    double prev = game.Value(coalition);
    // This API takes no CancelToken by design:
    // trex-check-ok(cancel-poll): the n <= 10 guard caps the enumeration
    for (std::size_t pos = 0; pos < n; ++pos) {
      coalition[perm[pos]] = true;
      const double curr = game.Value(coalition);
      shapley[perm[pos]] += curr - prev;
      prev = curr;
    }
    ++num_perms;
  } while (std::next_permutation(perm.begin(), perm.end()));

  for (double& phi : shapley) phi /= static_cast<double>(num_perms);
  return shapley;
}

}  // namespace trex::shap
