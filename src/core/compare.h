// Comparing explanations across iterations of the repair-explain-edit
// loop (paper §3/§4: the user edits DCs or data and re-explains —
// these metrics quantify how much the story changed).

#ifndef TREX_CORE_COMPARE_H_
#define TREX_CORE_COMPARE_H_

#include <cstddef>

#include "common/status.h"
#include "core/explainer.h"

namespace trex {

/// Similarity/stability metrics between two explanations of (possibly)
/// the same target.
struct ExplanationComparison {
  /// Kendall tau-b rank correlation over the common players
  /// (1 = identical order, -1 = reversed, 0 = unrelated), with the
  /// standard tie correction: n0 = n(n-1)/2, jointly-tied pairs counted
  /// in both tie terms. 0 when either side is entirely tied.
  double kendall_tau = 0.0;
  /// Spearman rank correlation over the common players, computed as the
  /// Pearson correlation of average (fractional) ranks so tied Shapley
  /// values share one rank. 0 when either side is entirely tied.
  double spearman_rho = 0.0;
  /// Jaccard similarity of the top-k player sets.
  double topk_jaccard = 0.0;
  /// Mean |Δ shapley| over the common players.
  double mean_abs_shift = 0.0;
  /// Players present in both explanations.
  std::size_t common_players = 0;
};

/// Compares two explanations by player label. `top_k` bounds the
/// top-k Jaccard term (default 3). Fails when the explanations share
/// fewer than two players.
[[nodiscard]] Result<ExplanationComparison> CompareExplanations(
    const Explanation& before, const Explanation& after,
    std::size_t top_k = 3);

}  // namespace trex

#endif  // TREX_CORE_COMPARE_H_
