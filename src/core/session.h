// `TRexSession`: the end-to-end T-REx workflow as a library object.
//
// The paper's system (§3, Figures 3–4) walks users through three screens:
// input (table + DCs into the repairer), repair (highlighted diff), and
// explanation (DCs / cells ranked by Shapley value), then lets them edit
// the DCs or the data and iterate. This class is that loop without the
// browser:
//
//   TRexSession session(algorithm, dcs, dirty_table);
//   session.Repair();                         // screen 2
//   auto ex = session.ExplainConstraints(cell);  // screen 3
//   session.RemoveConstraint("C3");           // act on the explanation
//   session.Repair();                         // iterate
//
// The session is an adapter over `trex::Engine`: `Repair()` builds one
// engine whose reference repair backs both the diff screen and every
// explanation, and successive explanation calls share the engine's memo
// caches — explaining a second cell of the same repair reuses the
// evaluations the first one paid for. Edits invalidate the engine;
// explanation calls then require a fresh `Repair()`.
//
// Like the engine, a session serves one caller at a time: the
// explanation methods are `const` but share the engine's memo state,
// so they must not be called concurrently.

#ifndef TREX_CORE_SESSION_H_
#define TREX_CORE_SESSION_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/engine.h"
#include "core/explainer.h"
#include "dc/constraint.h"
#include "repair/algorithm.h"
#include "table/diff.h"
#include "table/table.h"

namespace trex {

/// Interactive repair-and-explain session (see file comment).
class TRexSession {
 public:
  /// The algorithm is shared (not copied); it must outlive the session.
  /// `engine_options` configures the underlying explanation engine
  /// (e.g. sampling worker threads).
  TRexSession(std::shared_ptr<const repair::RepairAlgorithm> algorithm,
              dc::DcSet dcs, Table dirty, EngineOptions engine_options = {});

  const Table& dirty() const { return dirty_; }
  const dc::DcSet& dcs() const { return dcs_; }
  const repair::RepairAlgorithm& algorithm() const { return *algorithm_; }

  /// Runs the repair algorithm; afterwards `clean()` and
  /// `repaired_cells()` are available.
  Status Repair();

  /// True once `Repair()` has run (and no edit invalidated it).
  bool has_repair() const { return engine_ != nullptr; }

  /// The repaired table; requires `has_repair()`.
  const Table& clean() const;

  /// The diff dirty -> clean; requires `has_repair()`.
  const std::vector<RepairedCell>& repaired_cells() const;

  /// The engine serving this session's explanations; requires
  /// `has_repair()`. Exposed for batched queries (`ExplainBatch`) and
  /// cost accounting.
  Engine& engine();

  /// Resolves "tk[Attr]"-style coordinates, e.g. `CellAt(4, "Country")`
  /// (row is 0-based).
  Result<CellRef> CellAt(std::size_t row, const std::string& attribute) const;

  /// Ranks the DCs by contribution to the repair of `target`.
  Result<Explanation> ExplainConstraints(
      CellRef target, const ConstraintExplainerOptions& options = {}) const;

  /// Pairwise constraint interactions for the repair of `target`
  /// (complements / substitutes; see core/interaction.h).
  Result<std::vector<InteractionScore>> ExplainConstraintInteractions(
      CellRef target, const ConstraintExplainerOptions& options = {}) const;

  /// Ranks the cells of T^d by contribution to the repair of `target`.
  Result<Explanation> ExplainCells(
      CellRef target, const CellExplainerOptions& options = {}) const;

  /// Estimates a single cell's contribution (Example 2.5).
  Result<PlayerScore> ExplainSingleCell(
      CellRef target, CellRef player_cell,
      const CellExplainerOptions& options = {}) const;

  /// Serves a heterogeneous batch of explanation requests against the
  /// session's repair, sharing one reference run and the memo caches.
  Result<BatchResult> ExplainBatch(
      const std::vector<ExplainRequest>& requests) const;

  // ---- Iteration: edits invalidate the cached repair. ----

  /// Overwrites a cell of the dirty table.
  Status SetDirtyCell(CellRef cell, Value value);

  /// Removes the constraint with the given name.
  Status RemoveConstraint(const std::string& name);

  /// Adds a constraint (name must be unused).
  Status AddConstraint(dc::DenialConstraint constraint);

  /// Replaces the same-named constraint.
  Status ReplaceConstraint(dc::DenialConstraint constraint);

 private:
  Status RequireRepair() const;
  void InvalidateRepair();

  std::shared_ptr<const repair::RepairAlgorithm> algorithm_;
  dc::DcSet dcs_;
  Table dirty_;
  EngineOptions engine_options_;
  std::unique_ptr<Engine> engine_;
  std::vector<RepairedCell> repaired_cells_;
};

}  // namespace trex

#endif  // TREX_CORE_SESSION_H_
