// `trex::Engine`: the single-instance COMPUTE layer of the explanation
// stack — one engine owns one repair instance (Alg, C, T^d).
//
// The stack splits into two layers with distinct jobs and contracts:
//
//   * `Engine` (this file) is the synchronous compute unit. It owns one
//     shared `BlackBoxRepair` — the reference repair runs exactly once
//     per (algorithm, DcSet, Table) — and serves every explanation kind
//     through one request/response surface:
//
//       Engine engine(algorithm, dcs, dirty);
//       ExplainRequest req;
//       req.target = cell;
//       req.kind = ExplainKind::kConstraints;
//       auto result = engine.Explain(req);                 // one query
//       auto batch  = engine.ExplainBatch({r1, r2, r3});   // amortized
//
//   * `serving::ExplainService` (src/serving/service.h) is the ASYNC
//     front-end a deployment talks to. Its request path is a three-stage
//     admit → coalesce → execute scheduler: ADMIT bounds the queue and
//     load-sheds the lowest-priority job (`Status::Rejected`) when it is
//     full; COALESCE gathers queued same-engine jobs at dequeue and
//     lowers them into one `ExplainBatch` call here, fanning per-target
//     results back to each job's ticket; EXECUTE runs under per-job
//     cancellation tokens armed by caller cancels *and* wall-clock
//     deadlines, which the sweep/enumeration loops below poll mid-run.
//     Underneath, a `serving::EngineRouter` keys a bounded LRU pool of
//     engines by (algorithm id, DcSet fingerprint, table fingerprint),
//     so each engine keeps the amortization story below while the
//     service scales across tables. `TRexSession` adapts the service
//     back into the paper's interactive single-table loop.
//
// Amortization: all targets in a batch (and across sequential `Explain`
// calls on the same engine) share the memo caches — a constraint-subset
// repair computed for one target answers the characteristic function
// for every other target, so a batch of constraint explanations over k
// targets costs one sweep of the 2^|C| subsets instead of k sweeps.
// `BatchStats::cross_request_hits` reports exactly how much work was
// amortized; `EngineOptions::max_memo_entries` bounds the table memo
// (full repaired tables) with LRU eviction for large workloads.
// Permutation sweeps shard across a small thread pool with
// deterministic per-shard seeds (see shapley_sampling.h), so results
// are bit-identical for every `EngineOptions::num_threads`, between
// `ExplainBatch` and serial `Explain` calls, and between the service
// path and direct engine calls with the same seeds.
//
// Cancellation is per target, batch-wide, or both: each
// `ExplainRequest::cancel` is polled between black-box evaluations
// inside the sweep/enumeration loops (so one coalesced batch member can
// expire — e.g. on its own deadline — without disturbing its
// neighbors), and `ExplainBatch` additionally accepts a batch-level
// token merged into every member and checked between slots. A cancelled
// request returns `Status::Cancelled` promptly and leaves the engine
// reusable.
//
// Thread-safety contract, per layer (the synchronized layers carry
// Clang thread-safety annotations — see common/thread_annotations.h —
// so a clang build with -Wthread-safety enforces this table at compile
// time):
//   * `Engine` — one caller at a time; it holds no mutex of its own.
//     `Explain`/`ExplainBatch` mutate shared state (the target
//     registry, request ids). Parallelism lives *inside* a request via
//     `EngineOptions::num_threads`: the sweep shards fan out over
//     `common::ThreadPool`, whose queue state is GUARDED_BY its
//     internal mutex.
//   * `BlackBoxRepair` — internally synchronized for concurrent
//     evaluations (the sweep shards rely on this). The shared memo in
//     `repair::CacheState` is GUARDED_BY a `SharedMutex`: shared for
//     memo hits, exclusive for inserts, sealing, and extension.
//   * `serving::EngineRouter` / `serving::ExplainService` — fully
//     thread-safe; all guarded state is annotated, and the lock-order
//     and stats-deadlock rules are documented in their file comments.
//     The router serializes per-engine access (`EngineEntry::mu`) so
//     the engine's single-caller invariant holds under concurrent
//     traffic.
//
// `ConstraintExplainer`, `CellExplainer`, and `TRexSession` are thin
// adapters over this stack.

#ifndef TREX_CORE_ENGINE_H_
#define TREX_CORE_ENGINE_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/thread_pool.h"
#include "core/explainer.h"
#include "core/repair_game.h"
#include "dc/constraint.h"
#include "repair/algorithm.h"
#include "common/cancel.h"
#include "table/table.h"

namespace trex {

/// What kind of explanation a request asks for.
enum class ExplainKind {
  /// Rank the denial constraints by Shapley contribution (paper §2.2).
  kConstraints,
  /// Rank the table cells by Shapley contribution (paper §2.2).
  kCells,
  /// Pairwise constraint Shapley interaction indices (Example 2.3).
  kInteractions,
  /// Inclusion-minimal constraint removal sets (counterfactuals).
  kRemovalSets,
  /// Single-cell contribution estimate (Example 2.5).
  kSingleCell,
};

const char* ExplainKindToString(ExplainKind kind);

/// Anytime estimation: confidence-bounded early stopping for the
/// engine's sampled paths (kCells / kConstraints sweeps, kSingleCell).
/// When enabled, a sampled request stops at the first wave boundary
/// where every player's confidence half-width meets the target — the
/// per-kind `num_samples` becomes an upper bound, not a fixed spend —
/// and reports the sweeps consumed plus the achieved width on the
/// result. Stopping decisions are made on deterministically merged
/// statistics at shard-index-defined wave boundaries (see
/// shap::RunShardedSweeps), so estimates and the stopping point stay
/// bit-identical at every `EngineOptions::num_threads`.
struct AnytimeOptions {
  /// Stop once every player's CI half-width is at or below this value.
  /// Unset = anytime stopping disabled (fixed budget).
  std::optional<double> target_ci_half_width;
  /// Bound family: normal-theory or empirical Bernstein.
  shap::BoundKind bound = shap::BoundKind::kNormal;
  /// Normal-theory width multiplier (kNormal only).
  double z = 1.96;
  /// Per-player failure probability (kBernstein only).
  double delta = 0.05;
  /// No player counts as converged below this many samples.
  std::size_t min_samples = 16;
  /// Skip converged players' repair evaluations in later sweeps.
  bool freeze_converged = true;
  /// Stopping-check granularity in sweeps, rounded up to whole shards:
  /// a wave spans `ceil(check_interval / shard_size)` shards which run
  /// concurrently, so this also sizes the parallelism available to an
  /// anytime run. Part of the configuration — results depend on it,
  /// never on the thread count.
  std::size_t check_interval = 256;
  /// Sweep budget override for sampled paths; 0 = keep the per-kind
  /// `num_samples` budget.
  std::size_t max_sweeps = 0;

  bool enabled() const { return target_ci_half_width.has_value(); }
};

/// One explanation query: a target cell, the kind of explanation, and
/// the options for that kind (unused option groups are ignored).
struct ExplainRequest {
  /// The repaired cell to explain.
  CellRef target;
  ExplainKind kind = ExplainKind::kConstraints;
  /// Options for kConstraints / kInteractions / kRemovalSets.
  ConstraintExplainerOptions constraints;
  /// Options for kCells / kSingleCell.
  CellExplainerOptions cells;
  /// kRemovalSets: largest removal-set size searched.
  std::size_t max_removal_set_size = 3;
  /// kSingleCell: the player cell whose contribution is estimated.
  /// Required for that kind — an unset value is an error, never a
  /// silent default cell.
  std::optional<CellRef> single_cell;
  /// Anytime estimation override for this request; unset = the engine's
  /// `EngineOptions::anytime` default applies.
  std::optional<AnytimeOptions> anytime;
  /// Soft stop (see shap::StopRule::soften): once fired, a sampled path
  /// finishes its current wave and returns the partial
  /// confidence-bounded estimates with `ExplainResult::approximate` set
  /// — instead of discarding work like `cancel`. The serving layer arms
  /// this from expiring deadlines to degrade gracefully.
  CancelToken soften;
  /// Cooperative cancellation: polled between black-box evaluations in
  /// the sweep and subset-enumeration loops, so an in-flight request
  /// stops within one repair call of cancellation and returns
  /// `Status::Cancelled`. Default token = never cancelled.
  CancelToken cancel;
};

/// The engine's answer to one request. Exactly one payload field is
/// populated, per `kind`: `explanation` for kConstraints/kCells,
/// `interactions`, `removal_sets`, or `single_cell`.
struct ExplainResult {
  ExplainKind kind = ExplainKind::kConstraints;
  CellRef target;
  std::optional<Explanation> explanation;
  std::vector<InteractionScore> interactions;
  std::vector<std::vector<std::string>> removal_sets;
  std::optional<PlayerScore> single_cell;
  /// Algorithm invocations charged to this request. An `Explain` call
  /// that first builds the shared box is charged the reference run; in
  /// an `ExplainBatch` the reference run is charged to the batch
  /// (`BatchStats::reference_repairs`), not to any one request.
  std::size_t algorithm_calls = 0;
  /// Memo hits while serving this request...
  std::size_t cache_hits = 0;
  /// ...of which hits on entries another request paid for.
  std::size_t cross_request_hits = 0;
  /// Permutation sweeps consumed by a sampled path (0 for exact paths).
  std::size_t sweeps = 0;
  /// Largest per-player confidence half-width when a sampled run ended,
  /// under the effective bound family; unset for exact paths.
  std::optional<double> achieved_ci_half_width;
  /// A stopping rule ended the sampled run before its sweep budget.
  bool early_stopped = false;
  /// The request's soften token fired: the estimates are partial but
  /// valid and confidence-bounded (`achieved_ci_half_width` reports how
  /// wide). Never set on exact paths, which either finish or cancel.
  bool approximate = false;
};

/// Aggregate cost accounting for one `ExplainBatch` call.
struct BatchStats {
  std::size_t requests = 0;
  std::size_t failed_requests = 0;
  /// ...of which resolved `Cancelled` (a member's own token or the
  /// batch-level token fired).
  std::size_t cancelled_requests = 0;
  /// 1 when this batch ran the reference repair (first use of the
  /// engine), else 0 — never more, regardless of batch size.
  std::size_t reference_repairs = 0;
  std::size_t algorithm_calls = 0;
  std::size_t cache_hits = 0;
  /// Hits on memo entries written by an *earlier* request — the work the
  /// batch amortized across targets.
  std::size_t cross_request_hits = 0;
  /// Table-memo entries evicted while serving this batch (only non-zero
  /// when `EngineOptions::max_memo_entries` caps the memo).
  std::size_t cache_evictions = 0;
  /// Estimated resident bytes of the engine's memo caches after the
  /// batch (`BlackBoxRepair::approx_memo_bytes`) — the number
  /// `EngineOptions::seal_targets` compacts.
  std::size_t approx_memo_bytes = 0;
  /// Permutation sweeps consumed across the batch's sampled requests.
  std::size_t sweeps = 0;
  /// Largest `ExplainResult::achieved_ci_half_width` in the batch (0
  /// when no sampled request ran).
  double max_achieved_ci_half_width = 0.0;
  /// Requests whose stopping rule fired before the sweep budget.
  std::size_t early_stopped_requests = 0;
  /// Requests resolved with partial (softened) estimates.
  std::size_t approximate_requests = 0;
};

/// The results of a batch, slot-for-slot with the request vector.
/// Per-request failures (e.g. an unrepaired target) land in their slot;
/// engine-level failures fail the whole batch.
struct BatchResult {
  std::vector<Result<ExplainResult>> results;
  BatchStats stats;
};

/// Options for the engine.
struct EngineOptions {
  /// Worker threads for sharded permutation sweeps. Shapley estimates
  /// are bit-identical for every value (sharding is seed-deterministic);
  /// only wall-clock time changes. Cost counters may report a few extra
  /// algorithm calls under concurrency when two shards miss the same
  /// memo key simultaneously.
  std::size_t num_threads = 1;
  /// Entry cap for the `BlackBoxRepair` table memo (each entry stores an
  /// input table plus its repaired output). 0 = unbounded. Evictions are
  /// LRU and change only cost, never results; they are surfaced in
  /// `BatchStats::cache_evictions` and `Engine::num_cache_evictions()`.
  std::size_t max_memo_entries = 0;
  /// Verify table-memo hits by 128-bit strong content hash instead of
  /// retaining a full copy of every evaluated input — halves the memo's
  /// table footprint at the cost of trusting the 128-bit comparison
  /// over exact content equality (collision odds ~2^-64 per pair; see
  /// BlackBoxRepair::set_use_strong_table_hash). Default off.
  bool use_strong_table_hash = false;
  /// Seal the target set at each `ExplainBatch`: the batch's targets
  /// are registered up front and `BlackBoxRepair::SealTargets()` turns
  /// every memo entry into a per-target outcome bitset — O(targets)
  /// bytes per entry instead of O(table) (see repair_game.h). Results
  /// are bit-identical to the unsealed engine; targets added *after* a
  /// seal (a later `Explain`/`ExplainBatch` on the same engine) stay
  /// correct via recompute-on-miss and may re-run some repairs. Sealed
  /// entries are verified by 128-bit fingerprint, the same trust model
  /// as `use_strong_table_hash`. Default off.
  bool seal_targets = false;
  /// Engine-wide anytime estimation default for sampled paths; each
  /// request can override it via `ExplainRequest::anytime`.
  AnytimeOptions anytime;
};

/// Unified multi-target explanation engine (see file comment).
class Engine {
 public:
  /// The algorithm is shared (not copied) and must outlive the engine.
  Engine(std::shared_ptr<const repair::RepairAlgorithm> algorithm,
         dc::DcSet dcs, Table dirty, EngineOptions options = {});

  /// Shares the dirty table with the caller (the router/session path):
  /// only one copy stays resident, handed through to the
  /// `BlackBoxRepair` at `EnsureRepair`. `dirty` must not be null.
  Engine(std::shared_ptr<const repair::RepairAlgorithm> algorithm,
         dc::DcSet dcs, std::shared_ptr<const Table> dirty,
         EngineOptions options = {});

  /// Non-owning adapter for callers holding a bare reference; the
  /// algorithm must outlive the engine.
  static Engine Wrap(const repair::RepairAlgorithm& algorithm, dc::DcSet dcs,
                     Table dirty, EngineOptions options = {});

  const Table& dirty() const { return *dirty_; }
  /// The shared dirty-table handle (for callers that want to alias it).
  const std::shared_ptr<const Table>& shared_dirty() const { return dirty_; }
  const dc::DcSet& dcs() const { return dcs_; }
  const repair::RepairAlgorithm& algorithm() const { return *algorithm_; }
  const EngineOptions& options() const { return options_; }

  /// Runs the reference repair if it has not run yet. `Explain` does
  /// this on demand; call it eagerly to surface repair failures early or
  /// to read `reference_clean()`.
  [[nodiscard]] Status EnsureRepair();

  /// True once the reference repair ran.
  bool has_repair() const { return box_.has_value(); }

  /// The reference clean table T^c; requires `has_repair()`.
  const Table& reference_clean() const;

  /// Serves one explanation request.
  [[nodiscard]] Result<ExplainResult> Explain(const ExplainRequest& request);

  /// Serves a batch of requests over the shared caches. The reference
  /// repair runs at most once for the whole batch; requests are
  /// processed in order, so results are bit-identical to issuing the
  /// same requests serially through `Explain` on a fresh engine with
  /// the same options. Cancellation is per target and batch-wide: each
  /// request's own `cancel` token is polled inside its sweeps (a
  /// cancelled member lands `Status::Cancelled` in its slot without
  /// failing the batch), while `cancel` here is merged into every
  /// member and also short-circuits the remaining slots between
  /// requests — for callers that want one lever over a whole batch.
  /// (The service relies on per-job tokens instead: its shutdown path
  /// flips every outstanding job's own source.)
  [[nodiscard]] Result<BatchResult> ExplainBatch(const std::vector<ExplainRequest>& requests,
                                   CancelToken cancel = {});

  /// Adaptive top-k cell ranking (see CellExplainer::ExplainTopK). The
  /// refinement rounds run on the engine's persistent pool — a round's
  /// sweeps execute concurrently and the separation test is evaluated at
  /// round boundaries on deterministically merged statistics, so the
  /// ranking is bit-identical at every thread count. `soften` degrades
  /// like `ExplainRequest::soften`: finish the current round and return
  /// the partial ranking.
  [[nodiscard]] Result<Explanation> ExplainTopKCells(CellRef target, std::size_t k,
                                       const CellExplainerOptions& options,
                                       CancelToken cancel = {},
                                       CancelToken soften = {});

  /// Lifetime totals across every request served by this engine.
  std::size_t num_algorithm_calls() const;
  std::size_t num_cache_hits() const;
  std::size_t num_cross_request_hits() const;
  std::size_t num_cache_evictions() const;
  /// Estimated resident bytes of the memo caches right now (0 before
  /// the reference repair). See `BlackBoxRepair::approx_memo_bytes`.
  std::size_t approx_memo_bytes() const;

 private:
  /// Cheap request screening (bounds, option consistency) that must run
  /// before the reference repair is paid for.
  [[nodiscard]] Status ValidateRequest(const ExplainRequest& request) const;

  [[nodiscard]] Result<std::size_t> EnsureTarget(CellRef target);

  /// The effective stopping rule for a request: its `anytime` override
  /// (or the engine default) lowered onto a `shap::StopRule`, with the
  /// request's soften token attached.
  shap::StopRule EffectiveStopRule(const ExplainRequest& request) const;
  /// The anytime options in effect for a request.
  const AnytimeOptions& EffectiveAnytime(const ExplainRequest& request) const;

  // The sampled per-kind helpers take the whole request (for anytime
  // options and the soften token) and record sweep telemetry — sweeps,
  // achieved CI width, early-stop/approximate flags — onto `result`.
  [[nodiscard]] Result<Explanation> ExplainConstraints(std::size_t target_index,
                                         const ExplainRequest& request,
                                         ExplainResult* result);
  [[nodiscard]] Result<std::vector<InteractionScore>> ExplainInteractions(
      std::size_t target_index, const ConstraintExplainerOptions& options,
      const CancelToken& cancel);
  [[nodiscard]] Result<std::vector<std::vector<std::string>>> ExplainRemovalSets(
      std::size_t target_index, const ConstraintExplainerOptions& options,
      std::size_t max_set_size, const CancelToken& cancel);
  [[nodiscard]] Result<Explanation> ExplainCells(std::size_t target_index,
                                   const ExplainRequest& request,
                                   ExplainResult* result);
  [[nodiscard]] Result<PlayerScore> ExplainSingleCell(std::size_t target_index,
                                        const ExplainRequest& request,
                                        ExplainResult* result);

  [[nodiscard]] Result<std::vector<CellRef>> PlayerCells(const CellExplainerOptions& options,
                                           CellRef target) const;
  [[nodiscard]] Status RequireRepairedTarget(std::size_t target_index) const;
  [[nodiscard]] Status RequireMaskableConstraints() const;
  /// The engine's persistent worker pool (lazily created; null while the
  /// engine is configured single-threaded) so repeated sampling requests
  /// don't respawn threads.
  ThreadPool* SweepPool();

  std::shared_ptr<const repair::RepairAlgorithm> algorithm_;
  dc::DcSet dcs_;
  /// Shared with the box (and possibly a router/session); never null.
  std::shared_ptr<const Table> dirty_;
  EngineOptions options_;
  std::optional<BlackBoxRepair> box_;
  std::unique_ptr<ThreadPool> pool_;
  std::size_t next_request_id_ = 1;
};

}  // namespace trex

#endif  // TREX_CORE_ENGINE_H_
