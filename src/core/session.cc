#include "core/session.h"

#include "common/logging.h"

namespace trex {

TRexSession::TRexSession(
    std::shared_ptr<const repair::RepairAlgorithm> algorithm, dc::DcSet dcs,
    Table dirty)
    : algorithm_(std::move(algorithm)),
      dcs_(std::move(dcs)),
      dirty_(std::move(dirty)) {
  TREX_CHECK(algorithm_ != nullptr);
}

Status TRexSession::Repair() {
  TREX_ASSIGN_OR_RETURN(Table clean, algorithm_->Repair(dcs_, dirty_));
  TREX_ASSIGN_OR_RETURN(repaired_cells_, DiffTables(dirty_, clean));
  clean_ = std::move(clean);
  return Status::Ok();
}

const Table& TRexSession::clean() const {
  TREX_CHECK(clean_.has_value()) << "call Repair() first";
  return *clean_;
}

const std::vector<RepairedCell>& TRexSession::repaired_cells() const {
  TREX_CHECK(clean_.has_value()) << "call Repair() first";
  return repaired_cells_;
}

Result<CellRef> TRexSession::CellAt(std::size_t row,
                                    const std::string& attribute) const {
  if (row >= dirty_.num_rows()) {
    return Status::OutOfRange("row " + std::to_string(row) +
                              " outside the table");
  }
  TREX_ASSIGN_OR_RETURN(std::size_t col, dirty_.ColumnIndex(attribute));
  return CellRef{row, col};
}

Status TRexSession::RequireRepair() const {
  if (!clean_.has_value()) {
    return Status::InvalidArgument(
        "no repair available: call Repair() after constructing or "
        "editing the session");
  }
  return Status::Ok();
}

Result<Explanation> TRexSession::ExplainConstraints(
    CellRef target, const ConstraintExplainerOptions& options) const {
  TREX_RETURN_NOT_OK(RequireRepair());
  ConstraintExplainer explainer(options);
  return explainer.Explain(*algorithm_, dcs_, dirty_, target);
}

Result<std::vector<InteractionScore>>
TRexSession::ExplainConstraintInteractions(
    CellRef target, const ConstraintExplainerOptions& options) const {
  TREX_RETURN_NOT_OK(RequireRepair());
  ConstraintExplainer explainer(options);
  return explainer.ExplainInteractions(*algorithm_, dcs_, dirty_, target);
}

Result<Explanation> TRexSession::ExplainCells(
    CellRef target, const CellExplainerOptions& options) const {
  TREX_RETURN_NOT_OK(RequireRepair());
  CellExplainer explainer(options);
  return explainer.Explain(*algorithm_, dcs_, dirty_, target);
}

Result<PlayerScore> TRexSession::ExplainSingleCell(
    CellRef target, CellRef player_cell,
    const CellExplainerOptions& options) const {
  TREX_RETURN_NOT_OK(RequireRepair());
  CellExplainer explainer(options);
  return explainer.ExplainSingleCell(*algorithm_, dcs_, dirty_, target,
                                     player_cell);
}

Status TRexSession::SetDirtyCell(CellRef cell, Value value) {
  if (cell.row >= dirty_.num_rows() || cell.col >= dirty_.num_columns()) {
    return Status::OutOfRange("cell " + cell.ToString() +
                              " outside the table");
  }
  dirty_.Set(cell, std::move(value));
  clean_.reset();
  repaired_cells_.clear();
  return Status::Ok();
}

Status TRexSession::RemoveConstraint(const std::string& name) {
  TREX_ASSIGN_OR_RETURN(std::size_t index, dcs_.IndexOf(name));
  dcs_ = dcs_.Without(index);
  clean_.reset();
  repaired_cells_.clear();
  return Status::Ok();
}

Status TRexSession::AddConstraint(dc::DenialConstraint constraint) {
  if (dcs_.IndexOf(constraint.name()).ok()) {
    return Status::AlreadyExists("constraint '" + constraint.name() +
                                 "' already present");
  }
  dcs_.Add(std::move(constraint));
  clean_.reset();
  repaired_cells_.clear();
  return Status::Ok();
}

Status TRexSession::ReplaceConstraint(dc::DenialConstraint constraint) {
  TREX_ASSIGN_OR_RETURN(std::size_t index,
                        dcs_.IndexOf(constraint.name()));
  dc::DcSet updated;
  for (std::size_t i = 0; i < dcs_.size(); ++i) {
    updated.Add(i == index ? constraint : dcs_.at(i));
  }
  dcs_ = std::move(updated);
  clean_.reset();
  repaired_cells_.clear();
  return Status::Ok();
}

}  // namespace trex
