#include "core/session.h"

#include "common/logging.h"

namespace trex {

TRexSession::TRexSession(
    std::shared_ptr<const repair::RepairAlgorithm> algorithm, dc::DcSet dcs,
    Table dirty, EngineOptions engine_options)
    : algorithm_(std::move(algorithm)),
      dcs_(std::move(dcs)),
      dirty_(std::move(dirty)),
      engine_options_(engine_options) {
  TREX_CHECK(algorithm_ != nullptr);
}

Status TRexSession::Repair() {
  auto engine = std::make_unique<Engine>(algorithm_, dcs_, dirty_,
                                         engine_options_);
  TREX_RETURN_NOT_OK(engine->EnsureRepair());
  TREX_ASSIGN_OR_RETURN(repaired_cells_,
                        DiffTables(dirty_, engine->reference_clean()));
  engine_ = std::move(engine);
  return Status::Ok();
}

const Table& TRexSession::clean() const {
  TREX_CHECK(engine_ != nullptr) << "call Repair() first";
  return engine_->reference_clean();
}

const std::vector<RepairedCell>& TRexSession::repaired_cells() const {
  TREX_CHECK(engine_ != nullptr) << "call Repair() first";
  return repaired_cells_;
}

Engine& TRexSession::engine() {
  TREX_CHECK(engine_ != nullptr) << "call Repair() first";
  return *engine_;
}

Result<CellRef> TRexSession::CellAt(std::size_t row,
                                    const std::string& attribute) const {
  if (row >= dirty_.num_rows()) {
    return Status::OutOfRange("row " + std::to_string(row) +
                              " outside the table");
  }
  TREX_ASSIGN_OR_RETURN(std::size_t col, dirty_.ColumnIndex(attribute));
  return CellRef{row, col};
}

Status TRexSession::RequireRepair() const {
  if (engine_ == nullptr) {
    return Status::InvalidArgument(
        "no repair available: call Repair() after constructing or "
        "editing the session");
  }
  return Status::Ok();
}

void TRexSession::InvalidateRepair() {
  engine_.reset();
  repaired_cells_.clear();
}

Result<Explanation> TRexSession::ExplainConstraints(
    CellRef target, const ConstraintExplainerOptions& options) const {
  TREX_RETURN_NOT_OK(RequireRepair());
  ExplainRequest request;
  request.target = target;
  request.kind = ExplainKind::kConstraints;
  request.constraints = options;
  TREX_ASSIGN_OR_RETURN(ExplainResult result, engine_->Explain(request));
  return std::move(*result.explanation);
}

Result<std::vector<InteractionScore>>
TRexSession::ExplainConstraintInteractions(
    CellRef target, const ConstraintExplainerOptions& options) const {
  TREX_RETURN_NOT_OK(RequireRepair());
  ExplainRequest request;
  request.target = target;
  request.kind = ExplainKind::kInteractions;
  request.constraints = options;
  TREX_ASSIGN_OR_RETURN(ExplainResult result, engine_->Explain(request));
  return std::move(result.interactions);
}

Result<Explanation> TRexSession::ExplainCells(
    CellRef target, const CellExplainerOptions& options) const {
  TREX_RETURN_NOT_OK(RequireRepair());
  ExplainRequest request;
  request.target = target;
  request.kind = ExplainKind::kCells;
  request.cells = options;
  TREX_ASSIGN_OR_RETURN(ExplainResult result, engine_->Explain(request));
  return std::move(*result.explanation);
}

Result<PlayerScore> TRexSession::ExplainSingleCell(
    CellRef target, CellRef player_cell,
    const CellExplainerOptions& options) const {
  TREX_RETURN_NOT_OK(RequireRepair());
  ExplainRequest request;
  request.target = target;
  request.kind = ExplainKind::kSingleCell;
  request.cells = options;
  request.single_cell = player_cell;
  TREX_ASSIGN_OR_RETURN(ExplainResult result, engine_->Explain(request));
  return std::move(*result.single_cell);
}

Result<BatchResult> TRexSession::ExplainBatch(
    const std::vector<ExplainRequest>& requests) const {
  TREX_RETURN_NOT_OK(RequireRepair());
  return engine_->ExplainBatch(requests);
}

Status TRexSession::SetDirtyCell(CellRef cell, Value value) {
  if (cell.row >= dirty_.num_rows() || cell.col >= dirty_.num_columns()) {
    return Status::OutOfRange("cell " + cell.ToString() +
                              " outside the table");
  }
  dirty_.Set(cell, std::move(value));
  InvalidateRepair();
  return Status::Ok();
}

Status TRexSession::RemoveConstraint(const std::string& name) {
  TREX_ASSIGN_OR_RETURN(std::size_t index, dcs_.IndexOf(name));
  dcs_ = dcs_.Without(index);
  InvalidateRepair();
  return Status::Ok();
}

Status TRexSession::AddConstraint(dc::DenialConstraint constraint) {
  if (dcs_.IndexOf(constraint.name()).ok()) {
    return Status::AlreadyExists("constraint '" + constraint.name() +
                                 "' already present");
  }
  dcs_.Add(std::move(constraint));
  InvalidateRepair();
  return Status::Ok();
}

Status TRexSession::ReplaceConstraint(dc::DenialConstraint constraint) {
  TREX_ASSIGN_OR_RETURN(std::size_t index,
                        dcs_.IndexOf(constraint.name()));
  dc::DcSet updated;
  for (std::size_t i = 0; i < dcs_.size(); ++i) {
    updated.Add(i == index ? constraint : dcs_.at(i));
  }
  dcs_ = std::move(updated);
  InvalidateRepair();
  return Status::Ok();
}

}  // namespace trex
