#include "core/interaction.h"

#include <bit>

#include "common/logging.h"

namespace trex::shap {
namespace {

/// Materializes v over all coalitions (shared with the exact-Shapley
/// path; duplicated here to keep the modules independent).
Result<std::vector<double>> MaterializeValues(const Game& game,
                                              const InteractionOptions& options) {
  const std::size_t n = game.num_players();
  if (n > options.max_players) {
    return Status::InvalidArgument(
        "interaction indices over " + std::to_string(n) +
        " players exceed the configured cap of " +
        std::to_string(options.max_players));
  }
  const std::size_t num_masks = std::size_t{1} << n;
  std::vector<double> v(num_masks);
  Coalition coalition(n, false);
  for (std::size_t mask = 0; mask < num_masks; ++mask) {
    if (options.cancel.cancelled()) {
      return Status::Cancelled("interaction computation cancelled");
    }
    for (std::size_t i = 0; i < n; ++i) coalition[i] = (mask >> i) & 1;
    v[mask] = game.Value(coalition);
  }
  return v;
}

/// Positional weights |S|!(n-|S|-2)!/(n-1)! = 1 / ((n-1) · C(n-2, s)).
std::vector<double> PairWeights(std::size_t n) {
  TREX_CHECK_GE(n, 2u);
  std::vector<double> binom(n - 1, 1.0);  // C(n-2, s) for s = 0..n-2
  for (std::size_t s = 1; s <= n - 2; ++s) {
    binom[s] = binom[s - 1] * static_cast<double>(n - 1 - s) /
               static_cast<double>(s);
  }
  std::vector<double> weight(n - 1);
  for (std::size_t s = 0; s <= n - 2; ++s) {
    weight[s] = 1.0 / (static_cast<double>(n - 1) * binom[s]);
  }
  return weight;
}

double PairInteraction(const std::vector<double>& v,
                       const std::vector<double>& weight, std::size_t a,
                       std::size_t b) {
  const std::size_t bit_a = std::size_t{1} << a;
  const std::size_t bit_b = std::size_t{1} << b;
  const std::size_t num_masks = v.size();
  double total = 0.0;
  for (std::size_t mask = 0; mask < num_masks; ++mask) {
    if (mask & (bit_a | bit_b)) continue;  // S must exclude both
    const std::size_t s = static_cast<std::size_t>(std::popcount(mask));
    const double delta = v[mask | bit_a | bit_b] - v[mask | bit_a] -
                         v[mask | bit_b] + v[mask];
    total += weight[s] * delta;
  }
  return total;
}

}  // namespace

Result<std::vector<Interaction>> ComputeShapleyInteractions(
    const Game& game, const InteractionOptions& options) {
  const std::size_t n = game.num_players();
  if (n < 2) return std::vector<Interaction>{};
  TREX_ASSIGN_OR_RETURN(std::vector<double> v,
                        MaterializeValues(game, options));
  const std::vector<double> weight = PairWeights(n);
  std::vector<Interaction> out;
  out.reserve(n * (n - 1) / 2);
  for (std::size_t a = 0; a < n; ++a) {
    for (std::size_t b = a + 1; b < n; ++b) {
      out.push_back(Interaction{a, b, PairInteraction(v, weight, a, b)});
    }
  }
  return out;
}

Result<double> ComputeShapleyInteraction(const Game& game,
                                         std::size_t player_a,
                                         std::size_t player_b,
                                         const InteractionOptions& options) {
  const std::size_t n = game.num_players();
  if (player_a >= n || player_b >= n || player_a == player_b) {
    return Status::InvalidArgument("invalid player pair");
  }
  TREX_ASSIGN_OR_RETURN(std::vector<double> v,
                        MaterializeValues(game, options));
  return PairInteraction(v, PairWeights(n), player_a, player_b);
}

}  // namespace trex::shap
