#include "core/interaction.h"

#include <bit>

#include "common/logging.h"
#include "core/subset_walk.h"

namespace trex::shap {
namespace {

/// Materializes v over all coalitions via the shared sharded subset
/// walk (core/subset_walk.h), honoring the interaction options' thread
/// configuration.
Result<std::vector<double>> MaterializeValues(
    const Game& game, const InteractionOptions& options) {
  SubsetWalkOptions walk;
  walk.max_players = options.max_players;
  walk.num_threads = options.num_threads;
  walk.pool = options.pool;
  walk.cancel = options.cancel;
  return MaterializeCoalitionValues(game, walk, "interaction indices");
}

/// Positional weights |S|!(n-|S|-2)!/(n-1)! = 1 / ((n-1) · C(n-2, s)).
std::vector<double> PairWeights(std::size_t n) {
  TREX_CHECK_GE(n, 2u);
  std::vector<double> binom(n - 1, 1.0);  // C(n-2, s) for s = 0..n-2
  for (std::size_t s = 1; s <= n - 2; ++s) {
    binom[s] = binom[s - 1] * static_cast<double>(n - 1 - s) /
               static_cast<double>(s);
  }
  std::vector<double> weight(n - 1);
  for (std::size_t s = 0; s <= n - 2; ++s) {
    weight[s] = 1.0 / (static_cast<double>(n - 1) * binom[s]);
  }
  return weight;
}

double PairInteraction(const std::vector<double>& v,
                       const std::vector<double>& weight, std::size_t a,
                       std::size_t b) {
  const std::size_t bit_a = std::size_t{1} << a;
  const std::size_t bit_b = std::size_t{1} << b;
  const std::size_t num_masks = v.size();
  double total = 0.0;
  for (std::size_t mask = 0; mask < num_masks; ++mask) {
    if (mask & (bit_a | bit_b)) continue;  // S must exclude both
    const std::size_t s = static_cast<std::size_t>(std::popcount(mask));
    const double delta = v[mask | bit_a | bit_b] - v[mask | bit_a] -
                         v[mask | bit_b] + v[mask];
    total += weight[s] * delta;
  }
  return total;
}

}  // namespace

Result<std::vector<Interaction>> ComputeShapleyInteractions(
    const Game& game, const InteractionOptions& options) {
  const std::size_t n = game.num_players();
  if (n < 2) return std::vector<Interaction>{};
  TREX_ASSIGN_OR_RETURN(std::vector<double> v,
                        MaterializeValues(game, options));
  const std::vector<double> weight = PairWeights(n);
  std::vector<Interaction> out;
  out.reserve(n * (n - 1) / 2);
  for (std::size_t a = 0; a < n; ++a) {
    for (std::size_t b = a + 1; b < n; ++b) {
      out.push_back(Interaction{a, b, 0.0});
    }
  }
  // Per-pair accumulation, sharded over the pairs: each pair's sum is a
  // serial loop in mask order writing a disjoint slot — bit-identical
  // for any thread count.
  ThreadPool::RunSharded(options.pool, options.num_threads, out.size(),
                         [&](std::size_t p) {
                           out[p].value = PairInteraction(
                               v, weight, out[p].player_a, out[p].player_b);
                         });
  return out;
}

Result<double> ComputeShapleyInteraction(const Game& game,
                                         std::size_t player_a,
                                         std::size_t player_b,
                                         const InteractionOptions& options) {
  const std::size_t n = game.num_players();
  if (player_a >= n || player_b >= n || player_a == player_b) {
    return Status::InvalidArgument("invalid player pair");
  }
  TREX_ASSIGN_OR_RETURN(std::vector<double> v,
                        MaterializeValues(game, options));
  return PairInteraction(v, PairWeights(n), player_a, player_b);
}

}  // namespace trex::shap
