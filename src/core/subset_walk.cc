#include "core/subset_walk.h"

#include <algorithm>
#include <string>

namespace trex::shap {

Result<std::vector<double>> MaterializeCoalitionValues(
    const Game& game, const SubsetWalkOptions& options, const char* context) {
  const std::size_t n = game.num_players();
  if (n == 0) return std::vector<double>{};
  if (n > options.max_players) {
    std::string message = std::string(context) + " over " +
                          std::to_string(n) +
                          " players exceeds the configured cap of " +
                          std::to_string(options.max_players);
    if (options.over_cap_hint != nullptr) {
      message += std::string(" ") + options.over_cap_hint;
    }
    return Status::InvalidArgument(std::move(message));
  }
  const std::size_t num_masks = std::size_t{1} << n;
  std::vector<double> v(num_masks);

  // Evaluates masks [begin, end) into the shard's disjoint slice of v.
  auto walk_range = [&](std::size_t begin, std::size_t end) {
    Coalition coalition(n, false);
    for (std::size_t mask = begin; mask < end; ++mask) {
      if (options.cancel.cancelled()) return;
      for (std::size_t i = 0; i < n; ++i) coalition[i] = (mask >> i) & 1;
      v[mask] = game.Value(coalition);
    }
  };

  const std::size_t shard_size = std::max<std::size_t>(options.shard_size, 1);
  const std::size_t num_shards = (num_masks + shard_size - 1) / shard_size;
  ThreadPool::RunSharded(
      options.pool, options.num_threads, num_shards, [&](std::size_t shard) {
        const std::size_t begin = shard * shard_size;
        walk_range(begin, std::min(begin + shard_size, num_masks));
      });
  if (options.cancel.cancelled()) {
    return Status::Cancelled(std::string(context) + " computation cancelled");
  }
  return v;
}

}  // namespace trex::shap
