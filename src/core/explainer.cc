#include "core/explainer.h"

#include <algorithm>

#include "core/engine.h"

namespace trex {

const char* AbsentCellPolicyToString(AbsentCellPolicy policy) {
  switch (policy) {
    case AbsentCellPolicy::kNull:
      return "null";
    case AbsentCellPolicy::kSampleFromColumn:
      return "column-sample";
  }
  return "?";
}

std::vector<PlayerScore> Explanation::TopK(std::size_t k) const {
  const std::size_t count = std::min(k, ranked.size());
  return {ranked.begin(), ranked.begin() + count};
}

double Explanation::TotalAttribution() const {
  double total = 0;
  for (const PlayerScore& p : ranked) total += p.shapley;
  return total;
}

// The explainers are thin adapters over `trex::Engine` (core/engine.h):
// each call wraps a fresh single-use engine around the caller's
// (algorithm, dcs, dirty) triple. Callers issuing many queries against
// one table should hold an `Engine` (or a `TRexSession`) instead, which
// shares the reference repair and the memo caches across queries.

Result<Explanation> ConstraintExplainer::Explain(
    const repair::RepairAlgorithm& algorithm, const dc::DcSet& dcs,
    const Table& dirty, CellRef target) const {
  Engine engine = Engine::Wrap(algorithm, dcs, dirty);
  ExplainRequest request;
  request.target = target;
  request.kind = ExplainKind::kConstraints;
  request.constraints = options_;
  TREX_ASSIGN_OR_RETURN(ExplainResult result, engine.Explain(request));
  return std::move(*result.explanation);
}

Result<std::vector<InteractionScore>> ConstraintExplainer::ExplainInteractions(
    const repair::RepairAlgorithm& algorithm, const dc::DcSet& dcs,
    const Table& dirty, CellRef target) const {
  Engine engine = Engine::Wrap(algorithm, dcs, dirty);
  ExplainRequest request;
  request.target = target;
  request.kind = ExplainKind::kInteractions;
  request.constraints = options_;
  TREX_ASSIGN_OR_RETURN(ExplainResult result, engine.Explain(request));
  return std::move(result.interactions);
}

Result<std::vector<std::vector<std::string>>>
ConstraintExplainer::ExplainRemovalSets(
    const repair::RepairAlgorithm& algorithm, const dc::DcSet& dcs,
    const Table& dirty, CellRef target, std::size_t max_set_size) const {
  Engine engine = Engine::Wrap(algorithm, dcs, dirty);
  ExplainRequest request;
  request.target = target;
  request.kind = ExplainKind::kRemovalSets;
  request.constraints = options_;
  request.max_removal_set_size = max_set_size;
  TREX_ASSIGN_OR_RETURN(ExplainResult result, engine.Explain(request));
  return std::move(result.removal_sets);
}

Result<Explanation> CellExplainer::Explain(
    const repair::RepairAlgorithm& algorithm, const dc::DcSet& dcs,
    const Table& dirty, CellRef target) const {
  Engine engine = Engine::Wrap(algorithm, dcs, dirty);
  ExplainRequest request;
  request.target = target;
  request.kind = ExplainKind::kCells;
  request.cells = options_;
  TREX_ASSIGN_OR_RETURN(ExplainResult result, engine.Explain(request));
  return std::move(*result.explanation);
}

Result<Explanation> CellExplainer::ExplainTopK(
    const repair::RepairAlgorithm& algorithm, const dc::DcSet& dcs,
    const Table& dirty, CellRef target, std::size_t k) const {
  Engine engine = Engine::Wrap(algorithm, dcs, dirty);
  return engine.ExplainTopKCells(target, k, options_);
}

Result<PlayerScore> CellExplainer::ExplainSingleCell(
    const repair::RepairAlgorithm& algorithm, const dc::DcSet& dcs,
    const Table& dirty, CellRef target, CellRef player_cell) const {
  Engine engine = Engine::Wrap(algorithm, dcs, dirty);
  ExplainRequest request;
  request.target = target;
  request.kind = ExplainKind::kSingleCell;
  request.cells = options_;
  request.single_cell = player_cell;
  TREX_ASSIGN_OR_RETURN(ExplainResult result, engine.Explain(request));
  return std::move(*result.single_cell);
}

}  // namespace trex
