#include "core/explainer.h"

#include <algorithm>
#include <cmath>

#include "common/string_util.h"
#include "core/counterfactual.h"
#include "core/interaction.h"
#include "dc/graph.h"
#include "table/stats.h"

namespace trex {
namespace {

/// Sorts player scores descending by Shapley value; ties keep the
/// original player order (stable), making output deterministic.
void RankDescending(std::vector<PlayerScore>* scores) {
  std::stable_sort(scores->begin(), scores->end(),
                   [](const PlayerScore& a, const PlayerScore& b) {
                     return a.shapley > b.shapley;
                   });
}

Explanation MakeBaseExplanation(const BlackBoxRepair& box) {
  Explanation ex;
  ex.target = box.target();
  ex.target_label = box.target().ToString(box.dirty().schema());
  ex.old_value = box.dirty().at(box.target());
  ex.new_value = box.reference_clean().at(box.target());
  return ex;
}

Status RequireRepairedTarget(const BlackBoxRepair& box) {
  if (!box.target_was_repaired()) {
    return Status::InvalidArgument(
        "cell " + box.target().ToString(box.dirty().schema()) +
        " was not repaired by the algorithm (value '" +
        box.dirty().at(box.target()).ToString() +
        "' is unchanged); pick a repaired cell");
  }
  return Status::Ok();
}

}  // namespace

const char* AbsentCellPolicyToString(AbsentCellPolicy policy) {
  switch (policy) {
    case AbsentCellPolicy::kNull:
      return "null";
    case AbsentCellPolicy::kSampleFromColumn:
      return "column-sample";
  }
  return "?";
}

std::vector<PlayerScore> Explanation::TopK(std::size_t k) const {
  const std::size_t count = std::min(k, ranked.size());
  return {ranked.begin(), ranked.begin() + count};
}

double Explanation::TotalAttribution() const {
  double total = 0;
  for (const PlayerScore& p : ranked) total += p.shapley;
  return total;
}

Result<Explanation> ConstraintExplainer::Explain(
    const repair::RepairAlgorithm& algorithm, const dc::DcSet& dcs,
    const Table& dirty, CellRef target) const {
  if (dcs.empty()) {
    return Status::InvalidArgument("constraint set is empty");
  }
  if (dcs.size() > 64) {
    return Status::InvalidArgument(
        "constraint games support at most 64 constraints");
  }
  TREX_ASSIGN_OR_RETURN(BlackBoxRepair box,
                        BlackBoxRepair::Make(&algorithm, dcs, dirty, target));
  TREX_RETURN_NOT_OK(RequireRepairedTarget(box));

  ConstraintGame game(&box);
  Explanation ex = MakeBaseExplanation(box);

  const bool exact =
      !options_.force_sampling && dcs.size() <= options_.max_exact_players;
  if (options_.use_banzhaf && !exact) {
    return Status::InvalidArgument(
        "Banzhaf attribution is exact-only; reduce the constraint count "
        "or raise max_exact_players");
  }
  std::vector<PlayerScore> scores;
  scores.reserve(dcs.size());
  if (exact) {
    const shap::ExactShapleyOptions exact_options{
        options_.max_exact_players};
    TREX_ASSIGN_OR_RETURN(
        std::vector<double> values,
        options_.use_banzhaf
            ? shap::ComputeExactBanzhaf(game, exact_options)
            : shap::ComputeExactShapley(game, exact_options));
    for (std::size_t i = 0; i < dcs.size(); ++i) {
      PlayerScore score;
      score.label = dcs.at(i).name();
      score.shapley = values[i];
      score.constraint_index = i;
      scores.push_back(std::move(score));
    }
    ex.method = options_.use_banzhaf ? "exact(banzhaf)" : "exact";
  } else {
    TREX_ASSIGN_OR_RETURN(
        std::vector<shap::Estimate> estimates,
        shap::EstimateShapleyAllPlayers(game, options_.sampling));
    for (std::size_t i = 0; i < dcs.size(); ++i) {
      PlayerScore score;
      score.label = dcs.at(i).name();
      score.shapley = estimates[i].value;
      score.std_error = estimates[i].std_error;
      score.num_samples = estimates[i].num_samples;
      score.constraint_index = i;
      scores.push_back(std::move(score));
    }
    ex.method = StrFormat("sampling(m=%zu)", options_.sampling.num_samples);
  }
  ex.ranked = std::move(scores);
  RankDescending(&ex.ranked);
  ex.algorithm_calls = box.num_algorithm_calls();
  ex.cache_hits = box.num_cache_hits();
  return ex;
}

Result<std::vector<InteractionScore>> ConstraintExplainer::ExplainInteractions(
    const repair::RepairAlgorithm& algorithm, const dc::DcSet& dcs,
    const Table& dirty, CellRef target) const {
  if (dcs.size() < 2) {
    return Status::InvalidArgument(
        "interaction indices need at least two constraints");
  }
  TREX_ASSIGN_OR_RETURN(BlackBoxRepair box,
                        BlackBoxRepair::Make(&algorithm, dcs, dirty, target));
  TREX_RETURN_NOT_OK(RequireRepairedTarget(box));

  ConstraintGame game(&box);
  shap::InteractionOptions options;
  options.max_players = options_.max_exact_players;
  TREX_ASSIGN_OR_RETURN(std::vector<shap::Interaction> raw,
                        shap::ComputeShapleyInteractions(game, options));
  std::vector<InteractionScore> scores;
  scores.reserve(raw.size());
  for (const shap::Interaction& interaction : raw) {
    scores.push_back(InteractionScore{
        dcs.at(interaction.player_a).name(),
        dcs.at(interaction.player_b).name(), interaction.value});
  }
  std::stable_sort(scores.begin(), scores.end(),
                   [](const InteractionScore& a, const InteractionScore& b) {
                     return std::fabs(a.interaction) >
                            std::fabs(b.interaction);
                   });
  return scores;
}

Result<std::vector<std::vector<std::string>>>
ConstraintExplainer::ExplainRemovalSets(
    const repair::RepairAlgorithm& algorithm, const dc::DcSet& dcs,
    const Table& dirty, CellRef target, std::size_t max_set_size) const {
  if (dcs.empty()) {
    return Status::InvalidArgument("constraint set is empty");
  }
  TREX_ASSIGN_OR_RETURN(BlackBoxRepair box,
                        BlackBoxRepair::Make(&algorithm, dcs, dirty, target));
  TREX_RETURN_NOT_OK(RequireRepairedTarget(box));

  ConstraintGame game(&box);
  shap::CounterfactualOptions options;
  options.max_set_size = max_set_size;
  options.max_players = options_.max_exact_players;
  TREX_ASSIGN_OR_RETURN(auto removal_sets,
                        shap::MinimalRemovalSets(game, options));
  std::vector<std::vector<std::string>> named;
  named.reserve(removal_sets.size());
  for (const auto& removal : removal_sets) {
    std::vector<std::string> labels;
    labels.reserve(removal.size());
    for (std::size_t index : removal) labels.push_back(dcs.at(index).name());
    named.push_back(std::move(labels));
  }
  return named;
}

Result<std::vector<CellRef>> CellExplainer::PlayerCells(
    const repair::RepairAlgorithm& algorithm, const dc::DcSet& dcs,
    const Table& dirty, CellRef target) const {
  if (!options_.prune) return dirty.AllCells();
  std::optional<dc::AttributeGraph> graph =
      algorithm.InfluenceGraph(dcs, dirty.schema());
  if (!graph.has_value()) {
    graph = dc::AttributeGraph::FromDcSet(dcs, dirty.num_columns());
  }
  return dc::RelevantCells(dirty, *graph, target);
}

Result<Explanation> CellExplainer::Explain(
    const repair::RepairAlgorithm& algorithm, const dc::DcSet& dcs,
    const Table& dirty, CellRef target) const {
  TREX_ASSIGN_OR_RETURN(BlackBoxRepair box,
                        BlackBoxRepair::Make(&algorithm, dcs, dirty, target));
  TREX_RETURN_NOT_OK(RequireRepairedTarget(box));

  TREX_ASSIGN_OR_RETURN(std::vector<CellRef> players,
                        PlayerCells(algorithm, dcs, dirty, target));
  if (players.empty()) {
    return Status::InvalidArgument("no candidate player cells");
  }

  CellMethod method = options_.method;
  if (method == CellMethod::kAuto) {
    method = (options_.policy == AbsentCellPolicy::kNull &&
              players.size() <= options_.max_exact_players)
                 ? CellMethod::kExact
                 : CellMethod::kSampling;
  }

  Explanation ex = MakeBaseExplanation(box);
  std::vector<PlayerScore> scores;
  scores.reserve(players.size());

  if (method == CellMethod::kExact) {
    if (options_.policy != AbsentCellPolicy::kNull) {
      return Status::InvalidArgument(
          "exact cell Shapley requires AbsentCellPolicy::kNull (the "
          "column-sample policy defines a stochastic game)");
    }
    CellGame game(&box, players);
    TREX_ASSIGN_OR_RETURN(
        std::vector<double> values,
        shap::ComputeExactShapley(
            game, shap::ExactShapleyOptions{options_.max_exact_players}));
    for (std::size_t i = 0; i < players.size(); ++i) {
      PlayerScore score;
      score.cell = players[i];
      score.label = players[i].ToString(dirty.schema());
      score.shapley = values[i];
      scores.push_back(std::move(score));
    }
    ex.method = "exact(null-policy)";
  } else {
    // Permutation-sweep sampling with the configured replacement policy
    // (Example 2.5 generalized to rank all players per sweep).
    Rng rng(options_.seed);
    TableStats stats(&box.dirty());
    std::vector<shap::RunningStat> running(players.size());

    auto replacement = [&](CellRef cell) -> Value {
      if (options_.policy == AbsentCellPolicy::kNull) return Value::Null();
      const ColumnStats& column = stats.Column(cell.col);
      if (column.total() == 0) return Value::Null();
      return column.Sample(&rng);
    };

    for (std::size_t sample = 0; sample < options_.num_samples; ++sample) {
      const std::vector<std::size_t> perm = rng.Permutation(players.size());
      // Baseline: every player absent (replaced); non-players untouched.
      Table working = box.dirty();
      for (const CellRef& cell : players) {
        working.Set(cell, replacement(cell));
      }
      double prev = box.EvalTable(working) ? 1.0 : 0.0;
      for (std::size_t pos = 0; pos < perm.size(); ++pos) {
        const std::size_t player = perm[pos];
        working.Set(players[player], box.dirty().at(players[player]));
        const double curr = box.EvalTable(working) ? 1.0 : 0.0;
        running[player].Add(curr - prev);
        prev = curr;
      }
      if (options_.target_std_error.has_value() && sample >= 16) {
        bool converged = true;
        for (const shap::RunningStat& stat : running) {
          if (stat.std_error() > *options_.target_std_error) {
            converged = false;
            break;
          }
        }
        if (converged) break;
      }
    }
    for (std::size_t i = 0; i < players.size(); ++i) {
      const shap::Estimate estimate = running[i].ToEstimate();
      PlayerScore score;
      score.cell = players[i];
      score.label = players[i].ToString(dirty.schema());
      score.shapley = estimate.value;
      score.std_error = estimate.std_error;
      score.num_samples = estimate.num_samples;
      scores.push_back(std::move(score));
    }
    ex.method = StrFormat(
        "sampling(m=%zu, policy=%s, players=%zu/%zu)",
        options_.num_samples, AbsentCellPolicyToString(options_.policy),
        players.size(), dirty.num_cells());
  }

  ex.ranked = std::move(scores);
  RankDescending(&ex.ranked);
  ex.algorithm_calls = box.num_algorithm_calls();
  ex.cache_hits = box.num_cache_hits();
  return ex;
}

Result<Explanation> CellExplainer::ExplainTopK(
    const repair::RepairAlgorithm& algorithm, const dc::DcSet& dcs,
    const Table& dirty, CellRef target, std::size_t k) const {
  if (options_.policy != AbsentCellPolicy::kNull) {
    return Status::InvalidArgument(
        "ExplainTopK requires AbsentCellPolicy::kNull (the adaptive "
        "driver runs on the deterministic cell game)");
  }
  TREX_ASSIGN_OR_RETURN(BlackBoxRepair box,
                        BlackBoxRepair::Make(&algorithm, dcs, dirty, target));
  TREX_RETURN_NOT_OK(RequireRepairedTarget(box));
  TREX_ASSIGN_OR_RETURN(std::vector<CellRef> players,
                        PlayerCells(algorithm, dcs, dirty, target));
  if (players.empty()) {
    return Status::InvalidArgument("no candidate player cells");
  }

  CellGame game(&box, players);
  shap::TopKOptions topk;
  topk.k = k;
  topk.max_samples = options_.num_samples;
  topk.seed = options_.seed;
  TREX_ASSIGN_OR_RETURN(shap::TopKResult result,
                        shap::EstimateTopKPlayers(game, topk));

  Explanation ex = MakeBaseExplanation(box);
  ex.ranked.reserve(players.size());
  for (std::size_t player : result.ranking) {
    const shap::Estimate& estimate = result.estimates[player];
    PlayerScore score;
    score.cell = players[player];
    score.label = players[player].ToString(dirty.schema());
    score.shapley = estimate.value;
    score.std_error = estimate.std_error;
    score.num_samples = estimate.num_samples;
    ex.ranked.push_back(std::move(score));
  }
  ex.method = StrFormat("topk(k=%zu, sweeps=%zu, separated=%s)", k,
                        result.sweeps, result.separated ? "yes" : "no");
  ex.algorithm_calls = box.num_algorithm_calls();
  ex.cache_hits = box.num_cache_hits();
  return ex;
}

Result<PlayerScore> CellExplainer::ExplainSingleCell(
    const repair::RepairAlgorithm& algorithm, const dc::DcSet& dcs,
    const Table& dirty, CellRef target, CellRef player_cell) const {
  if (player_cell.row >= dirty.num_rows() ||
      player_cell.col >= dirty.num_columns()) {
    return Status::OutOfRange("player cell " + player_cell.ToString() +
                              " outside the table");
  }
  TREX_ASSIGN_OR_RETURN(BlackBoxRepair box,
                        BlackBoxRepair::Make(&algorithm, dcs, dirty, target));
  TREX_RETURN_NOT_OK(RequireRepairedTarget(box));

  TREX_ASSIGN_OR_RETURN(std::vector<CellRef> players,
                        PlayerCells(algorithm, dcs, dirty, target));
  // The player of interest must be in the game even if pruning would
  // drop it (its Shapley value is then provably 0, but we measure it).
  if (std::find(players.begin(), players.end(), player_cell) ==
      players.end()) {
    players.push_back(player_cell);
  }
  std::size_t player_index = 0;
  for (std::size_t i = 0; i < players.size(); ++i) {
    if (players[i] == player_cell) player_index = i;
  }

  Rng rng(options_.seed);
  TableStats stats(&box.dirty());
  auto replacement = [&](CellRef cell) -> Value {
    if (options_.policy == AbsentCellPolicy::kNull) return Value::Null();
    const ColumnStats& column = stats.Column(cell.col);
    if (column.total() == 0) return Value::Null();
    return column.Sample(&rng);
  };

  // Example 2.5: per iteration, draw a permutation; the coalition is the
  // players preceding the cell of interest. Build two instances sharing
  // the coalition materialization — one with the cell's original value,
  // one with the cell replaced — and accumulate the outcome difference.
  shap::RunningStat stat;
  for (std::size_t sample = 0; sample < options_.num_samples; ++sample) {
    const std::vector<std::size_t> perm = rng.Permutation(players.size());
    Table with = box.dirty();
    bool before_player = true;
    for (std::size_t pos = 0; pos < perm.size(); ++pos) {
      if (perm[pos] == player_index) {
        before_player = false;
        continue;
      }
      if (!before_player) {
        const CellRef cell = players[perm[pos]];
        with.Set(cell, replacement(cell));
      }
    }
    Table without = with;
    without.Set(player_cell, replacement(player_cell));
    const double v_with = box.EvalTable(with) ? 1.0 : 0.0;
    const double v_without = box.EvalTable(without) ? 1.0 : 0.0;
    stat.Add(v_with - v_without);
  }

  const shap::Estimate estimate = stat.ToEstimate();
  PlayerScore score;
  score.cell = player_cell;
  score.label = player_cell.ToString(dirty.schema());
  score.shapley = estimate.value;
  score.std_error = estimate.std_error;
  score.num_samples = estimate.num_samples;
  return score;
}

}  // namespace trex
