// Exact Shapley-value computation.
//
// Two algorithms:
//  * `ComputeExactShapley` — subset enumeration, O(2^n) characteristic-
//    function evaluations and O(2^n · n) arithmetic. This is what T-REx
//    uses for *constraints* ("with DCs, the naïve approach is feasible as
//    the number of DCs is usually small", paper §2.3).
//  * `ComputeExactShapleyByPermutations` — O(n!) marginal-contribution
//    enumeration; only sensible for tiny n, kept as an independent test
//    oracle for the subset formula.

#ifndef TREX_CORE_SHAPLEY_EXACT_H_
#define TREX_CORE_SHAPLEY_EXACT_H_

#include <vector>

#include "common/status.h"
#include "common/thread_pool.h"
#include "core/game.h"
#include "common/cancel.h"

namespace trex::shap {

/// Options for exact computation.
struct ExactShapleyOptions {
  /// Hard cap on player count: 2^n coalition values are materialized, so
  /// memory and evaluation cost are exponential. 22 players ≈ 4M
  /// evaluations / 32 MB of cached values.
  std::size_t max_players = 22;
  /// Worker threads for the 2^n subset walk (and the per-player
  /// accumulation). Results are bit-identical for every value: shards
  /// evaluate disjoint mask ranges and each player's sum is accumulated
  /// serially in mask order (see core/subset_walk.h). The game must be
  /// thread-safe past 1 (`BlackBoxRepair`-backed games are).
  std::size_t num_threads = 1;
  /// Optional persistent pool (non-owning; must outlive the call).
  ThreadPool* pool = nullptr;
  /// Cooperative cancellation, polled once per coalition in the 2^n
  /// materialization loop (each iteration is a repair run unless
  /// memoized). Cancelled computations return `Status::Cancelled`.
  CancelToken cancel;
};

/// Exact Shapley values for every player via subset enumeration (see
/// file comment). Fails with InvalidArgument when the game exceeds
/// `options.max_players`.
[[nodiscard]] Result<std::vector<double>> ComputeExactShapley(
    const Game& game, const ExactShapleyOptions& options = {});

/// Exact Shapley values via full permutation enumeration; requires
/// `num_players() <= 10`. Slow — test oracle only.
[[nodiscard]] Result<std::vector<double>> ComputeExactShapleyByPermutations(
    const Game& game);

/// Exact (non-normalized) Banzhaf values via subset enumeration:
///   β_i = (1 / 2^(n-1)) Σ_{S ⊆ N\{i}} ( v(S∪{i}) − v(S) )
/// — every coalition weighted equally instead of by position. Banzhaf
/// trades the efficiency axiom for simpler semantics ("probability that
/// i is pivotal under a uniform random coalition") and is the common
/// comparison point for Shapley-based explanations. Same exponential
/// cost model and player cap as `ComputeExactShapley`.
[[nodiscard]] Result<std::vector<double>> ComputeExactBanzhaf(
    const Game& game, const ExactShapleyOptions& options = {});

}  // namespace trex::shap

#endif  // TREX_CORE_SHAPLEY_EXACT_H_
