// Shapley interaction indices: how much two players contribute *as a
// pair*, beyond their individual contributions.
//
// The paper's Example 2.3 reasons exactly in these terms: "the
// contribution of C1 and C2, as a pair, is half that of C3" — C1 and C2
// are individually useless for the t5[Country] repair but jointly carry
// it. The (pairwise) Shapley interaction index of Grabisch & Roubens
// formalizes this:
//
//   I(i,j) = Σ_{S ⊆ N\{i,j}}  |S|!(n-|S|-2)! / (n-1)!
//            · ( v(S∪{i,j}) − v(S∪{i}) − v(S∪{j}) + v(S) )
//
// Positive I(i,j): complements (like C1 & C2); negative: substitutes
// (like C3 vs the C1C2 pipeline — each makes the other redundant);
// zero: independent (anything involving C4).

#ifndef TREX_CORE_INTERACTION_H_
#define TREX_CORE_INTERACTION_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "common/thread_pool.h"
#include "core/game.h"
#include "common/cancel.h"

namespace trex::shap {

/// One pair's interaction value.
struct Interaction {
  std::size_t player_a = 0;
  std::size_t player_b = 0;
  double value = 0.0;
};

/// Options for exact interaction computation (2^n coalition values are
/// materialized, as for exact Shapley).
struct InteractionOptions {
  std::size_t max_players = 20;
  /// Worker threads for the 2^n subset walk and the per-pair
  /// accumulation; results are bit-identical for every value (see
  /// core/subset_walk.h). The game must be thread-safe past 1.
  std::size_t num_threads = 1;
  /// Optional persistent pool (non-owning; must outlive the call).
  ThreadPool* pool = nullptr;
  /// Polled per coalition during the 2^n materialization; cancelled
  /// computations return `Status::Cancelled`.
  CancelToken cancel;
};

/// Exact pairwise Shapley interaction indices for all player pairs
/// (a < b), via subset enumeration. Fails when the game exceeds
/// `options.max_players`.
[[nodiscard]] Result<std::vector<Interaction>> ComputeShapleyInteractions(
    const Game& game, const InteractionOptions& options = {});

/// Exact interaction index for one pair.
[[nodiscard]] Result<double> ComputeShapleyInteraction(const Game& game,
                                         std::size_t player_a,
                                         std::size_t player_b,
                                         const InteractionOptions& options = {});

}  // namespace trex::shap

#endif  // TREX_CORE_INTERACTION_H_
