#include "core/repair_game.h"

#include <algorithm>
#include <cstring>
#include <utility>

#include "common/fault.h"
#include "common/logging.h"
#include "table/diff.h"

namespace trex {
namespace {

bool GetOutcomeBit(const std::vector<std::uint64_t>& bits, std::size_t index) {
  return (bits[index / 64] >> (index % 64)) & 1u;
}

void SetOutcomeBit(std::vector<std::uint64_t>* bits, std::size_t index,
                   bool value) {
  if (value) (*bits)[index / 64] |= std::uint64_t{1} << (index % 64);
}

/// Heap payload of a table, excluding the object header (which is
/// already counted inside the owning struct's sizeof).
std::size_t TableHeapBytes(const Table& table) {
  return table.ApproxMemoryBytes() - sizeof(Table);
}

/// The per-thread evaluation scratch: one resident dirty-table copy per
/// thread, owned by whichever box evaluated last on this thread
/// (`owner` is the box's globally unique scratch id). Switching boxes
/// re-copies; staying on one box resets in O(#previous writes).
///
/// Retention trade-off: the copy outlives the owning box (thread-locals
/// cannot be reclaimed from another thread, e.g. when the router evicts
/// an engine) and is not part of `approx_memo_bytes` — a deliberate,
/// bounded cost of one dirty-table copy per evaluating thread, the same
/// order as the shared dirty table itself and reused in place by the
/// next box the thread serves.
struct EvalScratch {
  std::uint64_t owner = 0;
  Table table;
  /// Cells of `table` currently differing from the owner's dirty table.
  std::vector<CellRef> touched;
  /// Per-linear-index scratch marks (all zero between calls), used to
  /// intersect the previous and next write sets so consecutive
  /// evaluations reset/apply only what actually changed.
  std::vector<std::uint8_t> mark;
};

/// Bit-level value equality, stricter than `Value::operator==` (which
/// equates 1 with 1.0 and +0.0 with -0.0): skipping a scratch write is
/// only sound when the resident bytes hash identically to the write.
bool ExactlyEqual(const Value& a, const Value& b) {
  if (a.type() != b.type()) return false;
  switch (a.type()) {
    case ValueType::kNull:
      return true;
    case ValueType::kInt:
      return a.as_int() == b.as_int();
    case ValueType::kDouble: {
      const double x = a.as_double();
      const double y = b.as_double();
      return std::memcmp(&x, &y, sizeof(x)) == 0;
    }
    case ValueType::kString:
      return a.as_string() == b.as_string();
  }
  return false;
}

EvalScratch& ThreadEvalScratch() {
  thread_local EvalScratch scratch;
  return scratch;
}

std::uint64_t NextScratchId() {
  static std::atomic<std::uint64_t> next{1};
  return next.fetch_add(1);
}

}  // namespace

BlackBoxRepair::CacheState::CacheState() : scratch_id(NextScratchId()) {}

Result<BlackBoxRepair> BlackBoxRepair::MakeMultiTarget(
    const repair::RepairAlgorithm* algorithm, dc::DcSet dcs, Table dirty,
    const std::vector<CellRef>& targets) {
  return MakeMultiTarget(algorithm, std::move(dcs),
                         std::make_shared<const Table>(std::move(dirty)),
                         targets);
}

Result<BlackBoxRepair> BlackBoxRepair::MakeMultiTarget(
    const repair::RepairAlgorithm* algorithm, dc::DcSet dcs,
    std::shared_ptr<const Table> dirty, const std::vector<CellRef>& targets) {
  if (algorithm == nullptr) {
    return Status::InvalidArgument("algorithm must not be null");
  }
  if (dirty == nullptr) {
    return Status::InvalidArgument("dirty table must not be null");
  }
  for (const CellRef& target : targets) {
    if (target.row >= dirty->num_rows() ||
        target.col >= dirty->num_columns()) {
      return Status::OutOfRange("target cell " + target.ToString() +
                                " outside the table");
    }
  }
  BlackBoxRepair box;
  box.algorithm_ = algorithm;
  box.dcs_ = std::move(dcs);
  box.dirty_ = std::move(dirty);
  box.state_ = std::make_unique<CacheState>();
  // The delta-evaluation base: every perturbation's fingerprints derive
  // from these in O(#writes).
  box.dirty_->DualFingerprint(&box.dirty_fp64_, &box.dirty_fp128_);
  TREX_ASSIGN_OR_RETURN(box.clean_,
                        algorithm->Repair(box.dcs_, *box.dirty_));
  box.state_->calls.store(1);
  for (const CellRef& target : targets) {
    auto added = box.AddTarget(target);
    TREX_CHECK(added.ok());  // bounds were validated above
  }
  return box;
}

Result<BlackBoxRepair> BlackBoxRepair::Make(
    const repair::RepairAlgorithm* algorithm, dc::DcSet dcs, Table dirty,
    CellRef target) {
  return MakeMultiTarget(algorithm, std::move(dcs), std::move(dirty),
                         {target});
}

Result<std::size_t> BlackBoxRepair::AddTarget(CellRef target) {
  if (target.row >= dirty_->num_rows() ||
      target.col >= dirty_->num_columns()) {
    return Status::OutOfRange("target cell " + target.ToString() +
                              " outside the table");
  }
  if (std::optional<std::size_t> existing = FindTarget(target)) {
    return *existing;
  }
  TargetInfo info;
  info.cell = target;
  info.clean_value = clean_.at(target);
  const Value& dirty_value = dirty_->at(target);
  const bool both_null = dirty_value.is_null() && info.clean_value.is_null();
  info.was_repaired =
      !both_null && (dirty_value.is_null() || info.clean_value.is_null() ||
                     dirty_value != info.clean_value);
  targets_.push_back(std::move(info));
  // Post-seal registration is allowed: resident sealed entries keep
  // their (now short) bitsets and this target's evaluations on them
  // fall back to recompute-on-miss (see file comment).
  target_index_.emplace(target, targets_.size() - 1);
  return targets_.size() - 1;
}

std::optional<std::size_t> BlackBoxRepair::FindTarget(CellRef target) const {
  auto it = target_index_.find(target);
  if (it == target_index_.end()) return std::nullopt;
  return it->second;
}

CellRef BlackBoxRepair::target(std::size_t index) const {
  TREX_CHECK_LT(index, targets_.size());
  return targets_[index].cell;
}

bool BlackBoxRepair::target_was_repaired(std::size_t index) const {
  TREX_CHECK_LT(index, targets_.size());
  return targets_[index].was_repaired;
}

std::size_t BlackBoxRepair::num_algorithm_calls() const {
  return state_->calls.load();
}

std::size_t BlackBoxRepair::num_cache_hits() const {
  return state_->hits.load();
}

std::size_t BlackBoxRepair::num_cross_request_hits() const {
  return state_->cross_request_hits.load();
}

std::size_t BlackBoxRepair::num_memo_evictions() const {
  return state_->evictions.load();
}

std::size_t BlackBoxRepair::num_table_memo_entries() const {
  ReaderLock lock(state_->mu);
  return state_->table_entries;
}

std::size_t BlackBoxRepair::num_eval_table_copies() const {
  return state_->eval_table_copies.load();
}

std::size_t BlackBoxRepair::approx_memo_bytes() const {
  return state_->approx_bytes.load();
}

void BlackBoxRepair::BeginRequest(std::size_t request_id) const {
  state_->current_request.store(request_id);
  MutexLock lock(state_->error_mu);
  state_->eval_error = Status::Ok();
  state_->eval_abort = CancelSource();
}

CancelToken BlackBoxRepair::eval_abort_token() const {
  MutexLock lock(state_->error_mu);
  return state_->eval_abort.token();
}

Status BlackBoxRepair::eval_error() const {
  MutexLock lock(state_->error_mu);
  return state_->eval_error;
}

void BlackBoxRepair::RecordEvalError(const Status& status) const {
  CancelSource abort;
  {
    MutexLock lock(state_->error_mu);
    if (state_->eval_error.ok()) state_->eval_error = status;
    abort = state_->eval_abort;
  }
  // Fire outside the leaf lock: Cancel wakes waiters (e.g. a service
  // backoff parked on a merged token).
  abort.Cancel();
}

bool BlackBoxRepair::Outcome(const Table& repaired,
                             std::size_t target_index) const {
  TREX_CHECK_LT(target_index, targets_.size());
  const TargetInfo& info = targets_[target_index];
  const Value& got = repaired.at(info.cell);
  if (got.is_null() || info.clean_value.is_null()) {
    return got.is_null() && info.clean_value.is_null();
  }
  return got == info.clean_value;
}

std::size_t BlackBoxRepair::EntryPayloadBytes(const CacheEntry& entry) const {
  return sizeof(CacheEntry) + TableHeapBytes(entry.input) +
         TableHeapBytes(entry.repaired) +
         entry.outcomes.capacity() * sizeof(std::uint64_t);
}

void BlackBoxRepair::SealEntry(CacheEntry* entry) const {
  entry->outcomes.assign((targets_.size() + 63) / 64, 0);
  for (std::size_t i = 0; i < targets_.size(); ++i) {
    SetOutcomeBit(&entry->outcomes, i, Outcome(entry->repaired, i));
  }
  entry->covered_targets = targets_.size();
  entry->sealed = true;
  entry->input = Table();
  entry->repaired = Table();
}

void BlackBoxRepair::PopulateEntry(CacheEntry* entry, const Table* input,
                                   Table repaired,
                                   const Hash128& fp128) const {
  entry->fp128 = fp128;
  entry->request_id = state_->current_request.load();
  entry->repaired = std::move(repaired);
  if (sealed_) {
    SealEntry(entry);
    return;
  }
  entry->sealed = false;
  if (input != nullptr && !use_strong_table_hash_) {
    entry->input = *input;
  }
}

void BlackBoxRepair::SealTargets() {
  if (sealed_) return;
  sealed_ = true;
  WriterLock lock(state_->mu);
  std::size_t bytes = 0;
  for (auto& [mask, entry] : state_->mask_cache) {
    if (!entry.sealed) SealEntry(&entry);
    bytes += EntryPayloadBytes(entry);
  }
  for (auto& [fingerprint, bucket] : state_->table_cache) {
    for (CacheEntry& entry : bucket) {
      if (!entry.sealed) SealEntry(&entry);
      bytes += EntryPayloadBytes(entry);
    }
  }
  state_->approx_bytes.store(bytes);
}

bool BlackBoxRepair::EvalConstraintSubset(std::uint64_t mask,
                                          std::size_t target_index) const {
  TREX_CHECK_LE(dcs_.size(), kMaxMaskConstraints)
      << "constraint subset masks support at most 64 constraints; "
      << "split the DcSet or extend the mask representation";
  TREX_CHECK_LT(target_index, targets_.size());
  if (cache_enabled_) {
    ReaderLock lock(state_->mu);
    auto it = state_->mask_cache.find(mask);
    if (it != state_->mask_cache.end()) {
      const CacheEntry& entry = it->second;
      // A sealed entry answers only the targets its bitset covers; a
      // target registered after sealing falls through to a fresh repair
      // run (never a silently wrong bit).
      if (!entry.sealed || target_index < entry.covered_targets) {
        state_->hits.fetch_add(1);
        if (entry.request_id != state_->current_request.load()) {
          state_->cross_request_hits.fetch_add(1);
        }
        return entry.sealed ? GetOutcomeBit(entry.outcomes, target_index)
                            : Outcome(entry.repaired, target_index);
      }
    }
  }
  const dc::DcSet subset = dcs_.Subset(mask);
  auto repaired = [&]() -> Result<Table> {
    TREX_FAULT_INJECT("repair.eval_constraint_miss");
    return algorithm_->Repair(subset, *dirty_);
  }();
  if (!repaired.ok()) {
    // Failure channel, not a crash: record + abort, cache nothing (the
    // memo must never hold an entry a failed repair touched), and let
    // the sweep stop at its next cancel poll.
    RecordEvalError(
        repaired.status().WithPrefix("constraint-subset repair"));
    return false;
  }
  state_->calls.fetch_add(1);
  const bool outcome = Outcome(*repaired, target_index);
  if (cache_enabled_) {
    WriterLock lock(state_->mu);
    auto [it, inserted] = state_->mask_cache.try_emplace(mask);
    if (!inserted) {
      // A concurrent miss filled this mask, or it is the sealed entry
      // that did not cover `target_index`: refresh only in the latter
      // case, re-sealing over the now-larger target set.
      if (!it->second.sealed || target_index < it->second.covered_targets) {
        return outcome;
      }
      state_->approx_bytes.fetch_sub(EntryPayloadBytes(it->second));
    }
    PopulateEntry(&it->second, nullptr, std::move(*repaired), Hash128{});
    state_->approx_bytes.fetch_add(EntryPayloadBytes(it->second));
  }
  return outcome;
}

void BlackBoxRepair::EvictLruTableEntry() const {
  // O(#entries) scan for the LRU victim. Eviction only runs after a cache
  // miss, i.e. after a full repair run, which dwarfs a scan over at most
  // `max_memo_entries_` entries.
  auto victim_bucket = state_->table_cache.end();
  std::size_t victim_index = 0;
  std::uint64_t victim_tick = 0;
  for (auto it = state_->table_cache.begin(); it != state_->table_cache.end();
       ++it) {
    for (std::size_t i = 0; i < it->second.size(); ++i) {
      const std::uint64_t used = it->second[i].last_used;
      if (victim_bucket == state_->table_cache.end() || used < victim_tick) {
        victim_bucket = it;
        victim_index = i;
        victim_tick = used;
      }
    }
  }
  TREX_CHECK(victim_bucket != state_->table_cache.end());
  std::vector<CacheEntry>& bucket = victim_bucket->second;
  state_->approx_bytes.fetch_sub(EntryPayloadBytes(bucket[victim_index]));
  bucket.erase(bucket.begin() +
               static_cast<std::ptrdiff_t>(victim_index));
  if (bucket.empty()) state_->table_cache.erase(victim_bucket);
  --state_->table_entries;
  state_->evictions.fetch_add(1);
}

const Table& BlackBoxRepair::MaterializeScratch(
    std::span<const CellWrite> writes) const {
  EvalScratch& scratch = ThreadEvalScratch();
  if (scratch.owner != state_->scratch_id) {
    // First evaluation of this box on this thread (or the thread last
    // served another box): pay one full copy, then amortize it across
    // every subsequent miss.
    scratch.table = *dirty_;
    scratch.touched.clear();
    scratch.mark.assign(dirty_->num_cells(), 0);
    scratch.owner = state_->scratch_id;
    state_->eval_table_copies.fetch_add(1);
  }
  // Reset-from-dirty intersected with the new write set: undo only the
  // previously-written cells not written again, and apply only writes
  // whose value actually changes — consecutive coalition evaluations
  // differ by one write, so this is O(changed), not O(write set).
  for (const CellWrite& write : writes) {
    scratch.mark[dirty_->LinearIndex(write.cell)] = 1;
  }
  for (const CellRef& cell : scratch.touched) {
    if (!scratch.mark[dirty_->LinearIndex(cell)]) {
      scratch.table.Set(cell, dirty_->at(cell));
    }
  }
  scratch.touched.clear();
  for (const CellWrite& write : writes) {
    if (!ExactlyEqual(scratch.table.at(write.cell), write.value)) {
      scratch.table.Set(write.cell, write.value);
    }
    scratch.touched.push_back(write.cell);
    scratch.mark[dirty_->LinearIndex(write.cell)] = 0;  // leave all-zero
  }
  return scratch.table;
}

template <typename VerifyInput>
std::optional<bool> BlackBoxRepair::LookupTableMemo(
    std::uint64_t fp64, const Hash128& fp128, std::size_t target_index,
    VerifyInput&& verify_input) const {
  if (!cache_enabled_) return std::nullopt;
  ReaderLock lock(state_->mu);
  auto it = state_->table_cache.find(fp64);
  if (it == state_->table_cache.end()) return std::nullopt;
  for (CacheEntry& entry : it->second) {
    // Never trust the 64-bit bucket fingerprint alone: a collision must
    // fall through to a fresh repair run, never return another table's
    // outcome. Verification is the 128-bit fingerprint, plus the
    // caller's full-content check whenever the entry retains its input.
    if (entry.fp128 != fp128) continue;
    if (entry.input.num_columns() != 0 && !verify_input(entry.input)) {
      continue;
    }
    if (entry.sealed && target_index >= entry.covered_targets) {
      break;  // same input, uncovered target: recompute and extend
    }
    state_->hits.fetch_add(1);
    if (entry.request_id != state_->current_request.load()) {
      state_->cross_request_hits.fetch_add(1);
    }
    // Touch the LRU clock; atomic_ref because other readers may touch
    // the same entry under the shared lock concurrently.
    std::atomic_ref<std::uint64_t>(entry.last_used)
        .store(state_->tick.fetch_add(1) + 1, std::memory_order_relaxed);
    return entry.sealed ? GetOutcomeBit(entry.outcomes, target_index)
                        : Outcome(entry.repaired, target_index);
  }
  return std::nullopt;
}

bool BlackBoxRepair::EvalTable(const Table& perturbed,
                               std::size_t target_index) const {
  TREX_CHECK_LT(target_index, targets_.size());
  std::uint64_t fp64 = 0;
  Hash128 fp128;
  perturbed.DualFingerprint(&fp64, &fp128);
  if (table_bucket_fn_) fp64 = table_bucket_fn_(perturbed);
  const std::optional<bool> hit =
      LookupTableMemo(fp64, fp128, target_index,
                      [&](const Table& input) { return input == perturbed; });
  if (hit.has_value()) return *hit;
  return EvalTableMiss(perturbed, fp64, fp128, target_index);
}

bool BlackBoxRepair::EvalPerturbation(std::span<const CellWrite> writes,
                                      std::size_t target_index) const {
  std::uint64_t fp64 = 0;
  Hash128 fp128;
  dirty_->DeltaFingerprint(dirty_fp64_, dirty_fp128_, writes, &fp64, &fp128);
  return EvalPerturbation(writes, fp64, fp128, target_index);
}

bool BlackBoxRepair::EvalPerturbation(std::span<const CellWrite> writes,
                                      std::uint64_t fp64,
                                      const Hash128& fp128,
                                      std::size_t target_index) const {
  TREX_CHECK_LT(target_index, targets_.size());
  if (table_bucket_fn_) {
    // The test-only bucket override takes a table; materialize eagerly.
    return EvalTable(MaterializeScratch(writes), target_index);
  }
  // Entries retaining their input verify in full against dirty+writes —
  // an overlay comparison, nothing materialized.
  const std::optional<bool> hit =
      LookupTableMemo(fp64, fp128, target_index, [&](const Table& input) {
        return input.EqualsWithWrites(*dirty_, writes);
      });
  if (hit.has_value()) return *hit;
  // Only a miss materializes, into the per-thread scratch.
  return EvalTableMiss(MaterializeScratch(writes), fp64, fp128, target_index);
}

bool BlackBoxRepair::EvalTableMiss(const Table& perturbed, std::uint64_t fp64,
                                   const Hash128& fp128,
                                   std::size_t target_index) const {
  auto repaired = [&]() -> Result<Table> {
    TREX_FAULT_INJECT("repair.eval_table_miss");
    return algorithm_->Repair(dcs_, perturbed);
  }();
  if (!repaired.ok()) {
    // See EvalConstraintSubset: record + abort, and return before any
    // cache write so no CacheEntry (sealed or unsealed) is poisoned.
    RecordEvalError(repaired.status().WithPrefix("perturbed-table repair"));
    return false;
  }
  state_->calls.fetch_add(1);
  const bool outcome = Outcome(*repaired, target_index);
  if (!cache_enabled_) return outcome;
  WriterLock lock(state_->mu);
  std::vector<CacheEntry>& bucket = state_->table_cache[fp64];
  // Re-check under the exclusive lock: a concurrent miss on the same
  // table may have inserted while we ran the repair — don't retain a
  // duplicate entry. A resident sealed entry that does not cover
  // `target_index` is extended in place instead.
  for (CacheEntry& entry : bucket) {
    if (entry.fp128 != fp128) continue;
    if (entry.input.num_columns() != 0 && entry.input != perturbed) continue;
    if (entry.sealed && target_index >= entry.covered_targets) {
      state_->approx_bytes.fetch_sub(EntryPayloadBytes(entry));
      PopulateEntry(&entry, &perturbed, std::move(*repaired), fp128);
      state_->approx_bytes.fetch_add(EntryPayloadBytes(entry));
      // The rebuilt entry is the freshest — bump its LRU clock so a
      // capped memo does not evict the repair run we just paid for.
      entry.last_used = state_->tick.fetch_add(1) + 1;
    }
    return outcome;
  }
  CacheEntry entry;
  PopulateEntry(&entry, &perturbed, std::move(*repaired), fp128);
  entry.last_used = state_->tick.fetch_add(1) + 1;
  state_->approx_bytes.fetch_add(EntryPayloadBytes(entry));
  bucket.push_back(std::move(entry));
  ++state_->table_entries;
  while (max_memo_entries_ > 0 &&
         state_->table_entries > max_memo_entries_) {
    EvictLruTableEntry();
  }
  return outcome;
}

double ConstraintGame::Value(const shap::Coalition& coalition) const {
  TREX_CHECK_EQ(coalition.size(), num_players());
  // Guard before building the mask: shifting past bit 63 below would be
  // undefined behavior, silently corrupting the subset on wrap.
  TREX_CHECK_LE(coalition.size(), BlackBoxRepair::kMaxMaskConstraints)
      << "constraint games support at most 64 constraints";
  std::uint64_t mask = 0;
  for (std::size_t i = 0; i < coalition.size(); ++i) {
    if (coalition[i]) mask |= std::uint64_t{1} << i;
  }
  return box_->EvalConstraintSubset(mask, target_index_) ? 1.0 : 0.0;
}

CellGame::CellGame(const BlackBoxRepair* box, std::vector<CellRef> players,
                   std::size_t target_index)
    : box_(box),
      players_(std::move(players)),
      target_index_(target_index) {
  box_->dirty_fingerprints(&base64_, &base128_);
  null_deltas_.reserve(players_.size());
  for (const CellRef& player : players_) {
    null_deltas_.push_back(box_->dirty().WriteDelta(player, Value::Null()));
  }
}

double CellGame::Value(const shap::Coalition& coalition) const {
  TREX_CHECK_EQ(coalition.size(), players_.size());
  // Absent players become a write set over the dirty table; the
  // perturbation's fingerprints are the base XOR the precomputed
  // per-player deltas (no hashing here), and the perturbed table is
  // only materialized on a memo miss (then into the per-thread
  // scratch, never a fresh copy per coalition).
  thread_local std::vector<CellWrite> writes;
  writes.clear();
  std::uint64_t fp64 = base64_;
  Hash128 fp128 = base128_;
  for (std::size_t i = 0; i < players_.size(); ++i) {
    if (!coalition[i]) {
      writes.push_back({players_[i], Value::Null()});
      fp64 ^= null_deltas_[i].fp64;
      fp128 ^= null_deltas_[i].fp128;
    }
  }
  return box_->EvalPerturbation(writes, fp64, fp128, target_index_) ? 1.0
                                                                    : 0.0;
}

}  // namespace trex
