#include "core/repair_game.h"

#include <algorithm>
#include <mutex>
#include <utility>

#include "common/logging.h"
#include "table/diff.h"

namespace trex {

Result<BlackBoxRepair> BlackBoxRepair::MakeMultiTarget(
    const repair::RepairAlgorithm* algorithm, dc::DcSet dcs, Table dirty,
    const std::vector<CellRef>& targets) {
  return MakeMultiTarget(algorithm, std::move(dcs),
                         std::make_shared<const Table>(std::move(dirty)),
                         targets);
}

Result<BlackBoxRepair> BlackBoxRepair::MakeMultiTarget(
    const repair::RepairAlgorithm* algorithm, dc::DcSet dcs,
    std::shared_ptr<const Table> dirty, const std::vector<CellRef>& targets) {
  if (algorithm == nullptr) {
    return Status::InvalidArgument("algorithm must not be null");
  }
  if (dirty == nullptr) {
    return Status::InvalidArgument("dirty table must not be null");
  }
  for (const CellRef& target : targets) {
    if (target.row >= dirty->num_rows() ||
        target.col >= dirty->num_columns()) {
      return Status::OutOfRange("target cell " + target.ToString() +
                                " outside the table");
    }
  }
  BlackBoxRepair box;
  box.algorithm_ = algorithm;
  box.dcs_ = std::move(dcs);
  box.dirty_ = std::move(dirty);
  box.state_ = std::make_unique<CacheState>();
  TREX_ASSIGN_OR_RETURN(box.clean_,
                        algorithm->Repair(box.dcs_, *box.dirty_));
  box.state_->calls.store(1);
  for (const CellRef& target : targets) {
    auto added = box.AddTarget(target);
    TREX_CHECK(added.ok());  // bounds were validated above
  }
  return box;
}

Result<BlackBoxRepair> BlackBoxRepair::Make(
    const repair::RepairAlgorithm* algorithm, dc::DcSet dcs, Table dirty,
    CellRef target) {
  return MakeMultiTarget(algorithm, std::move(dcs), std::move(dirty),
                         {target});
}

Result<std::size_t> BlackBoxRepair::AddTarget(CellRef target) {
  if (target.row >= dirty_->num_rows() ||
      target.col >= dirty_->num_columns()) {
    return Status::OutOfRange("target cell " + target.ToString() +
                              " outside the table");
  }
  if (std::optional<std::size_t> existing = FindTarget(target)) {
    return *existing;
  }
  TargetInfo info;
  info.cell = target;
  info.clean_value = clean_.at(target);
  const Value& dirty_value = dirty_->at(target);
  const bool both_null = dirty_value.is_null() && info.clean_value.is_null();
  info.was_repaired =
      !both_null && (dirty_value.is_null() || info.clean_value.is_null() ||
                     dirty_value != info.clean_value);
  targets_.push_back(std::move(info));
  return targets_.size() - 1;
}

std::optional<std::size_t> BlackBoxRepair::FindTarget(CellRef target) const {
  for (std::size_t i = 0; i < targets_.size(); ++i) {
    if (targets_[i].cell == target) return i;
  }
  return std::nullopt;
}

CellRef BlackBoxRepair::target(std::size_t index) const {
  TREX_CHECK_LT(index, targets_.size());
  return targets_[index].cell;
}

bool BlackBoxRepair::target_was_repaired(std::size_t index) const {
  TREX_CHECK_LT(index, targets_.size());
  return targets_[index].was_repaired;
}

std::size_t BlackBoxRepair::num_algorithm_calls() const {
  return state_->calls.load();
}

std::size_t BlackBoxRepair::num_cache_hits() const {
  return state_->hits.load();
}

std::size_t BlackBoxRepair::num_cross_request_hits() const {
  return state_->cross_request_hits.load();
}

std::size_t BlackBoxRepair::num_memo_evictions() const {
  return state_->evictions.load();
}

std::size_t BlackBoxRepair::num_table_memo_entries() const {
  std::shared_lock<std::shared_mutex> lock(state_->mu);
  return state_->table_entries;
}

void BlackBoxRepair::BeginRequest(std::size_t request_id) const {
  state_->current_request.store(request_id);
}

bool BlackBoxRepair::Outcome(const Table& repaired,
                             std::size_t target_index) const {
  TREX_CHECK_LT(target_index, targets_.size());
  const TargetInfo& info = targets_[target_index];
  const Value& got = repaired.at(info.cell);
  if (got.is_null() || info.clean_value.is_null()) {
    return got.is_null() && info.clean_value.is_null();
  }
  return got == info.clean_value;
}

bool BlackBoxRepair::EvalConstraintSubset(std::uint64_t mask,
                                          std::size_t target_index) const {
  TREX_CHECK_LE(dcs_.size(), kMaxMaskConstraints)
      << "constraint subset masks support at most 64 constraints; "
      << "split the DcSet or extend the mask representation";
  if (cache_enabled_) {
    std::shared_lock<std::shared_mutex> lock(state_->mu);
    auto it = state_->mask_cache.find(mask);
    if (it != state_->mask_cache.end()) {
      state_->hits.fetch_add(1);
      if (it->second.request_id != state_->current_request.load()) {
        state_->cross_request_hits.fetch_add(1);
      }
      return Outcome(it->second.repaired, target_index);
    }
  }
  const dc::DcSet subset = dcs_.Subset(mask);
  auto repaired = algorithm_->Repair(subset, *dirty_);
  TREX_CHECK(repaired.ok()) << "repair failed on constraint subset: "
                            << repaired.status().ToString();
  state_->calls.fetch_add(1);
  const bool outcome = Outcome(*repaired, target_index);
  if (cache_enabled_) {
    std::unique_lock<std::shared_mutex> lock(state_->mu);
    CacheEntry entry;
    entry.repaired = std::move(*repaired);
    entry.request_id = state_->current_request.load();
    state_->mask_cache.emplace(mask, std::move(entry));
  }
  return outcome;
}

void BlackBoxRepair::EvictLruTableEntry() const {
  // O(#entries) scan for the LRU victim. Eviction only runs after a cache
  // miss, i.e. after a full repair run, which dwarfs a scan over at most
  // `max_memo_entries_` entries.
  auto victim_bucket = state_->table_cache.end();
  std::size_t victim_index = 0;
  std::uint64_t victim_tick = 0;
  for (auto it = state_->table_cache.begin(); it != state_->table_cache.end();
       ++it) {
    for (std::size_t i = 0; i < it->second.size(); ++i) {
      const std::uint64_t used = it->second[i].last_used;
      if (victim_bucket == state_->table_cache.end() || used < victim_tick) {
        victim_bucket = it;
        victim_index = i;
        victim_tick = used;
      }
    }
  }
  TREX_CHECK(victim_bucket != state_->table_cache.end());
  std::vector<CacheEntry>& bucket = victim_bucket->second;
  bucket.erase(bucket.begin() +
               static_cast<std::ptrdiff_t>(victim_index));
  if (bucket.empty()) state_->table_cache.erase(victim_bucket);
  --state_->table_entries;
  state_->evictions.fetch_add(1);
}

bool BlackBoxRepair::EvalTable(const Table& perturbed,
                               std::size_t target_index) const {
  // Under strong hashing, hit verification compares 128-bit content
  // hashes instead of full tables, so entries need not retain their
  // input copy. Both widths come from one content traversal — tables
  // are hashed once per evaluation, on the hot path.
  std::uint64_t fingerprint = 0;
  Hash128 strong_hash;
  if (cache_enabled_ && use_strong_table_hash_) {
    perturbed.DualFingerprint(&fingerprint, &strong_hash);
  } else {
    fingerprint = perturbed.Fingerprint();
  }
  if (table_bucket_fn_) fingerprint = table_bucket_fn_(perturbed);
  auto matches = [&](const CacheEntry& entry) {
    // Never trust the 64-bit bucket fingerprint alone: a collision must
    // fall through to a fresh repair run, never return another table's
    // outcome. Verification is full content by default, 128-bit strong
    // hash under `use_strong_table_hash`.
    return use_strong_table_hash_ ? entry.strong_hash == strong_hash
                                  : entry.input == perturbed;
  };
  if (cache_enabled_) {
    std::shared_lock<std::shared_mutex> lock(state_->mu);
    auto it = state_->table_cache.find(fingerprint);
    if (it != state_->table_cache.end()) {
      for (CacheEntry& entry : it->second) {
        if (matches(entry)) {
          state_->hits.fetch_add(1);
          if (entry.request_id != state_->current_request.load()) {
            state_->cross_request_hits.fetch_add(1);
          }
          // Touch the LRU clock; atomic_ref because other readers may
          // touch the same entry under the shared lock concurrently.
          std::atomic_ref<std::uint64_t>(entry.last_used)
              .store(state_->tick.fetch_add(1) + 1,
                     std::memory_order_relaxed);
          return Outcome(entry.repaired, target_index);
        }
      }
    }
  }
  auto repaired = algorithm_->Repair(dcs_, perturbed);
  TREX_CHECK(repaired.ok()) << "repair failed on perturbed table: "
                            << repaired.status().ToString();
  state_->calls.fetch_add(1);
  const bool outcome = Outcome(*repaired, target_index);
  if (cache_enabled_) {
    std::unique_lock<std::shared_mutex> lock(state_->mu);
    std::vector<CacheEntry>& bucket = state_->table_cache[fingerprint];
    // Re-check under the exclusive lock: a concurrent miss on the same
    // table may have inserted while we ran the repair — don't retain a
    // duplicate pair of full-table copies.
    bool already_cached = false;
    for (const CacheEntry& entry : bucket) {
      if (matches(entry)) {
        already_cached = true;
        break;
      }
    }
    if (!already_cached) {
      CacheEntry entry;
      if (use_strong_table_hash_) {
        entry.strong_hash = strong_hash;
      } else {
        entry.input = perturbed;
      }
      entry.repaired = std::move(*repaired);
      entry.request_id = state_->current_request.load();
      entry.last_used = state_->tick.fetch_add(1) + 1;
      bucket.push_back(std::move(entry));
      ++state_->table_entries;
      while (max_memo_entries_ > 0 &&
             state_->table_entries > max_memo_entries_) {
        EvictLruTableEntry();
      }
    }
  }
  return outcome;
}

double ConstraintGame::Value(const shap::Coalition& coalition) const {
  TREX_CHECK_EQ(coalition.size(), num_players());
  // Guard before building the mask: shifting past bit 63 below would be
  // undefined behavior, silently corrupting the subset on wrap.
  TREX_CHECK_LE(coalition.size(), BlackBoxRepair::kMaxMaskConstraints)
      << "constraint games support at most 64 constraints";
  std::uint64_t mask = 0;
  for (std::size_t i = 0; i < coalition.size(); ++i) {
    if (coalition[i]) mask |= std::uint64_t{1} << i;
  }
  return box_->EvalConstraintSubset(mask, target_index_) ? 1.0 : 0.0;
}

double CellGame::Value(const shap::Coalition& coalition) const {
  TREX_CHECK_EQ(coalition.size(), players_.size());
  Table perturbed = box_->dirty();
  for (std::size_t i = 0; i < players_.size(); ++i) {
    if (!coalition[i]) perturbed.Set(players_[i], Value::Null());
  }
  return box_->EvalTable(perturbed, target_index_) ? 1.0 : 0.0;
}

}  // namespace trex
