#include "core/repair_game.h"

#include "common/logging.h"
#include "table/diff.h"

namespace trex {

Result<BlackBoxRepair> BlackBoxRepair::Make(
    const repair::RepairAlgorithm* algorithm, dc::DcSet dcs, Table dirty,
    CellRef target) {
  if (algorithm == nullptr) {
    return Status::InvalidArgument("algorithm must not be null");
  }
  if (target.row >= dirty.num_rows() || target.col >= dirty.num_columns()) {
    return Status::OutOfRange("target cell " + target.ToString() +
                              " outside the table");
  }
  BlackBoxRepair box;
  box.algorithm_ = algorithm;
  box.dcs_ = std::move(dcs);
  box.dirty_ = std::move(dirty);
  box.target_ = target;
  TREX_ASSIGN_OR_RETURN(box.clean_,
                        algorithm->Repair(box.dcs_, box.dirty_));
  box.calls_ = 1;
  box.clean_target_value_ = box.clean_.at(target);
  const Value& dirty_value = box.dirty_.at(target);
  const bool both_null =
      dirty_value.is_null() && box.clean_target_value_.is_null();
  box.target_was_repaired_ =
      !both_null && (dirty_value.is_null() ||
                     box.clean_target_value_.is_null() ||
                     dirty_value != box.clean_target_value_);
  return box;
}

bool BlackBoxRepair::Outcome(const Table& repaired) const {
  const Value& got = repaired.at(target_);
  if (got.is_null() || clean_target_value_.is_null()) {
    return got.is_null() && clean_target_value_.is_null();
  }
  return got == clean_target_value_;
}

bool BlackBoxRepair::EvalConstraintSubset(std::uint64_t mask) const {
  if (cache_enabled_) {
    auto it = mask_cache_.find(mask);
    if (it != mask_cache_.end()) {
      ++hits_;
      return it->second;
    }
  }
  const dc::DcSet subset = dcs_.Subset(mask);
  auto repaired = algorithm_->Repair(subset, dirty_);
  TREX_CHECK(repaired.ok()) << "repair failed on constraint subset: "
                            << repaired.status().ToString();
  ++calls_;
  const bool outcome = Outcome(*repaired);
  if (cache_enabled_) mask_cache_.emplace(mask, outcome);
  return outcome;
}

bool BlackBoxRepair::EvalTable(const Table& perturbed) const {
  const std::uint64_t fingerprint = perturbed.Fingerprint();
  if (cache_enabled_) {
    auto it = table_cache_.find(fingerprint);
    if (it != table_cache_.end()) {
      ++hits_;
      return it->second;
    }
  }
  auto repaired = algorithm_->Repair(dcs_, perturbed);
  TREX_CHECK(repaired.ok()) << "repair failed on perturbed table: "
                            << repaired.status().ToString();
  ++calls_;
  const bool outcome = Outcome(*repaired);
  if (cache_enabled_) table_cache_.emplace(fingerprint, outcome);
  return outcome;
}

double ConstraintGame::Value(const shap::Coalition& coalition) const {
  TREX_CHECK_EQ(coalition.size(), num_players());
  std::uint64_t mask = 0;
  for (std::size_t i = 0; i < coalition.size(); ++i) {
    if (coalition[i]) mask |= std::uint64_t{1} << i;
  }
  return box_->EvalConstraintSubset(mask) ? 1.0 : 0.0;
}

double CellGame::Value(const shap::Coalition& coalition) const {
  TREX_CHECK_EQ(coalition.size(), players_.size());
  Table perturbed = box_->dirty();
  for (std::size_t i = 0; i < players_.size(); ++i) {
    if (!coalition[i]) perturbed.Set(players_[i], Value::Null());
  }
  return box_->EvalTable(perturbed) ? 1.0 : 0.0;
}

}  // namespace trex
