// Counterfactual constraint explanations: the *minimal removal sets*.
//
// Shapley values rank constraints by average marginal contribution; the
// complementary actionable question in the demo loop is "what is the
// least I must remove so this repair stops happening?". A removal set R
// is a constraint subset with Alg|t[A](C \ R, T^d) = 0; we enumerate the
// inclusion-minimal ones. For the paper's running example they are
// {C1, C3} and {C2, C3}: C3 must go, together with either half of the
// C1-C2 pipeline — exactly the structure Examples 2.3/1.1 describe in
// prose.

#ifndef TREX_CORE_COUNTERFACTUAL_H_
#define TREX_CORE_COUNTERFACTUAL_H_

#include <vector>

#include "common/status.h"
#include "core/game.h"
#include "common/cancel.h"

namespace trex::shap {

/// Options for removal-set enumeration.
struct CounterfactualOptions {
  /// Largest removal-set size searched (cost grows as C(n, size)).
  std::size_t max_set_size = 3;
  /// Player cap (each candidate costs one characteristic evaluation).
  std::size_t max_players = 20;
  /// Polled per candidate set; cancelled searches return
  /// `Status::Cancelled`.
  CancelToken cancel;
};

/// Enumerates inclusion-minimal player sets R with v(N \ R) = 0, in
/// increasing size then lexicographic order. Requires v(N) != 0 (there
/// must be something to counterfactually destroy); fails otherwise.
[[nodiscard]] Result<std::vector<std::vector<std::size_t>>> MinimalRemovalSets(
    const Game& game, const CounterfactualOptions& options = {});

}  // namespace trex::shap

#endif  // TREX_CORE_COUNTERFACTUAL_H_
