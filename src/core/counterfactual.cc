#include "core/counterfactual.h"

#include <algorithm>

namespace trex::shap {
namespace {

/// True iff `small` ⊆ `large` (both sorted ascending).
bool IsSubset(const std::vector<std::size_t>& small,
              const std::vector<std::size_t>& large) {
  return std::includes(large.begin(), large.end(), small.begin(),
                       small.end());
}

/// Emits all size-k subsets of {0..n-1} in lexicographic order.
template <typename Fn>
void ForEachSubset(std::size_t n, std::size_t k, Fn&& fn) {
  std::vector<std::size_t> indices(k);
  for (std::size_t i = 0; i < k; ++i) indices[i] = i;
  for (;;) {
    fn(indices);
    // Advance to the next combination.
    std::size_t i = k;
    while (i > 0) {
      --i;
      if (indices[i] != i + n - k) {
        ++indices[i];
        for (std::size_t j = i + 1; j < k; ++j) {
          indices[j] = indices[j - 1] + 1;
        }
        break;
      }
      if (i == 0) return;
    }
    if (k == 0) return;
  }
}

}  // namespace

Result<std::vector<std::vector<std::size_t>>> MinimalRemovalSets(
    const Game& game, const CounterfactualOptions& options) {
  const std::size_t n = game.num_players();
  if (n == 0) {
    return Status::InvalidArgument("game has no players");
  }
  if (n > options.max_players) {
    return Status::InvalidArgument(
        "removal-set search over " + std::to_string(n) +
        " players exceeds the configured cap of " +
        std::to_string(options.max_players));
  }
  Coalition everyone(n, true);
  if (game.Value(everyone) == 0.0) {
    return Status::InvalidArgument(
        "v(N) is already 0 — nothing to counterfactually remove");
  }

  std::vector<std::vector<std::size_t>> minimal;
  const std::size_t max_size = std::min(options.max_set_size, n);
  for (std::size_t size = 1; size <= max_size; ++size) {
    ForEachSubset(n, size, [&](const std::vector<std::size_t>& removal) {
      if (options.cancel.cancelled()) return;
      // Minimality: skip supersets of already-found sets.
      for (const auto& found : minimal) {
        if (IsSubset(found, removal)) return;
      }
      Coalition coalition(n, true);
      for (std::size_t player : removal) coalition[player] = false;
      if (game.Value(coalition) == 0.0) {
        minimal.push_back(removal);
      }
    });
    if (options.cancel.cancelled()) {
      return Status::Cancelled("removal-set search cancelled");
    }
  }
  return minimal;
}

}  // namespace trex::shap
