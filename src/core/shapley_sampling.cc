#include "core/shapley_sampling.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/logging.h"
#include "common/thread_pool.h"

namespace trex::shap {

void RunningStat::Add(double x) {
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

void RunningStat::Merge(const RunningStat& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(count_);
  const double nb = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double n = na + nb;
  mean_ += delta * nb / n;
  m2_ += other.m2_ + delta * delta * na * nb / n;
  count_ += other.count_;
}

std::uint64_t ShardSeed(std::uint64_t seed, std::size_t shard) {
  std::uint64_t state =
      seed + 0x9e3779b97f4a7c15ULL * (static_cast<std::uint64_t>(shard) + 1);
  return SplitMix64(&state);
}

double RunningStat::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStat::std_error() const {
  if (count_ < 2) return 0.0;
  return std::sqrt(variance() / static_cast<double>(count_));
}

Estimate RunningStat::ToEstimate() const {
  Estimate e;
  e.value = mean_;
  e.std_error = std_error();
  e.num_samples = count_;
  return e;
}

namespace {

/// One marginal-contribution sample of `player` for a given permutation:
/// v(before ∪ {player}) − v(before), where `before` is the set of players
/// preceding `player` in `perm`.
double MarginalForPlayer(const Game& game,
                         const std::vector<std::size_t>& perm,
                         std::size_t player) {
  const std::size_t n = game.num_players();
  Coalition coalition(n, false);
  for (std::size_t pos = 0; pos < n; ++pos) {
    if (perm[pos] == player) break;
    coalition[perm[pos]] = true;
  }
  const double without = game.Value(coalition);
  coalition[player] = true;
  const double with = game.Value(coalition);
  return with - without;
}

bool Converged(const std::vector<RunningStat>& stats, double target) {
  for (const RunningStat& s : stats) {
    if (s.count() < 16) return false;
    if (s.std_error() > target) return false;
  }
  return true;
}

}  // namespace

Result<Estimate> EstimateShapleyForPlayer(const Game& game,
                                          std::size_t player,
                                          const SamplingOptions& options) {
  const std::size_t n = game.num_players();
  if (player >= n) {
    return Status::OutOfRange("player " + std::to_string(player) +
                              " out of range for " + std::to_string(n) +
                              "-player game");
  }
  if (options.num_samples == 0) {
    return Status::InvalidArgument("num_samples must be positive");
  }
  Rng rng(options.seed);
  RunningStat stat;
  std::vector<RunningStat> stats_view(1);
  for (std::size_t i = 0; i < options.num_samples; ++i) {
    if (options.cancel.cancelled()) {
      return Status::Cancelled("Shapley sampling cancelled");
    }
    std::vector<std::size_t> perm = rng.Permutation(n);
    stat.Add(MarginalForPlayer(game, perm, player));
    if (options.antithetic) {
      std::reverse(perm.begin(), perm.end());
      stat.Add(MarginalForPlayer(game, perm, player));
    }
    if (options.target_std_error.has_value() &&
        (i + 1) % options.check_interval == 0) {
      stats_view[0] = stat;
      if (Converged(stats_view, *options.target_std_error)) break;
    }
  }
  return stat.ToEstimate();
}

Result<Estimate> EstimateShapleyStratified(const Game& game,
                                           std::size_t player,
                                           const SamplingOptions& options) {
  const std::size_t n = game.num_players();
  if (player >= n) {
    return Status::OutOfRange("player " + std::to_string(player) +
                              " out of range for " + std::to_string(n) +
                              "-player game");
  }
  if (options.num_samples == 0) {
    return Status::InvalidArgument("num_samples must be positive");
  }
  Rng rng(options.seed);
  const std::size_t per_stratum =
      std::max<std::size_t>(1, options.num_samples / n);

  // Others = all players but `player`; a stratum-s coalition is a
  // uniform size-s subset of them (partial Fisher-Yates prefix).
  std::vector<std::size_t> others;
  others.reserve(n - 1);
  for (std::size_t i = 0; i < n; ++i) {
    if (i != player) others.push_back(i);
  }

  std::vector<RunningStat> strata(n);
  Coalition coalition(n, false);
  for (std::size_t s = 0; s < n; ++s) {  // coalition sizes 0..n-1
    for (std::size_t sample = 0; sample < per_stratum; ++sample) {
      if (options.cancel.cancelled()) {
        return Status::Cancelled("stratified Shapley sampling cancelled");
      }
      // Uniform size-s subset of `others`.
      for (std::size_t i = 0; i < s; ++i) {
        const std::size_t j =
            i + static_cast<std::size_t>(rng.UniformUint64(
                    others.size() - i));
        std::swap(others[i], others[j]);
      }
      std::fill(coalition.begin(), coalition.end(), false);
      for (std::size_t i = 0; i < s; ++i) coalition[others[i]] = true;
      const double without = game.Value(coalition);
      coalition[player] = true;
      const double with = game.Value(coalition);
      coalition[player] = false;
      strata[s].Add(with - without);
    }
  }

  // Stratified mean = (1/n) Σ_s mean_s; variance adds per stratum.
  Estimate e;
  double variance = 0;
  std::size_t total = 0;
  for (const RunningStat& stat : strata) {
    e.value += stat.mean() / static_cast<double>(n);
    if (stat.count() > 1) {
      variance += stat.variance() /
                  (static_cast<double>(stat.count()) *
                   static_cast<double>(n) * static_cast<double>(n));
    }
    total += stat.count();
  }
  e.std_error = std::sqrt(variance);
  e.num_samples = total;
  return e;
}

Result<TopKResult> EstimateTopKPlayers(const Game& game,
                                       const TopKOptions& options) {
  const std::size_t n = game.num_players();
  if (n == 0) return TopKResult{};
  if (options.k == 0) {
    return Status::InvalidArgument("k must be positive");
  }
  if (options.batch == 0 || options.max_samples == 0) {
    return Status::InvalidArgument("batch and max_samples must be positive");
  }

  Rng rng(options.seed);
  std::vector<RunningStat> stats(n);
  TopKResult result;

  auto current_ranking = [&] {
    std::vector<std::size_t> order(n);
    std::iota(order.begin(), order.end(), std::size_t{0});
    std::stable_sort(order.begin(), order.end(),
                     [&stats](std::size_t a, std::size_t b) {
                       return stats[a].mean() > stats[b].mean();
                     });
    return order;
  };

  while (result.sweeps < options.max_samples) {
    for (std::size_t i = 0; i < options.batch; ++i) {
      if (options.cancel.cancelled()) {
        return Status::Cancelled("top-k Shapley sampling cancelled");
      }
      const std::vector<std::size_t> perm = rng.Permutation(n);
      Coalition coalition(n, false);
      double prev = game.Value(coalition);
      for (std::size_t pos = 0; pos < n; ++pos) {
        coalition[perm[pos]] = true;
        const double curr = game.Value(coalition);
        stats[perm[pos]].Add(curr - prev);
        prev = curr;
      }
      ++result.sweeps;
    }
    if (options.k >= n) {
      result.separated = true;  // nothing to separate from
      break;
    }
    const std::vector<std::size_t> order = current_ranking();
    const RunningStat& kth = stats[order[options.k - 1]];
    const RunningStat& next = stats[order[options.k]];
    const double lower = kth.mean() - options.z * kth.std_error();
    const double upper = next.mean() + options.z * next.std_error();
    if (kth.count() >= 8 && lower > upper) {
      result.separated = true;
      break;
    }
  }

  result.estimates.reserve(n);
  for (const RunningStat& stat : stats) {
    result.estimates.push_back(stat.ToEstimate());
  }
  result.ranking = current_ranking();
  return result;
}

std::vector<RunningStat> RunShardedSweeps(
    const ShardedSweepConfig& config, std::size_t num_players,
    const std::function<void(Rng* rng, std::vector<RunningStat>* stats)>&
        sweep) {
  TREX_CHECK_GT(config.shard_size, 0u);
  // The sweep budget is partitioned into fixed shards; each shard owns a
  // deterministically derived RNG stream and completed shards are folded
  // into the merge in shard-index order, so the merged statistics depend
  // only on (config, sweep), never on thread count or scheduling.
  //
  // Shards are processed in waves so only a wave's worth of per-shard
  // stat vectors is ever resident; wave boundaries cannot change the
  // result (the merge order is the global shard order regardless), they
  // only bound memory — except under early stopping, where the wave
  // size of 1 also fixes the reproducible stopping point.
  const std::size_t num_shards =
      (config.num_samples + config.shard_size - 1) / config.shard_size;
  ThreadPool* pool = config.pool;
  std::optional<ThreadPool> local_pool;
  if (pool == nullptr) {
    local_pool.emplace(std::max<std::size_t>(config.num_threads, 1));
    pool = &*local_pool;
  }
  const std::size_t wave_size =
      config.target_std_error.has_value() ? 1 : pool->num_threads() * 4;

  std::vector<RunningStat> merged(num_players);
  for (std::size_t start = 0; start < num_shards; start += wave_size) {
    const std::size_t count = std::min(wave_size, num_shards - start);
    std::vector<std::vector<RunningStat>> wave_stats(
        count, std::vector<RunningStat>(num_players));
    pool->Run(count, [&](std::size_t i) {
      const std::size_t shard = start + i;
      const std::size_t begin = shard * config.shard_size;
      const std::size_t end =
          std::min(begin + config.shard_size, config.num_samples);
      Rng rng(ShardSeed(config.seed, shard));
      for (std::size_t s = begin; s < end; ++s) {
        // Poll between sweeps: one sweep costs n+1 repair runs, so this
        // bounds cancellation latency at one sweep per worker. Results
        // after cancellation are discarded by the caller.
        if (config.cancel.cancelled()) break;
        sweep(&rng, &wave_stats[i]);
      }
    });
    if (config.cancel.cancelled()) break;
    for (std::size_t i = 0; i < count; ++i) {
      for (std::size_t p = 0; p < num_players; ++p) {
        merged[p].Merge(wave_stats[i][p]);
      }
    }
    if (config.target_std_error.has_value() && num_players > 0 &&
        Converged(merged, *config.target_std_error)) {
      break;
    }
  }
  return merged;
}

Result<std::vector<Estimate>> EstimateShapleyAllPlayers(
    const Game& game, const SamplingOptions& options) {
  const std::size_t n = game.num_players();
  if (n == 0) return std::vector<Estimate>{};
  if (options.num_samples == 0) {
    return Status::InvalidArgument("num_samples must be positive");
  }
  if (options.shard_size == 0) {
    return Status::InvalidArgument("shard_size must be positive");
  }

  ShardedSweepConfig config;
  config.num_samples = options.num_samples;
  config.shard_size = options.shard_size;
  config.num_threads = options.num_threads;
  config.seed = options.seed;
  config.target_std_error = options.target_std_error;
  config.pool = options.pool;
  config.cancel = options.cancel;

  auto one_sweep = [&](Rng* rng, std::vector<RunningStat>* stats) {
    auto run_perm = [&](const std::vector<std::size_t>& perm) {
      Coalition coalition(n, false);
      double prev = game.Value(coalition);
      for (std::size_t pos = 0; pos < n; ++pos) {
        coalition[perm[pos]] = true;
        const double curr = game.Value(coalition);
        (*stats)[perm[pos]].Add(curr - prev);
        prev = curr;
      }
    };
    std::vector<std::size_t> perm = rng->Permutation(n);
    run_perm(perm);
    if (options.antithetic) {
      std::reverse(perm.begin(), perm.end());
      run_perm(perm);
    }
  };

  const std::vector<RunningStat> stats =
      RunShardedSweeps(config, n, one_sweep);
  if (options.cancel.cancelled()) {
    return Status::Cancelled("Shapley sweep sampling cancelled");
  }
  std::vector<Estimate> estimates;
  estimates.reserve(n);
  for (const RunningStat& s : stats) estimates.push_back(s.ToEstimate());
  return estimates;
}

}  // namespace trex::shap
