#include "core/shapley_sampling.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "common/logging.h"
#include "common/thread_pool.h"

namespace trex::shap {

void RunningStat::Add(double x) {
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

void RunningStat::Merge(const RunningStat& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(count_);
  const double nb = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double n = na + nb;
  mean_ += delta * nb / n;
  m2_ += other.m2_ + delta * delta * na * nb / n;
  count_ += other.count_;
}

std::uint64_t ShardSeed(std::uint64_t seed, std::size_t shard) {
  std::uint64_t state =
      seed + 0x9e3779b97f4a7c15ULL * (static_cast<std::uint64_t>(shard) + 1);
  return SplitMix64(&state);
}

double RunningStat::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStat::std_error() const {
  if (count_ < 2) return 0.0;
  return std::sqrt(variance() / static_cast<double>(count_));
}

Estimate RunningStat::ToEstimate() const {
  Estimate e;
  e.value = mean_;
  e.std_error = std_error();
  e.num_samples = count_;
  return e;
}

double CiHalfWidth(const RunningStat& stat, const StopRule& rule) {
  if (stat.count() < 2) return std::numeric_limits<double>::infinity();
  if (rule.bound == BoundKind::kNormal) return rule.z * stat.std_error();
  // Empirical Bernstein (Maurer & Pontil 2009): the variance term matches
  // the CLT width asymptotically; the 3·R·ln(3/δ)/n term keeps the bound
  // sound at small counts and for zero-variance players.
  const double n = static_cast<double>(stat.count());
  const double log_term = std::log(3.0 / rule.delta);
  return std::sqrt(2.0 * stat.variance() * log_term / n) +
         3.0 * rule.range * log_term / n;
}

namespace {

/// One marginal-contribution sample of `player` for a given permutation:
/// v(before ∪ {player}) − v(before), where `before` is the set of players
/// preceding `player` in `perm`.
double MarginalForPlayer(const Game& game,
                         const std::vector<std::size_t>& perm,
                         std::size_t player) {
  const std::size_t n = game.num_players();
  Coalition coalition(n, false);
  for (std::size_t pos = 0; pos < n; ++pos) {
    if (perm[pos] == player) break;
    coalition[perm[pos]] = true;
  }
  const double without = game.Value(coalition);
  coalition[player] = true;
  const double with = game.Value(coalition);
  return with - without;
}

/// The stopping rule in effect for `options`: the explicit `stop` when
/// active, else the `target_std_error` shorthand lowered onto a
/// normal-theory rule (z·std_error ≤ z·target ⇔ the legacy condition).
StopRule EffectiveStop(const SamplingOptions& options) {
  StopRule stop = options.stop;
  if (!stop.active() && options.target_std_error.has_value()) {
    stop.bound = BoundKind::kNormal;
    stop.target_half_width = stop.z * *options.target_std_error;
  }
  return stop;
}

/// A player's CI meets the rule's target width (never true below the
/// rule's minimum sample count).
bool PlayerConverged(const RunningStat& stat, const StopRule& stop) {
  return stat.count() >= std::max<std::size_t>(stop.min_samples, 2) &&
         CiHalfWidth(stat, stop) <= *stop.target_half_width;
}

/// Players sorted by estimated value, descending (stable, so ties keep
/// index order — deterministic).
std::vector<std::size_t> RankByMean(const std::vector<RunningStat>& stats) {
  std::vector<std::size_t> order(stats.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::stable_sort(order.begin(), order.end(),
                   [&stats](std::size_t a, std::size_t b) {
                     return stats[a].mean() > stats[b].mean();
                   });
  return order;
}

}  // namespace

Result<Estimate> EstimateShapleyForPlayer(const Game& game,
                                          std::size_t player,
                                          const SamplingOptions& options) {
  const std::size_t n = game.num_players();
  if (player >= n) {
    return Status::OutOfRange("player " + std::to_string(player) +
                              " out of range for " + std::to_string(n) +
                              "-player game");
  }
  if (options.num_samples == 0) {
    return Status::InvalidArgument("num_samples must be positive");
  }
  const StopRule stop = EffectiveStop(options);
  const std::size_t check_interval =
      std::max<std::size_t>(1, options.check_interval);
  Rng rng(options.seed);
  RunningStat stat;
  for (std::size_t i = 0; i < options.num_samples; ++i) {
    if (options.cancel.cancelled()) {
      return Status::Cancelled("Shapley sampling cancelled");
    }
    std::vector<std::size_t> perm = rng.Permutation(n);
    stat.Add(MarginalForPlayer(game, perm, player));
    if (options.antithetic) {
      std::reverse(perm.begin(), perm.end());
      stat.Add(MarginalForPlayer(game, perm, player));
    }
    if ((i + 1) % check_interval == 0) {
      if (stop.soften.cancelled()) break;
      if (stop.target_half_width.has_value() && PlayerConverged(stat, stop)) {
        break;
      }
    }
  }
  return stat.ToEstimate();
}

Result<Estimate> EstimateShapleyStratified(const Game& game,
                                           std::size_t player,
                                           const SamplingOptions& options) {
  const std::size_t n = game.num_players();
  if (player >= n) {
    return Status::OutOfRange("player " + std::to_string(player) +
                              " out of range for " + std::to_string(n) +
                              "-player game");
  }
  if (options.num_samples == 0) {
    return Status::InvalidArgument("num_samples must be positive");
  }

  // Others = all players but `player`; a stratum-s coalition is a
  // uniform size-s subset of them (partial Fisher-Yates prefix).
  std::vector<std::size_t> base_others;
  base_others.reserve(n - 1);
  for (std::size_t i = 0; i < n; ++i) {
    if (i != player) base_others.push_back(i);
  }

  // Per-stratum state: own RNG stream (ShardSeed-derived, persisted
  // across the pilot and Neyman phases) and own shuffle buffer, so
  // strata can be sampled concurrently with bit-identical results at
  // every thread count.
  struct Stratum {
    Rng rng{0};
    std::vector<std::size_t> others;
    RunningStat stat;
  };
  std::vector<Stratum> strata(n);
  for (std::size_t s = 0; s < n; ++s) {
    strata[s].rng = Rng(ShardSeed(options.seed, s));
    strata[s].others = base_others;
  }

  auto run_phase = [&](const std::vector<std::size_t>& alloc) {
    ThreadPool::RunSharded(
        options.pool, options.num_threads, n, [&](std::size_t s) {
          Stratum& st = strata[s];
          Coalition coalition(n, false);
          for (std::size_t sample = 0; sample < alloc[s]; ++sample) {
            if (options.cancel.cancelled()) return;
            // Uniform size-s subset of `others`.
            for (std::size_t i = 0; i < s; ++i) {
              const std::size_t j =
                  i + static_cast<std::size_t>(
                          st.rng.UniformUint64(st.others.size() - i));
              std::swap(st.others[i], st.others[j]);
            }
            std::fill(coalition.begin(), coalition.end(), false);
            for (std::size_t i = 0; i < s; ++i) coalition[st.others[i]] = true;
            const double without = game.Value(coalition);
            coalition[player] = true;
            const double with = game.Value(coalition);
            coalition[player] = false;
            st.stat.Add(with - without);
          }
        });
  };

  // Pilot wave: half the budget, split evenly (at least one sample per
  // stratum so every stratum mean is defined).
  const std::size_t pilot =
      std::max<std::size_t>(1, options.num_samples / (2 * n));
  run_phase(std::vector<std::size_t>(n, pilot));
  if (options.cancel.cancelled()) {
    return Status::Cancelled("stratified Shapley sampling cancelled");
  }

  // Neyman allocation for the remainder: extra samples proportional to
  // the observed per-stratum standard deviation (minimises the variance
  // of the stratified mean for a fixed budget). Largest-remainder
  // rounding with index tie-break keeps the split deterministic; when
  // every stratum looked deterministic in the pilot, fall back to an
  // even split.
  const std::size_t spent = n * pilot;
  if (options.num_samples > spent) {
    std::size_t remaining = options.num_samples - spent;
    std::vector<std::size_t> alloc(n, 0);
    double total_sd = 0.0;
    std::vector<double> sd(n, 0.0);
    for (std::size_t s = 0; s < n; ++s) {
      sd[s] = std::sqrt(strata[s].stat.variance());
      total_sd += sd[s];
    }
    if (total_sd <= 0.0) {
      for (std::size_t s = 0; s < n; ++s) {
        alloc[s] = remaining / n + (s < remaining % n ? 1 : 0);
      }
    } else {
      std::vector<std::pair<double, std::size_t>> frac;  // (-fraction, s)
      frac.reserve(n);
      std::size_t assigned = 0;
      for (std::size_t s = 0; s < n; ++s) {
        const double exact =
            static_cast<double>(remaining) * sd[s] / total_sd;
        alloc[s] = static_cast<std::size_t>(exact);
        assigned += alloc[s];
        frac.emplace_back(-(exact - std::floor(exact)), s);
      }
      std::sort(frac.begin(), frac.end());
      for (std::size_t i = 0; assigned < remaining; ++i) {
        ++alloc[frac[i % n].second];
        ++assigned;
      }
    }
    run_phase(alloc);
    if (options.cancel.cancelled()) {
      return Status::Cancelled("stratified Shapley sampling cancelled");
    }
  }

  // Stratified mean = (1/n) Σ_s mean_s; variance adds per stratum.
  Estimate e;
  double variance = 0;
  std::size_t total = 0;
  for (const Stratum& st : strata) {
    e.value += st.stat.mean() / static_cast<double>(n);
    if (st.stat.count() > 1) {
      variance += st.stat.variance() /
                  (static_cast<double>(st.stat.count()) *
                   static_cast<double>(n) * static_cast<double>(n));
    }
    total += st.stat.count();
  }
  e.std_error = std::sqrt(variance);
  e.num_samples = total;
  return e;
}

SweepOutcome RunShardedSweeps(
    const ShardedSweepConfig& config, std::size_t num_players,
    const std::function<void(Rng* rng, std::vector<RunningStat>* stats,
                             const std::vector<bool>& frozen)>& sweep) {
  TREX_CHECK_GT(config.shard_size, 0u);
  // The sweep budget is partitioned into fixed shards; each shard owns a
  // deterministically derived RNG stream and completed shards are folded
  // into the merge in shard-index order, so the merged statistics depend
  // only on (config, sweep), never on thread count or scheduling.
  //
  // Shards are processed in waves. A wave's width is configuration —
  // explicit `wave_shards`, or derived from `check_interval` under an
  // active stopping rule — never the pool width while a rule is active,
  // because every anytime decision (stop, freeze, top-k separation,
  // soften) happens at a wave boundary on the merged statistics and must
  // land on the same shard index for every thread count. Without a rule
  // the wave only bounds memory (the merge order is the global shard
  // order regardless), so it scales with the pool.
  const std::size_t num_shards =
      (config.num_samples + config.shard_size - 1) / config.shard_size;
  ThreadPool* pool = config.pool;
  std::optional<ThreadPool> local_pool;
  if (pool == nullptr) {
    local_pool.emplace(std::max<std::size_t>(config.num_threads, 1));
    pool = &*local_pool;
  }
  const StopRule& stop = config.stop;
  std::size_t wave_shards = config.wave_shards;
  if (wave_shards == 0) {
    if (stop.active()) {
      const std::size_t interval = std::max<std::size_t>(
          config.check_interval, 1);
      wave_shards = (interval + config.shard_size - 1) / config.shard_size;
    } else {
      wave_shards = pool->num_threads() * 4;
    }
  }

  SweepOutcome out;
  out.stats.assign(num_players, RunningStat{});
  std::vector<bool> frozen(num_players, false);
  const bool can_freeze =
      stop.freeze_converged && stop.target_half_width.has_value();

  for (std::size_t start = 0; start < num_shards; start += wave_shards) {
    const std::size_t count = std::min(wave_shards, num_shards - start);
    std::vector<std::vector<RunningStat>> wave_stats(
        count, std::vector<RunningStat>(num_players));
    pool->Run(count, [&](std::size_t i) {
      const std::size_t shard = start + i;
      const std::size_t begin = shard * config.shard_size;
      const std::size_t end =
          std::min(begin + config.shard_size, config.num_samples);
      Rng rng(ShardSeed(config.seed, shard));
      for (std::size_t s = begin; s < end; ++s) {
        // Poll between sweeps: one sweep costs n+1 repair runs, so this
        // bounds cancellation latency at one sweep per worker. Results
        // after cancellation are discarded by the caller.
        if (config.cancel.cancelled()) break;
        sweep(&rng, &wave_stats[i], frozen);
      }
    });
    if (config.cancel.cancelled()) break;
    for (std::size_t i = 0; i < count; ++i) {
      for (std::size_t p = 0; p < num_players; ++p) {
        out.stats[p].Merge(wave_stats[i][p]);
      }
    }
    const std::size_t wave_end =
        std::min((start + count) * config.shard_size, config.num_samples);
    out.sweeps = wave_end;
    ++out.waves;

    // Wave boundary: every anytime decision below runs on the merged
    // statistics, whose content is fixed by the shard index range —
    // identical for every thread count.
    bool stop_now = false;
    if (stop.target_half_width.has_value() && num_players > 0) {
      bool all_converged = true;
      for (std::size_t p = 0; p < num_players; ++p) {
        const bool conv = PlayerConverged(out.stats[p], stop);
        if (can_freeze && conv) frozen[p] = true;
        all_converged = all_converged && conv;
      }
      stop_now = all_converged;
    }
    if (!stop_now && stop.top_k > 0 && num_players > 0) {
      if (stop.top_k >= num_players) {
        out.separated = true;  // nothing to separate from
        stop_now = true;
      } else {
        const std::vector<std::size_t> order = RankByMean(out.stats);
        const RunningStat& kth = out.stats[order[stop.top_k - 1]];
        const RunningStat& next = out.stats[order[stop.top_k]];
        const double lower = kth.mean() - CiHalfWidth(kth, stop);
        const double upper = next.mean() + CiHalfWidth(next, stop);
        if (kth.count() >= stop.min_samples && lower > upper) {
          out.separated = true;
          stop_now = true;
        }
      }
    }
    if (!stop_now && stop.soften.cancelled()) {
      out.softened = true;
      stop_now = true;
    }
    if (stop_now) {
      out.stopped_early = start + count < num_shards;
      break;
    }
  }

  for (std::size_t p = 0; p < num_players; ++p) {
    if (frozen[p]) ++out.frozen_players;
    out.achieved_half_width =
        std::max(out.achieved_half_width, CiHalfWidth(out.stats[p], stop));
  }
  return out;
}

Result<std::vector<Estimate>> EstimateShapleyAllPlayers(
    const Game& game, const SamplingOptions& options, SweepOutcome* outcome) {
  const std::size_t n = game.num_players();
  if (n == 0) return std::vector<Estimate>{};
  if (options.num_samples == 0) {
    return Status::InvalidArgument("num_samples must be positive");
  }
  if (options.shard_size == 0) {
    return Status::InvalidArgument("shard_size must be positive");
  }

  ShardedSweepConfig config;
  config.num_samples = options.num_samples;
  config.shard_size = options.shard_size;
  config.num_threads = options.num_threads;
  config.seed = options.seed;
  config.stop = EffectiveStop(options);
  config.check_interval = options.check_interval;
  config.pool = options.pool;
  config.cancel = options.cancel;

  auto one_sweep = [&](Rng* rng, std::vector<RunningStat>* stats,
                       const std::vector<bool>& frozen) {
    auto run_perm = [&](const std::vector<std::size_t>& perm) {
      // Frozen players keep their position in the permutation (so other
      // players' coalitions are undisturbed) but skip both of their
      // evaluations: the prefix value is re-evaluated lazily only when
      // the next unfrozen player needs it.
      Coalition coalition(n, false);
      double prev = 0.0;
      bool have_prev = false;
      // One permutation sweep is the cancellation unit:
      // trex-check-ok(cancel-poll): RunShardedSweeps polls at shard bounds
      for (std::size_t pos = 0; pos < n; ++pos) {
        const std::size_t p = perm[pos];
        if (frozen[p]) {
          coalition[p] = true;
          have_prev = false;
          continue;
        }
        if (!have_prev) prev = game.Value(coalition);
        coalition[p] = true;
        const double curr = game.Value(coalition);
        (*stats)[p].Add(curr - prev);
        prev = curr;
        have_prev = true;
      }
    };
    std::vector<std::size_t> perm = rng->Permutation(n);
    run_perm(perm);
    if (options.antithetic) {
      std::reverse(perm.begin(), perm.end());
      run_perm(perm);
    }
  };

  SweepOutcome out = RunShardedSweeps(config, n, one_sweep);
  if (options.cancel.cancelled()) {
    return Status::Cancelled("Shapley sweep sampling cancelled");
  }
  std::vector<Estimate> estimates;
  estimates.reserve(n);
  for (const RunningStat& s : out.stats) estimates.push_back(s.ToEstimate());
  if (outcome != nullptr) *outcome = std::move(out);
  return estimates;
}

Result<TopKResult> EstimateTopKPlayers(const Game& game,
                                       const TopKOptions& options) {
  const std::size_t n = game.num_players();
  if (n == 0) return TopKResult{};
  if (options.k == 0) {
    return Status::InvalidArgument("k must be positive");
  }
  if (options.batch == 0 || options.max_samples == 0) {
    return Status::InvalidArgument("batch and max_samples must be positive");
  }

  // One sweep per shard, one round per wave: the separation test runs at
  // round boundaries on deterministically merged statistics, so the
  // stopping round — and every estimate — is bit-identical at any
  // thread count while a round's sweeps execute concurrently.
  ShardedSweepConfig config;
  config.num_samples = options.max_samples;
  config.shard_size = 1;
  config.wave_shards = options.batch;
  config.num_threads = options.num_threads;
  config.seed = options.seed;
  config.pool = options.pool;
  config.cancel = options.cancel;
  config.stop.top_k = options.k;
  config.stop.z = options.z;
  config.stop.bound = options.bound;
  config.stop.min_samples = 8;
  config.stop.soften = options.soften;

  auto one_sweep = [&](Rng* rng, std::vector<RunningStat>* stats,
                       const std::vector<bool>& frozen) {
    (void)frozen;  // no per-player target → nothing ever freezes
    const std::vector<std::size_t> perm = rng->Permutation(n);
    Coalition coalition(n, false);
    double prev = game.Value(coalition);
    // One permutation sweep is the cancellation unit:
    // trex-check-ok(cancel-poll): RunShardedSweeps polls at shard bounds
    for (std::size_t pos = 0; pos < n; ++pos) {
      coalition[perm[pos]] = true;
      const double curr = game.Value(coalition);
      (*stats)[perm[pos]].Add(curr - prev);
      prev = curr;
    }
  };

  const SweepOutcome out = RunShardedSweeps(config, n, one_sweep);
  if (options.cancel.cancelled()) {
    return Status::Cancelled("top-k Shapley sampling cancelled");
  }

  TopKResult result;
  result.estimates.reserve(n);
  for (const RunningStat& stat : out.stats) {
    result.estimates.push_back(stat.ToEstimate());
  }
  result.ranking = RankByMean(out.stats);
  result.separated = out.separated;
  result.sweeps = out.sweeps;
  result.softened = out.softened;
  return result;
}

}  // namespace trex::shap
