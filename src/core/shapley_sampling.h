// Monte-Carlo Shapley estimation (Strumbelj & Kononenko, KAIS 2014 — the
// paper's reference [7]).
//
// The estimator draws random player permutations; the marginal
// contribution of a player against the coalition of players preceding it
// is an unbiased sample of its Shapley value. Two drivers:
//
//  * `EstimateShapleyForPlayer` — the paper's Example 2.5 loop for a
//    single player of interest: per sample, one permutation and two
//    characteristic-function evaluations (with and without the player).
//  * `EstimateShapleyAllPlayers` — one sweep per permutation yields a
//    marginal sample for *every* player with n+1 evaluations, the right
//    tool when ranking all cells.
//
// Anytime estimation: every estimator can stop as soon as the answer is
// good enough instead of spending a fixed permutation budget. A
// `StopRule` requests either a target confidence-interval half-width per
// player (normal-theory or empirical-Bernstein bounds) or top-k
// CI-separation, and the sharded sweep driver evaluates it only at
// *wave boundaries* — waves are groups of shards defined purely by shard
// index, so the stopping point, the freeze set, and the merged estimates
// are bit-identical at every thread count. Early stopping and sweep
// parallelism coexist: a wave's shards run concurrently on the
// configured pool, and the rule is consulted after the wave's statistics
// have been merged in shard-index order. Converged players can
// optionally be *frozen* — their with/without evaluations are skipped in
// subsequent sweeps — without perturbing any other player's samples.
// A `soften` token (armed e.g. by a serving deadline) flips the rule to
// "finish the current wave and return the partial confidence-bounded
// estimates" instead of discarding work.

#ifndef TREX_CORE_SHAPLEY_SAMPLING_H_
#define TREX_CORE_SHAPLEY_SAMPLING_H_

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "common/random.h"
#include "common/status.h"
#include "common/thread_pool.h"
#include "core/game.h"
#include "common/cancel.h"

namespace trex::shap {

class RunningStat;

/// Which concentration bound turns running moments into a confidence
/// half-width.
enum class BoundKind {
  /// Normal-theory (CLT): z · std_error. Tight asymptotically but
  /// overconfident at small counts and for zero-variance players.
  kNormal,
  /// Empirical Bernstein (Audibert et al. / Maurer & Pontil):
  /// sqrt(2·V·ln(3/δ)/n) + 3·R·ln(3/δ)/n for samples in a range of
  /// width R. Sound for the bounded marginals of binary repair games
  /// (marginals live in [-1, 1], R = 2), and its O(1/n) term keeps
  /// zero-variance players honest where the normal bound collapses to 0.
  kBernstein,
};

/// Anytime stopping rule, evaluated only at wave boundaries of the
/// sharded sweep driver (see `RunShardedSweeps`). Inactive by default.
struct StopRule {
  /// Stop once every player's confidence half-width is at or below this
  /// value (and each has at least `min_samples` samples).
  std::optional<double> target_half_width;
  /// When > 0, stop once the k-th ranked player's CI lower bound
  /// exceeds the (k+1)-th player's CI upper bound (top-k separation).
  /// May be combined with `target_half_width`; either condition stops.
  std::size_t top_k = 0;
  /// Bound family used for half-widths (both stopping and freezing).
  BoundKind bound = BoundKind::kNormal;
  /// Normal-theory width multiplier (kNormal only).
  double z = 1.96;
  /// Failure probability per player (kBernstein only).
  double delta = 0.05;
  /// Sample range width for the Bernstein bound; marginals of a 0/1
  /// game live in [-1, 1], so the default is 2.
  double range = 2.0;
  /// No player is considered converged (or separated) below this count.
  std::size_t min_samples = 16;
  /// When a `target_half_width` is set, players whose half-width already
  /// meets it are *frozen*: subsequent sweeps skip their with/without
  /// evaluations (the sweep callback receives the freeze set). Frozen
  /// players' accumulated estimates are left untouched, and the freeze
  /// set only changes at wave boundaries, so it is deterministic.
  bool freeze_converged = true;
  /// Soft stop: once this token fires, the driver finishes the current
  /// wave, merges it, and returns the partial confidence-bounded
  /// estimates with `SweepOutcome::softened` set. Unlike
  /// `ShardedSweepConfig::cancel`, the merged statistics remain valid.
  /// Checked at wave boundaries only (latency ≤ one wave).
  CancelToken soften;

  bool active() const { return target_half_width.has_value() || top_k > 0; }
};

/// Options for the sampling estimators.
struct SamplingOptions {
  /// Number of samples (permutations). For `EstimateShapleyForPlayer`
  /// this is the number of (with, without) evaluation pairs; for
  /// `EstimateShapleyAllPlayers` the number of full sweeps. Always an
  /// upper bound: a stopping rule can end the run earlier.
  std::size_t num_samples = 500;
  /// RNG seed; equal seeds give identical estimates.
  std::uint64_t seed = Rng::kDefaultSeed;
  /// Variance reduction: also evaluate each permutation reversed
  /// (negatively correlated coalition sizes). Doubles the samples drawn
  /// per iteration.
  bool antithetic = false;
  /// Back-compat shorthand for `stop`: early stop once every requested
  /// player's standard error drops to this level. Equivalent to a
  /// normal-theory `StopRule` with `target_half_width = stop.z * value`.
  /// Ignored when `stop` is already active.
  std::optional<double> target_std_error;
  /// Anytime stopping rule (see `StopRule`). Applies to every estimator
  /// that accepts these options.
  StopRule stop;
  /// Granularity of stopping checks, in samples. The single-player
  /// estimators check every `check_interval` samples; the sweep
  /// estimator rounds it up to whole shards — a wave spans
  /// `max(1, ceil(check_interval / shard_size))` shards and the rule is
  /// evaluated at wave boundaries. One unified knob: larger values check
  /// less often but expose more parallelism per wave (a wave's shards
  /// run concurrently).
  std::size_t check_interval = 32;
  /// Worker threads for the sweep estimator; 0 means "unset" (run
  /// single-threaded here, but let an embedding engine substitute its
  /// own thread count), while an explicit 1 forces a serial run even
  /// under a multi-threaded engine. Sweeps are partitioned into fixed
  /// shards of `shard_size` permutations, each drawing from a seed
  /// derived deterministically from (seed, shard index) via `ShardSeed`,
  /// and shard results are merged in index order — so the estimates are
  /// bit-identical for every thread count (the game's characteristic
  /// function must be thread-safe; `BlackBoxRepair` is). This holds with
  /// early stopping too: the stopping point is a wave boundary, defined
  /// by shard index, never by thread scheduling.
  std::size_t num_threads = 0;
  /// Permutation sweeps per shard (the unit of parallel work).
  std::size_t shard_size = 32;
  /// Optional persistent worker pool (non-owning; must outlive the
  /// call); the engine passes its own so repeated requests don't respawn
  /// threads. Null = transient pool per call.
  ThreadPool* pool = nullptr;
  /// Cooperative cancellation: polled between permutation sweeps (each
  /// sweep is n+1 repair runs). Once cancelled the estimator stops
  /// promptly and returns `Status::Cancelled` — partial estimates are
  /// discarded. For a soft stop that *keeps* partial estimates, arm
  /// `stop.soften` instead. Default token = never cancelled.
  CancelToken cancel;
};

/// One player's Monte-Carlo estimate.
struct Estimate {
  double value = 0.0;
  /// Standard error of the mean (0 until 2+ samples).
  double std_error = 0.0;
  /// Samples actually taken (= num_samples unless early-stopped or
  /// frozen before budget exhaustion).
  std::size_t num_samples = 0;

  /// Normal-theory confidence bounds, e.g. `value ± 1.96·std_error`.
  double ci_low(double z = 1.96) const { return value - z * std_error; }
  double ci_high(double z = 1.96) const { return value + z * std_error; }
};

/// Welford running-moment accumulator (exposed for reuse by the cell
/// estimator in the engine and by tests).
class RunningStat {
 public:
  void Add(double x);
  /// Folds another accumulator's moments into this one (Chan et al.
  /// pairwise combination) — used to merge per-shard statistics in
  /// deterministic shard order.
  void Merge(const RunningStat& other);
  std::size_t count() const { return count_; }
  double mean() const { return mean_; }
  /// Sample variance (n-1 denominator); 0 until two samples.
  double variance() const;
  /// Standard error of the mean.
  double std_error() const;
  Estimate ToEstimate() const;

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
};

/// The confidence half-width of a running estimate under `rule.bound`.
/// Returns +infinity below two samples (no variance information yet).
double CiHalfWidth(const RunningStat& stat, const StopRule& rule);

/// The per-shard RNG seed for sharded sweep sampling: a splitmix64 mix
/// of the base seed and the shard index. Exposed so other sharded
/// samplers (the engine's cell sweeps) stay bit-compatible across
/// serial and parallel execution.
std::uint64_t ShardSeed(std::uint64_t seed, std::size_t shard);

/// Configuration for `RunShardedSweeps`.
struct ShardedSweepConfig {
  std::size_t num_samples = 0;
  std::size_t shard_size = 32;
  std::size_t num_threads = 1;
  std::uint64_t seed = Rng::kDefaultSeed;
  /// Anytime stopping rule, evaluated at wave boundaries (see below).
  StopRule stop;
  /// Shards per wave; 0 = derive from `check_interval` when a stopping
  /// rule is active (`max(1, ceil(check_interval / shard_size))`), else
  /// size waves for memory only (a multiple of the pool width). The
  /// wave width is part of the configuration — never derived from
  /// thread count while a stopping rule is active — because the
  /// stopping point is a wave boundary and must be reproducible.
  std::size_t wave_shards = 0;
  /// Stopping-check granularity in samples, rounded up to whole shards;
  /// used only when `wave_shards == 0`. 0 = one shard per wave.
  std::size_t check_interval = 0;
  /// Optional persistent worker pool to reuse across calls (non-owning;
  /// must outlive the call). When null, a transient pool of
  /// `num_threads` is created per call.
  ThreadPool* pool = nullptr;
  /// Polled before every sweep inside each shard and at wave boundaries;
  /// once cancelled, remaining sweeps are skipped and the driver returns
  /// early. Callers observing `cancel.cancelled()` after the call must
  /// treat the merged statistics as garbage. Contrast `stop.soften`,
  /// which finishes the current wave and keeps the merged statistics.
  CancelToken cancel;
};

/// What a sharded sweep run produced, beyond the statistics themselves.
struct SweepOutcome {
  /// Per-player merged statistics (shard-index merge order).
  std::vector<RunningStat> stats;
  /// Permutation sweeps consumed (≤ config.num_samples).
  std::size_t sweeps = 0;
  /// Wave boundaries crossed.
  std::size_t waves = 0;
  /// A stopping rule ended the run before the sample budget.
  bool stopped_early = false;
  /// The soften token fired; `stats` hold the partial (but valid and
  /// confidence-bounded) estimates as of the completed wave.
  bool softened = false;
  /// Top-k separation held at the stopping wave (`stop.top_k > 0` only).
  bool separated = false;
  /// Largest per-player confidence half-width at the end of the run
  /// under `stop.bound` (+infinity until every player has 2+ samples;
  /// 0 for an empty player set).
  double achieved_half_width = 0.0;
  /// Players frozen when the run ended.
  std::size_t frozen_players = 0;
};

/// The shared wave-synchronous sweep driver behind
/// `EstimateShapleyAllPlayers`, `EstimateTopKPlayers`, and the engine's
/// cell sampler: partitions `num_samples` sweeps into fixed shards, runs
/// each shard with an RNG seeded by `ShardSeed(seed, shard)`, and merges
/// per-shard statistics in shard-index order — so the merged result
/// depends only on (config, sweep), never on thread count. Shards
/// execute in waves (`wave_shards` at a time, concurrently on the pool);
/// after each wave is merged the driver consults `config.stop`, updates
/// the freeze set, and honours `stop.soften` — all decisions are made on
/// deterministically merged statistics at shard-index-defined
/// boundaries, so early stopping keeps the bit-identical-at-any-
/// thread-count guarantee. `sweep` executes ONE sweep: it draws from the
/// shard's RNG and folds one marginal sample per *unfrozen* player into
/// the shard's statistics vector (the freeze set is all-false unless
/// `stop.freeze_converged` and a target width are set). `sweep` must be
/// thread-safe when more than one shard runs per wave.
SweepOutcome RunShardedSweeps(
    const ShardedSweepConfig& config, std::size_t num_players,
    const std::function<void(Rng* rng, std::vector<RunningStat>* stats,
                             const std::vector<bool>& frozen)>& sweep);

/// Estimates the Shapley value of `player` (see file comment).
[[nodiscard]] Result<Estimate> EstimateShapleyForPlayer(const Game& game,
                                          std::size_t player,
                                          const SamplingOptions& options = {});

/// Estimates all players' Shapley values with permutation sweeps.
/// `outcome` (optional) receives the full sweep outcome — sweeps
/// consumed, achieved confidence width, freeze count, soften flag.
[[nodiscard]] Result<std::vector<Estimate>> EstimateShapleyAllPlayers(
    const Game& game, const SamplingOptions& options = {},
    SweepOutcome* outcome = nullptr);

/// Stratified single-player estimator (Maleki et al. style): the Shapley
/// value is the average over coalition sizes s of E[marginal | |S| = s];
/// sampling each size stratum separately removes the variance *between*
/// strata that plain permutation sampling pays for. `options.num_samples`
/// is the total budget. A pilot wave spends half the budget evenly
/// across the n strata, then the remainder follows Neyman allocation
/// (proportional to the observed per-stratum standard deviation, which
/// minimises the variance of the stratified mean for a fixed budget;
/// deterministic largest-remainder rounding). Strata are sampled in
/// parallel over `options.num_threads` / `options.pool`, each stratum on
/// its own `ShardSeed`-derived RNG stream, so results are bit-identical
/// at every thread count. Useful when marginals differ sharply by
/// coalition size (binary repair games often do).
[[nodiscard]] Result<Estimate> EstimateShapleyStratified(const Game& game,
                                           std::size_t player,
                                           const SamplingOptions& options = {});

/// Options for the adaptive top-k driver.
struct TopKOptions {
  std::size_t k = 3;
  /// Confidence width multiplier for the separation test.
  double z = 2.0;
  /// Sweeps per refinement round (= the wave width: a round's sweeps
  /// run concurrently on the pool).
  std::size_t batch = 16;
  /// Total sweep budget.
  std::size_t max_samples = 4096;
  std::uint64_t seed = Rng::kDefaultSeed;
  /// Bound family for the separation test.
  BoundKind bound = BoundKind::kNormal;
  /// Worker threads for the refinement rounds; same semantics as
  /// `SamplingOptions::num_threads` (0 = unset/serial, engine may
  /// substitute its pool width). Results are bit-identical at every
  /// thread count: each sweep draws from its own `ShardSeed` stream and
  /// the separation test runs on deterministically merged statistics at
  /// round boundaries.
  std::size_t num_threads = 0;
  /// Optional persistent worker pool (non-owning; must outlive the
  /// call). Null = transient pool per call when `num_threads > 1`.
  ThreadPool* pool = nullptr;
  /// Polled between sweeps; see SamplingOptions::cancel.
  CancelToken cancel;
  /// Soft stop: finish the current round and return the partial
  /// ranking + estimates (see StopRule::soften).
  CancelToken soften;
};

/// Result of the adaptive top-k estimation.
struct TopKResult {
  /// Per-player estimates (indexed by player).
  std::vector<Estimate> estimates;
  /// Players sorted by estimated value, descending.
  std::vector<std::size_t> ranking;
  /// True when the k-th and (k+1)-th players' confidence intervals
  /// separated before the budget ran out.
  bool separated = false;
  /// Permutation sweeps consumed.
  std::size_t sweeps = 0;
  /// The soften token ended the run early (partial but valid ranking).
  bool softened = false;
};

/// Samples permutation sweeps in rounds until the top-k set is
/// CI-separated from the rest (lower bound of the k-th estimate above
/// the upper bound of the (k+1)-th) or the budget is exhausted. This is
/// the right driver for the T-REx GUI flow, where the user only reads
/// the first few rows of the ranking. Runs on the wave-synchronous
/// sweep driver: a round's sweeps execute in parallel and the
/// separation test is evaluated at round boundaries only.
[[nodiscard]] Result<TopKResult> EstimateTopKPlayers(const Game& game,
                                       const TopKOptions& options = {});

}  // namespace trex::shap

#endif  // TREX_CORE_SHAPLEY_SAMPLING_H_
