// Monte-Carlo Shapley estimation (Strumbelj & Kononenko, KAIS 2014 — the
// paper's reference [7]).
//
// The estimator draws random player permutations; the marginal
// contribution of a player against the coalition of players preceding it
// is an unbiased sample of its Shapley value. Two drivers:
//
//  * `EstimateShapleyForPlayer` — the paper's Example 2.5 loop for a
//    single player of interest: per sample, one permutation and two
//    characteristic-function evaluations (with and without the player).
//  * `EstimateShapleyAllPlayers` — one sweep per permutation yields a
//    marginal sample for *every* player with n+1 evaluations, the right
//    tool when ranking all cells.
//
// Estimates carry running mean/variance (Welford) and normal-theory
// confidence intervals; `target_std_error` enables early stopping.

#ifndef TREX_CORE_SHAPLEY_SAMPLING_H_
#define TREX_CORE_SHAPLEY_SAMPLING_H_

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "common/random.h"
#include "common/status.h"
#include "common/thread_pool.h"
#include "core/game.h"
#include "serving/cancel.h"

namespace trex::shap {

/// Options for the sampling estimators.
struct SamplingOptions {
  /// Number of samples (permutations). For `EstimateShapleyForPlayer`
  /// this is the number of (with, without) evaluation pairs; for
  /// `EstimateShapleyAllPlayers` the number of full sweeps.
  std::size_t num_samples = 500;
  /// RNG seed; equal seeds give identical estimates.
  std::uint64_t seed = Rng::kDefaultSeed;
  /// Variance reduction: also evaluate each permutation reversed
  /// (negatively correlated coalition sizes). Doubles the samples drawn
  /// per iteration.
  bool antithetic = false;
  /// Early stop once every requested player's standard error drops to
  /// this level (at least 16 samples are always taken). The
  /// single-player estimators check every `check_interval` samples;
  /// `EstimateShapleyAllPlayers` checks at `shard_size` boundaries
  /// instead (processing shards sequentially so the stopping point is
  /// reproducible) and ignores `check_interval`.
  std::optional<double> target_std_error;
  std::size_t check_interval = 32;
  /// Worker threads for the sweep estimator; 0 means "unset" (run
  /// single-threaded here, but let an embedding engine substitute its
  /// own thread count), while an explicit 1 forces a serial run even
  /// under a multi-threaded engine. Sweeps are partitioned into fixed
  /// shards of `shard_size` permutations, each drawing from a seed
  /// derived deterministically from (seed, shard index) via `ShardSeed`,
  /// and shard results are merged in index order — so the estimates are
  /// bit-identical for every thread count (the game's characteristic
  /// function must be thread-safe; `BlackBoxRepair` is). Ignored when
  /// `target_std_error` is set: early stopping runs shards serially to
  /// keep the stopping point reproducible.
  std::size_t num_threads = 0;
  /// Permutation sweeps per shard (the unit of parallel work and of the
  /// early-stopping check).
  std::size_t shard_size = 32;
  /// Optional persistent worker pool (non-owning; must outlive the
  /// call); the engine passes its own so repeated requests don't respawn
  /// threads. Null = transient pool per call.
  ThreadPool* pool = nullptr;
  /// Cooperative cancellation: polled between permutation sweeps (each
  /// sweep is n+1 repair runs). Once cancelled the estimator stops
  /// promptly and returns `Status::Cancelled` — partial estimates are
  /// discarded. Default token = never cancelled.
  CancelToken cancel;
};

/// One player's Monte-Carlo estimate.
struct Estimate {
  double value = 0.0;
  /// Standard error of the mean (0 until 2+ samples).
  double std_error = 0.0;
  /// Samples actually taken (= num_samples unless early-stopped).
  std::size_t num_samples = 0;

  /// Normal-theory confidence bounds, e.g. `value ± 1.96·std_error`.
  double ci_low(double z = 1.96) const { return value - z * std_error; }
  double ci_high(double z = 1.96) const { return value + z * std_error; }
};

/// Welford running-moment accumulator (exposed for reuse by the cell
/// estimator in the engine and by tests).
class RunningStat {
 public:
  void Add(double x);
  /// Folds another accumulator's moments into this one (Chan et al.
  /// pairwise combination) — used to merge per-shard statistics in
  /// deterministic shard order.
  void Merge(const RunningStat& other);
  std::size_t count() const { return count_; }
  double mean() const { return mean_; }
  /// Sample variance (n-1 denominator); 0 until two samples.
  double variance() const;
  /// Standard error of the mean.
  double std_error() const;
  Estimate ToEstimate() const;

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
};

/// The per-shard RNG seed for sharded sweep sampling: a splitmix64 mix
/// of the base seed and the shard index. Exposed so other sharded
/// samplers (the engine's cell sweeps) stay bit-compatible across
/// serial and parallel execution.
std::uint64_t ShardSeed(std::uint64_t seed, std::size_t shard);

/// Configuration for `RunShardedSweeps`.
struct ShardedSweepConfig {
  std::size_t num_samples = 0;
  std::size_t shard_size = 32;
  std::size_t num_threads = 1;
  std::uint64_t seed = Rng::kDefaultSeed;
  /// When set, shards run sequentially and the driver stops at the
  /// first shard boundary where every player has >= 16 samples and a
  /// standard error at or below this level. Note this disables sweep
  /// parallelism: a thread-count-dependent stopping point would break
  /// the reproducibility guarantee.
  std::optional<double> target_std_error;
  /// Optional persistent worker pool to reuse across calls (non-owning;
  /// must outlive the call). When null, a transient pool of
  /// `num_threads` is created per call.
  ThreadPool* pool = nullptr;
  /// Polled before every sweep inside each shard and at wave boundaries;
  /// once cancelled, remaining sweeps are skipped and the driver returns
  /// early. Callers observing `cancel.cancelled()` after the call must
  /// treat the merged statistics as garbage.
  CancelToken cancel;
};

/// The shared sharded permutation-sweep driver behind
/// `EstimateShapleyAllPlayers` and the engine's cell sampler: partitions
/// `num_samples` sweeps into fixed shards, runs each shard with an RNG
/// seeded by `ShardSeed(seed, shard)`, and merges per-shard statistics
/// in shard-index order — so the result depends only on (config,
/// sweep), never on thread count. `sweep` executes ONE sweep: it draws
/// from the shard's RNG and folds one marginal sample per player into
/// the shard's statistics vector. `sweep` must be thread-safe when
/// `num_threads > 1`.
std::vector<RunningStat> RunShardedSweeps(
    const ShardedSweepConfig& config, std::size_t num_players,
    const std::function<void(Rng* rng, std::vector<RunningStat>* stats)>&
        sweep);

/// Estimates the Shapley value of `player` (see file comment).
Result<Estimate> EstimateShapleyForPlayer(const Game& game,
                                          std::size_t player,
                                          const SamplingOptions& options = {});

/// Estimates all players' Shapley values with permutation sweeps.
Result<std::vector<Estimate>> EstimateShapleyAllPlayers(
    const Game& game, const SamplingOptions& options = {});

/// Stratified single-player estimator (Maleki et al. style): the Shapley
/// value is the average over coalition sizes s of E[marginal | |S| = s];
/// sampling each size stratum separately removes the variance *between*
/// strata that plain permutation sampling pays for. `options.num_samples`
/// is the total budget, split evenly across the n strata (at least one
/// sample each). Useful when marginals differ sharply by coalition size
/// (binary repair games often do).
Result<Estimate> EstimateShapleyStratified(const Game& game,
                                           std::size_t player,
                                           const SamplingOptions& options = {});

/// Options for the adaptive top-k driver.
struct TopKOptions {
  std::size_t k = 3;
  /// Confidence width multiplier for the separation test.
  double z = 2.0;
  /// Sweeps per refinement round.
  std::size_t batch = 16;
  /// Total sweep budget.
  std::size_t max_samples = 4096;
  std::uint64_t seed = Rng::kDefaultSeed;
  /// Polled between refinement batches; see SamplingOptions::cancel.
  CancelToken cancel;
};

/// Result of the adaptive top-k estimation.
struct TopKResult {
  /// Per-player estimates (indexed by player).
  std::vector<Estimate> estimates;
  /// Players sorted by estimated value, descending.
  std::vector<std::size_t> ranking;
  /// True when the k-th and (k+1)-th players' confidence intervals
  /// separated before the budget ran out.
  bool separated = false;
  /// Permutation sweeps consumed.
  std::size_t sweeps = 0;
};

/// Samples permutation sweeps in batches until the top-k set is
/// CI-separated from the rest (lower bound of the k-th estimate above
/// the upper bound of the (k+1)-th) or the budget is exhausted. This is
/// the right driver for the T-REx GUI flow, where the user only reads
/// the first few rows of the ranking.
Result<TopKResult> EstimateTopKPlayers(const Game& game,
                                       const TopKOptions& options = {});

}  // namespace trex::shap

#endif  // TREX_CORE_SHAPLEY_SAMPLING_H_
