// Sharded materialization of a game's characteristic function over all
// 2^n coalitions — the shared kernel of the exact Shapley, Banzhaf, and
// interaction-index solvers.
//
// Each of the 2^n evaluations is an independent black-box repair run
// (unless memoized), so the walk parallelizes embarrassingly: masks are
// partitioned into fixed shards, each shard evaluates its contiguous
// mask range into a disjoint slice of the output vector, and no shard's
// result depends on another's — the materialized values are bit-identical
// for every thread count by construction. `BlackBoxRepair`-backed games
// are internally synchronized, which is what makes concurrent
// `Game::Value` calls safe (a custom game used with `num_threads > 1`
// must be thread-safe too).
//
// Cancellation is polled per mask inside every shard (the same
// granularity the serial loops had), so a deadline or caller cancel
// expires the walk within one repair call per active thread.

#ifndef TREX_CORE_SUBSET_WALK_H_
#define TREX_CORE_SUBSET_WALK_H_

#include <vector>

#include "common/status.h"
#include "common/thread_pool.h"
#include "core/game.h"
#include "common/cancel.h"

namespace trex::shap {

/// Options for the sharded subset walk.
struct SubsetWalkOptions {
  /// Hard cap on player count: 2^n coalition values are materialized.
  std::size_t max_players = 22;
  /// Worker threads; 1 = serial (no pool touched). Values are
  /// bit-identical for every count.
  std::size_t num_threads = 1;
  /// Masks per parallel task. Fixed (not adaptive) so the partition —
  /// and with it any cost accounting — is independent of thread count.
  std::size_t shard_size = 64;
  /// Optional persistent worker pool (non-owning; must outlive the
  /// call). Null with `num_threads > 1` = transient pool per call.
  ThreadPool* pool = nullptr;
  /// Polled once per coalition in every shard; cancelled walks return
  /// `Status::Cancelled`.
  CancelToken cancel;
  /// Optional advice appended to the over-cap error message — only for
  /// callers that actually have a cheaper fallback (exact Shapley
  /// points at its sampling estimator; interactions and Banzhaf have
  /// none). Null = no advice.
  const char* over_cap_hint = nullptr;
};

/// Materializes v over all 2^n coalitions (index = bitmask, bit i =
/// player i present). Fails with InvalidArgument past
/// `options.max_players`, `Status::Cancelled` on cancellation.
/// `context` names the caller in error messages ("exact Shapley", ...).
[[nodiscard]] Result<std::vector<double>> MaterializeCoalitionValues(
    const Game& game, const SubsetWalkOptions& options, const char* context);

}  // namespace trex::shap

#endif  // TREX_CORE_SUBSET_WALK_H_
