// The cooperative-game abstraction the Shapley machinery runs on.
//
// A game is a set of `n` players plus a characteristic function
// `v : 2^N -> R` with `v(∅) = 0` (paper §2.2). T-REx instantiates it twice
// — players = denial constraints, and players = table cells — but the
// solvers in shapley_exact.h / shapley_sampling.h work for any game, and
// the tests exercise them on classic game-theory examples (glove games,
// weighted majority, airport games).

#ifndef TREX_CORE_GAME_H_
#define TREX_CORE_GAME_H_

#include <cstddef>
#include <vector>

namespace trex::shap {

/// A coalition: membership flags indexed by player.
using Coalition = std::vector<bool>;

/// Abstract cooperative game with a real-valued characteristic function.
///
/// Implementations must be deterministic: equal coalitions must get equal
/// values, or Shapley values are ill-defined. `Value` may be expensive
/// (T-REx's games run a full table repair per call) — solvers treat calls
/// as the unit of cost and memoize where possible.
class Game {
 public:
  virtual ~Game() = default;

  /// Number of players `n`.
  virtual std::size_t num_players() const = 0;

  /// Characteristic function. `coalition.size() == num_players()`;
  /// `Value` of the empty coalition must be 0 for the Shapley efficiency
  /// axiom to read as usual.
  virtual double Value(const Coalition& coalition) const = 0;
};

}  // namespace trex::shap

#endif  // TREX_CORE_GAME_H_
