// Constraint and cell explainers: given a repaired cell of interest,
// rank the denial constraints / the table cells by their Shapley
// contribution to that repair (the paper's §2.2–§2.3).
//
// Both classes are thin adapters over `trex::Engine` (core/engine.h) —
// each call spins up a single-use engine. Multi-query callers should use
// the engine directly to share the reference repair and memo caches.
//
//  * `ConstraintExplainer` computes *exact* Shapley values by subset
//    enumeration by default ("the number of DCs is usually small") and
//    falls back to permutation sampling past a configurable player cap.
//  * `CellExplainer` ranks cells with the Strumbelj–Kononenko permutation
//    sampler (Example 2.5), replacing out-of-coalition cells either with
//    nulls (`AbsentCellPolicy::kNull`, the paper's *definition*) or with
//    draws from their column distribution
//    (`AbsentCellPolicy::kSampleFromColumn`, the paper's *estimator*).
//    Exact cell Shapley is available for small player sets (tests,
//    convergence baselines). Relevant-cell pruning via the algorithm's
//    influence graph (or the conservative DC graph) shrinks the player
//    set before sampling.

#ifndef TREX_CORE_EXPLAINER_H_
#define TREX_CORE_EXPLAINER_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/random.h"
#include "common/status.h"
#include "core/repair_game.h"
#include "core/shapley_exact.h"
#include "core/shapley_sampling.h"

namespace trex {

/// How absent cells are materialized in cell coalitions.
enum class AbsentCellPolicy {
  /// Set to null (the paper's formal definition, §2.2).
  kNull,
  /// Replace with a draw from the cell's column distribution in T^d
  /// (the paper's sampling estimator, Example 2.5).
  kSampleFromColumn,
};

const char* AbsentCellPolicyToString(AbsentCellPolicy policy);

/// One ranked player (a DC or a cell) in an explanation.
struct PlayerScore {
  /// Display label: the constraint name ("C3") or the paper-style cell
  /// name ("t5[League]").
  std::string label;
  double shapley = 0.0;
  /// Standard error (0 for exact computations).
  double std_error = 0.0;
  std::size_t num_samples = 0;
  /// Set for cell explanations.
  std::optional<CellRef> cell;
  /// Set for constraint explanations.
  std::optional<std::size_t> constraint_index;
};

/// The result of explaining one repaired cell.
struct Explanation {
  /// Players ranked by Shapley value, descending (ties keep player
  /// order, so output is deterministic).
  std::vector<PlayerScore> ranked;
  /// The explained cell and its repair.
  CellRef target;
  std::string target_label;
  Value old_value;
  Value new_value;
  /// Cost accounting: black-box repair invocations / memo hits.
  std::size_t algorithm_calls = 0;
  std::size_t cache_hits = 0;
  /// "exact" or "sampling(...)": how the values were computed.
  std::string method;

  /// The top-k players (k clamped to size).
  std::vector<PlayerScore> TopK(std::size_t k) const;

  /// Sum of all Shapley values (= v(N) − v(∅) for exact computations —
  /// the efficiency axiom; ≈ for sampled ones).
  double TotalAttribution() const;
};

/// Options for `ConstraintExplainer`.
struct ConstraintExplainerOptions {
  /// Use exact enumeration up to this many constraints, sampling beyond.
  std::size_t max_exact_players = 20;
  /// Force the sampling path regardless of size (testing/ablation).
  bool force_sampling = false;
  /// Attribute with Banzhaf values instead of Shapley (exact path only;
  /// Banzhaf weighs every coalition equally and drops the efficiency
  /// axiom — a common comparison point for attribution semantics).
  bool use_banzhaf = false;
  /// Sampling parameters (used only on the sampling path).
  shap::SamplingOptions sampling;
};

/// One constraint pair's interaction in an explanation (see
/// core/interaction.h; positive = the pair acts as a complement, like
/// the paper's C1 & C2).
struct InteractionScore {
  std::string label_a;
  std::string label_b;
  double interaction = 0.0;
};

/// Ranks denial constraints by their contribution to a repair.
class ConstraintExplainer {
 public:
  explicit ConstraintExplainer(ConstraintExplainerOptions options = {})
      : options_(options) {}

  /// Explains why `target` was repaired, attributing over `dcs`.
  /// Fails when the reference repair does not change `target`.
  [[nodiscard]] Result<Explanation> Explain(const repair::RepairAlgorithm& algorithm,
                              const dc::DcSet& dcs, const Table& dirty,
                              CellRef target) const;

  /// Pairwise Shapley interaction indices between the constraints,
  /// ranked by |interaction| descending. Formalizes the paper's
  /// Example 2.3 "as a pair" reading: for the running example,
  /// I(C1,C2) > 0 (complements) and I(C1,C3) < 0 (substitutes). Exact
  /// only (constraint counts are small).
  [[nodiscard]] Result<std::vector<InteractionScore>> ExplainInteractions(
      const repair::RepairAlgorithm& algorithm, const dc::DcSet& dcs,
      const Table& dirty, CellRef target) const;

  /// Counterfactual view: the inclusion-minimal constraint sets whose
  /// removal stops the repair of `target` (constraint names, smallest
  /// sets first). For the running example: {C1,C3} and {C2,C3}.
  /// `max_set_size` bounds the search.
  [[nodiscard]] Result<std::vector<std::vector<std::string>>> ExplainRemovalSets(
      const repair::RepairAlgorithm& algorithm, const dc::DcSet& dcs,
      const Table& dirty, CellRef target,
      std::size_t max_set_size = 3) const;

 private:
  ConstraintExplainerOptions options_;
};

/// Computation method for cell explanations.
enum class CellMethod {
  /// Exact when the (pruned) player set is small and the policy is
  /// kNull; sampling otherwise.
  kAuto,
  kExact,
  kSampling,
};

/// Options for `CellExplainer`.
struct CellExplainerOptions {
  CellMethod method = CellMethod::kAuto;
  AbsentCellPolicy policy = AbsentCellPolicy::kSampleFromColumn;
  /// Permutation sweeps for the all-cells ranking; each sweep costs
  /// (#players + 1) black-box evaluations.
  std::size_t num_samples = 300;
  std::uint64_t seed = Rng::kDefaultSeed;
  /// Early stop once all std errors reach this level (optional).
  std::optional<double> target_std_error;
  /// Restrict players to cells that can influence the target under the
  /// algorithm's influence graph (falls back to the conservative DC
  /// graph when the algorithm exposes none). Cells outside the player
  /// set are reported with Shapley 0.
  bool prune = true;
  /// Exact-path player cap (2^n coalition values are materialized).
  std::size_t max_exact_players = 20;
  /// Include players whose column cannot be sampled (all-null columns
  /// keep nulls under kSampleFromColumn).
  bool include_target_cell = true;
};

/// Ranks table cells by their contribution to a repair.
class CellExplainer {
 public:
  explicit CellExplainer(CellExplainerOptions options = {})
      : options_(options) {}

  /// Ranks every (relevant) cell of T^d by Shapley contribution to the
  /// repair of `target`. Fails when the reference repair does not change
  /// `target`.
  [[nodiscard]] Result<Explanation> Explain(const repair::RepairAlgorithm& algorithm,
                              const dc::DcSet& dcs, const Table& dirty,
                              CellRef target) const;

  /// The paper's Example 2.5 single-cell loop: estimates only
  /// `player_cell`'s contribution with `num_samples` (permutation, draw)
  /// iterations — two black-box evaluations each.
  [[nodiscard]] Result<PlayerScore> ExplainSingleCell(
      const repair::RepairAlgorithm& algorithm, const dc::DcSet& dcs,
      const Table& dirty, CellRef target, CellRef player_cell) const;

  /// Adaptive top-k ranking (null policy only): samples permutation
  /// sweeps in batches and stops as soon as the top-k cells are
  /// CI-separated from the rest — usually far below the fixed budget the
  /// full ranking needs. `options().num_samples` is the sweep budget
  /// cap. The returned explanation still lists every player, with
  /// whatever precision the early stop left them at.
  [[nodiscard]] Result<Explanation> ExplainTopK(const repair::RepairAlgorithm& algorithm,
                                  const dc::DcSet& dcs, const Table& dirty,
                                  CellRef target, std::size_t k) const;

 private:
  CellExplainerOptions options_;
};

}  // namespace trex

#endif  // TREX_CORE_EXPLAINER_H_
