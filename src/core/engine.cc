#include "core/engine.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "common/logging.h"
#include "common/string_util.h"
#include "core/counterfactual.h"
#include "core/interaction.h"
#include "core/shapley_exact.h"
#include "core/shapley_sampling.h"
#include "dc/graph.h"
#include "table/stats.h"

namespace trex {
namespace {

/// Permutation sweeps per shard of the sharded cell sampler: the unit of
/// parallel work and of the early-stopping check. Fixed (not an option)
/// so that estimates never depend on the execution configuration.
constexpr std::size_t kCellShardSize = 32;

/// Sorts player scores descending by Shapley value; ties keep the
/// original player order (stable), making output deterministic.
void RankDescending(std::vector<PlayerScore>* scores) {
  std::stable_sort(scores->begin(), scores->end(),
                   [](const PlayerScore& a, const PlayerScore& b) {
                     return a.shapley > b.shapley;
                   });
}

Explanation MakeBaseExplanation(const BlackBoxRepair& box,
                                std::size_t target_index) {
  Explanation ex;
  ex.target = box.target(target_index);
  ex.target_label = ex.target.ToString(box.dirty().schema());
  ex.old_value = box.dirty().at(ex.target);
  ex.new_value = box.reference_clean().at(ex.target);
  return ex;
}

}  // namespace

const char* ExplainKindToString(ExplainKind kind) {
  switch (kind) {
    case ExplainKind::kConstraints:
      return "constraints";
    case ExplainKind::kCells:
      return "cells";
    case ExplainKind::kInteractions:
      return "interactions";
    case ExplainKind::kRemovalSets:
      return "removal-sets";
    case ExplainKind::kSingleCell:
      return "single-cell";
  }
  return "?";
}

Engine::Engine(std::shared_ptr<const repair::RepairAlgorithm> algorithm,
               dc::DcSet dcs, Table dirty, EngineOptions options)
    : Engine(std::move(algorithm), std::move(dcs),
             std::make_shared<const Table>(std::move(dirty)), options) {}

Engine::Engine(std::shared_ptr<const repair::RepairAlgorithm> algorithm,
               dc::DcSet dcs, std::shared_ptr<const Table> dirty,
               EngineOptions options)
    : algorithm_(std::move(algorithm)),
      dcs_(std::move(dcs)),
      dirty_(std::move(dirty)),
      options_(options) {
  TREX_CHECK(algorithm_ != nullptr);
  TREX_CHECK(dirty_ != nullptr);
}

Engine Engine::Wrap(const repair::RepairAlgorithm& algorithm, dc::DcSet dcs,
                    Table dirty, EngineOptions options) {
  // Aliasing shared_ptr: shares no ownership, just points at `algorithm`.
  return Engine(std::shared_ptr<const repair::RepairAlgorithm>(
                    std::shared_ptr<const void>(), &algorithm),
                std::move(dcs), std::move(dirty), options);
}

Status Engine::EnsureRepair() {
  if (box_.has_value()) return Status::Ok();
  // The box *shares* the engine's dirty table (one resident copy, not
  // three across session/engine/box).
  TREX_ASSIGN_OR_RETURN(
      BlackBoxRepair box,
      BlackBoxRepair::MakeMultiTarget(algorithm_.get(), dcs_, dirty_, {}));
  box.set_max_memo_entries(options_.max_memo_entries);
  box.set_use_strong_table_hash(options_.use_strong_table_hash);
  box_ = std::move(box);
  return Status::Ok();
}

const Table& Engine::reference_clean() const {
  TREX_CHECK(box_.has_value()) << "call EnsureRepair() first";
  return box_->reference_clean();
}

std::size_t Engine::num_algorithm_calls() const {
  return box_.has_value() ? box_->num_algorithm_calls() : 0;
}

std::size_t Engine::num_cache_hits() const {
  return box_.has_value() ? box_->num_cache_hits() : 0;
}

std::size_t Engine::num_cross_request_hits() const {
  return box_.has_value() ? box_->num_cross_request_hits() : 0;
}

std::size_t Engine::num_cache_evictions() const {
  return box_.has_value() ? box_->num_memo_evictions() : 0;
}

std::size_t Engine::approx_memo_bytes() const {
  return box_.has_value() ? box_->approx_memo_bytes() : 0;
}

Result<std::size_t> Engine::EnsureTarget(CellRef target) {
  return box_->AddTarget(target);
}

ThreadPool* Engine::SweepPool() {
  if (options_.num_threads <= 1) return nullptr;
  if (pool_ == nullptr) {
    pool_ = std::make_unique<ThreadPool>(options_.num_threads);
  }
  return pool_.get();
}

Status Engine::RequireRepairedTarget(std::size_t target_index) const {
  if (!box_->target_was_repaired(target_index)) {
    const CellRef target = box_->target(target_index);
    return Status::InvalidArgument(
        "cell " + target.ToString(dirty_->schema()) +
        " was not repaired by the algorithm (value '" +
        dirty_->at(target).ToString() +
        "' is unchanged); pick a repaired cell");
  }
  return Status::Ok();
}

Status Engine::RequireMaskableConstraints() const {
  if (dcs_.empty()) {
    return Status::InvalidArgument("constraint set is empty");
  }
  if (dcs_.size() > BlackBoxRepair::kMaxMaskConstraints) {
    return Status::InvalidArgument(
        "constraint games support at most 64 constraints");
  }
  return Status::Ok();
}

Status Engine::ValidateRequest(const ExplainRequest& request) const {
  // Cheap input validation up front: a malformed request must never pay
  // for a reference repair run.
  switch (request.kind) {
    case ExplainKind::kConstraints:
    case ExplainKind::kRemovalSets:
      TREX_RETURN_NOT_OK(RequireMaskableConstraints());
      break;
    case ExplainKind::kInteractions:
      if (dcs_.size() < 2) {
        return Status::InvalidArgument(
            "interaction indices need at least two constraints");
      }
      TREX_RETURN_NOT_OK(RequireMaskableConstraints());
      break;
    case ExplainKind::kSingleCell:
      if (!request.single_cell.has_value()) {
        return Status::InvalidArgument(
            "kSingleCell requests must set ExplainRequest::single_cell");
      }
      if (request.single_cell->row >= dirty_->num_rows() ||
          request.single_cell->col >= dirty_->num_columns()) {
        return Status::OutOfRange("player cell " +
                                  request.single_cell->ToString() +
                                  " outside the table");
      }
      break;
    case ExplainKind::kCells:
      break;
  }
  if (request.target.row >= dirty_->num_rows() ||
      request.target.col >= dirty_->num_columns()) {
    return Status::OutOfRange("target cell " + request.target.ToString() +
                              " outside the table");
  }
  return Status::Ok();
}

Result<ExplainResult> Engine::Explain(const ExplainRequest& request) {
  TREX_RETURN_NOT_OK(ValidateRequest(request));
  if (request.cancel.cancelled()) {
    return Status::Cancelled("request cancelled before execution");
  }
  const std::size_t calls_before = num_algorithm_calls();
  const std::size_t hits_before = num_cache_hits();
  const std::size_t cross_before = num_cross_request_hits();
  TREX_RETURN_NOT_OK(EnsureRepair());
  box_->BeginRequest(next_request_id_++);
  TREX_ASSIGN_OR_RETURN(const std::size_t target_index,
                        EnsureTarget(request.target));

  // A failed memo-miss repair fires the box's abort token (see
  // repair_game.h's failure channel): merge it into the request's
  // cancel so every sweep shard stops at its next poll instead of
  // hammering a failing backend, then convert the resulting kCancelled
  // back into the underlying failure below.
  ExplainRequest effective = request;
  effective.cancel =
      CancelToken::AnyOf(effective.cancel, box_->eval_abort_token());

  ExplainResult result;
  result.kind = request.kind;
  result.target = request.target;
  Status dispatch = [&]() -> Status {
    switch (effective.kind) {
      case ExplainKind::kConstraints: {
        TREX_ASSIGN_OR_RETURN(
            Explanation ex,
            ExplainConstraints(target_index, effective, &result));
        result.explanation = std::move(ex);
        break;
      }
      case ExplainKind::kCells: {
        TREX_ASSIGN_OR_RETURN(Explanation ex,
                              ExplainCells(target_index, effective, &result));
        result.explanation = std::move(ex);
        break;
      }
      case ExplainKind::kInteractions: {
        TREX_ASSIGN_OR_RETURN(
            result.interactions,
            ExplainInteractions(target_index, effective.constraints,
                                effective.cancel));
        break;
      }
      case ExplainKind::kRemovalSets: {
        TREX_ASSIGN_OR_RETURN(
            result.removal_sets,
            ExplainRemovalSets(target_index, effective.constraints,
                               effective.max_removal_set_size,
                               effective.cancel));
        break;
      }
      case ExplainKind::kSingleCell: {
        TREX_ASSIGN_OR_RETURN(
            PlayerScore score,
            ExplainSingleCell(target_index, effective, &result));
        result.single_cell = std::move(score);
        break;
      }
    }
    return Status::Ok();
  }();
  // A failed eval taints everything derived after it: the box hands
  // the sweep a placeholder value for the call that failed, so the run
  // must report the repair failure (typically transient kUnavailable,
  // which the serving layer retries) no matter how the dispatch ended —
  // abort-driven kCancelled, a different error tripped by the
  // placeholder (e.g. a v(N)=0 rejection), or even nominal success.
  Status eval = box_->eval_error();
  if (!eval.ok()) return eval;
  if (!dispatch.ok()) return dispatch;
  result.algorithm_calls = num_algorithm_calls() - calls_before;
  result.cache_hits = num_cache_hits() - hits_before;
  result.cross_request_hits = num_cross_request_hits() - cross_before;
  if (result.explanation.has_value()) {
    // Per-request cost, not engine-lifetime totals: a second query on a
    // warm engine reports only the work it added.
    result.explanation->algorithm_calls = result.algorithm_calls;
    result.explanation->cache_hits = result.cache_hits;
  }
  return result;
}

Result<BatchResult> Engine::ExplainBatch(
    const std::vector<ExplainRequest>& requests, CancelToken cancel) {
  BatchResult batch;
  if (requests.empty()) return batch;  // nothing to serve, nothing to pay
  if (cancel.cancelled()) {
    // A dead batch must not pay for the reference repair — the
    // dominant cost on a cold engine.
    batch.stats.requests = requests.size();
    batch.stats.failed_requests = requests.size();
    batch.stats.cancelled_requests = requests.size();
    for (std::size_t i = 0; i < requests.size(); ++i) {
      batch.results.push_back(Status::Cancelled("batch cancelled"));
    }
    return batch;
  }
  const bool had_repair = box_.has_value();
  const std::size_t calls_before = num_algorithm_calls();
  const std::size_t hits_before = num_cache_hits();
  const std::size_t cross_before = num_cross_request_hits();
  const std::size_t evictions_before = num_cache_evictions();
  // One reference repair for the whole batch, however many targets.
  TREX_RETURN_NOT_OK(EnsureRepair());
  batch.stats.reference_repairs = had_repair ? 0 : 1;

  if (options_.seal_targets) {
    // Register the batch's full target set up front, then seal: memo
    // entries written while serving the batch store per-target outcome
    // bitsets instead of repaired tables. Out-of-range targets are
    // skipped here — their slots fail with the same status as before
    // when their request executes.
    for (const ExplainRequest& request : requests) {
      if (request.target.row < dirty_->num_rows() &&
          request.target.col < dirty_->num_columns()) {
        auto added = box_->AddTarget(request.target);
        TREX_CHECK(added.ok()) << added.status().ToString();
      }
    }
    box_->SealTargets();
  }

  batch.results.reserve(requests.size());
  for (const ExplainRequest& request : requests) {
    Result<ExplainResult> result = [&]() -> Result<ExplainResult> {
      // The batch-level token short-circuits remaining slots; merged
      // into each member it also stops a slot mid-sweep.
      if (cancel.cancelled()) {
        return Status::Cancelled("batch cancelled");
      }
      if (!cancel.can_be_cancelled()) return Explain(request);
      ExplainRequest merged = request;
      merged.cancel = CancelToken::AnyOf(merged.cancel, cancel);
      return Explain(merged);
    }();
    if (!result.ok()) {
      ++batch.stats.failed_requests;
      if (result.status().IsCancelled()) ++batch.stats.cancelled_requests;
    } else {
      // Anytime accounting: sweeps actually spent and the worst achieved
      // confidence width across the batch's sampled members.
      batch.stats.sweeps += result->sweeps;
      if (result->achieved_ci_half_width.has_value()) {
        batch.stats.max_achieved_ci_half_width =
            std::max(batch.stats.max_achieved_ci_half_width,
                     *result->achieved_ci_half_width);
      }
      if (result->early_stopped) ++batch.stats.early_stopped_requests;
      if (result->approximate) ++batch.stats.approximate_requests;
    }
    batch.results.push_back(std::move(result));
  }
  batch.stats.requests = requests.size();
  batch.stats.algorithm_calls = num_algorithm_calls() - calls_before;
  batch.stats.cache_hits = num_cache_hits() - hits_before;
  batch.stats.cross_request_hits = num_cross_request_hits() - cross_before;
  batch.stats.cache_evictions = num_cache_evictions() - evictions_before;
  batch.stats.approx_memo_bytes = approx_memo_bytes();
  return batch;
}

// The per-kind helpers assume `ValidateRequest` already screened the
// request; they only enforce conditions that need the reference repair.

const AnytimeOptions& Engine::EffectiveAnytime(
    const ExplainRequest& request) const {
  return request.anytime.has_value() ? *request.anytime : options_.anytime;
}

shap::StopRule Engine::EffectiveStopRule(const ExplainRequest& request) const {
  const AnytimeOptions& any = EffectiveAnytime(request);
  shap::StopRule stop;
  if (any.enabled()) {
    stop.target_half_width = any.target_ci_half_width;
    stop.bound = any.bound;
    stop.z = any.z;
    stop.delta = any.delta;
    stop.min_samples = any.min_samples;
    stop.freeze_converged = any.freeze_converged;
  }
  return stop;
}

namespace {

/// Copies a sweep outcome's anytime telemetry onto the request's result.
void RecordOutcome(const shap::SweepOutcome& outcome, ExplainResult* result) {
  if (result == nullptr) return;
  result->sweeps = outcome.sweeps;
  if (outcome.waves > 0) {
    result->achieved_ci_half_width = outcome.achieved_half_width;
  }
  result->early_stopped = outcome.stopped_early;
  result->approximate = outcome.softened;
}

}  // namespace

Result<Explanation> Engine::ExplainConstraints(std::size_t target_index,
                                               const ExplainRequest& request,
                                               ExplainResult* result) {
  const ConstraintExplainerOptions& options = request.constraints;
  const CancelToken& cancel = request.cancel;
  TREX_RETURN_NOT_OK(RequireRepairedTarget(target_index));

  ConstraintGame game(&*box_, target_index);
  Explanation ex = MakeBaseExplanation(*box_, target_index);

  const bool exact =
      !options.force_sampling && dcs_.size() <= options.max_exact_players;
  if (options.use_banzhaf && !exact) {
    return Status::InvalidArgument(
        "Banzhaf attribution is exact-only; reduce the constraint count "
        "or raise max_exact_players");
  }
  std::vector<PlayerScore> scores;
  scores.reserve(dcs_.size());
  if (exact) {
    shap::ExactShapleyOptions exact_options;
    exact_options.max_players = options.max_exact_players;
    // Shard the 2^n subset walk over the engine's persistent pool;
    // values are bit-identical for every thread count.
    exact_options.num_threads = options_.num_threads;
    exact_options.pool = SweepPool();
    exact_options.cancel = cancel;
    TREX_ASSIGN_OR_RETURN(
        std::vector<double> values,
        options.use_banzhaf
            ? shap::ComputeExactBanzhaf(game, exact_options)
            : shap::ComputeExactShapley(game, exact_options));
    for (std::size_t i = 0; i < dcs_.size(); ++i) {
      PlayerScore score;
      score.label = dcs_.at(i).name();
      score.shapley = values[i];
      score.constraint_index = i;
      scores.push_back(std::move(score));
    }
    ex.method = options.use_banzhaf ? "exact(banzhaf)" : "exact";
  } else {
    shap::SamplingOptions sampling = options.sampling;
    sampling.cancel = CancelToken::AnyOf(sampling.cancel, cancel);
    // 0 = unset: inherit the engine's thread count (and its persistent
    // pool). An explicit value is respected as a per-request override
    // and runs on its own transient pool.
    if (sampling.num_threads == 0) {
      sampling.num_threads = options_.num_threads;
      sampling.pool = SweepPool();
    }
    // Anytime stopping: the request-level rule applies unless the
    // caller's sampling options carry their own; the soften token is
    // merged either way so deadline degradation reaches every path.
    const AnytimeOptions& anytime = EffectiveAnytime(request);
    if (!sampling.stop.active() && anytime.enabled()) {
      sampling.stop = EffectiveStopRule(request);
      sampling.check_interval = anytime.check_interval;
      if (anytime.max_sweeps > 0) sampling.num_samples = anytime.max_sweeps;
    }
    sampling.stop.soften =
        CancelToken::AnyOf(sampling.stop.soften, request.soften);
    shap::SweepOutcome outcome;
    TREX_ASSIGN_OR_RETURN(
        std::vector<shap::Estimate> estimates,
        shap::EstimateShapleyAllPlayers(game, sampling, &outcome));
    RecordOutcome(outcome, result);
    for (std::size_t i = 0; i < dcs_.size(); ++i) {
      PlayerScore score;
      score.label = dcs_.at(i).name();
      score.shapley = estimates[i].value;
      score.std_error = estimates[i].std_error;
      score.num_samples = estimates[i].num_samples;
      score.constraint_index = i;
      scores.push_back(std::move(score));
    }
    ex.method = StrFormat("sampling(m=%zu)", options.sampling.num_samples);
  }
  ex.ranked = std::move(scores);
  RankDescending(&ex.ranked);
  return ex;
}

Result<std::vector<InteractionScore>> Engine::ExplainInteractions(
    std::size_t target_index, const ConstraintExplainerOptions& options,
    const CancelToken& cancel) {
  TREX_RETURN_NOT_OK(RequireRepairedTarget(target_index));

  ConstraintGame game(&*box_, target_index);
  shap::InteractionOptions interaction_options;
  interaction_options.max_players = options.max_exact_players;
  interaction_options.num_threads = options_.num_threads;
  interaction_options.pool = SweepPool();
  interaction_options.cancel = cancel;
  TREX_ASSIGN_OR_RETURN(
      std::vector<shap::Interaction> raw,
      shap::ComputeShapleyInteractions(game, interaction_options));
  std::vector<InteractionScore> scores;
  scores.reserve(raw.size());
  for (const shap::Interaction& interaction : raw) {
    scores.push_back(InteractionScore{
        dcs_.at(interaction.player_a).name(),
        dcs_.at(interaction.player_b).name(), interaction.value});
  }
  std::stable_sort(scores.begin(), scores.end(),
                   [](const InteractionScore& a, const InteractionScore& b) {
                     return std::fabs(a.interaction) >
                            std::fabs(b.interaction);
                   });
  return scores;
}

Result<std::vector<std::vector<std::string>>> Engine::ExplainRemovalSets(
    std::size_t target_index, const ConstraintExplainerOptions& options,
    std::size_t max_set_size, const CancelToken& cancel) {
  TREX_RETURN_NOT_OK(RequireRepairedTarget(target_index));

  ConstraintGame game(&*box_, target_index);
  shap::CounterfactualOptions counterfactual_options;
  counterfactual_options.max_set_size = max_set_size;
  counterfactual_options.max_players = options.max_exact_players;
  counterfactual_options.cancel = cancel;
  TREX_ASSIGN_OR_RETURN(auto removal_sets,
                        shap::MinimalRemovalSets(game, counterfactual_options));
  std::vector<std::vector<std::string>> named;
  named.reserve(removal_sets.size());
  for (const auto& removal : removal_sets) {
    std::vector<std::string> labels;
    labels.reserve(removal.size());
    for (std::size_t index : removal) labels.push_back(dcs_.at(index).name());
    named.push_back(std::move(labels));
  }
  return named;
}

Result<std::vector<CellRef>> Engine::PlayerCells(
    const CellExplainerOptions& options, CellRef target) const {
  if (!options.prune) return dirty_->AllCells();
  std::optional<dc::AttributeGraph> graph =
      algorithm_->InfluenceGraph(dcs_, dirty_->schema());
  if (!graph.has_value()) {
    graph = dc::AttributeGraph::FromDcSet(dcs_, dirty_->num_columns());
  }
  return dc::RelevantCells(*dirty_, *graph, target);
}

Result<Explanation> Engine::ExplainCells(std::size_t target_index,
                                         const ExplainRequest& request,
                                         ExplainResult* result) {
  const CellExplainerOptions& options = request.cells;
  const CancelToken& cancel = request.cancel;
  TREX_RETURN_NOT_OK(RequireRepairedTarget(target_index));
  const CellRef target = box_->target(target_index);
  TREX_ASSIGN_OR_RETURN(std::vector<CellRef> players,
                        PlayerCells(options, target));
  if (players.empty()) {
    return Status::InvalidArgument("no candidate player cells");
  }

  CellMethod method = options.method;
  if (method == CellMethod::kAuto) {
    method = (options.policy == AbsentCellPolicy::kNull &&
              players.size() <= options.max_exact_players)
                 ? CellMethod::kExact
                 : CellMethod::kSampling;
  }

  Explanation ex = MakeBaseExplanation(*box_, target_index);
  std::vector<PlayerScore> scores;
  scores.reserve(players.size());

  if (method == CellMethod::kExact) {
    if (options.policy != AbsentCellPolicy::kNull) {
      return Status::InvalidArgument(
          "exact cell Shapley requires AbsentCellPolicy::kNull (the "
          "column-sample policy defines a stochastic game)");
    }
    CellGame game(&*box_, players, target_index);
    shap::ExactShapleyOptions exact_options;
    exact_options.max_players = options.max_exact_players;
    exact_options.num_threads = options_.num_threads;
    exact_options.pool = SweepPool();
    exact_options.cancel = cancel;
    TREX_ASSIGN_OR_RETURN(std::vector<double> values,
                          shap::ComputeExactShapley(game, exact_options));
    for (std::size_t i = 0; i < players.size(); ++i) {
      PlayerScore score;
      score.cell = players[i];
      score.label = players[i].ToString(dirty_->schema());
      score.shapley = values[i];
      scores.push_back(std::move(score));
    }
    ex.method = "exact(null-policy)";
  } else {
    // Permutation-sweep sampling with the configured replacement policy
    // (Example 2.5 generalized to rank all players per sweep), sharded
    // like shap::EstimateShapleyAllPlayers: fixed shards with derived
    // seeds make the estimates independent of thread count.
    TableStats stats(&box_->dirty());
    if (options.policy == AbsentCellPolicy::kSampleFromColumn) {
      // Pre-build the column distributions serially: TableStats builds
      // lazily and shards must not race the first build.
      for (const CellRef& cell : players) stats.Column(cell.col);
    }

    auto replacement = [&](CellRef cell, Rng* rng) -> Value {
      if (options.policy == AbsentCellPolicy::kNull) return Value::Null();
      const ColumnStats& column = stats.Column(cell.col);
      if (column.total() == 0) return Value::Null();
      return column.Sample(rng);
    };

    auto one_sweep = [&](Rng* rng, std::vector<shap::RunningStat>* running,
                         const std::vector<bool>& frozen) {
      const std::vector<std::size_t> perm = rng->Permutation(players.size());
      // Baseline: every player absent (replaced); non-players untouched.
      // The working table is a *write set* over the dirty table —
      // restoring a player removes its write (swap-with-last; delta
      // fingerprints are order-insensitive) and XORs its precomputed
      // delta out of the running fingerprint, so each evaluation costs
      // O(1) hashing and the perturbed table is never materialized on
      // the memo hit path. Replacement draws stay in the exact order of
      // the materialized loop, so estimates are bit-identical. Frozen
      // players still have their writes removed in permutation order
      // (other players' coalitions are undisturbed) but skip both of
      // their evaluations; the preceding state is re-evaluated lazily
      // when the next unfrozen player needs it.
      std::vector<CellWrite> writes;
      std::vector<FingerprintDelta> deltas;  // parallel to `writes`
      writes.reserve(players.size());
      deltas.reserve(players.size());
      std::vector<std::size_t> slot_of(players.size());   // player -> slot
      std::vector<std::size_t> player_at(players.size()); // slot -> player
      std::uint64_t fp64 = 0;
      Hash128 fp128;
      box_->dirty_fingerprints(&fp64, &fp128);
      for (std::size_t i = 0; i < players.size(); ++i) {
        Value value = replacement(players[i], rng);
        const FingerprintDelta delta =
            box_->dirty().WriteDelta(players[i], value);
        fp64 ^= delta.fp64;
        fp128 ^= delta.fp128;
        writes.push_back({players[i], std::move(value)});
        deltas.push_back(delta);
        slot_of[i] = i;
        player_at[i] = i;
      }
      double prev = 0.0;
      bool have_prev = false;
      // One permutation sweep is the cancellation unit:
      // trex-check-ok(cancel-poll): RunShardedSweeps polls at shard bounds
      for (std::size_t pos = 0; pos < perm.size(); ++pos) {
        const std::size_t player = perm[pos];
        const std::size_t slot = slot_of[player];
        const std::size_t last = writes.size() - 1;
        const std::size_t moved = player_at[last];
        if (!frozen[player] && !have_prev) {
          // State before this player's restoration (the all-absent
          // baseline on the first unfrozen player).
          prev = box_->EvalPerturbation(writes, fp64, fp128, target_index)
                     ? 1.0
                     : 0.0;
        }
        fp64 ^= deltas[slot].fp64;  // deltas are self-inverse
        fp128 ^= deltas[slot].fp128;
        std::swap(writes[slot], writes[last]);
        std::swap(deltas[slot], deltas[last]);
        writes.pop_back();
        deltas.pop_back();
        slot_of[moved] = slot;
        player_at[slot] = moved;
        if (frozen[player]) {
          have_prev = false;
          continue;
        }
        const double curr =
            box_->EvalPerturbation(writes, fp64, fp128, target_index)
                ? 1.0
                : 0.0;
        (*running)[player].Add(curr - prev);
        prev = curr;
        have_prev = true;
      }
    };

    const AnytimeOptions& anytime = EffectiveAnytime(request);
    shap::ShardedSweepConfig config;
    config.num_samples = options.num_samples;
    config.shard_size = kCellShardSize;
    config.num_threads = options_.num_threads;
    config.seed = options.seed;
    if (anytime.enabled()) {
      config.stop = EffectiveStopRule(request);
      config.check_interval = anytime.check_interval;
      if (anytime.max_sweeps > 0) config.num_samples = anytime.max_sweeps;
    } else if (options.target_std_error.has_value()) {
      // Legacy shorthand: equivalent normal-theory rule (z·se ≤ z·target
      // ⇔ se ≤ target), checked every shard like before.
      config.stop.target_half_width =
          config.stop.z * *options.target_std_error;
    }
    config.stop.soften =
        CancelToken::AnyOf(config.stop.soften, request.soften);
    config.pool = SweepPool();
    config.cancel = cancel;
    shap::SweepOutcome outcome =
        shap::RunShardedSweeps(config, players.size(), one_sweep);
    if (cancel.cancelled()) {
      return Status::Cancelled("cell explanation cancelled mid-sweep");
    }
    RecordOutcome(outcome, result);

    for (std::size_t i = 0; i < players.size(); ++i) {
      const shap::Estimate estimate = outcome.stats[i].ToEstimate();
      PlayerScore score;
      score.cell = players[i];
      score.label = players[i].ToString(dirty_->schema());
      score.shapley = estimate.value;
      score.std_error = estimate.std_error;
      score.num_samples = estimate.num_samples;
      scores.push_back(std::move(score));
    }
    ex.method = StrFormat(
        "sampling(m=%zu, policy=%s, players=%zu/%zu)",
        options.num_samples, AbsentCellPolicyToString(options.policy),
        players.size(), dirty_->num_cells());
  }

  ex.ranked = std::move(scores);
  RankDescending(&ex.ranked);
  return ex;
}

Result<Explanation> Engine::ExplainTopKCells(
    CellRef target, std::size_t k, const CellExplainerOptions& options,
    CancelToken cancel, CancelToken soften) {
  if (options.policy != AbsentCellPolicy::kNull) {
    return Status::InvalidArgument(
        "ExplainTopK requires AbsentCellPolicy::kNull (the adaptive "
        "driver runs on the deterministic cell game)");
  }
  if (target.row >= dirty_->num_rows() || target.col >= dirty_->num_columns()) {
    return Status::OutOfRange("target cell " + target.ToString() +
                              " outside the table");
  }
  const std::size_t calls_before = num_algorithm_calls();
  const std::size_t hits_before = num_cache_hits();
  TREX_RETURN_NOT_OK(EnsureRepair());
  box_->BeginRequest(next_request_id_++);
  TREX_ASSIGN_OR_RETURN(const std::size_t target_index, EnsureTarget(target));
  TREX_RETURN_NOT_OK(RequireRepairedTarget(target_index));
  TREX_ASSIGN_OR_RETURN(std::vector<CellRef> players,
                        PlayerCells(options, target));
  if (players.empty()) {
    return Status::InvalidArgument("no candidate player cells");
  }

  CellGame game(&*box_, players, target_index);
  shap::TopKOptions topk;
  topk.k = k;
  topk.max_samples = options.num_samples;
  topk.seed = options.seed;
  // Refinement rounds fan out over the engine's persistent pool; the
  // separation test runs at round boundaries on deterministically
  // merged statistics, so the ranking is thread-count independent.
  topk.num_threads = options_.num_threads;
  topk.pool = SweepPool();
  if (options_.anytime.enabled()) {
    topk.bound = options_.anytime.bound;
    topk.z = options_.anytime.z;
  }
  // Same failure channel as Explain: a failed eval taints the run, so
  // the repair failure wins over any dispatch outcome — abort-driven
  // kCancelled, another error, or nominal success on placeholders.
  topk.cancel = CancelToken::AnyOf(cancel, box_->eval_abort_token());
  topk.soften = std::move(soften);
  auto topk_run = shap::EstimateTopKPlayers(game, topk);
  Status eval = box_->eval_error();
  if (!eval.ok()) return eval;
  if (!topk_run.ok()) return topk_run.status();
  shap::TopKResult result = std::move(*topk_run);

  Explanation ex = MakeBaseExplanation(*box_, target_index);
  ex.ranked.reserve(players.size());
  for (std::size_t player : result.ranking) {
    const shap::Estimate& estimate = result.estimates[player];
    PlayerScore score;
    score.cell = players[player];
    score.label = players[player].ToString(dirty_->schema());
    score.shapley = estimate.value;
    score.std_error = estimate.std_error;
    score.num_samples = estimate.num_samples;
    ex.ranked.push_back(std::move(score));
  }
  ex.method = StrFormat("topk(k=%zu, sweeps=%zu, separated=%s%s)", k,
                        result.sweeps, result.separated ? "yes" : "no",
                        result.softened ? ", softened" : "");
  ex.algorithm_calls = num_algorithm_calls() - calls_before;
  ex.cache_hits = num_cache_hits() - hits_before;
  return ex;
}

Result<PlayerScore> Engine::ExplainSingleCell(std::size_t target_index,
                                              const ExplainRequest& request,
                                              ExplainResult* result) {
  const CellExplainerOptions& options = request.cells;
  const CancelToken& cancel = request.cancel;
  const CellRef player_cell = *request.single_cell;
  TREX_RETURN_NOT_OK(RequireRepairedTarget(target_index));
  const CellRef target = box_->target(target_index);

  TREX_ASSIGN_OR_RETURN(std::vector<CellRef> players,
                        PlayerCells(options, target));
  // The player of interest must be in the game even if pruning would
  // drop it (its Shapley value is then provably 0, but we measure it).
  if (std::find(players.begin(), players.end(), player_cell) ==
      players.end()) {
    players.push_back(player_cell);
  }
  std::size_t player_index = 0;
  for (std::size_t i = 0; i < players.size(); ++i) {
    if (players[i] == player_cell) player_index = i;
  }

  Rng rng(options.seed);
  TableStats stats(&box_->dirty());
  auto replacement = [&](CellRef cell) -> Value {
    if (options.policy == AbsentCellPolicy::kNull) return Value::Null();
    const ColumnStats& column = stats.Column(cell.col);
    if (column.total() == 0) return Value::Null();
    return column.Sample(&rng);
  };

  // Example 2.5: per iteration, draw a permutation; the coalition is the
  // players preceding the cell of interest. The with/without pair shares
  // one write set — "without" appends the replacement of the cell of
  // interest — so neither instance is materialized on the memo hit path.
  // Replacement draws keep the original order, so estimates are
  // bit-identical to the materialized loop.
  const AnytimeOptions& anytime = EffectiveAnytime(request);
  const shap::StopRule stop = EffectiveStopRule(request);
  std::size_t budget = options.num_samples;
  if (anytime.enabled() && anytime.max_sweeps > 0) budget = anytime.max_sweeps;
  const std::size_t check_interval =
      std::max<std::size_t>(1, anytime.check_interval);
  bool early_stopped = false;
  bool approximate = false;
  shap::RunningStat stat;
  std::vector<CellWrite> writes;
  for (std::size_t sample = 0; sample < budget; ++sample) {
    if (cancel.cancelled()) {
      return Status::Cancelled("single-cell estimation cancelled");
    }
    if (request.soften.cancelled()) {
      // Deadline degradation: keep what we have, flag it approximate.
      approximate = stat.count() > 0;
      if (approximate) break;
    }
    const std::vector<std::size_t> perm = rng.Permutation(players.size());
    writes.clear();
    std::uint64_t fp64 = 0;
    Hash128 fp128;
    box_->dirty_fingerprints(&fp64, &fp128);
    auto push_write = [&](CellRef cell, Value value) {
      const FingerprintDelta delta = box_->dirty().WriteDelta(cell, value);
      fp64 ^= delta.fp64;
      fp128 ^= delta.fp128;
      writes.push_back({cell, std::move(value)});
    };
    bool before_player = true;
    for (std::size_t pos = 0; pos < perm.size(); ++pos) {
      if (perm[pos] == player_index) {
        before_player = false;
        continue;
      }
      if (!before_player) {
        const CellRef cell = players[perm[pos]];
        push_write(cell, replacement(cell));
      }
    }
    const double v_with =
        box_->EvalPerturbation(writes, fp64, fp128, target_index) ? 1.0
                                                                  : 0.0;
    push_write(player_cell, replacement(player_cell));
    const double v_without =
        box_->EvalPerturbation(writes, fp64, fp128, target_index) ? 1.0
                                                                  : 0.0;
    stat.Add(v_with - v_without);
    if (stop.target_half_width.has_value() &&
        (sample + 1) % check_interval == 0 &&
        stat.count() >= std::max<std::size_t>(stop.min_samples, 2) &&
        shap::CiHalfWidth(stat, stop) <= *stop.target_half_width) {
      early_stopped = sample + 1 < budget;
      break;
    }
  }

  if (result != nullptr) {
    result->sweeps = stat.count();
    if (stat.count() >= 2) {
      result->achieved_ci_half_width = shap::CiHalfWidth(stat, stop);
    }
    result->early_stopped = early_stopped;
    result->approximate = approximate;
  }
  const shap::Estimate estimate = stat.ToEstimate();
  PlayerScore score;
  score.cell = player_cell;
  score.label = player_cell.ToString(dirty_->schema());
  score.shapley = estimate.value;
  score.std_error = estimate.std_error;
  score.num_samples = estimate.num_samples;
  return score;
}

}  // namespace trex
