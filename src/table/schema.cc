#include "table/schema.h"

#include "common/logging.h"

namespace trex {

Schema::Schema(std::vector<Attribute> attributes) {
  auto result = Make(std::move(attributes));
  TREX_CHECK(result.ok()) << result.status().ToString();
  *this = std::move(result).value();
}

Schema Schema::AllStrings(std::initializer_list<const char*> names) {
  std::vector<Attribute> attrs;
  attrs.reserve(names.size());
  for (const char* name : names) {
    attrs.push_back(Attribute{name, ValueType::kString});
  }
  return Schema(std::move(attrs));
}

Result<Schema> Schema::Make(std::vector<Attribute> attributes) {
  Schema schema;
  for (std::size_t i = 0; i < attributes.size(); ++i) {
    if (attributes[i].name.empty()) {
      return Status::InvalidArgument("attribute " + std::to_string(i) +
                                     " has an empty name");
    }
    auto [it, inserted] = schema.index_.emplace(attributes[i].name, i);
    (void)it;
    if (!inserted) {
      return Status::AlreadyExists("duplicate attribute name: " +
                                   attributes[i].name);
    }
  }
  schema.attributes_ = std::move(attributes);
  return schema;
}

const Attribute& Schema::attribute(std::size_t index) const {
  TREX_CHECK_LT(index, attributes_.size());
  return attributes_[index];
}

Result<std::size_t> Schema::IndexOf(const std::string& name) const {
  auto it = index_.find(name);
  if (it == index_.end()) {
    return Status::NotFound("no attribute named '" + name + "'");
  }
  return it->second;
}

bool Schema::Contains(const std::string& name) const {
  return index_.count(name) > 0;
}

std::string Schema::ToString() const {
  std::string out = "(";
  for (std::size_t i = 0; i < attributes_.size(); ++i) {
    if (i > 0) out += ", ";
    out += attributes_[i].name;
    out += ":";
    out += ValueTypeToString(attributes_[i].type);
  }
  out += ")";
  return out;
}

}  // namespace trex
