#include "table/value.h"

#include <cmath>
#include <functional>
#include <ostream>

#include "common/hash.h"
#include "common/logging.h"
#include "common/string_util.h"

namespace trex {

const char* ValueTypeToString(ValueType type) {
  switch (type) {
    case ValueType::kNull:
      return "null";
    case ValueType::kInt:
      return "int";
    case ValueType::kDouble:
      return "double";
    case ValueType::kString:
      return "string";
  }
  return "?";
}

std::int64_t Value::as_int() const {
  TREX_CHECK(is_int()) << "Value is " << ValueTypeToString(type());
  return std::get<std::int64_t>(repr_);
}

double Value::as_double() const {
  TREX_CHECK(is_double()) << "Value is " << ValueTypeToString(type());
  return std::get<double>(repr_);
}

const std::string& Value::as_string() const {
  TREX_CHECK(is_string()) << "Value is " << ValueTypeToString(type());
  return std::get<std::string>(repr_);
}

double Value::AsNumeric() const {
  if (is_int()) return static_cast<double>(std::get<std::int64_t>(repr_));
  if (is_double()) return std::get<double>(repr_);
  TREX_CHECK(false) << "Value is not numeric: " << ToString();
  return 0;
}

int Value::Compare(const Value& other) const {
  const bool a_num = is_numeric();
  const bool b_num = other.is_numeric();
  if (a_num && b_num) {
    // Compare ints exactly when both are ints; otherwise numerically.
    if (is_int() && other.is_int()) {
      const std::int64_t a = std::get<std::int64_t>(repr_);
      const std::int64_t b = std::get<std::int64_t>(other.repr_);
      return a < b ? -1 : (a > b ? 1 : 0);
    }
    const double a = AsNumeric();
    const double b = other.AsNumeric();
    return a < b ? -1 : (a > b ? 1 : 0);
  }
  // Order classes: null(0) < numeric(1) < string(2).
  auto cls = [](const Value& v) {
    if (v.is_null()) return 0;
    if (v.is_numeric()) return 1;
    return 2;
  };
  const int ca = cls(*this);
  const int cb = cls(other);
  if (ca != cb) return ca < cb ? -1 : 1;
  if (ca == 0) return 0;  // both null
  // Both strings.
  const std::string& a = std::get<std::string>(repr_);
  const std::string& b = std::get<std::string>(other.repr_);
  return a < b ? -1 : (a > b ? 1 : 0);
}

std::size_t Value::Hash() const {
  switch (type()) {
    case ValueType::kNull:
      return 0x9ae16a3b2f90404fULL;
    case ValueType::kInt: {
      // Hash via the double representation when it is exact, so that
      // Value(1) and Value(1.0) — which compare equal — hash alike.
      const std::int64_t v = std::get<std::int64_t>(repr_);
      const double d = static_cast<double>(v);
      if (static_cast<std::int64_t>(d) == v) {
        return std::hash<double>{}(d);
      }
      return std::hash<std::int64_t>{}(v);
    }
    case ValueType::kDouble:
      return std::hash<double>{}(std::get<double>(repr_));
    case ValueType::kString:
      return static_cast<std::size_t>(Fnv1a(std::get<std::string>(repr_)));
  }
  return 0;
}

std::string Value::ToString() const {
  switch (type()) {
    case ValueType::kNull:
      return "∅";
    case ValueType::kInt:
      return std::to_string(std::get<std::int64_t>(repr_));
    case ValueType::kDouble:
      return FormatDouble(std::get<double>(repr_));
    case ValueType::kString:
      return std::get<std::string>(repr_);
  }
  return "?";
}

Result<Value> Value::Parse(std::string_view text, ValueType type) {
  const std::string_view trimmed = TrimView(text);
  if (trimmed.empty()) return Value::Null();
  switch (type) {
    case ValueType::kNull:
      return Value::Null();
    case ValueType::kInt: {
      TREX_ASSIGN_OR_RETURN(std::int64_t v, ParseInt64(trimmed));
      return Value(v);
    }
    case ValueType::kDouble: {
      TREX_ASSIGN_OR_RETURN(double v, ParseDouble(trimmed));
      return Value(v);
    }
    case ValueType::kString:
      return Value(std::string(text));
  }
  return Status::InvalidArgument("unknown value type");
}

Value Value::Infer(std::string_view text) {
  const std::string_view trimmed = TrimView(text);
  if (trimmed.empty()) return Value::Null();
  if (LooksLikeInt(trimmed)) {
    auto parsed = ParseInt64(trimmed);
    if (parsed.ok()) return Value(*parsed);
  }
  if (LooksLikeDouble(trimmed)) {
    auto parsed = ParseDouble(trimmed);
    if (parsed.ok()) return Value(*parsed);
  }
  return Value(std::string(text));
}

std::ostream& operator<<(std::ostream& os, const Value& value) {
  return os << value.ToString();
}

}  // namespace trex
