// CSV import/export for `Table` (RFC 4180 quoting, header row, optional
// type inference).

#ifndef TREX_TABLE_CSV_H_
#define TREX_TABLE_CSV_H_

#include <string>
#include <string_view>

#include "common/status.h"
#include "table/table.h"

namespace trex {

/// Options controlling CSV parsing.
struct CsvOptions {
  char separator = ',';
  /// When true, column types are inferred from the data (int, then double,
  /// then string); when false, every column is a string.
  bool infer_types = true;
  /// Cells equal to this marker (after trimming) parse to null, in
  /// addition to empty cells.
  std::string null_marker = "NULL";
};

/// Parses CSV text whose first record is the header into a `Table`.
[[nodiscard]] Result<Table> ReadCsv(std::string_view text, const CsvOptions& options = {});

/// Reads and parses a CSV file.
[[nodiscard]] Result<Table> ReadCsvFile(const std::string& path,
                          const CsvOptions& options = {});

/// Serializes a table (with header) to CSV text. Null cells render as the
/// empty field.
std::string WriteCsv(const Table& table, char separator = ',');

/// Writes a table to a file.
[[nodiscard]] Status WriteCsvFile(const Table& table, const std::string& path,
                    char separator = ',');

}  // namespace trex

#endif  // TREX_TABLE_CSV_H_
