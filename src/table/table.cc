#include "table/table.h"

#include <algorithm>

#include "common/hash.h"
#include "common/logging.h"

namespace trex {

std::string CellRef::ToString() const {
  return "(" + std::to_string(row) + "," + std::to_string(col) + ")";
}

std::string CellRef::ToString(const Schema& schema) const {
  if (col < schema.size()) {
    return "t" + std::to_string(row + 1) + "[" + schema.attribute(col).name +
           "]";
  }
  return ToString();
}

Status Table::AppendRow(std::vector<Value> row) {
  if (row.size() != schema_.size()) {
    return Status::InvalidArgument(
        "row arity " + std::to_string(row.size()) +
        " does not match schema arity " + std::to_string(schema_.size()));
  }
  for (auto& value : row) cells_.push_back(std::move(value));
  return Status::Ok();
}

const Value& Table::at(std::size_t row, std::size_t col) const {
  TREX_CHECK_LT(row, num_rows());
  TREX_CHECK_LT(col, num_columns());
  return cells_[row * num_columns() + col];
}

void Table::Set(std::size_t row, std::size_t col, Value value) {
  TREX_CHECK_LT(row, num_rows());
  TREX_CHECK_LT(col, num_columns());
  cells_[row * num_columns() + col] = std::move(value);
}

CellRef Table::FromLinearIndex(std::size_t index) const {
  TREX_CHECK_LT(index, cells_.size());
  return CellRef{index / num_columns(), index % num_columns()};
}

std::vector<CellRef> Table::AllCells() const {
  std::vector<CellRef> cells;
  cells.reserve(num_cells());
  for (std::size_t r = 0; r < num_rows(); ++r) {
    for (std::size_t c = 0; c < num_columns(); ++c) {
      cells.push_back(CellRef{r, c});
    }
  }
  return cells;
}

const Value& Table::Cell(std::size_t row, const std::string& attribute) const {
  auto col = schema_.IndexOf(attribute);
  TREX_CHECK(col.ok()) << col.status().ToString();
  return at(row, *col);
}

namespace {

/// One FNV pass feeding both fingerprint widths at once (tables are
/// hashed on the memo's hot path; one traversal, two digests).
struct DualFnv {
  std::uint64_t h64 = 0xcbf29ce484222325ULL;
  Fnv1a128 h128;

  void Mix(const void* data, std::size_t len) {
    h64 = Fnv1aBytes(data, len, h64);
    h128.Mix(data, len);
  }
};

struct DualHash {
  std::uint64_t fp64 = 0;
  Hash128 fp128;
};

/// Serializes one value into the hash state: a type tag plus the value
/// bytes. String payloads are length-prefixed so the serialization stays
/// prefix-free within a cell — null, "", and 0 hash apart (type tags),
/// and no payload byte can masquerade as a tag. Cross-cell masquerading
/// (the old sequential scheme's ("a\x03","b") vs ("a","\x03b") trap)
/// is structurally impossible here: every cell is hashed in isolation.
template <typename Hasher>
void MixValue(Hasher* h, const Value& v) {
  const std::uint8_t tag = static_cast<std::uint8_t>(v.type());
  h->Mix(&tag, 1);
  switch (v.type()) {
    case ValueType::kNull:
      break;
    case ValueType::kInt: {
      const std::int64_t x = v.as_int();
      h->Mix(&x, sizeof(x));
      break;
    }
    case ValueType::kDouble: {
      const double x = v.as_double();
      h->Mix(&x, sizeof(x));
      break;
    }
    case ValueType::kString: {
      const std::uint64_t length = v.as_string().size();
      h->Mix(&length, sizeof(length));
      h->Mix(v.as_string().data(), v.as_string().size());
      break;
    }
  }
}

/// The XOR unit of the table fingerprints: a position-keyed hash of one
/// cell. Seeding with (row, col) makes equal values in different cells
/// hash apart, so the XOR of all cell hashes is order-insensitive yet
/// position-sensitive — and any single-cell change shifts the combined
/// fingerprint by exactly H(pos, old) ^ H(pos, new). `Hasher` is
/// `DualFnv` on the memo path (which needs both widths) or a bare
/// 64-bit state for single-width callers (the router key), who must
/// not pay for the 128-bit multiplies.
template <typename Hasher>
void MixCell(Hasher* h, std::size_t row, std::size_t col, const Value& v) {
  const std::uint64_t r = row;
  const std::uint64_t c = col;
  h->Mix(&r, sizeof(r));
  h->Mix(&c, sizeof(c));
  MixValue(h, v);
}

DualHash CellContentHash(std::size_t row, std::size_t col, const Value& v) {
  DualFnv h;
  MixCell(&h, row, col, v);
  return {h.h64, h.h128.Digest()};
}

/// 64-bit-only FNV state with the `Mix` shape `MixCell` expects.
struct Fnv64 {
  std::uint64_t h64 = 0xcbf29ce484222325ULL;
  void Mix(const void* data, std::size_t len) {
    h64 = Fnv1aBytes(data, len, h64);
  }
};

template <typename Hasher>
void MixSchema(Hasher* h, const Schema& schema) {
  const std::string schema_string = schema.ToString();
  const std::uint64_t length = schema_string.size();
  h->Mix(&length, sizeof(length));
  h->Mix(schema_string.data(), schema_string.size());
}

DualHash SchemaHash(const Schema& schema) {
  DualFnv h;
  MixSchema(&h, schema);
  return {h.h64, h.h128.Digest()};
}

}  // namespace

std::uint64_t Table::Fingerprint() const {
  // Single-width traversal: callers that only key on 64 bits (the
  // engine router) must not pay the 128-bit per-byte multiplies.
  Fnv64 schema_hash;
  MixSchema(&schema_hash, schema_);
  std::uint64_t fp64 = schema_hash.h64;
  const std::size_t columns = num_columns();
  for (std::size_t i = 0; i < cells_.size(); ++i) {
    Fnv64 cell;
    MixCell(&cell, i / columns, i % columns, cells_[i]);
    fp64 ^= cell.h64;
  }
  return fp64;
}

Hash128 Table::StrongFingerprint() const {
  std::uint64_t fp64 = 0;
  Hash128 fp128;
  DualFingerprint(&fp64, &fp128);
  return fp128;
}

void Table::DualFingerprint(std::uint64_t* fp64, Hash128* fp128) const {
  DualHash combined = SchemaHash(schema_);
  const std::size_t columns = num_columns();
  for (std::size_t i = 0; i < cells_.size(); ++i) {
    const DualHash cell = CellContentHash(i / columns, i % columns, cells_[i]);
    combined.fp64 ^= cell.fp64;
    combined.fp128 ^= cell.fp128;
  }
  *fp64 = combined.fp64;
  *fp128 = combined.fp128;
}

void Table::DeltaFingerprint(std::uint64_t base64, const Hash128& base128,
                             std::span<const CellWrite> writes,
                             std::uint64_t* fp64, Hash128* fp128) const {
  std::uint64_t h64 = base64;
  Hash128 h128 = base128;
  for (const CellWrite& write : writes) {
    const FingerprintDelta delta = WriteDelta(write.cell, write.value);
    h64 ^= delta.fp64;
    h128 ^= delta.fp128;
  }
  *fp64 = h64;
  *fp128 = h128;
}

FingerprintDelta Table::WriteDelta(CellRef cell, const Value& value) const {
  const DualHash old_hash = CellContentHash(cell.row, cell.col, at(cell));
  const DualHash new_hash = CellContentHash(cell.row, cell.col, value);
  return FingerprintDelta{old_hash.fp64 ^ new_hash.fp64,
                          old_hash.fp128 ^ new_hash.fp128};
}

bool Table::EqualsWithWrites(const Table& base,
                             std::span<const CellWrite> writes) const {
  if (schema_ != base.schema_ || cells_.size() != base.cells_.size()) {
    return false;
  }
  // Written cells must carry the write values...
  for (const CellWrite& write : writes) {
    TREX_CHECK_LT(write.cell.row, base.num_rows());
    TREX_CHECK_LT(write.cell.col, base.num_columns());
    if (at(write.cell) != write.value) return false;
  }
  // ...and every other cell must match the base. The written linear
  // indices are sorted into a reusable thread-local scratch so the
  // single merge pass below allocates nothing in steady state.
  thread_local std::vector<std::size_t> written;
  written.clear();
  written.reserve(writes.size());
  for (const CellWrite& write : writes) {
    written.push_back(base.LinearIndex(write.cell));
  }
  std::sort(written.begin(), written.end());
  std::size_t next_written = 0;
  for (std::size_t i = 0; i < cells_.size(); ++i) {
    if (next_written < written.size() && written[next_written] == i) {
      ++next_written;
      continue;
    }
    if (cells_[i] != base.cells_[i]) return false;
  }
  return true;
}

std::size_t Table::ApproxMemoryBytes() const {
  std::size_t bytes = sizeof(Table) + cells_.capacity() * sizeof(Value);
  for (const Value& v : cells_) {
    if (v.is_string()) bytes += v.as_string().capacity();
  }
  for (std::size_t c = 0; c < schema_.size(); ++c) {
    bytes += schema_.attribute(c).name.capacity();
  }
  return bytes;
}

Table Table::WithNulls(const std::vector<CellRef>& cells) const {
  Table out = *this;
  for (const CellRef& cell : cells) {
    out.Set(cell, Value::Null());
  }
  return out;
}

std::size_t Table::CountNulls() const {
  std::size_t count = 0;
  for (const Value& v : cells_) {
    if (v.is_null()) ++count;
  }
  return count;
}

}  // namespace trex
