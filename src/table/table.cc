#include "table/table.h"

#include "common/hash.h"
#include "common/logging.h"

namespace trex {

std::string CellRef::ToString() const {
  return "(" + std::to_string(row) + "," + std::to_string(col) + ")";
}

std::string CellRef::ToString(const Schema& schema) const {
  if (col < schema.size()) {
    return "t" + std::to_string(row + 1) + "[" + schema.attribute(col).name +
           "]";
  }
  return ToString();
}

Status Table::AppendRow(std::vector<Value> row) {
  if (row.size() != schema_.size()) {
    return Status::InvalidArgument(
        "row arity " + std::to_string(row.size()) +
        " does not match schema arity " + std::to_string(schema_.size()));
  }
  for (auto& value : row) cells_.push_back(std::move(value));
  return Status::Ok();
}

const Value& Table::at(std::size_t row, std::size_t col) const {
  TREX_CHECK_LT(row, num_rows());
  TREX_CHECK_LT(col, num_columns());
  return cells_[row * num_columns() + col];
}

void Table::Set(std::size_t row, std::size_t col, Value value) {
  TREX_CHECK_LT(row, num_rows());
  TREX_CHECK_LT(col, num_columns());
  cells_[row * num_columns() + col] = std::move(value);
}

CellRef Table::FromLinearIndex(std::size_t index) const {
  TREX_CHECK_LT(index, cells_.size());
  return CellRef{index / num_columns(), index % num_columns()};
}

std::vector<CellRef> Table::AllCells() const {
  std::vector<CellRef> cells;
  cells.reserve(num_cells());
  for (std::size_t r = 0; r < num_rows(); ++r) {
    for (std::size_t c = 0; c < num_columns(); ++c) {
      cells.push_back(CellRef{r, c});
    }
  }
  return cells;
}

const Value& Table::Cell(std::size_t row, const std::string& attribute) const {
  auto col = schema_.IndexOf(attribute);
  TREX_CHECK(col.ok()) << col.status().ToString();
  return at(row, *col);
}

namespace {

/// The one serialization both fingerprint widths hash: schema string,
/// then per cell a type tag plus the value bytes, in row-major order.
/// Variable-length fields (the schema string, string cells) are
/// length-prefixed so no cell's bytes can masquerade as another cell's
/// type tag — without the prefix, ("a\x03", "b") and ("a", "\x03b")
/// would serialize identically (0x03 is the string tag) and collide
/// *deterministically*, which the strong-hash memo mode must never
/// allow. `mix` is called as mix(data, len).
template <typename Mix>
void MixTableContent(const Schema& schema, const std::vector<Value>& cells,
                     Mix&& mix) {
  auto mix_sized = [&mix](const char* data, std::size_t size) {
    const std::uint64_t length = size;
    mix(&length, sizeof(length));
    mix(data, size);
  };
  const std::string schema_string = schema.ToString();
  mix_sized(schema_string.data(), schema_string.size());
  for (const Value& v : cells) {
    const std::uint8_t tag = static_cast<std::uint8_t>(v.type());
    mix(&tag, 1);
    switch (v.type()) {
      case ValueType::kNull:
        break;
      case ValueType::kInt: {
        const std::int64_t x = v.as_int();
        mix(&x, sizeof(x));
        break;
      }
      case ValueType::kDouble: {
        const double x = v.as_double();
        mix(&x, sizeof(x));
        break;
      }
      case ValueType::kString:
        mix_sized(v.as_string().data(), v.as_string().size());
        break;
    }
  }
}

}  // namespace

std::uint64_t Table::Fingerprint() const {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  MixTableContent(schema_, cells_, [&h](const void* data, std::size_t len) {
    h = Fnv1aBytes(data, len, h);
  });
  return h;
}

Hash128 Table::StrongFingerprint() const {
  Fnv1a128 h;
  MixTableContent(schema_, cells_, [&h](const void* data, std::size_t len) {
    h.Mix(data, len);
  });
  return h.Digest();
}

void Table::DualFingerprint(std::uint64_t* fp64, Hash128* fp128) const {
  std::uint64_t h64 = 0xcbf29ce484222325ULL;
  Fnv1a128 h128;
  MixTableContent(schema_, cells_,
                  [&h64, &h128](const void* data, std::size_t len) {
                    h64 = Fnv1aBytes(data, len, h64);
                    h128.Mix(data, len);
                  });
  *fp64 = h64;
  *fp128 = h128.Digest();
}

Table Table::WithNulls(const std::vector<CellRef>& cells) const {
  Table out = *this;
  for (const CellRef& cell : cells) {
    out.Set(cell, Value::Null());
  }
  return out;
}

std::size_t Table::CountNulls() const {
  std::size_t count = 0;
  for (const Value& v : cells_) {
    if (v.is_null()) ++count;
  }
  return count;
}

}  // namespace trex
