#include "table/table.h"

#include "common/hash.h"
#include "common/logging.h"

namespace trex {

std::string CellRef::ToString() const {
  return "(" + std::to_string(row) + "," + std::to_string(col) + ")";
}

std::string CellRef::ToString(const Schema& schema) const {
  if (col < schema.size()) {
    return "t" + std::to_string(row + 1) + "[" + schema.attribute(col).name +
           "]";
  }
  return ToString();
}

Status Table::AppendRow(std::vector<Value> row) {
  if (row.size() != schema_.size()) {
    return Status::InvalidArgument(
        "row arity " + std::to_string(row.size()) +
        " does not match schema arity " + std::to_string(schema_.size()));
  }
  for (auto& value : row) cells_.push_back(std::move(value));
  return Status::Ok();
}

const Value& Table::at(std::size_t row, std::size_t col) const {
  TREX_CHECK_LT(row, num_rows());
  TREX_CHECK_LT(col, num_columns());
  return cells_[row * num_columns() + col];
}

void Table::Set(std::size_t row, std::size_t col, Value value) {
  TREX_CHECK_LT(row, num_rows());
  TREX_CHECK_LT(col, num_columns());
  cells_[row * num_columns() + col] = std::move(value);
}

CellRef Table::FromLinearIndex(std::size_t index) const {
  TREX_CHECK_LT(index, cells_.size());
  return CellRef{index / num_columns(), index % num_columns()};
}

std::vector<CellRef> Table::AllCells() const {
  std::vector<CellRef> cells;
  cells.reserve(num_cells());
  for (std::size_t r = 0; r < num_rows(); ++r) {
    for (std::size_t c = 0; c < num_columns(); ++c) {
      cells.push_back(CellRef{r, c});
    }
  }
  return cells;
}

const Value& Table::Cell(std::size_t row, const std::string& attribute) const {
  auto col = schema_.IndexOf(attribute);
  TREX_CHECK(col.ok()) << col.status().ToString();
  return at(row, *col);
}

std::uint64_t Table::Fingerprint() const {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  h = Fnv1a(schema_.ToString(), h);
  for (const Value& v : cells_) {
    const std::uint8_t tag = static_cast<std::uint8_t>(v.type());
    h = Fnv1aBytes(&tag, 1, h);
    switch (v.type()) {
      case ValueType::kNull:
        break;
      case ValueType::kInt: {
        const std::int64_t x = v.as_int();
        h = Fnv1aBytes(&x, sizeof(x), h);
        break;
      }
      case ValueType::kDouble: {
        const double x = v.as_double();
        h = Fnv1aBytes(&x, sizeof(x), h);
        break;
      }
      case ValueType::kString:
        h = Fnv1a(v.as_string(), h);
        break;
    }
  }
  return h;
}

Table Table::WithNulls(const std::vector<CellRef>& cells) const {
  Table out = *this;
  for (const CellRef& cell : cells) {
    out.Set(cell, Value::Null());
  }
  return out;
}

std::size_t Table::CountNulls() const {
  std::size_t count = 0;
  for (const Value& v : cells_) {
    if (v.is_null()) ++count;
  }
  return count;
}

}  // namespace trex
