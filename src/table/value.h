// `Value`: the dynamically-typed cell value used throughout T-REx.
//
// A value is null, a 64-bit integer, a double, or a string. Nulls are
// first-class because the Shapley cell game (paper §2.2) removes cells from
// a coalition by setting them to null; predicate evaluation gives nulls
// SQL-style semantics (see dc/predicate.h) while `Value` itself provides
// plain structural equality so values can live in hash maps.

#ifndef TREX_TABLE_VALUE_H_
#define TREX_TABLE_VALUE_H_

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <variant>

#include "common/status.h"

namespace trex {

/// The runtime type of a `Value`.
enum class ValueType : std::uint8_t {
  kNull = 0,
  kInt = 1,
  kDouble = 2,
  kString = 3,
};

/// Returns "null", "int", "double", or "string".
const char* ValueTypeToString(ValueType type);

/// A single table cell value. Immutable once constructed; cheap to copy
/// for numeric payloads, string payloads share no state (value semantics).
class Value {
 public:
  /// Constructs a null value.
  Value() : repr_(std::monostate{}) {}

  /// Typed constructors (implicit on purpose — literals read naturally in
  /// row builders: `table.AppendRow({"Real Madrid", 2017, 1})`).
  Value(std::int64_t v) : repr_(v) {}         // NOLINT(runtime/explicit)
  Value(int v) : repr_(std::int64_t{v}) {}    // NOLINT(runtime/explicit)
  Value(double v) : repr_(v) {}               // NOLINT(runtime/explicit)
  Value(std::string v) : repr_(std::move(v)) {}  // NOLINT(runtime/explicit)
  Value(const char* v) : repr_(std::string(v)) {}  // NOLINT(runtime/explicit)

  /// Named constructor for the null value.
  static Value Null() { return Value(); }

  /// The runtime type tag.
  ValueType type() const {
    return static_cast<ValueType>(repr_.index());
  }

  /// True iff this is the null value.
  bool is_null() const { return type() == ValueType::kNull; }
  bool is_int() const { return type() == ValueType::kInt; }
  bool is_double() const { return type() == ValueType::kDouble; }
  bool is_string() const { return type() == ValueType::kString; }
  bool is_numeric() const { return is_int() || is_double(); }

  /// Typed accessors; calling the wrong one aborts (programmer error).
  std::int64_t as_int() const;
  double as_double() const;
  const std::string& as_string() const;

  /// Numeric view: ints widen to double. Must be numeric.
  double AsNumeric() const;

  /// Structural equality. Null equals null; `1` (int) equals `1.0`
  /// (double) numerically; strings compare bytewise.
  bool operator==(const Value& other) const { return Compare(other) == 0; }
  bool operator!=(const Value& other) const { return Compare(other) != 0; }
  bool operator<(const Value& other) const { return Compare(other) < 0; }
  bool operator<=(const Value& other) const { return Compare(other) <= 0; }
  bool operator>(const Value& other) const { return Compare(other) > 0; }
  bool operator>=(const Value& other) const { return Compare(other) >= 0; }

  /// Total order: null < numerics (ordered numerically) < strings
  /// (ordered bytewise). Returns <0, 0, >0.
  int Compare(const Value& other) const;

  /// Hash consistent with operator== (ints and equal-valued doubles hash
  /// alike).
  std::size_t Hash() const;

  /// Renders the value: "∅" for null, decimal for numerics, raw bytes for
  /// strings.
  std::string ToString() const;

  /// Parses `text` as the given type; empty text parses to null.
  [[nodiscard]] static Result<Value> Parse(std::string_view text, ValueType type);

  /// Infers the narrowest type (int, then double, then string) and parses.
  static Value Infer(std::string_view text);

 private:
  std::variant<std::monostate, std::int64_t, double, std::string> repr_;
};

std::ostream& operator<<(std::ostream& os, const Value& value);

/// std::hash adapter so `Value` can key unordered containers.
struct ValueHash {
  std::size_t operator()(const Value& v) const { return v.Hash(); }
};

}  // namespace trex

#endif  // TREX_TABLE_VALUE_H_
