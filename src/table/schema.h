// `Schema`: ordered, named, typed attributes of a table.

#ifndef TREX_TABLE_SCHEMA_H_
#define TREX_TABLE_SCHEMA_H_

#include <initializer_list>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "table/value.h"

namespace trex {

/// One attribute (column) of a schema.
struct Attribute {
  std::string name;
  ValueType type = ValueType::kString;

  bool operator==(const Attribute& other) const {
    return name == other.name && type == other.type;
  }
};

/// An ordered list of uniquely-named attributes.
class Schema {
 public:
  Schema() = default;

  /// Builds a schema; duplicate names are a fatal programmer error (use
  /// `Make` for a checked construction path).
  explicit Schema(std::vector<Attribute> attributes);

  /// Convenience: all-string schema from names, e.g.
  /// `Schema::AllStrings({"Team", "City"})`.
  static Schema AllStrings(std::initializer_list<const char*> names);

  /// Checked construction: fails on duplicate or empty attribute names.
  [[nodiscard]] static Result<Schema> Make(std::vector<Attribute> attributes);

  /// Number of attributes.
  std::size_t size() const { return attributes_.size(); }
  bool empty() const { return attributes_.empty(); }

  /// The attribute at `index` (bounds-checked fatally).
  const Attribute& attribute(std::size_t index) const;

  /// All attributes in order.
  const std::vector<Attribute>& attributes() const { return attributes_; }

  /// Index of the attribute named `name`.
  [[nodiscard]] Result<std::size_t> IndexOf(const std::string& name) const;

  /// True iff an attribute with this name exists.
  bool Contains(const std::string& name) const;

  /// Structural equality (names and types, in order).
  bool operator==(const Schema& other) const {
    return attributes_ == other.attributes_;
  }
  bool operator!=(const Schema& other) const { return !(*this == other); }

  /// Renders e.g. "(Team:string, Year:int)".
  std::string ToString() const;

 private:
  std::vector<Attribute> attributes_;
  std::unordered_map<std::string, std::size_t> index_;
};

}  // namespace trex

#endif  // TREX_TABLE_SCHEMA_H_
