#include "table/stats.h"

#include <algorithm>

#include "common/logging.h"

namespace trex {

ColumnStats ColumnStats::Build(const Table& table, std::size_t col) {
  TREX_CHECK_LT(col, table.num_columns());
  ColumnStats stats;
  for (std::size_t r = 0; r < table.num_rows(); ++r) {
    const Value& v = table.at(r, col);
    if (v.is_null()) continue;
    auto [it, inserted] = stats.counts_.emplace(v, 0);
    ++it->second;
    ++stats.total_;
    if (inserted) stats.sample_values_.push_back(v);
  }
  // Deterministic sampling layout: order values ascending, cumulative
  // counts alongside.
  std::sort(stats.sample_values_.begin(), stats.sample_values_.end());
  stats.sample_cumulative_.reserve(stats.sample_values_.size());
  std::size_t running = 0;
  for (const Value& v : stats.sample_values_) {
    running += stats.counts_.at(v);
    stats.sample_cumulative_.push_back(running);
  }
  return stats;
}

std::size_t ColumnStats::Count(const Value& value) const {
  auto it = counts_.find(value);
  return it == counts_.end() ? 0 : it->second;
}

double ColumnStats::Probability(const Value& value) const {
  if (total_ == 0) return 0.0;
  return static_cast<double>(Count(value)) / static_cast<double>(total_);
}

std::optional<Value> ColumnStats::MostCommon() const {
  std::optional<Value> best;
  std::size_t best_count = 0;
  for (const Value& v : sample_values_) {  // ascending => smallest wins ties
    const std::size_t count = counts_.at(v);
    if (count > best_count) {
      best_count = count;
      best = v;
    }
  }
  return best;
}

std::vector<Value> ColumnStats::DistinctSorted() const {
  return sample_values_;  // already sorted ascending
}

Value ColumnStats::Sample(Rng* rng) const {
  TREX_CHECK_GT(total_, 0u);
  const std::size_t target =
      static_cast<std::size_t>(rng->UniformUint64(total_)) + 1;
  auto it = std::lower_bound(sample_cumulative_.begin(),
                             sample_cumulative_.end(), target);
  TREX_CHECK(it != sample_cumulative_.end());
  return sample_values_[static_cast<std::size_t>(
      it - sample_cumulative_.begin())];
}

JointStats JointStats::Build(const Table& table, std::size_t cond_col,
                             std::size_t target_col) {
  TREX_CHECK_LT(cond_col, table.num_columns());
  TREX_CHECK_LT(target_col, table.num_columns());
  // Group rows by conditioning value, then reuse ColumnStats::Build on a
  // per-group projection.
  std::unordered_map<Value, std::vector<Value>, ValueHash> groups;
  for (std::size_t r = 0; r < table.num_rows(); ++r) {
    const Value& cond = table.at(r, cond_col);
    const Value& target = table.at(r, target_col);
    if (cond.is_null() || target.is_null()) continue;
    groups[cond].push_back(target);
  }
  JointStats joint;
  for (auto& [cond, targets] : groups) {
    Table projection(Schema({Attribute{"v", ValueType::kString}}));
    for (Value& t : targets) {
      TREX_CHECK(projection.AppendRow({std::move(t)}).ok());
    }
    joint.per_cond_.emplace(cond, ColumnStats::Build(projection, 0));
  }
  return joint;
}

std::optional<Value> JointStats::MostCommonGiven(
    const Value& cond_value) const {
  auto it = per_cond_.find(cond_value);
  if (it == per_cond_.end()) return std::nullopt;
  return it->second.MostCommon();
}

double JointStats::ProbabilityGiven(const Value& cond_value,
                                    const Value& target_value) const {
  auto it = per_cond_.find(cond_value);
  if (it == per_cond_.end()) return 0.0;
  return it->second.Probability(target_value);
}

std::size_t JointStats::CountGiven(const Value& cond_value) const {
  auto it = per_cond_.find(cond_value);
  if (it == per_cond_.end()) return 0;
  return it->second.total();
}

std::vector<Value> JointStats::TargetsGiven(const Value& cond_value) const {
  auto it = per_cond_.find(cond_value);
  if (it == per_cond_.end()) return {};
  return it->second.DistinctSorted();
}

const ColumnStats& TableStats::Column(std::size_t col) {
  auto it = columns_.find(col);
  if (it == columns_.end()) {
    it = columns_.emplace(col, ColumnStats::Build(*table_, col)).first;
  }
  return it->second;
}

const JointStats& TableStats::Joint(std::size_t cond_col,
                                    std::size_t target_col) {
  const std::uint64_t key =
      (static_cast<std::uint64_t>(cond_col) << 32) | target_col;
  auto it = joints_.find(key);
  if (it == joints_.end()) {
    it = joints_.emplace(key, JointStats::Build(*table_, cond_col,
                                                target_col))
             .first;
  }
  return it->second;
}

}  // namespace trex
