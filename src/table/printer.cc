#include "table/printer.h"

#include <algorithm>
#include <vector>

namespace trex {
namespace {

const char* AnsiPrefix(CellStyle style) {
  switch (style) {
    case CellStyle::kNone:
      return "";
    case CellStyle::kDirty:
      return "\x1b[31m";  // red
    case CellStyle::kRepaired:
      return "\x1b[34m";  // blue
    case CellStyle::kHeatLow:
      return "\x1b[92m";  // bright green
    case CellStyle::kHeatMid:
      return "\x1b[32m";  // green
    case CellStyle::kHeatHigh:
      return "\x1b[42;30m";  // black on green
  }
  return "";
}

std::string MarkerDecorate(const std::string& text, CellStyle style) {
  switch (style) {
    case CellStyle::kNone:
      return text;
    case CellStyle::kDirty:
      return "*" + text + "*";
    case CellStyle::kRepaired:
      return "[" + text + "]";
    case CellStyle::kHeatLow:
      return text + " (+)";
    case CellStyle::kHeatMid:
      return text + " (++)";
    case CellStyle::kHeatHigh:
      return text + " (+++)";
  }
  return text;
}

}  // namespace

std::string TablePrinter::DecorateCell(const std::string& text,
                                       CellStyle style) const {
  if (style == CellStyle::kNone) return text;
  if (options_.ansi_colors) {
    return std::string(AnsiPrefix(style)) + text + "\x1b[0m";
  }
  return MarkerDecorate(text, style);
}

std::string TablePrinter::Render(const Table& table) const {
  const std::size_t cols = table.num_columns();
  const std::size_t rows = table.num_rows();

  // Assemble the decorated text grid (header + body), tracking display
  // widths. ANSI escapes complicate width computation, so widths are
  // computed on the undecorated text and padding is applied outside the
  // escape sequence.
  std::vector<std::string> header(cols);
  std::vector<std::size_t> width(cols, 0);
  for (std::size_t c = 0; c < cols; ++c) {
    header[c] = table.schema().attribute(c).name;
    width[c] = header[c].size();
  }
  std::vector<std::vector<std::string>> raw(rows,
                                            std::vector<std::string>(cols));
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      raw[r][c] = table.at(r, c).ToString();
      std::string display = raw[r][c];
      auto it = styles_.find(CellRef{r, c});
      if (it != styles_.end() && !options_.ansi_colors) {
        display = MarkerDecorate(raw[r][c], it->second);
      }
      width[c] = std::max(width[c], display.size());
    }
  }

  const std::string label_header = options_.row_labels ? "  " : "";
  std::size_t label_width = 0;
  if (options_.row_labels) {
    label_width = ("t" + std::to_string(rows)).size();
  }

  auto pad = [](const std::string& s, std::size_t w) {
    std::string out = s;
    if (out.size() < w) out.append(w - out.size(), ' ');
    return out;
  };

  std::string out;
  const char* sep = options_.markdown ? " | " : "  ";
  const char* edge = options_.markdown ? "| " : "";
  const char* edge_end = options_.markdown ? " |" : "";

  // Header line.
  out += edge;
  if (options_.row_labels) out += pad(label_header, label_width) + sep;
  for (std::size_t c = 0; c < cols; ++c) {
    if (c > 0) out += sep;
    out += pad(header[c], width[c]);
  }
  out += edge_end;
  out += '\n';

  // Markdown divider or dashes.
  out += edge;
  if (options_.row_labels) {
    out += std::string(label_width, '-') + (options_.markdown ? " | " : "  ");
  }
  for (std::size_t c = 0; c < cols; ++c) {
    if (c > 0) out += options_.markdown ? " | " : "  ";
    out += std::string(width[c], '-');
  }
  out += edge_end;
  out += '\n';

  // Body.
  for (std::size_t r = 0; r < rows; ++r) {
    out += edge;
    if (options_.row_labels) {
      out += pad("t" + std::to_string(r + 1), label_width) + sep;
    }
    for (std::size_t c = 0; c < cols; ++c) {
      if (c > 0) out += sep;
      auto it = styles_.find(CellRef{r, c});
      const CellStyle style =
          it == styles_.end() ? CellStyle::kNone : it->second;
      if (options_.ansi_colors) {
        // Pad the raw text, then color the padded field.
        out += DecorateCell(pad(raw[r][c], width[c]), style);
      } else {
        out += pad(MarkerDecorate(raw[r][c], style), width[c]);
      }
    }
    out += edge_end;
    out += '\n';
  }
  return out;
}

}  // namespace trex
