#include "table/diff.h"

namespace trex {

std::string RepairedCell::ToString(const Schema& schema) const {
  return cell.ToString(schema) + ": " + old_value.ToString() + " -> " +
         new_value.ToString();
}

Result<std::vector<RepairedCell>> DiffTables(const Table& dirty,
                                             const Table& clean) {
  if (dirty.schema() != clean.schema()) {
    return Status::InvalidArgument("tables have different schemas");
  }
  if (dirty.num_rows() != clean.num_rows()) {
    return Status::InvalidArgument("tables have different row counts");
  }
  std::vector<RepairedCell> diffs;
  for (std::size_t r = 0; r < dirty.num_rows(); ++r) {
    for (std::size_t c = 0; c < dirty.num_columns(); ++c) {
      const Value& before = dirty.at(r, c);
      const Value& after = clean.at(r, c);
      const bool both_null = before.is_null() && after.is_null();
      if (!both_null && before != after) {
        diffs.push_back(RepairedCell{CellRef{r, c}, before, after});
      }
    }
  }
  return diffs;
}

bool CellRepairedTo(const Table& candidate, const Table& clean,
                    CellRef cell) {
  const Value& got = candidate.at(cell);
  const Value& want = clean.at(cell);
  if (got.is_null() || want.is_null()) {
    return got.is_null() && want.is_null();
  }
  return got == want;
}

}  // namespace trex
