#include "table/csv.h"

#include <fstream>
#include <sstream>
#include <vector>

#include "common/string_util.h"

namespace trex {
namespace {

/// Splits CSV text into records of raw (unquoted) fields, honoring RFC
/// 4180 quoting ("" escapes a quote inside a quoted field; separators and
/// newlines inside quotes are literal).
Result<std::vector<std::vector<std::string>>> Tokenize(std::string_view text,
                                                       char sep) {
  std::vector<std::vector<std::string>> records;
  std::vector<std::string> record;
  std::string field;
  bool in_quotes = false;
  bool field_started = false;
  bool any_record_content = false;

  auto end_field = [&] {
    record.push_back(std::move(field));
    field.clear();
    field_started = false;
  };
  auto end_record = [&] {
    end_field();
    records.push_back(std::move(record));
    record.clear();
    any_record_content = false;
  };

  for (std::size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < text.size() && text[i + 1] == '"') {
          field.push_back('"');
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        field.push_back(c);
      }
      continue;
    }
    if (c == '"' && !field_started) {
      in_quotes = true;
      field_started = true;
      any_record_content = true;
    } else if (c == sep) {
      end_field();
      any_record_content = true;
    } else if (c == '\n') {
      // Skip entirely empty trailing lines (e.g. final newline).
      if (!any_record_content && field.empty() && record.empty()) continue;
      end_record();
    } else if (c == '\r') {
      // Tolerate CRLF; handled when the '\n' arrives.
      continue;
    } else {
      field.push_back(c);
      field_started = true;
      any_record_content = true;
    }
  }
  if (in_quotes) {
    return Status::ParseError("unterminated quoted CSV field");
  }
  if (any_record_content || !field.empty() || !record.empty()) {
    end_record();
  }
  return records;
}

bool IsNullToken(const std::string& raw, const CsvOptions& options) {
  const std::string trimmed = Trim(raw);
  return trimmed.empty() || trimmed == options.null_marker;
}

ValueType InferColumnType(
    const std::vector<std::vector<std::string>>& records, std::size_t col,
    const CsvOptions& options) {
  bool all_int = true;
  bool all_double = true;
  bool any_value = false;
  for (std::size_t r = 1; r < records.size(); ++r) {
    if (col >= records[r].size()) continue;
    const std::string& raw = records[r][col];
    if (IsNullToken(raw, options)) continue;
    any_value = true;
    if (!LooksLikeInt(raw)) all_int = false;
    if (!LooksLikeDouble(raw)) all_double = false;
    if (!all_int && !all_double) break;
  }
  if (!any_value) return ValueType::kString;
  if (all_int) return ValueType::kInt;
  if (all_double) return ValueType::kDouble;
  return ValueType::kString;
}

}  // namespace

Result<Table> ReadCsv(std::string_view text, const CsvOptions& options) {
  TREX_ASSIGN_OR_RETURN(auto records, Tokenize(text, options.separator));
  if (records.empty()) {
    return Status::ParseError("CSV input has no header record");
  }
  const std::vector<std::string>& header = records[0];

  std::vector<Attribute> attrs;
  attrs.reserve(header.size());
  for (std::size_t c = 0; c < header.size(); ++c) {
    ValueType type = ValueType::kString;
    if (options.infer_types) type = InferColumnType(records, c, options);
    attrs.push_back(Attribute{Trim(header[c]), type});
  }
  TREX_ASSIGN_OR_RETURN(Schema schema, Schema::Make(std::move(attrs)));

  Table table(std::move(schema));
  for (std::size_t r = 1; r < records.size(); ++r) {
    if (records[r].size() != header.size()) {
      return Status::ParseError(
          "record " + std::to_string(r) + " has " +
          std::to_string(records[r].size()) + " fields, expected " +
          std::to_string(header.size()));
    }
    std::vector<Value> row;
    row.reserve(header.size());
    for (std::size_t c = 0; c < header.size(); ++c) {
      const std::string& raw = records[r][c];
      if (IsNullToken(raw, options)) {
        row.push_back(Value::Null());
        continue;
      }
      TREX_ASSIGN_OR_RETURN(
          Value v, Value::Parse(raw, table.schema().attribute(c).type));
      row.push_back(std::move(v));
    }
    TREX_RETURN_NOT_OK(table.AppendRow(std::move(row)));
  }
  return table;
}

Result<Table> ReadCsvFile(const std::string& path, const CsvOptions& options) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IOError("cannot open file: " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  Result<Table> table = ReadCsv(buffer.str(), options);
  if (!table.ok()) return table.status().WithPrefix(path);
  return table;
}

std::string WriteCsv(const Table& table, char separator) {
  std::string out;
  const Schema& schema = table.schema();
  for (std::size_t c = 0; c < schema.size(); ++c) {
    if (c > 0) out.push_back(separator);
    out += CsvEscape(schema.attribute(c).name, separator);
  }
  out.push_back('\n');
  for (std::size_t r = 0; r < table.num_rows(); ++r) {
    for (std::size_t c = 0; c < table.num_columns(); ++c) {
      if (c > 0) out.push_back(separator);
      const Value& v = table.at(r, c);
      if (!v.is_null()) out += CsvEscape(v.ToString(), separator);
    }
    out.push_back('\n');
  }
  return out;
}

Status WriteCsvFile(const Table& table, const std::string& path,
                    char separator) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::IOError("cannot open file for write: " + path);
  out << WriteCsv(table, separator);
  if (!out.good()) return Status::IOError("write failed: " + path);
  return Status::Ok();
}

}  // namespace trex
