// Column and joint-column statistics over a table.
//
// These power both the repair substrates (Algorithm 1's
// `argmax_c P[City = c]`, HoloClean-style priors/co-occurrence features)
// and the Shapley sampler's "replace with a sample value from their column
// distribution" step (paper Example 2.5). Null cells are excluded from all
// counts, matching SQL aggregate semantics.

#ifndef TREX_TABLE_STATS_H_
#define TREX_TABLE_STATS_H_

#include <optional>
#include <unordered_map>
#include <vector>

#include "common/random.h"
#include "common/status.h"
#include "table/table.h"

namespace trex {

/// Empirical distribution of one column (nulls excluded).
class ColumnStats {
 public:
  ColumnStats() = default;

  /// Builds the distribution of column `col` of `table`.
  static ColumnStats Build(const Table& table, std::size_t col);

  /// Number of non-null observations.
  std::size_t total() const { return total_; }

  /// Number of distinct non-null values.
  std::size_t num_distinct() const { return counts_.size(); }

  /// Occurrences of `value` (0 when unseen).
  std::size_t Count(const Value& value) const;

  /// Empirical probability of `value`; 0 when the column is all-null.
  double Probability(const Value& value) const;

  /// The most frequent value; ties break toward the smallest value under
  /// `Value::Compare` so the result is deterministic. Empty optional when
  /// the column has no non-null values.
  std::optional<Value> MostCommon() const;

  /// Distinct values sorted ascending (deterministic iteration order for
  /// candidate domains).
  std::vector<Value> DistinctSorted() const;

  /// Draws a value from the empirical distribution. The column must have
  /// at least one non-null value.
  Value Sample(Rng* rng) const;

 private:
  std::unordered_map<Value, std::size_t, ValueHash> counts_;
  // Parallel arrays for O(1) weighted sampling (values in first-seen
  // order with cumulative counts).
  std::vector<Value> sample_values_;
  std::vector<std::size_t> sample_cumulative_;
  std::size_t total_ = 0;
};

/// Conditional distribution P[target | cond]: for each observed value of
/// the conditioning column, the distribution of the target column among
/// co-occurring rows (rows where either side is null are excluded).
class JointStats {
 public:
  JointStats() = default;

  /// Builds P[`target_col` | `cond_col`] over `table`.
  static JointStats Build(const Table& table, std::size_t cond_col,
                          std::size_t target_col);

  /// Most frequent target value among rows whose conditioning column
  /// equals `cond_value` (deterministic tie-break). Empty when the
  /// conditioning value was never observed.
  std::optional<Value> MostCommonGiven(const Value& cond_value) const;

  /// Empirical P[target = `target_value` | cond = `cond_value`]; 0 when
  /// the conditioning value is unseen.
  double ProbabilityGiven(const Value& cond_value,
                          const Value& target_value) const;

  /// Number of rows observed for `cond_value`.
  std::size_t CountGiven(const Value& cond_value) const;

  /// Distinct target values co-occurring with `cond_value`, sorted.
  std::vector<Value> TargetsGiven(const Value& cond_value) const;

 private:
  std::unordered_map<Value, ColumnStats, ValueHash> per_cond_;
  friend class TableStats;
};

/// Lazily-built cache of column and pairwise statistics for one table.
/// Repairers construct one per run; lookups after the first are O(1).
class TableStats {
 public:
  explicit TableStats(const Table* table) : table_(table) {}

  /// Stats of column `col` (built on first use).
  const ColumnStats& Column(std::size_t col);

  /// Conditional stats P[target|cond] (built on first use).
  const JointStats& Joint(std::size_t cond_col, std::size_t target_col);

 private:
  const Table* table_;
  std::unordered_map<std::size_t, ColumnStats> columns_;
  std::unordered_map<std::uint64_t, JointStats> joints_;
};

}  // namespace trex

#endif  // TREX_TABLE_STATS_H_
