// Table diffing: which cells changed between the dirty table `T^d` and the
// repaired table `T^c`, with old and new values (paper §2.1's repaired
// cells, the blue cells of Figure 2b).

#ifndef TREX_TABLE_DIFF_H_
#define TREX_TABLE_DIFF_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "table/table.h"

namespace trex {

/// One repaired cell: coordinate plus before/after values.
struct RepairedCell {
  CellRef cell;
  Value old_value;
  Value new_value;

  bool operator==(const RepairedCell& other) const {
    return cell == other.cell && old_value == other.old_value &&
           new_value == other.new_value;
  }

  /// Renders e.g. "t5[Country]: España -> Spain".
  std::string ToString(const Schema& schema) const;
};

/// Computes the cells that differ between `dirty` and `clean`. Fails when
/// the tables are not the same shape. Results are in row-major order.
[[nodiscard]] Result<std::vector<RepairedCell>> DiffTables(const Table& dirty,
                                             const Table& clean);

/// Convenience: true iff cell `cell` holds `clean`'s value in `candidate`,
/// i.e. the repair of that cell was reproduced (the paper's
/// `Alg|t[A] = 1` test against the reference clean value).
bool CellRepairedTo(const Table& candidate, const Table& clean, CellRef cell);

}  // namespace trex

#endif  // TREX_TABLE_DIFF_H_
