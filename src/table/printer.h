// ASCII / Markdown rendering of tables with per-cell highlights.
//
// This stands in for the T-REx GUI's visual channel: dirty cells render
// red, repaired cells blue, and explanation heat uses graded green — the
// same palette as the paper's Figures 2 and 3 — via ANSI escapes, or
// textual markers when colors are disabled (benchmark logs, files).

#ifndef TREX_TABLE_PRINTER_H_
#define TREX_TABLE_PRINTER_H_

#include <string>
#include <unordered_map>

#include "table/table.h"

namespace trex {

/// Highlight classes for cells.
enum class CellStyle {
  kNone = 0,
  kDirty,      // red in the GUI (Figure 2a)
  kRepaired,   // blue in the GUI (Figure 2b)
  kHeatLow,    // light green (low Shapley influence)
  kHeatMid,    // medium green
  kHeatHigh,   // dark green (top influence)
};

/// Rendering options.
struct PrinterOptions {
  /// Use ANSI colors; otherwise cells are wrapped in textual markers:
  /// dirty `*v*`, repaired `[v]`, heat `v (+)`, `v (++)`, `v (+++)`.
  bool ansi_colors = false;
  /// Render GitHub-flavored markdown instead of a box-drawing grid.
  bool markdown = false;
  /// Prefix each row with its 1-based paper-style tuple label (t1, t2...).
  bool row_labels = true;
};

/// Renders `table` as text with optional per-cell styles.
class TablePrinter {
 public:
  explicit TablePrinter(PrinterOptions options = {}) : options_(options) {}

  /// Sets the style of one cell.
  void Highlight(CellRef cell, CellStyle style) { styles_[cell] = style; }

  /// Clears all highlights.
  void ClearHighlights() { styles_.clear(); }

  /// Renders the table.
  std::string Render(const Table& table) const;

 private:
  std::string DecorateCell(const std::string& text, CellStyle style) const;

  PrinterOptions options_;
  std::unordered_map<CellRef, CellStyle, CellRefHash> styles_;
};

}  // namespace trex

#endif  // TREX_TABLE_PRINTER_H_
