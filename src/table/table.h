// `Table`: an in-memory relation with a fixed schema, plus `CellRef`, the
// (row, column) coordinate used to address cells across the library.
//
// Storage is a flat row-major `std::vector<Value>`; a cell also has a
// *linear index* `row * num_columns + column`, which is exactly the
// "vectorized table" ordering of the paper's Example 2.5
// (t1[A1], t1[A2], ..., t2[A1], ...). The Shapley cell game indexes players
// by this linear id.

#ifndef TREX_TABLE_TABLE_H_
#define TREX_TABLE_TABLE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/hash.h"
#include "common/status.h"
#include "table/schema.h"
#include "table/value.h"

namespace trex {

/// Coordinate of one cell: row index and column index.
struct CellRef {
  std::size_t row = 0;
  std::size_t col = 0;

  bool operator==(const CellRef& other) const {
    return row == other.row && col == other.col;
  }
  bool operator!=(const CellRef& other) const { return !(*this == other); }
  bool operator<(const CellRef& other) const {
    return row != other.row ? row < other.row : col < other.col;
  }

  /// Renders e.g. "t5[Country]" when a schema is supplied (rows are
  /// 1-based in the paper's notation), else "(4,2)".
  std::string ToString() const;
  std::string ToString(const Schema& schema) const;
};

struct CellRefHash {
  std::size_t operator()(const CellRef& c) const {
    return c.row * 1000003u + c.col;
  }
};

/// A relation: schema plus rows of `Value`s.
class Table {
 public:
  /// Creates an empty table with the given schema.
  explicit Table(Schema schema) : schema_(std::move(schema)) {}
  Table() = default;

  /// The schema.
  const Schema& schema() const { return schema_; }

  std::size_t num_rows() const {
    return schema_.size() == 0 ? 0 : cells_.size() / schema_.size();
  }
  std::size_t num_columns() const { return schema_.size(); }

  /// Total number of cells (= the Shapley cell game's player count).
  std::size_t num_cells() const { return cells_.size(); }

  /// Appends a row; the arity must match the schema. Values are not
  /// type-checked against attribute types (dirty data is the point), but
  /// arity is.
  Status AppendRow(std::vector<Value> row);

  /// Cell access (bounds-checked fatally).
  const Value& at(std::size_t row, std::size_t col) const;
  const Value& at(CellRef cell) const { return at(cell.row, cell.col); }

  /// Overwrites one cell.
  void Set(std::size_t row, std::size_t col, Value value);
  void Set(CellRef cell, Value value) {
    Set(cell.row, cell.col, std::move(value));
  }

  /// Linear (vectorized) cell index, per Example 2.5 ordering.
  std::size_t LinearIndex(CellRef cell) const {
    return cell.row * num_columns() + cell.col;
  }
  CellRef FromLinearIndex(std::size_t index) const;

  /// All cell coordinates in vectorized order.
  std::vector<CellRef> AllCells() const;

  /// Column index by attribute name.
  Result<std::size_t> ColumnIndex(const std::string& name) const {
    return schema_.IndexOf(name);
  }

  /// Convenience typed lookup: `table.Cell(4, "Country")`; fatal when the
  /// attribute does not exist (programmer error in examples/tests).
  const Value& Cell(std::size_t row, const std::string& attribute) const;

  /// Structural equality: same schema, same rows, same values.
  bool operator==(const Table& other) const {
    return schema_ == other.schema_ && cells_ == other.cells_;
  }
  bool operator!=(const Table& other) const { return !(*this == other); }

  /// Order-sensitive content fingerprint; equal tables have equal
  /// fingerprints. Used to memoize black-box repair calls.
  std::uint64_t Fingerprint() const;

  /// 128-bit content fingerprint over exactly the bytes `Fingerprint()`
  /// hashes, wide enough to stand in for full-content comparison in the
  /// repair-table memo (`EngineOptions::use_strong_table_hash`). Equal
  /// tables have equal strong fingerprints.
  Hash128 StrongFingerprint() const;

  /// Both fingerprints in one content traversal — the memo's strong-hash
  /// mode needs the 64-bit bucket key and the 128-bit verification hash
  /// per evaluation, and tables are hashed on the hot path.
  void DualFingerprint(std::uint64_t* fp64, Hash128* fp128) const;

  /// Returns a copy with every cell in `cells` set to null (coalition
  /// complement semantics from paper §2.2).
  Table WithNulls(const std::vector<CellRef>& cells) const;

  /// Number of null cells.
  std::size_t CountNulls() const;

 private:
  Schema schema_;
  std::vector<Value> cells_;  // row-major
};

}  // namespace trex

#endif  // TREX_TABLE_TABLE_H_
