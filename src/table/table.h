// `Table`: an in-memory relation with a fixed schema, plus `CellRef`, the
// (row, column) coordinate used to address cells across the library.
//
// Storage is a flat row-major `std::vector<Value>`; a cell also has a
// *linear index* `row * num_columns + column`, which is exactly the
// "vectorized table" ordering of the paper's Example 2.5
// (t1[A1], t1[A2], ..., t2[A1], ...). The Shapley cell game indexes players
// by this linear id.

#ifndef TREX_TABLE_TABLE_H_
#define TREX_TABLE_TABLE_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/hash.h"
#include "common/status.h"
#include "table/schema.h"
#include "table/value.h"

namespace trex {

/// Coordinate of one cell: row index and column index.
struct CellRef {
  std::size_t row = 0;
  std::size_t col = 0;

  bool operator==(const CellRef& other) const {
    return row == other.row && col == other.col;
  }
  bool operator!=(const CellRef& other) const { return !(*this == other); }
  bool operator<(const CellRef& other) const {
    return row != other.row ? row < other.row : col < other.col;
  }

  /// Renders e.g. "t5[Country]" when a schema is supplied (rows are
  /// 1-based in the paper's notation), else "(4,2)".
  std::string ToString() const;
  std::string ToString(const Schema& schema) const;
};

struct CellRefHash {
  std::size_t operator()(const CellRef& c) const {
    return c.row * 1000003u + c.col;
  }
};

/// One pending cell overwrite: the unit of the table layer's delta
/// fingerprints (`Table::DeltaFingerprint`) and of perturbation-based
/// coalition evaluation (`BlackBoxRepair::EvalPerturbation`), which
/// describe a perturbed table as (base table, write set) without ever
/// materializing it.
struct CellWrite {
  CellRef cell;
  Value value;
};

/// The XOR shift one cell write applies to a table's fingerprints
/// (`Table::WriteDelta`). Self-inverse and order-independent, so hot
/// loops precompute deltas once and maintain a running fingerprint by
/// XORing `fp64`/`fp128` per change — no hashing on the evaluation
/// path.
struct FingerprintDelta {
  std::uint64_t fp64 = 0;
  Hash128 fp128;
};

/// A relation: schema plus rows of `Value`s.
class Table {
 public:
  /// Creates an empty table with the given schema.
  explicit Table(Schema schema) : schema_(std::move(schema)) {}
  Table() = default;

  /// The schema.
  const Schema& schema() const { return schema_; }

  std::size_t num_rows() const {
    return schema_.size() == 0 ? 0 : cells_.size() / schema_.size();
  }
  std::size_t num_columns() const { return schema_.size(); }

  /// Total number of cells (= the Shapley cell game's player count).
  std::size_t num_cells() const { return cells_.size(); }

  /// Appends a row; the arity must match the schema. Values are not
  /// type-checked against attribute types (dirty data is the point), but
  /// arity is.
  [[nodiscard]] Status AppendRow(std::vector<Value> row);

  /// Cell access (bounds-checked fatally).
  const Value& at(std::size_t row, std::size_t col) const;
  const Value& at(CellRef cell) const { return at(cell.row, cell.col); }

  /// Overwrites one cell.
  void Set(std::size_t row, std::size_t col, Value value);
  void Set(CellRef cell, Value value) {
    Set(cell.row, cell.col, std::move(value));
  }

  /// Linear (vectorized) cell index, per Example 2.5 ordering.
  std::size_t LinearIndex(CellRef cell) const {
    return cell.row * num_columns() + cell.col;
  }
  CellRef FromLinearIndex(std::size_t index) const;

  /// All cell coordinates in vectorized order.
  std::vector<CellRef> AllCells() const;

  /// Column index by attribute name.
  [[nodiscard]] Result<std::size_t> ColumnIndex(const std::string& name) const {
    return schema_.IndexOf(name);
  }

  /// Convenience typed lookup: `table.Cell(4, "Country")`; fatal when the
  /// attribute does not exist (programmer error in examples/tests).
  const Value& Cell(std::size_t row, const std::string& attribute) const;

  /// Structural equality: same schema, same rows, same values.
  bool operator==(const Table& other) const {
    return schema_ == other.schema_ && cells_ == other.cells_;
  }
  bool operator!=(const Table& other) const { return !(*this == other); }

  /// Content fingerprint; equal tables have equal fingerprints. Used to
  /// memoize black-box repair calls and to key engines in the router.
  ///
  /// The fingerprint is *XOR-combinable*: it is the schema hash XOR'd
  /// with one position-keyed hash per cell (row, col, value). Changing a
  /// cell therefore shifts the fingerprint by exactly
  /// `H(pos, old) ^ H(pos, new)`, which is what lets
  /// `DeltaFingerprint` compute a perturbed table's fingerprint in
  /// O(#writes) from a cached base instead of re-hashing O(#cells).
  std::uint64_t Fingerprint() const;

  /// 128-bit content fingerprint over exactly the per-cell hashes
  /// `Fingerprint()` XORs (same position-keyed scheme, wider state),
  /// wide enough to stand in for full-content comparison in the
  /// repair-table memo (`EngineOptions::use_strong_table_hash` and the
  /// sealed-target memo mode). Equal tables have equal strong
  /// fingerprints.
  Hash128 StrongFingerprint() const;

  /// Both fingerprints in one content traversal — the memo needs the
  /// 64-bit bucket key and the 128-bit verification hash per evaluation,
  /// and tables are hashed on the hot path.
  void DualFingerprint(std::uint64_t* fp64, Hash128* fp128) const;

  /// Fingerprints of the table obtained by applying `writes` on top of
  /// this table, computed in O(#writes) from this table's own
  /// fingerprints (`base64`/`base128`, as returned by
  /// `DualFingerprint`) — the perturbed table is never materialized.
  /// Equal to the from-scratch `Fingerprint`/`StrongFingerprint` of the
  /// materialized table. Writes must address in-bounds cells and
  /// pairwise-distinct cells (a duplicate cell would double-cancel its
  /// base hash); a write that re-states the current value is a no-op.
  void DeltaFingerprint(std::uint64_t base64, const Hash128& base128,
                        std::span<const CellWrite> writes,
                        std::uint64_t* fp64, Hash128* fp128) const;

  /// The XOR shift that writing `value` into `cell` applies to this
  /// table's fingerprints: H(pos, current) ^ H(pos, value).
  /// `DeltaFingerprint` is exactly the fold of these; hot loops
  /// precompute the deltas of the writes they toggle and XOR them into
  /// a running fingerprint instead of re-hashing per evaluation.
  FingerprintDelta WriteDelta(CellRef cell, const Value& value) const;

  /// True iff this table equals `base` with `writes` applied on top
  /// (same semantics as materializing `base`, applying the writes, and
  /// comparing with `operator==`) — without materializing anything.
  /// `writes` must address pairwise-distinct, in-bounds cells of `base`.
  bool EqualsWithWrites(const Table& base,
                        std::span<const CellWrite> writes) const;

  /// Rough resident footprint in bytes (cell vector + string payloads +
  /// schema), for memo/cache accounting. An estimate, not an allocator
  /// measurement.
  std::size_t ApproxMemoryBytes() const;

  /// Returns a copy with every cell in `cells` set to null (coalition
  /// complement semantics from paper §2.2).
  Table WithNulls(const std::vector<CellRef>& cells) const;

  /// Number of null cells.
  std::size_t CountNulls() const;

 private:
  Schema schema_;
  std::vector<Value> cells_;  // row-major
};

}  // namespace trex

#endif  // TREX_TABLE_TABLE_H_
