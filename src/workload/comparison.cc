#include "workload/comparison.h"

#include <chrono>
#include <utility>

#include "common/string_util.h"
#include "data/soccer.h"
#include "repair/soccer_algorithm1.h"
#include "repair/fd_repair.h"
#include "repair/holistic.h"
#include "repair/holoclean.h"

namespace trex::workload {
namespace {

double SecondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

}  // namespace

ComparisonOptions::ComparisonOptions() {
  errors.error_rate = 0.04;
  const Schema schema = data::SoccerSchema();
  // The FD-repairable attributes of the Figure 1 constraint set: every
  // backend has detectable, fixable work there.
  errors.columns = {*schema.IndexOf("City"), *schema.IndexOf("Country")};
}

std::vector<BackendEntry> RegisteredBackends() {
  std::vector<BackendEntry> backends;
  backends.push_back(
      {"fd_repair", std::make_shared<repair::FdRepair>()});
  backends.push_back({"rule_repair", repair::MakeAlgorithm1()});
  backends.push_back(
      {"holistic", std::make_shared<repair::HolisticRepair>()});
  backends.push_back(
      {"holoclean", std::make_shared<repair::HoloCleanRepair>()});
  return backends;
}

Result<ComparisonReport> RunComparison(const ComparisonOptions& options) {
  if (options.num_targets == 0) {
    return Status::InvalidArgument("num_targets must be positive");
  }
  data::GeneratedData generated = data::GenerateSoccer(options.world);
  data::InjectionResult injected =
      data::InjectErrors(generated.clean, options.errors);
  if (injected.injected.empty()) {
    return Status::InvalidArgument(
        "error injection produced no corrupted cells; raise error_rate "
        "or widen the column set");
  }

  // Targets: the first injected error cells, shared by every backend so
  // the stability metrics compare explanations of the same repairs.
  std::vector<CellRef> targets;
  for (const RepairedCell& error : injected.injected) {
    if (targets.size() >= options.num_targets) break;
    targets.push_back(error.cell);
  }

  const auto dirty = std::make_shared<const Table>(std::move(injected.dirty));

  ComparisonReport report;
  report.num_rows = generated.clean.num_rows();
  report.num_errors = injected.injected.size();
  report.num_targets = targets.size();

  for (const BackendEntry& entry : RegisteredBackends()) {
    BackendRun run;
    run.backend = entry.name;
    run.explanations.assign(targets.size(), std::nullopt);
    Engine engine(entry.algorithm, generated.dcs, dirty, options.engine);

    const auto repair_start = std::chrono::steady_clock::now();
    const Status repair_status = engine.EnsureRepair();
    run.repair_seconds = SecondsSince(repair_start);
    if (!repair_status.ok()) {
      run.error = repair_status.ToString();
      report.backends.push_back(std::move(run));
      continue;
    }
    auto quality = repair::EvaluateRepair(*dirty, engine.reference_clean(),
                                          generated.clean, generated.dcs);
    if (!quality.ok()) {
      run.error = quality.status().ToString();
      report.backends.push_back(std::move(run));
      continue;
    }
    run.quality = *quality;

    std::vector<ExplainRequest> requests;
    requests.reserve(targets.size());
    for (const CellRef& target : targets) {
      ExplainRequest request;
      request.target = target;
      request.kind = ExplainKind::kConstraints;
      requests.push_back(request);
    }
    const auto explain_start = std::chrono::steady_clock::now();
    auto batch = engine.ExplainBatch(requests);
    run.explain_seconds = SecondsSince(explain_start);
    if (!batch.ok()) {
      run.error = batch.status().ToString();
      report.backends.push_back(std::move(run));
      continue;
    }
    for (std::size_t t = 0; t < targets.size(); ++t) {
      Result<ExplainResult>& slot = batch->results[t];
      if (slot.ok() && slot->explanation.has_value()) {
        ++run.explained_targets;
        run.explanations[t] = std::move(*slot->explanation);
      } else {
        // A backend that did not repair this cell cannot explain it —
        // that asymmetry is itself a comparison signal, not a harness
        // failure.
        ++run.failed_targets;
      }
    }
    run.algorithm_calls = engine.num_algorithm_calls();
    run.cross_request_hits = batch->stats.cross_request_hits;
    run.approx_memo_bytes = batch->stats.approx_memo_bytes;
    report.backends.push_back(std::move(run));
  }

  // Pairwise stability: for every backend pair and every target both
  // explained, compare the two explanations and fold the metrics into
  // both backends' means.
  report.stability.assign(report.backends.size(), StabilityScore{});
  for (std::size_t a = 0; a < report.backends.size(); ++a) {
    for (std::size_t b = a + 1; b < report.backends.size(); ++b) {
      for (std::size_t t = 0; t < targets.size(); ++t) {
        const auto& ex_a = report.backends[a].explanations[t];
        const auto& ex_b = report.backends[b].explanations[t];
        if (!ex_a.has_value() || !ex_b.has_value()) continue;
        auto cmp = CompareExplanations(*ex_a, *ex_b, options.top_k);
        if (!cmp.ok()) continue;
        for (std::size_t side : {a, b}) {
          StabilityScore& score = report.stability[side];
          ++score.compared;
          score.mean_kendall_tau += cmp->kendall_tau;
          score.mean_spearman_rho += cmp->spearman_rho;
          score.mean_topk_jaccard += cmp->topk_jaccard;
          score.mean_abs_shift += cmp->mean_abs_shift;
        }
      }
    }
  }
  for (StabilityScore& score : report.stability) {
    if (score.compared == 0) continue;
    const double denom = static_cast<double>(score.compared);
    score.mean_kendall_tau /= denom;
    score.mean_spearman_rho /= denom;
    score.mean_topk_jaccard /= denom;
    score.mean_abs_shift /= denom;
  }
  return report;
}

std::string BackendJsonLine(const ComparisonReport& report,
                            std::size_t backend_index) {
  const BackendRun& run = report.backends.at(backend_index);
  const StabilityScore& stability = report.stability.at(backend_index);
  std::string line = StrFormat(
      "{\"bench\":\"cross_backend\",\"backend\":\"%s\",\"rows\":%zu,"
      "\"errors\":%zu,\"targets\":%zu,\"ok\":%s",
      JsonEscape(run.backend).c_str(), report.num_rows, report.num_errors,
      report.num_targets, run.error.empty() ? "true" : "false");
  if (!run.error.empty()) {
    line += StrFormat(",\"error\":\"%s\"}", JsonEscape(run.error).c_str());
    return line;
  }
  line += StrFormat(
      ",\"precision\":%.4f,\"recall\":%.4f,\"f1\":%.4f,"
      "\"cells_changed\":%zu,\"correct_changes\":%zu,\"true_errors\":%zu,"
      "\"errors_fixed\":%zu,\"residual_violations\":%zu,"
      "\"repair_seconds\":%.4f,\"explain_seconds\":%.4f,"
      "\"algorithm_calls\":%zu,\"cross_request_hits\":%zu,"
      "\"approx_memo_bytes\":%zu,"
      "\"explained_targets\":%zu,\"failed_targets\":%zu,"
      "\"stability_pairs\":%zu,\"mean_kendall_tau\":%.4f,"
      "\"mean_spearman_rho\":%.4f,\"mean_topk_jaccard\":%.4f,"
      "\"mean_abs_shift\":%.6f}",
      run.quality.precision, run.quality.recall, run.quality.f1,
      run.quality.cells_changed, run.quality.correct_changes,
      run.quality.true_errors, run.quality.errors_fixed,
      run.quality.residual_violations, run.repair_seconds,
      run.explain_seconds, run.algorithm_calls, run.cross_request_hits,
      run.approx_memo_bytes,
      run.explained_targets, run.failed_targets, stability.compared,
      stability.mean_kendall_tau, stability.mean_spearman_rho,
      stability.mean_topk_jaccard, stability.mean_abs_shift);
  return line;
}

}  // namespace trex::workload
