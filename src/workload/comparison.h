// Cross-backend comparison harness over a synthetic ground-truth world.
//
// T-REx is agnostic to the repair approach (paper §1), but repair
// *semantics* differ materially across backends (cf. Bertossi & Schwind,
// "Database Repairs and Analytic Tableaux"): the same dirty table yields
// different repairs, and therefore different explanations. This harness
// makes that comparable at scale:
//
//   1. generate a clean world of `world.num_rows` rows (data/generator.h)
//      and inject seeded errors with recorded ground truth (data/errors.h);
//   2. for every registered backend (fd_repair, rule_repair, holistic,
//      holoclean) build one `Engine` over the same shared dirty table and
//      lower all targets into a single `Engine::ExplainBatch` call —
//      constraint explanations of the injected error cells, amortized
//      over the shared subset memo;
//   3. score each backend's reference repair against the injected ground
//      truth (repair/metrics.h) and each backend's explanations against
//      every other backend's via rank-correlation stability metrics
//      (core/compare.h).
//
// `bench_scalability` sweeps `RunComparison` over world sizes and emits
// one JSON line per (backend, size); tests pin the harness on a small
// world. Determinism: everything is a pure function of
// `ComparisonOptions` (seeded generator + injector, deterministic
// backends, exact constraint Shapley).

#ifndef TREX_WORKLOAD_COMPARISON_H_
#define TREX_WORKLOAD_COMPARISON_H_

#include <cstddef>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/compare.h"
#include "core/engine.h"
#include "data/errors.h"
#include "data/generator.h"
#include "repair/algorithm.h"
#include "repair/metrics.h"

namespace trex::workload {

/// One comparable repair backend.
struct BackendEntry {
  /// Stable identifier used in reports and JSON ("fd_repair", ...).
  std::string name;
  std::shared_ptr<const repair::RepairAlgorithm> algorithm;
};

/// Every bundled repair backend, in fixed comparison order:
/// fd_repair, rule_repair (the paper's Algorithm 1), holistic, holoclean.
std::vector<BackendEntry> RegisteredBackends();

/// Harness knobs.
struct ComparisonOptions {
  /// The synthetic world (world.num_rows is the size knob of the sweep).
  data::SoccerGenOptions world;
  /// Error injection. Defaults restrict corruption to the City/Country
  /// columns — the FD-repairable attributes of the Figure 1 constraint
  /// set — so every backend has detectable work; callers may widen it.
  data::ErrorInjectorOptions errors;
  /// Injected error cells explained per backend (capped to the number
  /// actually injected). Targets are shared across backends so the
  /// stability metrics compare like with like.
  std::size_t num_targets = 4;
  /// Top-k bound for the Jaccard stability term.
  std::size_t top_k = 3;
  /// Engine configuration (thread count, memo cap, ...).
  EngineOptions engine;

  ComparisonOptions();
};

/// One backend's run over the shared dirty world.
struct BackendRun {
  std::string backend;
  /// Non-empty when the reference repair itself failed; the remaining
  /// fields are then meaningless.
  std::string error;
  /// Reference repair scored against the injected ground truth.
  repair::RepairQuality quality;
  /// Wall-clock of the reference repair (EnsureRepair).
  double repair_seconds = 0.0;
  /// Wall-clock of the ExplainBatch over all targets.
  double explain_seconds = 0.0;
  /// Black-box repair invocations charged to the batch (reference run
  /// included).
  std::size_t algorithm_calls = 0;
  /// Memo hits amortized across targets inside the batch.
  std::size_t cross_request_hits = 0;
  /// Estimated resident memo bytes after the batch — the compaction
  /// (`EngineOptions::seal_targets`) headline in the perf trajectory.
  std::size_t approx_memo_bytes = 0;
  /// Targets this backend explained / could not explain (a backend that
  /// did not repair a target cannot explain it — that asymmetry is part
  /// of the comparison).
  std::size_t explained_targets = 0;
  std::size_t failed_targets = 0;
  /// Slot-per-target explanations (nullopt for failed slots).
  std::vector<std::optional<Explanation>> explanations;
};

/// Mean pairwise explanation agreement of one backend against all other
/// backends, over the targets both explained.
struct StabilityScore {
  /// (other backend, target) pairs that entered the means.
  std::size_t compared = 0;
  double mean_kendall_tau = 0.0;
  double mean_spearman_rho = 0.0;
  double mean_topk_jaccard = 0.0;
  double mean_abs_shift = 0.0;
};

/// The harness output: one run + one stability score per backend
/// (parallel vectors, `RegisteredBackends` order).
struct ComparisonReport {
  std::size_t num_rows = 0;
  std::size_t num_errors = 0;
  std::size_t num_targets = 0;
  std::vector<BackendRun> backends;
  std::vector<StabilityScore> stability;
};

/// Runs the full harness (see file comment). Fails only on setup errors
/// (e.g. no errors injected); per-backend repair failures are recorded
/// in `BackendRun::error` instead of failing the comparison.
[[nodiscard]] Result<ComparisonReport> RunComparison(const ComparisonOptions& options);

/// Serializes one backend's row of the report as a single-line JSON
/// object (repair quality + stability + cost), the machine-readable
/// format the benches emit with a "JSON " prefix. `backend_index` must
/// be < report.backends.size().
std::string BackendJsonLine(const ComparisonReport& report,
                            std::size_t backend_index);

}  // namespace trex::workload

#endif  // TREX_WORKLOAD_COMPARISON_H_
