// `FdRepair`: equivalence-class repair for functional dependencies, after
// Bohannon et al. (ICDE 2007) — the CFD-based cleaning line the paper's
// introduction cites ([1]).
//
// Only FD-shaped DCs (`!(t1.X == t2.X & t1.B != t2.B)`) participate;
// other constraints are ignored by this algorithm. For each FD X -> B,
// rows are grouped by their X value and every group's B values are merged
// to the group's most frequent B (ties toward the smaller value). FDs are
// applied in order and the pipeline repeats until a fixpoint, since
// repairing one FD can violate another.

#ifndef TREX_REPAIR_FD_REPAIR_H_
#define TREX_REPAIR_FD_REPAIR_H_

#include <string>

#include "repair/algorithm.h"

namespace trex::repair {

/// Options for `FdRepair`.
struct FdRepairOptions {
  /// Maximum passes over the FD list (fixpoint usually arrives earlier).
  int max_passes = 8;
};

/// Equivalence-class FD repairer (see file comment).
class FdRepair : public RepairAlgorithm {
 public:
  explicit FdRepair(FdRepairOptions options = {});

  std::string name() const override { return "fd-repair"; }

  [[nodiscard]] Result<Table> Repair(const dc::DcSet& dcs,
                       const Table& dirty) const override;

  /// Precise influence graph: each FD X -> B contributes X, B -> B.
  std::optional<dc::AttributeGraph> InfluenceGraph(
      const dc::DcSet& dcs, const Schema& schema) const override;

 private:
  FdRepairOptions options_;
};

}  // namespace trex::repair

#endif  // TREX_REPAIR_FD_REPAIR_H_
