// `HoloCleanRepair`: a C++ reimplementation of the HoloClean pipeline
// (Rekatsinas, Chu, Ilyas, Ré — PVLDB 2017), the repair system the T-REx
// demo queries as its black box.
//
// The original is a Python/PostgreSQL system performing probabilistic
// inference over a factor-graph relaxation. This substrate keeps its
// stages and signal sources, deterministic and dependency-free:
//
//   1. Error detection   — cells implicated in DC violations are "noisy".
//   2. Domain generation — candidate values for a noisy cell are mined
//      from co-occurrence with the tuple's other attributes (capped,
//      ranked by co-occurrence strength).
//   3. Featurization     — per candidate: column prior, mean attribute
//      co-occurrence probability, DC-violation fraction when placed, and
//      a minimality indicator (HoloClean's feature families).
//   4. Weight learning   — weak supervision exactly as in the paper:
//      cells *not* flagged noisy serve as labeled examples; a multiclass
//      perceptron fits the feature weights.
//   5. Inference         — iterated conditional modes (ICM) to a
//      fixpoint, the deterministic analogue of Gibbs-based MAP inference.
//
// Determinism: fixed iteration orders and value-ordered tie-breaks, so
// the Shapley games are well-defined on top of it.

#ifndef TREX_REPAIR_HOLOCLEAN_H_
#define TREX_REPAIR_HOLOCLEAN_H_

#include <string>

#include "repair/algorithm.h"

namespace trex::repair {

/// Tuning knobs for `HoloCleanRepair`.
struct HoloCleanOptions {
  /// Maximum candidate-domain size per noisy cell (current value always
  /// kept).
  int max_domain_size = 8;
  /// ICM sweeps over the noisy cells.
  int max_inference_iterations = 10;
  /// Perceptron epochs over the weakly-labeled (clean) cells.
  int learning_epochs = 3;
  /// Perceptron step size.
  double learning_rate = 0.1;
  /// Cap on weak-supervision examples (row-major prefix) per run.
  int max_training_cells = 512;
  /// Disable to run with the fixed initial weights below.
  bool learn_weights = true;
  /// Conditioning evidence must be shared by at least this many rows to
  /// contribute co-occurrence signal. Key-like attributes (unique per
  /// row) co-occur perfectly with whatever the row currently holds —
  /// including injected errors — so singleton evidence is discarded,
  /// mirroring HoloClean's pruning of uninformative attribute pairs.
  std::size_t min_cooccurrence_support = 2;

  /// Initial feature weights: prior frequency, co-occurrence,
  /// violation penalty, minimality.
  double w_prior = 1.0;
  double w_cooccurrence = 2.0;
  double w_violation = 4.0;
  double w_minimality = 0.5;
};

/// HoloClean-style probabilistic repairer (see file comment).
class HoloCleanRepair : public RepairAlgorithm {
 public:
  explicit HoloCleanRepair(HoloCleanOptions options = {});

  std::string name() const override { return "holoclean"; }

  [[nodiscard]] Result<Table> Repair(const dc::DcSet& dcs,
                       const Table& dirty) const override;

  const HoloCleanOptions& options() const { return options_; }

 private:
  HoloCleanOptions options_;
};

}  // namespace trex::repair

#endif  // TREX_REPAIR_HOLOCLEAN_H_
