// Algorithm 1 from the paper: the didactic rule repairer bound to the
// running example's constraints C1..C4 (see data/soccer.h for the
// fixture itself).
//
// This factory lives in the repair layer, not in data/, because it
// constructs a `repair::RuleRepair` — and the layer DAG
// (common → table → dc/data → repair → core → workload → serving,
// enforced by tools/trex_check.py) forbids data/ from including
// repair/ headers. The data layer owns the tables and constraints; the
// repair layer owns the algorithms that consume them.

#ifndef TREX_REPAIR_SOCCER_ALGORITHM1_H_
#define TREX_REPAIR_SOCCER_ALGORITHM1_H_

#include <memory>

#include "repair/rule_repair.h"

namespace trex::repair {

/// Algorithm 1: the four repair steps bound to C1..C4.
std::shared_ptr<RuleRepair> MakeAlgorithm1();

}  // namespace trex::repair

#endif  // TREX_REPAIR_SOCCER_ALGORITHM1_H_
