#include "repair/rule_repair.h"

#include <map>
#include <optional>
#include <unordered_map>

#include "dc/row_index.h"
#include "dc/violation.h"
#include "table/stats.h"

namespace trex::repair {
namespace {

/// Value counts with the mode maintained under single-value updates —
/// the incremental form of `ColumnStats::MostCommon` (nulls excluded,
/// ties toward the smallest value). The mode is patched on increments
/// and lazily rescanned (ascending key order, strictly-greater count
/// wins — exactly `MostCommon`'s scan) when the current mode loses
/// weight, so a repair loop's writes cost O(1) amortized instead of an
/// O(n) stats rebuild each.
class ModeCounter {
 public:
  void Add(const Value& v) {
    if (v.is_null()) return;
    const std::size_t count = ++counts_[v];
    if (stale_) return;
    if (!mode_.has_value() || count > mode_count_ ||
        (count == mode_count_ && v < *mode_)) {
      mode_ = v;
      mode_count_ = count;
    }
  }

  void Remove(const Value& v) {
    if (v.is_null()) return;
    auto it = counts_.find(v);
    if (it == counts_.end()) return;  // never counted (defensive)
    if (--it->second == 0) counts_.erase(it);
    if (!stale_ && mode_.has_value() && v == *mode_) stale_ = true;
  }

  std::optional<Value> Mode() const {
    if (stale_) {
      mode_.reset();
      mode_count_ = 0;
      for (const auto& [value, count] : counts_) {  // ascending keys
        if (count > mode_count_) {
          mode_ = value;
          mode_count_ = count;
        }
      }
      stale_ = false;
    }
    return mode_;
  }

 private:
  std::map<Value, std::size_t> counts_;
  mutable std::optional<Value> mode_;
  mutable std::size_t mode_count_ = 0;
  mutable bool stale_ = false;
};

/// Incremental `JointStats::MostCommonGiven` over (cond, target)
/// columns: one `ModeCounter` per conditioning value, rows with a null
/// on either side excluded — matching `JointStats::Build`.
class ConditionalModeCounter {
 public:
  ConditionalModeCounter(const Table& table, std::size_t cond_col,
                         std::size_t target_col) {
    for (std::size_t r = 0; r < table.num_rows(); ++r) {
      Add(table.at(r, cond_col), table.at(r, target_col));
    }
  }

  void Add(const Value& cond, const Value& target) {
    if (cond.is_null() || target.is_null()) return;
    groups_[cond].Add(target);
  }

  void Remove(const Value& cond, const Value& target) {
    if (cond.is_null() || target.is_null()) return;
    auto it = groups_.find(cond);
    if (it != groups_.end()) it->second.Remove(target);
  }

  std::optional<Value> MostCommonGiven(const Value& cond) const {
    auto it = groups_.find(cond);
    if (it == groups_.end()) return std::nullopt;
    return it->second.Mode();
  }

 private:
  std::unordered_map<Value, ModeCounter, ValueHash> groups_;
};

ModeCounter BuildModeCounter(const Table& table, std::size_t col) {
  ModeCounter counter;
  for (std::size_t r = 0; r < table.num_rows(); ++r) {
    counter.Add(table.at(r, col));
  }
  return counter;
}

}  // namespace

RuleRepair::RuleRepair(std::string name, std::vector<RepairRule> rules,
                       RuleRepairOptions options)
    : name_(std::move(name)), rules_(std::move(rules)), options_(options) {}

Result<Table> RuleRepair::Repair(const dc::DcSet& dcs,
                                 const Table& dirty) const {
  // Resolve rules against the supplied constraint set and schema. Rules
  // bound to constraints not present in `dcs` are silently skipped (that
  // is the semantics of running the algorithm "without" a constraint).
  struct ResolvedRule {
    std::size_t constraint_index;
    RuleAction action;
    std::size_t target_col;
    std::size_t given_col;  // valid only for kSetMostCommonGiven
  };
  std::vector<ResolvedRule> resolved;
  resolved.reserve(rules_.size());
  for (const RepairRule& rule : rules_) {
    auto constraint_index = dcs.IndexOf(rule.constraint_name);
    if (!constraint_index.ok()) continue;  // constraint dropped from input
    TREX_ASSIGN_OR_RETURN(std::size_t target_col,
                          dirty.ColumnIndex(rule.target_attribute));
    std::size_t given_col = 0;
    if (rule.action == RuleAction::kSetMostCommonGiven) {
      TREX_ASSIGN_OR_RETURN(given_col,
                            dirty.ColumnIndex(rule.given_attribute));
    }
    resolved.push_back(ResolvedRule{*constraint_index, rule.action,
                                    target_col, given_col});
  }

  Table table = dirty;
  for (int pass = 0; pass < options_.max_passes; ++pass) {
    bool changed = false;
    for (const ResolvedRule& rule : resolved) {
      const dc::DenialConstraint& constraint = dcs.at(rule.constraint_index);
      // Bucketed per-row violation probe over the mutating table —
      // O(bucket) per row instead of dc::RowViolates' full scan. Writes
      // below only touch the rule's target column; the row is re-keyed
      // when that column feeds the constraint's join key.
      dc::ConstraintRowIndex row_index(&table, &constraint);
      // The paper's semantics: statistics reflect the *current*
      // (partially repaired) table. The incremental counters below are
      // updated on every write, so each query sees exactly what a fresh
      // ColumnStats/JointStats build over the current table would. A
      // rule conditioning on its own target column would invalidate its
      // conditioning groups on write, so that (unusual) shape keeps the
      // build-per-query path.
      const bool self_conditioned =
          rule.action == RuleAction::kSetMostCommonGiven &&
          rule.given_col == rule.target_col;
      std::optional<ModeCounter> column_mode;
      std::optional<ConditionalModeCounter> joint_mode;
      if (rule.action == RuleAction::kSetMostCommon) {
        column_mode = BuildModeCounter(table, rule.target_col);
      } else if (!self_conditioned) {
        joint_mode.emplace(table, rule.given_col, rule.target_col);
      }
      for (std::size_t row = 0; row < table.num_rows(); ++row) {
        if (!row_index.RowViolates(row)) continue;
        std::optional<Value> replacement;
        if (rule.action == RuleAction::kSetMostCommon) {
          replacement = column_mode->Mode();
        } else {
          const Value& given = table.at(row, rule.given_col);
          if (given.is_null()) continue;  // no conditioning evidence
          replacement =
              self_conditioned
                  ? JointStats::Build(table, rule.given_col,
                                      rule.target_col)
                        .MostCommonGiven(given)
                  : joint_mode->MostCommonGiven(given);
        }
        if (!replacement.has_value()) continue;  // no evidence at all
        const Value& current = table.at(row, rule.target_col);
        const bool differs =
            current.is_null() ? !replacement->is_null()
                              : (replacement->is_null() ||
                                 *replacement != current);
        if (differs) {
          const Value old_value = current;
          table.Set(row, rule.target_col, *replacement);
          changed = true;
          if (column_mode.has_value()) {
            column_mode->Remove(old_value);
            column_mode->Add(*replacement);
          }
          if (joint_mode.has_value()) {
            const Value& cond = table.at(row, rule.given_col);
            joint_mode->Remove(cond, old_value);
            joint_mode->Add(cond, *replacement);
          }
          if (row_index.IsKeyColumn(rule.target_col)) row_index.Rekey(row);
        }
      }
    }
    if (!changed) break;
  }
  return table;
}

std::optional<dc::AttributeGraph> RuleRepair::InfluenceGraph(
    const dc::DcSet& dcs, const Schema& schema) const {
  dc::AttributeGraph graph(schema.size());
  for (const RepairRule& rule : rules_) {
    auto constraint_index = dcs.IndexOf(rule.constraint_name);
    if (!constraint_index.ok()) continue;
    auto target_col = schema.IndexOf(rule.target_attribute);
    if (!target_col.ok()) continue;
    for (std::size_t read_col : dcs.at(*constraint_index).AllColumns()) {
      graph.AddInfluence(read_col, *target_col);
    }
    if (rule.action == RuleAction::kSetMostCommonGiven) {
      auto given_col = schema.IndexOf(rule.given_attribute);
      if (given_col.ok()) graph.AddInfluence(*given_col, *target_col);
    }
    // The statistics source is the target column itself.
    graph.AddInfluence(*target_col, *target_col);
  }
  return graph;
}

}  // namespace trex::repair
