#include "repair/rule_repair.h"

#include <optional>

#include "dc/violation.h"
#include "table/stats.h"

namespace trex::repair {

RuleRepair::RuleRepair(std::string name, std::vector<RepairRule> rules,
                       RuleRepairOptions options)
    : name_(std::move(name)), rules_(std::move(rules)), options_(options) {}

Result<Table> RuleRepair::Repair(const dc::DcSet& dcs,
                                 const Table& dirty) const {
  // Resolve rules against the supplied constraint set and schema. Rules
  // bound to constraints not present in `dcs` are silently skipped (that
  // is the semantics of running the algorithm "without" a constraint).
  struct ResolvedRule {
    std::size_t constraint_index;
    RuleAction action;
    std::size_t target_col;
    std::size_t given_col;  // valid only for kSetMostCommonGiven
  };
  std::vector<ResolvedRule> resolved;
  resolved.reserve(rules_.size());
  for (const RepairRule& rule : rules_) {
    auto constraint_index = dcs.IndexOf(rule.constraint_name);
    if (!constraint_index.ok()) continue;  // constraint dropped from input
    TREX_ASSIGN_OR_RETURN(std::size_t target_col,
                          dirty.ColumnIndex(rule.target_attribute));
    std::size_t given_col = 0;
    if (rule.action == RuleAction::kSetMostCommonGiven) {
      TREX_ASSIGN_OR_RETURN(given_col,
                            dirty.ColumnIndex(rule.given_attribute));
    }
    resolved.push_back(ResolvedRule{*constraint_index, rule.action,
                                    target_col, given_col});
  }

  Table table = dirty;
  for (int pass = 0; pass < options_.max_passes; ++pass) {
    bool changed = false;
    for (const ResolvedRule& rule : resolved) {
      const dc::DenialConstraint& constraint = dcs.at(rule.constraint_index);
      for (std::size_t row = 0; row < table.num_rows(); ++row) {
        if (!dc::RowViolates(table, constraint, row)) continue;
        std::optional<Value> replacement;
        if (rule.action == RuleAction::kSetMostCommon) {
          replacement = ColumnStats::Build(table, rule.target_col)
                            .MostCommon();
        } else {
          const Value& given = table.at(row, rule.given_col);
          if (given.is_null()) continue;  // no conditioning evidence
          replacement = JointStats::Build(table, rule.given_col,
                                          rule.target_col)
                            .MostCommonGiven(given);
        }
        if (!replacement.has_value()) continue;  // no evidence at all
        const Value& current = table.at(row, rule.target_col);
        const bool differs =
            current.is_null() ? !replacement->is_null()
                              : (replacement->is_null() ||
                                 *replacement != current);
        if (differs) {
          table.Set(row, rule.target_col, *replacement);
          changed = true;
        }
      }
    }
    if (!changed) break;
  }
  return table;
}

std::optional<dc::AttributeGraph> RuleRepair::InfluenceGraph(
    const dc::DcSet& dcs, const Schema& schema) const {
  dc::AttributeGraph graph(schema.size());
  for (const RepairRule& rule : rules_) {
    auto constraint_index = dcs.IndexOf(rule.constraint_name);
    if (!constraint_index.ok()) continue;
    auto target_col = schema.IndexOf(rule.target_attribute);
    if (!target_col.ok()) continue;
    for (std::size_t read_col : dcs.at(*constraint_index).AllColumns()) {
      graph.AddInfluence(read_col, *target_col);
    }
    if (rule.action == RuleAction::kSetMostCommonGiven) {
      auto given_col = schema.IndexOf(rule.given_attribute);
      if (given_col.ok()) graph.AddInfluence(*given_col, *target_col);
    }
    // The statistics source is the target column itself.
    graph.AddInfluence(*target_col, *target_col);
  }
  return graph;
}

}  // namespace trex::repair
