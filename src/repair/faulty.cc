#include "repair/faulty.h"

#include <string>

#include "common/fault.h"
#include "common/random.h"

namespace trex::repair {

Result<Table> FaultyAlgorithm::Repair(const dc::DcSet& dcs,
                                      const Table& dirty) const {
  // Chaos plans drive every decorated backend through this shared site.
  TREX_FAULT_INJECT("repair.backend");

  const std::size_t call = calls_.fetch_add(1, std::memory_order_relaxed) + 1;
  if (call > options_.skip_first) {
    const std::size_t engaged = call - options_.skip_first;
    bool fail = engaged <= options_.fail_first;
    if (!fail && options_.failure_rate > 0.0) {
      // Stateless per-call draw: the set of failing call numbers is a
      // pure function of (seed, call), independent of thread timing.
      std::uint64_t state = options_.seed ^ (0x9e3779b97f4a7c15ULL * call);
      SplitMix64(&state);
      const double draw =
          static_cast<double>(SplitMix64(&state) >> 11) * 0x1.0p-53;
      fail = draw < options_.failure_rate;
    }
    if (fail) {
      injected_.fetch_add(1, std::memory_order_relaxed);
      return Status(options_.code, "injected backend fault in " + name_ +
                                       " (call #" + std::to_string(call) +
                                       ")");
    }
  }
  return inner_->Repair(dcs, dirty);
}

}  // namespace trex::repair
