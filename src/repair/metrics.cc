#include "repair/metrics.h"

#include "common/string_util.h"
#include "dc/violation.h"

namespace trex::repair {
namespace {

bool SameValue(const Value& a, const Value& b) {
  if (a.is_null() || b.is_null()) return a.is_null() && b.is_null();
  return a == b;
}

}  // namespace

std::string RepairQuality::ToString() const {
  return StrFormat(
      "precision=%.3f recall=%.3f f1=%.3f (changed=%zu correct=%zu "
      "errors=%zu fixed=%zu residual_violations=%zu)",
      precision, recall, f1, cells_changed, correct_changes, true_errors,
      errors_fixed, residual_violations);
}

Result<RepairQuality> EvaluateRepair(const Table& dirty,
                                     const Table& repaired,
                                     const Table& truth,
                                     const dc::DcSet& dcs) {
  if (dirty.schema() != repaired.schema() ||
      dirty.schema() != truth.schema() ||
      dirty.num_rows() != repaired.num_rows() ||
      dirty.num_rows() != truth.num_rows()) {
    return Status::InvalidArgument(
        "dirty/repaired/truth tables must share shape");
  }
  RepairQuality q;
  for (std::size_t r = 0; r < dirty.num_rows(); ++r) {
    for (std::size_t c = 0; c < dirty.num_columns(); ++c) {
      const Value& d = dirty.at(r, c);
      const Value& rep = repaired.at(r, c);
      const Value& t = truth.at(r, c);
      const bool changed = !SameValue(d, rep);
      const bool was_error = !SameValue(d, t);
      if (changed) {
        ++q.cells_changed;
        if (SameValue(rep, t)) ++q.correct_changes;
      }
      if (was_error) {
        ++q.true_errors;
        if (SameValue(rep, t)) ++q.errors_fixed;
      }
    }
  }
  q.residual_violations = dc::FindViolations(repaired, dcs).size();
  q.precision = q.cells_changed == 0
                    ? 1.0
                    : static_cast<double>(q.correct_changes) /
                          static_cast<double>(q.cells_changed);
  q.recall = q.true_errors == 0
                 ? 1.0
                 : static_cast<double>(q.errors_fixed) /
                       static_cast<double>(q.true_errors);
  q.f1 = (q.precision + q.recall) == 0
             ? 0.0
             : 2 * q.precision * q.recall / (q.precision + q.recall);
  return q;
}

}  // namespace trex::repair
