// `FaultyAlgorithm`: a fault-injecting decorator over any repair backend.
//
// The serving stack treats repair algorithms as black boxes that always
// answer; this decorator is how tests and the chaos suite make them
// *stop* answering on a deterministic schedule, so retry loops, circuit
// breakers, and memo-integrity guarantees can be exercised end to end.
//
// Two independent fault channels compose:
//   1. A built-in schedule (`FaultyOptions`): fail the first
//      `fail_first` calls after `skip_first` pass-throughs, then fail
//      each call with `failure_rate`, drawn statelessly from `seed` and
//      the call index via splitmix64 — deterministic per call number
//      regardless of thread interleaving.
//   2. The process-wide injector (`common/fault.h`) via the
//      "repair.backend" site, so chaos plans can drive every decorated
//      backend in a run without plumbing options.
//
// Injected failures default to `kUnavailable` (transient): the serving
// layer retries them and counts them toward breaker windows. Configure
// `code` to a permanent category to test fail-fast classification.
//
// Like every `RepairAlgorithm`, the decorator is safe for concurrent
// `Repair` calls: its only mutable state is an atomic call counter.

#ifndef TREX_REPAIR_FAULTY_H_
#define TREX_REPAIR_FAULTY_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <utility>

#include "repair/algorithm.h"

namespace trex::repair {

/// Built-in fault schedule for `FaultyAlgorithm`.
struct FaultyOptions {
  /// Calls that pass through before the schedule engages (e.g. 1 lets
  /// the engine's reference repair succeed and faults the first eval).
  std::size_t skip_first = 0;
  /// Engaged calls that fail before the schedule moves to rate mode.
  std::size_t fail_first = 0;
  /// Probability that each later call fails (stateless draw from
  /// `seed` ^ call index, so the failing call numbers are replayable).
  double failure_rate = 0.0;
  /// Seed for the failure-rate draws.
  std::uint64_t seed = 0;
  /// Code carried by injected failures; `kUnavailable` is transient.
  StatusCode code = StatusCode::kUnavailable;
};

/// Decorator that fails `Repair` calls on a deterministic schedule and
/// otherwise delegates to the wrapped backend (see file comment).
class FaultyAlgorithm : public RepairAlgorithm {
 public:
  FaultyAlgorithm(std::string name,
                  std::shared_ptr<const RepairAlgorithm> inner,
                  FaultyOptions options)
      : name_(std::move(name)), inner_(std::move(inner)),
        options_(options) {}

  /// Distinct routing name: decorated backends must not share an engine
  /// (and its memo) with their undecorated twin.
  std::string name() const override { return name_; }

  [[nodiscard]] Result<Table> Repair(const dc::DcSet& dcs,
                       const Table& dirty) const override;

  std::optional<dc::AttributeGraph> InfluenceGraph(
      const dc::DcSet& dcs, const Schema& schema) const override {
    return inner_->InfluenceGraph(dcs, schema);
  }

  /// Total `Repair` calls observed (successful or failed).
  std::size_t calls() const {
    return calls_.load(std::memory_order_relaxed);
  }

  /// Calls that failed by schedule (not counting injector-site faults).
  std::size_t injected_failures() const {
    return injected_.load(std::memory_order_relaxed);
  }

 private:
  std::string name_;
  std::shared_ptr<const RepairAlgorithm> inner_;
  FaultyOptions options_;
  mutable std::atomic<std::size_t> calls_{0};
  mutable std::atomic<std::size_t> injected_{0};
};

}  // namespace trex::repair

#endif  // TREX_REPAIR_FAULTY_H_
