#include "repair/holistic.h"

#include <map>
#include <optional>
#include <set>
#include <vector>

#include "dc/incremental.h"
#include "dc/violation.h"
#include "table/stats.h"

namespace trex::repair {
namespace {

/// Candidate replacement values for `cell`, mined from its repair
/// context: partner-cell values from the violations it participates in
/// (to satisfy broken != predicates), plus frequent column values (to
/// escape broken = predicates), plus the column mode. `cell_violations`
/// iterates in (constraint, row1, row2) order; `stats` is the cell's
/// column distribution over the current table.
std::vector<Value> ContextCandidates(
    const Table& table, const std::set<dc::Violation>& cell_violations,
    const ColumnStats& stats, CellRef cell, int max_candidates) {
  std::set<Value> candidates;
  for (const dc::Violation& v : cell_violations) {
    // Partner value in the same column from the other tuple.
    const std::size_t partner_row = cell.row == v.row1 ? v.row2 : v.row1;
    const Value& partner = table.at(partner_row, cell.col);
    if (!partner.is_null()) candidates.insert(partner);
  }
  if (auto mode = stats.MostCommon(); mode.has_value()) {
    candidates.insert(*mode);
  }
  for (const Value& v : stats.DistinctSorted()) {
    if (static_cast<int>(candidates.size()) >= max_candidates) break;
    candidates.insert(v);
  }
  const Value& current = table.at(cell);
  if (!current.is_null()) candidates.erase(current);
  return {candidates.begin(), candidates.end()};
}

/// The conflict hypergraph's cell-degree bookkeeping, maintained
/// incrementally from `ViolationIndex` deltas: each cell's violation
/// set, and cells bucketed by degree so the greedy MVC frontier (all
/// max-degree cells, ascending CellRef order) is the top bucket instead
/// of a per-round rescan of every violation.
class ConflictGraph {
 public:
  ConflictGraph(const dc::DcSet& dcs,
                const std::set<dc::Violation>& violations)
      : dcs_(dcs) {
    for (const dc::Violation& v : violations) Add(v);
  }

  void Add(const dc::Violation& v) {
    for (const CellRef& cell : dc::ImplicatedCells(v, dcs_)) {
      auto& cell_violations = per_cell_[cell];
      const std::size_t old_degree = cell_violations.size();
      if (!cell_violations.insert(v).second) continue;
      Rebucket(cell, old_degree, old_degree + 1);
    }
  }

  void Remove(const dc::Violation& v) {
    for (const CellRef& cell : dc::ImplicatedCells(v, dcs_)) {
      auto it = per_cell_.find(cell);
      if (it == per_cell_.end() || it->second.erase(v) == 0) continue;
      const std::size_t new_degree = it->second.size();
      Rebucket(cell, new_degree + 1, new_degree);
      if (new_degree == 0) per_cell_.erase(it);
    }
  }

  bool empty() const { return by_degree_.empty(); }

  /// All cells at the maximum degree, ascending CellRef order.
  const std::set<CellRef>& Frontier() const {
    return by_degree_.rbegin()->second;
  }

  const std::set<dc::Violation>& ViolationsOf(CellRef cell) const {
    return per_cell_.at(cell);
  }

 private:
  void Rebucket(CellRef cell, std::size_t from, std::size_t to) {
    if (from > 0) {
      auto it = by_degree_.find(from);
      it->second.erase(cell);
      if (it->second.empty()) by_degree_.erase(it);
    }
    if (to > 0) by_degree_[to].insert(cell);
  }

  const dc::DcSet& dcs_;
  std::map<CellRef, std::set<dc::Violation>> per_cell_;
  std::map<std::size_t, std::set<CellRef>> by_degree_;
};

}  // namespace

HolisticRepair::HolisticRepair(HolisticOptions options) : options_(options) {}

Result<Table> HolisticRepair::Repair(const dc::DcSet& dcs,
                                     const Table& dirty) const {
  // The index maintains the violation set under cell probes/updates
  // (one bucket probe per candidate instead of a full table scan — see
  // dc/incremental.h); the conflict graph and the per-column stats ride
  // its deltas, so a round costs the frontier evaluation, not a rescan
  // of every violation and column.
  dc::ViolationIndex index(dirty, &dcs);
  ConflictGraph graph(dcs, index.violations());
  std::map<std::size_t, ColumnStats> column_stats;

  for (int round = 0; round < options_.max_rounds; ++round) {
    if (index.violations().empty()) break;

    // Evaluate each (frontier cell, context candidate) pair by the total
    // violations after placement; the frontier and the candidate lists
    // are value-ordered, so ties resolve deterministically.
    const std::size_t before = index.count();
    std::size_t best_count = before;
    CellRef best_cell{};
    Value best_value;
    bool found = false;
    for (const CellRef& cell : graph.Frontier()) {
      auto stats_it = column_stats.find(cell.col);
      if (stats_it == column_stats.end()) {
        stats_it = column_stats
                       .emplace(cell.col,
                                ColumnStats::Build(index.table(), cell.col))
                       .first;
      }
      const std::vector<Value> candidates =
          ContextCandidates(index.table(), graph.ViolationsOf(cell),
                            stats_it->second, cell, options_.max_candidates);
      for (const Value& candidate : candidates) {
        const std::size_t count = index.CountIfSet(cell, candidate);
        if (count < best_count) {
          best_count = count;
          best_cell = cell;
          best_value = candidate;
          found = true;
        }
      }
    }

    if (!found) break;  // no rewrite strictly improves: stop
    std::vector<dc::Violation> removed;
    std::vector<dc::Violation> added;
    index.SetCell(best_cell, best_value, &removed, &added);
    for (const dc::Violation& v : removed) graph.Remove(v);
    for (const dc::Violation& v : added) graph.Add(v);
    column_stats.erase(best_cell.col);
  }
  return index.table();
}

}  // namespace trex::repair
