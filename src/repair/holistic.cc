#include "repair/holistic.h"

#include <algorithm>
#include <map>
#include <set>
#include <vector>

#include "dc/incremental.h"
#include "dc/violation.h"
#include "table/stats.h"

namespace trex::repair {
namespace {

/// The cells participating in the most violations (all ties, in
/// ascending CellRef order) — the greedy MVC frontier over the conflict
/// hypergraph. Evaluating the whole frontier rather than one arbitrary
/// tie-break lets the repair-context step pick the cell whose rewrite
/// actually resolves the most conflicts (e.g. preferring the City cell
/// of an FD violation over its key cell).
std::vector<CellRef> PickCoverCells(const std::vector<dc::Violation>& violations,
                                    const dc::DcSet& dcs) {
  std::map<CellRef, std::size_t> degree;
  for (const dc::Violation& v : violations) {
    for (const CellRef& cell : dc::ImplicatedCells(v, dcs)) {
      ++degree[cell];
    }
  }
  std::size_t max_degree = 0;
  for (const auto& [cell, d] : degree) {
    (void)cell;
    max_degree = std::max(max_degree, d);
  }
  std::vector<CellRef> frontier;
  for (const auto& [cell, d] : degree) {  // std::map: ascending CellRef
    if (d == max_degree) frontier.push_back(cell);
  }
  return frontier;
}

/// Candidate replacement values for `cell`, mined from its repair
/// context: partner-cell values from the violations it participates in
/// (to satisfy broken != predicates), plus frequent column values (to
/// escape broken = predicates), plus the column mode.
std::vector<Value> ContextCandidates(const Table& table,
                                     const dc::DcSet& dcs,
                                     const std::vector<dc::Violation>& violations,
                                     CellRef cell, int max_candidates) {
  std::set<Value> candidates;
  for (const dc::Violation& v : violations) {
    const auto cells = dc::ImplicatedCells(v, dcs);
    if (std::find(cells.begin(), cells.end(), cell) == cells.end()) continue;
    // Partner value in the same column from the other tuple.
    const std::size_t partner_row = cell.row == v.row1 ? v.row2 : v.row1;
    const Value& partner = table.at(partner_row, cell.col);
    if (!partner.is_null()) candidates.insert(partner);
  }
  const ColumnStats stats = ColumnStats::Build(table, cell.col);
  if (auto mode = stats.MostCommon(); mode.has_value()) {
    candidates.insert(*mode);
  }
  for (const Value& v : stats.DistinctSorted()) {
    if (static_cast<int>(candidates.size()) >= max_candidates) break;
    candidates.insert(v);
  }
  const Value& current = table.at(cell);
  if (!current.is_null()) candidates.erase(current);
  return {candidates.begin(), candidates.end()};
}

}  // namespace

HolisticRepair::HolisticRepair(HolisticOptions options) : options_(options) {}

Result<Table> HolisticRepair::Repair(const dc::DcSet& dcs,
                                     const Table& dirty) const {
  // The index maintains the violation set under cell probes/updates, so
  // candidate evaluation costs one row rescan instead of a full table
  // scan (see dc/incremental.h).
  dc::ViolationIndex index(dirty, &dcs);
  for (int round = 0; round < options_.max_rounds; ++round) {
    if (index.violations().empty()) break;
    const std::vector<dc::Violation> violations(index.violations().begin(),
                                                index.violations().end());

    // Evaluate each (frontier cell, context candidate) pair by the total
    // violations after placement; the frontier and the candidate lists
    // are value-ordered, so ties resolve deterministically.
    const std::size_t before = violations.size();
    std::size_t best_count = before;
    CellRef best_cell{};
    Value best_value;
    bool found = false;
    for (const CellRef& cell : PickCoverCells(violations, dcs)) {
      const std::vector<Value> candidates = ContextCandidates(
          index.table(), dcs, violations, cell, options_.max_candidates);
      for (const Value& candidate : candidates) {
        const std::size_t count = index.CountIfSet(cell, candidate);
        if (count < best_count) {
          best_count = count;
          best_cell = cell;
          best_value = candidate;
          found = true;
        }
      }
    }

    if (!found) break;  // no rewrite strictly improves: stop
    index.SetCell(best_cell, best_value);
  }
  return index.table();
}

}  // namespace trex::repair
