// Repair-quality metrics against a known ground truth.
//
// Used by the benchmark harness (repair-algorithm comparison, the §4
// demo-scenario experiment) on synthetic data where the error injector
// recorded the true clean table.

#ifndef TREX_REPAIR_METRICS_H_
#define TREX_REPAIR_METRICS_H_

#include <cstddef>
#include <string>

#include "dc/constraint.h"
#include "table/table.h"

namespace trex::repair {

/// Cell-level repair quality.
struct RepairQuality {
  /// Cells the repairer changed (dirty -> repaired).
  std::size_t cells_changed = 0;
  /// Changed cells whose new value equals the ground truth.
  std::size_t correct_changes = 0;
  /// Cells that were actually erroneous (dirty != truth).
  std::size_t true_errors = 0;
  /// Erroneous cells restored to their true value.
  std::size_t errors_fixed = 0;
  /// Violations remaining in the repaired table.
  std::size_t residual_violations = 0;

  /// correct_changes / cells_changed (1 when nothing changed).
  double precision = 1.0;
  /// errors_fixed / true_errors (1 when nothing was broken).
  double recall = 1.0;
  /// Harmonic mean of precision and recall.
  double f1 = 1.0;

  std::string ToString() const;
};

/// Scores `repaired` against `truth`, given the original `dirty` table
/// and the constraint set (for residual violations). All three tables
/// must share shape.
[[nodiscard]] Result<RepairQuality> EvaluateRepair(const Table& dirty,
                                     const Table& repaired,
                                     const Table& truth,
                                     const dc::DcSet& dcs);

}  // namespace trex::repair

#endif  // TREX_REPAIR_METRICS_H_
