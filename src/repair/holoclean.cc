#include "repair/holoclean.h"

#include <algorithm>
#include <array>
#include <map>
#include <unordered_set>
#include <vector>

#include "dc/row_index.h"
#include "dc/violation.h"
#include "table/stats.h"

namespace trex::repair {
namespace {

constexpr int kNumFeatures = 4;
using FeatureVector = std::array<double, kNumFeatures>;

/// The mutable assignment under inference: the working table plus one
/// bucketed violation probe per constraint (kept consistent on writes),
/// so candidate scoring checks one hash bucket instead of scanning all
/// rows per constraint.
struct WorkingState {
  Table table;
  std::vector<dc::ConstraintRowIndex> row_indexes;

  WorkingState(const Table& dirty, const dc::DcSet& dcs) : table(dirty) {
    row_indexes.reserve(dcs.size());
    for (std::size_t c = 0; c < dcs.size(); ++c) {
      row_indexes.emplace_back(&table, &dcs.at(c));
    }
  }

  /// Not copyable/movable: the row indexes point into this object's own
  /// `table`.
  WorkingState(const WorkingState&) = delete;
  WorkingState& operator=(const WorkingState&) = delete;

  void Set(CellRef cell, const Value& value) {
    table.Set(cell, value);
    for (dc::ConstraintRowIndex& index : row_indexes) {
      if (index.IsKeyColumn(cell.col)) index.Rekey(cell.row);
    }
  }
};

/// Shared per-run context: the dirty table's statistics and the DC set.
struct Context {
  const Table& dirty;
  const dc::DcSet& dcs;
  TableStats stats;
  const HoloCleanOptions& options;

  Context(const Table& dirty_in, const dc::DcSet& dcs_in,
          const HoloCleanOptions& options_in)
      : dirty(dirty_in), dcs(dcs_in), stats(&dirty_in), options(options_in) {}
};

/// Candidate domain for one cell: mined from co-occurrence with the
/// tuple's other attributes, plus the current value and the column mode.
std::vector<Value> BuildDomain(Context* ctx, CellRef cell) {
  const Table& table = ctx->dirty;
  const std::size_t num_cols = table.num_columns();

  // Score candidates by summed co-occurrence probability. Evidence with
  // fewer than min_cooccurrence_support supporting rows is skipped (see
  // HoloCleanOptions).
  std::map<Value, double> scores;
  for (std::size_t other = 0; other < num_cols; ++other) {
    if (other == cell.col) continue;
    const Value& evidence = table.at(cell.row, other);
    if (evidence.is_null()) continue;
    const JointStats& joint = ctx->stats.Joint(other, cell.col);
    if (joint.CountGiven(evidence) < ctx->options.min_cooccurrence_support) {
      continue;
    }
    for (const Value& candidate : joint.TargetsGiven(evidence)) {
      scores[candidate] += joint.ProbabilityGiven(evidence, candidate);
    }
  }
  const ColumnStats& column = ctx->stats.Column(cell.col);
  if (auto mode = column.MostCommon(); mode.has_value()) {
    scores.emplace(*mode, 0.0);  // ensure present, keep mined score if any
  }
  const Value& current = table.at(cell);
  if (!current.is_null()) scores.emplace(current, 0.0);

  // Rank by (score desc, value asc) — std::map already orders by value,
  // giving deterministic ties.
  std::vector<std::pair<Value, double>> ranked(scores.begin(), scores.end());
  std::stable_sort(ranked.begin(), ranked.end(),
                   [](const auto& a, const auto& b) {
                     return a.second > b.second;
                   });
  std::vector<Value> domain;
  for (const auto& [value, score] : ranked) {
    (void)score;
    if (!current.is_null() && value == current) continue;  // added below
    domain.push_back(value);
    if (static_cast<int>(domain.size()) >=
        ctx->options.max_domain_size - (current.is_null() ? 0 : 1)) {
      break;
    }
  }
  if (!current.is_null()) domain.push_back(current);
  std::sort(domain.begin(), domain.end());  // deterministic scan order
  return domain;
}

/// Features of assigning `candidate` to `cell`, judged against `working`
/// (the current assignment of all other cells).
FeatureVector Featurize(Context* ctx, WorkingState* working, CellRef cell,
                        const Value& candidate, const Value& original) {
  FeatureVector f{};
  // f[0]: column prior from the dirty table.
  f[0] = ctx->stats.Column(cell.col).Probability(candidate);

  // f[1]: mean co-occurrence probability with the tuple's other
  // attributes (dirty-table statistics, as HoloClean mines evidence from
  // the input dataset).
  double cooc_sum = 0;
  int cooc_count = 0;
  for (std::size_t other = 0; other < ctx->dirty.num_columns(); ++other) {
    if (other == cell.col) continue;
    const Value& evidence = ctx->dirty.at(cell.row, other);
    if (evidence.is_null()) continue;
    const JointStats& joint = ctx->stats.Joint(other, cell.col);
    if (joint.CountGiven(evidence) < ctx->options.min_cooccurrence_support) {
      continue;  // key-like evidence carries no repair signal
    }
    cooc_sum += joint.ProbabilityGiven(evidence, candidate);
    ++cooc_count;
  }
  f[1] = cooc_count == 0 ? 0.0 : cooc_sum / cooc_count;

  // f[2]: negated fraction of DCs the row violates with the candidate
  // placed (violations lower the score).
  const Value saved = working->table.at(cell);
  working->Set(cell, candidate);
  int violated = 0;
  for (const dc::ConstraintRowIndex& index : working->row_indexes) {
    if (index.RowViolates(cell.row)) ++violated;
  }
  working->Set(cell, saved);
  f[2] = ctx->dcs.empty()
             ? 0.0
             : -static_cast<double>(violated) /
                   static_cast<double>(ctx->dcs.size());

  // f[3]: minimality — keeping the original value.
  f[3] = (!original.is_null() && candidate == original) ? 1.0 : 0.0;
  return f;
}

double Score(const FeatureVector& f, const FeatureVector& w) {
  double s = 0;
  for (int i = 0; i < kNumFeatures; ++i) s += f[i] * w[i];
  return s;
}

/// Argmax candidate under the current weights; ties break toward the
/// smaller value (domains are value-sorted).
Value BestCandidate(Context* ctx, WorkingState* working, CellRef cell,
                    const std::vector<Value>& domain, const Value& original,
                    const FeatureVector& weights) {
  double best_score = 0;
  const Value* best = nullptr;
  for (const Value& candidate : domain) {
    const double s =
        Score(Featurize(ctx, working, cell, candidate, original), weights);
    if (best == nullptr || s > best_score) {
      best_score = s;
      best = &candidate;
    }
  }
  return best == nullptr ? Value::Null() : *best;
}

/// Multiclass-perceptron weight fitting on weakly-labeled clean cells.
FeatureVector LearnWeights(Context* ctx, WorkingState* working,
                           const std::vector<CellRef>& clean_cells) {
  FeatureVector w{ctx->options.w_prior, ctx->options.w_cooccurrence,
                  ctx->options.w_violation, ctx->options.w_minimality};
  const double lr = ctx->options.learning_rate;
  for (int epoch = 0; epoch < ctx->options.learning_epochs; ++epoch) {
    for (const CellRef& cell : clean_cells) {
      const Value observed = ctx->dirty.at(cell);
      std::vector<Value> domain = BuildDomain(ctx, cell);
      if (domain.size() < 2) continue;
      const Value predicted =
          BestCandidate(ctx, working, cell, domain, observed, w);
      if (predicted.is_null() || predicted == observed) continue;
      const FeatureVector f_obs =
          Featurize(ctx, working, cell, observed, observed);
      const FeatureVector f_pred =
          Featurize(ctx, working, cell, predicted, observed);
      for (int i = 0; i < kNumFeatures; ++i) {
        w[i] += lr * (f_obs[i] - f_pred[i]);
      }
    }
  }
  return w;
}

}  // namespace

HoloCleanRepair::HoloCleanRepair(HoloCleanOptions options)
    : options_(options) {}

Result<Table> HoloCleanRepair::Repair(const dc::DcSet& dcs,
                                      const Table& dirty) const {
  Context ctx(dirty, dcs, options_);

  // Stage 1: error detection.
  const std::vector<dc::Violation> violations = dc::FindViolations(dirty, dcs);
  std::unordered_set<std::size_t> noisy_linear;
  for (const dc::Violation& v : violations) {
    for (const CellRef& cell : dc::ImplicatedCells(v, dcs)) {
      noisy_linear.insert(dirty.LinearIndex(cell));
    }
  }
  if (noisy_linear.empty()) return dirty;

  std::vector<CellRef> noisy_cells;
  std::vector<CellRef> clean_cells;
  for (const CellRef& cell : dirty.AllCells()) {
    if (noisy_linear.count(dirty.LinearIndex(cell)) > 0) {
      noisy_cells.push_back(cell);
    } else if (!dirty.at(cell).is_null() &&
               static_cast<int>(clean_cells.size()) <
                   options_.max_training_cells) {
      clean_cells.push_back(cell);
    }
  }

  WorkingState working(dirty, dcs);

  // Stage 4 (weights) uses the *unrepaired* working copy.
  FeatureVector weights{options_.w_prior, options_.w_cooccurrence,
                        options_.w_violation, options_.w_minimality};
  if (options_.learn_weights) {
    weights = LearnWeights(&ctx, &working, clean_cells);
  }

  // Stage 2 domains, computed once per noisy cell.
  std::vector<std::vector<Value>> domains;
  domains.reserve(noisy_cells.size());
  for (const CellRef& cell : noisy_cells) {
    domains.push_back(BuildDomain(&ctx, cell));
  }

  // Stage 5: ICM to fixpoint.
  for (int iter = 0; iter < options_.max_inference_iterations; ++iter) {
    bool changed = false;
    for (std::size_t i = 0; i < noisy_cells.size(); ++i) {
      const CellRef cell = noisy_cells[i];
      if (domains[i].empty()) continue;
      const Value& original = dirty.at(cell);
      const Value best = BestCandidate(&ctx, &working, cell, domains[i],
                                       original, weights);
      if (best.is_null()) continue;
      const Value& current = working.table.at(cell);
      if (current.is_null() || best != current) {
        working.Set(cell, best);
        changed = true;
      }
    }
    if (!changed) break;
  }
  return working.table;
}

}  // namespace trex::repair
