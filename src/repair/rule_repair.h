// `RuleRepair`: the paper's "Algorithm 1" family of rule-based repairers.
//
// Each rule binds to a constraint *by name* and fires, in rule order, for
// every tuple that currently participates in a violation of that
// constraint; the rule then rewrites one attribute of that tuple from the
// table's empirical statistics:
//
//   kSetMostCommon        t[A] := argmax_v P[A = v]
//   kSetMostCommonGiven   t[A] := argmax_v P[A = v | B = t[B]]
//
// Rules whose constraint is absent from the supplied DC set are skipped —
// this is what makes `RuleRepair` a meaningful black box for the
// *constraint* Shapley game: dropping C2 from the input disables step 2
// exactly as in the paper's Example 2.3.
//
// Statistics are computed over the *current* (partially repaired) table,
// and rows are visited in ascending index, so step 2 sees step 1's writes
// (Example 1.1: "C1 caused the change of 'Capital' to 'Madrid' first and
// then C2 caused the change of the value in the Country cell").

#ifndef TREX_REPAIR_RULE_REPAIR_H_
#define TREX_REPAIR_RULE_REPAIR_H_

#include <string>
#include <vector>

#include "repair/algorithm.h"

namespace trex::repair {

/// The repair action a rule applies to a violating tuple.
enum class RuleAction {
  /// t[target] := most common value of the target column.
  kSetMostCommon,
  /// t[target] := most common target value among rows sharing t[given].
  kSetMostCommonGiven,
};

/// One step of an Algorithm-1-style repairer.
struct RepairRule {
  /// Name of the constraint that triggers this rule (e.g. "C1").
  std::string constraint_name;
  RuleAction action = RuleAction::kSetMostCommon;
  /// Attribute to rewrite.
  std::string target_attribute;
  /// Conditioning attribute (kSetMostCommonGiven only).
  std::string given_attribute;
};

/// Options for `RuleRepair`.
struct RuleRepairOptions {
  /// Number of passes over the rule list. The paper's Algorithm 1 is a
  /// single pass; raise this to run the rule pipeline to a fixpoint
  /// (passes stop early once a full pass changes nothing).
  int max_passes = 1;
};

/// Deterministic rule-list repairer (see file comment).
class RuleRepair : public RepairAlgorithm {
 public:
  RuleRepair(std::string name, std::vector<RepairRule> rules,
             RuleRepairOptions options = {});

  std::string name() const override { return name_; }

  [[nodiscard]] Result<Table> Repair(const dc::DcSet& dcs,
                       const Table& dirty) const override;

  /// Precise influence graph: each rule adds edges from its constraint's
  /// read columns (plus the conditioning column) to its target column.
  std::optional<dc::AttributeGraph> InfluenceGraph(
      const dc::DcSet& dcs, const Schema& schema) const override;

  const std::vector<RepairRule>& rules() const { return rules_; }

 private:
  std::string name_;
  std::vector<RepairRule> rules_;
  RuleRepairOptions options_;
};

}  // namespace trex::repair

#endif  // TREX_REPAIR_RULE_REPAIR_H_
