// The black-box repair-algorithm interface T-REx explains.
//
// T-REx (paper §1) is agnostic to the repair approach: it only requires a
// deterministic function `Alg(C, T^d) -> T^c`. Every repairer in this
// library implements `RepairAlgorithm`; the Shapley games in src/core
// query it with perturbed inputs (constraint subsets / cell coalitions)
// and never look inside.
//
// Determinism contract: two calls with equal `(dcs, dirty)` must return
// equal tables — otherwise Shapley values are ill-defined. All bundled
// repairers use fixed iteration orders and value-ordered tie-breaking; no
// wall-clock, no unseeded randomness.

#ifndef TREX_REPAIR_ALGORITHM_H_
#define TREX_REPAIR_ALGORITHM_H_

#include <optional>
#include <string>

#include "common/status.h"
#include "dc/constraint.h"
#include "dc/graph.h"
#include "table/table.h"

namespace trex::repair {

/// Abstract deterministic repair algorithm.
class RepairAlgorithm {
 public:
  virtual ~RepairAlgorithm() = default;

  /// Human-readable identifier used in reports and benchmarks.
  virtual std::string name() const = 0;

  /// Repairs `dirty` under the constraint set `dcs` and returns the clean
  /// table. Must not mutate inputs; must be deterministic; must accept
  /// tables containing nulls (Shapley coalition complements). Must also
  /// be safe to call concurrently from multiple threads (stateless, or
  /// internally synchronized): the engine's sharded samplers invoke it
  /// in parallel when `EngineOptions::num_threads > 1`. All bundled
  /// repairers are stateless.
  [[nodiscard]] virtual Result<Table> Repair(const dc::DcSet& dcs,
                               const Table& dirty) const = 0;

  /// Optionally exposes which columns can influence which under this
  /// algorithm (reads -> writes), enabling *sound* relevant-cell pruning
  /// in the cell explainer. Black-box algorithms return nullopt and the
  /// explainer falls back to the conservative DC-derived graph.
  virtual std::optional<dc::AttributeGraph> InfluenceGraph(
      const dc::DcSet& dcs, const Schema& schema) const {
    (void)dcs;
    (void)schema;
    return std::nullopt;
  }
};

}  // namespace trex::repair

#endif  // TREX_REPAIR_ALGORITHM_H_
