#include "repair/fd_repair.h"

#include <map>
#include <unordered_map>
#include <vector>

#include "table/stats.h"

namespace trex::repair {

FdRepair::FdRepair(FdRepairOptions options) : options_(options) {}

Result<Table> FdRepair::Repair(const dc::DcSet& dcs,
                               const Table& dirty) const {
  // Collect the FD-shaped constraints (in order).
  std::vector<std::pair<std::size_t, std::size_t>> fds;  // (X col, B col)
  for (const dc::DenialConstraint& constraint : dcs.constraints()) {
    std::size_t lhs = 0;
    std::size_t rhs = 0;
    if (constraint.AsFunctionalDependency(&lhs, &rhs)) {
      fds.emplace_back(lhs, rhs);
    }
  }
  Table working = dirty;
  if (fds.empty()) return working;

  for (int pass = 0; pass < options_.max_passes; ++pass) {
    bool changed = false;
    for (const auto& [x_col, b_col] : fds) {
      // Group rows by X value (nulls stay untouched — an unknown key
      // gives no equivalence evidence).
      std::unordered_map<Value, std::vector<std::size_t>, ValueHash> groups;
      for (std::size_t r = 0; r < working.num_rows(); ++r) {
        const Value& key = working.at(r, x_col);
        if (key.is_null()) continue;
        groups[key].push_back(r);
      }
      for (auto& [key, rows] : groups) {
        (void)key;
        if (rows.size() < 2) continue;
        // Most frequent non-null B in the group, ties toward smaller.
        std::map<Value, std::size_t> counts;
        for (std::size_t r : rows) {
          const Value& b = working.at(r, b_col);
          if (!b.is_null()) ++counts[b];
        }
        if (counts.empty()) continue;
        const Value* target = nullptr;
        std::size_t target_count = 0;
        for (const auto& [value, count] : counts) {  // ascending values
          if (count > target_count) {
            target_count = count;
            target = &value;
          }
        }
        for (std::size_t r : rows) {
          const Value& b = working.at(r, b_col);
          if (b.is_null() || b != *target) {
            working.Set(r, b_col, *target);
            changed = true;
          }
        }
      }
    }
    if (!changed) break;
  }
  return working;
}

std::optional<dc::AttributeGraph> FdRepair::InfluenceGraph(
    const dc::DcSet& dcs, const Schema& schema) const {
  dc::AttributeGraph graph(schema.size());
  for (const dc::DenialConstraint& constraint : dcs.constraints()) {
    std::size_t lhs = 0;
    std::size_t rhs = 0;
    if (constraint.AsFunctionalDependency(&lhs, &rhs)) {
      graph.AddInfluence(lhs, rhs);
      graph.AddInfluence(rhs, rhs);
    }
  }
  return graph;
}

}  // namespace trex::repair
