#include "repair/soccer_algorithm1.h"

#include <utility>
#include <vector>

namespace trex::repair {

std::shared_ptr<RuleRepair> MakeAlgorithm1() {
  // Algorithm 1, step by step:
  //  1. C1 contradiction  -> City := argmax P[City]
  //  2. C2 contradiction  -> Country := argmax P[Country | City]
  //  3. C3 contradiction  -> Country := argmax P[Country]
  //  4. C4 contradiction  -> Place := argmax P[Place | Team]
  std::vector<RepairRule> rules;
  rules.push_back(RepairRule{"C1", RuleAction::kSetMostCommon, "City", ""});
  rules.push_back(
      RepairRule{"C2", RuleAction::kSetMostCommonGiven, "Country", "City"});
  rules.push_back(RepairRule{"C3", RuleAction::kSetMostCommon, "Country", ""});
  rules.push_back(
      RepairRule{"C4", RuleAction::kSetMostCommonGiven, "Place", "Team"});
  return std::make_shared<RuleRepair>("algorithm-1", std::move(rules));
}

}  // namespace trex::repair
