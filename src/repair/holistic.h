// `HolisticRepair`: the holistic data-cleaning baseline of Chu, Ilyas &
// Papotti (ICDE 2013) — one of the DC-repair approaches the paper's
// introduction cites ([3]).
//
// The algorithm builds the *conflict hypergraph* (nodes: cells; edges: the
// cell sets implicated in each violation), greedily approximates a
// minimum vertex cover to choose which cells to change, and assigns each
// chosen cell the candidate value that minimizes the remaining violations
// (its "repair context"). We iterate this until the table is clean, no
// candidate improves things, or the round budget is exhausted.

#ifndef TREX_REPAIR_HOLISTIC_H_
#define TREX_REPAIR_HOLISTIC_H_

#include <string>

#include "repair/algorithm.h"

namespace trex::repair {

/// Options for `HolisticRepair`.
struct HolisticOptions {
  /// Upper bound on repair rounds (each round fixes one MVC batch);
  /// guards termination on unsatisfiable constraint sets.
  int max_rounds = 64;
  /// Candidate values per cell considered from the repair context.
  int max_candidates = 16;
};

/// Greedy conflict-hypergraph repairer (see file comment).
class HolisticRepair : public RepairAlgorithm {
 public:
  explicit HolisticRepair(HolisticOptions options = {});

  std::string name() const override { return "holistic"; }

  [[nodiscard]] Result<Table> Repair(const dc::DcSet& dcs,
                       const Table& dirty) const override;

 private:
  HolisticOptions options_;
};

}  // namespace trex::repair

#endif  // TREX_REPAIR_HOLISTIC_H_
