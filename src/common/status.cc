#include "common/status.h"

#include <cstdio>
#include <cstdlib>

namespace trex {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "Invalid argument";
    case StatusCode::kNotFound:
      return "Not found";
    case StatusCode::kAlreadyExists:
      return "Already exists";
    case StatusCode::kOutOfRange:
      return "Out of range";
    case StatusCode::kNotImplemented:
      return "Not implemented";
    case StatusCode::kParseError:
      return "Parse error";
    case StatusCode::kIOError:
      return "IO error";
    case StatusCode::kInternal:
      return "Internal error";
    case StatusCode::kCancelled:
      return "Cancelled";
    case StatusCode::kRejected:
      return "Rejected";
    case StatusCode::kUnavailable:
      return "Unavailable";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeToString(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

Status Status::WithPrefix(const std::string& prefix) const {
  if (ok()) return *this;
  return Status(code_, prefix + ": " + message_);
}

std::ostream& operator<<(std::ostream& os, const Status& status) {
  return os << status.ToString();
}

namespace internal {

void DieOnBadResult(const Status& status) {
  std::fprintf(stderr, "ValueOrDie called on error result: %s\n",
               status.ToString().c_str());
  std::abort();
}

}  // namespace internal
}  // namespace trex
