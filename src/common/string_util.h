// Small string helpers shared across the library (no locale dependence).

#ifndef TREX_COMMON_STRING_UTIL_H_
#define TREX_COMMON_STRING_UTIL_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace trex {

/// Splits `input` on `sep`, keeping empty fields ("a,,b" -> {"a","","b"}).
std::vector<std::string> Split(std::string_view input, char sep);

/// Joins `parts` with `sep` between consecutive elements.
std::string Join(const std::vector<std::string>& parts,
                 std::string_view sep);

/// Removes ASCII whitespace from both ends.
std::string_view TrimView(std::string_view s);
std::string Trim(std::string_view s);

/// ASCII-only case conversion.
std::string ToLower(std::string_view s);
std::string ToUpper(std::string_view s);

/// Parses a full string as a signed 64-bit integer (no trailing junk).
[[nodiscard]] Result<std::int64_t> ParseInt64(std::string_view s);

/// Parses a full string as a double (no trailing junk).
[[nodiscard]] Result<double> ParseDouble(std::string_view s);

/// Formats a double compactly: integers render without a decimal point,
/// other values with up to `precision` significant digits.
std::string FormatDouble(double value, int precision = 6);

/// True iff `s` consists only of ASCII digits with an optional leading
/// sign (and is non-empty).
bool LooksLikeInt(std::string_view s);

/// True iff `s` parses as a floating-point literal.
bool LooksLikeDouble(std::string_view s);

/// Escapes a string for a CSV field per RFC 4180 (quotes when the value
/// contains the separator, a quote, or a newline).
std::string CsvEscape(std::string_view field, char sep = ',');

/// Escapes a string for embedding in a JSON string literal: quote,
/// backslash, and control characters (named escapes for \n \t \r, \uXXXX
/// for the rest).
std::string JsonEscape(std::string_view s);

/// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

}  // namespace trex

#endif  // TREX_COMMON_STRING_UTIL_H_
