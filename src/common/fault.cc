#include "common/fault.h"

#include <utility>

#include "common/cancel.h"

namespace trex {
namespace fault {
namespace {

// FNV-1a over the site name: stable across platforms, so the splitmix64
// chain (and therefore every schedule) replays identically everywhere.
std::uint64_t HashSiteName(std::string_view site) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (char c : site) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

std::uint64_t DeriveSiteSeed(std::uint64_t plan_seed, std::string_view site) {
  std::uint64_t state = plan_seed ^ HashSiteName(site);
  SplitMix64(&state);
  return SplitMix64(&state);
}

}  // namespace

FaultInjector& FaultInjector::Instance() {
  static FaultInjector* instance = new FaultInjector();
  return *instance;
}

void FaultInjector::Arm(FaultPlan plan) {
  MutexLock lock(mu_);
  sites_.clear();
  for (SiteSchedule& schedule : plan.sites) {
    SiteState state;
    state.rng = Rng(DeriveSiteSeed(plan.seed, schedule.site));
    state.scheduled = true;
    std::string site = schedule.site;
    state.schedule = std::move(schedule);
    sites_.insert_or_assign(std::move(site), std::move(state));
  }
  armed_.store(true, std::memory_order_relaxed);
}

void FaultInjector::Disarm() {
  MutexLock lock(mu_);
  armed_.store(false, std::memory_order_relaxed);
}

Status FaultInjector::Hit(std::string_view site) {
  std::chrono::microseconds sleep_for_latency{0};
  Status injected = Status::Ok();
  {
    MutexLock lock(mu_);
    if (!armed_.load(std::memory_order_relaxed)) return Status::Ok();
    auto it = sites_.find(site);
    if (it == sites_.end()) {
      // Unscheduled site: pass through, but count arrivals so tests can
      // assert a path was exercised.
      it = sites_.emplace(std::string(site), SiteState{}).first;
    }
    SiteState& state = it->second;
    state.counts.hits++;
    if (!state.scheduled) return Status::Ok();
    if (state.counts.hits <= state.schedule.skip_first) return Status::Ok();
    const std::size_t engaged = state.counts.hits - state.schedule.skip_first;
    switch (state.schedule.kind) {
      case FaultKind::kError:
        if (state.rng.Bernoulli(state.schedule.probability)) {
          state.counts.injected++;
          injected = Status(
              state.schedule.code,
              "injected fault at " + state.schedule.site + " (hit #" +
                  std::to_string(state.counts.hits) + ")");
        }
        break;
      case FaultKind::kLatency:
        if (state.rng.Bernoulli(state.schedule.probability)) {
          state.counts.injected++;
          sleep_for_latency = state.schedule.latency;
        }
        break;
      case FaultKind::kTransient:
        if (engaged <= state.schedule.fail_first) {
          state.counts.injected++;
          injected = Status(
              state.schedule.code,
              "injected transient fault at " + state.schedule.site + " (" +
                  std::to_string(engaged) + "/" +
                  std::to_string(state.schedule.fail_first) + ")");
        }
        break;
    }
  }
  if (sleep_for_latency.count() > 0) {
    // Interruptible sleep outside the injector lock: a stateless token's
    // WaitFor is a plain condition-variable park for the full duration.
    (void)CancelToken().WaitFor(sleep_for_latency);
  }
  return injected;
}

SiteCounters FaultInjector::counters(std::string_view site) const {
  MutexLock lock(mu_);
  auto it = sites_.find(site);
  if (it == sites_.end()) return SiteCounters{};
  return it->second.counts;
}

}  // namespace fault
}  // namespace trex
