// Hash combination helpers (header-only).

#ifndef TREX_COMMON_HASH_H_
#define TREX_COMMON_HASH_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string_view>

namespace trex {

/// Mixes `value` into `seed` (boost::hash_combine-style with a 64-bit
/// golden-ratio constant).
inline std::size_t HashCombine(std::size_t seed, std::size_t value) {
  return seed ^ (value + 0x9e3779b97f4a7c15ULL + (seed << 6) + (seed >> 2));
}

/// Hashes any std::hash-able value into `seed`.
template <typename T>
std::size_t HashMix(std::size_t seed, const T& value) {
  return HashCombine(seed, std::hash<T>{}(value));
}

/// FNV-1a over raw bytes; stable across runs (unlike some std::hash
/// implementations in principle), used for table fingerprints. Named
/// distinctly from the string_view overload so that `Fnv1a("x", seed)`
/// can never resolve the seed into the length parameter.
inline std::uint64_t Fnv1aBytes(const void* data, std::size_t len,
                                std::uint64_t seed = 0xcbf29ce484222325ULL) {
  const auto* bytes = static_cast<const unsigned char*>(data);
  std::uint64_t h = seed;
  for (std::size_t i = 0; i < len; ++i) {
    h ^= bytes[i];
    h *= 0x100000001b3ULL;
  }
  return h;
}

inline std::uint64_t Fnv1a(std::string_view s,
                           std::uint64_t seed = 0xcbf29ce484222325ULL) {
  return Fnv1aBytes(s.data(), s.size(), seed);
}

/// A 128-bit hash value. Wide enough that content collisions are not a
/// practical concern (~2^64 hashed tables for a 50% birthday-bound
/// collision), which is what lets the repair-table memo verify hits by
/// hash instead of retaining a full copy of every hashed input.
struct Hash128 {
  std::uint64_t hi = 0;
  std::uint64_t lo = 0;

  bool operator==(const Hash128& other) const {
    return hi == other.hi && lo == other.lo;
  }
  bool operator!=(const Hash128& other) const { return !(*this == other); }

  /// XOR combination — the composition law behind the table layer's
  /// delta fingerprints (order-independent, self-inverse).
  Hash128& operator^=(const Hash128& other) {
    hi ^= other.hi;
    lo ^= other.lo;
    return *this;
  }
  friend Hash128 operator^(Hash128 a, const Hash128& b) { return a ^= b; }
};

/// Incremental FNV-1a over a 128-bit state (the real FNV-128 prime and
/// offset basis), for strong content fingerprints. Uses the compiler's
/// `unsigned __int128` (GCC/Clang — the toolchains this project builds
/// with).
class Fnv1a128 {
 public:
  void Mix(const void* data, std::size_t len) {
    const auto* bytes = static_cast<const unsigned char*>(data);
    for (std::size_t i = 0; i < len; ++i) {
      state_ ^= bytes[i];
      state_ *= kPrime;
    }
  }

  Hash128 Digest() const {
    return Hash128{static_cast<std::uint64_t>(state_ >> 64),
                   static_cast<std::uint64_t>(state_)};
  }

 private:
  // FNV-128 prime 2^88 + 2^8 + 0x3b and offset basis.
  static constexpr unsigned __int128 kPrime =
      (static_cast<unsigned __int128>(0x0000000001000000ULL) << 64) |
      0x000000000000013BULL;
  static constexpr unsigned __int128 kOffsetBasis =
      (static_cast<unsigned __int128>(0x6c62272e07bb0142ULL) << 64) |
      0x62b821756295c58dULL;

  unsigned __int128 state_ = kOffsetBasis;
};

}  // namespace trex

#endif  // TREX_COMMON_HASH_H_
