// Hash combination helpers (header-only).

#ifndef TREX_COMMON_HASH_H_
#define TREX_COMMON_HASH_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string_view>

namespace trex {

/// Mixes `value` into `seed` (boost::hash_combine-style with a 64-bit
/// golden-ratio constant).
inline std::size_t HashCombine(std::size_t seed, std::size_t value) {
  return seed ^ (value + 0x9e3779b97f4a7c15ULL + (seed << 6) + (seed >> 2));
}

/// Hashes any std::hash-able value into `seed`.
template <typename T>
std::size_t HashMix(std::size_t seed, const T& value) {
  return HashCombine(seed, std::hash<T>{}(value));
}

/// FNV-1a over raw bytes; stable across runs (unlike some std::hash
/// implementations in principle), used for table fingerprints. Named
/// distinctly from the string_view overload so that `Fnv1a("x", seed)`
/// can never resolve the seed into the length parameter.
inline std::uint64_t Fnv1aBytes(const void* data, std::size_t len,
                                std::uint64_t seed = 0xcbf29ce484222325ULL) {
  const auto* bytes = static_cast<const unsigned char*>(data);
  std::uint64_t h = seed;
  for (std::size_t i = 0; i < len; ++i) {
    h ^= bytes[i];
    h *= 0x100000001b3ULL;
  }
  return h;
}

inline std::uint64_t Fnv1a(std::string_view s,
                           std::uint64_t seed = 0xcbf29ce484222325ULL) {
  return Fnv1aBytes(s.data(), s.size(), seed);
}

}  // namespace trex

#endif  // TREX_COMMON_HASH_H_
