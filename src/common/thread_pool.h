// A small fixed-size worker pool for sharded computations.
//
// `ThreadPool::Run(num_tasks, fn)` executes `fn(0) .. fn(num_tasks-1)`
// across the pool's workers plus the calling thread and blocks until all
// tasks finish. Task *scheduling* is nondeterministic, so callers that
// need reproducible results must make each task's output depend only on
// its index (the Shapley sampler derives a per-shard RNG seed from the
// shard index and merges shard results in index order — see
// core/shapley_sampling.cc).
//
// A pool with `num_threads <= 1` spawns no workers and runs tasks inline,
// so serial and parallel configurations share one code path.
//
// Error handling: this library reports errors via Status/TREX_CHECK and
// tasks are expected not to throw — but a task that does throw anyway
// must never wedge the pool's job accounting. The first exception a job
// observes is captured, the job's remaining unclaimed tasks are
// abandoned, and the exception is rethrown from `Run` on the calling
// thread once every in-flight task has finished; the pool stays usable.
//
// Re-entrancy: `Run` from *outside* the pool is serialized on `run_mu_`
// (one job at a time). `Run` from *inside* a task of the same pool
// cannot take that path — the outer job holds `run_mu_` and may be
// draining on this very thread — so a re-entrant call degrades to
// running its tasks inline, serially, on the calling thread. Results
// are identical (tasks depend only on their index); only parallelism is
// lost.

#ifndef TREX_COMMON_THREAD_POOL_H_
#define TREX_COMMON_THREAD_POOL_H_

#include <cstddef>
#include <exception>
#include <functional>
#include <thread>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace trex {

/// Fixed-size worker pool (see file comment).
class ThreadPool {
 public:
  /// Creates `num_threads - 1` workers (the calling thread participates
  /// in every `Run`, so total parallelism is `num_threads`).
  explicit ThreadPool(std::size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total parallelism (workers + the calling thread); at least 1.
  std::size_t num_threads() const { return workers_.size() + 1; }

  /// Runs `fn(i)` for every `i` in `[0, num_tasks)`, blocking until all
  /// tasks complete. Concurrent `Run` calls are serialized; a re-entrant
  /// call from inside a task of this pool runs inline (see file
  /// comment). If a task throws, the first exception is rethrown here
  /// after the job winds down — the pool itself never deadlocks or
  /// leaks a stuck job.
  void Run(std::size_t num_tasks, const std::function<void(std::size_t)>& fn);

  /// Hardware concurrency clamped to [1, cap]; 1 when unknown.
  static std::size_t DefaultThreads(std::size_t cap = 8);

  /// Shared dispatch for sharded kernels: runs `fn(0..num_tasks-1)`
  /// serially when `num_threads <= 1` or there is at most one task, on
  /// `pool` when provided (non-owning), and on a transient pool of
  /// `num_threads` otherwise. One implementation so the Shapley
  /// kernels' serial/pooled/transient policy cannot drift apart.
  static void RunSharded(ThreadPool* pool, std::size_t num_threads,
                         std::size_t num_tasks,
                         const std::function<void(std::size_t)>& fn);

 private:
  void WorkerLoop();
  /// Claims and runs tasks of the current job until none remain.
  void DrainCurrentJob();

  std::vector<std::thread> workers_;

  Mutex mu_;
  CondVar work_cv_;
  CondVar done_cv_;
  /// Current job; null between jobs.
  const std::function<void(std::size_t)>* fn_ GUARDED_BY(mu_) = nullptr;
  std::size_t num_tasks_ GUARDED_BY(mu_) = 0;
  std::size_t next_task_ GUARDED_BY(mu_) = 0;
  std::size_t in_flight_ GUARDED_BY(mu_) = 0;
  /// First exception thrown by a task of the current job; rethrown by
  /// `Run` on the calling thread.
  std::exception_ptr first_error_ GUARDED_BY(mu_);
  bool stop_ GUARDED_BY(mu_) = false;

  /// Serializes concurrent `Run()` callers. Ordering: `run_mu_` is
  /// acquired before `mu_`, never the reverse.
  Mutex run_mu_ ACQUIRED_BEFORE(mu_);
};

}  // namespace trex

#endif  // TREX_COMMON_THREAD_POOL_H_
