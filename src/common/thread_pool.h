// A small fixed-size worker pool for sharded computations.
//
// `ThreadPool::Run(num_tasks, fn)` executes `fn(0) .. fn(num_tasks-1)`
// across the pool's workers plus the calling thread and blocks until all
// tasks finish. Task *scheduling* is nondeterministic, so callers that
// need reproducible results must make each task's output depend only on
// its index (the Shapley sampler derives a per-shard RNG seed from the
// shard index and merges shard results in index order — see
// core/shapley_sampling.cc).
//
// A pool with `num_threads <= 1` spawns no workers and runs tasks inline,
// so serial and parallel configurations share one code path.

#ifndef TREX_COMMON_THREAD_POOL_H_
#define TREX_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace trex {

/// Fixed-size worker pool (see file comment).
class ThreadPool {
 public:
  /// Creates `num_threads - 1` workers (the calling thread participates
  /// in every `Run`, so total parallelism is `num_threads`).
  explicit ThreadPool(std::size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total parallelism (workers + the calling thread); at least 1.
  std::size_t num_threads() const { return workers_.size() + 1; }

  /// Runs `fn(i)` for every `i` in `[0, num_tasks)`, blocking until all
  /// tasks complete. Reentrant `Run` calls are serialized; `fn` must not
  /// call back into the same pool and must not throw (this library
  /// reports errors via Status/TREX_CHECK, never exceptions; a throwing
  /// task would leave the pool's job accounting stuck).
  void Run(std::size_t num_tasks, const std::function<void(std::size_t)>& fn);

  /// Hardware concurrency clamped to [1, cap]; 1 when unknown.
  static std::size_t DefaultThreads(std::size_t cap = 8);

  /// Shared dispatch for sharded kernels: runs `fn(0..num_tasks-1)`
  /// serially when `num_threads <= 1` or there is at most one task, on
  /// `pool` when provided (non-owning), and on a transient pool of
  /// `num_threads` otherwise. One implementation so the Shapley
  /// kernels' serial/pooled/transient policy cannot drift apart.
  static void RunSharded(ThreadPool* pool, std::size_t num_threads,
                         std::size_t num_tasks,
                         const std::function<void(std::size_t)>& fn);

 private:
  void WorkerLoop();
  /// Claims and runs tasks of the current job until none remain.
  void DrainCurrentJob();

  std::vector<std::thread> workers_;

  std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  const std::function<void(std::size_t)>* fn_ = nullptr;  // current job
  std::size_t num_tasks_ = 0;
  std::size_t next_task_ = 0;
  std::size_t in_flight_ = 0;
  bool stop_ = false;

  std::mutex run_mu_;  // serializes concurrent Run() callers
};

}  // namespace trex

#endif  // TREX_COMMON_THREAD_POOL_H_
