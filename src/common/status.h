// Status / Result error-handling primitives for the T-REx library.
//
// The library does not throw exceptions across its public API; fallible
// operations return `Status` (no payload) or `Result<T>` (payload or error),
// in the style of Apache Arrow's `arrow::Status`/`arrow::Result` and
// RocksDB's `rocksdb::Status`.

#ifndef TREX_COMMON_STATUS_H_
#define TREX_COMMON_STATUS_H_

#include <cstdint>
#include <optional>
#include <ostream>
#include <string>
#include <utility>
#include <variant>

namespace trex {

/// Machine-readable category of an error.
enum class StatusCode : std::uint8_t {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kNotImplemented,
  kParseError,
  kIOError,
  kInternal,
  /// The operation was cooperatively cancelled (caller-requested or
  /// deadline-expired) before it produced a result.
  kCancelled,
  /// The operation was refused admission by an overloaded server (e.g.
  /// load-shedding on a full service queue). Unlike `kCancelled`, the
  /// work never entered execution and the caller may retry later or at
  /// a higher priority.
  kRejected,
  /// A dependency (typically a repair backend) failed transiently: the
  /// same call is expected to succeed if retried after a short wait.
  /// This is the only code the serving layer classifies as *transient*
  /// — retry loops and circuit breakers act on it; every other error
  /// code is *permanent* and is returned to the caller immediately.
  kUnavailable,
};

/// Returns a stable human-readable name for a status code (e.g. "Invalid
/// argument").
const char* StatusCodeToString(StatusCode code);

/// An operation outcome: either OK, or an error code plus message.
///
/// `Status` is cheap to copy in the OK case (no allocation) and carries a
/// heap-allocated message otherwise. It is totally ordered on (code,
/// message) so it can live in containers in tests.
///
/// The class itself is `[[nodiscard]]`: any call that returns a `Status`
/// and ignores it is a compile warning (an error in library code, which
/// builds with -Werror). Deliberately ignoring one requires a visible
/// `(void)` cast plus a reason. Every Status/Result-returning API
/// additionally carries a per-declaration `[[nodiscard]]`, enforced by
/// tools/trex_check.py (check: status-discipline).
class [[nodiscard]] Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  /// Constructs a status with the given code and message. `code` must not be
  /// `kOk` unless `message` is empty.
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  /// Named constructors, one per error category.
  [[nodiscard]] static Status Ok() { return Status(); }
  [[nodiscard]] static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  [[nodiscard]] static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  [[nodiscard]] static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  [[nodiscard]] static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  [[nodiscard]] static Status NotImplemented(std::string msg) {
    return Status(StatusCode::kNotImplemented, std::move(msg));
  }
  [[nodiscard]] static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  [[nodiscard]] static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  [[nodiscard]] static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  [[nodiscard]] static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }
  [[nodiscard]] static Status Rejected(std::string msg) {
    return Status(StatusCode::kRejected, std::move(msg));
  }
  [[nodiscard]] static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }

  /// True iff this status represents success.
  bool ok() const { return code_ == StatusCode::kOk; }

  /// True iff this status reports cooperative cancellation.
  bool IsCancelled() const { return code_ == StatusCode::kCancelled; }

  /// True iff this status reports overload rejection (load-shedding).
  bool IsRejected() const { return code_ == StatusCode::kRejected; }

  /// True iff this status reports a transient dependency failure.
  bool IsUnavailable() const { return code_ == StatusCode::kUnavailable; }

  /// Failure classification used by the serving layer: transient errors
  /// (`kUnavailable`) are retryable and feed circuit-breaker windows;
  /// everything else — including OK — is not transient.
  bool IsTransient() const { return code_ == StatusCode::kUnavailable; }

  /// The status category.
  [[nodiscard]] StatusCode code() const { return code_; }

  /// The error message; empty for OK statuses.
  const std::string& message() const { return message_; }

  /// Renders e.g. "Invalid argument: bad column name" or "OK".
  std::string ToString() const;

  /// Returns a copy of this status with `prefix + ": "` prepended to the
  /// message. OK statuses are returned unchanged.
  [[nodiscard]] Status WithPrefix(const std::string& prefix) const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }
  bool operator!=(const Status& other) const { return !(*this == other); }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

std::ostream& operator<<(std::ostream& os, const Status& status);

/// A value of type `T`, or the `Status` explaining why it is absent.
///
/// Typical use:
/// ```
///   Result<Table> table = CsvReader::ReadFile(path);
///   if (!table.ok()) return table.status();
///   Use(*table);
/// ```
template <typename T>
class [[nodiscard]] Result {
 public:
  /// Constructs from a value (implicit so `return value;` works).
  Result(T value) : repr_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Constructs from an error status. `status.ok()` must be false; storing
  /// an OK status without a value is a programming error reported as
  /// kInternal.
  Result(Status status) : repr_(std::move(status)) {  // NOLINT
    if (std::get<Status>(repr_).ok()) {
      repr_ = Status::Internal("Result constructed from OK status");
    }
  }

  /// True iff a value is present.
  bool ok() const { return std::holds_alternative<T>(repr_); }

  /// The error status, or OK if a value is present.
  [[nodiscard]] Status status() const {
    if (ok()) return Status::Ok();
    return std::get<Status>(repr_);
  }

  /// Value access. Must only be called when `ok()`.
  const T& value() const& { return std::get<T>(repr_); }
  T& value() & { return std::get<T>(repr_); }
  T&& value() && { return std::get<T>(std::move(repr_)); }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the value, or aborts with the error message. Intended for
  /// tests and examples where failure is not recoverable.
  T ValueOrDie() &&;

  /// Returns the contained value or `fallback` when in the error state.
  T ValueOr(T fallback) const& { return ok() ? value() : std::move(fallback); }

 private:
  std::variant<Status, T> repr_;
};

namespace internal {
[[noreturn]] void DieOnBadResult(const Status& status);
}  // namespace internal

template <typename T>
T Result<T>::ValueOrDie() && {
  if (!ok()) internal::DieOnBadResult(status());
  return std::get<T>(std::move(repr_));
}

/// Propagates an error status from a `Status`-returning expression.
#define TREX_RETURN_NOT_OK(expr)                  \
  do {                                            \
    ::trex::Status _trex_status = (expr);         \
    if (!_trex_status.ok()) return _trex_status;  \
  } while (false)

#define TREX_CONCAT_IMPL(x, y) x##y
#define TREX_CONCAT(x, y) TREX_CONCAT_IMPL(x, y)

/// Evaluates a `Result<T>`-returning expression; on success binds the value
/// to `lhs`, on failure returns the error status from the enclosing
/// function.
#define TREX_ASSIGN_OR_RETURN(lhs, rexpr)                          \
  TREX_ASSIGN_OR_RETURN_IMPL(TREX_CONCAT(_trex_result_, __LINE__), \
                             lhs, rexpr)

#define TREX_ASSIGN_OR_RETURN_IMPL(result_name, lhs, rexpr) \
  auto result_name = (rexpr);                               \
  if (!result_name.ok()) return result_name.status();       \
  lhs = std::move(result_name).value()

}  // namespace trex

#endif  // TREX_COMMON_STATUS_H_
