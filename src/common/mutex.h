// The project's only lock vocabulary: `CAPABILITY`-annotated wrappers
// over the standard mutexes, so Clang's thread-safety analysis
// (`-Wthread-safety`, `-Werror=thread-safety` in CI) checks every lock
// acquisition in the tree against the `GUARDED_BY`/`REQUIRES`/`EXCLUDES`
// contracts declared next to the data.
//
// Raw `std::mutex` / `std::shared_mutex` / `std::lock_guard` /
// `std::unique_lock` / `std::condition_variable` are forbidden outside
// this header (`tools/lint_invariants.py` rule `raw-mutex`): an
// unwrapped lock is invisible to the analysis, so any state it guards
// silently falls out of the checked locking model.
//
//   trex::Mutex mu_;
//   int depth_ GUARDED_BY(mu_);
//
//   void Push() EXCLUDES(mu_) {
//     MutexLock lock(mu_);   // scoped; analysis tracks the hold
//     ++depth_;
//     cv_.NotifyOne();
//   }
//
// Condition waits are explicit loops over `CondVar::Wait` — never
// lambda predicates, which the analysis treats as separate, lock-less
// functions and flags:
//
//   MutexLock lock(mu_);
//   while (!ready_) cv_.Wait(lock);
//
// `ASSERT_HELD(mu)` re-establishes a hold the analysis cannot see
// (callback boundaries); it is a no-op at runtime.

#ifndef TREX_COMMON_MUTEX_H_
#define TREX_COMMON_MUTEX_H_

#include <chrono>
#include <condition_variable>
#include <mutex>
#include <shared_mutex>

#include "common/thread_annotations.h"

namespace trex {

/// Exclusive lock (wraps `std::mutex`); the unit the analysis tracks.
class CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() ACQUIRE() { mu_.lock(); }
  void Unlock() RELEASE() { mu_.unlock(); }
  bool TryLock() TRY_ACQUIRE(true) { return mu_.try_lock(); }

  /// Declares to the analysis that the current thread holds this mutex
  /// — for callback boundaries it cannot see across. No runtime effect.
  void AssertHeld() const ASSERT_CAPABILITY(this) {}

 private:
  friend class CondVar;
  friend class MutexLock;
  std::mutex mu_;
};

/// Reader/writer lock (wraps `std::shared_mutex`). Shared holders may
/// read guarded state (`REQUIRES_SHARED`); writers need the exclusive
/// hold (`REQUIRES`).
class CAPABILITY("shared_mutex") SharedMutex {
 public:
  SharedMutex() = default;
  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void Lock() ACQUIRE() { mu_.lock(); }
  void Unlock() RELEASE() { mu_.unlock(); }
  void LockShared() ACQUIRE_SHARED() { mu_.lock_shared(); }
  void UnlockShared() RELEASE_SHARED() { mu_.unlock_shared(); }

  /// See `Mutex::AssertHeld`.
  void AssertHeld() const ASSERT_CAPABILITY(this) {}
  void AssertReaderHeld() const ASSERT_SHARED_CAPABILITY(this) {}

 private:
  std::shared_mutex mu_;
};

/// Scoped exclusive hold of a `Mutex`. Also the handle `CondVar` waits
/// on, and — for the rare drain loops that drop the lock around a
/// callback — manually unlockable (`Unlock`/`Lock`), with the
/// destructor releasing only if held.
class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) ACQUIRE(mu) : lock_(mu.mu_) {}
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;
  ~MutexLock() RELEASE() {}  // std::unique_lock releases only if held

  /// Mid-scope release/reacquire, for loops that must drop the lock
  /// around user code (e.g. `ThreadPool` running a task).
  void Unlock() RELEASE() { lock_.unlock(); }
  void Lock() ACQUIRE() { lock_.lock(); }

 private:
  friend class CondVar;
  std::unique_lock<std::mutex> lock_;
};

/// Scoped exclusive hold of a `SharedMutex` (the writer side).
class SCOPED_CAPABILITY WriterLock {
 public:
  explicit WriterLock(SharedMutex& mu) ACQUIRE(mu) : mu_(mu) { mu_.Lock(); }
  WriterLock(const WriterLock&) = delete;
  WriterLock& operator=(const WriterLock&) = delete;
  ~WriterLock() RELEASE() { mu_.Unlock(); }

 private:
  SharedMutex& mu_;
};

/// Scoped shared hold of a `SharedMutex` (the reader side).
class SCOPED_CAPABILITY ReaderLock {
 public:
  explicit ReaderLock(SharedMutex& mu) ACQUIRE_SHARED(mu) : mu_(mu) {
    mu_.LockShared();
  }
  ReaderLock(const ReaderLock&) = delete;
  ReaderLock& operator=(const ReaderLock&) = delete;
  ~ReaderLock() RELEASE() { mu_.UnlockShared(); }

 private:
  SharedMutex& mu_;
};

/// Condition variable bound to `Mutex`/`MutexLock`. Waits keep the
/// analysis' view of the hold intact (the lock is released and
/// reacquired inside, with the same post-condition).
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Callers wait in an explicit loop over the guarded condition (see
  /// file comment); there is deliberately no predicate overload.
  void Wait(MutexLock& lock) { cv_.wait(lock.lock_); }

  template <typename Clock, typename Duration>
  std::cv_status WaitUntil(
      MutexLock& lock,
      const std::chrono::time_point<Clock, Duration>& deadline) {
    return cv_.wait_until(lock.lock_, deadline);
  }

  template <typename Rep, typename Period>
  std::cv_status WaitFor(MutexLock& lock,
                         const std::chrono::duration<Rep, Period>& timeout) {
    return cv_.wait_for(lock.lock_, timeout);
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace trex

/// Callback-boundary assertion, reading like the contract it states:
/// `ASSERT_HELD(entry->mu);`.
#define ASSERT_HELD(mu) (mu).AssertHeld()

#endif  // TREX_COMMON_MUTEX_H_
