#include "common/random.h"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace trex {

std::uint64_t SplitMix64(std::uint64_t* state) {
  std::uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

namespace {

inline std::uint64_t Rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& word : s_) word = SplitMix64(&sm);
  // xoshiro must not start from the all-zero state; splitmix64 cannot
  // produce four consecutive zeros, but guard anyway.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

std::uint64_t Rng::NextUint64() {
  const std::uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::UniformUint64(std::uint64_t bound) {
  TREX_CHECK_GT(bound, 0u);
  // Rejection sampling over the largest multiple of `bound`.
  const std::uint64_t threshold = -bound % bound;
  for (;;) {
    const std::uint64_t r = NextUint64();
    if (r >= threshold) return r % bound;
  }
}

std::int64_t Rng::UniformInt(std::int64_t lo, std::int64_t hi) {
  TREX_CHECK_LE(lo, hi);
  const std::uint64_t span =
      static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo) + 1;
  if (span == 0) return static_cast<std::int64_t>(NextUint64());  // full range
  return lo + static_cast<std::int64_t>(UniformUint64(span));
}

double Rng::UniformDouble() {
  return static_cast<double>(NextUint64() >> 11) * 0x1.0p-53;
}

bool Rng::Bernoulli(double p) {
  if (p <= 0) return false;
  if (p >= 1) return true;
  return UniformDouble() < p;
}

double Rng::Gaussian() {
  // Box-Muller; discards the second variate for simplicity.
  double u1 = UniformDouble();
  double u2 = UniformDouble();
  while (u1 <= 1e-300) u1 = UniformDouble();
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * M_PI * u2);
}

std::size_t Rng::Zipf(const std::vector<double>& cdf) {
  TREX_CHECK(!cdf.empty());
  const double u = UniformDouble();
  auto it = std::lower_bound(cdf.begin(), cdf.end(), u);
  if (it == cdf.end()) return cdf.size() - 1;
  return static_cast<std::size_t>(it - cdf.begin());
}

std::vector<std::size_t> Rng::Permutation(std::size_t n) {
  std::vector<std::size_t> perm(n);
  std::iota(perm.begin(), perm.end(), std::size_t{0});
  Shuffle(&perm);
  return perm;
}

Rng Rng::Fork() { return Rng(NextUint64()); }

std::vector<double> ZipfTable(std::size_t n, double s) {
  TREX_CHECK_GT(n, 0u);
  std::vector<double> cdf(n);
  double total = 0;
  for (std::size_t rank = 0; rank < n; ++rank) {
    total += 1.0 / std::pow(static_cast<double>(rank + 1), s);
    cdf[rank] = total;
  }
  for (auto& x : cdf) x /= total;
  cdf.back() = 1.0;
  return cdf;
}

}  // namespace trex
