// Minimal stream-based logging and assertion macros.
//
// `TREX_LOG(INFO) << ...` writes a timestamped line to stderr when the
// global log level admits it. `TREX_CHECK(cond)` aborts with a diagnostic
// when `cond` is false; `TREX_DCHECK` compiles out in NDEBUG builds. These
// are for programmer errors only — recoverable conditions use Status.

#ifndef TREX_COMMON_LOGGING_H_
#define TREX_COMMON_LOGGING_H_

#include <sstream>
#include <string>

namespace trex {

enum class LogLevel : int {
  kDebug = 0,
  kInfo = 1,
  kWarning = 2,
  kError = 3,
  kFatal = 4,
};

/// Sets the minimum level that is actually emitted (default: kWarning, so
/// library internals stay quiet in tests and benchmarks).
void SetLogLevel(LogLevel level);

/// Returns the current minimum emitted level.
LogLevel GetLogLevel();

namespace internal {

/// Accumulates one log line and flushes it on destruction. When
/// `fatal` is true the destructor aborts the process after flushing.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line, bool fatal = false);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostream& stream() { return stream_; }

 private:
  LogLevel level_;
  bool fatal_;
  std::ostringstream stream_;
};

/// Swallows the streamed expression when the log level filters it out.
struct NullStream {
  template <typename T>
  NullStream& operator<<(const T&) {
    return *this;
  }
};

}  // namespace internal

#define TREX_LOG_DEBUG ::trex::LogLevel::kDebug
#define TREX_LOG_INFO ::trex::LogLevel::kInfo
#define TREX_LOG_WARNING ::trex::LogLevel::kWarning
#define TREX_LOG_ERROR ::trex::LogLevel::kError

/// Usage: TREX_LOG(INFO) << "message" << value;
#define TREX_LOG(severity)                                      \
  if (TREX_LOG_##severity < ::trex::GetLogLevel()) {            \
  } else                                                        \
    ::trex::internal::LogMessage(TREX_LOG_##severity, __FILE__, \
                                 __LINE__)                      \
        .stream()

/// Aborts the process with a diagnostic when `condition` is false.
#define TREX_CHECK(condition)                                             \
  if (condition) {                                                        \
  } else                                                                  \
    ::trex::internal::LogMessage(::trex::LogLevel::kFatal, __FILE__,      \
                                 __LINE__, /*fatal=*/true)                \
            .stream()                                                     \
        << "Check failed: " #condition " "

#define TREX_CHECK_EQ(a, b) TREX_CHECK((a) == (b))
#define TREX_CHECK_NE(a, b) TREX_CHECK((a) != (b))
#define TREX_CHECK_LT(a, b) TREX_CHECK((a) < (b))
#define TREX_CHECK_LE(a, b) TREX_CHECK((a) <= (b))
#define TREX_CHECK_GT(a, b) TREX_CHECK((a) > (b))
#define TREX_CHECK_GE(a, b) TREX_CHECK((a) >= (b))

#ifdef NDEBUG
#define TREX_DCHECK(condition) \
  while (false) TREX_CHECK(condition)
#else
#define TREX_DCHECK(condition) TREX_CHECK(condition)
#endif

}  // namespace trex

#endif  // TREX_COMMON_LOGGING_H_
