#include "common/thread_pool.h"

#include <algorithm>
#include <memory>
#include <utility>

namespace trex {

namespace {

/// The pool whose task the current thread is executing, if any — how a
/// re-entrant `Run` recognizes itself (thread-locals, not `run_mu_`
/// state, because the *calling* thread of the outer job also drains
/// tasks and would self-deadlock on any lock-based detection).
thread_local const ThreadPool* current_pool = nullptr;

}  // namespace

ThreadPool::ThreadPool(std::size_t num_threads) {
  const std::size_t workers = num_threads <= 1 ? 0 : num_threads - 1;
  workers_.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(mu_);
    stop_ = true;
  }
  work_cv_.NotifyAll();
  for (std::thread& worker : workers_) worker.join();
}

std::size_t ThreadPool::DefaultThreads(std::size_t cap) {
  const std::size_t hw = std::thread::hardware_concurrency();
  if (hw == 0) return 1;
  return std::min(hw, std::max<std::size_t>(cap, 1));
}

void ThreadPool::RunSharded(ThreadPool* pool, std::size_t num_threads,
                            std::size_t num_tasks,
                            const std::function<void(std::size_t)>& fn) {
  if (num_threads <= 1 || num_tasks <= 1) {
    for (std::size_t i = 0; i < num_tasks; ++i) fn(i);
    return;
  }
  std::unique_ptr<ThreadPool> transient;
  if (pool == nullptr) {
    transient = std::make_unique<ThreadPool>(num_threads);
    pool = transient.get();
  }
  pool->Run(num_tasks, fn);
}

void ThreadPool::DrainCurrentJob() {
  const ThreadPool* enclosing = std::exchange(current_pool, this);
  MutexLock lock(mu_);
  while (fn_ != nullptr && next_task_ < num_tasks_) {
    const std::size_t task = next_task_++;
    ++in_flight_;
    const auto* fn = fn_;
    lock.Unlock();
    std::exception_ptr error;
    try {
      (*fn)(task);
    } catch (...) {
      error = std::current_exception();
    }
    lock.Lock();
    --in_flight_;
    if (error != nullptr) {
      // Keep the first failure, abandon the job's unclaimed tasks
      // (in-flight ones finish), and let `Run`'s completion wait see a
      // fully wound-down job — never a stuck one.
      if (first_error_ == nullptr) first_error_ = error;
      next_task_ = num_tasks_;
    }
  }
  if (fn_ != nullptr && next_task_ >= num_tasks_ && in_flight_ == 0) {
    done_cv_.NotifyAll();
  }
  current_pool = enclosing;
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    {
      MutexLock lock(mu_);
      while (!stop_ && !(fn_ != nullptr && next_task_ < num_tasks_)) {
        work_cv_.Wait(lock);
      }
      if (stop_) return;
    }
    DrainCurrentJob();
  }
}

void ThreadPool::Run(std::size_t num_tasks,
                     const std::function<void(std::size_t)>& fn) {
  if (num_tasks == 0) return;
  if (workers_.empty() || current_pool == this) {
    // Serial pool, or a re-entrant call from inside one of this pool's
    // tasks (which cannot wait on `run_mu_` — the outer job holds it,
    // possibly on this very thread): run inline. Exceptions propagate
    // directly, as there is no job accounting to unwind.
    for (std::size_t i = 0; i < num_tasks; ++i) fn(i);
    return;
  }
  MutexLock run_lock(run_mu_);
  {
    MutexLock lock(mu_);
    fn_ = &fn;
    num_tasks_ = num_tasks;
    next_task_ = 0;
    in_flight_ = 0;
    first_error_ = nullptr;
  }
  work_cv_.NotifyAll();
  DrainCurrentJob();
  std::exception_ptr error;
  {
    MutexLock lock(mu_);
    while (!(next_task_ >= num_tasks_ && in_flight_ == 0)) {
      done_cv_.Wait(lock);
    }
    fn_ = nullptr;
    num_tasks_ = 0;
    error = std::exchange(first_error_, nullptr);
  }
  if (error != nullptr) std::rethrow_exception(error);
}

}  // namespace trex
