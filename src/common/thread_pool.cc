#include "common/thread_pool.h"

#include <algorithm>
#include <memory>

namespace trex {

ThreadPool::ThreadPool(std::size_t num_threads) {
  const std::size_t workers = num_threads <= 1 ? 0 : num_threads - 1;
  workers_.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

std::size_t ThreadPool::DefaultThreads(std::size_t cap) {
  const std::size_t hw = std::thread::hardware_concurrency();
  if (hw == 0) return 1;
  return std::min(hw, std::max<std::size_t>(cap, 1));
}

void ThreadPool::RunSharded(ThreadPool* pool, std::size_t num_threads,
                            std::size_t num_tasks,
                            const std::function<void(std::size_t)>& fn) {
  if (num_threads <= 1 || num_tasks <= 1) {
    for (std::size_t i = 0; i < num_tasks; ++i) fn(i);
    return;
  }
  std::unique_ptr<ThreadPool> transient;
  if (pool == nullptr) {
    transient = std::make_unique<ThreadPool>(num_threads);
    pool = transient.get();
  }
  pool->Run(num_tasks, fn);
}

void ThreadPool::DrainCurrentJob() {
  std::unique_lock<std::mutex> lock(mu_);
  while (fn_ != nullptr && next_task_ < num_tasks_) {
    const std::size_t task = next_task_++;
    ++in_flight_;
    const auto* fn = fn_;
    lock.unlock();
    (*fn)(task);
    lock.lock();
    --in_flight_;
  }
  if (fn_ != nullptr && next_task_ >= num_tasks_ && in_flight_ == 0) {
    done_cv_.notify_all();
  }
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [this] {
        return stop_ || (fn_ != nullptr && next_task_ < num_tasks_);
      });
      if (stop_) return;
    }
    DrainCurrentJob();
  }
}

void ThreadPool::Run(std::size_t num_tasks,
                     const std::function<void(std::size_t)>& fn) {
  if (num_tasks == 0) return;
  if (workers_.empty()) {
    for (std::size_t i = 0; i < num_tasks; ++i) fn(i);
    return;
  }
  std::lock_guard<std::mutex> run_lock(run_mu_);
  {
    std::lock_guard<std::mutex> lock(mu_);
    fn_ = &fn;
    num_tasks_ = num_tasks;
    next_task_ = 0;
    in_flight_ = 0;
  }
  work_cv_.notify_all();
  DrainCurrentJob();
  {
    std::unique_lock<std::mutex> lock(mu_);
    done_cv_.wait(lock, [this] {
      return next_task_ >= num_tasks_ && in_flight_ == 0;
    });
    fn_ = nullptr;
    num_tasks_ = 0;
  }
}

}  // namespace trex
