// Deterministic pseudo-random number generation.
//
// All stochastic components of T-REx (the Shapley permutation sampler,
// synthetic data generators, error injectors) draw from `Rng`, a
// xoshiro256** generator seeded through splitmix64. Given the same seed the
// whole pipeline is bit-reproducible across platforms, which the tests and
// benchmark harness rely on.

#ifndef TREX_COMMON_RANDOM_H_
#define TREX_COMMON_RANDOM_H_

#include <cstdint>
#include <vector>

#include "common/logging.h"

namespace trex {

/// splitmix64 step; used for seeding and as a cheap stateless mixer.
std::uint64_t SplitMix64(std::uint64_t* state);

/// xoshiro256** 1.0 by Blackman & Vigna — fast, high-quality, 256-bit
/// state. Deterministic for a given seed; not cryptographically secure.
class Rng {
 public:
  /// Default seed used across examples and tests.
  static constexpr std::uint64_t kDefaultSeed = 0x7265782d74726578ULL;

  /// Seeds the generator; all four state words are derived via splitmix64
  /// so that similar seeds still give uncorrelated streams.
  explicit Rng(std::uint64_t seed = kDefaultSeed);

  /// Returns the next raw 64-bit output.
  std::uint64_t NextUint64();

  /// Returns an unbiased uniform integer in `[0, bound)`. `bound` must be
  /// positive. Uses rejection sampling (Lemire-style) to avoid modulo bias.
  std::uint64_t UniformUint64(std::uint64_t bound);

  /// Returns a uniform integer in `[lo, hi]` inclusive; requires lo <= hi.
  std::int64_t UniformInt(std::int64_t lo, std::int64_t hi);

  /// Returns a uniform double in `[0, 1)` with 53 bits of randomness.
  double UniformDouble();

  /// Returns true with probability `p` (clamped to [0, 1]).
  bool Bernoulli(double p);

  /// Standard normal variate (Box-Muller; one value per call).
  double Gaussian();

  /// Zipf-distributed rank in `[0, n)` with exponent `s >= 0`; rank 0 is
  /// the most likely. `s == 0` degenerates to uniform. O(n) setup is
  /// avoided by inverse-CDF over a cached harmonic table supplied by the
  /// caller via `ZipfTable`.
  std::size_t Zipf(const std::vector<double>& cdf);

  /// Fisher-Yates shuffle of `items` in place.
  template <typename T>
  void Shuffle(std::vector<T>* items) {
    if (items->empty()) return;
    for (std::size_t i = items->size() - 1; i > 0; --i) {
      std::size_t j = static_cast<std::size_t>(UniformUint64(i + 1));
      using std::swap;
      swap((*items)[i], (*items)[j]);
    }
  }

  /// Returns a uniformly random permutation of `{0, ..., n-1}`.
  std::vector<std::size_t> Permutation(std::size_t n);

  /// Picks a uniformly random element index of a non-empty container size.
  std::size_t Index(std::size_t size) {
    TREX_CHECK_GT(size, 0u);
    return static_cast<std::size_t>(UniformUint64(size));
  }

  /// Derives an independent child generator; convenient for giving each
  /// subtask its own stream without sharing state.
  Rng Fork();

 private:
  std::uint64_t s_[4];
};

/// Precomputes the normalized CDF for `Rng::Zipf` over `n` ranks with
/// exponent `s`.
std::vector<double> ZipfTable(std::size_t n, double s);

}  // namespace trex

#endif  // TREX_COMMON_RANDOM_H_
