// Cooperative cancellation primitives.
//
// `CancelSource` owns a cancellation flag; `CancelToken` is a cheap,
// copyable observer of one or more flags. Tokens are threaded through
// the long-running explanation loops (the permutation sweeps in
// core/shapley_sampling and the 2^n subset enumerations in
// core/shapley_exact / core/interaction / core/counterfactual), which
// poll `cancelled()` between characteristic-function evaluations — each
// evaluation is a full black-box repair run, so polling overhead is
// negligible and cancellation latency is at most one repair call.
//
// Cancellation is cooperative and sticky: once a source is cancelled it
// stays cancelled, and work observing the token stops at the next poll
// point and reports `Status::Cancelled`. A default-constructed token is
// never cancelled, so synchronous callers pay nothing.
//
// Besides polling, a token supports *blocking* on cancellation:
// `WaitFor(timeout)` parks the calling thread until either the timeout
// elapses or any observed source fires, whichever comes first. This is
// the only sanctioned way to sleep in a retry/backoff loop — a bare
// `sleep_for` would let a backoff outlive the deadline or cancellation
// that should have cut it short (serving's `DeadlineSource` fires
// `CancelSource::Cancel`, which wakes all waiters immediately).
//
// The same primitives also carry the *soften* channel of anytime
// estimation: a token wired into `shap::StopRule::soften` (or
// `ExplainRequest::soften`) does not kill work when it fires — the
// wave-synchronous sweep driver finishes its current wave and returns
// the partial confidence-bounded estimates instead. Hard cancel
// discards; soften keeps.
//
// These types live in `common/` (the bottom layer) because every layer
// above uses them: core explanation loops poll tokens, the serving
// layer owns sources and arms deadlines against them
// (serving/cancel.h's `DeadlineSource`). Core code must not include
// serving headers — the layer DAG (enforced by tools/trex_check.py)
// runs common → table → dc/data → repair → core → workload → serving.
//
// Thread safety: all operations are safe to call concurrently. The
// fast path (`cancelled()` polls) reads a relaxed atomic; the waiter
// list behind `WaitFor` is guarded by a per-state leaf mutex that is
// never held across user code.

#ifndef TREX_COMMON_CANCEL_H_
#define TREX_COMMON_CANCEL_H_

#include <atomic>
#include <chrono>
#include <memory>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace trex {

namespace internal {

/// One thread parked in `CancelToken::WaitFor`. Registered with every
/// state the token observes; the first state to fire wakes it.
struct CancelWaiter {
  Mutex mu;
  CondVar cv;
  bool fired GUARDED_BY(mu) = false;

  void Fire() EXCLUDES(mu);
};

/// Shared flag + waiter registry behind one `CancelSource`.
class CancelState {
 public:
  bool cancelled() const {
    return flag_.load(std::memory_order_relaxed);
  }

  /// Sets the flag (idempotent) and wakes every registered waiter.
  void Cancel() EXCLUDES(mu_);

  /// Registers a waiter; if this state is already cancelled the waiter
  /// is fired immediately instead (a later `Cancel` call would be a
  /// no-op and must not be relied on to deliver the wakeup).
  void AddWaiter(const std::shared_ptr<CancelWaiter>& waiter) EXCLUDES(mu_);

  /// Deregisters a waiter (by identity); safe to call after firing.
  void RemoveWaiter(const CancelWaiter* waiter) EXCLUDES(mu_);

 private:
  std::atomic<bool> flag_{false};
  Mutex mu_;
  std::vector<std::shared_ptr<CancelWaiter>> waiters_ GUARDED_BY(mu_);
};

}  // namespace internal

/// Observer half of a cancellation channel (see file comment).
class CancelToken {
 public:
  /// A token that is never cancelled.
  CancelToken() = default;

  /// True once any underlying source was cancelled.
  bool cancelled() const {
    for (const auto& state : states_) {
      if (state->cancelled()) return true;
    }
    return false;
  }

  /// True when this token observes at least one source (i.e. it can ever
  /// be cancelled).
  bool can_be_cancelled() const { return !states_.empty(); }

  /// Blocks until `timeout` elapses or any observed source is cancelled,
  /// whichever comes first; returns `cancelled()`. A token with no
  /// sources simply sleeps the full timeout (and returns false) — so
  /// this doubles as the project's interruptible sleep. The wait is a
  /// condition-variable park, not a poll: a source firing mid-wait wakes
  /// the caller immediately.
  bool WaitFor(std::chrono::nanoseconds timeout) const;

  /// A token cancelled as soon as either input is. Null inputs are
  /// dropped, so merging with a default token is free.
  static CancelToken AnyOf(const CancelToken& a, const CancelToken& b);

 private:
  friend class CancelSource;
  std::vector<std::shared_ptr<internal::CancelState>> states_;
};

/// Owner half of a cancellation channel: hands out tokens and flips them.
class CancelSource {
 public:
  CancelSource() : state_(std::make_shared<internal::CancelState>()) {}

  /// A token observing this source.
  CancelToken token() const;

  /// Requests cancellation; idempotent. Wakes any thread blocked in
  /// `CancelToken::WaitFor` on a token observing this source.
  void Cancel() { state_->Cancel(); }

  bool cancelled() const { return state_->cancelled(); }

 private:
  std::shared_ptr<internal::CancelState> state_;
};

}  // namespace trex

#endif  // TREX_COMMON_CANCEL_H_
