// Cooperative cancellation primitives.
//
// `CancelSource` owns a cancellation flag; `CancelToken` is a cheap,
// copyable observer of one or more flags. Tokens are threaded through
// the long-running explanation loops (the permutation sweeps in
// core/shapley_sampling and the 2^n subset enumerations in
// core/shapley_exact / core/interaction / core/counterfactual), which
// poll `cancelled()` between characteristic-function evaluations — each
// evaluation is a full black-box repair run, so polling overhead is
// negligible and cancellation latency is at most one repair call.
//
// Cancellation is cooperative and sticky: once a source is cancelled it
// stays cancelled, and work observing the token stops at the next poll
// point and reports `Status::Cancelled`. A default-constructed token is
// never cancelled, so synchronous callers pay nothing.
//
// The same primitives also carry the *soften* channel of anytime
// estimation: a token wired into `shap::StopRule::soften` (or
// `ExplainRequest::soften`) does not kill work when it fires — the
// wave-synchronous sweep driver finishes its current wave and returns
// the partial confidence-bounded estimates instead. Hard cancel
// discards; soften keeps.
//
// These types live in `common/` (the bottom layer) because every layer
// above uses them: core explanation loops poll tokens, the serving
// layer owns sources and arms deadlines against them
// (serving/cancel.h's `DeadlineSource`). Core code must not include
// serving headers — the layer DAG (enforced by tools/trex_check.py)
// runs common → table → dc/data → repair → core → workload → serving.
//
// Thread safety: all operations are safe to call concurrently; the flag
// is a relaxed atomic (cancellation needs no ordering with other data).

#ifndef TREX_COMMON_CANCEL_H_
#define TREX_COMMON_CANCEL_H_

#include <atomic>
#include <memory>
#include <vector>

namespace trex {

/// Observer half of a cancellation channel (see file comment).
class CancelToken {
 public:
  /// A token that is never cancelled.
  CancelToken() = default;

  /// True once any underlying source was cancelled.
  bool cancelled() const {
    for (const auto& state : states_) {
      if (state->load(std::memory_order_relaxed)) return true;
    }
    return false;
  }

  /// True when this token observes at least one source (i.e. it can ever
  /// be cancelled).
  bool can_be_cancelled() const { return !states_.empty(); }

  /// A token cancelled as soon as either input is. Null inputs are
  /// dropped, so merging with a default token is free.
  static CancelToken AnyOf(const CancelToken& a, const CancelToken& b);

 private:
  friend class CancelSource;
  std::vector<std::shared_ptr<const std::atomic<bool>>> states_;
};

/// Owner half of a cancellation channel: hands out tokens and flips them.
class CancelSource {
 public:
  CancelSource() : state_(std::make_shared<std::atomic<bool>>(false)) {}

  /// A token observing this source.
  CancelToken token() const;

  /// Requests cancellation; idempotent.
  void Cancel() { state_->store(true, std::memory_order_relaxed); }

  bool cancelled() const { return state_->load(std::memory_order_relaxed); }

 private:
  std::shared_ptr<std::atomic<bool>> state_;
};

}  // namespace trex

#endif  // TREX_COMMON_CANCEL_H_
