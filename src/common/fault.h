// Deterministic, site-keyed fault injection.
//
// Production code marks the places where a dependency can fail with a
// *named injection site*:
//
//   Status EvalOnce(...) {
//     TREX_FAULT_INJECT("repair.eval_table_miss");
//     ...
//   }
//
// Sites are inert by default: the macro is one relaxed atomic load when
// no plan is armed, so shipping them in hot paths costs nothing. Tests
// and the chaos suite arm a `FaultPlan` — a seed plus per-site
// schedules — and the named sites start failing on a deterministic,
// replayable schedule:
//
//   fault::ScopedFaultPlan plan({.seed = 42, .sites = {
//       {.site = "repair.backend", .kind = fault::FaultKind::kTransient,
//        .skip_first = 1, .fail_first = 2}}});
//
// Three fault kinds:
//   - kError:     each engaged hit fails with `probability`, drawn from
//                 a per-site RNG derived from the plan seed through a
//                 splitmix64 chain (same seed → same schedule).
//   - kLatency:   each engaged hit sleeps `latency` with `probability`
//                 and then succeeds (slow dependency, not a broken one).
//   - kTransient: the first `fail_first` engaged hits fail, then the
//                 site recovers — the shape retry loops must survive.
// `skip_first` lets a schedule pass early hits through (e.g. let the
// reference repair succeed and fail the first *eval* instead).
//
// Discipline (enforced by tools/trex_check.py, check
// `fault-site-discipline`): injection goes through this header's
// `TREX_FAULT_INJECT` macro only, site names are string literals and
// globally unique, and `bench/` must not contain injection sites —
// benchmarks measure the real system, chaos belongs to tests.
//
// Thread safety: `Hit` is safe from any thread. With concurrent callers
// the per-site hit sequence is deterministic but *which caller* draws
// which scheduled outcome follows the arrival interleaving; chaos tests
// assert invariants (everything resolves, results bit-identical after
// recovery), not specific fault→thread assignments.

#ifndef TREX_COMMON_FAULT_H_
#define TREX_COMMON_FAULT_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "common/mutex.h"
#include "common/random.h"
#include "common/status.h"
#include "common/thread_annotations.h"

namespace trex {
namespace fault {

/// What an armed schedule does to its site's hits (see file comment).
enum class FaultKind : std::uint8_t { kError, kLatency, kTransient };

/// One site's fault schedule within a plan.
struct SiteSchedule {
  std::string site;
  FaultKind kind = FaultKind::kError;
  /// Firing probability per engaged hit (kError / kLatency).
  double probability = 1.0;
  /// Hits that always pass before the schedule engages.
  std::size_t skip_first = 0;
  /// kTransient: engaged hits that fail before the site recovers.
  std::size_t fail_first = 1;
  /// kLatency: how long a firing hit sleeps before succeeding.
  std::chrono::microseconds latency{0};
  /// Error code injected by failing hits. Defaults to the transient
  /// code so retry/breaker paths engage; set a permanent code to test
  /// fail-fast classification.
  StatusCode code = StatusCode::kUnavailable;
};

/// A replayable chaos plan: a seed plus the sites it drives.
struct FaultPlan {
  std::uint64_t seed = 0;
  std::vector<SiteSchedule> sites;
};

/// Observed activity at one site since the plan was armed.
struct SiteCounters {
  std::size_t hits = 0;      ///< times the site was reached
  std::size_t injected = 0;  ///< times a fault actually fired
};

/// Process-wide injector. Sites call `Hit` (via `TREX_FAULT_INJECT`);
/// tests arm plans, preferably through `ScopedFaultPlan`.
class FaultInjector {
 public:
  /// The process-wide instance.
  static FaultInjector& Instance();

  /// Arms `plan`, replacing any previous plan and resetting counters.
  /// Per-site RNGs are derived from `plan.seed` and the site name via a
  /// splitmix64 chain, so the same plan replays the same schedule.
  void Arm(FaultPlan plan) EXCLUDES(mu_);

  /// Disarms; all sites pass through again. Counters are kept until the
  /// next `Arm` so tests can assert on them after the run.
  void Disarm() EXCLUDES(mu_);

  /// True while a plan is armed (one relaxed load; the macro's guard).
  bool armed() const { return armed_.load(std::memory_order_relaxed); }

  /// Records one arrival at `site` and returns the scheduled outcome:
  /// OK, or the schedule's error code. Sites without a schedule in the
  /// armed plan pass through (but are still counted).
  [[nodiscard]] Status Hit(std::string_view site) EXCLUDES(mu_);

  /// Counters for `site` (zeros if never hit since the last `Arm`).
  SiteCounters counters(std::string_view site) const EXCLUDES(mu_);

 private:
  FaultInjector() = default;

  struct SiteState {
    SiteSchedule schedule;
    Rng rng{0};
    SiteCounters counts;
    /// False for sites the armed plan never named: counted, never fired.
    bool scheduled = false;
  };

  std::atomic<bool> armed_{false};
  mutable Mutex mu_;
  std::map<std::string, SiteState, std::less<>> sites_ GUARDED_BY(mu_);
};

/// RAII plan scope for tests: arms on construction, disarms on exit.
class ScopedFaultPlan {
 public:
  explicit ScopedFaultPlan(FaultPlan plan) {
    FaultInjector::Instance().Arm(std::move(plan));
  }
  ~ScopedFaultPlan() { FaultInjector::Instance().Disarm(); }
  ScopedFaultPlan(const ScopedFaultPlan&) = delete;
  ScopedFaultPlan& operator=(const ScopedFaultPlan&) = delete;
};

}  // namespace fault
}  // namespace trex

/// Declares a named injection site. Expands to a return of the injected
/// error `Status` when an armed schedule fires (usable in any function
/// returning `Status` or `Result<T>`); near-zero cost when disarmed.
/// `site` must be a unique string literal (fault-site-discipline).
#define TREX_FAULT_INJECT(site)                                     \
  do {                                                              \
    if (::trex::fault::FaultInjector::Instance().armed()) {         \
      ::trex::Status _trex_fault_status =                           \
          ::trex::fault::FaultInjector::Instance().Hit(site);       \
      if (!_trex_fault_status.ok()) return _trex_fault_status;      \
    }                                                               \
  } while (false)

#endif  // TREX_COMMON_FAULT_H_
