// Clang thread-safety-analysis attribute macros.
//
// These expand to Clang's `capability`-family attributes when the
// compiler supports them (`-Wthread-safety`; CI builds the tree with
// `-Werror=thread-safety`) and to nothing everywhere else, so GCC and
// MSVC builds see plain declarations. The names follow the canonical
// set from the Clang documentation — `GUARDED_BY`, `REQUIRES`,
// `EXCLUDES`, ... — because that is the vocabulary every layer-contract
// comment in this codebase now shares with the compiler.
//
// Use them through `common/mutex.h` (`trex::Mutex`, `trex::SharedMutex`
// and their scoped locks are the only lock types allowed outside that
// header; `tools/lint_invariants.py` enforces this). Annotate:
//
//   * data with the lock that protects it:   `int depth_ GUARDED_BY(mu_);`
//   * heap data behind a guarded pointer:    `T* p_ PT_GUARDED_BY(mu_);`
//   * functions with their lock pre-conditions:
//         `void EvictLru() REQUIRES(mu_);`
//         `std::size_t entries() const REQUIRES_SHARED(mu_);`
//   * functions that must NOT be entered with a lock held (the
//     deadlock-rule encoding):               `Stats stats() const EXCLUDES(mu_);`
//
// The analysis is intraprocedural and best-effort: it cannot see
// through type-erased callbacks or express "any entry's mutex", so a
// few cross-object rules remain comment-plus-test contracts (see
// serving/router.h). Everything else is a compile error under Clang.

#ifndef TREX_COMMON_THREAD_ANNOTATIONS_H_
#define TREX_COMMON_THREAD_ANNOTATIONS_H_

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define TREX_THREAD_ANNOTATION__(x) __attribute__((x))
#endif
#endif
#ifndef TREX_THREAD_ANNOTATION__
#define TREX_THREAD_ANNOTATION__(x)  // not Clang: annotations are no-ops
#endif

/// Marks a class as a lockable capability (a mutex type).
#define CAPABILITY(x) TREX_THREAD_ANNOTATION__(capability(x))

/// Marks an RAII class whose constructor acquires and destructor
/// releases a capability.
#define SCOPED_CAPABILITY TREX_THREAD_ANNOTATION__(scoped_lockable)

/// Declares that a data member is protected by the given capability.
#define GUARDED_BY(x) TREX_THREAD_ANNOTATION__(guarded_by(x))

/// Declares that the data *pointed to* by a pointer member is protected
/// by the given capability (the pointer itself is not).
#define PT_GUARDED_BY(x) TREX_THREAD_ANNOTATION__(pt_guarded_by(x))

/// Lock-ordering declarations (checked under -Wthread-safety-beta).
#define ACQUIRED_BEFORE(...) \
  TREX_THREAD_ANNOTATION__(acquired_before(__VA_ARGS__))
#define ACQUIRED_AFTER(...) \
  TREX_THREAD_ANNOTATION__(acquired_after(__VA_ARGS__))

/// The caller must hold the capability exclusively before the call.
#define REQUIRES(...) \
  TREX_THREAD_ANNOTATION__(requires_capability(__VA_ARGS__))

/// The caller must hold the capability (shared is enough).
#define REQUIRES_SHARED(...) \
  TREX_THREAD_ANNOTATION__(requires_shared_capability(__VA_ARGS__))

/// The function acquires the capability (exclusively / shared) and does
/// not release it before returning.
#define ACQUIRE(...) \
  TREX_THREAD_ANNOTATION__(acquire_capability(__VA_ARGS__))
#define ACQUIRE_SHARED(...) \
  TREX_THREAD_ANNOTATION__(acquire_shared_capability(__VA_ARGS__))

/// The function releases the capability (held exclusively / shared /
/// either) on entry.
#define RELEASE(...) \
  TREX_THREAD_ANNOTATION__(release_capability(__VA_ARGS__))
#define RELEASE_SHARED(...) \
  TREX_THREAD_ANNOTATION__(release_shared_capability(__VA_ARGS__))
#define RELEASE_GENERIC(...) \
  TREX_THREAD_ANNOTATION__(release_generic_capability(__VA_ARGS__))

/// The function attempts to acquire the capability; the first argument
/// is the return value that signals success.
#define TRY_ACQUIRE(...) \
  TREX_THREAD_ANNOTATION__(try_acquire_capability(__VA_ARGS__))
#define TRY_ACQUIRE_SHARED(...) \
  TREX_THREAD_ANNOTATION__(try_acquire_shared_capability(__VA_ARGS__))

/// The caller must NOT hold the capability (deadlock-rule encoding:
/// re-entry and lock-order violations become compile errors).
#define EXCLUDES(...) TREX_THREAD_ANNOTATION__(locks_excluded(__VA_ARGS__))

/// Tells the analysis (without runtime effect) that the capability is
/// held — for callback boundaries the analysis cannot see across.
#define ASSERT_CAPABILITY(x) \
  TREX_THREAD_ANNOTATION__(assert_capability(x))
#define ASSERT_SHARED_CAPABILITY(x) \
  TREX_THREAD_ANNOTATION__(assert_shared_capability(x))

/// The function returns a reference to the given capability.
#define RETURN_CAPABILITY(x) TREX_THREAD_ANNOTATION__(lock_returned(x))

/// Escape hatch: disables the analysis for one function. Every use must
/// carry a comment explaining why the analysis cannot see the truth.
#define NO_THREAD_SAFETY_ANALYSIS \
  TREX_THREAD_ANNOTATION__(no_thread_safety_analysis)

#endif  // TREX_COMMON_THREAD_ANNOTATIONS_H_
