#include "common/cancel.h"

#include <algorithm>
#include <utility>

namespace trex {
namespace internal {

void CancelWaiter::Fire() {
  MutexLock lock(mu);
  fired = true;
  cv.NotifyAll();
}

void CancelState::Cancel() {
  if (flag_.exchange(true, std::memory_order_relaxed)) return;
  std::vector<std::shared_ptr<CancelWaiter>> to_fire;
  {
    MutexLock lock(mu_);
    to_fire = std::move(waiters_);
    waiters_.clear();
  }
  for (const auto& waiter : to_fire) waiter->Fire();
}

void CancelState::AddWaiter(const std::shared_ptr<CancelWaiter>& waiter) {
  bool fire_now = false;
  {
    MutexLock lock(mu_);
    // Checked under the lock: if the flag is already set, Cancel() has
    // either drained the list or is about to — either way it will not
    // see this waiter, so deliver the wakeup directly.
    if (flag_.load(std::memory_order_relaxed)) {
      fire_now = true;
    } else {
      waiters_.push_back(waiter);
    }
  }
  if (fire_now) waiter->Fire();
}

void CancelState::RemoveWaiter(const CancelWaiter* waiter) {
  MutexLock lock(mu_);
  waiters_.erase(std::remove_if(waiters_.begin(), waiters_.end(),
                                [waiter](const auto& w) {
                                  return w.get() == waiter;
                                }),
                 waiters_.end());
}

}  // namespace internal

bool CancelToken::WaitFor(std::chrono::nanoseconds timeout) const {
  if (cancelled()) return true;
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  auto waiter = std::make_shared<internal::CancelWaiter>();
  for (const auto& state : states_) state->AddWaiter(waiter);
  {
    MutexLock lock(waiter->mu);
    while (!waiter->fired) {
      if (waiter->cv.WaitUntil(lock, deadline) == std::cv_status::timeout) {
        break;
      }
    }
  }
  for (const auto& state : states_) state->RemoveWaiter(waiter.get());
  return cancelled();
}

CancelToken CancelToken::AnyOf(const CancelToken& a, const CancelToken& b) {
  CancelToken merged;
  merged.states_.reserve(a.states_.size() + b.states_.size());
  merged.states_.insert(merged.states_.end(), a.states_.begin(),
                        a.states_.end());
  merged.states_.insert(merged.states_.end(), b.states_.begin(),
                        b.states_.end());
  return merged;
}

CancelToken CancelSource::token() const {
  CancelToken token;
  token.states_.push_back(state_);
  return token;
}

}  // namespace trex
