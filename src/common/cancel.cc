#include "common/cancel.h"

namespace trex {

CancelToken CancelToken::AnyOf(const CancelToken& a, const CancelToken& b) {
  CancelToken merged;
  merged.states_.reserve(a.states_.size() + b.states_.size());
  merged.states_.insert(merged.states_.end(), a.states_.begin(),
                        a.states_.end());
  merged.states_.insert(merged.states_.end(), b.states_.begin(),
                        b.states_.end());
  return merged;
}

CancelToken CancelSource::token() const {
  CancelToken token;
  token.states_.push_back(state_);
  return token;
}

}  // namespace trex
