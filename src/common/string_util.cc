#include "common/string_util.h"

#include <cctype>
#include <cerrno>
#include <charconv>
#include <cmath>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>

namespace trex {

std::vector<std::string> Split(std::string_view input, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= input.size(); ++i) {
    if (i == input.size() || input[i] == sep) {
      out.emplace_back(input.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string Join(const std::vector<std::string>& parts,
                 std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

std::string_view TrimView(std::string_view s) {
  std::size_t begin = 0;
  std::size_t end = s.size();
  while (begin < end &&
         std::isspace(static_cast<unsigned char>(s[begin]))) {
    ++begin;
  }
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(s[end - 1]))) {
    --end;
  }
  return s.substr(begin, end - begin);
}

std::string Trim(std::string_view s) { return std::string(TrimView(s)); }

std::string ToLower(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::tolower(
                          static_cast<unsigned char>(c)));
  return out;
}

std::string ToUpper(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::toupper(
                          static_cast<unsigned char>(c)));
  return out;
}

Result<std::int64_t> ParseInt64(std::string_view s) {
  s = TrimView(s);
  if (s.empty()) return Status::ParseError("empty integer literal");
  std::int64_t value = 0;
  const char* first = s.data();
  const char* last = s.data() + s.size();
  auto [ptr, ec] = std::from_chars(first, last, value);
  if (ec != std::errc() || ptr != last) {
    return Status::ParseError("not an integer: '" + std::string(s) + "'");
  }
  return value;
}

Result<double> ParseDouble(std::string_view s) {
  s = TrimView(s);
  if (s.empty()) return Status::ParseError("empty double literal");
  // std::from_chars for double is not fully supported everywhere; use
  // strtod on a bounded copy.
  std::string copy(s);
  errno = 0;
  char* end = nullptr;
  double value = std::strtod(copy.c_str(), &end);
  if (end != copy.c_str() + copy.size() || errno == ERANGE) {
    return Status::ParseError("not a double: '" + copy + "'");
  }
  return value;
}

std::string FormatDouble(double value, int precision) {
  if (std::isfinite(value) && value == std::floor(value) &&
      std::fabs(value) < 1e15) {
    return StrFormat("%lld", static_cast<long long>(value));
  }
  return StrFormat("%.*g", precision, value);
}

bool LooksLikeInt(std::string_view s) {
  s = TrimView(s);
  if (s.empty()) return false;
  std::size_t i = (s[0] == '+' || s[0] == '-') ? 1 : 0;
  if (i == s.size()) return false;
  for (; i < s.size(); ++i) {
    if (!std::isdigit(static_cast<unsigned char>(s[i]))) return false;
  }
  return true;
}

bool LooksLikeDouble(std::string_view s) {
  return ParseDouble(s).ok();
}

std::string CsvEscape(std::string_view field, char sep) {
  bool needs_quotes = false;
  for (char c : field) {
    if (c == sep || c == '"' || c == '\n' || c == '\r') {
      needs_quotes = true;
      break;
    }
  }
  if (!needs_quotes) return std::string(field);
  std::string out;
  out.reserve(field.size() + 2);
  out.push_back('"');
  for (char c : field) {
    if (c == '"') out.push_back('"');
    out.push_back(c);
  }
  out.push_back('"');
  return out;
}

std::string JsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += StrFormat("\\u%04x", c);
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<std::size_t>(needed) + 1);
    std::vsnprintf(out.data(), out.size(), fmt, args_copy);
    out.resize(static_cast<std::size_t>(needed));
  }
  va_end(args_copy);
  return out;
}

}  // namespace trex
