"""Shared infrastructure for the project linters.

Both tools/lint_invariants.py (regex conventions) and tools/trex_check.py
(AST-grade semantic checks) self-test the same way: every rule/check is
fed known-bad and known-good snippets, and the tool fails its own
self-test if a bad snippet passes or a good one is flagged. This module
is the single fixture runner they share, so the harness semantics
(count-exact matching, per-case reporting, exit codes) cannot drift
between the two linters.

A fixture case is (check, path, snippet, expected_count[, engines]):

  check     the rule/check name the case exercises; only findings with
            this name are counted (other checks may legitimately fire
            on the same snippet).
  path      the fake repo-relative path the snippet pretends to live at
            (path predicates — src/ vs tests/, layer membership — are
            part of what is under test).
  snippet   the file content.
  expected  the exact number of findings the check must produce.
  engines   optional set of engine names the case applies to; cases
            whose engine set excludes the active engine are skipped
            (used for checks only one engine can implement, e.g.
            call-site analysis that needs a real AST).
"""

import sys


class FixtureCase:
    def __init__(self, check, path, snippet, expected, engines=None):
        self.check = check
        self.path = path
        self.snippet = snippet
        self.expected = expected
        self.engines = engines  # None = every engine

    def applies_to(self, engine_name):
        return self.engines is None or engine_name in self.engines


def run_fixture_cases(cases, lint_file_fn, label, engine_name="default",
                      out=sys.stderr):
    """Runs every fixture case through `lint_file_fn(path, snippet)`.

    `lint_file_fn` returns an iterable of findings shaped
    (path, line, check, message). Returns 0 when every applicable case
    produced exactly its expected count of findings for its check, 1
    otherwise (with one diagnostic line per failing case).
    """
    failures = []
    ran = 0
    for case in cases:
        if not case.applies_to(engine_name):
            continue
        ran += 1
        got = [f for f in lint_file_fn(case.path, case.snippet)
               if f[2] == case.check]
        if len(got) != case.expected:
            failures.append(
                f"{case.check} on {case.path}: expected {case.expected} "
                f"finding(s), got {len(got)}: "
                f"{[(f[1], f[3][:60]) for f in got]}")
    if failures:
        for f in failures:
            print(f"SELF-TEST FAIL [{label}/{engine_name}]: {f}", file=out)
        return 1
    print(f"{label} self-test [{engine_name}]: {ran} cases passed")
    return 0
