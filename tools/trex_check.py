#!/usr/bin/env python3
"""AST-grade project checker for the T-REx tree.

Five semantic checks that the regex linter (tools/lint_invariants.py)
structurally cannot do — each one pins an invariant the system's core
guarantee depends on (bit-identical explanations at any thread count,
replayed across backends):

  unordered-determinism
      A loop over a `std::unordered_map` / `std::unordered_set` must not
      accumulate floating point, append to ordered output declared
      outside the loop, or feed fingerprint/stream sinks. Hash-bucket
      iteration order is not a contract: it differs across standard
      libraries, so any order-sensitive fold over it silently breaks
      cross-backend replay. Commutative integer folds and loop-local
      containers are fine and are not flagged.

  cancel-poll
      A function that receives a `CancelToken` (directly, or as the
      `.cancel` / `.soften` member of an options parameter) must keep
      every loop that calls into repair evaluation responsive: the loop
      body must poll `cancelled()`, mention the token, or hand the token
      to the callee. A sweep loop that evaluates coalitions without a
      poll turns cooperative cancellation into a dead letter.

  layering
      `#include` edges inside src/ must follow the documented layer DAG
      (common → table → dc/data → repair → core → workload → serving).
      An upward include (core including serving, data including repair)
      couples a lower layer to a higher one and is rejected.

  status-discipline
      Every `Status` / `Result<T>`-returning declaration in a src/
      header must carry `[[nodiscard]]`, and (AST engine) no call site
      may discard a returned Status/Result. The class-level
      `[[nodiscard]]` on Status/Result makes the compiler enforce call
      sites; this check keeps the per-API annotations from rotting.

  seed-discipline
      Seeds and RNG state in src/ may derive only from explicit inputs
      (base seed, shard index) — never from `std::this_thread::get_id`,
      wall clocks, or `getpid`. A thread-id-derived seed is bit-identical
      only by accident.

Engines
-------
The primary engine parses real ASTs via libclang (`clang.cindex`),
driven by a compile_commands.json when available. Environments without
libclang (the checker must run everywhere ctest runs) fall back to a
bundled text engine: a comment/string-stripping lexer with brace-matched
loop and scope tracking that implements the same checks with
project-wide declaration maps. Check names, suppression syntax, and the
fixture self-test are shared; fixtures that only a real AST can judge
(e.g. discarded-call-site analysis) are tagged for the clang engine.

Suppressions
------------
A finding is suppressed by an inline comment on the same or the
preceding line:

    // trex-check-ok(<check>): <reason>

The suppression itself is linted: an unknown check name or a missing
reason is a finding (check `suppression`) that cannot be suppressed.

Usage
-----
    trex_check.py [--root DIR] [--engine auto|clang|text] [--compdb DIR]
    trex_check.py --self-test [--engine ...]
    trex_check.py --list-checks

Exit codes: 0 clean, 1 findings (or self-test failure), 2 usage/engine
errors (e.g. --engine clang without libclang).
"""

import argparse
import os
import re
import sys

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
from lint_common import FixtureCase, run_fixture_cases  # noqa: E402

# ---------------------------------------------------------------------------
# Shared vocabulary
# ---------------------------------------------------------------------------

CHECKS = (
    "unordered-determinism",
    "cancel-poll",
    "layering",
    "status-discipline",
    "seed-discipline",
    "fault-site-discipline",
)

# Layer ranks; an include edge src/<a>/ -> src/<b>/ is legal iff
# rank(a) >= rank(b). dc and data share a rank (sibling domains).
LAYER_RANK = {
    "common": 0,
    "table": 1,
    "dc": 2,
    "data": 2,
    "repair": 3,
    "core": 4,
    "workload": 5,
    "serving": 6,
}

# Calls that enter repair evaluation: one call is a full black-box
# repair run (or a batch of them), so every loop issuing one must stay
# cancel-responsive.
EVAL_CALLS = (
    "Value",
    "EvalPerturbation",
    "EvalConstraintSubset",
    "Explain",
    "ExplainBatch",
    "Repair",
)
EVAL_CALL_RE = re.compile(
    r"\b(?:" + "|".join(EVAL_CALLS) + r")\s*\(")

# Any mention of the cancellation channel inside a loop body counts as
# coverage: a poll, a member access, or handing the token onward.
TOKEN_MENTION_RE = re.compile(
    r"\bcancelled\s*\(|\bcancel\b|\bsoften\b|\bstop\b|CancelToken")

# Sources a seed must never be derived from.
TIME_SOURCE_RE = re.compile(
    r"this_thread\s*::\s*get_id|steady_clock\s*::\s*now"
    r"|system_clock\s*::\s*now|high_resolution_clock\s*::\s*now"
    r"|\btime\s*\(\s*(?:NULL|nullptr|0)?\s*\)|\bgetpid\s*\(")
SEEDISH_RE = re.compile(
    r"[Ss]eed|mt19937|minstd_rand|SplitMix|splitmix|\b[Rr]ng\b")

SUPPRESS_RE = re.compile(
    r"//\s*trex-check-ok\(\s*([\w-]+)\s*\)\s*(:?)\s*(.*?)\s*$")

STATUS_TYPE_RE = re.compile(r"\b(?:trex\s*::\s*)?(?:Status\b|Result\s*<)")


def finding(path, line, check, message):
    return (path, line, check, message)


# ---------------------------------------------------------------------------
# Lexing: blank out comments and string/char literals, preserving line
# structure, so the structural passes never trip on contents.
# ---------------------------------------------------------------------------

def strip_code(text):
    out = list(text)
    i, n = 0, len(text)
    NORMAL, LINE_C, BLOCK_C, STR, CHR, RAW = range(6)
    state = NORMAL
    raw_delim = ""
    while i < n:
        c = text[i]
        two = text[i:i + 2]
        if state == NORMAL:
            if two == "//":
                state = LINE_C
                out[i] = out[i + 1] = " "
                i += 2
                continue
            if two == "/*":
                state = BLOCK_C
                out[i] = out[i + 1] = " "
                i += 2
                continue
            if c == '"':
                if i >= 1 and text[i - 1] == "R":
                    m = re.match(r'R"([^(\s"]*)\(', text[i - 1:i + 20])
                    if m:
                        state = RAW
                        raw_delim = ")" + m.group(1) + '"'
                        i += 1
                        continue
                state = STR
                i += 1
                continue
            if c == "'":
                state = CHR
                i += 1
                continue
            i += 1
            continue
        if state == LINE_C:
            if c == "\n":
                state = NORMAL
            elif text[i - 1] == "\\" and c == "\n":
                pass
            else:
                out[i] = " "
            i += 1
            continue
        if state == BLOCK_C:
            if two == "*/":
                out[i] = out[i + 1] = " "
                state = NORMAL
                i += 2
                continue
            if c != "\n":
                out[i] = " "
            i += 1
            continue
        if state == STR:
            if c == "\\":
                out[i] = " "
                if i + 1 < n and text[i + 1] != "\n":
                    out[i + 1] = " "
                i += 2
                continue
            if c == '"':
                state = NORMAL
            elif c != "\n":
                out[i] = " "
            i += 1
            continue
        if state == CHR:
            if c == "\\":
                out[i] = " "
                if i + 1 < n and text[i + 1] != "\n":
                    out[i + 1] = " "
                i += 2
                continue
            if c == "'":
                state = NORMAL
            elif c != "\n":
                out[i] = " "
            i += 1
            continue
        if state == RAW:
            if text.startswith(raw_delim, i):
                for j in range(len(raw_delim)):
                    out[i + j] = " "
                i += len(raw_delim)
                state = NORMAL
                continue
            if c != "\n":
                out[i] = " "
            i += 1
            continue
    return "".join(out)


def match_delim(code, i, open_c, close_c):
    """Index one past the delimiter closing the one at `i`."""
    depth = 0
    n = len(code)
    while i < n:
        if code[i] == open_c:
            depth += 1
        elif code[i] == close_c:
            depth -= 1
            if depth == 0:
                return i + 1
        i += 1
    return n


def line_of(text, offset):
    return text.count("\n", 0, offset) + 1


# ---------------------------------------------------------------------------
# Suppressions
# ---------------------------------------------------------------------------

def parse_suppressions(path, raw_text):
    """Returns ({line: set(check)}, [findings for malformed ones])."""
    by_line = {}
    bad = []
    for lineno, line in enumerate(raw_text.splitlines(), 1):
        m = SUPPRESS_RE.search(line)
        if not m:
            continue
        check, colon, reason = m.group(1), m.group(2), m.group(3)
        if check not in CHECKS:
            bad.append(finding(
                path, lineno, "suppression",
                f"trex-check-ok names unknown check '{check}' "
                f"(valid: {', '.join(CHECKS)})"))
            continue
        if colon != ":" or not reason:
            bad.append(finding(
                path, lineno, "suppression",
                f"trex-check-ok({check}) must carry a reason: "
                "'// trex-check-ok(<check>): <why this is safe>'"))
            continue
        by_line.setdefault(lineno, set()).add(check)
    return by_line, bad


def apply_suppressions(findings, by_line):
    kept = []
    for f in findings:
        _, line, check, _ = f
        if check in by_line.get(line, ()) or check in by_line.get(line - 1,
                                                                  ()):
            continue
        kept.append(f)
    return kept


# ---------------------------------------------------------------------------
# Checks shared verbatim by both engines (pure text by nature)
# ---------------------------------------------------------------------------

INCLUDE_RE = re.compile(r'^\s*#\s*include\s*"([^"]+)"')


def check_layering(path, raw_text):
    parts = path.split("/")
    if len(parts) < 3 or parts[0] != "src" or parts[1] not in LAYER_RANK:
        return []
    my_rank = LAYER_RANK[parts[1]]
    out = []
    for lineno, line in enumerate(raw_text.splitlines(), 1):
        m = INCLUDE_RE.match(line)
        if not m:
            continue
        target = m.group(1).split("/")[0]
        if target in LAYER_RANK and LAYER_RANK[target] > my_rank:
            out.append(finding(
                path, lineno, "layering",
                f"upward include: {parts[1]} (rank {my_rank}) must not "
                f"include {target} (rank {LAYER_RANK[target]}); the layer "
                "order is common → table → dc/data → repair → core → "
                "workload → serving"))
    return out


NODISCARD_DECL_RE = re.compile(
    r"^\s*(?:static\s+|virtual\s+|friend\s+|explicit\s+|constexpr\s+)*"
    r"(?:trex\s*::\s*)?(?:Status|Result\s*<[^;{}=]*>)\s+"
    r"[A-Za-z_]\w*\s*\(")


def check_status_annotations(path, raw_text):
    """Part (a) of status-discipline: header declarations must be
    [[nodiscard]]. Pure text in both engines — the attribute is lexical."""
    if not (path.startswith("src/") and path.endswith(".h")):
        return []
    out = []
    code = strip_code(raw_text)
    lines = code.splitlines()
    for i, line in enumerate(lines):
        if "[[nodiscard]]" in line:
            continue
        if not NODISCARD_DECL_RE.match(line):
            continue
        prev = lines[i - 1].rstrip() if i else ""
        if prev.endswith("[[nodiscard]]"):
            continue
        out.append(finding(
            path, i + 1, "status-discipline",
            "Status/Result-returning declaration without [[nodiscard]]; "
            "a droppable error is no error contract at all"))
    return out


# Fault-injection sites (common/fault.h). The named-site registry only
# stays auditable — every schedulable failure greppable, every site
# keyed by exactly one code location — under three rules:
#   * production code reaches the injector only through
#     TREX_FAULT_INJECT (direct FaultInjector use — Arm, counters —
#     belongs to tests and the implementation in common/fault.{h,cc});
#   * site names are string literals, never computed;
#   * a site name appears at exactly one code location (src-wide);
#   * bench/ stays injection-free (a bench number that silently ran
#     under an armed plan is not a benchmark).

FAULT_MACRO_RE = re.compile(r"\bTREX_FAULT_INJECT\s*\(")
FAULT_INJECTOR_RE = re.compile(r"\bFaultInjector\b")
FAULT_EXEMPT = ("src/common/fault.h", "src/common/fault.cc")


def _fault_site_literal(raw_text, open_idx):
    """The string-literal argument of the macro call whose '(' sits at
    `open_idx` in the raw text, or None when the argument is computed."""
    m = re.match(r'\(\s*"((?:[^"\\]|\\.)*)"\s*\)', raw_text[open_idx:])
    return m.group(1) if m else None


def iter_fault_sites(raw_text):
    """Yields (lineno, site_or_None) for every TREX_FAULT_INJECT call,
    located on comment-stripped code so commented-out sites are inert.
    Preprocessor lines are skipped: `#define TREX_FAULT_INJECT(...)` is
    the macro's declaration, not a site."""
    code = strip_code(raw_text)
    for m in FAULT_MACRO_RE.finditer(code):
        line_start = code.rfind("\n", 0, m.start()) + 1
        if code[line_start:m.start()].lstrip().startswith("#"):
            continue
        yield line_of(code, m.start()), _fault_site_literal(raw_text,
                                                            m.end() - 1)


def check_fault_sites(path, raw_text):
    """Per-file half of fault-site-discipline; the cross-file site-name
    uniqueness half lives in check_fault_site_uniqueness."""
    out = []
    if path.startswith("bench/"):
        for lineno, _ in iter_fault_sites(raw_text):
            out.append(finding(
                path, lineno, "fault-site-discipline",
                "TREX_FAULT_INJECT in bench/: benchmark numbers must "
                "never depend on an armed fault plan; drive faults "
                "through a FaultyAlgorithm schedule instead"))
        return out
    if not path.startswith("src/") or path in FAULT_EXEMPT:
        return []
    code = strip_code(raw_text)
    for m in FAULT_INJECTOR_RE.finditer(code):
        out.append(finding(
            path, line_of(code, m.start()), "fault-site-discipline",
            "direct FaultInjector use outside common/fault.{h,cc}; "
            "production code declares sites with TREX_FAULT_INJECT only "
            "(arming plans and reading counters belong to tests)"))
    seen = {}
    for lineno, site in iter_fault_sites(raw_text):
        if site is None:
            out.append(finding(
                path, lineno, "fault-site-discipline",
                "TREX_FAULT_INJECT site name must be a string literal; "
                "a computed name cannot be grepped, scheduled, or "
                "audited"))
        elif site in seen:
            out.append(finding(
                path, lineno, "fault-site-discipline",
                f'duplicate fault site "{site}" (first declared at line '
                f"{seen[site]}); sites are keyed by name, so a reused "
                "name makes two code paths share one schedule and one "
                "hit counter"))
        else:
            seen[site] = lineno
    return out


def check_fault_site_uniqueness(files):
    """Cross-file half: one site name, one code location, src-wide.
    Same-file duplicates are skipped here — check_fault_sites already
    reported them."""
    seen = {}
    out = []
    for rel, text in files:
        if not rel.startswith("src/") or rel in FAULT_EXEMPT:
            continue
        for lineno, site in iter_fault_sites(text):
            if site is None:
                continue
            if site in seen and seen[site][0] != rel:
                first = seen[site]
                out.append(finding(
                    rel, lineno, "fault-site-discipline",
                    f'duplicate fault site "{site}" (first declared at '
                    f"{first[0]}:{first[1]}); sites are keyed by name, "
                    "so a reused name makes two code paths share one "
                    "schedule and one hit counter"))
            elif site not in seen:
                seen[site] = (rel, lineno)
    return out


def collect_bench_files(root):
    out = []
    base = os.path.join(root, "bench")
    if not os.path.isdir(base):
        return out
    for dirpath, _, filenames in os.walk(base):
        for name in sorted(filenames):
            if not name.endswith((".h", ".cc")):
                continue
            full = os.path.join(dirpath, name)
            rel = os.path.relpath(full, root).replace(os.sep, "/")
            with open(full, encoding="utf-8") as f:
                out.append((rel, f.read()))
    return out


# ---------------------------------------------------------------------------
# Text engine: lexer + scope tracking, no libclang required
# ---------------------------------------------------------------------------

UNORDERED_DECL_RE = re.compile(r"unordered_(?:map|set)\s*<")
ORDERED_DECL_RE = re.compile(r"(?<![\w_])(?:map|set|vector|deque)\s*<")
USING_UNORDERED_RE = re.compile(
    r"using\s+(\w+)\s*=\s*(?:std\s*::\s*)?unordered_(?:map|set)\s*<")


def _decl_name_after_template(code, open_idx):
    """Given index of '<' in a container type, returns the declared
    variable name following the closing '>' (or None)."""
    end = match_delim(code, open_idx, "<", ">")
    m = re.match(r"\s*(?:&|\*)?\s*(\w+)", code[end:end + 160])
    if not m:
        return None
    name = m.group(1)
    if name in ("const", "GUARDED_BY", "ABSL_GUARDED_BY"):
        m2 = re.match(r"\s*(?:&|\*)?\s*\w+\s*(?:\([^)]*\)\s*)?(\w+)",
                      code[end:end + 200])
        return m2.group(1) if m2 else None
    return name


def collect_container_names(code):
    """Names declared with unordered / ordered container types in one
    file's code."""
    unordered, ordered = set(), set()
    aliases = set()
    for m in USING_UNORDERED_RE.finditer(code):
        aliases.add(m.group(1))
    for m in UNORDERED_DECL_RE.finditer(code):
        name = _decl_name_after_template(code, m.end() - 1)
        if name:
            unordered.add(name)
    for alias in aliases:
        for dm in re.finditer(r"\b" + re.escape(alias) + r"\s+(\w+)\s*[;={(]",
                              code):
            unordered.add(dm.group(1))
    for m in ORDERED_DECL_RE.finditer(code):
        name = _decl_name_after_template(code, m.end() - 1)
        if name:
            ordered.add(name)
    return unordered, ordered


FLOAT_DECL_RE = re.compile(
    r"\b(?:double|float|long\s+double)\s+(?:\*|&)?\s*(\w+)")
FLOAT_VEC_DECL_RE = re.compile(
    r"vector\s*<\s*(?:double|float|long\s+double)\s*>\s*(?:&|\*)?\s*(\w+)")
STREAM_DECL_RE = re.compile(
    r"\b(?:o?stringstream|ostream|ofstream)\s*&?\s*(\w+)")


def collect_float_names(code):
    names = set(m.group(1) for m in FLOAT_DECL_RE.finditer(code))
    names |= set(m.group(1) for m in FLOAT_VEC_DECL_RE.finditer(code))
    return names


RANGE_FOR_RE = re.compile(r"\bfor\s*\(")
COMPOUND_ASSIGN_RE = re.compile(r"\b(\w+)(?:\[[^\]]*\])?\s*[+\-*/]=[^=]")
APPEND_RE = re.compile(r"\b(\w+)\s*\.\s*(?:push_back|emplace_back|append)"
                       r"\s*\(")
FINGERPRINT_RE = re.compile(r"\.\s*Mix\w*\s*\(|Fingerprint\s*\("
                            r"|HashCombine\s*\(")
STREAM_WRITE_RE = re.compile(r"\b(\w+)\s*<<")


def iter_loops(code):
    """Yields (kind, head_start, head, body_start, body) for every
    for/while loop, bodies brace-matched (or single statement)."""
    for m in re.finditer(r"\b(for|while)\s*\(", code):
        kind = m.group(1)
        head_open = m.end() - 1
        head_close = match_delim(code, head_open, "(", ")")
        head = code[head_open:head_close]
        j = head_close
        n = len(code)
        while j < n and code[j] in " \t\n":
            j += 1
        if j < n and code[j] == "{":
            body_end = match_delim(code, j, "{", "}")
            yield kind, m.start(), head, j, code[j:body_end]
        elif j < n and code[j] == ";":
            continue  # do-while tail or empty body
        else:
            end = code.find(";", j)
            end = n if end < 0 else end + 1
            yield kind, m.start(), head, j, code[j:end]


def range_for_target(head):
    """Tail identifier of the range expression of `for (decl : expr)`,
    or None when not a range-for."""
    depth = 0
    for i, c in enumerate(head):
        if c in "(<[":
            depth += 1
        elif c in ")>]":
            depth -= 1
        elif c == ":" and depth == 1:
            if i + 1 < len(head) and head[i + 1] == ":":
                continue
            if i > 0 and head[i - 1] == ":":
                continue
            expr = head[i + 1:-1].strip()
            m = re.search(r"([A-Za-z_]\w*)\s*(?:\(\s*\))?$", expr)
            return m.group(1) if m else None
    return None


def declared_inside(name, body):
    """True when `name` is declared within the loop body (loop-local
    containers are order-independent by construction)."""
    return re.search(r"[\w>\]]\s*&?\s+" + re.escape(name) + r"\s*[;={(]",
                     body) is not None


class TextEngine:
    """Lexer-based fallback engine (see file comment)."""

    name = "text"

    def __init__(self):
        # Project-wide container-name maps, filled by prepare() for
        # tree runs; single-file runs (self-test) use file-local names.
        self.project_unordered = set()
        self.project_ambiguous = set()

    def prepare(self, files):
        unordered, ordered = set(), set()
        for _, text in files:
            u, o = collect_container_names(strip_code(text))
            unordered |= u
            ordered |= o
        self.project_unordered = unordered
        self.project_ambiguous = unordered & ordered

    def lint_file(self, path, raw_text):
        out = []
        code = strip_code(raw_text)
        in_src = path.startswith("src/")
        out.extend(check_layering(path, raw_text))
        out.extend(check_status_annotations(path, raw_text))
        out.extend(check_fault_sites(path, raw_text))
        if in_src:
            out.extend(self._check_unordered(path, raw_text, code))
            out.extend(self._check_cancel_poll(path, raw_text, code))
            out.extend(self._check_seed(path, raw_text, code))
        return out

    # -- unordered-determinism ------------------------------------------

    def _check_unordered(self, path, raw_text, code):
        local_u, local_o = collect_container_names(code)
        unordered = local_u | self.project_unordered
        # A name is ambiguous when some *other* file declares it with an
        # ordered container (cross-file name collision, e.g. `counts_`);
        # a local unordered declaration wins for this file. A name both
        # ordered and unordered within this same file stays ambiguous.
        ambiguous = (self.project_ambiguous - local_u) | (local_u & local_o)
        floats = collect_float_names(code)
        streams = set(m.group(1) for m in STREAM_DECL_RE.finditer(code))
        streams |= {"cout", "cerr", "os", "out_stream"}
        out = []
        for _, start, head, _, body in iter_loops(code):
            target = range_for_target(head)
            if target is None or target not in unordered:
                continue
            if target in ambiguous:
                continue  # name also declared ordered somewhere: unresolvable
            lineno = line_of(code, start)
            msg = None
            for m in COMPOUND_ASSIGN_RE.finditer(body):
                if m.group(1) in floats:
                    msg = (f"floating-point accumulation into "
                           f"'{m.group(1)}' under unordered iteration "
                           f"over '{target}' — float addition is not "
                           "commutative-associative, the result depends "
                           "on bucket order")
                    break
            if msg is None:
                for m in APPEND_RE.finditer(body):
                    tgt = m.group(1)
                    if not declared_inside(tgt, body):
                        msg = (f"appending to ordered container "
                               f"'{tgt}' in unordered iteration order "
                               f"over '{target}' — sort the keys or keep "
                               "an ordered mirror")
                        break
            if msg is None and FINGERPRINT_RE.search(body):
                msg = (f"fingerprint/hash material fed in unordered "
                       f"iteration order over '{target}' — use an "
                       "order-independent combine (XOR) or sort first")
            if msg is None:
                for m in STREAM_WRITE_RE.finditer(body):
                    if m.group(1) in streams:
                        msg = (f"stream output written in unordered "
                               f"iteration order over '{target}' — JSON/"
                               "log lines must be deterministic")
                        break
            if msg:
                out.append(finding(path, lineno, "unordered-determinism",
                                   msg))
        return out

    # -- cancel-poll ----------------------------------------------------

    def _check_cancel_poll(self, path, raw_text, code):
        # Scope approximation: a file that takes cancellation as input
        # (a CancelToken/StopRule parameter, or options .cancel/.soften
        # access) must keep every eval loop responsive. A mere type
        # definition or forward declaration does not count. (The clang
        # engine scopes this per-function.)
        threads_token = (
            re.search(r"(?:CancelToken|StopRule)\s*&?\s+\w+\s*[,)=]", code)
            or ".cancel" in code or ".soften" in code)
        if not threads_token:
            return []
        out = []
        for _, start, head, _, body in iter_loops(code):
            if not EVAL_CALL_RE.search(body):
                continue
            if TOKEN_MENTION_RE.search(body) or TOKEN_MENTION_RE.search(head):
                continue
            out.append(finding(
                path, line_of(code, start), "cancel-poll",
                "loop calls into repair evaluation without polling or "
                "forwarding a CancelToken; cancellation/deadlines cannot "
                "reach this work"))
        return out

    # -- seed-discipline ------------------------------------------------

    def _check_seed(self, path, raw_text, code):
        out = []
        # Statement granularity: chunks between ; { } at any nesting.
        for chunk_m in re.finditer(r"[^;{}]+", code):
            chunk = chunk_m.group(0)
            if TIME_SOURCE_RE.search(chunk) and SEEDISH_RE.search(chunk):
                out.append(finding(
                    path, line_of(code, chunk_m.start()
                                  + len(chunk) - len(chunk.lstrip())),
                    "seed-discipline",
                    "seed/RNG derived from thread id or wall clock; "
                    "per-shard seeds may mix only (base seed, shard "
                    "index) so replays are bit-identical"))
        return out


# ---------------------------------------------------------------------------
# Clang engine: real ASTs via clang.cindex
# ---------------------------------------------------------------------------

def load_cindex():
    """Returns the clang.cindex module with a usable libclang, or None."""
    try:
        import clang.cindex as ci
    except ImportError:
        return None
    lib = os.environ.get("TREX_LIBCLANG")
    if lib:
        ci.Config.set_library_file(lib)
    try:
        ci.Index.create()
        return ci
    except Exception:
        for candidate in (
                "libclang.so", "libclang-14.so", "libclang.so.1",
                "/usr/lib/llvm-14/lib/libclang.so.1",
                "/usr/lib/x86_64-linux-gnu/libclang-14.so.1"):
            try:
                ci.Config.loaded = False
                ci.Config.set_library_file(candidate)
                ci.Index.create()
                return ci
            except Exception:
                continue
    return None


FLOAT_TYPES = {"float", "double", "long double"}
APPEND_METHODS = {"push_back", "emplace_back", "append"}


class ClangEngine:
    """libclang-backed engine: same checks, real types and scopes."""

    name = "clang"

    def __init__(self, ci, root=None, compdb_dir=None):
        self.ci = ci
        self.index = ci.Index.create()
        self.root = root
        self.compdb = None
        if compdb_dir and os.path.exists(
                os.path.join(compdb_dir, "compile_commands.json")):
            self.compdb = ci.CompilationDatabase.fromDirectory(compdb_dir)

    def prepare(self, files):
        pass  # ASTs carry their own cross-file knowledge

    # -- parsing helpers ------------------------------------------------

    def _args_for(self, abspath):
        if self.compdb is not None:
            cmds = self.compdb.getCompileCommands(abspath)
            if cmds:
                args = list(cmds[0].arguments)[1:]  # drop compiler
                cleaned = []
                skip = False
                for a in args:
                    if skip:
                        skip = False
                        continue
                    if a in ("-c", abspath):
                        continue
                    if a == "-o":
                        skip = True
                        continue
                    cleaned.append(a)
                return cleaned
        inc = os.path.join(self.root, "src") if self.root else "src"
        return ["-x", "c++", "-std=c++20", "-I", inc]

    def parse_tu(self, abspath, unsaved=None, hermetic=False):
        if hermetic:
            args = ["-x", "c++", "-std=c++17", "-nostdinc", "-nostdinc++"]
        else:
            args = self._args_for(abspath)
        return self.index.parse(abspath, args=args, unsaved_files=unsaved)

    def lint_file(self, path, raw_text):
        """Single in-memory file (self-test path): hermetic parse."""
        tu = self.parse_tu(path, unsaved=[(path, raw_text)], hermetic=True)
        out = list(check_layering(path, raw_text))
        out.extend(check_status_annotations(path, raw_text))
        out.extend(check_fault_sites(path, raw_text))
        # Deduplicate: a statement can be reached as both a DECL_STMT
        # and its nested VAR_DECL, producing the same finding twice.
        out.extend(sorted(set(self._walk_tu(tu, {path: path}))))
        return out

    def lint_tree(self, root, rel_files):
        """Parses every .cc TU (and any header no TU pulled in) and
        collects findings for locations under src/."""
        findings = {}
        texts = dict(rel_files)
        abs_to_rel = {
            os.path.normpath(os.path.join(root, rel)): rel
            for rel, _ in rel_files}
        seen_headers = set()
        parse_errors = []
        ccs = [rel for rel, _ in rel_files if rel.endswith(".cc")]
        headers = [rel for rel, _ in rel_files if rel.endswith(".h")]
        for rel in ccs:
            abspath = os.path.normpath(os.path.join(root, rel))
            tu = self.parse_tu(abspath)
            fatal = [d for d in tu.diagnostics if d.severity >= 4]
            if fatal:
                parse_errors.append(finding(
                    rel, fatal[0].location.line if fatal[0].location else 0,
                    "layering",
                    f"parse failed: {fatal[0].spelling} (fix the build "
                    "or the compile database; an unparsed TU is "
                    "unchecked code)"))
                continue
            for f in self._walk_tu(tu, abs_to_rel):
                findings[(f[0], f[1], f[2], f[3])] = f
            for inc in tu.get_includes():
                p = os.path.normpath(str(inc.include.name))
                if p in abs_to_rel:
                    seen_headers.add(abs_to_rel[p])
        for rel in headers:
            if rel in seen_headers:
                continue
            abspath = os.path.normpath(os.path.join(root, rel))
            tu = self.parse_tu(abspath)
            for f in self._walk_tu(tu, abs_to_rel):
                findings[(f[0], f[1], f[2], f[3])] = f
        per_file = {}
        for f in findings.values():
            per_file.setdefault(f[0], []).append(f)
        out = list(parse_errors)
        for rel, text in rel_files:
            fs = per_file.get(rel, [])
            fs += check_layering(rel, text)
            fs += check_status_annotations(rel, text)
            fs += check_fault_sites(rel, text)
            by_line, bad = parse_suppressions(rel, text)
            out.extend(bad)
            out.extend(apply_suppressions(sorted(set(fs)), by_line))
        return out

    # -- AST walks ------------------------------------------------------

    def _rel_of(self, node, abs_to_rel):
        loc = node.location
        if loc.file is None:
            return None
        return abs_to_rel.get(os.path.normpath(str(loc.file.name)))

    def _walk_tu(self, tu, abs_to_rel):
        ci = self.ci
        K = ci.CursorKind
        out = []
        for node in tu.cursor.walk_preorder():
            rel = self._rel_of(node, abs_to_rel)
            if rel is None or not rel.startswith("src/"):
                continue
            if node.kind == K.CXX_FOR_RANGE_STMT:
                out.extend(self._unordered_range_for(node, rel))
            elif node.kind in (K.FUNCTION_DECL, K.CXX_METHOD,
                               K.FUNCTION_TEMPLATE):
                if node.is_definition():
                    out.extend(self._cancel_poll(node, rel))
                out.extend(self._status_discard_scan(node, rel))
            elif node.kind in (K.DECL_STMT, K.VAR_DECL):
                out.extend(self._seed_stmt(node, rel))
        return out

    @staticmethod
    def _canonical(t):
        try:
            return t.get_canonical().spelling
        except Exception:
            return t.spelling

    def _unordered_range_for(self, node, rel):
        K = self.ci.CursorKind
        kids = list(node.get_children())
        if len(kids) < 2:
            return []
        body = kids[-1]
        range_expr = None
        for k in kids[:-1]:
            if k.kind.is_expression():
                range_expr = k
        if range_expr is None:
            return []
        spelling = self._canonical(range_expr.type)
        if "unordered_map" not in spelling and "unordered_set" not in spelling:
            return []
        body_start = body.extent.start.offset
        body_end = body.extent.end.offset
        line = node.location.line
        out = []

        def decl_outside(expr_node):
            # Looks through the callee expression for the *object* the
            # method is invoked on (a variable/parameter/field); the
            # method declaration itself always lives outside the loop
            # and must not count.
            for sub in expr_node.walk_preorder():
                if sub.kind == K.DECL_REF_EXPR or \
                        sub.kind == K.MEMBER_REF_EXPR:
                    ref = sub.referenced
                    if ref is None:
                        continue
                    if ref.kind in (K.CXX_METHOD, K.FUNCTION_DECL,
                                    K.FUNCTION_TEMPLATE,
                                    K.CONVERSION_FUNCTION):
                        continue
                    loc = ref.location
                    if loc.file is None:
                        return True
                    off = loc.offset
                    same = os.path.normpath(str(loc.file.name)) == \
                        os.path.normpath(str(sub.location.file.name))
                    if not same or off < body_start or off > body_end:
                        return True
            return False

        for sub in body.walk_preorder():
            if sub.kind == K.COMPOUND_ASSIGNMENT_OPERATOR:
                t = self._canonical(sub.type)
                if t in FLOAT_TYPES:
                    out.append(finding(
                        rel, line, "unordered-determinism",
                        "floating-point accumulation under unordered "
                        "iteration — float addition is not commutative-"
                        "associative, the result depends on bucket "
                        "order"))
                    break
            if sub.kind == K.CALL_EXPR:
                name = sub.spelling or ""
                if name in APPEND_METHODS:
                    callee_kids = list(sub.get_children())
                    if callee_kids and decl_outside(callee_kids[0]):
                        out.append(finding(
                            rel, line, "unordered-determinism",
                            "appending to an ordered container declared "
                            "outside the loop in unordered iteration "
                            "order — sort the keys or keep an ordered "
                            "mirror"))
                        break
                if name.startswith("Mix") or "Fingerprint" in name \
                        or name == "HashCombine":
                    out.append(finding(
                        rel, line, "unordered-determinism",
                        "fingerprint/hash material fed in unordered "
                        "iteration order — use an order-independent "
                        "combine (XOR) or sort first"))
                    break
                if name == "operator<<":
                    args = list(sub.get_children())
                    if args and "ostream" in self._canonical(args[0].type):
                        out.append(finding(
                            rel, line, "unordered-determinism",
                            "stream output written in unordered "
                            "iteration order — JSON/log lines must be "
                            "deterministic"))
                        break
        return out

    def _cancel_poll(self, fn, rel):
        ci = self.ci
        K = ci.CursorKind
        params = [c for c in fn.get_children() if c.kind == K.PARM_DECL]
        token_params = [
            p for p in params
            if "CancelToken" in self._canonical(p.type)
            or "StopRule" in self._canonical(p.type)]
        body = None
        for c in fn.get_children():
            if c.kind == K.COMPOUND_STMT:
                body = c
        if body is None:
            return []
        has_member_token = False
        if not token_params:
            for sub in body.walk_preorder():
                if sub.kind == K.MEMBER_REF_EXPR and sub.spelling in (
                        "cancel", "soften"):
                    has_member_token = True
                    break
            if not has_member_token:
                return []
        out = []
        loop_kinds = (K.FOR_STMT, K.WHILE_STMT, K.DO_STMT,
                      K.CXX_FOR_RANGE_STMT)
        token_names = {p.spelling for p in token_params}

        def loop_is_covered(loop):
            for sub in loop.walk_preorder():
                if sub.kind == K.CALL_EXPR and sub.spelling == "cancelled":
                    return True
                if sub.kind == K.MEMBER_REF_EXPR and sub.spelling in (
                        "cancel", "soften"):
                    return True
                if sub.kind == K.DECL_REF_EXPR and sub.spelling in \
                        token_names:
                    return True
                if sub.kind == K.PARM_DECL:
                    continue
            return False

        def loop_has_eval(loop):
            for sub in loop.walk_preorder():
                if sub.kind == K.CALL_EXPR and sub.spelling in EVAL_CALLS:
                    return True
            return False

        for sub in body.walk_preorder():
            if sub.kind in loop_kinds:
                if loop_has_eval(sub) and not loop_is_covered(sub):
                    out.append(finding(
                        rel, sub.location.line, "cancel-poll",
                        "loop calls into repair evaluation without "
                        "polling or forwarding the function's "
                        "CancelToken; cancellation/deadlines cannot "
                        "reach this work"))
        return out

    def _status_discard_scan(self, fn, rel):
        """Part (b) of status-discipline: a Status/Result-typed call
        used as a whole expression statement is a discarded error."""
        ci = self.ci
        K = ci.CursorKind
        out = []
        body = None
        for c in fn.get_children():
            if c.kind == K.COMPOUND_STMT:
                body = c
        if body is None:
            return []
        for stmt_parent in body.walk_preorder():
            if stmt_parent.kind != K.COMPOUND_STMT:
                continue
            for child in stmt_parent.get_children():
                expr = child
                while expr.kind == K.UNEXPOSED_EXPR:
                    kids = list(expr.get_children())
                    if not kids:
                        break
                    expr = kids[0]
                if expr.kind != K.CALL_EXPR:
                    continue
                t = self._canonical(expr.type)
                if STATUS_TYPE_RE.search(t) and "StatusCode" not in t:
                    out.append(finding(
                        rel, child.location.line, "status-discipline",
                        f"call result of type '{t}' is discarded; handle "
                        "the Status or cast to void with a reason"))
        return out

    def _seed_stmt(self, node, rel):
        ext = node.extent
        try:
            tokens = " ".join(t.spelling for t in node.get_tokens())
        except Exception:
            return []
        if TIME_SOURCE_RE.search(tokens) and SEEDISH_RE.search(tokens):
            return [finding(
                rel, ext.start.line, "seed-discipline",
                "seed/RNG derived from thread id or wall clock; "
                "per-shard seeds may mix only (base seed, shard index) "
                "so replays are bit-identical")]
        return []


# ---------------------------------------------------------------------------
# Tree runner
# ---------------------------------------------------------------------------

def collect_files(root):
    out = []
    for top in ("src",):
        base = os.path.join(root, top)
        for dirpath, _, filenames in os.walk(base):
            for name in sorted(filenames):
                if not name.endswith((".h", ".cc")):
                    continue
                full = os.path.join(dirpath, name)
                rel = os.path.relpath(full, root).replace(os.sep, "/")
                with open(full, encoding="utf-8") as f:
                    out.append((rel, f.read()))
    return out


def lint_tree(engine, root):
    files = collect_files(root)
    engine.prepare(files)
    if isinstance(engine, ClangEngine):
        out = engine.lint_tree(root, files)
    else:
        out = []
        for rel, text in files:
            raw = engine.lint_file(rel, text)
            by_line, bad = parse_suppressions(rel, text)
            out.extend(bad)
            out.extend(apply_suppressions(raw, by_line))
    # fault-site-discipline spans files: site names must be unique
    # src-wide, and bench/ (outside the per-file walk) must stay
    # injection-free.
    out.extend(check_fault_site_uniqueness(files))
    for rel, text in collect_bench_files(root):
        by_line, bad = parse_suppressions(rel, text)
        out.extend(bad)
        out.extend(apply_suppressions(check_fault_sites(rel, text),
                                      by_line))
    return out


def lint_snippet(engine, path, text):
    """Self-test entry: one in-memory file, suppressions applied."""
    engine.prepare([(path, text)])
    raw = engine.lint_file(path, text)
    by_line, bad = parse_suppressions(path, text)
    return bad + apply_suppressions(raw, by_line)


# ---------------------------------------------------------------------------
# Self-test fixtures. The preamble is hermetic (no system headers) so
# the clang engine can parse snippets with -nostdinc and both engines
# see identical text.
# ---------------------------------------------------------------------------

PREAMBLE = r"""
namespace std {
typedef unsigned long size_t;
template <class A, class B> struct pair { A first; B second; };
template <class K, class V, class H = int> struct unordered_map {
  typedef pair<const K, V> value_type;
  value_type* begin() const;
  value_type* end() const;
};
template <class K, class H = int> struct unordered_set {
  const K* begin() const;
  const K* end() const;
};
template <class K, class V> struct map {
  typedef pair<const K, V> value_type;
  value_type* begin() const;
  value_type* end() const;
};
template <class T> struct vector {
  void push_back(const T&);
  T* begin() const;
  T* end() const;
  size_t size() const;
};
struct string { void append(const char*); };
struct ostream { };
ostream& operator<<(ostream&, double);
struct mt19937 { mt19937(unsigned long long); };
namespace chrono {
struct steady_clock {
  struct time_point { long long time_since_epoch_count; };
  static time_point now();
};
}
namespace this_thread { int get_id(); }
}
namespace trex {
class CancelToken {
 public:
  bool cancelled() const;
};
class Status {
 public:
  bool ok() const;
  [[nodiscard]] static Status Ok();
};
template <class T> class Result {
 public:
  bool ok() const;
};
struct Game {
  double Value(int coalition) const;
};
struct Hasher { void Mix(const void*, std::size_t); };
}
using namespace trex;
"""

BAD_FLOAT_FOLD = PREAMBLE + r"""
double Sum(const std::unordered_map<int, double>& weights) {
  double total = 0.0;
  for (const auto& kv : weights) {
    total += kv.second;
  }
  return total;
}
"""

GOOD_INT_FOLD = PREAMBLE + r"""
int Count(const std::unordered_map<int, int>& counts) {
  int total = 0;
  for (const auto& kv : counts) {
    total += kv.second;
  }
  return total;
}
"""

BAD_ORDERED_APPEND = PREAMBLE + r"""
void Keys(const std::unordered_set<int>& seen, std::vector<int>& out) {
  for (const auto& key : seen) {
    out.push_back(key);
  }
}
"""

GOOD_LOCAL_APPEND = PREAMBLE + r"""
void Probe(const std::unordered_map<int, int>& index) {
  for (const auto& kv : index) {
    std::vector<int> scratch;
    scratch.push_back(kv.second);
  }
}
"""

GOOD_ORDERED_MAP = PREAMBLE + r"""
double Sum(const std::map<int, double>& weights) {
  double total = 0.0;
  for (const auto& kv : weights) {
    total += kv.second;
  }
  return total;
}
"""

SUPPRESSED_FLOAT_FOLD = PREAMBLE + r"""
double Sum(const std::unordered_map<int, double>& weights) {
  double total = 0.0;
  // trex-check-ok(unordered-determinism): values are all exact powers of two
  for (const auto& kv : weights) {
    total += kv.second;
  }
  return total;
}
"""

BAD_SUPPRESSION_NO_REASON = PREAMBLE + r"""
double Sum(const std::unordered_map<int, double>& weights) {
  double total = 0.0;
  // trex-check-ok(unordered-determinism):
  for (const auto& kv : weights) {
    total += kv.second;
  }
  return total;
}
"""

BAD_SUPPRESSION_UNKNOWN = PREAMBLE + r"""
int x;  // trex-check-ok(made-up-check): whatever
"""

BAD_NO_POLL = PREAMBLE + r"""
double SweepAll(const Game& game, CancelToken token) {
  double total = 0.0;
  for (int i = 0; i < 100; ++i) {
    total += game.Value(i);
  }
  return total;
}
"""

GOOD_POLLED = PREAMBLE + r"""
double SweepAll(const Game& game, CancelToken token) {
  double total = 0.0;
  for (int i = 0; i < 100; ++i) {
    if (token.cancelled()) break;
    total += game.Value(i);
  }
  return total;
}
"""

GOOD_FORWARDED = PREAMBLE + r"""
double RunShard(const Game& game, CancelToken token);
double SweepAll(const Game& game, CancelToken token) {
  double total = 0.0;
  for (int shard = 0; shard < 4; ++shard) {
    total += RunShard(game, token);
  }
  return total;
}
"""

GOOD_NO_TOKEN_FN = PREAMBLE + r"""
double SweepAll(const Game& game) {
  double total = 0.0;
  for (int i = 0; i < 100; ++i) {
    total += game.Value(i);
  }
  return total;
}
"""

BAD_UPWARD_INCLUDE = """\
#include "serving/service.h"
#include "common/status.h"
"""

GOOD_DOWNWARD_INCLUDE = """\
#include "core/engine.h"
#include "common/status.h"
"""

BAD_MISSING_NODISCARD = PREAMBLE + r"""
namespace trex {
class Writer {
 public:
  Status Flush();
  [[nodiscard]] Status Sync();
};
}
"""

GOOD_NODISCARD_PREV_LINE = PREAMBLE + r"""
namespace trex {
class Writer {
 public:
  [[nodiscard]]
  Status Flush();
};
}
"""

BAD_DISCARDED_CALL = PREAMBLE + r"""
namespace trex {
Status Flush();
void Tick() {
  Flush();
}
}
"""

GOOD_HANDLED_CALL = PREAMBLE + r"""
namespace trex {
Status Flush();
void Tick() {
  Status s = Flush();
  (void)s;
}
}
"""

BAD_CLOCK_SEED = PREAMBLE + r"""
void Init() {
  std::mt19937 rng(
      std::chrono::steady_clock::now().time_since_epoch_count);
}
"""

BAD_THREAD_SEED = PREAMBLE + r"""
unsigned long long DeriveSeed(unsigned long long base) {
  unsigned long long seed = base ^ std::this_thread::get_id();
  return seed;
}
"""

GOOD_SHARD_SEED = PREAMBLE + r"""
unsigned long long DeriveSeed(unsigned long long base, int shard) {
  unsigned long long seed = base + static_cast<unsigned long long>(shard);
  return seed;
}
"""

FAULT_PREAMBLE = PREAMBLE + r"""
#define TREX_FAULT_INJECT(site) (void)(site)
"""

GOOD_FAULT_SITE = FAULT_PREAMBLE + r"""
namespace trex {
Status CallBackend() {
  TREX_FAULT_INJECT("repair.fixture_backend");
  return Status::Ok();
}
}
"""

BAD_FAULT_DIRECT_INJECTOR = FAULT_PREAMBLE + r"""
namespace trex {
void Touch() {
  fault::FaultInjector::Instance();
}
}
"""

BAD_FAULT_COMPUTED_SITE = FAULT_PREAMBLE + r"""
namespace trex {
Status CallBackend(const char* site) {
  TREX_FAULT_INJECT(site);
  return Status::Ok();
}
}
"""

BAD_FAULT_DUPLICATE_SITE = FAULT_PREAMBLE + r"""
namespace trex {
Status First() {
  TREX_FAULT_INJECT("repair.fixture_dup");
  return Status::Ok();
}
Status Second() {
  TREX_FAULT_INJECT("repair.fixture_dup");
  return Status::Ok();
}
}
"""

GOOD_FAULT_COMMENTED_SITE = FAULT_PREAMBLE + r"""
namespace trex {
Status CallBackend() {
  // TREX_FAULT_INJECT("repair.fixture_commented");
  TREX_FAULT_INJECT("repair.fixture_live");
  return Status::Ok();
}
}
"""

BAD_FAULT_IN_BENCH = FAULT_PREAMBLE + r"""
namespace trex {
Status Measure() {
  TREX_FAULT_INJECT("bench.fixture_site");
  return Status::Ok();
}
}
"""

SELF_TEST_CASES = [
    FixtureCase("unordered-determinism", "src/core/bad_fold.cc",
                BAD_FLOAT_FOLD, 1),
    FixtureCase("unordered-determinism", "src/core/good_fold.cc",
                GOOD_INT_FOLD, 0),
    FixtureCase("unordered-determinism", "src/core/bad_append.cc",
                BAD_ORDERED_APPEND, 1),
    FixtureCase("unordered-determinism", "src/core/good_local.cc",
                GOOD_LOCAL_APPEND, 0),
    FixtureCase("unordered-determinism", "src/core/good_map.cc",
                GOOD_ORDERED_MAP, 0),
    FixtureCase("unordered-determinism", "src/core/suppressed.cc",
                SUPPRESSED_FLOAT_FOLD, 0),
    FixtureCase("suppression", "src/core/suppressed.cc",
                SUPPRESSED_FLOAT_FOLD, 0),
    FixtureCase("suppression", "src/core/bad_reason.cc",
                BAD_SUPPRESSION_NO_REASON, 1),
    # With the malformed suppression rejected, the underlying finding
    # must resurface rather than being silently eaten.
    FixtureCase("unordered-determinism", "src/core/bad_reason.cc",
                BAD_SUPPRESSION_NO_REASON, 1),
    FixtureCase("suppression", "src/core/bad_unknown.cc",
                BAD_SUPPRESSION_UNKNOWN, 1),

    FixtureCase("cancel-poll", "src/core/bad_no_poll.cc", BAD_NO_POLL, 1),
    FixtureCase("cancel-poll", "src/core/good_polled.cc", GOOD_POLLED, 0),
    FixtureCase("cancel-poll", "src/core/good_forwarded.cc",
                GOOD_FORWARDED, 0),
    FixtureCase("cancel-poll", "src/core/good_no_token.cc",
                GOOD_NO_TOKEN_FN, 0),

    FixtureCase("layering", "src/core/bad_upward.h", BAD_UPWARD_INCLUDE, 1),
    FixtureCase("layering", "src/serving/good_downward.h",
                GOOD_DOWNWARD_INCLUDE, 0),
    FixtureCase("layering", "tests/core/exempt_test.cc",
                BAD_UPWARD_INCLUDE, 0),

    FixtureCase("status-discipline", "src/table/bad_writer.h",
                BAD_MISSING_NODISCARD, 1),
    FixtureCase("status-discipline", "src/table/good_writer.h",
                GOOD_NODISCARD_PREV_LINE, 0),
    # Call-site discard needs a real AST; the text engine leans on the
    # class-level [[nodiscard]] + -Werror=unused-result for this half.
    FixtureCase("status-discipline", "src/table/bad_discard.cc",
                BAD_DISCARDED_CALL, 1, engines={"clang"}),
    FixtureCase("status-discipline", "src/table/good_discard.cc",
                GOOD_HANDLED_CALL, 0),

    FixtureCase("seed-discipline", "src/core/bad_clock_seed.cc",
                BAD_CLOCK_SEED, 1),
    FixtureCase("seed-discipline", "src/core/bad_thread_seed.cc",
                BAD_THREAD_SEED, 1),
    FixtureCase("seed-discipline", "src/core/good_shard_seed.cc",
                GOOD_SHARD_SEED, 0),

    FixtureCase("fault-site-discipline", "src/repair/good_site.cc",
                GOOD_FAULT_SITE, 0),
    FixtureCase("fault-site-discipline", "src/repair/bad_direct.cc",
                BAD_FAULT_DIRECT_INJECTOR, 1),
    FixtureCase("fault-site-discipline", "src/repair/bad_computed.cc",
                BAD_FAULT_COMPUTED_SITE, 1),
    FixtureCase("fault-site-discipline", "src/repair/bad_dup.cc",
                BAD_FAULT_DUPLICATE_SITE, 1),
    FixtureCase("fault-site-discipline", "src/repair/good_commented.cc",
                GOOD_FAULT_COMMENTED_SITE, 0),
    FixtureCase("fault-site-discipline", "bench/bad_bench_site.cc",
                BAD_FAULT_IN_BENCH, 1),
    # Tests arm plans and read counters by design: the direct-use rule
    # must not reach outside src/.
    FixtureCase("fault-site-discipline", "tests/common/arms_plans_test.cc",
                BAD_FAULT_DIRECT_INJECTOR, 0),
]


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------

def make_engine(kind, root=None, compdb=None):
    if kind in ("auto", "clang"):
        ci = load_cindex()
        if ci is not None:
            return ClangEngine(ci, root=root, compdb_dir=compdb)
        if kind == "clang":
            print("trex_check: --engine clang requested but libclang is "
                  "not available (pip wheel 'libclang' or TREX_LIBCLANG)",
                  file=sys.stderr)
            return None
    return TextEngine()


def main():
    parser = argparse.ArgumentParser(
        description=__doc__.splitlines()[0])
    parser.add_argument("--root", default=None,
                        help="repo root (default: parent of this script)")
    parser.add_argument("--engine", default="auto",
                        choices=("auto", "clang", "text"),
                        help="auto prefers libclang, falls back to the "
                             "text engine")
    parser.add_argument("--compdb", default=None,
                        help="directory holding compile_commands.json "
                             "(clang engine)")
    parser.add_argument("--self-test", action="store_true",
                        help="run the embedded fixture self-test and exit")
    parser.add_argument("--list-checks", action="store_true")
    args = parser.parse_args()

    if args.list_checks:
        for c in CHECKS:
            print(c)
        return 0

    root = args.root or os.path.dirname(
        os.path.dirname(os.path.abspath(__file__)))
    compdb = args.compdb or os.path.join(root, "build")

    engine = make_engine(args.engine, root=root, compdb=compdb)
    if engine is None:
        return 2

    if args.self_test:
        def lint_fn(path, snippet):
            e = make_engine(args.engine, root=root, compdb=None)
            return lint_snippet(e, path, snippet)
        return run_fixture_cases(SELF_TEST_CASES, lint_fn, "trex_check",
                                 engine_name=engine.name)

    findings = lint_tree(engine, root)
    findings.sort()
    for path, line, check, msg in findings:
        print(f"{path}:{line}: [{check}] {msg}")
    if findings:
        print(f"trex_check[{engine.name}]: {len(findings)} finding(s)",
              file=sys.stderr)
        return 1
    print(f"trex_check[{engine.name}]: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
