#!/usr/bin/env python3
"""Project-invariant linter for the T-REx tree.

Enforces conventions that the compiler cannot:

  raw-mutex
      `src/` code must use the annotated `trex::Mutex` / `trex::SharedMutex`
      wrappers from `common/mutex.h`, never the raw standard-library
      primitives. The wrappers carry Clang thread-safety capabilities; a
      raw `std::mutex` is invisible to `-Wthread-safety` and silently
      punches a hole in the compile-time lock contract. Only
      `common/mutex.h` itself may touch the raw types.

  determinism
      `src/` code must not call `std::rand` / `srand` or construct a
      `std::random_device`. Engine results are replayed and compared
      across runs and backends; all randomness must flow from explicitly
      seeded generators owned by the caller.

  fingerprint-length-prefix
      Fingerprint material must be length-prefixed: a
      `Mix(x.data(), x.size())` over variable-length bytes must be
      preceded by mixing the length itself (`Mix(&len, sizeof(len))`).
      Without the prefix, ("ab","c") and ("a","bc") hash identically and
      the router/memo fingerprints collide across distinct inputs.

  sleep-discipline
      Concurrency test fixtures must not use bare
      `std::this_thread::sleep_for` as a synchronization mechanism —
      sleeps hide races and make tests flaky under load. A sleep that is
      deliberate (e.g. simulating a slow algorithm) must carry a
      `sleep-ok: <reason>` comment on the same or the preceding line.

Usage:
    lint_invariants.py [--root DIR]   lint the tree (exit 1 on violations)
    lint_invariants.py --self-test    run the embedded rule self-test

The self-test feeds each rule a known-bad and a known-good snippet and
fails if any bad snippet passes or any good snippet is flagged, so a
regex regression in this file cannot silently disable a rule. The
fixture harness is shared with tools/trex_check.py via lint_common.py.
"""

import argparse
import os
import re
import sys

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
from lint_common import FixtureCase, run_fixture_cases  # noqa: E402

# ---------------------------------------------------------------------------
# Rule machinery
# ---------------------------------------------------------------------------

RAW_MUTEX_RE = re.compile(
    r"std::(?:recursive_|timed_|recursive_timed_)?mutex\b"
    r"|std::shared_(?:timed_)?mutex\b"
    r"|std::(?:lock_guard|unique_lock|shared_lock|scoped_lock)\b"
    r"|std::condition_variable(?:_any)?\b"
    r"|#\s*include\s*<(?:mutex|shared_mutex|condition_variable)>"
)

DETERMINISM_RE = re.compile(
    r"std::rand\b|\bsrand\s*\(|\brandom_device\b"
)

MIX_BYTES_RE = re.compile(
    r"Mix\w*\(\s*([A-Za-z_][\w.\->()\[\]]*?)\.data\(\)\s*,\s*"
    r"\1\.size\(\)\s*\)"
)
MIX_LENGTH_RE = re.compile(r"Mix\w*\(\s*&\w+\s*,\s*sizeof\b")
LENGTH_PREFIX_WINDOW = 4  # lines preceding the bytes-mix to search

SLEEP_RE = re.compile(r"\bsleep_for\s*\(")


def split_comment(line):
    """Return (code, comment) halves of a line, splitting at '//'."""
    idx = line.find("//")
    if idx < 0:
        return line, ""
    return line[:idx], line[idx:]


def lint_raw_mutex(path, lines):
    violations = []
    for i, line in enumerate(lines, 1):
        code, comment = split_comment(line)
        if "raw-mutex-ok:" in comment:
            continue
        if RAW_MUTEX_RE.search(code):
            violations.append(
                (i, "raw-mutex",
                 "raw standard-library mutex primitive; use the annotated "
                 "wrappers from common/mutex.h"))
    return violations


def lint_determinism(path, lines):
    violations = []
    for i, line in enumerate(lines, 1):
        code, comment = split_comment(line)
        if "rand-ok:" in comment:
            continue
        if DETERMINISM_RE.search(code):
            violations.append(
                (i, "determinism",
                 "unseeded randomness source; results must replay "
                 "deterministically — take an explicit seed"))
    return violations


def lint_length_prefix(path, lines):
    violations = []
    for i, line in enumerate(lines, 1):
        code, comment = split_comment(line)
        if "len-ok:" in comment:
            continue
        if not MIX_BYTES_RE.search(code):
            continue
        window = lines[max(0, i - 1 - LENGTH_PREFIX_WINDOW):i - 1]
        if any(MIX_LENGTH_RE.search(split_comment(w)[0]) for w in window):
            continue
        violations.append(
            (i, "fingerprint-length-prefix",
             "variable-length bytes mixed into a fingerprint without a "
             "preceding length mix; mix the length first (or annotate "
             "'len-ok: <reason>')"))
    return violations


def lint_sleep(path, lines):
    violations = []
    for i, line in enumerate(lines, 1):
        code, comment = split_comment(line)
        if not SLEEP_RE.search(code):
            continue
        preceding = lines[max(0, i - 3):i - 1]
        if "sleep-ok:" in comment or any("sleep-ok:" in p
                                         for p in preceding):
            continue
        violations.append(
            (i, "sleep-discipline",
             "bare sleep_for in a concurrency fixture; synchronize with "
             "gates/latches, or annotate 'sleep-ok: <reason>'"))
    return violations


# Each entry: (rule name, lint fn, path predicate).
def _in_src(rel):
    return rel.startswith("src/")


def _in_src_not_mutex(rel):
    return rel.startswith("src/") and rel != "src/common/mutex.h"


def _in_concurrency_tests(rel):
    return (rel.startswith("tests/serving/")
            or rel == "tests/common/thread_pool_test.cc")


RULES = [
    ("raw-mutex", lint_raw_mutex, _in_src_not_mutex),
    ("determinism", lint_determinism, _in_src),
    ("fingerprint-length-prefix", lint_length_prefix, _in_src),
    ("sleep-discipline", lint_sleep, _in_concurrency_tests),
]


def lint_file(rel, lines):
    violations = []
    for _, fn, applies in RULES:
        if applies(rel):
            violations.extend((rel, n, rule, msg)
                              for n, rule, msg in fn(rel, lines))
    return violations


def lint_tree(root):
    violations = []
    for top in ("src", "tests"):
        for dirpath, _, filenames in os.walk(os.path.join(root, top)):
            for name in sorted(filenames):
                if not name.endswith((".h", ".cc")):
                    continue
                full = os.path.join(dirpath, name)
                rel = os.path.relpath(full, root).replace(os.sep, "/")
                with open(full, encoding="utf-8") as f:
                    lines = f.read().splitlines()
                violations.extend(lint_file(rel, lines))
    return violations


# ---------------------------------------------------------------------------
# Self-test: every rule must fire on its bad snippet and stay quiet on
# the good one.
# ---------------------------------------------------------------------------

SELF_TEST_CASES = [
    FixtureCase("raw-mutex", "src/serving/bad.cc",
                "std::mutex mu;\n"
                "std::lock_guard<std::mutex> g(mu);\n", 2),
    FixtureCase("raw-mutex", "src/serving/bad_include.cc",
                "#include <condition_variable>\n", 1),
    FixtureCase("raw-mutex", "src/serving/good.cc",
                "Mutex mu;\nMutexLock lock(mu);\n", 0),
    FixtureCase("raw-mutex", "src/common/mutex.h",  # the one exempted file
                "std::mutex raw_;\n", 0),
    FixtureCase("raw-mutex", "src/serving/suppressed.cc",
                "std::mutex mu;  // raw-mutex-ok: interop with external "
                "API\n", 0),

    FixtureCase("determinism", "src/repair/bad.cc",
                "int x = std::rand();\n"
                "std::random_device rd;\n", 2),
    FixtureCase("determinism", "src/repair/good.cc",
                "std::mt19937_64 rng(options.seed);\n", 0),

    FixtureCase("fingerprint-length-prefix", "src/table/bad.cc",
                "void F(Hasher* h, const std::string& s) {\n"
                "  h->Mix(s.data(), s.size());\n"
                "}\n", 1),
    FixtureCase("fingerprint-length-prefix", "src/table/good.cc",
                "void F(Hasher* h, const std::string& s) {\n"
                "  const std::uint64_t length = s.size();\n"
                "  h->Mix(&length, sizeof(length));\n"
                "  h->Mix(s.data(), s.size());\n"
                "}\n", 0),
    FixtureCase("fingerprint-length-prefix", "src/table/far.cc",
                "void F(Hasher* h, const std::string& s) {\n"
                "  const std::uint64_t length = s.size();\n"
                "  h->Mix(&length, sizeof(length));\n"
                "  int a;\n  int b;\n  int c;\n  int d;\n"
                "  h->Mix(s.data(), s.size());\n"
                "}\n", 1),  # length mix outside the window doesn't count

    FixtureCase("sleep-discipline", "tests/serving/bad_test.cc",
                "std::this_thread::sleep_for("
                "std::chrono::milliseconds(50));\n", 1),
    FixtureCase("sleep-discipline", "tests/serving/good_test.cc",
                "// sleep-ok: simulates a slow algorithm, not a sync "
                "point\n"
                "std::this_thread::sleep_for(pad_);\n", 0),
    FixtureCase("sleep-discipline", "tests/table/elsewhere_test.cc",
                "std::this_thread::sleep_for("
                "std::chrono::milliseconds(1));\n", 0),
]


def self_test():
    return run_fixture_cases(
        SELF_TEST_CASES,
        lambda path, snippet: lint_file(path, snippet.splitlines()),
        "lint_invariants")


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--root", default=None,
                        help="repo root (default: parent of this script)")
    parser.add_argument("--self-test", action="store_true",
                        help="run the embedded rule self-test and exit")
    args = parser.parse_args()

    if args.self_test:
        return self_test()

    root = args.root or os.path.dirname(
        os.path.dirname(os.path.abspath(__file__)))
    violations = lint_tree(root)
    for rel, line, rule, msg in violations:
        print(f"{rel}:{line}: [{rule}] {msg}")
    if violations:
        print(f"{len(violations)} violation(s)", file=sys.stderr)
        return 1
    print("lint_invariants: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
