#include "repair/fd_repair.h"

#include <gtest/gtest.h>

#include "data/soccer.h"
#include "dc/parser.h"
#include "dc/violation.h"

namespace trex::repair {
namespace {

Schema TestSchema() {
  return Schema::AllStrings({"Team", "City", "Country"});
}

dc::DcSet TwoFds() {
  auto dcs = dc::ParseDcSet(R"(
C1: !(t1.Team == t2.Team & t1.City != t2.City)
C2: !(t1.City == t2.City & t1.Country != t2.Country)
)",
                            TestSchema());
  EXPECT_TRUE(dcs.ok());
  return std::move(dcs).value();
}

TEST(FdRepairTest, MergesEquivalenceClassesToMajority) {
  Table dirty(TestSchema());
  ASSERT_TRUE(
      dirty.AppendRow({Value("Real"), Value("Madrid"), Value("Spain")})
          .ok());
  ASSERT_TRUE(
      dirty.AppendRow({Value("Real"), Value("Madrid"), Value("Spain")})
          .ok());
  ASSERT_TRUE(
      dirty.AppendRow({Value("Real"), Value("Capital"), Value("Spain")})
          .ok());
  FdRepair alg;
  auto clean = alg.Repair(TwoFds(), dirty);
  ASSERT_TRUE(clean.ok());
  EXPECT_EQ(clean->at(2, 1), Value("Madrid"));
  EXPECT_TRUE(dc::FindViolations(*clean, TwoFds()).empty());
}

TEST(FdRepairTest, CascadingFdsReachFixpoint) {
  // Fixing City by Team creates a new City group whose Country must then
  // be merged — needs a second pass.
  Table dirty(TestSchema());
  ASSERT_TRUE(
      dirty.AppendRow({Value("Real"), Value("Madrid"), Value("Spain")})
          .ok());
  ASSERT_TRUE(
      dirty.AppendRow({Value("Real"), Value("Madrid"), Value("Spain")})
          .ok());
  ASSERT_TRUE(
      dirty.AppendRow({Value("Real"), Value("Capital"), Value("España")})
          .ok());
  FdRepair alg;
  auto clean = alg.Repair(TwoFds(), dirty);
  ASSERT_TRUE(clean.ok());
  EXPECT_EQ(clean->at(2, 1), Value("Madrid"));
  EXPECT_EQ(clean->at(2, 2), Value("Spain"));
  EXPECT_TRUE(dc::FindViolations(*clean, TwoFds()).empty());
}

TEST(FdRepairTest, TieBreaksTowardSmallerValue) {
  Table dirty(TestSchema());
  ASSERT_TRUE(
      dirty.AppendRow({Value("Real"), Value("Zeta"), Value("Spain")}).ok());
  ASSERT_TRUE(
      dirty.AppendRow({Value("Real"), Value("Alpha"), Value("Spain")})
          .ok());
  FdRepair alg;
  auto clean = alg.Repair(TwoFds(), dirty);
  ASSERT_TRUE(clean.ok());
  EXPECT_EQ(clean->at(0, 1), Value("Alpha"));
  EXPECT_EQ(clean->at(1, 1), Value("Alpha"));
}

TEST(FdRepairTest, IgnoresNonFdConstraints) {
  // C4-style multi-predicate constraint is not FD-shaped; FdRepair must
  // leave its violations alone (and not crash).
  const Schema schema = data::SoccerSchema();
  auto dcs = dc::ParseDcSet(
      "!(t1.Team != t2.Team & t1.Year == t2.Year & t1.League == t2.League "
      "& t1.Place == t2.Place)",
      schema);
  ASSERT_TRUE(dcs.ok());
  FdRepair alg;
  auto repaired = alg.Repair(*dcs, data::SoccerDirtyTable());
  ASSERT_TRUE(repaired.ok());
  EXPECT_EQ(*repaired, data::SoccerDirtyTable());
}

TEST(FdRepairTest, RepairsSoccerCityViaTeamFd) {
  FdRepair alg;
  auto clean =
      alg.Repair(data::SoccerConstraints(), data::SoccerDirtyTable());
  ASSERT_TRUE(clean.ok());
  // C1 = Team -> City merges t5's Capital into Madrid (3-1 majority).
  EXPECT_EQ(clean->at(data::SoccerCell(5, "City")), Value("Madrid"));
  // C3 = League -> Country merges España into Spain.
  EXPECT_EQ(clean->at(data::SoccerCell(5, "Country")), Value("Spain"));
}

TEST(FdRepairTest, NullKeysGiveNoEvidence) {
  Table dirty(TestSchema());
  ASSERT_TRUE(
      dirty.AppendRow({Value::Null(), Value("Madrid"), Value("Spain")})
          .ok());
  ASSERT_TRUE(
      dirty.AppendRow({Value::Null(), Value("Capital"), Value("Spain")})
          .ok());
  FdRepair alg;
  auto clean = alg.Repair(TwoFds(), dirty);
  ASSERT_TRUE(clean.ok());
  EXPECT_EQ(*clean, dirty);  // null keys group nothing
}

TEST(FdRepairTest, NullTargetGetsMajorityValue) {
  Table dirty(TestSchema());
  ASSERT_TRUE(
      dirty.AppendRow({Value("Real"), Value("Madrid"), Value("Spain")})
          .ok());
  ASSERT_TRUE(
      dirty.AppendRow({Value("Real"), Value::Null(), Value("Spain")}).ok());
  FdRepair alg;
  auto clean = alg.Repair(TwoFds(), dirty);
  ASSERT_TRUE(clean.ok());
  EXPECT_EQ(clean->at(1, 1), Value("Madrid"));
}

TEST(FdRepairTest, Deterministic) {
  FdRepair alg;
  auto a = alg.Repair(data::SoccerConstraints(), data::SoccerDirtyTable());
  auto b = alg.Repair(data::SoccerConstraints(), data::SoccerDirtyTable());
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(*a, *b);
}

TEST(FdRepairTest, InfluenceGraphCoversFdEdges) {
  FdRepair alg;
  const Schema schema = TestSchema();
  auto graph = alg.InfluenceGraph(TwoFds(), schema);
  ASSERT_TRUE(graph.has_value());
  // Country is influenced by City (C2) and transitively by Team (C1).
  const auto influencers = graph->InfluencingColumns(2);
  EXPECT_EQ(influencers, (std::set<std::size_t>{0, 1, 2}));
}

}  // namespace
}  // namespace trex::repair
