#include "repair/metrics.h"

#include <gtest/gtest.h>

#include "data/soccer.h"
#include "dc/parser.h"

namespace trex::repair {
namespace {

Schema TestSchema() { return Schema::AllStrings({"A", "B"}); }

Table MakeTable(std::initializer_list<std::pair<const char*, const char*>>
                    rows) {
  Table t(TestSchema());
  for (const auto& [a, b] : rows) {
    EXPECT_TRUE(t.AppendRow({Value(a), Value(b)}).ok());
  }
  return t;
}

TEST(MetricsTest, PerfectRepair) {
  const Table truth = MakeTable({{"x", "y"}, {"p", "q"}});
  Table dirty = truth;
  dirty.Set(0, 0, Value("bad"));
  auto quality = EvaluateRepair(dirty, truth, truth, dc::DcSet{});
  ASSERT_TRUE(quality.ok());
  EXPECT_EQ(quality->cells_changed, 1u);
  EXPECT_EQ(quality->correct_changes, 1u);
  EXPECT_EQ(quality->true_errors, 1u);
  EXPECT_EQ(quality->errors_fixed, 1u);
  EXPECT_DOUBLE_EQ(quality->precision, 1.0);
  EXPECT_DOUBLE_EQ(quality->recall, 1.0);
  EXPECT_DOUBLE_EQ(quality->f1, 1.0);
}

TEST(MetricsTest, NoRepairGivesZeroRecall) {
  const Table truth = MakeTable({{"x", "y"}});
  Table dirty = truth;
  dirty.Set(0, 0, Value("bad"));
  auto quality = EvaluateRepair(dirty, dirty, truth, dc::DcSet{});
  ASSERT_TRUE(quality.ok());
  EXPECT_EQ(quality->cells_changed, 0u);
  EXPECT_DOUBLE_EQ(quality->precision, 1.0);  // vacuous
  EXPECT_DOUBLE_EQ(quality->recall, 0.0);
  EXPECT_DOUBLE_EQ(quality->f1, 0.0);
}

TEST(MetricsTest, WrongChangesHurtPrecision) {
  const Table truth = MakeTable({{"x", "y"}, {"p", "q"}});
  Table dirty = truth;
  dirty.Set(0, 0, Value("bad"));
  Table repaired = dirty;
  repaired.Set(0, 0, Value("x"));      // correct fix
  repaired.Set(1, 1, Value("wrong"));  // collateral damage
  auto quality = EvaluateRepair(dirty, repaired, truth, dc::DcSet{});
  ASSERT_TRUE(quality.ok());
  EXPECT_EQ(quality->cells_changed, 2u);
  EXPECT_EQ(quality->correct_changes, 1u);
  EXPECT_DOUBLE_EQ(quality->precision, 0.5);
  EXPECT_DOUBLE_EQ(quality->recall, 1.0);
  EXPECT_NEAR(quality->f1, 2 * 0.5 / 1.5, 1e-12);
}

TEST(MetricsTest, WrongValueRepairNotCounted) {
  const Table truth = MakeTable({{"x", "y"}});
  Table dirty = truth;
  dirty.Set(0, 0, Value("bad"));
  Table repaired = dirty;
  repaired.Set(0, 0, Value("still-bad"));  // changed but wrong
  auto quality = EvaluateRepair(dirty, repaired, truth, dc::DcSet{});
  ASSERT_TRUE(quality.ok());
  EXPECT_EQ(quality->correct_changes, 0u);
  EXPECT_EQ(quality->errors_fixed, 0u);
  EXPECT_DOUBLE_EQ(quality->precision, 0.0);
  EXPECT_DOUBLE_EQ(quality->recall, 0.0);
  EXPECT_DOUBLE_EQ(quality->f1, 0.0);
}

TEST(MetricsTest, NullAwareComparison) {
  const Table truth = MakeTable({{"x", "y"}});
  Table dirty = truth;
  dirty.Set(0, 0, Value::Null());  // missing-value error
  Table repaired = dirty;
  repaired.Set(0, 0, Value("x"));
  auto quality = EvaluateRepair(dirty, repaired, truth, dc::DcSet{});
  ASSERT_TRUE(quality.ok());
  EXPECT_EQ(quality->true_errors, 1u);
  EXPECT_EQ(quality->errors_fixed, 1u);
  EXPECT_DOUBLE_EQ(quality->recall, 1.0);
}

TEST(MetricsTest, ResidualViolationsCounted) {
  const Schema schema = data::SoccerSchema();
  auto quality = EvaluateRepair(
      data::SoccerDirtyTable(), data::SoccerDirtyTable(),
      data::SoccerCleanTable(), data::SoccerConstraints());
  ASSERT_TRUE(quality.ok());
  EXPECT_GT(quality->residual_violations, 0u);

  auto clean_quality = EvaluateRepair(
      data::SoccerDirtyTable(), data::SoccerCleanTable(),
      data::SoccerCleanTable(), data::SoccerConstraints());
  ASSERT_TRUE(clean_quality.ok());
  EXPECT_EQ(clean_quality->residual_violations, 0u);
}

TEST(MetricsTest, ShapeMismatchRejected) {
  const Table truth = MakeTable({{"x", "y"}});
  const Table two_rows = MakeTable({{"x", "y"}, {"p", "q"}});
  EXPECT_FALSE(EvaluateRepair(truth, truth, two_rows, dc::DcSet{}).ok());
  Table other_schema(Schema::AllStrings({"Z"}));
  ASSERT_TRUE(other_schema.AppendRow({Value("v")}).ok());
  EXPECT_FALSE(
      EvaluateRepair(truth, other_schema, truth, dc::DcSet{}).ok());
}

TEST(MetricsTest, ToStringMentionsKeyNumbers) {
  RepairQuality q;
  q.precision = 0.5;
  q.recall = 0.25;
  q.f1 = 1.0 / 3.0;
  q.cells_changed = 4;
  const std::string s = q.ToString();
  EXPECT_NE(s.find("precision=0.500"), std::string::npos);
  EXPECT_NE(s.find("recall=0.250"), std::string::npos);
  EXPECT_NE(s.find("changed=4"), std::string::npos);
}

}  // namespace
}  // namespace trex::repair
