#include "repair/holistic.h"

#include <gtest/gtest.h>

#include "data/errors.h"
#include "data/generator.h"
#include "data/soccer.h"
#include "dc/parser.h"
#include "dc/violation.h"

namespace trex::repair {
namespace {

TEST(HolisticTest, EliminatesViolationsOnSoccerTable) {
  HolisticRepair alg;
  auto clean =
      alg.Repair(data::SoccerConstraints(), data::SoccerDirtyTable());
  ASSERT_TRUE(clean.ok()) << clean.status();
  EXPECT_TRUE(
      dc::FindViolations(*clean, data::SoccerConstraints()).empty());
}

TEST(HolisticTest, CleanInputIsUntouched) {
  HolisticRepair alg;
  auto repaired =
      alg.Repair(data::SoccerConstraints(), data::SoccerCleanTable());
  ASSERT_TRUE(repaired.ok());
  EXPECT_EQ(*repaired, data::SoccerCleanTable());
}

TEST(HolisticTest, Deterministic) {
  HolisticRepair alg;
  auto a = alg.Repair(data::SoccerConstraints(), data::SoccerDirtyTable());
  auto b = alg.Repair(data::SoccerConstraints(), data::SoccerDirtyTable());
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(*a, *b);
}

TEST(HolisticTest, GreedyCoverPicksHighDegreeCell) {
  // Three tuples share Team 'Real' but have three different cities; the
  // MVC heuristic should converge by changing the minority cities (or
  // one pivot cell), not by rewriting unrelated cells.
  const Schema schema = Schema::AllStrings({"Team", "City"});
  auto dcs =
      dc::ParseDcSet("!(t1.Team == t2.Team & t1.City != t2.City)", schema);
  ASSERT_TRUE(dcs.ok());
  Table dirty(schema);
  ASSERT_TRUE(dirty.AppendRow({Value("Real"), Value("Madrid")}).ok());
  ASSERT_TRUE(dirty.AppendRow({Value("Real"), Value("Madrid")}).ok());
  ASSERT_TRUE(dirty.AppendRow({Value("Real"), Value("Capital")}).ok());
  ASSERT_TRUE(dirty.AppendRow({Value("Barca"), Value("Barcelona")}).ok());

  HolisticRepair alg;
  auto clean = alg.Repair(*dcs, dirty);
  ASSERT_TRUE(clean.ok());
  EXPECT_TRUE(dc::FindViolations(*clean, *dcs).empty());
  EXPECT_EQ(clean->at(2, 1), Value("Madrid"));
  EXPECT_EQ(clean->at(3, 1), Value("Barcelona"));  // untouched
}

TEST(HolisticTest, ReducesViolationsOnSyntheticData) {
  auto generated = data::GenerateSoccer({.num_rows = 50, .seed = 3});
  data::ErrorInjectorOptions inject;
  inject.error_rate = 0.05;
  inject.seed = 4;
  auto injected = data::InjectErrors(generated.clean, inject);
  const std::size_t before =
      dc::FindViolations(injected.dirty, generated.dcs).size();
  ASSERT_GT(before, 0u);

  HolisticRepair alg;
  auto repaired = alg.Repair(generated.dcs, injected.dirty);
  ASSERT_TRUE(repaired.ok());
  EXPECT_LT(dc::FindViolations(*repaired, generated.dcs).size(), before);
}

TEST(HolisticTest, RoundBudgetGuardsTermination) {
  HolisticOptions options;
  options.max_rounds = 1;
  HolisticRepair alg(options);
  auto repaired =
      alg.Repair(data::SoccerConstraints(), data::SoccerDirtyTable());
  ASSERT_TRUE(repaired.ok());  // must terminate even when not clean
}

TEST(HolisticTest, EmptyConstraintSetIsIdentity) {
  HolisticRepair alg;
  auto repaired = alg.Repair(dc::DcSet{}, data::SoccerDirtyTable());
  ASSERT_TRUE(repaired.ok());
  EXPECT_EQ(*repaired, data::SoccerDirtyTable());
}

TEST(HolisticTest, HandlesNulledCoalitionTables) {
  HolisticRepair alg;
  const Table masked = data::SoccerDirtyTable().WithNulls(
      {data::SoccerCell(5, "City"), data::SoccerCell(3, "Team")});
  EXPECT_TRUE(alg.Repair(data::SoccerConstraints(), masked).ok());
}

}  // namespace
}  // namespace trex::repair
