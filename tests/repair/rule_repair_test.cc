#include "repair/rule_repair.h"
#include "repair/soccer_algorithm1.h"

#include <gtest/gtest.h>

#include "data/soccer.h"
#include "dc/parser.h"
#include "dc/violation.h"

namespace trex::repair {
namespace {

using repair::MakeAlgorithm1;
using data::SoccerCleanTable;
using data::SoccerConstraints;
using data::SoccerDirtyTable;

TEST(RuleRepairTest, Algorithm1ReproducesFigure2) {
  auto alg = MakeAlgorithm1();
  auto clean = alg->Repair(SoccerConstraints(), SoccerDirtyTable());
  ASSERT_TRUE(clean.ok()) << clean.status();
  EXPECT_EQ(*clean, SoccerCleanTable());
}

TEST(RuleRepairTest, RepairOnlyTouchesDirtyCells) {
  auto alg = MakeAlgorithm1();
  auto clean = alg->Repair(SoccerConstraints(), SoccerDirtyTable());
  ASSERT_TRUE(clean.ok());
  const Table dirty = SoccerDirtyTable();
  std::size_t changed = 0;
  for (const CellRef& cell : dirty.AllCells()) {
    if (dirty.at(cell) != clean->at(cell)) ++changed;
  }
  EXPECT_EQ(changed, 2u);  // t5[City] and t5[Country]
}

TEST(RuleRepairTest, CleanTableIsFixpoint) {
  auto alg = MakeAlgorithm1();
  auto again = alg->Repair(SoccerConstraints(), SoccerCleanTable());
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(*again, SoccerCleanTable());
}

TEST(RuleRepairTest, Deterministic) {
  auto alg = MakeAlgorithm1();
  auto a = alg->Repair(SoccerConstraints(), SoccerDirtyTable());
  auto b = alg->Repair(SoccerConstraints(), SoccerDirtyTable());
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(*a, *b);
}

TEST(RuleRepairTest, DoesNotMutateInput) {
  auto alg = MakeAlgorithm1();
  const Table dirty = SoccerDirtyTable();
  Table copy = dirty;
  ASSERT_TRUE(alg->Repair(SoccerConstraints(), copy).ok());
  EXPECT_EQ(copy, dirty);
}

// The subset semantics drive the paper's Example 2.3: the characteristic
// function must be v(S) = 1 iff {C1,C2} ⊆ S or C3 ∈ S.
TEST(RuleRepairTest, SubsetSemanticsMatchExample23) {
  auto alg = MakeAlgorithm1();
  const dc::DcSet all = SoccerConstraints();
  const Table dirty = SoccerDirtyTable();
  const CellRef target = data::SoccerTargetCell();
  const Value want("Spain");

  for (std::uint64_t mask = 0; mask < 16; ++mask) {
    const dc::DcSet subset = all.Subset(mask);
    auto repaired = alg->Repair(subset, dirty);
    ASSERT_TRUE(repaired.ok());
    const bool has_c1 = mask & 1;
    const bool has_c2 = mask & 2;
    const bool has_c3 = mask & 4;
    const bool expect_repair = (has_c1 && has_c2) || has_c3;
    EXPECT_EQ(repaired->at(target) == want, expect_repair)
        << "mask=" << mask;
  }
}

TEST(RuleRepairTest, CityRepairNeedsC1) {
  // Example 2.2: t5[City] flips to Madrid iff C1 is present.
  auto alg = MakeAlgorithm1();
  const dc::DcSet all = SoccerConstraints();
  const Table dirty = SoccerDirtyTable();
  const CellRef city = data::SoccerCell(5, "City");

  auto with_c1 = alg->Repair(all.Subset(0b0111), dirty);
  ASSERT_TRUE(with_c1.ok());
  EXPECT_EQ(with_c1->at(city), Value("Madrid"));

  auto without_c1 = alg->Repair(all.Subset(0b0110), dirty);
  ASSERT_TRUE(without_c1.ok());
  EXPECT_EQ(without_c1->at(city), Value("Capital"));
}

TEST(RuleRepairTest, EmptyConstraintSetIsIdentity) {
  auto alg = MakeAlgorithm1();
  auto repaired = alg->Repair(dc::DcSet{}, SoccerDirtyTable());
  ASSERT_TRUE(repaired.ok());
  EXPECT_EQ(*repaired, SoccerDirtyTable());
}

TEST(RuleRepairTest, RulesForMissingConstraintsSkipped) {
  // An algorithm with a rule bound to "C9" (absent) must not fail.
  std::vector<RepairRule> rules{
      {"C9", RuleAction::kSetMostCommon, "City", ""}};
  RuleRepair alg("test", std::move(rules));
  auto repaired = alg.Repair(SoccerConstraints(), SoccerDirtyTable());
  ASSERT_TRUE(repaired.ok());
  EXPECT_EQ(*repaired, SoccerDirtyTable());
}

TEST(RuleRepairTest, UnknownTargetAttributeFails) {
  std::vector<RepairRule> rules{
      {"C1", RuleAction::kSetMostCommon, "Nope", ""}};
  RuleRepair alg("test", std::move(rules));
  EXPECT_FALSE(alg.Repair(SoccerConstraints(), SoccerDirtyTable()).ok());
}

TEST(RuleRepairTest, HandlesNulledTables) {
  // Coalition-style tables (many nulls) must repair without error.
  auto alg = MakeAlgorithm1();
  const Table dirty = SoccerDirtyTable();
  const Table masked = dirty.WithNulls(
      {data::SoccerCell(5, "City"), data::SoccerCell(1, "Team"),
       data::SoccerCell(3, "Country")});
  auto repaired = alg->Repair(SoccerConstraints(), masked);
  ASSERT_TRUE(repaired.ok());
}

TEST(RuleRepairTest, NullCityTriggersC1RepairViaInequality) {
  // t5[City] = null: null != 'Madrid' holds, so C1 fires and the most
  // common city replaces the null.
  auto alg = MakeAlgorithm1();
  Table dirty = SoccerDirtyTable();
  dirty.Set(data::SoccerCell(5, "City"), Value::Null());
  auto repaired = alg->Repair(SoccerConstraints(), dirty);
  ASSERT_TRUE(repaired.ok());
  EXPECT_EQ(repaired->at(data::SoccerCell(5, "City")), Value("Madrid"));
}

TEST(RuleRepairTest, MultiPassReachesFixpoint) {
  const Schema schema = Schema::AllStrings({"Team", "City", "Country"});
  auto dcs = dc::ParseDcSet(R"(
C1: !(t1.Team == t2.Team & t1.City != t2.City)
C2: !(t1.City == t2.City & t1.Country != t2.Country)
)",
                            schema);
  ASSERT_TRUE(dcs.ok());
  Table dirty(schema);
  ASSERT_TRUE(
      dirty.AppendRow({Value("Real"), Value("Madrid"), Value("Spain")})
          .ok());
  ASSERT_TRUE(
      dirty.AppendRow({Value("Real"), Value("Madrid"), Value("Spain")})
          .ok());
  ASSERT_TRUE(
      dirty.AppendRow({Value("Real"), Value("Capital"), Value("España")})
          .ok());

  // Rules in REVERSE dependency order: the Country rule runs before the
  // City rule, so pass 1 fixes City only; pass 2 then fixes Country.
  std::vector<RepairRule> rules{
      {"C2", RuleAction::kSetMostCommonGiven, "Country", "City"},
      {"C1", RuleAction::kSetMostCommon, "City", ""}};

  RuleRepair one_pass("one", rules, RuleRepairOptions{1});
  auto after_one = one_pass.Repair(*dcs, dirty);
  ASSERT_TRUE(after_one.ok());
  EXPECT_EQ(after_one->at(2, 1), Value("Madrid"));
  EXPECT_EQ(after_one->at(2, 2), Value("España"));

  RuleRepair two_pass("two", rules, RuleRepairOptions{2});
  auto after_two = two_pass.Repair(*dcs, dirty);
  ASSERT_TRUE(after_two.ok());
  EXPECT_EQ(after_two->at(2, 2), Value("Spain"));
}

TEST(RuleRepairTest, InfluenceGraphIsPrecise) {
  auto alg = MakeAlgorithm1();
  const dc::DcSet dcs = SoccerConstraints();
  const Schema schema = data::SoccerSchema();
  auto graph = alg->InfluenceGraph(dcs, schema);
  ASSERT_TRUE(graph.has_value());
  // Influencers of Country: {Team, City, Country, League} — not Place,
  // not Year (hence the paper's t1[Place] has Shapley 0).
  const auto influencers =
      graph->InfluencingColumns(*schema.IndexOf("Country"));
  EXPECT_EQ(influencers,
            (std::set<std::size_t>{*schema.IndexOf("Team"),
                                   *schema.IndexOf("City"),
                                   *schema.IndexOf("Country"),
                                   *schema.IndexOf("League")}));
}

TEST(RuleRepairTest, NameIsReported) {
  EXPECT_EQ(MakeAlgorithm1()->name(), "algorithm-1");
}

}  // namespace
}  // namespace trex::repair
