// Cross-algorithm property tests: invariants every bundled repairer must
// uphold on randomized workloads (TEST_P sweep over seeds). These are
// the contract the Shapley games depend on.

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "data/errors.h"
#include "data/generator.h"
#include "data/soccer.h"
#include "dc/violation.h"
#include "repair/fd_repair.h"
#include "repair/holistic.h"
#include "repair/holoclean.h"
#include "repair/rule_repair.h"
#include "repair/soccer_algorithm1.h"

namespace trex::repair {
namespace {

struct Workload {
  Table dirty;
  dc::DcSet dcs;
};

Workload MakeWorkload(std::uint64_t seed) {
  auto generated = data::GenerateSoccer({.num_rows = 30, .seed = seed});
  const Schema schema = generated.clean.schema();
  data::ErrorInjectorOptions inject;
  inject.error_rate = 0.06;
  inject.columns = {*schema.IndexOf("City"), *schema.IndexOf("Country")};
  inject.seed = seed + 1;
  auto injected = data::InjectErrors(generated.clean, inject);
  return Workload{std::move(injected.dirty), std::move(generated.dcs)};
}

std::vector<std::shared_ptr<RepairAlgorithm>> AllAlgorithms() {
  std::vector<std::shared_ptr<RepairAlgorithm>> algorithms;
  algorithms.push_back(repair::MakeAlgorithm1());
  algorithms.push_back(std::make_shared<HoloCleanRepair>());
  algorithms.push_back(std::make_shared<HolisticRepair>());
  algorithms.push_back(std::make_shared<FdRepair>());
  return algorithms;
}

class RepairPropertyTest : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(RepairPropertyTest, DeterministicOnRandomWorkloads) {
  const Workload workload = MakeWorkload(GetParam());
  for (const auto& alg : AllAlgorithms()) {
    auto a = alg->Repair(workload.dcs, workload.dirty);
    auto b = alg->Repair(workload.dcs, workload.dirty);
    ASSERT_TRUE(a.ok()) << alg->name();
    ASSERT_TRUE(b.ok()) << alg->name();
    EXPECT_EQ(*a, *b) << alg->name() << " seed " << GetParam();
  }
}

TEST_P(RepairPropertyTest, PreservesShape) {
  const Workload workload = MakeWorkload(GetParam());
  for (const auto& alg : AllAlgorithms()) {
    auto repaired = alg->Repair(workload.dcs, workload.dirty);
    ASSERT_TRUE(repaired.ok()) << alg->name();
    EXPECT_EQ(repaired->schema(), workload.dirty.schema()) << alg->name();
    EXPECT_EQ(repaired->num_rows(), workload.dirty.num_rows())
        << alg->name();
  }
}

TEST_P(RepairPropertyTest, InputNotMutated) {
  const Workload workload = MakeWorkload(GetParam());
  const Table snapshot = workload.dirty;
  for (const auto& alg : AllAlgorithms()) {
    ASSERT_TRUE(alg->Repair(workload.dcs, workload.dirty).ok());
    EXPECT_EQ(workload.dirty, snapshot) << alg->name();
  }
}

TEST_P(RepairPropertyTest, HolisticNeverIncreasesViolations) {
  const Workload workload = MakeWorkload(GetParam());
  const std::size_t before =
      dc::FindViolations(workload.dirty, workload.dcs).size();
  HolisticRepair alg;
  auto repaired = alg.Repair(workload.dcs, workload.dirty);
  ASSERT_TRUE(repaired.ok());
  EXPECT_LE(dc::FindViolations(*repaired, workload.dcs).size(), before)
      << "seed " << GetParam();
}

TEST_P(RepairPropertyTest, FdRepairClearsFdViolationsOnConsistentErrors) {
  // Swap-only errors confined to the Country column keep the FD set
  // jointly satisfiable (City->Country and League->Country majorities
  // agree on the true value), so FdRepair's fixpoint must clear every
  // FD violation. (Cross-country *City* swaps, by contrast, make C2 and
  // C3 pull the Country cell in opposite directions — naive group-
  // majority iteration then legitimately oscillates to its pass budget;
  // Bohannon et al. resolve such conflicts with a cost model, which is
  // outside this reproduction's scope.)
  auto generated = data::GenerateSoccer({.num_rows = 30,
                                         .seed = GetParam() + 100});
  const Schema schema = generated.clean.schema();
  data::ErrorInjectorOptions inject;
  inject.error_rate = 0.06;
  inject.weight_swap = 1;
  inject.weight_typo = 0;
  inject.weight_missing = 0;
  inject.columns = {*schema.IndexOf("Country")};
  inject.seed = GetParam() + 101;
  auto injected = data::InjectErrors(generated.clean, inject);

  FdRepair alg;
  auto repaired = alg.Repair(generated.dcs, injected.dirty);
  ASSERT_TRUE(repaired.ok());
  for (std::size_t c = 0; c < generated.dcs.size(); ++c) {
    if (!generated.dcs.at(c).AsFunctionalDependency(nullptr, nullptr)) {
      continue;
    }
    EXPECT_TRUE(
        dc::FindViolationsOf(*repaired, generated.dcs.at(c), c).empty())
        << generated.dcs.at(c).name() << " seed " << GetParam();
  }
}

TEST_P(RepairPropertyTest, RepairersOnlyTouchConstraintColumns) {
  // No bundled repairer may rewrite a column no constraint mentions and
  // no rule targets (Year is mentioned by C4; Place is C4's rule target;
  // so use a DC set without C4).
  const dc::DcSet dcs = data::SoccerConstraints().Without(3);
  auto generated = data::GenerateSoccer({.num_rows = 25,
                                         .seed = GetParam() + 200});
  data::ErrorInjectorOptions inject;
  inject.error_rate = 0.08;
  inject.seed = GetParam() + 201;
  auto injected = data::InjectErrors(generated.clean, inject);
  const Schema schema = generated.clean.schema();
  const std::size_t year = *schema.IndexOf("Year");
  const std::size_t place = *schema.IndexOf("Place");

  for (const auto& alg : AllAlgorithms()) {
    auto repaired = alg->Repair(dcs, injected.dirty);
    ASSERT_TRUE(repaired.ok()) << alg->name();
    for (std::size_t r = 0; r < repaired->num_rows(); ++r) {
      for (std::size_t c : {year, place}) {
        const Value& before = injected.dirty.at(r, c);
        const Value& after = repaired->at(r, c);
        const bool same = before.is_null() ? after.is_null()
                                           : (!after.is_null() &&
                                              before == after);
        EXPECT_TRUE(same) << alg->name() << " rewrote t" << (r + 1)
                          << " col " << c << " seed " << GetParam();
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RepairPropertyTest,
                         ::testing::Values(11, 22, 33, 44, 55));

}  // namespace
}  // namespace trex::repair
