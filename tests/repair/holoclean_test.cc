#include "repair/holoclean.h"

#include <gtest/gtest.h>

#include <set>

#include "data/errors.h"
#include "data/generator.h"
#include "data/soccer.h"
#include "dc/violation.h"
#include "repair/metrics.h"

namespace trex::repair {
namespace {

TEST(HoloCleanTest, RepairsTheSoccerTable) {
  HoloCleanRepair alg;
  auto clean =
      alg.Repair(data::SoccerConstraints(), data::SoccerDirtyTable());
  ASSERT_TRUE(clean.ok()) << clean.status();
  // The headline repair: t5[Country] -> Spain, t5[City] -> Madrid.
  EXPECT_EQ(clean->at(data::SoccerCell(5, "Country")), Value("Spain"));
  EXPECT_EQ(clean->at(data::SoccerCell(5, "City")), Value("Madrid"));
}

TEST(HoloCleanTest, CleanInputIsUntouched) {
  HoloCleanRepair alg;
  auto repaired =
      alg.Repair(data::SoccerConstraints(), data::SoccerCleanTable());
  ASSERT_TRUE(repaired.ok());
  EXPECT_EQ(*repaired, data::SoccerCleanTable());
}

TEST(HoloCleanTest, Deterministic) {
  HoloCleanRepair alg;
  auto a = alg.Repair(data::SoccerConstraints(), data::SoccerDirtyTable());
  auto b = alg.Repair(data::SoccerConstraints(), data::SoccerDirtyTable());
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(*a, *b);
}

TEST(HoloCleanTest, EmptyConstraintSetIsIdentity) {
  HoloCleanRepair alg;
  auto repaired = alg.Repair(dc::DcSet{}, data::SoccerDirtyTable());
  ASSERT_TRUE(repaired.ok());
  EXPECT_EQ(*repaired, data::SoccerDirtyTable());
}

TEST(HoloCleanTest, OnlyNoisyCellsChange) {
  HoloCleanRepair alg;
  const Table dirty = data::SoccerDirtyTable();
  const dc::DcSet dcs = data::SoccerConstraints();
  auto clean = alg.Repair(dcs, dirty);
  ASSERT_TRUE(clean.ok());

  // Collect cells implicated in violations of the dirty table.
  std::set<std::size_t> noisy;
  for (const auto& v : dc::FindViolations(dirty, dcs)) {
    for (const CellRef& cell : dc::ImplicatedCells(v, dcs)) {
      noisy.insert(dirty.LinearIndex(cell));
    }
  }
  for (const CellRef& cell : dirty.AllCells()) {
    if (dirty.at(cell) != clean->at(cell)) {
      EXPECT_TRUE(noisy.count(dirty.LinearIndex(cell)) > 0)
          << cell.ToString(dirty.schema()) << " changed but was not noisy";
    }
  }
}

TEST(HoloCleanTest, ReducesViolationsOnSyntheticData) {
  auto generated = data::GenerateSoccer({.num_rows = 60, .seed = 7});
  data::ErrorInjectorOptions inject;
  inject.error_rate = 0.04;
  inject.seed = 11;
  auto injected = data::InjectErrors(generated.clean, inject);

  const std::size_t before =
      dc::FindViolations(injected.dirty, generated.dcs).size();
  ASSERT_GT(before, 0u);

  HoloCleanRepair alg;
  auto repaired = alg.Repair(generated.dcs, injected.dirty);
  ASSERT_TRUE(repaired.ok());
  const std::size_t after =
      dc::FindViolations(*repaired, generated.dcs).size();
  EXPECT_LT(after, before);
}

TEST(HoloCleanTest, AchievesReasonablePrecisionOnSyntheticData) {
  auto generated = data::GenerateSoccer({.num_rows = 80, .seed = 21});
  data::ErrorInjectorOptions inject;
  inject.error_rate = 0.03;
  inject.seed = 22;
  // Corrupt only FD-governed columns (City / Country) so errors are
  // detectable by the constraint set.
  const Schema schema = generated.clean.schema();
  inject.columns = {*schema.IndexOf("City"), *schema.IndexOf("Country")};
  auto injected = data::InjectErrors(generated.clean, inject);
  ASSERT_FALSE(injected.injected.empty());

  HoloCleanRepair alg;
  auto repaired = alg.Repair(generated.dcs, injected.dirty);
  ASSERT_TRUE(repaired.ok());
  auto quality = EvaluateRepair(injected.dirty, *repaired,
                                generated.clean, generated.dcs);
  ASSERT_TRUE(quality.ok());
  EXPECT_GT(quality->recall, 0.3) << quality->ToString();
  EXPECT_GT(quality->precision, 0.3) << quality->ToString();
}

TEST(HoloCleanTest, LearnedWeightsStillRepairHeadlineCell) {
  HoloCleanOptions options;
  options.learn_weights = false;  // fixed initial weights
  HoloCleanRepair fixed(options);
  auto clean =
      fixed.Repair(data::SoccerConstraints(), data::SoccerDirtyTable());
  ASSERT_TRUE(clean.ok());
  EXPECT_EQ(clean->at(data::SoccerTargetCell()), Value("Spain"));
}

TEST(HoloCleanTest, DomainCapRespected) {
  HoloCleanOptions options;
  options.max_domain_size = 2;
  HoloCleanRepair alg(options);
  auto clean =
      alg.Repair(data::SoccerConstraints(), data::SoccerDirtyTable());
  ASSERT_TRUE(clean.ok());  // still terminates and returns something
}

TEST(HoloCleanTest, HandlesNulledCoalitionTables) {
  HoloCleanRepair alg;
  const Table dirty = data::SoccerDirtyTable();
  const Table masked = dirty.WithNulls(
      {data::SoccerCell(1, "Country"), data::SoccerCell(2, "Country"),
       data::SoccerCell(3, "Country"), data::SoccerCell(6, "Country")});
  auto repaired = alg.Repair(data::SoccerConstraints(), masked);
  ASSERT_TRUE(repaired.ok());
}

}  // namespace
}  // namespace trex::repair
