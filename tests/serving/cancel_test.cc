// Cancellation primitives plus their threading through the Shapley
// solvers: a cancelled token must stop sampling sweeps, exact subset
// enumeration, and engine requests promptly, surfacing
// `Status::Cancelled` instead of partial results.

#include "serving/cancel.h"

#include <gtest/gtest.h>

#include <chrono>
#include <cstddef>
#include <thread>

#include "core/engine.h"
#include "core/game.h"
#include "core/interaction.h"
#include "core/counterfactual.h"
#include "core/shapley_exact.h"
#include "core/shapley_sampling.h"
#include "data/soccer.h"
#include "repair/soccer_algorithm1.h"

namespace trex {
namespace {

/// A cheap deterministic game that counts evaluations and (optionally)
/// cancels a source once a call budget is spent — cancellation mid-run
/// without threads or timing.
class CountingGame : public shap::Game {
 public:
  CountingGame(std::size_t num_players, std::size_t cancel_after = 0)
      : num_players_(num_players), cancel_after_(cancel_after) {}

  std::size_t num_players() const override { return num_players_; }

  double Value(const shap::Coalition& coalition) const override {
    ++calls_;
    if (cancel_after_ > 0 && calls_ >= cancel_after_) source_.Cancel();
    double total = 0.0;
    for (std::size_t i = 0; i < coalition.size(); ++i) {
      if (coalition[i]) total += static_cast<double>(i + 1);
    }
    return total;
  }

  std::size_t calls() const { return calls_; }
  CancelToken token() const { return source_.token(); }

 private:
  std::size_t num_players_;
  std::size_t cancel_after_;
  mutable std::size_t calls_ = 0;
  mutable CancelSource source_;
};

TEST(CancelTokenTest, DefaultTokenNeverCancelled) {
  CancelToken token;
  EXPECT_FALSE(token.cancelled());
  EXPECT_FALSE(token.can_be_cancelled());
}

TEST(CancelTokenTest, SourceFlipsItsTokens) {
  CancelSource source;
  CancelToken token = source.token();
  EXPECT_TRUE(token.can_be_cancelled());
  EXPECT_FALSE(token.cancelled());
  source.Cancel();
  EXPECT_TRUE(token.cancelled());
  EXPECT_TRUE(source.cancelled());
  // Tokens taken after cancellation observe it too.
  EXPECT_TRUE(source.token().cancelled());
}

TEST(CancelTokenTest, AnyOfObservesEitherSource) {
  CancelSource a;
  CancelSource b;
  CancelToken merged = CancelToken::AnyOf(a.token(), b.token());
  EXPECT_FALSE(merged.cancelled());
  b.Cancel();
  EXPECT_TRUE(merged.cancelled());

  CancelToken with_default = CancelToken::AnyOf(CancelToken{}, a.token());
  EXPECT_FALSE(with_default.cancelled());
  a.Cancel();
  EXPECT_TRUE(with_default.cancelled());
}

TEST(CancelTokenWaitTest, StatelessTokenWaitsOutTheFullTimeout) {
  CancelToken token;
  const auto start = std::chrono::steady_clock::now();
  EXPECT_FALSE(token.WaitFor(std::chrono::milliseconds(20)));
  EXPECT_GE(std::chrono::steady_clock::now() - start,
            std::chrono::milliseconds(20));
}

TEST(CancelTokenWaitTest, PreCancelledTokenReturnsWithoutSleeping) {
  CancelSource source;
  source.Cancel();
  const auto start = std::chrono::steady_clock::now();
  EXPECT_TRUE(source.token().WaitFor(std::chrono::seconds(30)));
  // Far under the requested timeout: the wait must short-circuit.
  EXPECT_LT(std::chrono::steady_clock::now() - start,
            std::chrono::seconds(5));
}

TEST(CancelTokenWaitTest, CancelMidWaitWakesTheSleeperImmediately) {
  CancelSource source;
  CancelToken token = source.token();
  std::thread canceller([&source] {
    // sleep-ok: gives the main thread time to park inside WaitFor; the
    // assertion is on the 30s bound, not on this delay.
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    source.Cancel();
  });
  const auto start = std::chrono::steady_clock::now();
  EXPECT_TRUE(token.WaitFor(std::chrono::seconds(30)));
  // Woken by the cancel, not the timeout.
  EXPECT_LT(std::chrono::steady_clock::now() - start,
            std::chrono::seconds(25));
  canceller.join();
}

TEST(CancelTokenWaitTest, MergedTokenWakesOnEitherSource) {
  CancelSource a;
  CancelSource b;
  CancelToken merged = CancelToken::AnyOf(a.token(), b.token());
  std::thread canceller([&b] {
    // sleep-ok: parks the waiter first; asserted via the 30s bound.
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    b.Cancel();
  });
  const auto start = std::chrono::steady_clock::now();
  EXPECT_TRUE(merged.WaitFor(std::chrono::seconds(30)));
  EXPECT_LT(std::chrono::steady_clock::now() - start,
            std::chrono::seconds(25));
  canceller.join();
  // The waiter deregistered from both sources; a later cancel on the
  // other source must not touch freed state.
  a.Cancel();
}

TEST(CancelThreadingTest, PreCancelledSweepSamplingRunsNothing) {
  CountingGame game(5);
  CancelSource source;
  source.Cancel();
  shap::SamplingOptions options;
  options.num_samples = 128;
  options.cancel = source.token();
  auto result = shap::EstimateShapleyAllPlayers(game, options);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kCancelled);
  EXPECT_EQ(game.calls(), 0u);
}

TEST(CancelThreadingTest, MidRunCancellationStopsSweepSampling) {
  // The game cancels itself after 40 evaluations; the full run would
  // cost 256 sweeps x (5+1) evaluations.
  CountingGame game(5, /*cancel_after=*/40);
  shap::SamplingOptions options;
  options.num_samples = 256;
  options.cancel = game.token();
  auto result = shap::EstimateShapleyAllPlayers(game, options);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kCancelled);
  // Stops at the next sweep boundary: well under the full budget.
  EXPECT_LT(game.calls(), 64u);
}

TEST(CancelThreadingTest, SinglePlayerEstimatorsObserveCancellation) {
  {
    CountingGame game(5, 10);
    shap::SamplingOptions options;
    options.num_samples = 512;
    options.cancel = game.token();
    auto result = shap::EstimateShapleyForPlayer(game, 0, options);
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.status().code(), StatusCode::kCancelled);
    EXPECT_LT(game.calls(), 32u);
  }
  {
    CountingGame game(5, 10);
    shap::SamplingOptions options;
    options.num_samples = 512;
    options.cancel = game.token();
    auto result = shap::EstimateShapleyStratified(game, 0, options);
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.status().code(), StatusCode::kCancelled);
    EXPECT_LT(game.calls(), 32u);
  }
  {
    CountingGame game(5, 40);
    shap::TopKOptions options;
    options.k = 2;
    options.batch = 8;
    options.max_samples = 1024;
    options.cancel = game.token();
    auto result = shap::EstimateTopKPlayers(game, options);
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.status().code(), StatusCode::kCancelled);
    EXPECT_LT(game.calls(), 128u);
  }
}

TEST(CancelThreadingTest, ExactEnumerationsObserveCancellation) {
  {
    CountingGame game(10, 50);
    shap::ExactShapleyOptions options;
    options.cancel = game.token();
    auto result = shap::ComputeExactShapley(game, options);
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.status().code(), StatusCode::kCancelled);
    EXPECT_LT(game.calls(), 64u);  // far below 2^10
  }
  {
    CountingGame game(10, 50);
    shap::ExactShapleyOptions options;
    options.cancel = game.token();
    auto result = shap::ComputeExactBanzhaf(game, options);
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.status().code(), StatusCode::kCancelled);
  }
  {
    CountingGame game(10, 50);
    shap::InteractionOptions options;
    options.cancel = game.token();
    auto result = shap::ComputeShapleyInteractions(game, options);
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.status().code(), StatusCode::kCancelled);
  }
  {
    CountingGame game(10, 50);
    shap::CounterfactualOptions options;
    options.max_set_size = 10;
    options.cancel = game.token();
    auto result = shap::MinimalRemovalSets(game, options);
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.status().code(), StatusCode::kCancelled);
  }
}

TEST(CancelThreadingTest, PreCancelledEngineRequestSkipsReferenceRepair) {
  Engine engine(repair::MakeAlgorithm1(), data::SoccerConstraints(),
                data::SoccerDirtyTable());
  CancelSource source;
  source.Cancel();
  ExplainRequest request;
  request.target = data::SoccerTargetCell();
  request.cancel = source.token();
  auto result = engine.Explain(request);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kCancelled);
  // Cancellation was observed before any repair work was paid for.
  EXPECT_EQ(engine.num_algorithm_calls(), 0u);
  EXPECT_FALSE(engine.has_repair());
}

TEST(CancelThreadingTest, EngineReusableAfterCancelledRequest) {
  Engine engine(repair::MakeAlgorithm1(), data::SoccerConstraints(),
                data::SoccerDirtyTable());
  CancelSource source;
  ExplainRequest request;
  request.target = data::SoccerTargetCell();
  request.kind = ExplainKind::kCells;
  request.cells.policy = AbsentCellPolicy::kNull;
  request.cells.method = CellMethod::kSampling;
  request.cells.num_samples = 64;
  request.cancel = source.token();
  source.Cancel();
  EXPECT_EQ(engine.Explain(request).status().code(), StatusCode::kCancelled);

  // A fresh, uncancelled request on the same engine succeeds.
  request.cancel = CancelToken{};
  auto result = engine.Explain(request);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_TRUE(result->explanation.has_value());
}

TEST(DeadlineSourceTest, PastDeadlineFiresPromptly) {
  DeadlineSource deadlines;
  auto source = std::make_shared<CancelSource>();
  deadlines.Arm(std::chrono::steady_clock::now() -
                    std::chrono::milliseconds(1),
                source);
  // The timer thread fires an already-expired entry on its next wake.
  const auto give_up =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (!source->cancelled() &&
         std::chrono::steady_clock::now() < give_up) {
    std::this_thread::yield();
  }
  EXPECT_TRUE(source->cancelled());
  EXPECT_EQ(deadlines.armed(), 0u);
}

TEST(DeadlineSourceTest, DisarmedEntryNeverFires) {
  DeadlineSource deadlines;
  auto doomed = std::make_shared<CancelSource>();
  auto safe = std::make_shared<CancelSource>();
  const auto soon =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(30);
  deadlines.Arm(soon, doomed);
  const std::uint64_t safe_id = deadlines.Arm(soon, safe);
  deadlines.Disarm(safe_id);
  const auto give_up =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (!doomed->cancelled() &&
         std::chrono::steady_clock::now() < give_up) {
    std::this_thread::yield();
  }
  EXPECT_TRUE(doomed->cancelled());
  EXPECT_FALSE(safe->cancelled());
  EXPECT_EQ(deadlines.armed(), 0u);
  // Disarming an unknown or already-fired id is a no-op.
  deadlines.Disarm(safe_id);
  deadlines.Disarm(12345);
}

TEST(DeadlineSourceTest, FarDeadlinesOutliveTheSource) {
  // Destruction with armed entries must not fire them or hang.
  auto source = std::make_shared<CancelSource>();
  {
    DeadlineSource deadlines;
    deadlines.Arm(std::chrono::steady_clock::now() + std::chrono::hours(1),
                  source);
    EXPECT_EQ(deadlines.armed(), 1u);
  }
  EXPECT_FALSE(source->cancelled());
}

}  // namespace
}  // namespace trex
