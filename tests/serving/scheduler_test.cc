// The admit → coalesce → execute scheduler: load-shedding order under
// saturation, mid-sweep deadline expiry, coalesced-vs-sequential
// bit-identity, pre-cancelled batch members, and the queue/coalesce
// accounting in ServiceStats.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "core/engine.h"
#include "serving/session.h"
#include "data/soccer.h"
#include "repair/soccer_algorithm1.h"
#include "serving/service.h"
#include "tests/serving/algorithm_fixtures.h"

namespace trex::serving {
namespace {

using trex::testing::GatedAlgorithm;
using trex::testing::InstrumentedAlgorithm;

std::shared_ptr<const Table> SoccerTable() {
  return std::make_shared<const Table>(data::SoccerDirtyTable());
}

ExplainRequest ConstraintRequest() {
  ExplainRequest request;
  request.target = data::SoccerTargetCell();
  request.kind = ExplainKind::kConstraints;
  return request;
}

ExplainRequest SampledCellsRequest(std::size_t num_samples,
                                   std::uint64_t seed) {
  ExplainRequest request;
  request.target = data::SoccerTargetCell();
  request.kind = ExplainKind::kCells;
  request.cells.policy = AbsentCellPolicy::kNull;
  request.cells.method = CellMethod::kSampling;
  request.cells.num_samples = num_samples;
  request.cells.seed = seed;
  return request;
}

TEST(SchedulerTest, ShedsLowestPriorityThenYoungestUnderSaturation) {
  auto gated = std::make_shared<GatedAlgorithm>(repair::MakeAlgorithm1());
  ServiceOptions options;
  options.num_workers = 1;
  options.max_queued_jobs = 3;
  ExplainService service(options);
  const auto table = SoccerTable();
  const dc::DcSet dcs = data::SoccerConstraints();

  // Pin the worker so the queue fills deterministically.
  Ticket blocker = service.Submit(gated, dcs, table, ConstraintRequest());
  gated->WaitUntilStarted();

  RequestOptions p1_old, p1_young, p5, p9, p0;
  p1_old.priority = 1;
  p1_young.priority = 1;
  p5.priority = 5;
  p9.priority = 9;
  p0.priority = 0;
  Ticket a = service.Submit(gated, dcs, table, ConstraintRequest(), p1_old);
  Ticket b = service.Submit(gated, dcs, table, ConstraintRequest(), p1_young);
  Ticket c = service.Submit(gated, dcs, table, ConstraintRequest(), p5);
  EXPECT_EQ(service.pending(), 3u);
  EXPECT_EQ(service.stats().queue_depth, 3u);

  // Queue full. A higher-priority submission is admitted by shedding
  // the worst queued job: lowest priority first, youngest within it —
  // so `b`, not `a`.
  Ticket d = service.Submit(gated, dcs, table, ConstraintRequest(), p9);
  auto b_result = b.Wait();
  ASSERT_FALSE(b_result.ok());
  EXPECT_EQ(b_result.status().code(), StatusCode::kRejected);
  EXPECT_TRUE(b_result.status().IsRejected());
  EXPECT_EQ(service.pending(), 3u);

  // An incoming job that is itself the worst of queue ∪ {incoming} is
  // shed directly; its ticket comes back already resolved.
  Ticket e = service.Submit(gated, dcs, table, ConstraintRequest(), p0);
  EXPECT_TRUE(e.done());
  EXPECT_EQ(e.Wait().status().code(), StatusCode::kRejected);

  gated->Release();
  ASSERT_TRUE(blocker.Wait().ok());
  ASSERT_TRUE(a.Wait().ok());
  ASSERT_TRUE(c.Wait().ok());
  ASSERT_TRUE(d.Wait().ok());

  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.submitted, 6u);
  EXPECT_EQ(stats.shed, 2u);
  EXPECT_EQ(stats.completed, 4u);
  EXPECT_EQ(stats.cancelled, 0u);
  EXPECT_EQ(stats.queue_high_water, 3u);
  EXPECT_EQ(stats.queue_depth, 0u);
}

TEST(SchedulerTest, CancelledQueuedJobsDoNotHoldAdmissionCapacity) {
  auto gated = std::make_shared<GatedAlgorithm>(repair::MakeAlgorithm1());
  ServiceOptions options;
  options.num_workers = 1;
  options.max_queued_jobs = 2;
  ExplainService service(options);
  const auto table = SoccerTable();
  const dc::DcSet dcs = data::SoccerConstraints();

  Ticket blocker = service.Submit(gated, dcs, table, ConstraintRequest());
  gated->WaitUntilStarted();
  Ticket a = service.Submit(gated, dcs, table, ConstraintRequest());
  Ticket b = service.Submit(gated, dcs, table, ConstraintRequest());
  a.Cancel();  // dead but still queued

  // The queue is full, and the incoming job is the worst live job of
  // queue ∪ {incoming} — yet it must be admitted by reclaiming the
  // cancelled job's slot, which resolves Cancelled (not Rejected).
  Ticket c = service.Submit(gated, dcs, table, ConstraintRequest());
  auto a_result = a.Wait();
  ASSERT_FALSE(a_result.ok());
  EXPECT_EQ(a_result.status().code(), StatusCode::kCancelled);
  EXPECT_FALSE(c.done());
  EXPECT_EQ(service.pending(), 2u);

  gated->Release();
  ASSERT_TRUE(blocker.Wait().ok());
  ASSERT_TRUE(b.Wait().ok());
  ASSERT_TRUE(c.Wait().ok());
  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.shed, 0u);
  EXPECT_EQ(stats.cancelled, 1u);
  EXPECT_EQ(stats.completed, 3u);
}

TEST(SchedulerTest, MidSweepDeadlineExpiresInFlightJob) {
  // Baseline: the uncancelled request's total repair cost (no padding).
  ExplainRequest heavy;
  heavy.target = data::SoccerTargetCell();
  heavy.kind = ExplainKind::kCells;
  heavy.cells.policy = AbsentCellPolicy::kSampleFromColumn;
  heavy.cells.method = CellMethod::kSampling;
  heavy.cells.num_samples = 160;
  std::size_t uncancelled_calls = 0;
  {
    Engine engine(repair::MakeAlgorithm1(), data::SoccerConstraints(),
                  data::SoccerDirtyTable());
    auto result = engine.Explain(heavy);
    ASSERT_TRUE(result.ok()) << result.status();
    uncancelled_calls = engine.num_algorithm_calls();
  }
  ASSERT_GT(uncancelled_calls, 100u);

  // Deadline run: 3ms per repair call makes the full sweep cost >480ms;
  // an 80ms deadline passes the dequeue check (the job *starts*) and
  // then kills the sweep from inside, via the armed cancel token.
  auto counting = std::make_shared<InstrumentedAlgorithm>(
      "counting-padded", repair::MakeAlgorithm1(),
      std::chrono::microseconds(3000));
  ExplainService service;
  RequestOptions options;
  options.deadline = std::chrono::steady_clock::now() +
                     std::chrono::milliseconds(80);
  Ticket ticket = service.Submit(counting, data::SoccerConstraints(),
                                 SoccerTable(), heavy, options);
  auto result = ticket.Wait();
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kCancelled);
  // Call-count evidence: the job started (reference repair ran) and
  // died far short of the full sweep.
  EXPECT_GE(counting->calls(), 1u);
  EXPECT_LT(counting->calls(), uncancelled_calls / 2);
  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.cancelled, 1u);
  EXPECT_EQ(stats.expired, 1u);
  EXPECT_EQ(stats.shed, 0u);
}

TEST(SchedulerTest, CoalescedResultsBitIdenticalToSequential) {
  auto gated = std::make_shared<GatedAlgorithm>(repair::MakeAlgorithm1());
  ServiceOptions options;
  options.num_workers = 1;
  ExplainService service(options);
  const auto table = SoccerTable();
  const dc::DcSet dcs = data::SoccerConstraints();

  Ticket blocker = service.Submit(gated, dcs, table, ConstraintRequest());
  gated->WaitUntilStarted();
  std::vector<Ticket> tickets;
  for (std::uint64_t seed = 0; seed < 4; ++seed) {
    tickets.push_back(
        service.Submit(gated, dcs, table, SampledCellsRequest(64, seed)));
  }
  EXPECT_EQ(service.pending(), 4u);
  gated->Release();
  ASSERT_TRUE(blocker.Wait().ok());

  // Sequential baseline on a private engine, same algorithm (the gate
  // is open now; the wrapper matters because influence-graph pruning
  // keys off the algorithm object), same seeds.
  Engine engine(gated, data::SoccerConstraints(), data::SoccerDirtyTable());
  for (std::uint64_t seed = 0; seed < 4; ++seed) {
    auto coalesced = tickets[seed].Wait();
    ASSERT_TRUE(coalesced.ok()) << coalesced.status();
    auto sequential = engine.Explain(SampledCellsRequest(64, seed));
    ASSERT_TRUE(sequential.ok()) << sequential.status();
    const Explanation& x = *coalesced->explanation;
    const Explanation& y = *sequential->explanation;
    ASSERT_EQ(x.ranked.size(), y.ranked.size());
    for (std::size_t i = 0; i < x.ranked.size(); ++i) {
      EXPECT_EQ(x.ranked[i].label, y.ranked[i].label);
      // Bit-identical, not approximately equal.
      EXPECT_EQ(x.ranked[i].shapley, y.ranked[i].shapley);
      EXPECT_EQ(x.ranked[i].std_error, y.ranked[i].std_error);
    }
  }

  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.coalesced_batches, 1u);
  EXPECT_EQ(stats.coalesced_jobs, 4u);
  EXPECT_EQ(stats.completed, 5u);
  // One engine acquisition served the whole coalesced group.
  EXPECT_EQ(stats.router.hits + stats.router.misses, 2u);
}

TEST(SchedulerTest, PreCancelledMemberDropsOutBeforeLowering) {
  auto gated = std::make_shared<GatedAlgorithm>(repair::MakeAlgorithm1());
  ServiceOptions options;
  options.num_workers = 1;
  ExplainService service(options);
  const auto table = SoccerTable();
  const dc::DcSet dcs = data::SoccerConstraints();

  Ticket blocker = service.Submit(gated, dcs, table, ConstraintRequest());
  gated->WaitUntilStarted();
  std::vector<Ticket> tickets;
  for (std::uint64_t seed = 0; seed < 4; ++seed) {
    tickets.push_back(
        service.Submit(gated, dcs, table, SampledCellsRequest(48, seed)));
  }
  tickets[1].Cancel();  // cancelled while queued, before lowering
  gated->Release();

  auto cancelled = tickets[1].Wait();
  ASSERT_FALSE(cancelled.ok());
  EXPECT_EQ(cancelled.status().code(), StatusCode::kCancelled);
  for (std::size_t i : {0u, 2u, 3u}) {
    EXPECT_TRUE(tickets[i].Wait().ok());
  }
  ASSERT_TRUE(blocker.Wait().ok());

  const ServiceStats stats = service.stats();
  // The cancelled member never entered the batch: 3 jobs coalesced.
  EXPECT_EQ(stats.coalesced_batches, 1u);
  EXPECT_EQ(stats.coalesced_jobs, 3u);
  EXPECT_EQ(stats.cancelled, 1u);
  EXPECT_EQ(stats.expired, 0u);
  EXPECT_EQ(stats.completed, 4u);
}

TEST(SchedulerTest, CoalescingDisabledRunsEveryJobAlone) {
  auto gated = std::make_shared<GatedAlgorithm>(repair::MakeAlgorithm1());
  ServiceOptions options;
  options.num_workers = 1;
  options.max_coalesced_requests = 1;
  ExplainService service(options);
  const auto table = SoccerTable();
  const dc::DcSet dcs = data::SoccerConstraints();

  Ticket blocker = service.Submit(gated, dcs, table, ConstraintRequest());
  gated->WaitUntilStarted();
  std::vector<Ticket> tickets;
  for (std::uint64_t seed = 0; seed < 3; ++seed) {
    tickets.push_back(
        service.Submit(gated, dcs, table, SampledCellsRequest(32, seed)));
  }
  gated->Release();
  ASSERT_TRUE(blocker.Wait().ok());
  for (Ticket& ticket : tickets) {
    ASSERT_TRUE(ticket.Wait().ok());
  }
  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.coalesced_batches, 0u);
  EXPECT_EQ(stats.coalesced_jobs, 0u);
  EXPECT_EQ(stats.completed, 4u);
  // Per-job routing: one acquisition each.
  EXPECT_EQ(stats.router.hits + stats.router.misses, 4u);
}

TEST(SchedulerTest, SessionSurfacesSchedulerOptionsAndStats) {
  ServiceOptions service_options;
  service_options.num_workers = 1;
  service_options.max_queued_jobs = 16;
  service_options.max_coalesced_requests = 4;
  TRexSession session(repair::MakeAlgorithm1(), data::SoccerConstraints(),
                      data::SoccerDirtyTable(), EngineOptions{},
                      service_options);
  EXPECT_EQ(session.service_stats().submitted, 0u);  // service not built yet
  ASSERT_TRUE(session.Repair().ok());
  EXPECT_EQ(session.service().options().max_queued_jobs, 16u);
  EXPECT_EQ(session.service().options().max_coalesced_requests, 4u);
  auto explanation =
      session.ExplainConstraints(data::SoccerTargetCell());
  ASSERT_TRUE(explanation.ok()) << explanation.status();
  const ServiceStats stats = session.service_stats();
  EXPECT_EQ(stats.submitted, 1u);
  EXPECT_EQ(stats.completed, 1u);
  EXPECT_EQ(stats.shed, 0u);
}

}  // namespace
}  // namespace trex::serving
