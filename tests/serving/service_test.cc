// ExplainService: priority ordering, cooperative cancellation (queued
// and mid-sweep), deadlines, completion callbacks, multi-table routing,
// and bit-identity of the service path vs. synchronous Engine::Explain.

#include "serving/service.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "core/engine.h"
#include "data/soccer.h"
#include "repair/soccer_algorithm1.h"
#include "tests/serving/algorithm_fixtures.h"

namespace trex::serving {
namespace {

using trex::testing::GatedAlgorithm;

std::shared_ptr<const Table> SoccerTable() {
  return std::make_shared<const Table>(data::SoccerDirtyTable());
}

std::shared_ptr<const Table> VariantTable() {
  Table dirty = data::SoccerDirtyTable();
  dirty.Set(data::SoccerCell(3, "City"), Value("Madird"));
  return std::make_shared<const Table>(dirty);
}

ExplainRequest ConstraintRequest(CellRef target = data::SoccerTargetCell()) {
  ExplainRequest request;
  request.target = target;
  request.kind = ExplainKind::kConstraints;
  return request;
}

ExplainRequest SampledCellsRequest(std::size_t num_samples,
                                   std::uint64_t seed = 17) {
  ExplainRequest request;
  request.target = data::SoccerTargetCell();
  request.kind = ExplainKind::kCells;
  request.cells.policy = AbsentCellPolicy::kNull;
  request.cells.method = CellMethod::kSampling;
  request.cells.num_samples = num_samples;
  request.cells.seed = seed;
  return request;
}

using trex::testing::CancelAfterAlgorithm;

TEST(ExplainServiceTest, SubmitResolvesWithResult) {
  ExplainService service;
  Ticket ticket = service.Submit(repair::MakeAlgorithm1(),
                                 data::SoccerConstraints(), SoccerTable(),
                                 ConstraintRequest());
  EXPECT_TRUE(ticket.valid());
  auto result = ticket.Wait();
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_TRUE(result->explanation.has_value());
  EXPECT_FALSE(result->explanation->ranked.empty());
  // Wait() is repeatable.
  EXPECT_TRUE(ticket.Wait().ok());
  EXPECT_TRUE(ticket.done());
  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.submitted, 1u);
  EXPECT_EQ(stats.completed, 1u);
}

TEST(ExplainServiceTest, HigherPriorityRunsFirstFifoWithin) {
  auto gated = std::make_shared<GatedAlgorithm>(repair::MakeAlgorithm1());
  std::mutex order_mu;
  std::vector<int> order;
  auto record = [&](int tag) {
    return [&, tag](const Result<ExplainResult>&) {
      std::lock_guard<std::mutex> lock(order_mu);
      order.push_back(tag);
    };
  };

  {
    ServiceOptions options;
    options.num_workers = 1;
    ExplainService service(options);
    const auto table = SoccerTable();
    const dc::DcSet dcs = data::SoccerConstraints();

    // Pin the worker on the blocker, then queue in scrambled priority
    // order: low(1), high(9), mid(5), and a second high(9) for the FIFO
    // tie-break.
    RequestOptions blocker_options;
    blocker_options.on_complete = record(0);
    Ticket blocker = service.Submit(gated, dcs, table, ConstraintRequest(),
                                    blocker_options);
    gated->WaitUntilStarted();

    RequestOptions low;
    low.priority = 1;
    low.on_complete = record(1);
    RequestOptions high_a;
    high_a.priority = 9;
    high_a.on_complete = record(2);
    RequestOptions mid;
    mid.priority = 5;
    mid.on_complete = record(3);
    RequestOptions high_b;
    high_b.priority = 9;
    high_b.on_complete = record(4);
    Ticket t_low = service.Submit(gated, dcs, table, ConstraintRequest(), low);
    Ticket t_high_a =
        service.Submit(gated, dcs, table, ConstraintRequest(), high_a);
    Ticket t_mid = service.Submit(gated, dcs, table, ConstraintRequest(), mid);
    Ticket t_high_b =
        service.Submit(gated, dcs, table, ConstraintRequest(), high_b);
    EXPECT_EQ(service.pending(), 4u);

    gated->Release();
    ASSERT_TRUE(blocker.Wait().ok());
    ASSERT_TRUE(t_low.Wait().ok());
    ASSERT_TRUE(t_high_a.Wait().ok());
    ASSERT_TRUE(t_mid.Wait().ok());
    ASSERT_TRUE(t_high_b.Wait().ok());
    // Service destruction joins the worker, so every on_complete has
    // fired once the scope closes (Wait() alone does not order the
    // callback, which runs just after the future resolves).
  }

  EXPECT_EQ(order, (std::vector<int>{0, 2, 4, 3, 1}));
}

TEST(ExplainServiceTest, QueuedJobCancelsWithoutRunning) {
  auto gated = std::make_shared<GatedAlgorithm>(repair::MakeAlgorithm1());
  ServiceOptions options;
  options.num_workers = 1;
  ExplainService service(options);

  Ticket blocker = service.Submit(gated, data::SoccerConstraints(),
                                  SoccerTable(), ConstraintRequest());
  gated->WaitUntilStarted();

  // The queued job targets a *different* table; cancelling it before
  // release means its engine is never even built.
  Ticket queued = service.Submit(repair::MakeAlgorithm1(),
                                 data::SoccerConstraints(), VariantTable(),
                                 ConstraintRequest());
  queued.Cancel();
  gated->Release();

  auto result = queued.Wait();
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kCancelled);
  ASSERT_TRUE(blocker.Wait().ok());
  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.cancelled, 1u);
  EXPECT_EQ(stats.completed, 1u);
  // Only the blocker's engine exists.
  EXPECT_EQ(stats.router.misses, 1u);
}

TEST(ExplainServiceTest, ExpiredDeadlineCancelsAtDequeue) {
  ExplainService service;
  RequestOptions options;
  options.deadline = std::chrono::steady_clock::now() -
                     std::chrono::milliseconds(1);
  Ticket ticket =
      service.Submit(repair::MakeAlgorithm1(), data::SoccerConstraints(),
                     SoccerTable(), ConstraintRequest(), options);
  auto result = ticket.Wait();
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kCancelled);
  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.expired, 1u);
  EXPECT_EQ(stats.cancelled, 1u);
  EXPECT_EQ(stats.router.misses, 0u);  // never reached an engine
}

TEST(ExplainServiceTest, MidSweepCancellationStopsEarly) {
  // Column-sample replacement draws fresh values per sweep, so working
  // tables rarely repeat and nearly every evaluation is a real repair
  // run — the call counter tracks sweep progress directly.
  ExplainRequest heavy;
  heavy.target = data::SoccerTargetCell();
  heavy.kind = ExplainKind::kCells;
  heavy.cells.policy = AbsentCellPolicy::kSampleFromColumn;
  heavy.cells.method = CellMethod::kSampling;
  heavy.cells.num_samples = 160;

  // Baseline: the uncancelled request's total algorithm cost.
  std::size_t uncancelled_calls = 0;
  {
    Engine engine(repair::MakeAlgorithm1(), data::SoccerConstraints(),
                  data::SoccerDirtyTable());
    auto result = engine.Explain(heavy);
    ASSERT_TRUE(result.ok()) << result.status();
    uncancelled_calls = engine.num_algorithm_calls();
  }
  ASSERT_GT(uncancelled_calls, 100u);

  // Cancelled run: the algorithm flips the token after 25 repair calls,
  // which the sweep loop observes at the next sweep boundary.
  auto cancelling = std::make_shared<CancelAfterAlgorithm>(
      repair::MakeAlgorithm1(), /*cancel_after=*/25);
  ExplainService service;
  RequestOptions options;
  options.cancel = cancelling->token();
  Ticket ticket = service.Submit(cancelling, data::SoccerConstraints(),
                                 SoccerTable(), heavy, options);
  auto result = ticket.Wait();
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kCancelled);
  // The in-flight sweep stopped early: far fewer repair runs than the
  // full request costs.
  EXPECT_LT(cancelling->calls(), uncancelled_calls / 2);
  EXPECT_EQ(service.stats().cancelled, 1u);
}

TEST(ExplainServiceTest, ServicePathBitIdenticalToSynchronousExplain) {
  // Synchronous baseline on a private engine.
  Engine engine(repair::MakeAlgorithm1(), data::SoccerConstraints(),
                data::SoccerDirtyTable());
  auto sync_cells = engine.Explain(SampledCellsRequest(96, /*seed=*/23));
  ASSERT_TRUE(sync_cells.ok()) << sync_cells.status();
  ExplainRequest sampled_constraints = ConstraintRequest();
  sampled_constraints.constraints.force_sampling = true;
  sampled_constraints.constraints.sampling.num_samples = 64;
  sampled_constraints.constraints.sampling.seed = 41;
  auto sync_constraints = engine.Explain(sampled_constraints);
  ASSERT_TRUE(sync_constraints.ok()) << sync_constraints.status();

  // Same requests through the service (fresh engine in the router).
  ExplainService service;
  auto svc_cells =
      service.ExplainSync(repair::MakeAlgorithm1(), data::SoccerConstraints(),
                          SoccerTable(), SampledCellsRequest(96, 23));
  ASSERT_TRUE(svc_cells.ok()) << svc_cells.status();
  auto svc_constraints =
      service.ExplainSync(repair::MakeAlgorithm1(), data::SoccerConstraints(),
                          SoccerTable(), sampled_constraints);
  ASSERT_TRUE(svc_constraints.ok()) << svc_constraints.status();

  for (auto [sync_result, svc_result] :
       {std::pair{&*sync_cells, &*svc_cells},
        std::pair{&*sync_constraints, &*svc_constraints}}) {
    const Explanation& a = *sync_result->explanation;
    const Explanation& b = *svc_result->explanation;
    ASSERT_EQ(a.ranked.size(), b.ranked.size());
    for (std::size_t i = 0; i < a.ranked.size(); ++i) {
      EXPECT_EQ(a.ranked[i].label, b.ranked[i].label);
      // Bit-identical, not approximately equal.
      EXPECT_EQ(a.ranked[i].shapley, b.ranked[i].shapley);
      EXPECT_EQ(a.ranked[i].std_error, b.ranked[i].std_error);
    }
  }
}

TEST(ExplainServiceTest, ConcurrentMultiTableRequestsAllComplete) {
  ServiceOptions options;
  options.num_workers = 4;
  // Pin per-job routing: with coalescing on, how many same-table jobs
  // share one engine acquisition depends on dequeue timing, and this
  // test asserts exact router hit/miss counts.
  options.max_coalesced_requests = 1;
  ExplainService service(options);
  const auto table_a = SoccerTable();
  const auto table_b = VariantTable();

  std::vector<Ticket> tickets;
  for (int i = 0; i < 4; ++i) {
    tickets.push_back(service.Submit(repair::MakeAlgorithm1(),
                                     data::SoccerConstraints(), table_a,
                                     ConstraintRequest()));
    tickets.push_back(service.Submit(repair::MakeAlgorithm1(),
                                     data::SoccerConstraints(), table_b,
                                     ConstraintRequest()));
  }
  for (Ticket& ticket : tickets) {
    auto result = ticket.Wait();
    ASSERT_TRUE(result.ok()) << result.status();
  }
  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.completed, 8u);
  // Two engines total, one per table, however many requests.
  EXPECT_EQ(stats.router.misses, 2u);
  EXPECT_EQ(stats.router.hits, 6u);
}

TEST(ExplainServiceTest, DestructionResolvesOutstandingTickets) {
  auto gated = std::make_shared<GatedAlgorithm>(repair::MakeAlgorithm1());
  Ticket blocker;
  Ticket queued;
  std::thread releaser;
  {
    ServiceOptions options;
    options.num_workers = 1;
    ExplainService service(options);
    blocker = service.Submit(gated, data::SoccerConstraints(), SoccerTable(),
                             ConstraintRequest());
    gated->WaitUntilStarted();
    queued = service.Submit(repair::MakeAlgorithm1(), data::SoccerConstraints(),
                            VariantTable(), ConstraintRequest());
    // The worker is pinned inside the gated repair, so the destructor
    // deterministically drains `queued` (resolving it cancelled) before
    // the release lets the worker finish and join.
    releaser = std::thread([&] {
      // sleep-ok: delays the release past destructor entry; only
      // liveness depends on the duration, never correctness.
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
      gated->Release();
    });
  }
  releaser.join();
  EXPECT_TRUE(blocker.done());
  auto result = queued.Wait();
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kCancelled);
}

}  // namespace
}  // namespace trex::serving
