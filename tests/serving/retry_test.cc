// Self-healing serving: transient failures retry with interruptible
// backoff, permanent failures fail fast, the per-engine circuit breaker
// walks closed -> open -> half-open -> closed, and a coalesced batch
// isolates one member's failure from its siblings.

#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <thread>

#include "common/fault.h"
#include "data/soccer.h"
#include "repair/faulty.h"
#include "repair/soccer_algorithm1.h"
#include "serving/service.h"
#include "tests/serving/algorithm_fixtures.h"

namespace trex::serving {
namespace {

using trex::repair::FaultyAlgorithm;
using trex::repair::FaultyOptions;
using trex::testing::GatedAlgorithm;

std::shared_ptr<const Table> SoccerTable() {
  return std::make_shared<const Table>(data::SoccerDirtyTable());
}

ExplainRequest ConstraintRequest() {
  ExplainRequest request;
  request.target = data::SoccerTargetCell();
  request.kind = ExplainKind::kConstraints;
  return request;
}

/// A retry policy that keeps tests fast: immediate-ish backoff unless a
/// test overrides it.
RetryPolicy FastRetry(std::size_t max_attempts = 3) {
  RetryPolicy retry;
  retry.max_attempts = max_attempts;
  retry.initial_backoff = std::chrono::milliseconds(1);
  retry.max_backoff = std::chrono::milliseconds(2);
  return retry;
}

TEST(RetryTest, TransientFailureRetriesToSuccess) {
  // The first repair call (the engine's reference run) fails
  // `kUnavailable`; the retry re-runs the batch and succeeds.
  auto faulty = std::make_shared<FaultyAlgorithm>(
      "faulty-transient-once", repair::MakeAlgorithm1(),
      FaultyOptions{.fail_first = 1});
  ServiceOptions options;
  options.retry = FastRetry();
  ExplainService service(options);

  auto result = service.ExplainSync(faulty, data::SoccerConstraints(),
                                    SoccerTable(), ConstraintRequest());
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_TRUE(result->explanation.has_value());

  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.completed, 1u);
  EXPECT_EQ(stats.failed, 0u);
  EXPECT_EQ(stats.retries, 1u);
  EXPECT_EQ(faulty->injected_failures(), 1u);
}

TEST(RetryTest, RetriedResultsBitIdenticalToFaultFreeRun) {
  // Baseline: the same backend with no fault schedule.
  auto clean = std::make_shared<FaultyAlgorithm>(
      "retry-identity", repair::MakeAlgorithm1(), FaultyOptions{});
  auto clean_result =
      ExplainService().ExplainSync(clean, data::SoccerConstraints(),
                                   SoccerTable(), ConstraintRequest());
  ASSERT_TRUE(clean_result.ok());

  auto faulty = std::make_shared<FaultyAlgorithm>(
      "retry-identity", repair::MakeAlgorithm1(),
      FaultyOptions{.skip_first = 1, .fail_first = 2});
  ServiceOptions options;
  options.retry = FastRetry(4);
  ExplainService service(options);
  auto result = service.ExplainSync(faulty, data::SoccerConstraints(),
                                    SoccerTable(), ConstraintRequest());
  ASSERT_TRUE(result.ok()) << result.status();

  // Bit-identical ranking after fault-then-recover: same labels, same
  // Shapley doubles, bit for bit.
  ASSERT_TRUE(result->explanation.has_value());
  const auto& faulted = result->explanation->ranked;
  const auto& baseline = clean_result->explanation->ranked;
  ASSERT_EQ(faulted.size(), baseline.size());
  for (std::size_t i = 0; i < faulted.size(); ++i) {
    EXPECT_EQ(faulted[i].label, baseline[i].label);
    EXPECT_EQ(faulted[i].shapley, baseline[i].shapley);
  }
}

TEST(RetryTest, ExhaustedRetriesFailTransient) {
  auto faulty = std::make_shared<FaultyAlgorithm>(
      "faulty-always", repair::MakeAlgorithm1(),
      FaultyOptions{.fail_first = 100});
  ServiceOptions options;
  options.retry = FastRetry(2);
  ExplainService service(options);

  auto result = service.ExplainSync(faulty, data::SoccerConstraints(),
                                    SoccerTable(), ConstraintRequest());
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kUnavailable);

  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.failed, 1u);
  EXPECT_EQ(stats.failed_transient, 1u);
  EXPECT_EQ(stats.failed_permanent, 0u);
  EXPECT_EQ(stats.retries, 1u);  // 2 attempts = 1 retry
  ASSERT_EQ(stats.failed_by_code.count(StatusCode::kUnavailable), 1u);
  EXPECT_EQ(stats.failed_by_code.at(StatusCode::kUnavailable), 1u);
}

TEST(RetryTest, PermanentFailureIsNeverRetried) {
  auto faulty = std::make_shared<FaultyAlgorithm>(
      "faulty-permanent", repair::MakeAlgorithm1(),
      FaultyOptions{.fail_first = 1, .code = StatusCode::kInternal});
  ServiceOptions options;
  options.retry = FastRetry(5);
  ExplainService service(options);

  auto result = service.ExplainSync(faulty, data::SoccerConstraints(),
                                    SoccerTable(), ConstraintRequest());
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInternal);

  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.retries, 0u);
  EXPECT_EQ(stats.failed, 1u);
  EXPECT_EQ(stats.failed_transient, 0u);
  EXPECT_EQ(stats.failed_permanent, 1u);
  EXPECT_EQ(stats.failed_by_code.at(StatusCode::kInternal), 1u);
  EXPECT_EQ(faulty->calls(), 1u);
}

TEST(RetryTest, DeadlineCutsAPendingBackoffImmediately) {
  // Satellite pin: the retry sleep must be interruptible. A 30-second
  // backoff is scheduled after the first transient failure; the job's
  // 50ms deadline must cut the park at once, not after the backoff.
  auto faulty = std::make_shared<FaultyAlgorithm>(
      "faulty-slow-backoff", repair::MakeAlgorithm1(),
      FaultyOptions{.fail_first = 100});
  ServiceOptions options;
  options.retry.max_attempts = 3;
  options.retry.initial_backoff = std::chrono::seconds(30);
  options.retry.max_backoff = std::chrono::seconds(30);
  options.retry.jitter = 0.0;
  ExplainService service(options);

  RequestOptions request_options;
  request_options.deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(50);
  const auto start = std::chrono::steady_clock::now();
  auto result =
      service.ExplainSync(faulty, data::SoccerConstraints(), SoccerTable(),
                          ConstraintRequest(), request_options);
  const auto elapsed = std::chrono::steady_clock::now() - start;

  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kCancelled);
  // Resolution well under the 30s backoff proves the park was cut.
  EXPECT_LT(elapsed, std::chrono::seconds(10));
  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.cancelled, 1u);
  EXPECT_EQ(stats.expired, 1u);
}

TEST(BreakerTest, RepeatedTransientFailuresOpenTheBreaker) {
  auto faulty = std::make_shared<FaultyAlgorithm>(
      "faulty-breaker-open", repair::MakeAlgorithm1(),
      FaultyOptions{.fail_first = 1000});
  ServiceOptions options;
  options.retry = FastRetry(2);
  options.router.breaker.window = 4;
  options.router.breaker.min_samples = 2;
  options.router.breaker.failure_rate_threshold = 0.5;
  options.router.breaker.cooldown = std::chrono::minutes(10);
  ExplainService service(options);
  const EngineKey key = EngineRouter::KeyOf(*faulty, data::SoccerConstraints(),
                                            *SoccerTable());

  // Both attempts of the first job report transient outcomes: with
  // min_samples=2 and a 50% threshold the breaker trips open.
  auto first = service.ExplainSync(faulty, data::SoccerConstraints(),
                                   SoccerTable(), ConstraintRequest());
  ASSERT_FALSE(first.ok());
  EXPECT_EQ(service.router().breaker_state(key),
            EngineRouter::BreakerState::kOpen);

  // A second submission fast-fails at admission: no queueing, no engine
  // call, same `kUnavailable` classification.
  const std::size_t calls_before = faulty->calls();
  auto second = service.ExplainSync(faulty, data::SoccerConstraints(),
                                    SoccerTable(), ConstraintRequest());
  ASSERT_FALSE(second.ok());
  EXPECT_EQ(second.status().code(), StatusCode::kUnavailable);
  EXPECT_EQ(faulty->calls(), calls_before);

  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.submitted, 2u);
  EXPECT_EQ(stats.failed, 2u);
  EXPECT_EQ(stats.failed_transient, 2u);
  EXPECT_GE(stats.router.breaker_open, 1u);
  EXPECT_GE(stats.router.breaker_rejected, 1u);
}

TEST(BreakerTest, HalfOpenProbeClosesTheBreakerOnSuccess) {
  // Fails exactly twice (tripping the tight breaker), then recovers.
  auto faulty = std::make_shared<FaultyAlgorithm>(
      "faulty-breaker-probe", repair::MakeAlgorithm1(),
      FaultyOptions{.fail_first = 2});
  ServiceOptions options;
  options.retry = FastRetry(2);
  options.router.breaker.window = 4;
  options.router.breaker.min_samples = 2;
  options.router.breaker.failure_rate_threshold = 0.5;
  options.router.breaker.cooldown = std::chrono::milliseconds(30);
  ExplainService service(options);
  const EngineKey key = EngineRouter::KeyOf(*faulty, data::SoccerConstraints(),
                                            *SoccerTable());

  ASSERT_FALSE(service
                   .ExplainSync(faulty, data::SoccerConstraints(),
                                SoccerTable(), ConstraintRequest())
                   .ok());
  ASSERT_EQ(service.router().breaker_state(key),
            EngineRouter::BreakerState::kOpen);

  // sleep-ok: waits out the breaker cooldown (a real-time contract);
  // the next call probes half-open rather than racing this timer.
  std::this_thread::sleep_for(std::chrono::milliseconds(60));

  // The backend has recovered; the half-open probe succeeds and closes
  // the breaker.
  auto probed = service.ExplainSync(faulty, data::SoccerConstraints(),
                                    SoccerTable(), ConstraintRequest());
  ASSERT_TRUE(probed.ok()) << probed.status();
  EXPECT_EQ(service.router().breaker_state(key),
            EngineRouter::BreakerState::kClosed);

  const ServiceStats stats = service.stats();
  EXPECT_GE(stats.router.breaker_half_open_probes, 1u);
  EXPECT_EQ(stats.completed, 1u);

  // Closed for real: another request flows normally.
  EXPECT_TRUE(service
                  .ExplainSync(faulty, data::SoccerConstraints(),
                               SoccerTable(), ConstraintRequest())
                  .ok());
}

TEST(BreakerTest, HalfOpenProbeFailureReopensTheBreaker) {
  auto faulty = std::make_shared<FaultyAlgorithm>(
      "faulty-breaker-reopen", repair::MakeAlgorithm1(),
      FaultyOptions{.fail_first = 1000});
  ServiceOptions options;
  options.retry = FastRetry(2);
  options.router.breaker.window = 4;
  options.router.breaker.min_samples = 2;
  options.router.breaker.failure_rate_threshold = 0.5;
  options.router.breaker.cooldown = std::chrono::milliseconds(30);
  ExplainService service(options);
  const EngineKey key = EngineRouter::KeyOf(*faulty, data::SoccerConstraints(),
                                            *SoccerTable());

  ASSERT_FALSE(service
                   .ExplainSync(faulty, data::SoccerConstraints(),
                                SoccerTable(), ConstraintRequest())
                   .ok());
  ASSERT_EQ(service.router().breaker_state(key),
            EngineRouter::BreakerState::kOpen);

  // sleep-ok: waits out the breaker cooldown so the next call is the
  // half-open probe.
  std::this_thread::sleep_for(std::chrono::milliseconds(60));

  // The probe fails transient: straight back to open.
  ASSERT_FALSE(service
                   .ExplainSync(faulty, data::SoccerConstraints(),
                                SoccerTable(), ConstraintRequest())
                   .ok());
  EXPECT_EQ(service.router().breaker_state(key),
            EngineRouter::BreakerState::kOpen);
  EXPECT_GE(service.stats().router.breaker_open, 2u);
}

TEST(BatchIsolationTest, OneMemberFailureLeavesSiblingsIntact) {
  // Coalesce three jobs into one batch; the middle member's first
  // perturbed-table repair is faulted with a *permanent* error. Only
  // that ticket fails; its siblings resolve OK with values identical to
  // a fault-free run.
  auto gated = std::make_shared<GatedAlgorithm>(repair::MakeAlgorithm1());
  ServiceOptions options;
  options.num_workers = 1;
  options.max_coalesced_requests = 8;
  ExplainService service(options);

  const auto table = SoccerTable();

  // Baseline values for the sibling request, fault-free.
  auto baseline_alg = std::make_shared<GatedAlgorithm>(
      repair::MakeAlgorithm1());
  baseline_alg->Release();
  auto baseline = ExplainService().ExplainSync(
      baseline_alg, data::SoccerConstraints(), table, ConstraintRequest());
  ASSERT_TRUE(baseline.ok());

  // Pin the single worker on job A (its reference repair blocks on the
  // gate), then queue B, C, D on the same engine so they coalesce.
  Ticket a = service.Submit(gated, data::SoccerConstraints(), table,
                            ConstraintRequest());
  gated->WaitUntilStarted();

  Ticket b = service.Submit(gated, data::SoccerConstraints(), table,
                            ConstraintRequest());
  ExplainRequest cells_request;
  cells_request.target = data::SoccerTargetCell();
  cells_request.kind = ExplainKind::kCells;
  cells_request.cells.policy = AbsentCellPolicy::kNull;
  cells_request.cells.method = CellMethod::kSampling;
  cells_request.cells.num_samples = 8;
  Ticket c = service.Submit(gated, data::SoccerConstraints(), table,
                            cells_request);
  Ticket d = service.Submit(gated, data::SoccerConstraints(), table,
                            ConstraintRequest());
  ASSERT_EQ(service.pending(), 3u);

  // Only member C samples perturbed tables, so the table-miss site hits
  // exactly its first evaluation — with a permanent code, so the
  // failure sticks instead of healing via retry.
  fault::ScopedFaultPlan plan(
      {.seed = 3,
       .sites = {{.site = "repair.eval_table_miss",
                  .kind = fault::FaultKind::kTransient,
                  .fail_first = 1,
                  .code = StatusCode::kInternal}}});

  gated->Release();
  auto result_a = a.Wait();
  auto result_b = b.Wait();
  auto result_c = c.Wait();
  auto result_d = d.Wait();

  ASSERT_TRUE(result_a.ok()) << result_a.status();
  ASSERT_TRUE(result_b.ok()) << result_b.status();
  ASSERT_FALSE(result_c.ok());
  EXPECT_EQ(result_c.status().code(), StatusCode::kInternal);
  ASSERT_TRUE(result_d.ok()) << result_d.status();

  // Siblings carry correct values: identical to the fault-free run.
  for (const auto* sibling : {&result_b, &result_d}) {
    ASSERT_TRUE((*sibling)->explanation.has_value());
    const auto& ranked = (*sibling)->explanation->ranked;
    const auto& expected = baseline->explanation->ranked;
    ASSERT_EQ(ranked.size(), expected.size());
    for (std::size_t i = 0; i < ranked.size(); ++i) {
      EXPECT_EQ(ranked[i].label, expected[i].label);
      EXPECT_EQ(ranked[i].shapley, expected[i].shapley);
    }
  }

  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.coalesced_batches, 1u);
  EXPECT_EQ(stats.coalesced_jobs, 3u);
  EXPECT_EQ(stats.completed, 3u);
  EXPECT_EQ(stats.failed, 1u);
  EXPECT_EQ(stats.failed_permanent, 1u);
}

}  // namespace
}  // namespace trex::serving
