// Instrumented pass-through repairers shared by the serving test suites
// and bench_serving — one copy of the gating / counting / cancellation
// protocols instead of a drift-prone clone per file.
//
// All wrappers delegate `Repair` to an inner algorithm unchanged, so
// explanation *values* through them are identical to the inner
// repairer's; only observability (call counts) and scheduling (gates,
// latency pads, cancel triggers) differ. Each carries its own routing
// name, since `EngineRouter` keys engines by `name()`.

#ifndef TREX_TESTS_SERVING_ALGORITHM_FIXTURES_H_
#define TREX_TESTS_SERVING_ALGORITHM_FIXTURES_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <utility>

#include "repair/algorithm.h"
#include "serving/cancel.h"

namespace trex::testing {

/// Pass-through repairer whose calls block until `Release()` — lets a
/// test or bench pin a service worker on a known job while it queues
/// more (the backlog every coalescing/shedding scenario needs).
class GatedAlgorithm : public repair::RepairAlgorithm {
 public:
  explicit GatedAlgorithm(std::shared_ptr<const repair::RepairAlgorithm> inner)
      : inner_(std::move(inner)) {}

  std::string name() const override { return "gated(" + inner_->name() + ")"; }

  Result<Table> Repair(const dc::DcSet& dcs,
                       const Table& dirty) const override {
    {
      std::unique_lock<std::mutex> lock(mu_);
      started_ = true;
      started_cv_.notify_all();
      release_cv_.wait(lock, [this] { return released_; });
    }
    return inner_->Repair(dcs, dirty);
  }

  void WaitUntilStarted() const {
    std::unique_lock<std::mutex> lock(mu_);
    started_cv_.wait(lock, [this] { return started_; });
  }

  void Release() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      released_ = true;
    }
    release_cv_.notify_all();
  }

 private:
  std::shared_ptr<const repair::RepairAlgorithm> inner_;
  mutable std::mutex mu_;
  mutable std::condition_variable started_cv_;
  mutable std::condition_variable release_cv_;
  mutable bool started_ = false;
  bool released_ = false;
};

/// Pass-through repairer that counts calls and optionally pads each
/// with a fixed latency, under a caller-chosen routing name. The
/// counter attributes repair cost to one traffic stream; the pad models
/// I/O-bound backends and stretches sweeps so wall-clock deadlines land
/// mid-run deterministically enough to assert on call counts.
class InstrumentedAlgorithm : public repair::RepairAlgorithm {
 public:
  InstrumentedAlgorithm(std::string name,
                        std::shared_ptr<const repair::RepairAlgorithm> inner,
                        std::chrono::microseconds pad =
                            std::chrono::microseconds(0))
      : name_(std::move(name)), inner_(std::move(inner)), pad_(pad) {}

  std::string name() const override { return name_; }

  Result<Table> Repair(const dc::DcSet& dcs,
                       const Table& dirty) const override {
    calls_.fetch_add(1);
    // sleep-ok: simulates a slow repair to widen coalescing windows; not
    // a sync point — tests gate on calls_/latches, never on this timing.
    if (pad_.count() > 0) std::this_thread::sleep_for(pad_);
    return inner_->Repair(dcs, dirty);
  }

  std::size_t calls() const { return calls_.load(); }

 private:
  std::string name_;
  std::shared_ptr<const repair::RepairAlgorithm> inner_;
  std::chrono::microseconds pad_;
  mutable std::atomic<std::size_t> calls_{0};
};

/// Pass-through repairer that counts calls and flips a cancel source
/// once a budget is spent — deterministic mid-sweep cancellation.
class CancelAfterAlgorithm : public repair::RepairAlgorithm {
 public:
  CancelAfterAlgorithm(std::shared_ptr<const repair::RepairAlgorithm> inner,
                       std::size_t cancel_after)
      : inner_(std::move(inner)), cancel_after_(cancel_after) {}

  std::string name() const override {
    return "cancel-after(" + inner_->name() + ")";
  }

  Result<Table> Repair(const dc::DcSet& dcs,
                       const Table& dirty) const override {
    if (calls_.fetch_add(1) + 1 >= cancel_after_ && cancel_after_ > 0) {
      source_.Cancel();
    }
    return inner_->Repair(dcs, dirty);
  }

  std::size_t calls() const { return calls_.load(); }
  CancelToken token() const { return source_.token(); }

 private:
  std::shared_ptr<const repair::RepairAlgorithm> inner_;
  std::size_t cancel_after_;
  mutable std::atomic<std::size_t> calls_{0};
  mutable CancelSource source_;
};

}  // namespace trex::testing

#endif  // TREX_TESTS_SERVING_ALGORITHM_FIXTURES_H_
