// Deadline degradation: `RequestOptions::degrade_on_deadline` turns
// deadline expiry into a *soften* — sampled work finishes its current
// wave and the ticket resolves OK with partial confidence-bounded
// estimates (`ExplainResult::approximate` + achieved CI width) instead
// of `Status::Cancelled`. These are the serving-layer regression pins
// for the anytime estimation path.

#include <chrono>
#include <memory>

#include <gtest/gtest.h>

#include "core/engine.h"
#include "data/soccer.h"
#include "repair/soccer_algorithm1.h"
#include "serving/service.h"
#include "tests/serving/algorithm_fixtures.h"

namespace trex::serving {
namespace {

using trex::testing::InstrumentedAlgorithm;

std::shared_ptr<const Table> SoccerTable() {
  return std::make_shared<const Table>(data::SoccerDirtyTable());
}

/// A sampled cell request with a large budget and an unreachable anytime
/// target: only the soften token can end it before the budget — and the
/// column-sample policy keeps working tables fresh, so nearly every
/// evaluation is a real repair run (no memo shortcuts racing the timer).
ExplainRequest SlowSampledRequest() {
  ExplainRequest request;
  request.target = data::SoccerTargetCell();
  request.kind = ExplainKind::kCells;
  request.cells.policy = AbsentCellPolicy::kSampleFromColumn;
  request.cells.method = CellMethod::kSampling;
  request.cells.num_samples = 4096;
  request.cells.seed = 17;
  AnytimeOptions anytime;
  anytime.target_ci_half_width = 1e-9;  // unreachable
  anytime.check_interval = 32;          // one shard per wave
  request.anytime = anytime;
  return request;
}

TEST(DegradeOnDeadlineTest, ExpiredDeadlineResolvesPartialEstimate) {
  ExplainService service;
  RequestOptions options;
  options.deadline =
      std::chrono::steady_clock::now() - std::chrono::milliseconds(1);
  options.degrade_on_deadline = true;

  Ticket ticket =
      service.Submit(repair::MakeAlgorithm1(), data::SoccerConstraints(),
                     SoccerTable(), SlowSampledRequest(), options);
  auto result = ticket.Wait();

  // The contract under test: never kCancelled — an OK result carrying
  // partial but confidence-bounded estimates.
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result->approximate);
  EXPECT_GT(result->sweeps, 0u);
  EXPECT_LT(result->sweeps, 4096u);
  ASSERT_TRUE(result->achieved_ci_half_width.has_value());
  EXPECT_GT(*result->achieved_ci_half_width, 0.0);
  ASSERT_TRUE(result->explanation.has_value());
  EXPECT_FALSE(result->explanation->ranked.empty());
  for (const PlayerScore& score : result->explanation->ranked) {
    EXPECT_GT(score.num_samples, 0u);
  }

  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.completed, 1u);
  EXPECT_EQ(stats.degraded, 1u);
  EXPECT_EQ(stats.cancelled, 0u);
  EXPECT_EQ(stats.expired, 0u);
}

TEST(DegradeOnDeadlineTest, ExactKindsRunToCompletion) {
  // Exact enumeration paths ignore the soften token: with degradation
  // requested, an expired deadline must not cancel them — they run to
  // completion and resolve exact (non-approximate) results.
  ExplainService service;
  RequestOptions options;
  options.deadline =
      std::chrono::steady_clock::now() - std::chrono::milliseconds(1);
  options.degrade_on_deadline = true;

  ExplainRequest request;
  request.target = data::SoccerTargetCell();
  request.kind = ExplainKind::kConstraints;
  Ticket ticket =
      service.Submit(repair::MakeAlgorithm1(), data::SoccerConstraints(),
                     SoccerTable(), request, options);
  auto result = ticket.Wait();
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_FALSE(result->approximate);
  EXPECT_FALSE(result->explanation->ranked.empty());

  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.completed, 1u);
  EXPECT_EQ(stats.degraded, 0u);
  EXPECT_EQ(stats.cancelled, 0u);
}

TEST(DegradeOnDeadlineTest, HardDeadlineStillCancelsWithoutOptIn) {
  // Without `degrade_on_deadline`, the legacy contract holds: expiry is
  // a cancellation, counted in `expired`.
  ExplainService service;
  RequestOptions options;
  options.deadline =
      std::chrono::steady_clock::now() - std::chrono::milliseconds(1);

  Ticket ticket =
      service.Submit(repair::MakeAlgorithm1(), data::SoccerConstraints(),
                     SoccerTable(), SlowSampledRequest(), options);
  auto result = ticket.Wait();
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsCancelled());
  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.expired, 1u);
  EXPECT_EQ(stats.cancelled, 1u);
  EXPECT_EQ(stats.degraded, 0u);
}

TEST(DegradeOnDeadlineTest, FarDeadlineDegradesNothing) {
  // A generous deadline never fires: the job runs its full budget (or
  // to its anytime target) and resolves non-approximate.
  ExplainService service;
  RequestOptions options;
  options.deadline =
      std::chrono::steady_clock::now() + std::chrono::hours(1);
  options.degrade_on_deadline = true;

  ExplainRequest request;
  request.target = data::SoccerTargetCell();
  request.kind = ExplainKind::kCells;
  request.cells.policy = AbsentCellPolicy::kNull;
  request.cells.method = CellMethod::kSampling;
  request.cells.num_samples = 64;
  request.cells.seed = 17;
  Ticket ticket =
      service.Submit(repair::MakeAlgorithm1(), data::SoccerConstraints(),
                     SoccerTable(), request, options);
  auto result = ticket.Wait();
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_FALSE(result->approximate);
  EXPECT_EQ(result->sweeps, 64u);
  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.degraded, 0u);
  EXPECT_EQ(stats.completed, 1u);
}

}  // namespace
}  // namespace trex::serving
