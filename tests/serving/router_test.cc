// EngineRouter: instance-keyed reuse, LRU eviction + refetch, and the
// safety of evicted-but-held entries.

#include "serving/router.h"

#include <gtest/gtest.h>

#include <memory>

#include "data/soccer.h"
#include "repair/soccer_algorithm1.h"

namespace trex::serving {
namespace {

std::shared_ptr<const Table> SoccerTable() {
  return std::make_shared<const Table>(data::SoccerDirtyTable());
}

/// A second, distinct table (one extra corruption -> different
/// fingerprint and different repair instance).
std::shared_ptr<const Table> VariantTable() {
  Table dirty = data::SoccerDirtyTable();
  dirty.Set(data::SoccerCell(3, "City"), Value("Madird"));
  return std::make_shared<const Table>(dirty);
}

ExplainRequest ConstraintRequest() {
  ExplainRequest request;
  request.target = data::SoccerTargetCell();
  request.kind = ExplainKind::kConstraints;
  return request;
}

TEST(EngineRouterTest, SameInstanceReusesOneEngine) {
  EngineRouter router;
  const auto algorithm = repair::MakeAlgorithm1();
  const auto table = SoccerTable();
  auto a = router.Acquire(algorithm, data::SoccerConstraints(), table);
  auto b = router.Acquire(algorithm, data::SoccerConstraints(), table);
  EXPECT_EQ(a.get(), b.get());
  const RouterStats stats = router.stats();
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.resident, 1u);
}

TEST(EngineRouterTest, EqualContentInDistinctHandlesRoutesTogether) {
  // Routing keys on *content*, not pointer identity: two snapshots of
  // the same table share one engine (and its reference repair).
  EngineRouter router;
  const auto algorithm = repair::MakeAlgorithm1();
  auto a = router.Acquire(algorithm, data::SoccerConstraints(), SoccerTable());
  auto b = router.Acquire(algorithm, data::SoccerConstraints(), SoccerTable());
  EXPECT_EQ(a.get(), b.get());
}

TEST(EngineRouterTest, DistinctTablesGetDistinctEngines) {
  EngineRouter router;
  const auto algorithm = repair::MakeAlgorithm1();
  auto a = router.Acquire(algorithm, data::SoccerConstraints(), SoccerTable());
  auto b = router.Acquire(algorithm, data::SoccerConstraints(), VariantTable());
  EXPECT_NE(a.get(), b.get());
  EXPECT_EQ(router.stats().resident, 2u);
}

TEST(EngineRouterTest, DistinctConstraintSetsGetDistinctEngines) {
  EngineRouter router;
  const auto algorithm = repair::MakeAlgorithm1();
  const auto table = SoccerTable();
  dc::DcSet reduced = data::SoccerConstraints().Without(0);
  auto a = router.Acquire(algorithm, data::SoccerConstraints(), table);
  auto b = router.Acquire(algorithm, reduced, table);
  EXPECT_NE(a.get(), b.get());
}

TEST(EngineRouterTest, LruEvictionAndRefetch) {
  RouterOptions options;
  options.max_engines = 1;
  EngineRouter router(options);
  const auto algorithm = repair::MakeAlgorithm1();
  const auto table_a = SoccerTable();
  const auto table_b = VariantTable();

  auto a = router.Acquire(algorithm, data::SoccerConstraints(), table_a);
  EXPECT_EQ(router.stats().evictions, 0u);
  // B displaces A (cap 1)...
  auto b = router.Acquire(algorithm, data::SoccerConstraints(), table_b);
  EXPECT_EQ(router.stats().evictions, 1u);
  EXPECT_EQ(router.stats().resident, 1u);
  // ...and refetching A rebuilds a fresh engine (a miss, not a hit).
  auto a2 = router.Acquire(algorithm, data::SoccerConstraints(), table_a);
  EXPECT_NE(a.get(), a2.get());
  const RouterStats stats = router.stats();
  EXPECT_EQ(stats.misses, 3u);
  EXPECT_EQ(stats.hits, 0u);
  EXPECT_EQ(stats.evictions, 2u);
  EXPECT_EQ(stats.resident, 1u);
}

TEST(EngineRouterTest, LruPrefersEvictingTheColdestEngine) {
  RouterOptions options;
  options.max_engines = 2;
  EngineRouter router(options);
  const auto algorithm = repair::MakeAlgorithm1();
  const auto table_a = SoccerTable();
  const auto table_b = VariantTable();

  auto a = router.Acquire(algorithm, data::SoccerConstraints(), table_a);
  auto b = router.Acquire(algorithm, data::SoccerConstraints(), table_b);
  // Touch A so B is the LRU victim when C arrives.
  router.Acquire(algorithm, data::SoccerConstraints(), table_a);
  Table third = data::SoccerDirtyTable();
  third.Set(data::SoccerCell(2, "City"), Value("Lodnon"));
  router.Acquire(algorithm, data::SoccerConstraints(),
                 std::make_shared<const Table>(third));
  // A must still be resident: refetching it is a hit.
  const std::size_t hits_before = router.stats().hits;
  auto a2 = router.Acquire(algorithm, data::SoccerConstraints(), table_a);
  EXPECT_EQ(a2.get(), a.get());
  EXPECT_EQ(router.stats().hits, hits_before + 1);
}

TEST(EngineRouterTest, EvictedEntryStaysUsableWhileHeld) {
  RouterOptions options;
  options.max_engines = 1;
  EngineRouter router(options);
  const auto algorithm = repair::MakeAlgorithm1();

  auto a = router.Acquire(algorithm, data::SoccerConstraints(), SoccerTable());
  router.Acquire(algorithm, data::SoccerConstraints(), VariantTable());
  ASSERT_EQ(router.stats().evictions, 1u);

  // The evicted engine is alive as long as we hold the entry.
  auto result = a->engine.Explain(ConstraintRequest());
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_TRUE(result->explanation.has_value());
}

TEST(EngineRouterTest, RouterAppliesEngineOptions) {
  RouterOptions options;
  options.engine_options.num_threads = 3;
  options.engine_options.max_memo_entries = 17;
  EngineRouter router(options);
  auto entry = router.Acquire(repair::MakeAlgorithm1(),
                              data::SoccerConstraints(), SoccerTable());
  EXPECT_EQ(entry->engine.options().num_threads, 3u);
  EXPECT_EQ(entry->engine.options().max_memo_entries, 17u);
}

}  // namespace
}  // namespace trex::serving
