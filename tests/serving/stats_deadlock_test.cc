// Regression pin for the stats-deadlock rule (see the lock-model
// comments in serving/service.h and serving/router.h): `stats()` — on
// the service and on the router — must be callable from any thread at
// any time, including while a concurrent batch is parked *inside* an
// engine call with that engine entry's mutex held. The rule is
// structural (stats paths take only `mu_` and the router's leaf lock,
// never an entry mutex; per-entry footprints are read from an atomic
// sampled outside the guarded set), and this test is the executable
// witness: a watchdog turns any reintroduced lock-order inversion into
// a test failure instead of a hung CI job.

#include <gtest/gtest.h>

#include <chrono>
#include <future>
#include <memory>

#include "data/soccer.h"
#include "repair/soccer_algorithm1.h"
#include "serving/service.h"
#include "tests/serving/algorithm_fixtures.h"

namespace trex::serving {
namespace {

using trex::testing::GatedAlgorithm;

std::shared_ptr<const Table> SoccerTable() {
  return std::make_shared<const Table>(data::SoccerDirtyTable());
}

ExplainRequest ConstraintRequest() {
  ExplainRequest request;
  request.target = data::SoccerTargetCell();
  request.kind = ExplainKind::kConstraints;
  return request;
}

// Runs `fn` on a helper thread and fails the test (instead of hanging
// it) if `fn` has not returned within the watchdog budget. The budget
// is generous — it only has to distinguish "returned promptly" from
// "blocked on a held entry mutex", not measure latency.
template <typename Fn>
void ExpectCompletesPromptly(Fn fn, const char* what) {
  std::future<void> done = std::async(std::launch::async, std::move(fn));
  ASSERT_EQ(done.wait_for(std::chrono::seconds(30)),
            std::future_status::ready)
      << what
      << " blocked while a batch held the engine entry mutex — the "
         "stats-deadlock rule from serving/router.h has regressed";
  done.get();  // propagate any exception from the helper thread
}

TEST(StatsDeadlockTest, ServiceAndRouterStatsWhileEntryMutexHeld) {
  auto gated = std::make_shared<GatedAlgorithm>(repair::MakeAlgorithm1());

  ServiceOptions options;
  options.num_workers = 1;
  ExplainService service(options);

  // Pin the single worker inside the engine call: ServeBatch holds the
  // entry's mutex across the whole Explain, and the gate keeps it there
  // until we release it.
  Ticket ticket = service.Submit(gated, data::SoccerConstraints(),
                                 SoccerTable(), ConstraintRequest());
  gated->WaitUntilStarted();

  ExpectCompletesPromptly(
      [&service] {
        const ServiceStats stats = service.stats();
        EXPECT_EQ(stats.submitted, 1u);
        EXPECT_EQ(stats.completed, 0u);
        // The in-flight engine is resident; its footprint comes from
        // the sampled atomic, not from under the held entry mutex.
        EXPECT_EQ(stats.router.resident, 1u);
      },
      "ExplainService::stats()");
  ExpectCompletesPromptly(
      [&service] {
        const RouterStats stats = service.router().stats();
        EXPECT_EQ(stats.resident, 1u);
        EXPECT_EQ(stats.misses, 1u);
      },
      "EngineRouter::stats()");

  gated->Release();
  EXPECT_TRUE(ticket.Wait().ok());
}

TEST(StatsDeadlockTest, StatsFromCompletionCallback) {
  // on_complete fires on the worker thread right after the future
  // resolves — with no service or entry lock held, so reading stats
  // from inside the callback must be safe too.
  ExplainService service;
  ServiceStats observed;
  RequestOptions options;
  std::promise<void> fired;
  options.on_complete = [&](const Result<ExplainResult>&) {
    observed = service.stats();
    fired.set_value();
  };
  Ticket ticket =
      service.Submit(repair::MakeAlgorithm1(), data::SoccerConstraints(),
                     SoccerTable(), ConstraintRequest(), options);
  ASSERT_TRUE(ticket.Wait().ok());
  ASSERT_EQ(fired.get_future().wait_for(std::chrono::seconds(30)),
            std::future_status::ready)
      << "on_complete never fired";
  EXPECT_EQ(observed.submitted, 1u);
  EXPECT_EQ(observed.completed, 1u);
}

}  // namespace
}  // namespace trex::serving
