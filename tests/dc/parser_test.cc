#include "dc/parser.h"

#include <gtest/gtest.h>

#include "common/random.h"

namespace trex::dc {
namespace {

Schema TestSchema() {
  return Schema({Attribute{"Team", ValueType::kString},
                 Attribute{"City", ValueType::kString},
                 Attribute{"Year", ValueType::kInt},
                 Attribute{"Score", ValueType::kDouble}});
}

TEST(ParserTest, BasicAsciiForm) {
  auto dc = ParseDc("!(t1.Team == t2.Team & t1.City != t2.City)",
                    TestSchema());
  ASSERT_TRUE(dc.ok()) << dc.status();
  EXPECT_EQ(dc->arity(), 2);
  ASSERT_EQ(dc->predicates().size(), 2u);
  EXPECT_EQ(dc->predicates()[0].op, CompareOp::kEq);
  EXPECT_EQ(dc->predicates()[1].op, CompareOp::kNeq);
  std::size_t lhs = 0;
  std::size_t rhs = 0;
  EXPECT_TRUE(dc->AsFunctionalDependency(&lhs, &rhs));
  EXPECT_EQ(lhs, 0u);
  EXPECT_EQ(rhs, 1u);
}

TEST(ParserTest, NamePrefix) {
  auto dc = ParseDc("MyRule: !(t1.Team == t2.Team)", TestSchema());
  ASSERT_TRUE(dc.ok());
  EXPECT_EQ(dc->name(), "MyRule");
}

TEST(ParserTest, DefaultNameUsedWithoutPrefix) {
  auto dc = ParseDc("!(t1.Team == t2.Team)", TestSchema(), "C7");
  ASSERT_TRUE(dc.ok());
  EXPECT_EQ(dc->name(), "C7");
}

TEST(ParserTest, ForallQuantifierForm) {
  auto dc = ParseDc(
      "forall t1,t2. not(t1[Team] = t2[Team] and t1[City] <> t2[City])",
      TestSchema());
  ASSERT_TRUE(dc.ok()) << dc.status();
  EXPECT_EQ(dc->arity(), 2);
  EXPECT_EQ(dc->predicates()[1].op, CompareOp::kNeq);
}

TEST(ParserTest, UnicodeForm) {
  auto dc = ParseDc("∀t1,t2. ¬(t1.Team = t2.Team ∧ t1.City ≠ t2.City)",
                    TestSchema());
  ASSERT_TRUE(dc.ok()) << dc.status();
  EXPECT_EQ(dc->predicates().size(), 2u);
}

TEST(ParserTest, UnicodeOrderOps) {
  auto dc = ParseDc("!(t1.Year ≤ t2.Year & t1.Score ≥ t2.Score)",
                    TestSchema());
  ASSERT_TRUE(dc.ok()) << dc.status();
  EXPECT_EQ(dc->predicates()[0].op, CompareOp::kLe);
  EXPECT_EQ(dc->predicates()[1].op, CompareOp::kGe);
}

TEST(ParserTest, BracketAttributeSyntax) {
  auto dc = ParseDc("!(t1[City] == t2[City])", TestSchema());
  ASSERT_TRUE(dc.ok()) << dc.status();
  EXPECT_EQ(dc->predicates()[0].lhs.col(), 1u);
}

TEST(ParserTest, UnaryConstraint) {
  auto dc = ParseDc("!(t1.Year < 1900)", TestSchema());
  ASSERT_TRUE(dc.ok()) << dc.status();
  EXPECT_EQ(dc->arity(), 1);
  EXPECT_TRUE(dc->predicates()[0].rhs.is_constant());
  EXPECT_EQ(dc->predicates()[0].rhs.constant(), Value(1900));
}

TEST(ParserTest, StringConstants) {
  auto single = ParseDc("!(t1.Team == 'Real Madrid')", TestSchema());
  ASSERT_TRUE(single.ok()) << single.status();
  EXPECT_EQ(single->predicates()[0].rhs.constant(), Value("Real Madrid"));

  auto dbl = ParseDc("!(t1.Team == \"Real Madrid\")", TestSchema());
  ASSERT_TRUE(dbl.ok());
  EXPECT_EQ(dbl->predicates()[0].rhs.constant(), Value("Real Madrid"));
}

TEST(ParserTest, NumericConstants) {
  auto dc = ParseDc("!(t1.Score >= 4.5 & t1.Year == 2017)", TestSchema());
  ASSERT_TRUE(dc.ok()) << dc.status();
  EXPECT_EQ(dc->predicates()[0].rhs.constant(), Value(4.5));
  EXPECT_EQ(dc->predicates()[1].rhs.constant(), Value(2017));
}

TEST(ParserTest, NegativeConstant) {
  auto dc = ParseDc("!(t1.Score < -1.5)", TestSchema());
  ASSERT_TRUE(dc.ok()) << dc.status();
  EXPECT_EQ(dc->predicates()[0].rhs.constant(), Value(-1.5));
}

TEST(ParserTest, DoubleAmpersandConjunction) {
  auto dc = ParseDc("!(t1.Team == t2.Team && t1.City != t2.City)",
                    TestSchema());
  ASSERT_TRUE(dc.ok()) << dc.status();
  EXPECT_EQ(dc->predicates().size(), 2u);
}

TEST(ParserTest, WhitespaceInsensitive) {
  auto dc = ParseDc("  ! (  t1 . Team==t2 . Team )  ", TestSchema());
  ASSERT_TRUE(dc.ok()) << dc.status();
}

TEST(ParserTest, UnknownAttributeFails) {
  auto dc = ParseDc("!(t1.Nope == t2.Nope)", TestSchema());
  ASSERT_FALSE(dc.ok());
  EXPECT_EQ(dc.status().code(), StatusCode::kParseError);
  EXPECT_NE(dc.status().message().find("Nope"), std::string::npos);
}

TEST(ParserTest, MissingNegationFails) {
  EXPECT_FALSE(ParseDc("(t1.Team == t2.Team)", TestSchema()).ok());
}

TEST(ParserTest, TrailingJunkFails) {
  EXPECT_FALSE(
      ParseDc("!(t1.Team == t2.Team) extra", TestSchema()).ok());
}

TEST(ParserTest, UnterminatedStringFails) {
  EXPECT_FALSE(ParseDc("!(t1.Team == 'open)", TestSchema()).ok());
}

TEST(ParserTest, MissingOperatorFails) {
  EXPECT_FALSE(ParseDc("!(t1.Team t2.Team)", TestSchema()).ok());
}

TEST(ParserTest, EmptyConjunctionFails) {
  EXPECT_FALSE(ParseDc("!()", TestSchema()).ok());
}

TEST(ParserTest, RoundTripThroughToString) {
  const Schema schema = TestSchema();
  const char* inputs[] = {
      "!(t1.Team == t2.Team & t1.City != t2.City)",
      "!(t1.Year <= t2.Year & t1.Score > t2.Score)",
      "!(t1.Team == 'Real' & t1.Year == 2017)",
      "!(t1.Score >= 4.5)",
  };
  for (const char* input : inputs) {
    auto dc = ParseDc(input, schema);
    ASSERT_TRUE(dc.ok()) << input << ": " << dc.status();
    auto again = ParseDc(dc->ToString(schema), schema);
    ASSERT_TRUE(again.ok()) << dc->ToString(schema);
    EXPECT_EQ(*again, *dc) << input;
  }
}

TEST(ParseDcSetTest, MultilineWithCommentsAndNames) {
  const char* text = R"(
# leading comment
C1: !(t1.Team == t2.Team & t1.City != t2.City)

!(t1.Year < 1900)
)";
  auto dcs = ParseDcSet(text, TestSchema());
  ASSERT_TRUE(dcs.ok()) << dcs.status();
  ASSERT_EQ(dcs->size(), 2u);
  EXPECT_EQ(dcs->at(0).name(), "C1");
  EXPECT_EQ(dcs->at(1).name(), "C2");  // auto-named by position
}

TEST(ParseDcSetTest, ErrorPropagatesFromBadLine) {
  auto dcs = ParseDcSet("!(t1.Team == t2.Team)\n!(bad)", TestSchema());
  EXPECT_FALSE(dcs.ok());
}

TEST(ParseDcSetTest, EmptyInputGivesEmptySet) {
  auto dcs = ParseDcSet("\n# only comments\n", TestSchema());
  ASSERT_TRUE(dcs.ok());
  EXPECT_TRUE(dcs->empty());
}

// Property: randomly generated constraints round-trip through
// ToString -> ParseDc structurally unchanged.
class ParserRoundTripTest : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(ParserRoundTripTest, RandomDcsRoundTrip) {
  Rng rng(GetParam());
  const Schema schema = TestSchema();
  for (int iteration = 0; iteration < 50; ++iteration) {
    const int arity = rng.Bernoulli(0.7) ? 2 : 1;
    const std::size_t num_preds = 1 + rng.Index(4);
    std::vector<Predicate> predicates;
    for (std::size_t p = 0; p < num_preds; ++p) {
      const CompareOp op = static_cast<CompareOp>(rng.Index(6));
      const Operand lhs = Operand::Cell(
          arity == 2 ? static_cast<int>(rng.Index(2)) : 0,
          rng.Index(schema.size()));
      Operand rhs = Operand::Constant(Value("x"));
      const double pick = rng.UniformDouble();
      if (pick < 0.5) {
        rhs = Operand::Cell(
            arity == 2 ? static_cast<int>(rng.Index(2)) : 0,
            rng.Index(schema.size()));
      } else if (pick < 0.7) {
        rhs = Operand::Constant(
            Value(static_cast<std::int64_t>(rng.UniformInt(-50, 50))));
      } else if (pick < 0.85) {
        // Quarter-steps have exact short decimal renderings, so the
        // printed constant parses back to the identical double.
        rhs = Operand::Constant(
            Value(static_cast<double>(rng.UniformInt(-20, 20)) / 4.0));
      } else {
        const char* strings[] = {"Real Madrid", "a b c", "x",
                                 "with.dots", "2017ish"};
        rhs = Operand::Constant(Value(strings[rng.Index(5)]));
      }
      predicates.push_back(Predicate{lhs, op, rhs});
    }
    // The parser infers arity from the tuple variables actually
    // mentioned, so construct with the effective arity.
    int effective_arity = 1;
    for (const Predicate& p : predicates) {
      if (p.MentionsTuple(1)) effective_arity = 2;
    }
    auto dc = DenialConstraint::Make("R", effective_arity, predicates);
    ASSERT_TRUE(dc.ok());
    const std::string text = dc->ToString(schema);
    auto reparsed = ParseDc(text, schema, "R");
    ASSERT_TRUE(reparsed.ok())
        << text << ": " << reparsed.status() << " seed " << GetParam();
    EXPECT_EQ(*reparsed, *dc) << text;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParserRoundTripTest,
                         ::testing::Values(101, 202, 303, 404));

}  // namespace
}  // namespace trex::dc
