#include "dc/predicate.h"

#include <gtest/gtest.h>

namespace trex::dc {
namespace {

Table PairTable() {
  Table t(Schema::AllStrings({"A", "B"}));
  EXPECT_TRUE(t.AppendRow({Value("x"), Value("1")}).ok());
  EXPECT_TRUE(t.AppendRow({Value("x"), Value("2")}).ok());
  EXPECT_TRUE(t.AppendRow({Value::Null(), Value("3")}).ok());
  return t;
}

TEST(CompareOpTest, StringsRoundTripConcepts) {
  EXPECT_STREQ(CompareOpToString(CompareOp::kEq), "==");
  EXPECT_STREQ(CompareOpToString(CompareOp::kNeq), "!=");
  EXPECT_STREQ(CompareOpToString(CompareOp::kLe), "<=");
  EXPECT_STREQ(CompareOpToPrettyString(CompareOp::kEq), "=");
  EXPECT_STREQ(CompareOpToPrettyString(CompareOp::kNeq), "≠");
  EXPECT_STREQ(CompareOpToPrettyString(CompareOp::kGe), "≥");
}

TEST(CompareOpTest, FlipSwapsDirection) {
  EXPECT_EQ(FlipOp(CompareOp::kLt), CompareOp::kGt);
  EXPECT_EQ(FlipOp(CompareOp::kLe), CompareOp::kGe);
  EXPECT_EQ(FlipOp(CompareOp::kGt), CompareOp::kLt);
  EXPECT_EQ(FlipOp(CompareOp::kEq), CompareOp::kEq);
  EXPECT_EQ(FlipOp(CompareOp::kNeq), CompareOp::kNeq);
}

TEST(CompareOpTest, NegateIsComplement) {
  EXPECT_EQ(NegateOp(CompareOp::kEq), CompareOp::kNeq);
  EXPECT_EQ(NegateOp(CompareOp::kNeq), CompareOp::kEq);
  EXPECT_EQ(NegateOp(CompareOp::kLt), CompareOp::kGe);
  EXPECT_EQ(NegateOp(CompareOp::kGe), CompareOp::kLt);
}

TEST(EvalOpTest, ConcreteComparisons) {
  EXPECT_TRUE(EvalOp(Value(1), CompareOp::kEq, Value(1)));
  EXPECT_FALSE(EvalOp(Value(1), CompareOp::kEq, Value(2)));
  EXPECT_TRUE(EvalOp(Value(1), CompareOp::kNeq, Value(2)));
  EXPECT_TRUE(EvalOp(Value(1), CompareOp::kLt, Value(2)));
  EXPECT_TRUE(EvalOp(Value(2), CompareOp::kLe, Value(2)));
  EXPECT_TRUE(EvalOp(Value("b"), CompareOp::kGt, Value("a")));
  EXPECT_TRUE(EvalOp(Value("a"), CompareOp::kGe, Value("a")));
}

TEST(EvalOpTest, NullSemantics) {
  // null = x: never satisfied (unknown cannot be asserted equal).
  EXPECT_FALSE(EvalOp(Value::Null(), CompareOp::kEq, Value("x")));
  EXPECT_FALSE(EvalOp(Value("x"), CompareOp::kEq, Value::Null()));
  EXPECT_FALSE(EvalOp(Value::Null(), CompareOp::kEq, Value::Null()));
  // null != concrete: satisfied (paper Example 2.4 arithmetic).
  EXPECT_TRUE(EvalOp(Value::Null(), CompareOp::kNeq, Value("x")));
  EXPECT_TRUE(EvalOp(Value("x"), CompareOp::kNeq, Value::Null()));
  // null != null: two unknowns cannot be asserted different.
  EXPECT_FALSE(EvalOp(Value::Null(), CompareOp::kNeq, Value::Null()));
  // Order comparisons need both sides.
  EXPECT_FALSE(EvalOp(Value::Null(), CompareOp::kLt, Value(1)));
  EXPECT_FALSE(EvalOp(Value(1), CompareOp::kGe, Value::Null()));
}

TEST(OperandTest, CellResolution) {
  const Table t = PairTable();
  const Operand t1_a = Operand::Cell(0, 0);
  const Operand t2_b = Operand::Cell(1, 1);
  EXPECT_EQ(t1_a.Resolve(t, 0, 1), Value("x"));
  EXPECT_EQ(t2_b.Resolve(t, 0, 1), Value("2"));
  // Row order matters.
  EXPECT_EQ(t2_b.Resolve(t, 1, 0), Value("1"));
}

TEST(OperandTest, ConstantResolution) {
  const Table t = PairTable();
  const Operand c = Operand::Constant(Value("Spain"));
  EXPECT_EQ(c.Resolve(t, 0, 1), Value("Spain"));
  EXPECT_TRUE(c.is_constant());
  EXPECT_FALSE(c.is_cell());
}

TEST(OperandTest, ToStringForms) {
  const Schema schema = Schema::AllStrings({"Team", "City"});
  EXPECT_EQ(Operand::Cell(0, 1).ToString(schema), "t1.City");
  EXPECT_EQ(Operand::Cell(1, 0).ToString(schema), "t2.Team");
  EXPECT_EQ(Operand::Constant(Value("Spain")).ToString(schema), "'Spain'");
  EXPECT_EQ(Operand::Constant(Value(7)).ToString(schema), "7");
}

TEST(OperandTest, Equality) {
  EXPECT_EQ(Operand::Cell(0, 1), Operand::Cell(0, 1));
  EXPECT_FALSE(Operand::Cell(0, 1) == Operand::Cell(1, 1));
  EXPECT_FALSE(Operand::Cell(0, 1) == Operand::Cell(0, 2));
  EXPECT_EQ(Operand::Constant(Value(1)), Operand::Constant(Value(1)));
  EXPECT_FALSE(Operand::Constant(Value(1)) == Operand::Cell(0, 0));
}

TEST(PredicateTest, EvalAgainstRows) {
  const Table t = PairTable();
  // t1.A == t2.A
  const Predicate same_a{Operand::Cell(0, 0), CompareOp::kEq,
                         Operand::Cell(1, 0)};
  EXPECT_TRUE(same_a.Eval(t, 0, 1));
  EXPECT_FALSE(same_a.Eval(t, 0, 2));  // null never equal

  // t1.B != t2.B
  const Predicate diff_b{Operand::Cell(0, 1), CompareOp::kNeq,
                         Operand::Cell(1, 1)};
  EXPECT_TRUE(diff_b.Eval(t, 0, 1));
  EXPECT_FALSE(diff_b.Eval(t, 0, 0));
}

TEST(PredicateTest, ConstantPredicate) {
  const Table t = PairTable();
  const Predicate is_x{Operand::Cell(0, 0), CompareOp::kEq,
                       Operand::Constant(Value("x"))};
  EXPECT_TRUE(is_x.Eval(t, 0, 0));
  EXPECT_FALSE(is_x.Eval(t, 2, 0));  // null
}

TEST(PredicateTest, MentionsTuple) {
  const Predicate cross{Operand::Cell(0, 0), CompareOp::kEq,
                        Operand::Cell(1, 0)};
  EXPECT_TRUE(cross.MentionsTuple(0));
  EXPECT_TRUE(cross.MentionsTuple(1));
  const Predicate unary{Operand::Cell(0, 0), CompareOp::kEq,
                        Operand::Constant(Value(1))};
  EXPECT_TRUE(unary.MentionsTuple(0));
  EXPECT_FALSE(unary.MentionsTuple(1));
}

TEST(PredicateTest, IsCrossTupleEquality) {
  EXPECT_TRUE((Predicate{Operand::Cell(0, 0), CompareOp::kEq,
                         Operand::Cell(1, 2)})
                  .IsCrossTupleEquality());
  EXPECT_FALSE((Predicate{Operand::Cell(0, 0), CompareOp::kNeq,
                          Operand::Cell(1, 0)})
                   .IsCrossTupleEquality());
  EXPECT_FALSE((Predicate{Operand::Cell(0, 0), CompareOp::kEq,
                          Operand::Cell(0, 1)})
                   .IsCrossTupleEquality());
  EXPECT_FALSE((Predicate{Operand::Cell(0, 0), CompareOp::kEq,
                          Operand::Constant(Value(1))})
                   .IsCrossTupleEquality());
}

TEST(PredicateTest, ToStringRendering) {
  const Schema schema = Schema::AllStrings({"Team", "City"});
  const Predicate p{Operand::Cell(0, 0), CompareOp::kNeq,
                    Operand::Cell(1, 0)};
  EXPECT_EQ(p.ToString(schema), "t1.Team != t2.Team");
  EXPECT_EQ(p.ToPrettyString(schema), "t1.Team ≠ t2.Team");
}

}  // namespace
}  // namespace trex::dc
