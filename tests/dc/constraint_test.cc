#include "dc/constraint.h"

#include <gtest/gtest.h>

#include "dc/parser.h"

namespace trex::dc {
namespace {

Schema TestSchema() {
  return Schema::AllStrings({"Team", "City", "Country", "League"});
}

DenialConstraint Fd(const char* name, std::size_t lhs, std::size_t rhs) {
  return DenialConstraint::FunctionalDependency(name, lhs, rhs);
}

TEST(DenialConstraintTest, MakeValidatesArity) {
  EXPECT_FALSE(DenialConstraint::Make("X", 3, {}).ok());
  EXPECT_FALSE(DenialConstraint::Make("X", 0, {}).ok());
  EXPECT_FALSE(DenialConstraint::Make("X", 2, {}).ok());  // no predicates
}

TEST(DenialConstraintTest, MakeRejectsT2InUnary) {
  std::vector<Predicate> preds{{Operand::Cell(0, 0), CompareOp::kEq,
                                Operand::Cell(1, 0)}};
  EXPECT_FALSE(DenialConstraint::Make("X", 1, std::move(preds)).ok());
}

TEST(DenialConstraintTest, FunctionalDependencyShape) {
  const DenialConstraint fd = Fd("C1", 0, 1);
  EXPECT_EQ(fd.name(), "C1");
  EXPECT_EQ(fd.arity(), 2);
  EXPECT_EQ(fd.predicates().size(), 2u);
  std::size_t lhs = 99;
  std::size_t rhs = 99;
  EXPECT_TRUE(fd.AsFunctionalDependency(&lhs, &rhs));
  EXPECT_EQ(lhs, 0u);
  EXPECT_EQ(rhs, 1u);
}

TEST(DenialConstraintTest, ViolationDetection) {
  Table t(TestSchema());
  ASSERT_TRUE(t.AppendRow({Value("Real"), Value("Madrid"), Value("Spain"),
                           Value("La Liga")})
                  .ok());
  ASSERT_TRUE(t.AppendRow({Value("Real"), Value("Capital"), Value("Spain"),
                           Value("La Liga")})
                  .ok());
  const DenialConstraint fd = Fd("C1", 0, 1);  // Team -> City
  EXPECT_TRUE(fd.IsViolatedBy(t, 0, 1));
  EXPECT_TRUE(fd.IsViolatedBy(t, 1, 0));
}

TEST(DenialConstraintTest, NoViolationOnConsistentRows) {
  Table t(TestSchema());
  ASSERT_TRUE(t.AppendRow({Value("Real"), Value("Madrid"), Value("Spain"),
                           Value("La Liga")})
                  .ok());
  ASSERT_TRUE(t.AppendRow({Value("Barca"), Value("Barcelona"),
                           Value("Spain"), Value("La Liga")})
                  .ok());
  EXPECT_FALSE(Fd("C1", 0, 1).IsViolatedBy(t, 0, 1));
}

TEST(DenialConstraintTest, ColumnsOfTuple) {
  const DenialConstraint fd = Fd("C1", 0, 1);
  EXPECT_EQ(fd.ColumnsOfTuple(0), (std::set<std::size_t>{0, 1}));
  EXPECT_EQ(fd.ColumnsOfTuple(1), (std::set<std::size_t>{0, 1}));
  EXPECT_EQ(fd.AllColumns(), (std::set<std::size_t>{0, 1}));
}

TEST(DenialConstraintTest, FdIsSymmetric) {
  EXPECT_TRUE(Fd("C1", 0, 1).IsSymmetric());
}

TEST(DenialConstraintTest, AsymmetricConstraintDetected) {
  // !(t1.City == t2.City & t1.Team != t2.Country) is not symmetric.
  std::vector<Predicate> preds{
      {Operand::Cell(0, 1), CompareOp::kEq, Operand::Cell(1, 1)},
      {Operand::Cell(0, 0), CompareOp::kNeq, Operand::Cell(1, 2)}};
  auto dc = DenialConstraint::Make("X", 2, std::move(preds));
  ASSERT_TRUE(dc.ok());
  EXPECT_FALSE(dc->IsSymmetric());
}

TEST(DenialConstraintTest, OrderedPredicateSymmetric) {
  // !(t1.City == t2.City & t1.Team < t2.Team): swapping t1,t2 gives
  // t2.Team > t1.Team == t1.Team < t2.Team after normalization — wait,
  // swap yields t1.Team > t2.Team, which differs. Not symmetric.
  std::vector<Predicate> preds{
      {Operand::Cell(0, 1), CompareOp::kEq, Operand::Cell(1, 1)},
      {Operand::Cell(0, 0), CompareOp::kLt, Operand::Cell(1, 0)}};
  auto dc = DenialConstraint::Make("X", 2, std::move(preds));
  ASSERT_TRUE(dc.ok());
  EXPECT_FALSE(dc->IsSymmetric());
}

TEST(DenialConstraintTest, UnaryConstraintsAlwaysSymmetric) {
  std::vector<Predicate> preds{{Operand::Cell(0, 0), CompareOp::kEq,
                                Operand::Constant(Value("x"))}};
  auto dc = DenialConstraint::Make("U", 1, std::move(preds));
  ASSERT_TRUE(dc.ok());
  EXPECT_TRUE(dc->IsSymmetric());
}

TEST(DenialConstraintTest, NonFdShapesRejected) {
  // Three predicates: not FD-shaped.
  const Schema schema = TestSchema();
  auto dc = ParseDc(
      "!(t1.Team == t2.Team & t1.City != t2.City & t1.League == t2.League)",
      schema);
  ASSERT_TRUE(dc.ok());
  EXPECT_FALSE(dc->AsFunctionalDependency(nullptr, nullptr));
  // Constant predicate: not FD-shaped.
  auto dc2 = ParseDc("!(t1.Team == 'Real' & t1.City != t2.City)", schema);
  ASSERT_TRUE(dc2.ok());
  EXPECT_FALSE(dc2->AsFunctionalDependency(nullptr, nullptr));
}

TEST(DenialConstraintTest, ToStringIsParseable) {
  const Schema schema = TestSchema();
  const DenialConstraint fd = Fd("C1", 0, 1);
  auto reparsed = ParseDc(fd.ToString(schema), schema, "C1");
  ASSERT_TRUE(reparsed.ok()) << reparsed.status();
  EXPECT_EQ(*reparsed, fd);
}

TEST(DenialConstraintTest, PrettyStringHasQuantifier) {
  const Schema schema = TestSchema();
  const std::string pretty = Fd("C1", 0, 1).ToPrettyString(schema);
  EXPECT_NE(pretty.find("∀t1,t2"), std::string::npos);
  EXPECT_NE(pretty.find("¬("), std::string::npos);
  EXPECT_NE(pretty.find("≠"), std::string::npos);
}

TEST(DcSetTest, BasicAccessors) {
  DcSet dcs({Fd("C1", 0, 1), Fd("C2", 1, 2)});
  EXPECT_EQ(dcs.size(), 2u);
  EXPECT_FALSE(dcs.empty());
  EXPECT_EQ(dcs.at(0).name(), "C1");
  EXPECT_EQ(*dcs.IndexOf("C2"), 1u);
  EXPECT_FALSE(dcs.IndexOf("C9").ok());
}

TEST(DcSetTest, SubsetByMask) {
  DcSet dcs({Fd("C1", 0, 1), Fd("C2", 1, 2), Fd("C3", 2, 3)});
  const DcSet only_c2 = dcs.Subset(0b010);
  ASSERT_EQ(only_c2.size(), 1u);
  EXPECT_EQ(only_c2.at(0).name(), "C2");

  const DcSet c1_c3 = dcs.Subset(0b101);
  ASSERT_EQ(c1_c3.size(), 2u);
  EXPECT_EQ(c1_c3.at(0).name(), "C1");
  EXPECT_EQ(c1_c3.at(1).name(), "C3");

  EXPECT_TRUE(dcs.Subset(0).empty());
  EXPECT_EQ(dcs.Subset(0b111).size(), 3u);
}

TEST(DcSetTest, WithoutRemovesByIndex) {
  DcSet dcs({Fd("C1", 0, 1), Fd("C2", 1, 2), Fd("C3", 2, 3)});
  const DcSet without = dcs.Without(1);
  ASSERT_EQ(without.size(), 2u);
  EXPECT_EQ(without.at(0).name(), "C1");
  EXPECT_EQ(without.at(1).name(), "C3");
}

TEST(DcSetTest, AllColumnsUnion) {
  DcSet dcs({Fd("C1", 0, 1), Fd("C2", 2, 3)});
  EXPECT_EQ(dcs.AllColumns(), (std::set<std::size_t>{0, 1, 2, 3}));
}

TEST(DcSetDeathTest, AtOutOfRange) {
  DcSet dcs({Fd("C1", 0, 1)});
  EXPECT_DEATH(dcs.at(1), "Check failed");
}

}  // namespace
}  // namespace trex::dc
