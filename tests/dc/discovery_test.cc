#include "dc/discovery.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <map>
#include <set>

#include "data/generator.h"
#include "data/soccer.h"
#include "dc/violation.h"

namespace trex::dc {
namespace {

std::set<std::string> Names(const std::vector<DiscoveredFd>& fds) {
  std::set<std::string> names;
  for (const DiscoveredFd& fd : fds) names.insert(fd.constraint.name());
  return names;
}

TEST(DiscoveryTest, FindsPaperFdsOnCleanSoccerTable) {
  auto fds = DiscoverFds(data::SoccerCleanTable());
  ASSERT_TRUE(fds.ok());
  const auto names = Names(*fds);
  // The Figure 1 FDs hold on the clean table.
  EXPECT_TRUE(names.count("Team->City") > 0);
  EXPECT_TRUE(names.count("City->Country") > 0);
  EXPECT_TRUE(names.count("League->Country") > 0);
}

TEST(DiscoveryTest, DirtyTableBreaksExactFds) {
  auto fds = DiscoverFds(data::SoccerDirtyTable());
  ASSERT_TRUE(fds.ok());
  const auto names = Names(*fds);
  // t5's Capital/España breaks Team->City and League->Country exactly.
  EXPECT_EQ(names.count("Team->City"), 0u);
  EXPECT_EQ(names.count("League->Country"), 0u);
}

TEST(DiscoveryTest, ApproximateToleranceRecoversDirtyFds) {
  // On the dirty table: Team->City breaks on 2 of the 3 Real-Madrid
  // pairs (g1 = 2/3); League->Country breaks on 4 of the 10 La-Liga
  // pairs (g1 = 0.4). Tolerance 0.7 recovers both.
  FdDiscoveryOptions options;
  options.max_violation_fraction = 0.7;
  auto fds = DiscoverFds(data::SoccerDirtyTable(), options);
  ASSERT_TRUE(fds.ok());
  const auto names = Names(*fds);
  EXPECT_TRUE(names.count("Team->City") > 0);
  EXPECT_TRUE(names.count("League->Country") > 0);
  for (const DiscoveredFd& fd : *fds) {
    if (fd.constraint.name() == "League->Country") {
      EXPECT_EQ(fd.support_pairs, 10u);  // C(5,2) La-Liga pairs
      EXPECT_NEAR(fd.violation_fraction, 0.4, 1e-12);
    }
    if (fd.constraint.name() == "Team->City") {
      EXPECT_EQ(fd.support_pairs, 3u);  // C(3,2) Real-Madrid pairs
      EXPECT_NEAR(fd.violation_fraction, 2.0 / 3.0, 1e-12);
    }
  }
}

TEST(DiscoveryTest, SupportPairsComputed) {
  auto fds = DiscoverFds(data::SoccerCleanTable());
  ASSERT_TRUE(fds.ok());
  for (const DiscoveredFd& fd : *fds) {
    EXPECT_GT(fd.support_pairs, 0u);
    EXPECT_DOUBLE_EQ(fd.violation_fraction, 0.0);
  }
}

TEST(DiscoveryTest, KeyLikeLhsPruned) {
  // A table whose first column is a key: every FD Key -> X holds
  // vacuously; min_support_pairs=1 prunes them (all groups singleton).
  Table t(Schema::AllStrings({"Id", "X"}));
  ASSERT_TRUE(t.AppendRow({Value("a"), Value("1")}).ok());
  ASSERT_TRUE(t.AppendRow({Value("b"), Value("1")}).ok());
  ASSERT_TRUE(t.AppendRow({Value("c"), Value("2")}).ok());
  auto fds = DiscoverFds(t);
  ASSERT_TRUE(fds.ok());
  for (const DiscoveredFd& fd : *fds) {
    EXPECT_NE(fd.lhs[0], 0u) << "key-like LHS should be pruned";
  }
}

TEST(DiscoveryTest, NullsGiveNoEvidence) {
  Table t(Schema::AllStrings({"A", "B"}));
  ASSERT_TRUE(t.AppendRow({Value("k"), Value("1")}).ok());
  ASSERT_TRUE(t.AppendRow({Value("k"), Value::Null()}).ok());
  ASSERT_TRUE(t.AppendRow({Value("k"), Value("1")}).ok());
  auto fds = DiscoverFds(t);
  ASSERT_TRUE(fds.ok());
  // A -> B holds: the null B row contributes no violating pair.
  EXPECT_TRUE(Names(*fds).count("A->B") > 0);
}

TEST(DiscoveryTest, TwoColumnLhsMinimality) {
  // Year alone does not determine Place; (League, Year)...: construct a
  // table where only the composite FD holds.
  Table t(Schema::AllStrings({"L", "Y", "P"}));
  ASSERT_TRUE(t.AppendRow({Value("a"), Value("1"), Value("x")}).ok());
  ASSERT_TRUE(t.AppendRow({Value("a"), Value("1"), Value("x")}).ok());
  ASSERT_TRUE(t.AppendRow({Value("a"), Value("2"), Value("y")}).ok());
  ASSERT_TRUE(t.AppendRow({Value("b"), Value("1"), Value("z")}).ok());
  ASSERT_TRUE(t.AppendRow({Value("b"), Value("2"), Value("x")}).ok());
  ASSERT_TRUE(t.AppendRow({Value("b"), Value("2"), Value("x")}).ok());
  FdDiscoveryOptions options;
  options.include_two_column_lhs = true;
  auto fds = DiscoverFds(t, options);
  ASSERT_TRUE(fds.ok());
  const auto names = Names(*fds);
  EXPECT_TRUE(names.count("L,Y->P") > 0);
  EXPECT_EQ(names.count("L->P"), 0u);
  EXPECT_EQ(names.count("Y->P"), 0u);
}

TEST(DiscoveryTest, TwoColumnLhsSuppressedWhenSingleSuffices) {
  // City -> Country holds, so (City, X) -> Country must not be emitted.
  FdDiscoveryOptions options;
  options.include_two_column_lhs = true;
  auto fds = DiscoverFds(data::SoccerCleanTable(), options);
  ASSERT_TRUE(fds.ok());
  for (const DiscoveredFd& fd : *fds) {
    if (fd.lhs.size() == 2) {
      const Schema schema = data::SoccerSchema();
      const bool involves_city_country =
          (fd.rhs == *schema.IndexOf("Country")) &&
          (fd.lhs[0] == *schema.IndexOf("City") ||
           fd.lhs[1] == *schema.IndexOf("City"));
      EXPECT_FALSE(involves_city_country) << fd.constraint.name();
    }
  }
}

TEST(DiscoveryTest, DiscoveredConstraintsDetectInjectedErrors) {
  // The full loop: discover on clean data, inject errors, detect.
  auto generated = data::GenerateSoccer({.num_rows = 60, .seed = 77});
  auto dcs = DiscoverFdConstraints(generated.clean);
  ASSERT_TRUE(dcs.ok());
  ASSERT_FALSE(dcs->empty());
  EXPECT_FALSE(HasAnyViolation(generated.clean, *dcs));

  Table dirty = generated.clean;
  const Schema schema = dirty.schema();
  dirty.Set(CellRef{0, *schema.IndexOf("Country")}, Value("Wrongland"));
  EXPECT_TRUE(HasAnyViolation(dirty, *dcs));
}

TEST(DiscoveryTest, InvalidToleranceRejected) {
  FdDiscoveryOptions options;
  options.max_violation_fraction = 1.5;
  EXPECT_FALSE(DiscoverFds(data::SoccerCleanTable(), options).ok());
  options.max_violation_fraction = -0.1;
  EXPECT_FALSE(DiscoverFds(data::SoccerCleanTable(), options).ok());
}

TEST(DiscoveryTest, Deterministic) {
  auto a = DiscoverFds(data::SoccerCleanTable());
  auto b = DiscoverFds(data::SoccerCleanTable());
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_EQ(a->size(), b->size());
  for (std::size_t i = 0; i < a->size(); ++i) {
    EXPECT_EQ((*a)[i].constraint.name(), (*b)[i].constraint.name());
    EXPECT_EQ((*a)[i].support_pairs, (*b)[i].support_pairs);
  }
}

// Two-run bit-identity on the dirty table, where the violation fractions
// are non-trivial. GroupRows internally drains an unordered_map; since
// the drained list is re-keyed on each group's smallest row
// (dc/discovery.cc), the output — including every floating-point
// fraction — must be bit-identical run to run and across standard
// libraries, not merely set-equal or approximately equal.
TEST(DiscoveryTest, DirtyTableBitIdenticalAcrossRuns) {
  FdDiscoveryOptions options;
  options.max_violation_fraction = 0.7;
  options.include_two_column_lhs = true;
  auto a = DiscoverFds(data::SoccerDirtyTable(), options);
  auto b = DiscoverFds(data::SoccerDirtyTable(), options);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_EQ(a->size(), b->size());
  ASSERT_GT(a->size(), 0u);
  for (std::size_t i = 0; i < a->size(); ++i) {
    EXPECT_EQ((*a)[i].constraint.name(), (*b)[i].constraint.name());
    EXPECT_EQ((*a)[i].lhs, (*b)[i].lhs);
    EXPECT_EQ((*a)[i].rhs, (*b)[i].rhs);
    EXPECT_EQ((*a)[i].support_pairs, (*b)[i].support_pairs);
    // Bitwise, not EXPECT_DOUBLE_EQ: the replay contract is exact.
    std::uint64_t bits_a, bits_b;
    std::memcpy(&bits_a, &(*a)[i].violation_fraction, sizeof(bits_a));
    std::memcpy(&bits_b, &(*b)[i].violation_fraction, sizeof(bits_b));
    EXPECT_EQ(bits_a, bits_b) << (*a)[i].constraint.name();
  }
}

}  // namespace
}  // namespace trex::dc
