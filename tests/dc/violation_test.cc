#include "dc/violation.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <array>

#include "common/random.h"
#include "dc/parser.h"

namespace trex::dc {
namespace {

Schema TestSchema() {
  return Schema::AllStrings({"Team", "City", "Country"});
}

Table MakeTable(std::initializer_list<std::array<const char*, 3>> rows) {
  Table t(TestSchema());
  for (const auto& row : rows) {
    EXPECT_TRUE(
        t.AppendRow({Value(row[0]), Value(row[1]), Value(row[2])}).ok());
  }
  return t;
}

DcSet ParseSet(const char* text) {
  auto dcs = ParseDcSet(text, TestSchema());
  EXPECT_TRUE(dcs.ok()) << dcs.status();
  return std::move(dcs).value();
}

TEST(ViolationTest, FindsFdViolationOnce) {
  const Table t = MakeTable({{"Real", "Madrid", "Spain"},
                             {"Real", "Capital", "Spain"},
                             {"Barca", "Barcelona", "Spain"}});
  const DcSet dcs = ParseSet("!(t1.Team == t2.Team & t1.City != t2.City)");
  const auto violations = FindViolations(t, dcs);
  ASSERT_EQ(violations.size(), 1u);  // symmetric dedup: (0,1) only
  EXPECT_EQ(violations[0].row1, 0u);
  EXPECT_EQ(violations[0].row2, 1u);
  EXPECT_EQ(violations[0].constraint_index, 0u);
}

TEST(ViolationTest, SymmetricDedupeCanBeDisabled) {
  const Table t = MakeTable({{"Real", "Madrid", "Spain"},
                             {"Real", "Capital", "Spain"}});
  const DcSet dcs = ParseSet("!(t1.Team == t2.Team & t1.City != t2.City)");
  ViolationOptions options;
  options.dedupe_symmetric = false;
  const auto violations = FindViolations(t, dcs, options);
  EXPECT_EQ(violations.size(), 2u);  // both orderings
}

TEST(ViolationTest, CleanTableHasNoViolations) {
  const Table t = MakeTable({{"Real", "Madrid", "Spain"},
                             {"Barca", "Barcelona", "Spain"}});
  const DcSet dcs = ParseSet(R"(
!(t1.Team == t2.Team & t1.City != t2.City)
!(t1.City == t2.City & t1.Country != t2.Country)
)");
  EXPECT_TRUE(FindViolations(t, dcs).empty());
  EXPECT_FALSE(HasAnyViolation(t, dcs));
}

TEST(ViolationTest, MultipleConstraintsTagged) {
  const Table t = MakeTable({{"Real", "Madrid", "Spain"},
                             {"Real", "Capital", "Spain"},
                             {"Atleti", "Madrid", "España"}});
  const DcSet dcs = ParseSet(R"(
!(t1.Team == t2.Team & t1.City != t2.City)
!(t1.City == t2.City & t1.Country != t2.Country)
)");
  const auto violations = FindViolations(t, dcs);
  ASSERT_EQ(violations.size(), 2u);
  EXPECT_EQ(violations[0].constraint_index, 0u);
  EXPECT_EQ(violations[1].constraint_index, 1u);
  EXPECT_EQ(violations[1].row1, 0u);
  EXPECT_EQ(violations[1].row2, 2u);
}

TEST(ViolationTest, UnaryConstraints) {
  const Table t = MakeTable({{"Real", "Madrid", "Spain"},
                             {"", "Capital", "Nowhere"}});
  auto dcs_result =
      ParseDcSet("!(t1.Country == 'Nowhere')", TestSchema());
  ASSERT_TRUE(dcs_result.ok());
  const auto violations = FindViolations(t, *dcs_result);
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_EQ(violations[0].row1, 1u);
  EXPECT_EQ(violations[0].row2, 1u);
}

TEST(ViolationTest, NullsNeverJoinOnEquality) {
  Table t(TestSchema());
  ASSERT_TRUE(
      t.AppendRow({Value::Null(), Value("Madrid"), Value("Spain")}).ok());
  ASSERT_TRUE(
      t.AppendRow({Value::Null(), Value("Capital"), Value("Spain")}).ok());
  const DcSet dcs = ParseSet("!(t1.Team == t2.Team & t1.City != t2.City)");
  EXPECT_TRUE(FindViolations(t, dcs).empty());
}

TEST(ViolationTest, NullInequalityCountsAsDifferent) {
  // Same team, one city null: null != 'Madrid' holds, so it violates.
  Table t(TestSchema());
  ASSERT_TRUE(
      t.AppendRow({Value("Real"), Value("Madrid"), Value("Spain")}).ok());
  ASSERT_TRUE(
      t.AppendRow({Value("Real"), Value::Null(), Value("Spain")}).ok());
  const DcSet dcs = ParseSet("!(t1.Team == t2.Team & t1.City != t2.City)");
  EXPECT_EQ(FindViolations(t, dcs).size(), 1u);
}

TEST(ViolationTest, RowViolatesEitherRole) {
  const Table t = MakeTable({{"Real", "Madrid", "Spain"},
                             {"Real", "Capital", "Spain"},
                             {"Barca", "Barcelona", "Spain"}});
  auto dc = ParseDc("!(t1.Team == t2.Team & t1.City != t2.City)",
                    TestSchema());
  ASSERT_TRUE(dc.ok());
  EXPECT_TRUE(RowViolates(t, *dc, 0));
  EXPECT_TRUE(RowViolates(t, *dc, 1));
  EXPECT_FALSE(RowViolates(t, *dc, 2));
}

TEST(ViolationTest, AsymmetricConstraintKeepsOrderedPairs) {
  // "No two rows where t1 is lexicographically before t2 on Team but
  // after on City" — artificial, order-sensitive.
  const Table t = MakeTable({{"A", "z", "s"}, {"B", "a", "s"}});
  const DcSet dcs = ParseSet("!(t1.Team < t2.Team & t1.City > t2.City)");
  const auto violations = FindViolations(t, dcs);
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_EQ(violations[0].row1, 0u);
  EXPECT_EQ(violations[0].row2, 1u);
}

TEST(ViolationTest, ImplicatedCellsCoverBothTuples) {
  const Table t = MakeTable({{"Real", "Madrid", "Spain"},
                             {"Real", "Capital", "Spain"}});
  const DcSet dcs = ParseSet("!(t1.Team == t2.Team & t1.City != t2.City)");
  const auto violations = FindViolations(t, dcs);
  ASSERT_EQ(violations.size(), 1u);
  const auto cells = ImplicatedCells(violations[0], dcs);
  // Team and City of both rows.
  EXPECT_EQ(cells.size(), 4u);
  EXPECT_NE(std::find(cells.begin(), cells.end(), (CellRef{0, 0})),
            cells.end());
  EXPECT_NE(std::find(cells.begin(), cells.end(), (CellRef{1, 1})),
            cells.end());
}

TEST(ViolationTest, ToStringNamesConstraint) {
  const DcSet dcs = ParseSet("!(t1.Team == t2.Team & t1.City != t2.City)");
  const Violation v{0, 2, 4};
  EXPECT_EQ(v.ToString(dcs), "C1 violated by (t3, t5)");
  const Violation unary{0, 1, 1};
  EXPECT_EQ(unary.ToString(dcs), "C1 violated by t2");
}

// Property test: the hash-join fast path must agree with the brute-force
// nested loop on random tables, across several DC shapes and seeds.
class ViolationPropertyTest : public ::testing::TestWithParam<std::uint64_t> {
};

std::vector<Violation> BruteForce(const Table& t, const DenialConstraint& dc,
                                  bool dedupe) {
  std::vector<Violation> out;
  const bool symmetric = dedupe && dc.IsSymmetric();
  for (std::size_t r1 = 0; r1 < t.num_rows(); ++r1) {
    for (std::size_t r2 = 0; r2 < t.num_rows(); ++r2) {
      if (r1 == r2) continue;
      if (symmetric && r2 < r1) continue;
      if (dc.IsViolatedBy(t, r1, r2)) out.push_back({0, r1, r2});
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

TEST_P(ViolationPropertyTest, HashJoinMatchesBruteForce) {
  Rng rng(GetParam());
  // Random table over a small value domain (to force collisions).
  Table t(TestSchema());
  const std::size_t rows = 20 + rng.Index(30);
  const char* teams[] = {"A", "B", "C", "D"};
  const char* cities[] = {"x", "y", "z"};
  const char* countries[] = {"p", "q"};
  for (std::size_t r = 0; r < rows; ++r) {
    auto pick = [&rng](auto& arr, std::size_t n, double null_p) -> Value {
      if (rng.Bernoulli(null_p)) return Value::Null();
      return Value(arr[rng.Index(n)]);
    };
    ASSERT_TRUE(t.AppendRow({pick(teams, 4, 0.1), pick(cities, 3, 0.1),
                             pick(countries, 2, 0.1)})
                    .ok());
  }
  const char* shapes[] = {
      "!(t1.Team == t2.Team & t1.City != t2.City)",
      "!(t1.Team == t2.Team & t1.City == t2.City & t1.Country != "
      "t2.Country)",
      "!(t1.City == t2.City & t1.Country != t2.Country)",
  };
  for (const char* shape : shapes) {
    auto dc = ParseDc(shape, TestSchema());
    ASSERT_TRUE(dc.ok());
    for (bool dedupe : {true, false}) {
      ViolationOptions options;
      options.dedupe_symmetric = dedupe;
      auto fast = FindViolationsOf(t, *dc, 0, options);
      auto slow = BruteForce(t, *dc, dedupe);
      EXPECT_EQ(fast, slow) << shape << " dedupe=" << dedupe
                            << " seed=" << GetParam();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ViolationPropertyTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

}  // namespace
}  // namespace trex::dc
