#include "dc/incremental.h"

#include <gtest/gtest.h>

#include <vector>

#include "common/random.h"
#include "data/generator.h"
#include "data/soccer.h"
#include "dc/parser.h"

namespace trex::dc {
namespace {

std::set<Violation> FullRecompute(const Table& table, const DcSet& dcs) {
  std::set<Violation> out;
  for (const Violation& v : FindViolations(table, dcs)) out.insert(v);
  return out;
}

TEST(ViolationIndexTest, InitialBuildMatchesFindViolations) {
  const Table dirty = data::SoccerDirtyTable();
  const DcSet dcs = data::SoccerConstraints();
  ViolationIndex index(dirty, &dcs);
  EXPECT_EQ(index.violations(), FullRecompute(dirty, dcs));
  EXPECT_EQ(index.count(), 6u);  // 2 C1 pairs + 4 C3 pairs
}

TEST(ViolationIndexTest, FixingCellsRemovesViolations) {
  const DcSet dcs = data::SoccerConstraints();
  ViolationIndex index(data::SoccerDirtyTable(), &dcs);
  index.SetCell(data::SoccerCell(5, "Country"), Value("Spain"));
  EXPECT_EQ(index.violations(),
            FullRecompute(index.table(), dcs));
  EXPECT_EQ(index.count(), 2u);  // C1 pairs remain
  index.SetCell(data::SoccerCell(5, "City"), Value("Madrid"));
  EXPECT_EQ(index.count(), 0u);
}

TEST(ViolationIndexTest, BreakingCellsAddsViolations) {
  const DcSet dcs = data::SoccerConstraints();
  ViolationIndex index(data::SoccerCleanTable(), &dcs);
  EXPECT_EQ(index.count(), 0u);
  index.SetCell(data::SoccerCell(1, "Country"), Value("France"));
  EXPECT_EQ(index.violations(), FullRecompute(index.table(), dcs));
  EXPECT_GT(index.count(), 0u);
}

TEST(ViolationIndexTest, CountIfSetDoesNotMutate) {
  const DcSet dcs = data::SoccerConstraints();
  ViolationIndex index(data::SoccerDirtyTable(), &dcs);
  const std::set<Violation> before = index.violations();
  const Table snapshot = index.table();

  const std::size_t if_fixed =
      index.CountIfSet(data::SoccerCell(5, "Country"), Value("Spain"));
  EXPECT_LT(if_fixed, index.count());
  EXPECT_EQ(index.violations(), before);
  EXPECT_EQ(index.table(), snapshot);
}

TEST(ViolationIndexTest, CountIfSetMatchesFullRecompute) {
  const DcSet dcs = data::SoccerConstraints();
  ViolationIndex index(data::SoccerDirtyTable(), &dcs);
  for (const char* value : {"Spain", "España", "France"}) {
    Table probe = data::SoccerDirtyTable();
    probe.Set(data::SoccerCell(5, "Country"), Value(value));
    EXPECT_EQ(index.CountIfSet(data::SoccerCell(5, "Country"),
                               Value(value)),
              FullRecompute(probe, dcs).size())
        << value;
  }
}

TEST(ViolationIndexTest, NullUpdatesHandled) {
  const DcSet dcs = data::SoccerConstraints();
  ViolationIndex index(data::SoccerDirtyTable(), &dcs);
  index.SetCell(data::SoccerCell(5, "Country"), Value::Null());
  EXPECT_EQ(index.violations(), FullRecompute(index.table(), dcs));
}

TEST(ViolationIndexTest, UnaryConstraintsMaintained) {
  const Schema schema = data::SoccerSchema();
  auto dcs = ParseDcSet("!(t1.Year < 2016)", schema);
  ASSERT_TRUE(dcs.ok());
  ViolationIndex index(data::SoccerDirtyTable(), &*dcs);
  EXPECT_EQ(index.count(), 1u);  // t6 (2015)
  index.SetCell(data::SoccerCell(6, "Year"), Value(2018));
  EXPECT_EQ(index.count(), 0u);
  index.SetCell(data::SoccerCell(1, "Year"), Value(1999));
  EXPECT_EQ(index.count(), 1u);
  EXPECT_EQ(index.violations(), FullRecompute(index.table(), *dcs));
}

// Property: after arbitrary random edit sequences the index equals a
// full recompute.
class IncrementalPropertyTest
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(IncrementalPropertyTest, RandomEditSequencesStayConsistent) {
  Rng rng(GetParam());
  auto generated = data::GenerateSoccer({.num_rows = 25,
                                         .seed = GetParam() + 7});
  const DcSet& dcs = generated.dcs;
  ViolationIndex index(generated.clean, &dcs);

  // A pool of values per column to draw edits from (plus null).
  const Table& t = generated.clean;
  for (int step = 0; step < 40; ++step) {
    const CellRef cell{rng.Index(t.num_rows()), rng.Index(t.num_columns())};
    Value value;
    if (rng.Bernoulli(0.15)) {
      value = Value::Null();
    } else {
      const std::size_t source_row = rng.Index(t.num_rows());
      value = t.at(source_row, cell.col);
    }
    if (rng.Bernoulli(0.3)) {
      // Probe only: must not change state.
      const std::set<Violation> before = index.violations();
      index.CountIfSet(cell, value);
      ASSERT_EQ(index.violations(), before);
    } else {
      index.SetCell(cell, value);
      ASSERT_EQ(index.violations(), FullRecompute(index.table(), dcs))
          << "step " << step << " seed " << GetParam();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, IncrementalPropertyTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13));

}  // namespace
}  // namespace trex::dc
