#include "dc/row_index.h"

#include <gtest/gtest.h>

#include <set>

#include "data/errors.h"
#include "data/generator.h"
#include "data/soccer.h"
#include "dc/parser.h"
#include "dc/violation.h"

namespace trex::dc {
namespace {

/// Probe answers must be bit-identical to the nested-loop scan for
/// every row and constraint.
void ExpectMatchesScan(const Table& table, const DcSet& dcs) {
  for (std::size_t c = 0; c < dcs.size(); ++c) {
    const DenialConstraint& dc = dcs.at(c);
    ConstraintRowIndex index(&table, &dc);
    for (std::size_t row = 0; row < table.num_rows(); ++row) {
      EXPECT_EQ(index.RowViolates(row), RowViolates(table, dc, row))
          << dc.name() << " row " << row;
    }
  }
}

TEST(ConstraintRowIndexTest, MatchesScanOnPaperTable) {
  ExpectMatchesScan(data::SoccerDirtyTable(), data::SoccerConstraints());
}

TEST(ConstraintRowIndexTest, MatchesScanOnDirtySyntheticWorld) {
  auto generated = data::GenerateSoccer({.num_rows = 120, .seed = 3});
  data::ErrorInjectorOptions inject;
  inject.error_rate = 0.08;
  inject.seed = 4;
  auto injected = data::InjectErrors(generated.clean, inject);
  ExpectMatchesScan(injected.dirty, generated.dcs);
}

TEST(ConstraintRowIndexTest, ViolationsOfRowMatchesFullDetection) {
  auto generated = data::GenerateSoccer({.num_rows = 80, .seed = 5});
  data::ErrorInjectorOptions inject;
  inject.error_rate = 0.10;
  inject.seed = 6;
  auto injected = data::InjectErrors(generated.clean, inject);
  const Table& table = injected.dirty;
  for (std::size_t c = 0; c < generated.dcs.size(); ++c) {
    const DenialConstraint& dc = generated.dcs.at(c);
    ConstraintRowIndex index(&table, &dc);
    const bool dedup = dc.IsSymmetric();
    // Ground truth: the full detector's violations involving each row.
    std::set<Violation> all;
    for (const Violation& v : FindViolationsOf(table, dc, c)) all.insert(v);
    for (std::size_t row = 0; row < table.num_rows(); ++row) {
      std::set<Violation> expected;
      for (const Violation& v : all) {
        if (v.row1 == row || v.row2 == row) expected.insert(v);
      }
      std::set<Violation> probed;
      for (const Violation& v : index.ViolationsOfRow(row, c, dedup)) {
        probed.insert(v);
      }
      EXPECT_EQ(probed, expected) << dc.name() << " row " << row;
    }
  }
}

TEST(ConstraintRowIndexTest, RekeyTracksKeyColumnWrites) {
  Table table = data::SoccerDirtyTable();
  const DcSet dcs = data::SoccerConstraints();
  const DenialConstraint& c1 = dcs.at(0);  // Team -> City
  ConstraintRowIndex index(&table, &c1);
  ASSERT_TRUE(index.uses_buckets());
  const std::size_t team_col = *table.schema().IndexOf("Team");
  ASSERT_TRUE(index.IsKeyColumn(team_col));

  // Move row 0 onto row 4's team: if their cities disagree the pair now
  // violates C1 — the probe must see it after Rekey.
  table.Set(CellRef{0, team_col}, table.at(4, team_col));
  index.Rekey(0);
  for (std::size_t row = 0; row < table.num_rows(); ++row) {
    EXPECT_EQ(index.RowViolates(row), RowViolates(table, c1, row))
        << "row " << row;
  }

  // And back: the stale bucket entry must be gone.
  table.Set(CellRef{0, team_col}, Value("SomethingElse"));
  index.Rekey(0);
  for (std::size_t row = 0; row < table.num_rows(); ++row) {
    EXPECT_EQ(index.RowViolates(row), RowViolates(table, c1, row))
        << "row " << row;
  }
}

TEST(ConstraintRowIndexTest, NonKeyColumnWritesAreLive) {
  Table table = data::SoccerDirtyTable();
  const DcSet dcs = data::SoccerConstraints();
  const DenialConstraint& c1 = dcs.at(0);  // !(Team == Team & City != City)
  ConstraintRowIndex index(&table, &c1);
  const std::size_t city_col = *table.schema().IndexOf("City");
  ASSERT_FALSE(index.IsKeyColumn(city_col));

  // Rewriting a City (the inequality side) changes violations without
  // any Rekey: the index reads the live table.
  table.Set(CellRef{4, city_col}, Value("Madrid"));
  for (std::size_t row = 0; row < table.num_rows(); ++row) {
    EXPECT_EQ(index.RowViolates(row), RowViolates(table, c1, row))
        << "row " << row;
  }
}

TEST(ConstraintRowIndexTest, NullKeysNeverJoin) {
  Table table = data::SoccerDirtyTable();
  const DcSet dcs = data::SoccerConstraints();
  const DenialConstraint& c1 = dcs.at(0);
  const std::size_t team_col = *table.schema().IndexOf("Team");
  table.Set(CellRef{2, team_col}, Value::Null());
  ConstraintRowIndex index(&table, &c1);
  for (std::size_t row = 0; row < table.num_rows(); ++row) {
    EXPECT_EQ(index.RowViolates(row), RowViolates(table, c1, row))
        << "row " << row;
  }
}

TEST(ConstraintRowIndexTest, FallsBackWithoutCrossTupleEquality) {
  const Table table = data::SoccerDirtyTable();
  // No cross-tuple equality predicate: probe must fall back to the scan
  // and still answer exactly.
  auto dc = ParseDc("!(t1.Place < t2.Place & t1.Year > t2.Year)",
                    table.schema(), "NoEq");
  ASSERT_TRUE(dc.ok()) << dc.status().ToString();
  ConstraintRowIndex index(&table, &*dc);
  EXPECT_FALSE(index.uses_buckets());
  for (std::size_t row = 0; row < table.num_rows(); ++row) {
    EXPECT_EQ(index.RowViolates(row), RowViolates(table, *dc, row))
        << "row " << row;
  }
}

}  // namespace
}  // namespace trex::dc
