#include "dc/graph.h"

#include <gtest/gtest.h>

#include "dc/parser.h"

namespace trex::dc {
namespace {

Schema SoccerSchema() {
  return Schema::AllStrings(
      {"Team", "City", "Country", "League", "Year", "Place"});
}

TEST(AttributeGraphTest, SelfReachability) {
  AttributeGraph g(3);
  EXPECT_EQ(g.InfluencingColumns(1), (std::set<std::size_t>{1}));
}

TEST(AttributeGraphTest, DirectEdge) {
  AttributeGraph g(3);
  g.AddInfluence(0, 1);
  EXPECT_EQ(g.InfluencingColumns(1), (std::set<std::size_t>{0, 1}));
  EXPECT_EQ(g.InfluencingColumns(0), (std::set<std::size_t>{0}));
}

TEST(AttributeGraphTest, TransitiveClosure) {
  AttributeGraph g(4);
  g.AddInfluence(0, 1);
  g.AddInfluence(1, 2);
  EXPECT_EQ(g.InfluencingColumns(2), (std::set<std::size_t>{0, 1, 2}));
  // 3 is isolated.
  EXPECT_EQ(g.InfluencingColumns(3), (std::set<std::size_t>{3}));
}

TEST(AttributeGraphTest, CyclesTerminate) {
  AttributeGraph g(2);
  g.AddInfluence(0, 1);
  g.AddInfluence(1, 0);
  EXPECT_EQ(g.InfluencingColumns(0), (std::set<std::size_t>{0, 1}));
}

TEST(AttributeGraphTest, ConservativeFromDcSet) {
  const Schema schema = SoccerSchema();
  auto dcs = ParseDcSet(R"(
!(t1.Team == t2.Team & t1.City != t2.City)
!(t1.League == t2.League & t1.Country != t2.Country)
)",
                        schema);
  ASSERT_TRUE(dcs.ok());
  const AttributeGraph g = AttributeGraph::FromDcSet(*dcs, schema.size());
  // Team <-> City bidirectional, League <-> Country bidirectional; the
  // two components are disconnected.
  EXPECT_EQ(g.InfluencingColumns(1), (std::set<std::size_t>{0, 1}));
  EXPECT_EQ(g.InfluencingColumns(2), (std::set<std::size_t>{2, 3}));
  EXPECT_EQ(g.InfluencingColumns(4), (std::set<std::size_t>{4}));
}

TEST(RelevantCellsTest, AllRowsOfInfluencingColumns) {
  const Schema schema = SoccerSchema();
  Table t(schema);
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(t.AppendRow({Value("a"), Value("b"), Value("c"),
                             Value("d"), Value(1), Value(2)})
                    .ok());
  }
  AttributeGraph g(schema.size());
  g.AddInfluence(1, 2);  // City -> Country
  const auto cells = RelevantCells(t, g, CellRef{0, 2});
  // Columns {1, 2} x 3 rows = 6 cells.
  ASSERT_EQ(cells.size(), 6u);
  for (const CellRef& cell : cells) {
    EXPECT_TRUE(cell.col == 1 || cell.col == 2);
  }
}

TEST(RelevantCellsTest, TargetAlwaysIncluded) {
  const Schema schema = SoccerSchema();
  Table t(schema);
  ASSERT_TRUE(t.AppendRow({Value("a"), Value("b"), Value("c"), Value("d"),
                           Value(1), Value(2)})
                  .ok());
  AttributeGraph g(schema.size());
  const CellRef target{0, 5};
  const auto cells = RelevantCells(t, g, target);
  ASSERT_EQ(cells.size(), 1u);
  EXPECT_EQ(cells[0], target);
}

TEST(AttributeGraphDeathTest, OutOfRangeColumn) {
  AttributeGraph g(2);
  EXPECT_DEATH(g.AddInfluence(0, 2), "Check failed");
  EXPECT_DEATH(g.InfluencingColumns(5), "Check failed");
}

}  // namespace
}  // namespace trex::dc
