#include "serving/report.h"

#include <gtest/gtest.h>

#include "data/soccer.h"
#include "repair/soccer_algorithm1.h"

namespace trex {
namespace {

Explanation SoccerConstraintExplanation() {
  TRexSession session(repair::MakeAlgorithm1(), data::SoccerConstraints(),
                      data::SoccerDirtyTable());
  EXPECT_TRUE(session.Repair().ok());
  auto ex = session.ExplainConstraints(data::SoccerTargetCell());
  EXPECT_TRUE(ex.ok());
  return std::move(ex).value();
}

Explanation SoccerCellExplanation() {
  TRexSession session(repair::MakeAlgorithm1(), data::SoccerConstraints(),
                      data::SoccerDirtyTable());
  EXPECT_TRUE(session.Repair().ok());
  CellExplainerOptions options;
  options.policy = AbsentCellPolicy::kNull;
  options.num_samples = 100;
  auto ex = session.ExplainCells(data::SoccerTargetCell(), options);
  EXPECT_TRUE(ex.ok());
  return std::move(ex).value();
}

TEST(RenderRankingTest, ShowsRanksAndValues) {
  const std::string out = RenderRanking(SoccerConstraintExplanation());
  EXPECT_NE(out.find("t5[Country]"), std::string::npos);
  EXPECT_NE(out.find("España -> Spain"), std::string::npos);
  EXPECT_NE(out.find("C3"), std::string::npos);
  EXPECT_NE(out.find("0.6667"), std::string::npos);
  EXPECT_NE(out.find("0.1667"), std::string::npos);
  EXPECT_NE(out.find("total attribution: 1.0000"), std::string::npos);
}

TEST(RenderRankingTest, BarsProportionalToShapley) {
  const std::string out = RenderRanking(SoccerConstraintExplanation());
  // C3's bar (24 chars at default width) is the longest; C1's is 6.
  EXPECT_NE(out.find(std::string(24, '#')), std::string::npos);
  EXPECT_EQ(out.find(std::string(25, '#')), std::string::npos);
}

TEST(RenderRankingTest, TopKLimitsRows) {
  ReportOptions options;
  options.top_k = 1;
  const std::string out =
      RenderRanking(SoccerConstraintExplanation(), options);
  EXPECT_NE(out.find("C3"), std::string::npos);
  EXPECT_EQ(out.find("C4"), std::string::npos);
}

TEST(RenderRepairScreenTest, ShowsBothTablesAndDiff) {
  TRexSession session(repair::MakeAlgorithm1(), data::SoccerConstraints(),
                      data::SoccerDirtyTable());
  ASSERT_TRUE(session.Repair().ok());
  const std::string out = RenderRepairScreen(session);
  EXPECT_NE(out.find("dirty table"), std::string::npos);
  EXPECT_NE(out.find("clean table"), std::string::npos);
  EXPECT_NE(out.find("*Capital*"), std::string::npos);   // dirty marker
  EXPECT_NE(out.find("[Madrid]"), std::string::npos);    // repaired marker
  EXPECT_NE(out.find("t5[Country]: España -> Spain"), std::string::npos);
}

TEST(RenderCellHeatmapTest, MarksTopCells) {
  const Explanation ex = SoccerCellExplanation();
  const std::string out =
      RenderCellHeatmap(data::SoccerDirtyTable(), ex);
  EXPECT_NE(out.find("heatmap"), std::string::npos);
  // The top cell gets the (+++) marker.
  EXPECT_NE(out.find("(+++)"), std::string::npos);
}

TEST(ExplanationToJsonTest, WellFormedAndComplete) {
  const std::string json =
      ExplanationToJson(SoccerConstraintExplanation());
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  EXPECT_NE(json.find("\"target\":\"t5[Country]\""), std::string::npos);
  EXPECT_NE(json.find("\"old_value\":\"España\""), std::string::npos);
  EXPECT_NE(json.find("\"new_value\":\"Spain\""), std::string::npos);
  EXPECT_NE(json.find("\"method\":\"exact\""), std::string::npos);
  EXPECT_NE(json.find("\"label\":\"C3\""), std::string::npos);
  EXPECT_NE(json.find("\"shapley\":0.666666"), std::string::npos);
}

TEST(ExplanationToJsonTest, CellCoordinatesIncluded) {
  const std::string json = ExplanationToJson(SoccerCellExplanation());
  EXPECT_NE(json.find("\"row\":"), std::string::npos);
  EXPECT_NE(json.find("\"col\":"), std::string::npos);
  EXPECT_NE(json.find("\"num_samples\":"), std::string::npos);
}

TEST(RenderInteractionsTest, AnnotatesKinds) {
  std::vector<InteractionScore> interactions{
      {"C1", "C2", 0.5}, {"C1", "C3", -0.25}, {"C1", "C4", 0.0}};
  const std::string out = RenderInteractions(interactions);
  EXPECT_NE(out.find("I(C1, C2) = +0.5000  (complements)"),
            std::string::npos);
  EXPECT_NE(out.find("I(C1, C3) = -0.2500  (substitutes)"),
            std::string::npos);
  EXPECT_NE(out.find("I(C1, C4) = +0.0000  (independent)"),
            std::string::npos);
}

TEST(RenderInteractionsTest, TopKLimits) {
  std::vector<InteractionScore> interactions{
      {"C1", "C2", 0.5}, {"C1", "C3", -0.25}};
  const std::string out = RenderInteractions(interactions, 1);
  EXPECT_NE(out.find("C2"), std::string::npos);
  EXPECT_EQ(out.find("C3"), std::string::npos);
}

TEST(RenderRemovalSetsTest, RendersSetsAndEmptyCase) {
  const std::string out =
      RenderRemovalSets({{"C1", "C3"}, {"C2", "C3"}});
  EXPECT_NE(out.find("remove {C1, C3} -> repair does not happen"),
            std::string::npos);
  EXPECT_NE(out.find("remove {C2, C3}"), std::string::npos);
  EXPECT_NE(RenderRemovalSets({}).find("no removal set"),
            std::string::npos);
}

TEST(ExplanationToJsonTest, EscapesSpecialCharacters) {
  Explanation ex;
  ex.target_label = "t1[\"A\"]";
  ex.old_value = Value("line\nbreak");
  ex.new_value = Value("quote\"end");
  ex.method = "exact";
  const std::string json = ExplanationToJson(ex);
  EXPECT_NE(json.find("\\\""), std::string::npos);
  EXPECT_NE(json.find("\\n"), std::string::npos);
  EXPECT_EQ(json.find("line\nbreak"), std::string::npos);
}

}  // namespace
}  // namespace trex
