#include "core/explainer.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <map>

#include "core/shapley_exact.h"
#include "data/soccer.h"
#include "repair/soccer_algorithm1.h"
#include "dc/parser.h"

namespace trex {
namespace {

std::shared_ptr<repair::RuleRepair> Alg() {
  static std::shared_ptr<repair::RuleRepair> alg = repair::MakeAlgorithm1();
  return alg;
}

std::map<std::string, double> AsMap(const Explanation& ex) {
  std::map<std::string, double> out;
  for (const PlayerScore& p : ex.ranked) out[p.label] = p.shapley;
  return out;
}

TEST(ConstraintExplainerTest, ReproducesFigure1Exactly) {
  ConstraintExplainer explainer;
  auto ex = explainer.Explain(*Alg(), data::SoccerConstraints(),
                              data::SoccerDirtyTable(),
                              data::SoccerTargetCell());
  ASSERT_TRUE(ex.ok()) << ex.status();
  const auto values = AsMap(*ex);
  EXPECT_NEAR(values.at("C1"), 1.0 / 6.0, 1e-12);
  EXPECT_NEAR(values.at("C2"), 1.0 / 6.0, 1e-12);
  EXPECT_NEAR(values.at("C3"), 2.0 / 3.0, 1e-12);
  EXPECT_NEAR(values.at("C4"), 0.0, 1e-12);
  EXPECT_EQ(ex->method, "exact");
  EXPECT_EQ(ex->ranked[0].label, "C3");  // ranked first
}

TEST(ConstraintExplainerTest, ExplanationMetadata) {
  ConstraintExplainer explainer;
  auto ex = explainer.Explain(*Alg(), data::SoccerConstraints(),
                              data::SoccerDirtyTable(),
                              data::SoccerTargetCell());
  ASSERT_TRUE(ex.ok());
  EXPECT_EQ(ex->target_label, "t5[Country]");
  EXPECT_EQ(ex->old_value, Value("España"));
  EXPECT_EQ(ex->new_value, Value("Spain"));
  EXPECT_NEAR(ex->TotalAttribution(), 1.0, 1e-12);  // efficiency
  // 1 reference + 16 subsets.
  EXPECT_EQ(ex->algorithm_calls, 17u);
}

TEST(ConstraintExplainerTest, TopKClamps) {
  ConstraintExplainer explainer;
  auto ex = explainer.Explain(*Alg(), data::SoccerConstraints(),
                              data::SoccerDirtyTable(),
                              data::SoccerTargetCell());
  ASSERT_TRUE(ex.ok());
  EXPECT_EQ(ex->TopK(2).size(), 2u);
  EXPECT_EQ(ex->TopK(100).size(), 4u);
  EXPECT_EQ(ex->TopK(0).size(), 0u);
}

TEST(ConstraintExplainerTest, UnrepairedCellRejected) {
  ConstraintExplainer explainer;
  auto ex = explainer.Explain(*Alg(), data::SoccerConstraints(),
                              data::SoccerDirtyTable(),
                              data::SoccerCell(1, "Team"));
  EXPECT_FALSE(ex.ok());
  EXPECT_EQ(ex.status().code(), StatusCode::kInvalidArgument);
}

TEST(ConstraintExplainerTest, EmptyDcSetRejected) {
  ConstraintExplainer explainer;
  auto ex = explainer.Explain(*Alg(), dc::DcSet{},
                              data::SoccerDirtyTable(),
                              data::SoccerTargetCell());
  EXPECT_FALSE(ex.ok());
}

TEST(ConstraintExplainerTest, SamplingPathApproximatesExact) {
  ConstraintExplainerOptions options;
  options.force_sampling = true;
  options.sampling.num_samples = 2000;
  options.sampling.seed = 31;
  ConstraintExplainer explainer(options);
  auto ex = explainer.Explain(*Alg(), data::SoccerConstraints(),
                              data::SoccerDirtyTable(),
                              data::SoccerTargetCell());
  ASSERT_TRUE(ex.ok());
  const auto values = AsMap(*ex);
  EXPECT_NEAR(values.at("C3"), 2.0 / 3.0, 0.05);
  EXPECT_NEAR(values.at("C1"), 1.0 / 6.0, 0.05);
  EXPECT_NE(ex->method.find("sampling"), std::string::npos);
  EXPECT_GT(ex->ranked[0].num_samples, 0u);
}

TEST(CellExplainerTest, NullPolicyRanksT5LeagueFirst) {
  // The paper's Example 2.4 headline claim under the formal (null)
  // definition: t5[League] has the highest Shapley value.
  CellExplainerOptions options;
  options.policy = AbsentCellPolicy::kNull;
  options.method = CellMethod::kSampling;
  options.num_samples = 600;
  options.seed = 37;
  CellExplainer explainer(options);
  auto ex = explainer.Explain(*Alg(), data::SoccerConstraints(),
                              data::SoccerDirtyTable(),
                              data::SoccerTargetCell());
  ASSERT_TRUE(ex.ok()) << ex.status();
  EXPECT_EQ(ex->ranked[0].label, "t5[League]");
}

TEST(CellExplainerTest, T5LeagueBeatsT6City) {
  CellExplainerOptions options;
  options.policy = AbsentCellPolicy::kNull;
  options.method = CellMethod::kSampling;
  options.num_samples = 600;
  options.seed = 41;
  CellExplainer explainer(options);
  auto ex = explainer.Explain(*Alg(), data::SoccerConstraints(),
                              data::SoccerDirtyTable(),
                              data::SoccerTargetCell());
  ASSERT_TRUE(ex.ok());
  const auto values = AsMap(*ex);
  EXPECT_GT(values.at("t5[League]"), values.at("t6[City]"));
}

TEST(CellExplainerTest, PruningExcludesPlaceAndYear) {
  CellExplainerOptions options;
  options.policy = AbsentCellPolicy::kNull;
  options.method = CellMethod::kSampling;
  options.num_samples = 50;
  CellExplainer explainer(options);
  auto ex = explainer.Explain(*Alg(), data::SoccerConstraints(),
                              data::SoccerDirtyTable(),
                              data::SoccerTargetCell());
  ASSERT_TRUE(ex.ok());
  // 24 players: {Team, City, Country, League} x 6 rows.
  EXPECT_EQ(ex->ranked.size(), 24u);
  for (const PlayerScore& p : ex->ranked) {
    EXPECT_EQ(p.label.find("Place"), std::string::npos);
    EXPECT_EQ(p.label.find("Year"), std::string::npos);
  }
}

TEST(CellExplainerTest, NoPruningCoversAllCells) {
  CellExplainerOptions options;
  options.policy = AbsentCellPolicy::kNull;
  options.method = CellMethod::kSampling;
  options.num_samples = 30;
  options.prune = false;
  CellExplainer explainer(options);
  auto ex = explainer.Explain(*Alg(), data::SoccerConstraints(),
                              data::SoccerDirtyTable(),
                              data::SoccerTargetCell());
  ASSERT_TRUE(ex.ok());
  EXPECT_EQ(ex->ranked.size(), 36u);
}

TEST(CellExplainerTest, PrunedCellsHaveZeroShapley) {
  // t1[Place] is outside the influence graph; without pruning its
  // sampled Shapley value must still be ~0 (it is a dummy player).
  CellExplainerOptions options;
  options.policy = AbsentCellPolicy::kNull;
  options.method = CellMethod::kSampling;
  options.num_samples = 200;
  options.prune = false;
  options.seed = 43;
  CellExplainer explainer(options);
  auto ex = explainer.Explain(*Alg(), data::SoccerConstraints(),
                              data::SoccerDirtyTable(),
                              data::SoccerTargetCell());
  ASSERT_TRUE(ex.ok());
  const auto values = AsMap(*ex);
  EXPECT_NEAR(values.at("t1[Place]"), 0.0, 1e-12);
  EXPECT_NEAR(values.at("t4[Year]"), 0.0, 1e-12);
}

TEST(CellExplainerTest, ExactMatchesSamplingOnReducedGame) {
  // Restrict the cell game to one row's relevant cells by using a tiny
  // table: 2 rows x 3 columns = 6 players, exact is feasible.
  const Schema schema = Schema::AllStrings({"Team", "City", "Country"});
  auto dcs = dc::ParseDcSet(R"(
C1: !(t1.Team == t2.Team & t1.City != t2.City)
C2: !(t1.City == t2.City & t1.Country != t2.Country)
)",
                            schema);
  ASSERT_TRUE(dcs.ok());
  Table dirty(schema);
  ASSERT_TRUE(
      dirty.AppendRow({Value("Real"), Value("Madrid"), Value("Spain")})
          .ok());
  ASSERT_TRUE(
      dirty.AppendRow({Value("Real"), Value("Capital"), Value("Spain")})
          .ok());
  std::vector<repair::RepairRule> rules{
      {"C1", repair::RuleAction::kSetMostCommon, "City", ""},
      {"C2", repair::RuleAction::kSetMostCommonGiven, "Country", "City"}};
  repair::RuleRepair alg("mini", rules);
  // Reference repair: t2[City] "Capital" -> ... most common city is
  // tie Madrid/Capital -> "Capital" wins? Counts: Madrid 1, Capital 1;
  // tie-break toward smaller value = "Capital". To avoid a degenerate
  // no-op, add a third row.
  ASSERT_TRUE(
      dirty.AppendRow({Value("Real"), Value("Madrid"), Value("Spain")})
          .ok());
  const CellRef target{1, 1};  // t2[City]

  CellExplainerOptions exact_options;
  exact_options.policy = AbsentCellPolicy::kNull;
  exact_options.method = CellMethod::kExact;
  exact_options.prune = false;
  CellExplainer exact(exact_options);
  auto exact_ex = exact.Explain(alg, *dcs, dirty, target);
  ASSERT_TRUE(exact_ex.ok()) << exact_ex.status();

  CellExplainerOptions sampling_options;
  sampling_options.policy = AbsentCellPolicy::kNull;
  sampling_options.method = CellMethod::kSampling;
  sampling_options.num_samples = 4000;
  sampling_options.prune = false;
  sampling_options.seed = 47;
  CellExplainer sampling(sampling_options);
  auto sampled_ex = sampling.Explain(alg, *dcs, dirty, target);
  ASSERT_TRUE(sampled_ex.ok());

  const auto exact_map = AsMap(*exact_ex);
  const auto sampled_map = AsMap(*sampled_ex);
  for (const auto& [label, exact_value] : exact_map) {
    EXPECT_NEAR(sampled_map.at(label), exact_value, 0.04) << label;
  }
}

TEST(CellExplainerTest, ExactRejectsColumnSamplePolicy) {
  CellExplainerOptions options;
  options.method = CellMethod::kExact;
  options.policy = AbsentCellPolicy::kSampleFromColumn;
  CellExplainer explainer(options);
  auto ex = explainer.Explain(*Alg(), data::SoccerConstraints(),
                              data::SoccerDirtyTable(),
                              data::SoccerTargetCell());
  EXPECT_FALSE(ex.ok());
}

TEST(CellExplainerTest, AutoPicksSamplingForLargePlayerSets) {
  CellExplainerOptions options;
  options.method = CellMethod::kAuto;
  options.policy = AbsentCellPolicy::kNull;
  options.num_samples = 20;
  CellExplainer explainer(options);
  auto ex = explainer.Explain(*Alg(), data::SoccerConstraints(),
                              data::SoccerDirtyTable(),
                              data::SoccerTargetCell());
  ASSERT_TRUE(ex.ok());
  // 24 players > max_exact_players (20) => sampling.
  EXPECT_NE(ex->method.find("sampling"), std::string::npos);
}

TEST(CellExplainerTest, DeterministicForSeed) {
  CellExplainerOptions options;
  options.num_samples = 50;
  options.seed = 53;
  CellExplainer explainer(options);
  auto a = explainer.Explain(*Alg(), data::SoccerConstraints(),
                             data::SoccerDirtyTable(),
                             data::SoccerTargetCell());
  auto b = explainer.Explain(*Alg(), data::SoccerConstraints(),
                             data::SoccerDirtyTable(),
                             data::SoccerTargetCell());
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_EQ(a->ranked.size(), b->ranked.size());
  for (std::size_t i = 0; i < a->ranked.size(); ++i) {
    EXPECT_EQ(a->ranked[i].label, b->ranked[i].label);
    EXPECT_DOUBLE_EQ(a->ranked[i].shapley, b->ranked[i].shapley);
  }
}

TEST(CellExplainerTest, SingleCellEstimatorMatchesSweep) {
  // Example 2.5's per-cell loop should agree with the sweep estimate for
  // the same policy within sampling error.
  CellExplainerOptions options;
  options.policy = AbsentCellPolicy::kNull;
  options.num_samples = 800;
  options.seed = 59;
  CellExplainer explainer(options);

  auto single = explainer.ExplainSingleCell(
      *Alg(), data::SoccerConstraints(), data::SoccerDirtyTable(),
      data::SoccerTargetCell(), data::SoccerCell(5, "League"));
  ASSERT_TRUE(single.ok()) << single.status();

  options.method = CellMethod::kSampling;
  CellExplainer sweeper(options);
  auto sweep = sweeper.Explain(*Alg(), data::SoccerConstraints(),
                               data::SoccerDirtyTable(),
                               data::SoccerTargetCell());
  ASSERT_TRUE(sweep.ok());
  const auto values = AsMap(*sweep);
  EXPECT_NEAR(single->shapley, values.at("t5[League]"), 0.08);
}

TEST(CellExplainerTest, SingleCellForIrrelevantCellIsZero) {
  CellExplainerOptions options;
  options.policy = AbsentCellPolicy::kNull;
  options.num_samples = 100;
  CellExplainer explainer(options);
  auto score = explainer.ExplainSingleCell(
      *Alg(), data::SoccerConstraints(), data::SoccerDirtyTable(),
      data::SoccerTargetCell(), data::SoccerCell(1, "Place"));
  ASSERT_TRUE(score.ok());
  EXPECT_NEAR(score->shapley, 0.0, 1e-12);
}

TEST(CellExplainerTest, SingleCellOutOfRangeRejected) {
  CellExplainer explainer;
  auto score = explainer.ExplainSingleCell(
      *Alg(), data::SoccerConstraints(), data::SoccerDirtyTable(),
      data::SoccerTargetCell(), CellRef{77, 0});
  EXPECT_FALSE(score.ok());
}

TEST(CellExplainerTest, TopKFindsLeagueFirstAndStopsEarly) {
  CellExplainerOptions options;
  options.policy = AbsentCellPolicy::kNull;
  options.num_samples = 2000;  // budget cap; should stop far earlier
  options.seed = 97;
  CellExplainer explainer(options);
  auto ex = explainer.ExplainTopK(*Alg(), data::SoccerConstraints(),
                                  data::SoccerDirtyTable(),
                                  data::SoccerTargetCell(), /*k=*/1);
  ASSERT_TRUE(ex.ok()) << ex.status();
  EXPECT_EQ(ex->ranked[0].label, "t5[League]");
  EXPECT_NE(ex->method.find("topk(k=1"), std::string::npos);
  EXPECT_NE(ex->method.find("separated=yes"), std::string::npos);
  // Every player still gets an estimate row.
  EXPECT_EQ(ex->ranked.size(), 24u);
}

TEST(CellExplainerTest, TopKRejectsColumnSamplePolicy) {
  CellExplainerOptions options;
  options.policy = AbsentCellPolicy::kSampleFromColumn;
  CellExplainer explainer(options);
  auto ex = explainer.ExplainTopK(*Alg(), data::SoccerConstraints(),
                                  data::SoccerDirtyTable(),
                                  data::SoccerTargetCell(), 1);
  EXPECT_FALSE(ex.ok());
}

TEST(CellExplainerTest, TopKRejectsUnrepairedTarget) {
  CellExplainerOptions options;
  options.policy = AbsentCellPolicy::kNull;
  CellExplainer explainer(options);
  auto ex = explainer.ExplainTopK(*Alg(), data::SoccerConstraints(),
                                  data::SoccerDirtyTable(),
                                  data::SoccerCell(1, "Team"), 1);
  EXPECT_FALSE(ex.ok());
}

TEST(AbsentCellPolicyTest, Names) {
  EXPECT_STREQ(AbsentCellPolicyToString(AbsentCellPolicy::kNull), "null");
  EXPECT_STREQ(
      AbsentCellPolicyToString(AbsentCellPolicy::kSampleFromColumn),
      "column-sample");
}

}  // namespace
}  // namespace trex
