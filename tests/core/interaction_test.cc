#include "core/interaction.h"

#include <gtest/gtest.h>

#include <bit>
#include <functional>
#include <map>

#include "core/explainer.h"
#include "core/repair_game.h"
#include "data/soccer.h"
#include "repair/soccer_algorithm1.h"

namespace trex::shap {
namespace {

class LambdaGame : public Game {
 public:
  LambdaGame(std::size_t n, std::function<double(std::uint64_t)> v)
      : n_(n), v_(std::move(v)) {}
  std::size_t num_players() const override { return n_; }
  double Value(const Coalition& coalition) const override {
    std::uint64_t mask = 0;
    for (std::size_t i = 0; i < coalition.size(); ++i) {
      if (coalition[i]) mask |= std::uint64_t{1} << i;
    }
    return v_(mask);
  }

 private:
  std::size_t n_;
  std::function<double(std::uint64_t)> v_;
};

TEST(InteractionTest, PureComplementPair) {
  // v = 1 iff both players present: I(0,1) should be 1 (n = 2 and the
  // only term is v({0,1}) - v({0}) - v({1}) + v(∅) = 1).
  LambdaGame game(2, [](std::uint64_t mask) {
    return mask == 0b11 ? 1.0 : 0.0;
  });
  auto value = ComputeShapleyInteraction(game, 0, 1);
  ASSERT_TRUE(value.ok());
  EXPECT_NEAR(*value, 1.0, 1e-12);
}

TEST(InteractionTest, PureSubstitutePair) {
  // v = 1 iff at least one present: marginal of the second player
  // vanishes, so I(0,1) = -1.
  LambdaGame game(2, [](std::uint64_t mask) {
    return mask != 0 ? 1.0 : 0.0;
  });
  auto value = ComputeShapleyInteraction(game, 0, 1);
  ASSERT_TRUE(value.ok());
  EXPECT_NEAR(*value, -1.0, 1e-12);
}

TEST(InteractionTest, AdditiveGameHasZeroInteractions) {
  // v(S) = Σ weights of members: no synergies anywhere.
  LambdaGame game(4, [](std::uint64_t mask) {
    double total = 0;
    const double w[] = {1.0, 2.0, 3.0, 4.0};
    for (int i = 0; i < 4; ++i) {
      if (mask & (1u << i)) total += w[i];
    }
    return total;
  });
  auto all = ComputeShapleyInteractions(game);
  ASSERT_TRUE(all.ok());
  EXPECT_EQ(all->size(), 6u);
  for (const Interaction& interaction : *all) {
    EXPECT_NEAR(interaction.value, 0.0, 1e-12);
  }
}

TEST(InteractionTest, DummyPlayerHasZeroInteractions) {
  // Player 2 never matters; all its pairs must be 0.
  LambdaGame game(3, [](std::uint64_t mask) {
    return (mask & 0b11) == 0b11 ? 1.0 : 0.0;
  });
  auto all = ComputeShapleyInteractions(game);
  ASSERT_TRUE(all.ok());
  for (const Interaction& interaction : *all) {
    if (interaction.player_a == 2 || interaction.player_b == 2) {
      EXPECT_NEAR(interaction.value, 0.0, 1e-12);
    }
  }
}

TEST(InteractionTest, GloveGameSigns) {
  // Player 0: left glove; players 1, 2: right gloves. Left+right are
  // complements; the two rights are substitutes.
  LambdaGame game(3, [](std::uint64_t mask) {
    const bool left = mask & 0b001;
    const bool right = mask & 0b110;
    return left && right ? 1.0 : 0.0;
  });
  auto all = ComputeShapleyInteractions(game);
  ASSERT_TRUE(all.ok());
  std::map<std::pair<std::size_t, std::size_t>, double> by_pair;
  for (const Interaction& i : *all) {
    by_pair[{i.player_a, i.player_b}] = i.value;
  }
  EXPECT_GT(by_pair.at({0, 1}), 0.0);
  EXPECT_GT(by_pair.at({0, 2}), 0.0);
  EXPECT_LT(by_pair.at({1, 2}), 0.0);
}

TEST(InteractionTest, SmallGamesAndErrors) {
  LambdaGame tiny(1, [](std::uint64_t) { return 0.0; });
  auto none = ComputeShapleyInteractions(tiny);
  ASSERT_TRUE(none.ok());
  EXPECT_TRUE(none->empty());

  LambdaGame pair(2, [](std::uint64_t) { return 0.0; });
  EXPECT_FALSE(ComputeShapleyInteraction(pair, 0, 0).ok());
  EXPECT_FALSE(ComputeShapleyInteraction(pair, 0, 5).ok());

  LambdaGame big(25, [](std::uint64_t) { return 0.0; });
  EXPECT_FALSE(ComputeShapleyInteractions(big).ok());
}

TEST(InteractionTest, PaperPairReadingOfExample23) {
  // The running example: C1 and C2 are complements (each useless alone
  // for t5[Country], jointly sufficient); C3 substitutes for the pair;
  // C4 interacts with nothing.
  auto alg = trex::repair::MakeAlgorithm1();
  trex::ConstraintExplainer explainer;
  auto interactions = explainer.ExplainInteractions(
      *alg, trex::data::SoccerConstraints(),
      trex::data::SoccerDirtyTable(), trex::data::SoccerTargetCell());
  ASSERT_TRUE(interactions.ok()) << interactions.status();
  std::map<std::pair<std::string, std::string>, double> by_pair;
  for (const trex::InteractionScore& score : *interactions) {
    by_pair[{score.label_a, score.label_b}] = score.interaction;
  }
  EXPECT_GT(by_pair.at({"C1", "C2"}), 0.0);   // complements
  EXPECT_LT(by_pair.at({"C1", "C3"}), 0.0);   // substitutes
  EXPECT_LT(by_pair.at({"C2", "C3"}), 0.0);
  EXPECT_NEAR(by_pair.at({"C1", "C4"}), 0.0, 1e-12);
  EXPECT_NEAR(by_pair.at({"C2", "C4"}), 0.0, 1e-12);
  EXPECT_NEAR(by_pair.at({"C3", "C4"}), 0.0, 1e-12);
  // Ranked by |interaction|: the C4 pairs come last.
  EXPECT_EQ(interactions->back().interaction, 0.0);
}

TEST(InteractionTest, ExplainInteractionsErrors) {
  auto alg = trex::repair::MakeAlgorithm1();
  trex::ConstraintExplainer explainer;
  // Unrepaired target rejected.
  auto bad = explainer.ExplainInteractions(
      *alg, trex::data::SoccerConstraints(),
      trex::data::SoccerDirtyTable(), trex::data::SoccerCell(1, "Team"));
  EXPECT_FALSE(bad.ok());
  // Fewer than 2 constraints rejected.
  auto single = explainer.ExplainInteractions(
      *alg, trex::data::SoccerConstraints().Subset(0b0100),
      trex::data::SoccerDirtyTable(), trex::data::SoccerTargetCell());
  EXPECT_FALSE(single.ok());
}

TEST(InteractionTest, ShardedWalkBitIdenticalForEveryThreadCount) {
  // Non-trivial interactions across 8 players; the 2^n materialization
  // and the per-pair accumulation both shard, and both must be
  // bit-identical to the serial run.
  LambdaGame game(8, [](std::uint64_t mask) {
    const double s = static_cast<double>(std::popcount(mask));
    return s * s * 0.25 + static_cast<double>(mask % 5);
  });
  auto serial = ComputeShapleyInteractions(game);
  ASSERT_TRUE(serial.ok());
  InteractionOptions options;
  options.num_threads = 4;
  auto sharded = ComputeShapleyInteractions(game, options);
  ASSERT_TRUE(sharded.ok());
  ASSERT_EQ(sharded->size(), serial->size());
  for (std::size_t i = 0; i < serial->size(); ++i) {
    EXPECT_EQ((*sharded)[i].player_a, (*serial)[i].player_a);
    EXPECT_EQ((*sharded)[i].player_b, (*serial)[i].player_b);
    EXPECT_EQ((*sharded)[i].value, (*serial)[i].value);
  }
}

TEST(InteractionTest, ShardedWalkHonorsCancellation) {
  CancelSource source;
  source.Cancel();
  LambdaGame game(8, [](std::uint64_t) { return 1.0; });
  InteractionOptions options;
  options.num_threads = 4;
  options.cancel = source.token();
  auto cancelled = ComputeShapleyInteractions(game, options);
  ASSERT_FALSE(cancelled.ok());
  EXPECT_EQ(cancelled.status().code(), StatusCode::kCancelled);
}

}  // namespace
}  // namespace trex::shap
