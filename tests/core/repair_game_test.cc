#include "core/repair_game.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "data/soccer.h"
#include "repair/soccer_algorithm1.h"

namespace trex {
namespace {

// Keep the algorithm alive for all boxes (Make holds a raw pointer);
// a static instance is simplest for tests.
std::shared_ptr<repair::RuleRepair> Algorithm1Singleton() {
  static std::shared_ptr<repair::RuleRepair> alg = repair::MakeAlgorithm1();
  return alg;
}

BlackBoxRepair MakeSoccerBox() {
  auto box = BlackBoxRepair::Make(Algorithm1Singleton().get(),
                                  data::SoccerConstraints(),
                                  data::SoccerDirtyTable(),
                                  data::SoccerTargetCell());
  EXPECT_TRUE(box.ok()) << box.status();
  return std::move(box).value();
}

Result<BlackBoxRepair> MakeBox(CellRef target) {
  return BlackBoxRepair::Make(Algorithm1Singleton().get(),
                              data::SoccerConstraints(),
                              data::SoccerDirtyTable(), target);
}

TEST(BlackBoxRepairTest, ReferenceRunEstablishesCleanValue) {
  auto box = MakeBox(data::SoccerTargetCell());
  ASSERT_TRUE(box.ok());
  EXPECT_TRUE(box->target_was_repaired());
  EXPECT_EQ(box->reference_clean().at(data::SoccerTargetCell()),
            Value("Spain"));
  EXPECT_EQ(box->num_algorithm_calls(), 1u);  // the reference run
}

TEST(BlackBoxRepairTest, UnrepairedTargetDetected) {
  auto box = MakeBox(data::SoccerCell(1, "Team"));
  ASSERT_TRUE(box.ok());
  EXPECT_FALSE(box->target_was_repaired());
}

TEST(BlackBoxRepairTest, NullAlgorithmRejected) {
  auto box =
      BlackBoxRepair::Make(nullptr, data::SoccerConstraints(),
                           data::SoccerDirtyTable(), CellRef{0, 0});
  EXPECT_FALSE(box.ok());
}

TEST(BlackBoxRepairTest, TargetOutOfRangeRejected) {
  auto box = BlackBoxRepair::Make(
      Algorithm1Singleton().get(), data::SoccerConstraints(),
      data::SoccerDirtyTable(), CellRef{99, 0});
  EXPECT_FALSE(box.ok());
  EXPECT_EQ(box.status().code(), StatusCode::kOutOfRange);
}

TEST(BlackBoxRepairTest, ConstraintSubsetOutcomes) {
  auto box = MakeBox(data::SoccerTargetCell());
  ASSERT_TRUE(box.ok());
  // Example 2.3's characteristic function.
  EXPECT_FALSE(box->EvalConstraintSubset(0b0000));
  EXPECT_FALSE(box->EvalConstraintSubset(0b0001));  // C1 alone
  EXPECT_FALSE(box->EvalConstraintSubset(0b0010));  // C2 alone
  EXPECT_TRUE(box->EvalConstraintSubset(0b0011));   // C1+C2
  EXPECT_TRUE(box->EvalConstraintSubset(0b0100));   // C3
  EXPECT_TRUE(box->EvalConstraintSubset(0b1111));   // all
  EXPECT_FALSE(box->EvalConstraintSubset(0b1000));  // C4 alone
}

TEST(BlackBoxRepairTest, MaskCacheAvoidsRepeatCalls) {
  auto box = MakeBox(data::SoccerTargetCell());
  ASSERT_TRUE(box.ok());
  const std::size_t base = box->num_algorithm_calls();
  box->EvalConstraintSubset(0b0011);
  EXPECT_EQ(box->num_algorithm_calls(), base + 1);
  box->EvalConstraintSubset(0b0011);
  EXPECT_EQ(box->num_algorithm_calls(), base + 1);  // cached
  EXPECT_EQ(box->num_cache_hits(), 1u);
}

TEST(BlackBoxRepairTest, TableCacheKeysOnContent) {
  auto box = MakeBox(data::SoccerTargetCell());
  ASSERT_TRUE(box.ok());
  Table perturbed = data::SoccerDirtyTable();
  perturbed.Set(data::SoccerCell(1, "Team"), Value::Null());
  const std::size_t base = box->num_algorithm_calls();
  box->EvalTable(perturbed);
  EXPECT_EQ(box->num_algorithm_calls(), base + 1);
  // Equal content, different object: still cached.
  Table same = data::SoccerDirtyTable();
  same.Set(data::SoccerCell(1, "Team"), Value::Null());
  box->EvalTable(same);
  EXPECT_EQ(box->num_algorithm_calls(), base + 1);
  EXPECT_GE(box->num_cache_hits(), 1u);
}

TEST(BlackBoxRepairTest, CacheCanBeDisabled) {
  auto box = MakeBox(data::SoccerTargetCell());
  ASSERT_TRUE(box.ok());
  box->set_cache_enabled(false);
  const std::size_t base = box->num_algorithm_calls();
  box->EvalConstraintSubset(0b0011);
  box->EvalConstraintSubset(0b0011);
  EXPECT_EQ(box->num_algorithm_calls(), base + 2);
  EXPECT_EQ(box->num_cache_hits(), 0u);
}

TEST(BlackBoxRepairTest, TableMemoCapEvictsLruAndKeepsResults) {
  auto box = MakeBox(data::SoccerTargetCell());
  ASSERT_TRUE(box.ok());
  box->set_max_memo_entries(4);

  // Ten distinct perturbed tables: the memo keeps at most 4.
  std::vector<Table> tables;
  std::vector<bool> outcomes;
  for (std::size_t i = 0; i < 10; ++i) {
    Table perturbed = data::SoccerDirtyTable();
    perturbed.Set(CellRef{i % perturbed.num_rows(), 0},
                  Value("perturbed-" + std::to_string(i)));
    outcomes.push_back(box->EvalTable(perturbed));
    tables.push_back(std::move(perturbed));
  }
  EXPECT_LE(box->num_table_memo_entries(), 4u);
  EXPECT_EQ(box->num_memo_evictions(), 6u);

  // Evicted inputs recompute on the next miss — same outcome, one more
  // call; the most recent entries are still hits.
  const std::size_t calls = box->num_algorithm_calls();
  EXPECT_EQ(box->EvalTable(tables[0]), outcomes[0]);
  EXPECT_EQ(box->num_algorithm_calls(), calls + 1);
  const std::size_t hits = box->num_cache_hits();
  EXPECT_EQ(box->EvalTable(tables[9]), outcomes[9]);
  EXPECT_GE(box->num_cache_hits(), hits + 1);
}

TEST(BlackBoxRepairTest, LruTouchOnHitProtectsHotEntries) {
  auto box = MakeBox(data::SoccerTargetCell());
  ASSERT_TRUE(box.ok());
  box->set_max_memo_entries(2);

  Table hot = data::SoccerDirtyTable();
  hot.Set(CellRef{0, 0}, Value("hot"));
  Table warm = data::SoccerDirtyTable();
  warm.Set(CellRef{1, 0}, Value("warm"));
  box->EvalTable(hot);
  box->EvalTable(warm);
  // Touch `hot` so `warm` is the LRU victim for the next insert.
  box->EvalTable(hot);
  Table cold = data::SoccerDirtyTable();
  cold.Set(CellRef{2, 0}, Value("cold"));
  box->EvalTable(cold);

  const std::size_t calls = box->num_algorithm_calls();
  box->EvalTable(hot);  // still memoized
  EXPECT_EQ(box->num_algorithm_calls(), calls);
  box->EvalTable(warm);  // evicted: recomputes
  EXPECT_EQ(box->num_algorithm_calls(), calls + 1);
}

TEST(BlackBoxRepairTest, EvalTableWithNulledTarget) {
  auto box = MakeBox(data::SoccerTargetCell());
  ASSERT_TRUE(box.ok());
  // Nulling out every Country cell leaves no repair evidence: outcome 0.
  Table perturbed = data::SoccerDirtyTable();
  for (std::size_t r = 0; r < perturbed.num_rows(); ++r) {
    perturbed.Set(data::SoccerCell(r + 1, "Country"), Value::Null());
  }
  EXPECT_FALSE(box->EvalTable(perturbed));
}

TEST(ConstraintGameTest, MatchesBoxOutcomes) {
  const BlackBoxRepair box = MakeSoccerBox();
  ConstraintGame game(&box);
  EXPECT_EQ(game.num_players(), 4u);
  shap::Coalition c1_c2{true, true, false, false};
  EXPECT_DOUBLE_EQ(game.Value(c1_c2), 1.0);
  shap::Coalition c1_only{true, false, false, false};
  EXPECT_DOUBLE_EQ(game.Value(c1_only), 0.0);
  shap::Coalition empty(4, false);
  EXPECT_DOUBLE_EQ(game.Value(empty), 0.0);
}

TEST(CellGameTest, FullCoalitionRepairs) {
  const BlackBoxRepair box = MakeSoccerBox();
  CellGame game(&box, box.dirty().AllCells());
  EXPECT_EQ(game.num_players(), 36u);
  shap::Coalition all(36, true);
  EXPECT_DOUBLE_EQ(game.Value(all), 1.0);
}

TEST(CellGameTest, EmptyCoalitionDoesNotRepair) {
  const BlackBoxRepair box = MakeSoccerBox();
  CellGame game(&box, box.dirty().AllCells());
  shap::Coalition none(36, false);
  EXPECT_DOUBLE_EQ(game.Value(none), 0.0);
}

TEST(CellGameTest, Example24CoalitionRepairsViaC1C2) {
  // The paper's minimal C1+C2 coalition: {t3[Team], t3[City],
  // t3[Country], t5[Team]} — all other cells null.
  const BlackBoxRepair box = MakeSoccerBox();
  const std::vector<CellRef> players = box.dirty().AllCells();
  CellGame game(&box, players);
  shap::Coalition coalition(players.size(), false);
  auto include = [&](CellRef cell) {
    coalition[box.dirty().LinearIndex(cell)] = true;
  };
  include(data::SoccerCell(3, "Team"));
  include(data::SoccerCell(3, "City"));
  include(data::SoccerCell(3, "Country"));
  include(data::SoccerCell(5, "Team"));
  EXPECT_DOUBLE_EQ(game.Value(coalition), 1.0);
}

TEST(CellGameTest, Example24CoalitionRepairsViaC3Pair) {
  // One (League, Country) support pair plus t5[League] triggers C3.
  const BlackBoxRepair box = MakeSoccerBox();
  const std::vector<CellRef> players = box.dirty().AllCells();
  CellGame game(&box, players);
  shap::Coalition coalition(players.size(), false);
  auto include = [&](CellRef cell) {
    coalition[box.dirty().LinearIndex(cell)] = true;
  };
  include(data::SoccerCell(1, "League"));
  include(data::SoccerCell(1, "Country"));
  include(data::SoccerCell(5, "League"));
  EXPECT_DOUBLE_EQ(game.Value(coalition), 1.0);
}

TEST(CellGameTest, PairWithoutTargetLeagueDoesNotRepair) {
  // Without t5[League] in the coalition, C3 cannot bind t5.
  const BlackBoxRepair box = MakeSoccerBox();
  const std::vector<CellRef> players = box.dirty().AllCells();
  CellGame game(&box, players);
  shap::Coalition coalition(players.size(), false);
  coalition[box.dirty().LinearIndex(data::SoccerCell(1, "League"))] = true;
  coalition[box.dirty().LinearIndex(data::SoccerCell(1, "Country"))] = true;
  EXPECT_DOUBLE_EQ(game.Value(coalition), 0.0);
}

TEST(BlackBoxRepairTest, MultiTargetSharesOneReferenceRun) {
  auto box = BlackBoxRepair::MakeMultiTarget(
      Algorithm1Singleton().get(), data::SoccerConstraints(),
      data::SoccerDirtyTable(),
      {data::SoccerTargetCell(), data::SoccerCell(5, "City"),
       data::SoccerCell(1, "Team")});
  ASSERT_TRUE(box.ok()) << box.status();
  EXPECT_EQ(box->num_algorithm_calls(), 1u);  // one reference run
  EXPECT_EQ(box->num_targets(), 3u);
  EXPECT_TRUE(box->target_was_repaired(0));   // t5[Country]
  EXPECT_TRUE(box->target_was_repaired(1));   // t5[City]
  EXPECT_FALSE(box->target_was_repaired(2));  // t1[Team] untouched
}

TEST(BlackBoxRepairTest, OneCachedEvalAnswersEveryTarget) {
  auto box = BlackBoxRepair::MakeMultiTarget(
      Algorithm1Singleton().get(), data::SoccerConstraints(),
      data::SoccerDirtyTable(),
      {data::SoccerTargetCell(), data::SoccerCell(5, "City")});
  ASSERT_TRUE(box.ok());
  const std::size_t base = box->num_algorithm_calls();
  // C3 alone repairs t5[Country] but never touches t5[City].
  EXPECT_TRUE(box->EvalConstraintSubset(0b0100, 0));
  EXPECT_FALSE(box->EvalConstraintSubset(0b0100, 1));
  // The second target's answer came from the cached repaired table.
  EXPECT_EQ(box->num_algorithm_calls(), base + 1);
  EXPECT_EQ(box->num_cache_hits(), 1u);
  // C1+C2 repair the city (and through it the country).
  EXPECT_TRUE(box->EvalConstraintSubset(0b0011, 0));
  EXPECT_TRUE(box->EvalConstraintSubset(0b0011, 1));
  EXPECT_EQ(box->num_algorithm_calls(), base + 2);
}

TEST(BlackBoxRepairTest, AddTargetRegistersAgainstCachedReference) {
  auto box = MakeBox(data::SoccerTargetCell());
  ASSERT_TRUE(box.ok());
  auto index = box->AddTarget(data::SoccerCell(5, "City"));
  ASSERT_TRUE(index.ok());
  EXPECT_EQ(*index, 1u);
  EXPECT_EQ(box->num_algorithm_calls(), 1u);  // still just the reference
  EXPECT_TRUE(box->target_was_repaired(1));
  // Re-adding is idempotent; out-of-table cells are rejected.
  auto again = box->AddTarget(data::SoccerCell(5, "City"));
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(*again, 1u);
  EXPECT_FALSE(box->AddTarget(CellRef{99, 0}).ok());
  EXPECT_EQ(box->FindTarget(data::SoccerTargetCell()), std::size_t{0});
  EXPECT_FALSE(box->FindTarget(CellRef{0, 0}).has_value());
}

TEST(BlackBoxRepairTest, CrossRequestHitAccounting) {
  auto box = MakeBox(data::SoccerTargetCell());
  ASSERT_TRUE(box.ok());
  box->BeginRequest(1);
  box->EvalConstraintSubset(0b0011);
  box->EvalConstraintSubset(0b0011);  // same-request hit
  EXPECT_EQ(box->num_cache_hits(), 1u);
  EXPECT_EQ(box->num_cross_request_hits(), 0u);
  box->BeginRequest(2);
  box->EvalConstraintSubset(0b0011);  // hit on request 1's entry
  EXPECT_EQ(box->num_cache_hits(), 2u);
  EXPECT_EQ(box->num_cross_request_hits(), 1u);
}

TEST(BlackBoxRepairTest, TableCacheVerifiesFullContentNotJustFingerprint) {
  // Two perturbations with different content must never share a cache
  // entry. (A fingerprint collision between arbitrary tables cannot be
  // staged here, but the outcome difference proves the full-content
  // check is in the lookup path: both tables would collide into one
  // entry under a value-blind key.)
  auto box = MakeBox(data::SoccerTargetCell());
  ASSERT_TRUE(box.ok());
  Table a = data::SoccerDirtyTable();
  a.Set(data::SoccerCell(5, "League"), Value::Null());
  Table b = data::SoccerDirtyTable();
  b.Set(data::SoccerCell(5, "Country"), Value::Null());
  const std::size_t base = box->num_algorithm_calls();
  box->EvalTable(a);
  box->EvalTable(b);
  EXPECT_EQ(box->num_algorithm_calls(), base + 2);  // two distinct entries
  box->EvalTable(a);
  box->EvalTable(b);
  EXPECT_EQ(box->num_algorithm_calls(), base + 2);  // both verified hits
  EXPECT_EQ(box->num_cache_hits(), 2u);
}

TEST(BlackBoxRepairTest, StrongHashMemoMatchesFullVerificationOutcomes) {
  // Same evaluations, same outcomes, same hit/miss pattern — with the
  // input copies dropped from the memo.
  auto verified = MakeBox(data::SoccerTargetCell());
  auto strong = MakeBox(data::SoccerTargetCell());
  ASSERT_TRUE(verified.ok());
  ASSERT_TRUE(strong.ok());
  strong->set_use_strong_table_hash(true);
  Table a = data::SoccerDirtyTable();
  a.Set(data::SoccerCell(5, "League"), Value::Null());
  Table b = data::SoccerDirtyTable();
  b.Set(data::SoccerCell(5, "Country"), Value::Null());
  for (const Table* table : {&a, &b, &a, &b}) {
    EXPECT_EQ(strong->EvalTable(*table), verified->EvalTable(*table));
  }
  EXPECT_EQ(strong->num_algorithm_calls(), verified->num_algorithm_calls());
  EXPECT_EQ(strong->num_cache_hits(), verified->num_cache_hits());
  EXPECT_EQ(strong->num_cache_hits(), 2u);
}

TEST(BlackBoxRepairTest, CollisionPathFallsThroughUnderForcedBucketClash) {
  // Force every table into one 64-bit bucket (the test-only hook): the
  // verification layer — full content by default, 128-bit strong hash
  // when enabled — must still keep distinct inputs apart, never serving
  // one table's outcome for another.
  Table a = data::SoccerDirtyTable();
  a.Set(data::SoccerCell(5, "League"), Value::Null());
  Table b = data::SoccerDirtyTable();
  b.Set(data::SoccerCell(5, "Country"), Value::Null());
  for (const bool strong_hash : {false, true}) {
    auto box = MakeBox(data::SoccerTargetCell());
    ASSERT_TRUE(box.ok());
    box->set_use_strong_table_hash(strong_hash);
    box->set_table_bucket_fn_for_test([](const Table&) { return 7u; });
    const std::size_t base = box->num_algorithm_calls();
    const bool outcome_a = box->EvalTable(a);
    const bool outcome_b = box->EvalTable(b);
    // Distinct entries despite the colliding bucket fingerprint...
    EXPECT_EQ(box->num_algorithm_calls(), base + 2)
        << "strong_hash=" << strong_hash;
    // ...and verified hits on re-evaluation, with unchanged outcomes.
    EXPECT_EQ(box->EvalTable(a), outcome_a);
    EXPECT_EQ(box->EvalTable(b), outcome_b);
    EXPECT_EQ(box->num_algorithm_calls(), base + 2);
    EXPECT_EQ(box->num_cache_hits(), 2u);
  }
}

TEST(BlackBoxRepairTest, StrongFingerprintSeparatesNearIdenticalTables) {
  const Table base = data::SoccerDirtyTable();
  Table tweaked = base;
  tweaked.Set(data::SoccerCell(5, "League"), Value("X"));
  EXPECT_EQ(base.StrongFingerprint(), data::SoccerDirtyTable()
                                          .StrongFingerprint());
  EXPECT_NE(base.StrongFingerprint(), tweaked.StrongFingerprint());
  // Null vs empty string vs zero must hash apart (type tags).
  Table null_cell = base;
  null_cell.Set(data::SoccerCell(5, "League"), Value::Null());
  Table empty_cell = base;
  empty_cell.Set(data::SoccerCell(5, "League"), Value(""));
  EXPECT_NE(null_cell.StrongFingerprint(), empty_cell.StrongFingerprint());
}

TEST(BlackBoxRepairTest, FingerprintsLengthDelimitStringCells) {
  // Without length prefixes, ("a\x03", "b") and ("a", "\x03b") would
  // serialize identically — 0x03 is the kString type tag — and collide
  // deterministically, which the strong-hash memo mode must never
  // allow. Regression for exactly that pair.
  Table one(Schema::AllStrings({"A", "B"}));
  ASSERT_TRUE(one.AppendRow({Value(std::string("a\x03")), Value("b")}).ok());
  Table two(Schema::AllStrings({"A", "B"}));
  ASSERT_TRUE(two.AppendRow({Value("a"), Value(std::string("\x03b"))}).ok());
  EXPECT_NE(one.StrongFingerprint(), two.StrongFingerprint());
  EXPECT_NE(one.Fingerprint(), two.Fingerprint());
}

TEST(BlackBoxRepairTest, EvalPerturbationMatchesEvalTableOutcomesAndMemo) {
  // The delta path must agree with the materialized path bit for bit —
  // same outcomes, and both answered by one shared memo (the second
  // evaluation of either form is a hit, not a second repair run).
  auto delta_box = MakeBox(data::SoccerTargetCell());
  auto table_box = MakeBox(data::SoccerTargetCell());
  ASSERT_TRUE(delta_box.ok());
  ASSERT_TRUE(table_box.ok());
  const Table dirty = data::SoccerDirtyTable();
  for (std::size_t round = 0; round < 8; ++round) {
    std::vector<CellWrite> writes;
    for (std::size_t i = 0; i <= round % 4; ++i) {
      writes.push_back({CellRef{(round + i) % dirty.num_rows(),
                                (round + 2 * i) % dirty.num_columns()},
                        i % 2 == 0 ? Value::Null()
                                   : Value("w" + std::to_string(round))});
    }
    Table materialized = dirty;
    for (const CellWrite& w : writes) materialized.Set(w.cell, w.value);
    EXPECT_EQ(delta_box->EvalPerturbation(writes),
              table_box->EvalTable(materialized))
        << "round " << round;
    // Cross-form hit: the delta evaluation seeded the memo entry the
    // materialized form now finds (and vice versa on the same box).
    const std::size_t calls = delta_box->num_algorithm_calls();
    EXPECT_EQ(delta_box->EvalTable(materialized),
              table_box->EvalPerturbation(writes));
    EXPECT_EQ(delta_box->num_algorithm_calls(), calls);
  }
  EXPECT_EQ(delta_box->num_algorithm_calls(),
            table_box->num_algorithm_calls());
}

TEST(BlackBoxRepairTest, WarmCacheEvaluationsMakeNoTableCopies) {
  auto box = MakeBox(data::SoccerTargetCell());
  ASSERT_TRUE(box.ok());
  CellGame game(&*box, {data::SoccerCell(5, "League"),
                        data::SoccerCell(5, "Country"),
                        data::SoccerCell(1, "Country")});
  std::vector<shap::Coalition> coalitions;
  for (unsigned bits = 0; bits < 8; ++bits) {
    coalitions.push_back({(bits & 1) != 0, (bits & 2) != 0, (bits & 4) != 0});
  }
  std::vector<double> cold;
  for (const auto& coalition : coalitions) {
    cold.push_back(game.Value(coalition));
  }
  // Cold pass: misses materialized into ONE per-thread scratch copy,
  // not one copy per coalition.
  EXPECT_EQ(box->num_eval_table_copies(), 1u);
  const std::size_t calls = box->num_algorithm_calls();
  // Warm pass: all hits — zero table copies, zero repair runs.
  for (std::size_t i = 0; i < coalitions.size(); ++i) {
    EXPECT_EQ(game.Value(coalitions[i]), cold[i]);
  }
  EXPECT_EQ(box->num_eval_table_copies(), 1u);
  EXPECT_EQ(box->num_algorithm_calls(), calls);
}

TEST(BlackBoxRepairTest, SealTargetsCompactsMemoAndKeepsOutcomes) {
  auto box = BlackBoxRepair::MakeMultiTarget(
      Algorithm1Singleton().get(), data::SoccerConstraints(),
      data::SoccerDirtyTable(),
      {data::SoccerTargetCell(), data::SoccerCell(5, "City")});
  ASSERT_TRUE(box.ok());
  // Populate both memos unsealed: every mask, plus a few perturbations.
  std::vector<bool> mask_outcomes;
  for (std::uint64_t mask = 0; mask < 16; ++mask) {
    mask_outcomes.push_back(box->EvalConstraintSubset(mask, 0));
    mask_outcomes.push_back(box->EvalConstraintSubset(mask, 1));
  }
  std::vector<std::vector<CellWrite>> perturbations;
  std::vector<bool> perturbation_outcomes;
  for (std::size_t r = 0; r < 4; ++r) {
    perturbations.push_back(
        {{CellRef{r, 1}, Value::Null()}, {CellRef{r, 2}, Value::Null()}});
    perturbation_outcomes.push_back(
        box->EvalPerturbation(perturbations.back(), 0));
  }
  const std::size_t unsealed_bytes = box->approx_memo_bytes();
  const std::size_t calls = box->num_algorithm_calls();

  box->SealTargets();
  EXPECT_TRUE(box->targets_sealed());
  const std::size_t sealed_bytes = box->approx_memo_bytes();
  EXPECT_GE(unsealed_bytes, 5 * sealed_bytes)
      << "sealing must compact the memo at least 5x (unsealed="
      << unsealed_bytes << ", sealed=" << sealed_bytes << ")";

  // Every resident entry still answers — bit-identically and without a
  // single extra repair run.
  std::size_t i = 0;
  for (std::uint64_t mask = 0; mask < 16; ++mask) {
    EXPECT_EQ(box->EvalConstraintSubset(mask, 0), mask_outcomes[i++]);
    EXPECT_EQ(box->EvalConstraintSubset(mask, 1), mask_outcomes[i++]);
  }
  for (std::size_t p = 0; p < perturbations.size(); ++p) {
    EXPECT_EQ(box->EvalPerturbation(perturbations[p], 0),
              perturbation_outcomes[p]);
  }
  EXPECT_EQ(box->num_algorithm_calls(), calls);
}

TEST(BlackBoxRepairTest, SealedBoxMatchesUnsealedTwinEverywhere) {
  auto sealed = BlackBoxRepair::MakeMultiTarget(
      Algorithm1Singleton().get(), data::SoccerConstraints(),
      data::SoccerDirtyTable(),
      {data::SoccerTargetCell(), data::SoccerCell(5, "City")});
  auto unsealed = BlackBoxRepair::MakeMultiTarget(
      Algorithm1Singleton().get(), data::SoccerConstraints(),
      data::SoccerDirtyTable(),
      {data::SoccerTargetCell(), data::SoccerCell(5, "City")});
  ASSERT_TRUE(sealed.ok());
  ASSERT_TRUE(unsealed.ok());
  sealed->SealTargets();  // entries are written compact from the start
  for (std::uint64_t mask = 0; mask < 16; ++mask) {
    for (std::size_t target : {0u, 1u}) {
      EXPECT_EQ(sealed->EvalConstraintSubset(mask, target),
                unsealed->EvalConstraintSubset(mask, target));
    }
  }
  for (std::size_t r = 0; r < 6; ++r) {
    const std::vector<CellWrite> writes = {{CellRef{r, 2}, Value::Null()},
                                           {CellRef{r, 3}, Value::Null()}};
    for (std::size_t target : {0u, 1u}) {
      EXPECT_EQ(sealed->EvalPerturbation(writes, target),
                unsealed->EvalPerturbation(writes, target));
    }
  }
  EXPECT_EQ(sealed->num_algorithm_calls(), unsealed->num_algorithm_calls());
  EXPECT_EQ(sealed->num_cache_hits(), unsealed->num_cache_hits());
  EXPECT_LT(sealed->approx_memo_bytes(), unsealed->approx_memo_bytes());
}

TEST(BlackBoxRepairTest, PostSealAddTargetFallsBackToRecompute) {
  auto box = MakeBox(data::SoccerTargetCell());
  ASSERT_TRUE(box.ok());
  box->SealTargets();
  const bool mask_outcome = box->EvalConstraintSubset(0b0011, 0);
  const std::vector<CellWrite> writes = {{CellRef{0, 0}, Value::Null()}};
  const bool table_outcome = box->EvalPerturbation(writes, 0);

  // Register a target after sealing: resident bitsets do not cover it.
  auto added = box->AddTarget(data::SoccerCell(5, "City"));
  ASSERT_TRUE(added.ok());
  const std::size_t new_target = *added;

  // Ground truth from an unsealed twin with both targets registered.
  auto twin = BlackBoxRepair::MakeMultiTarget(
      Algorithm1Singleton().get(), data::SoccerConstraints(),
      data::SoccerDirtyTable(),
      {data::SoccerTargetCell(), data::SoccerCell(5, "City")});
  ASSERT_TRUE(twin.ok());

  // The uncovered target recomputes (one extra repair run per entry),
  // never serves a silently wrong bit...
  std::size_t calls = box->num_algorithm_calls();
  EXPECT_EQ(box->EvalConstraintSubset(0b0011, new_target),
            twin->EvalConstraintSubset(0b0011, new_target));
  EXPECT_EQ(box->num_algorithm_calls(), calls + 1);
  calls = box->num_algorithm_calls();
  EXPECT_EQ(box->EvalPerturbation(writes, new_target),
            twin->EvalPerturbation(writes, new_target));
  EXPECT_EQ(box->num_algorithm_calls(), calls + 1);

  // ...and the recompute extends the entry: both targets now hit, and
  // the original target's answers are unchanged.
  calls = box->num_algorithm_calls();
  EXPECT_EQ(box->EvalConstraintSubset(0b0011, new_target),
            twin->EvalConstraintSubset(0b0011, new_target));
  EXPECT_EQ(box->EvalConstraintSubset(0b0011, 0), mask_outcome);
  EXPECT_EQ(box->EvalPerturbation(writes, new_target),
            twin->EvalPerturbation(writes, new_target));
  EXPECT_EQ(box->EvalPerturbation(writes, 0), table_outcome);
  EXPECT_EQ(box->num_algorithm_calls(), calls);
}

TEST(BlackBoxRepairTest, SealedCollisionPathStillFallsThrough) {
  // The forced-bucket-clash regression, in sealed mode: sealed entries
  // verify by 128-bit fingerprint, which must still keep distinct
  // inputs apart under a colliding 64-bit bucket.
  Table a = data::SoccerDirtyTable();
  a.Set(data::SoccerCell(5, "League"), Value::Null());
  Table b = data::SoccerDirtyTable();
  b.Set(data::SoccerCell(5, "Country"), Value::Null());
  auto box = MakeBox(data::SoccerTargetCell());
  ASSERT_TRUE(box.ok());
  box->SealTargets();
  box->set_table_bucket_fn_for_test([](const Table&) { return 7u; });
  const std::size_t base = box->num_algorithm_calls();
  const bool outcome_a = box->EvalTable(a);
  const bool outcome_b = box->EvalTable(b);
  EXPECT_EQ(box->num_algorithm_calls(), base + 2);
  EXPECT_EQ(box->EvalTable(a), outcome_a);
  EXPECT_EQ(box->EvalTable(b), outcome_b);
  EXPECT_EQ(box->num_algorithm_calls(), base + 2);
}

TEST(CellGameTest, PrunedPlayerListKeepsBackgroundCells) {
  // With players restricted to two cells, all other cells keep their
  // original values: including both players repairs the target because
  // the rest of the table is intact.
  const BlackBoxRepair box = MakeSoccerBox();
  CellGame game(&box, {data::SoccerCell(5, "League"),
                       data::SoccerCell(5, "Country")});
  EXPECT_EQ(game.num_players(), 2u);
  shap::Coalition both{true, true};
  EXPECT_DOUBLE_EQ(game.Value(both), 1.0);
  // Removing t5[League] from the coalition nulls it; C3 cannot fire, but
  // C1+C2 still repair through the intact background cells.
  shap::Coalition country_only{false, true};
  EXPECT_DOUBLE_EQ(game.Value(country_only), 1.0);
}

}  // namespace
}  // namespace trex
